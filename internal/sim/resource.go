package sim

// Resource is a FIFO counting semaphore in virtual time, used to model
// contended hardware: a PCI bus, a disk arm, an NFS server's service
// capacity, a network link.
type Resource struct {
	env        *Env
	capacity   int
	inUse      int
	waiters    []waiterRef
	dispatchFn func() // r.dispatch, bound once so Release allocates nothing
	queued     bool
}

// NewResource returns a resource with the given capacity (number of
// simultaneous holders). Capacity must be positive.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	r := &Resource{env: env, capacity: capacity}
	r.dispatchFn = r.dispatch
	return r
}

// Acquire blocks the calling process until a unit is available, then
// claims it. Units are granted in request order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	w, gen := p.beginPark()
	r.waiters = append(r.waiters, waiterRef{w, gen})
	p.park()
}

// TryAcquire claims a unit if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit and hands it to the oldest waiter, if any.
// The handoff happens through the event queue at the current timestamp,
// preserving deterministic ordering.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	r.inUse--
	r.dispatchLater()
}

func (r *Resource) dispatchLater() {
	if len(r.waiters) > 0 && !r.queued {
		r.queued = true
		r.env.schedule(r.env.now, r.dispatchFn)
	}
}

func (r *Resource) dispatch() {
	r.queued = false
	i := 0
	for i < len(r.waiters) && r.inUse < r.capacity {
		ref := r.waiters[i]
		i++
		if ref.stale() {
			continue
		}
		r.inUse++
		r.env.wake(ref.w, ref.gen, resumeMsg{ok: true})
	}
	// Compact the remainder into the head of the backing array so the
	// slice never marches off it (which would re-allocate per Acquire).
	live := r.waiters[:0]
	for _, ref := range r.waiters[i:] {
		if !ref.stale() {
			live = append(live, ref)
		}
	}
	r.waiters = live
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it: the common "occupy the bus for the transfer duration" idiom.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// InUse returns the number of currently-held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, ref := range r.waiters {
		if !ref.stale() {
			n++
		}
	}
	return n
}
