package sim

// Resource is a FIFO counting semaphore in virtual time, used to model
// contended hardware: a PCI bus, a disk arm, an NFS server's service
// capacity, a network link.
type Resource struct {
	env      *Env
	capacity int
	inUse    int
	waiters  []*waiter
}

// NewResource returns a resource with the given capacity (number of
// simultaneous holders). Capacity must be positive.
func NewResource(env *Env, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{env: env, capacity: capacity}
}

// Acquire blocks the calling process until a unit is available, then
// claims it. Units are granted in request order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return
	}
	w := &waiter{p: p}
	p.waiting = w
	r.waiters = append(r.waiters, w)
	p.park()
}

// TryAcquire claims a unit if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit and hands it to the oldest waiter, if any.
// The handoff happens through the event queue at the current timestamp,
// preserving deterministic ordering.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	r.inUse--
	r.dispatchLater()
}

func (r *Resource) dispatchLater() {
	if len(r.waiters) > 0 {
		r.env.schedule(r.env.now, r.dispatch)
	}
}

func (r *Resource) dispatch() {
	for r.inUse < r.capacity && len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if w.fired || w.p.dead {
			continue
		}
		r.inUse++
		r.env.wake(w, resumeMsg{ok: true})
	}
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it: the common "occupy the bus for the transfer duration" idiom.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// InUse returns the number of currently-held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.fired && !w.p.dead {
			n++
		}
	}
	return n
}
