package sim

// Event is a virtual-time synchronization primitive with two modes:
//
//   - Counting (Signal): each Signal deposits one token; each Wait consumes
//     one token, blocking until one is available. Tokens are delivered to
//     waiters in FIFO order. This matches the semantics of Elan NIC events,
//     which are signaled once per completed operation and consumed by the
//     host that tests them.
//
//   - Latched (Broadcast): Broadcast wakes every current waiter and makes
//     all future Waits return immediately. Used for one-shot conditions
//     such as process termination.
//
// Events are created against an Env and must only be used by that Env's
// processes.
type Event struct {
	env        *Env
	count      int
	latched    bool
	waiters    []waiterRef
	dispatchFn func() // ev.dispatch, bound once so Signal allocates nothing
	queued     bool   // a dispatch is already scheduled at the current step
}

// NewEvent returns an unsignaled event.
func NewEvent(env *Env) *Event {
	ev := &Event{env: env}
	ev.dispatchFn = ev.dispatch
	return ev
}

// scheduleDispatch queues one dispatch at the current timestamp. Multiple
// signals at one timestamp coalesce into a single dispatch event (the
// dispatch loop drains every available token anyway).
func (ev *Event) scheduleDispatch() {
	if ev.queued {
		return
	}
	ev.queued = true
	ev.env.schedule(ev.env.now, ev.dispatchFn)
}

// Signal deposits one token, waking the oldest waiter (if any) at the
// current timestamp. Callable from kernel or process context. A Signal
// after Broadcast is a no-op.
func (ev *Event) Signal() {
	if ev.latched {
		return
	}
	ev.count++
	if len(ev.waiters) > 0 {
		ev.scheduleDispatch()
	}
}

// Broadcast latches the event: all current waiters wake and every future
// Wait returns immediately.
func (ev *Event) Broadcast() {
	if ev.latched {
		return
	}
	ev.latched = true
	if len(ev.waiters) > 0 {
		ev.scheduleDispatch()
	}
}

// dispatch hands tokens to waiters in FIFO order. Runs in kernel context.
// Consumed and stale entries are compacted into the head of the backing
// array (never `waiters = waiters[1:]`, which would march the slice off
// its array and force a fresh allocation per append).
func (ev *Event) dispatch() {
	ev.queued = false
	i := 0
	for i < len(ev.waiters) && (ev.latched || ev.count > 0) {
		r := ev.waiters[i]
		i++
		if r.stale() {
			continue
		}
		if !ev.latched {
			ev.count--
		}
		// May run model code that appends new waiters; the loop picks
		// them up because len is re-read.
		ev.env.wake(r.w, r.gen, resumeMsg{ok: true})
	}
	// Keep the live remainder (e.g. still-blocked waiters), dropping
	// already-woken ones (e.g. timed-out or killed).
	live := ev.waiters[:0]
	for _, r := range ev.waiters[i:] {
		if !r.stale() {
			live = append(live, r)
		}
	}
	ev.waiters = live
}

// Pending reports how many tokens are currently deposited but unconsumed.
func (ev *Event) Pending() int { return ev.count }

// Latched reports whether Broadcast has been called.
func (ev *Event) Latched() bool { return ev.latched }

// Poll reports whether a Wait would return immediately, without consuming
// anything. This is the non-blocking half of the paper's TEST-EVENT.
func (ev *Event) Poll() bool { return ev.latched || ev.count > 0 }

// TryWait consumes a token if one is available, without blocking.
func (ev *Event) TryWait() bool {
	if ev.latched {
		return true
	}
	if ev.count > 0 {
		ev.count--
		return true
	}
	return false
}

// Wait blocks the calling process until a token is available (or the event
// is latched) and consumes it. This is the blocking half of TEST-EVENT.
func (ev *Event) Wait(p *Proc) {
	if ev.TryWait() {
		return
	}
	w, gen := p.beginPark()
	ev.waiters = append(ev.waiters, waiterRef{w, gen})
	p.park()
}

// WaitTimeout is Wait with a deadline: it returns true if a token was
// consumed, false if the timeout elapsed first.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.TryWait() {
		return true
	}
	if d <= 0 {
		return false
	}
	w, gen := p.beginPark()
	ev.waiters = append(ev.waiters, waiterRef{w, gen})
	ev.env.scheduleWake(ev.env.now+d, w, gen, false)
	msg := p.park()
	return msg.ok
}
