package sim

// Event is a virtual-time synchronization primitive with two modes:
//
//   - Counting (Signal): each Signal deposits one token; each Wait consumes
//     one token, blocking until one is available. Tokens are delivered to
//     waiters in FIFO order. This matches the semantics of Elan NIC events,
//     which are signaled once per completed operation and consumed by the
//     host that tests them.
//
//   - Latched (Broadcast): Broadcast wakes every current waiter and makes
//     all future Waits return immediately. Used for one-shot conditions
//     such as process termination.
//
// Events are created against an Env and must only be used by that Env's
// processes.
type Event struct {
	env     *Env
	count   int
	latched bool
	waiters []*waiter
}

// NewEvent returns an unsignaled event.
func NewEvent(env *Env) *Event {
	return &Event{env: env}
}

// Signal deposits one token, waking the oldest waiter (if any) at the
// current timestamp. Callable from kernel or process context. A Signal
// after Broadcast is a no-op.
func (ev *Event) Signal() {
	if ev.latched {
		return
	}
	ev.count++
	if len(ev.waiters) > 0 {
		ev.env.schedule(ev.env.now, ev.dispatch)
	}
}

// Broadcast latches the event: all current waiters wake and every future
// Wait returns immediately.
func (ev *Event) Broadcast() {
	if ev.latched {
		return
	}
	ev.latched = true
	if len(ev.waiters) > 0 {
		ev.env.schedule(ev.env.now, ev.dispatch)
	}
}

// dispatch hands tokens to waiters in FIFO order. Runs in kernel context.
func (ev *Event) dispatch() {
	for len(ev.waiters) > 0 && (ev.latched || ev.count > 0) {
		w := ev.waiters[0]
		ev.waiters = ev.waiters[1:]
		if w.fired || w.p.dead {
			continue
		}
		if !ev.latched {
			ev.count--
		}
		ev.env.wake(w, resumeMsg{ok: true})
	}
	ev.compact()
}

// compact drops already-fired waiters (e.g. timed-out ones) from the queue.
func (ev *Event) compact() {
	live := ev.waiters[:0]
	for _, w := range ev.waiters {
		if !w.fired && !w.p.dead {
			live = append(live, w)
		}
	}
	ev.waiters = live
}

// Pending reports how many tokens are currently deposited but unconsumed.
func (ev *Event) Pending() int { return ev.count }

// Latched reports whether Broadcast has been called.
func (ev *Event) Latched() bool { return ev.latched }

// Poll reports whether a Wait would return immediately, without consuming
// anything. This is the non-blocking half of the paper's TEST-EVENT.
func (ev *Event) Poll() bool { return ev.latched || ev.count > 0 }

// TryWait consumes a token if one is available, without blocking.
func (ev *Event) TryWait() bool {
	if ev.latched {
		return true
	}
	if ev.count > 0 {
		ev.count--
		return true
	}
	return false
}

// Wait blocks the calling process until a token is available (or the event
// is latched) and consumes it. This is the blocking half of TEST-EVENT.
func (ev *Event) Wait(p *Proc) {
	if ev.TryWait() {
		return
	}
	w := &waiter{p: p}
	p.waiting = w
	ev.waiters = append(ev.waiters, w)
	p.park()
}

// WaitTimeout is Wait with a deadline: it returns true if a token was
// consumed, false if the timeout elapsed first.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.TryWait() {
		return true
	}
	if d <= 0 {
		return false
	}
	w := &waiter{p: p}
	p.waiting = w
	ev.waiters = append(ev.waiters, w)
	ev.env.schedule(ev.env.now+d, func() {
		ev.env.wake(w, resumeMsg{ok: false})
	})
	msg := p.park()
	return msg.ok
}
