package sim

// Queue is an unbounded FIFO message queue in virtual time — the mailbox
// abstraction the simulated dæmons use to receive control messages.
// Messages become visible to receivers at the timestamp they were Put.
//
// Items are popped by advancing a head index into a reused backing array
// (reset when the queue drains), so a steady Put/Get stream does not
// re-allocate the buffer.
type Queue struct {
	ev    *Event
	items []interface{}
	head  int
}

// NewQueue returns an empty queue.
func NewQueue(env *Env) *Queue {
	return &Queue{ev: NewEvent(env)}
}

// Put appends an item, waking one blocked receiver if any.
func (q *Queue) Put(item interface{}) {
	q.items = append(q.items, item)
	q.ev.Signal()
}

// pop removes and returns the oldest item. The caller must know the queue
// is non-empty (it holds a consumed token).
func (q *Queue) pop() interface{} {
	item := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item
}

// Get blocks the calling process until an item is available and returns
// the oldest one.
func (q *Queue) Get(p *Proc) interface{} {
	q.ev.Wait(p)
	return q.pop()
}

// GetTimeout is Get with a deadline; the second result is false if the
// timeout elapsed with no item available.
func (q *Queue) GetTimeout(p *Proc, d Time) (interface{}, bool) {
	if !q.ev.WaitTimeout(p, d) {
		return nil, false
	}
	return q.pop(), true
}

// TryGet returns an item without blocking, or (nil, false) if empty.
func (q *Queue) TryGet() (interface{}, bool) {
	if !q.ev.TryWait() {
		return nil, false
	}
	return q.pop(), true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.head }
