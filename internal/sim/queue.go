package sim

// Queue is an unbounded FIFO message queue in virtual time — the mailbox
// abstraction the simulated dæmons use to receive control messages.
// Messages become visible to receivers at the timestamp they were Put.
type Queue struct {
	ev    *Event
	items []interface{}
}

// NewQueue returns an empty queue.
func NewQueue(env *Env) *Queue {
	return &Queue{ev: NewEvent(env)}
}

// Put appends an item, waking one blocked receiver if any.
func (q *Queue) Put(item interface{}) {
	q.items = append(q.items, item)
	q.ev.Signal()
}

// Get blocks the calling process until an item is available and returns
// the oldest one.
func (q *Queue) Get(p *Proc) interface{} {
	q.ev.Wait(p)
	item := q.items[0]
	q.items = q.items[1:]
	return item
}

// GetTimeout is Get with a deadline; the second result is false if the
// timeout elapsed with no item available.
func (q *Queue) GetTimeout(p *Proc, d Time) (interface{}, bool) {
	if !q.ev.WaitTimeout(p, d) {
		return nil, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

// TryGet returns an item without blocking, or (nil, false) if empty.
func (q *Queue) TryGet() (interface{}, bool) {
	if !q.ev.TryWait() {
		return nil, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }
