package sim

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromMilliseconds(2) != 2*Millisecond {
		t.Fatalf("FromMilliseconds(2) = %v", FromMilliseconds(2))
	}
	if FromMicroseconds(300) != 300*Microsecond {
		t.Fatalf("FromMicroseconds(300) = %v", FromMicroseconds(300))
	}
	if FromSeconds(-3) != 0 {
		t.Fatal("negative seconds not clamped")
	}
	if got := (96 * Millisecond).Seconds(); got != 0.096 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Nanosecond:   "500ns",
		300 * Microsecond:  "300.000us",
		50 * Millisecond:   "50.000ms",
		2500 * Millisecond: "2.500000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestAfterOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.After(30*Millisecond, func() { order = append(order, 3) })
	e.After(10*Millisecond, func() { order = append(order, 1) })
	e.After(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEnv()
	fired := false
	tm := e.After(Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled timer fired")
	}
	tm.Cancel() // double-cancel is a no-op
}

func TestProcWait(t *testing.T) {
	e := NewEnv()
	var stamps []Time
	e.Spawn("p", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Wait(5 * Millisecond)
		stamps = append(stamps, p.Now())
		p.Wait(10 * Millisecond)
		stamps = append(stamps, p.Now())
	})
	e.Run()
	want := []Time{0, 5 * Millisecond, 15 * Millisecond}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestSpawnAfter(t *testing.T) {
	e := NewEnv()
	var started Time = -1
	e.SpawnAfter(7*Millisecond, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 7*Millisecond {
		t.Fatalf("started at %v", started)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEnv()
	count := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(Millisecond)
			count++
		}
	})
	e.RunUntil(10 * Millisecond)
	if count != 10 {
		t.Fatalf("count = %d after 10ms horizon", count)
	}
	if e.Now() != 10*Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
	e.RunUntil(20 * Millisecond)
	if count != 20 {
		t.Fatalf("count = %d after 20ms horizon", count)
	}
	e.Shutdown()
}

func TestEventCounting(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	got := 0
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ev.Wait(p)
			got++
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(Millisecond)
			ev.Signal()
		}
	})
	e.Run()
	if got != 3 {
		t.Fatalf("consumed %d signals", got)
	}
}

func TestEventTokensAreNotLost(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	// Signals deposited before anyone waits must be consumable later.
	ev.Signal()
	ev.Signal()
	if ev.Pending() != 2 {
		t.Fatalf("Pending = %d", ev.Pending())
	}
	got := 0
	e.Spawn("late-consumer", func(p *Proc) {
		ev.Wait(p)
		got++
		ev.Wait(p)
		got++
	})
	e.Run()
	if got != 2 {
		t.Fatalf("consumed %d of 2 pre-deposited tokens", got)
	}
}

func TestEventFIFOWakeup(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(Time(i) * Microsecond) // register in a known order
			ev.Wait(p)
			order = append(order, i)
		})
	}
	e.Spawn("signaler", func(p *Proc) {
		p.Wait(Millisecond)
		for i := 0; i < 5; i++ {
			ev.Signal()
		}
	})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order = %v", order)
		}
	}
}

func TestEventBroadcast(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			ev.Wait(p)
			woke++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Wait(Millisecond)
		ev.Broadcast()
	})
	e.Run()
	if woke != 4 {
		t.Fatalf("broadcast woke %d of 4", woke)
	}
	if !ev.Poll() {
		t.Fatal("latched event does not poll true")
	}
	// Future waits return immediately.
	e2 := NewEnv()
	ev2 := NewEvent(e2)
	ev2.Broadcast()
	doneAt := Time(-1)
	e2.Spawn("late", func(p *Proc) {
		ev2.Wait(p)
		doneAt = p.Now()
	})
	e2.Run()
	if doneAt != 0 {
		t.Fatalf("wait after broadcast completed at %v", doneAt)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	var okResult, timeoutResult bool
	var timeoutAt Time
	e.Spawn("timeout", func(p *Proc) {
		timeoutResult = ev.WaitTimeout(p, 3*Millisecond)
		timeoutAt = p.Now()
	})
	e.Spawn("winner", func(p *Proc) {
		p.Wait(10 * Millisecond)
		ok := ev.WaitTimeout(p, 50*Millisecond)
		okResult = ok
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Wait(20 * Millisecond)
		ev.Signal()
	})
	e.Run()
	if timeoutResult {
		t.Fatal("expected timeout, got signal")
	}
	if timeoutAt != 3*Millisecond {
		t.Fatalf("timeout fired at %v", timeoutAt)
	}
	if !okResult {
		t.Fatal("expected signal before timeout")
	}
}

func TestTimedOutWaiterDoesNotConsumeToken(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	got := false
	e.Spawn("quitter", func(p *Proc) {
		ev.WaitTimeout(p, Millisecond)
	})
	e.Spawn("patient", func(p *Proc) {
		p.Wait(2 * Millisecond)
		got = ev.WaitTimeout(p, 10*Millisecond)
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Wait(5 * Millisecond)
		ev.Signal()
	})
	e.Run()
	if !got {
		t.Fatal("token lost to a timed-out waiter")
	}
}

func TestKill(t *testing.T) {
	e := NewEnv()
	reached := false
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Wait(100 * Millisecond)
		reached = true
	})
	e.Spawn("killer", func(kp *Proc) {
		kp.Wait(Millisecond)
		e.Kill(p)
	})
	e.Run()
	if reached {
		t.Fatal("killed process continued past Wait")
	}
	if !cleaned {
		t.Fatal("killed process's defers did not run")
	}
	if !p.Dead() {
		t.Fatal("killed process not marked dead")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", e.LiveProcs())
	}
}

func TestKillBeforeStart(t *testing.T) {
	e := NewEnv()
	started := false
	p := e.SpawnAfter(10*Millisecond, "late", func(p *Proc) { started = true })
	e.Spawn("killer", func(kp *Proc) { e.Kill(p) })
	e.Run()
	if started {
		t.Fatal("process killed before start still ran")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d", e.LiveProcs())
	}
}

func TestDoneEvent(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("worker", func(p *Proc) { p.Wait(5 * Millisecond) })
	var joinedAt Time = -1
	e.Spawn("joiner", func(j *Proc) {
		p.Done().Wait(j)
		joinedAt = j.Now()
	})
	e.Run()
	if joinedAt != 5*Millisecond {
		t.Fatalf("joined at %v", joinedAt)
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	for i := 0; i < 10; i++ {
		e.Spawn("stuck", func(p *Proc) { ev.Wait(p) })
	}
	e.Run()
	if e.LiveProcs() != 10 {
		t.Fatalf("LiveProcs before shutdown = %d", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after shutdown = %d", e.LiveProcs())
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Wait(Millisecond)
			active--
			r.Release()
		})
	}
	e.Run()
	if maxActive != 1 {
		t.Fatalf("maxActive = %d with capacity 1", maxActive)
	}
	if e.Now() != 5*Millisecond {
		t.Fatalf("serialized holders should end at 5ms, got %v", e.Now())
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 3)
	var end Time
	for i := 0; i < 6; i++ {
		e.Spawn("user", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			end = p.Now()
		})
	}
	e.Run()
	if end != 20*Millisecond {
		t.Fatalf("6 users, capacity 3, 10ms each should end at 20ms, got %v", end)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.SpawnAfter(Time(i)*Microsecond, "u", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Wait(Millisecond)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v", order)
		}
	}
}

func TestResourceReleasePanicsWhenFree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on free resource did not panic")
		}
	}()
	e := NewEnv()
	NewResource(e, 1).Release()
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on held resource succeeded")
	}
	r.Release()
	e.Run()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue(e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(Millisecond)
			q.Put(i)
		}
	})
	e.Run()
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEnv()
	q := NewQueue(e)
	var ok bool
	e.Spawn("c", func(p *Proc) {
		_, ok = q.GetTimeout(p, Millisecond)
	})
	e.Run()
	if ok {
		t.Fatal("GetTimeout on empty queue returned ok")
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical traces — the core reproducibility guarantee.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) string {
		e := NewEnv()
		r := rng.New(seed)
		ev := NewEvent(e)
		res := NewResource(e, 2)
		trace := ""
		for i := 0; i < 20; i++ {
			i := i
			d := Time(r.Intn(1000)) * Microsecond
			e.SpawnAfter(d, fmt.Sprintf("p%d", i), func(p *Proc) {
				res.Acquire(p)
				p.Wait(Time(r.Intn(100)) * Microsecond)
				trace += fmt.Sprintf("%d@%v;", i, p.Now())
				res.Release()
				if i%3 == 0 {
					ev.Signal()
				} else if i%3 == 1 {
					ev.WaitTimeout(p, Millisecond)
				}
			})
		}
		e.Run()
		e.Shutdown()
		return trace
	}
	a, b := run(99), run(99)
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n%s", a, b)
	}
	if c := run(100); c == a {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEnv()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkSpawn(b *testing.B) {
	e := NewEnv()
	for i := 0; i < b.N; i++ {
		e.Spawn("p", func(p *Proc) {})
	}
	e.Run()
}
