package sim

import "testing"

// These benchmarks lock in the kernel hot-path costs: schedule+fire,
// park/unpark, and Event.Signal delivery. Run with -benchmem; the alloc
// assertions below fail the ordinary test run if pooling regresses.

// BenchmarkSchedule measures scheduling a future callback and firing it
// (heap push + pop + dispatch through the event pool).
func BenchmarkSchedule(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.After(Microsecond, fn)
		if i%64 == 63 {
			env.Run()
		}
	}
	env.Run()
}

// BenchmarkScheduleNow measures the at-now fast path (FIFO ring, no heap).
func BenchmarkScheduleNow(b *testing.B) {
	env := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.After(0, fn)
		if i%64 == 63 {
			env.Run()
		}
	}
	env.Run()
}

// BenchmarkParkUnpark measures a process suspending for one microsecond of
// virtual time and being resumed (beginPark + scheduleWake + goroutine
// handoff both ways).
func BenchmarkParkUnpark(b *testing.B) {
	env := NewEnv()
	env.Spawn("parker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkEventSignal measures token delivery: one producer signals, one
// consumer waits, ping-pong at the same timestamp.
func BenchmarkEventSignal(b *testing.B) {
	env := NewEnv()
	ev := NewEvent(env)
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ev.Wait(p)
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ev.Signal()
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// TestScheduleAllocs asserts the schedule+fire path stays within one
// allocation per operation (the *Timer handle; the pooled event and the
// queues themselves contribute none in steady state).
func TestScheduleAllocs(t *testing.T) {
	env := NewEnv()
	fn := func() {}
	// Warm the event pool and queue capacity.
	for i := 0; i < 100; i++ {
		env.After(Microsecond, fn)
	}
	env.Run()
	for name, d := range map[string]Time{"future": Microsecond, "now": 0} {
		avg := testing.AllocsPerRun(500, func() {
			env.After(d, fn)
			env.Run()
		})
		if avg > 1 {
			t.Errorf("schedule+fire (%s): %.2f allocs/op, want <= 1", name, avg)
		}
	}
}

// TestParkUnparkAllocs asserts a full park/unpark cycle allocates nothing:
// the waiter is embedded in the Proc and the wakeup event is pooled.
func TestParkUnparkAllocs(t *testing.T) {
	env := NewEnv()
	var avg float64
	env.Spawn("parker", func(p *Proc) {
		p.Wait(Microsecond) // warm the pool
		avg = testing.AllocsPerRun(500, func() { p.Wait(Microsecond) })
	})
	env.Run()
	if avg > 0 {
		t.Errorf("park/unpark: %.2f allocs/op, want 0", avg)
	}
}

// TestEventSignalAllocs asserts Signal with a blocked waiter allocates
// nothing (bound dispatch closure, pooled dispatch event, embedded waiter).
func TestEventSignalAllocs(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	const rounds = 500
	var avg float64
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < rounds+10; i++ {
			ev.Wait(p)
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ { // warm pool and waiter slices
			ev.Signal()
			p.Yield()
		}
		avg = testing.AllocsPerRun(rounds, func() {
			ev.Signal()
			p.Yield()
		})
	})
	env.Run()
	if avg > 0 {
		t.Errorf("signal+deliver: %.2f allocs/op, want 0", avg)
	}
}

// TestEventPoolRecycles checks the free list actually turns over instead
// of growing without bound.
func TestEventPoolRecycles(t *testing.T) {
	env := NewEnv()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		env.After(Time(i)*Microsecond, fn)
	}
	env.Run()
	grew := len(env.free)
	for i := 0; i < 1000; i++ {
		env.After(Time(i)*Microsecond, fn)
		if i%10 == 9 {
			env.Run()
		}
	}
	env.Run()
	if len(env.free) > grew+16 {
		t.Errorf("free list grew from %d to %d across a same-sized workload", grew, len(env.free))
	}
}
