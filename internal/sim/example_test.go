package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Example shows the process-oriented style: two simulated dæmons
// exchanging a signal in virtual time. The whole exchange runs in
// microseconds of wall time regardless of the virtual durations.
func Example() {
	env := sim.NewEnv()
	ready := sim.NewEvent(env)

	env.Spawn("server", func(p *sim.Proc) {
		p.Wait(250 * sim.Millisecond) // boot time
		ready.Signal()
	})
	env.Spawn("client", func(p *sim.Proc) {
		ready.Wait(p)
		fmt.Printf("server ready at %v\n", p.Now())
	})
	env.Run()
	// Output:
	// server ready at 250.000ms
}

// Example_resource models a contended device: three transfers share a
// single-ported link in FIFO order.
func Example_resource() {
	env := sim.NewEnv()
	link := sim.NewResource(env, 1)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(fmt.Sprintf("xfer%d", i), func(p *sim.Proc) {
			link.Use(p, 10*sim.Millisecond)
			fmt.Printf("transfer %d done at %v\n", i, p.Now())
		})
	}
	env.Run()
	// Output:
	// transfer 0 done at 10.000ms
	// transfer 1 done at 20.000ms
	// transfer 2 done at 30.000ms
}
