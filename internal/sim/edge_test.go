package sim

import "testing"

func TestKillSelfPanics(t *testing.T) {
	e := NewEnv()
	panicked := false
	e.Spawn("suicidal", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		// A process cannot kill itself; the kernel must reject it loudly
		// rather than deadlock.
		var self *Proc
		self = p
		e.Kill(self)
	})
	e.Run()
	if !panicked {
		t.Fatal("self-kill did not panic")
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEnv()
	panicked := false
	e.Spawn("nested", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Run() // reentrant: must panic, not corrupt the scheduler
	})
	e.Run()
	if !panicked {
		t.Fatal("reentrant Run did not panic")
	}
}

func TestBlockingCallOutsideProcPanics(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("idle", func(p *Proc) { p.Wait(Millisecond) })
	defer func() {
		if recover() == nil {
			t.Fatal("Wait from outside the process goroutine did not panic")
		}
	}()
	// Calling a blocking method from the test goroutine (kernel context)
	// is a programming error the kernel detects.
	p.Wait(Millisecond)
}

func TestNegativeWaitActsAsYield(t *testing.T) {
	e := NewEnv()
	var at Time = -1
	e.Spawn("p", func(p *Proc) {
		p.Wait(-5 * Second)
		at = p.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("negative wait advanced time to %v", at)
	}
}

func TestSpawnAfterNegativeDelay(t *testing.T) {
	e := NewEnv()
	ran := false
	e.SpawnAfter(-Second, "p", func(p *Proc) { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay spawn never ran")
	}
}

func TestEventsRunCounter(t *testing.T) {
	e := NewEnv()
	for i := 0; i < 5; i++ {
		e.After(Millisecond, func() {})
	}
	e.Run()
	if e.EventsRun() < 5 {
		t.Fatalf("EventsRun = %d, want >= 5", e.EventsRun())
	}
}

func TestAtSchedulesAbsolute(t *testing.T) {
	e := NewEnv()
	var at Time
	e.At(7*Millisecond, func() { at = e.Now() })
	e.Run()
	if at != 7*Millisecond {
		t.Fatalf("At fired at %v", at)
	}
}

func TestKillDeadProcIsNoop(t *testing.T) {
	e := NewEnv()
	p := e.Spawn("fleeting", func(p *Proc) {})
	e.Run()
	if !p.Dead() {
		t.Fatal("process not dead after Run")
	}
	e.Kill(p) // must not panic or enqueue anything harmful
	e.Kill(nil)
	e.Run()
}

func TestProcNameAndEnv(t *testing.T) {
	e := NewEnv()
	var name string
	var env *Env
	p := e.Spawn("worker-7", func(p *Proc) {
		name = p.Name()
		env = p.Env()
	})
	e.Run()
	if name != "worker-7" || env != e {
		t.Fatalf("Name/Env wrong: %q %p", name, env)
	}
	_ = p
}

func TestResourceUseHelper(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	if e.Now() != 30*Millisecond {
		t.Fatalf("3 serialized 10ms uses ended at %v", e.Now())
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not idle: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}

func TestQueueLenAndOrderAcrossTimeouts(t *testing.T) {
	e := NewEnv()
	q := NewQueue(e)
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	var got []string
	e.Spawn("c", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, ok := q.GetTimeout(p, Second)
			if !ok {
				t.Error("timeout on non-empty queue")
				return
			}
			got = append(got, v.(string))
		}
	})
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}
