// Package sim is a deterministic discrete-event simulation kernel.
//
// The STORM reproduction simulates a 64-node/256-processor cluster on a
// single machine, so all protocol code (dæmons, NIC engines, filesystem
// servers, applications) runs as simulation processes in virtual time.
//
// Design:
//
//   - Each simulation process is a goroutine, but exactly one simulation
//     goroutine executes at any instant: the kernel hands control to a
//     process and waits for it to park (block in virtual time) or terminate
//     before advancing. There is therefore no data race between simulation
//     processes by construction, and no locking is needed in model code.
//
//   - Every wakeup flows through a single event queue ordered by
//     (virtual time, sequence number). Runs are bit-reproducible: the same
//     model and seed produce the same trace on every platform.
//
//   - Virtual time is an int64 nanosecond count (Time). Helpers convert
//     from float64 seconds, always rounding the same way.
//
// An Env is confined to one OS goroutine at a time (the one calling Run);
// independent Envs may run concurrently on different goroutines, which is
// how the experiments package parallelizes sweeps.
//
// Hot-path layout: the queue is split into a binary heap for future events
// and a FIFO ring for events scheduled at the current timestamp — the
// dominant case (signals, handoffs, yields), which would otherwise churn
// the heap. Event structs are recycled through a per-Env free list, and
// process wakeups are encoded directly in the event (no closure), so the
// schedule/park/signal paths run allocation-free in steady state. Both
// queues honor the same (time, sequence) total order, so the split is
// invisible to models.
//
// The style follows process-oriented simulators such as SimPy: model code
// reads top-to-bottom ("transfer chunk; wait for DMA; signal event") rather
// than as a web of callbacks, which matters because the STORM protocols are
// genuinely sequential programs.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual-time instant in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as multipliers: 5 * sim.Millisecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a Time to float64 milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts a Time to float64 microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts float64 seconds to a Time, rounding to the nearest
// nanosecond. Negative and NaN durations are clamped to zero.
func FromSeconds(s float64) Time {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	return Time(math.Round(s * float64(Second)))
}

// FromMicroseconds converts float64 microseconds to a Time.
func FromMicroseconds(us float64) Time { return FromSeconds(us * 1e-6) }

// FromMilliseconds converts float64 milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return FromSeconds(ms * 1e-3) }

// event is one pending queue entry. Events are recycled through the Env's
// free list, so nothing outside the kernel may retain one past its firing;
// Timer guards against that with the (unique, never reused) seq.
//
// A wakeup event carries its waiter inline (w != nil) instead of a closure,
// which keeps the park/unpark path allocation-free.
type event struct {
	at       Time
	seq      uint64
	fn       func()  // callback, when w == nil
	w        *waiter // wake target, when non-nil
	wgen     uint64  // waiter generation the wake is for
	wok      bool    // resumeMsg.ok payload for the wake
	canceled bool
}

// eventHeap is a binary min-heap on (at, seq). It is hand-rolled (rather
// than container/heap) to keep the hot path free of interface calls.
type eventHeap []*event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	// Sift the displaced element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && q.before(r, l) {
			child = r
		}
		if !q.before(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return ev
}

// Timer is a handle to a scheduled callback that can be canceled.
type Timer struct {
	ev  *event
	seq uint64
}

// Cancel prevents the timer's callback from running. It is safe to call
// after the timer has fired (a no-op) and more than once. The seq check
// makes Cancel a no-op once the underlying event has been recycled for an
// unrelated scheduling.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil && t.ev.seq == t.seq {
		t.ev.canceled = true
	}
}

// Env is a simulation environment: a virtual clock, an event queue, and
// the set of live processes. Create with NewEnv; drive with Run.
type Env struct {
	now     Time
	queue   eventHeap // events strictly after now
	nowq    []*event  // FIFO of events at the current timestamp
	nowHead int
	free    []*event // recycled event structs
	seq     uint64
	yield   chan struct{}
	procs   map[int]*Proc
	idCtr   int
	current *Proc
	running bool

	eventsRun uint64
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// EventsRun returns the total number of queue events dispatched so far,
// a cheap proxy for simulation effort.
func (e *Env) EventsRun() uint64 { return e.eventsRun }

// newEvent takes an event from the free list (or allocates one) and stamps
// it with a fresh sequence number.
func (e *Env) newEvent(at Time) *event {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.canceled = false
	return ev
}

// release returns a fired (or canceled) event to the free list, dropping
// its references so the pool pins no model state.
func (e *Env) release(ev *event) {
	ev.fn = nil
	ev.w = nil
	e.free = append(e.free, ev)
}

// enqueue routes an event to the at-now FIFO or the future heap.
func (e *Env) enqueue(ev *event) {
	if ev.at == e.now {
		e.nowq = append(e.nowq, ev)
	} else {
		e.queue.push(ev)
	}
}

// schedule inserts a callback at absolute time at (clamped to now).
func (e *Env) schedule(at Time, fn func()) *event {
	ev := e.newEvent(at)
	ev.fn = fn
	e.enqueue(ev)
	return ev
}

// scheduleWake inserts a wakeup for waiter w (generation gen) at absolute
// time at. Unlike schedule it captures no closure: the waiter rides in the
// event itself, so a park costs no allocations.
func (e *Env) scheduleWake(at Time, w *waiter, gen uint64, ok bool) *event {
	ev := e.newEvent(at)
	ev.w = w
	ev.wgen = gen
	ev.wok = ok
	e.enqueue(ev)
	return ev
}

// After schedules fn to run after delay d of virtual time and returns a
// cancelable Timer. fn runs in kernel context and must not park; use Spawn
// for code that needs to wait.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	ev := e.schedule(e.now+d, fn)
	return &Timer{ev: ev, seq: ev.seq}
}

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Env) At(t Time, fn func()) *Timer {
	ev := e.schedule(t, fn)
	return &Timer{ev: ev, seq: ev.seq}
}

// pending reports whether any event is queued.
func (e *Env) pending() bool {
	return e.nowHead < len(e.nowq) || len(e.queue) > 0
}

// next peeks the globally next event — the (at, seq) minimum across the
// at-now FIFO and the future heap — and reports which queue holds it.
// The FIFO is seq-ordered by construction, so its head is its minimum.
func (e *Env) next() (ev *event, fromNow bool) {
	if e.nowHead < len(e.nowq) {
		ev, fromNow = e.nowq[e.nowHead], true
		if len(e.queue) > 0 {
			top := e.queue[0]
			if top.at < ev.at || (top.at == ev.at && top.seq < ev.seq) {
				ev, fromNow = top, false
			}
		}
		return ev, fromNow
	}
	if len(e.queue) > 0 {
		return e.queue[0], false
	}
	return nil, false
}

// Run dispatches events until the queue is empty. Model code typically
// spawns its processes first, then calls Run once.
func (e *Env) Run() { e.RunUntil(-1) }

// RunUntil dispatches events with timestamps <= until (or all events when
// until < 0). Events beyond the horizon remain queued. On return with a
// non-negative horizon, the clock reads exactly until.
func (e *Env) RunUntil(until Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		ev, fromNow := e.next()
		if ev == nil || (until >= 0 && ev.at > until) {
			break
		}
		if fromNow {
			e.nowHead++
			if e.nowHead == len(e.nowq) {
				e.nowq = e.nowq[:0]
				e.nowHead = 0
			}
		} else {
			e.queue.pop()
		}
		if ev.canceled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.eventsRun++
		// Unload the event before dispatching so the callback can recycle
		// it immediately (it may well schedule the next one).
		if w := ev.w; w != nil {
			gen, ok := ev.wgen, ev.wok
			e.release(ev)
			e.wake(w, gen, resumeMsg{ok: ok})
		} else {
			fn := ev.fn
			e.release(ev)
			fn()
		}
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
}

// killSentinel is the panic value used to unwind force-terminated processes.
type killSentinel struct{}

// resumeMsg is what a parked process receives when resumed. ok carries
// "condition satisfied" (true) vs. "timed out" (false).
type resumeMsg struct {
	kill bool
	ok   bool
}

// waiter guards one park: the first wake wins, later wakes are no-ops.
// This makes timeouts, signals, and kills race-free.
//
// Each Proc owns a single waiter reused across parks; the generation
// number distinguishes parks, so a stale waker from an earlier park (say,
// the timeout event of a Wait that was satisfied by a Signal) misses its
// generation and does nothing. Everything that retains a waiter across
// kernel steps must retain the generation it was armed with (waiterRef).
type waiter struct {
	p     *Proc
	gen   uint64
	fired bool
}

// waiterRef is a waiter pinned to the park generation it was enqueued for.
type waiterRef struct {
	w   *waiter
	gen uint64
}

// stale reports whether the referenced park is over (woken, superseded, or
// the process died), i.e. the ref must be skipped, not woken.
func (r waiterRef) stale() bool {
	return r.w.gen != r.gen || r.w.fired || r.w.p.dead
}

// wake resumes the waiter's process if the generation still matches and it
// has not been woken already. Runs in kernel context.
func (e *Env) wake(w *waiter, gen uint64, msg resumeMsg) {
	if w.gen != gen || w.fired || w.p.dead {
		return
	}
	w.fired = true
	e.switchTo(w.p, msg)
}

// Proc is a simulation process: a goroutine interleaved with others in
// virtual time. All blocking Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	env     *Env
	name    string
	id      int
	resume  chan resumeMsg
	done    *Event
	dead    bool
	w       waiter  // the proc's reusable park guard
	waiting *waiter // guard for the current park, if any
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done returns an Event signaled exactly once when the process terminates.
func (p *Proc) Done() *Event { return p.done }

// Dead reports whether the process has terminated.
func (p *Proc) Dead() bool { return p.dead }

// beginPark arms the process's waiter for a new park and returns it with
// the generation wakers must present.
func (p *Proc) beginPark() (*waiter, uint64) {
	p.w.gen++
	p.w.fired = false
	p.waiting = &p.w
	return &p.w, p.w.gen
}

// Spawn creates a process running fn, starting at the current virtual time
// (after already-queued events at this timestamp).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter creates a process that starts running fn after delay d.
func (e *Env) SpawnAfter(d Time, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		d = 0
	}
	e.idCtr++
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.idCtr,
		resume: make(chan resumeMsg),
	}
	p.w.p = p
	p.done = NewEvent(e)
	e.procs[p.id] = p
	go func() {
		msg := <-p.resume
		if !msg.kill {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(killSentinel); !ok {
							panic(r)
						}
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		delete(e.procs, p.id)
		p.done.Broadcast()
		e.yield <- struct{}{}
	}()
	// The start is guarded like any park so that a Kill issued before the
	// start event dispatches does not leave a dangling resume.
	w, gen := p.beginPark()
	e.scheduleWake(e.now+d, w, gen, true)
	return p
}

// switchTo transfers control to process p and waits until it parks or
// terminates. Runs in kernel context.
func (e *Env) switchTo(p *Proc, msg resumeMsg) {
	prev := e.current
	e.current = p
	p.resume <- msg
	<-e.yield
	e.current = prev
}

// park blocks the calling process until its current waiter is woken,
// returning the resume payload. p.waiting must be set by the caller
// (via beginPark).
func (p *Proc) park() resumeMsg {
	if p.env.current != p {
		panic("sim: blocking call from outside the process's goroutine")
	}
	p.env.yield <- struct{}{}
	msg := <-p.resume
	p.waiting = nil
	if msg.kill {
		panic(killSentinel{})
	}
	return msg
}

// Wait suspends the process for d of virtual time. Negative durations are
// treated as zero (the process yields and resumes at the same timestamp,
// after already-queued events).
func (p *Proc) Wait(d Time) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now + d)
}

// WaitUntil suspends the process until absolute virtual time t.
func (p *Proc) WaitUntil(t Time) {
	w, gen := p.beginPark()
	p.env.scheduleWake(t, w, gen, true)
	p.park()
}

// Yield lets all other events queued at the current timestamp run first.
func (p *Proc) Yield() { p.Wait(0) }

// Kill force-terminates a process at the next safe point (it unwinds via
// panic/recover, so the process's deferred functions run). Killing a dead
// process is a no-op. A process must not kill itself.
func (e *Env) Kill(p *Proc) {
	if p == nil || p.dead {
		return
	}
	if e.current == p {
		panic("sim: process cannot Kill itself")
	}
	e.schedule(e.now, func() {
		if p.dead {
			return
		}
		if p.waiting != nil {
			// Claim the park so any pending timer/signal wake becomes a no-op.
			p.waiting.fired = true
		}
		e.switchTo(p, resumeMsg{kill: true})
	})
}

// Shutdown force-terminates all live processes and drains their wakeups.
// Call after Run to release goroutines from simulations that ended with
// processes still parked (e.g. servers waiting for requests).
func (e *Env) Shutdown() {
	for len(e.procs) > 0 {
		for _, p := range e.procs {
			e.Kill(p)
		}
		e.RunUntil(e.now)
	}
}

// LiveProcs returns the number of live (not yet terminated) processes.
func (e *Env) LiveProcs() int { return len(e.procs) }
