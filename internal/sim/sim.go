// Package sim is a deterministic discrete-event simulation kernel.
//
// The STORM reproduction simulates a 64-node/256-processor cluster on a
// single machine, so all protocol code (dæmons, NIC engines, filesystem
// servers, applications) runs as simulation processes in virtual time.
//
// Design:
//
//   - Each simulation process is a goroutine, but exactly one simulation
//     goroutine executes at any instant: the kernel hands control to a
//     process and waits for it to park (block in virtual time) or terminate
//     before advancing. There is therefore no data race between simulation
//     processes by construction, and no locking is needed in model code.
//
//   - Every wakeup flows through a single event queue ordered by
//     (virtual time, sequence number). Runs are bit-reproducible: the same
//     model and seed produce the same trace on every platform.
//
//   - Virtual time is an int64 nanosecond count (Time). Helpers convert
//     from float64 seconds, always rounding the same way.
//
// The style follows process-oriented simulators such as SimPy: model code
// reads top-to-bottom ("transfer chunk; wait for DMA; signal event") rather
// than as a web of callbacks, which matters because the STORM protocols are
// genuinely sequential programs.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual-time instant in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, usable as multipliers: 5 * sim.Millisecond.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a Time to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts a Time to float64 milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts a Time to float64 microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts float64 seconds to a Time, rounding to the nearest
// nanosecond. Negative and NaN durations are clamped to zero.
func FromSeconds(s float64) Time {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	return Time(math.Round(s * float64(Second)))
}

// FromMicroseconds converts float64 microseconds to a Time.
func FromMicroseconds(us float64) Time { return FromSeconds(us * 1e-6) }

// FromMilliseconds converts float64 milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return FromSeconds(ms * 1e-3) }

// event is one pending queue entry.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled callback that can be canceled.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. It is safe to call
// after the timer has fired (a no-op) and more than once.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Env is a simulation environment: a virtual clock, an event queue, and
// the set of live processes. Create with NewEnv; drive with Run.
type Env struct {
	now     Time
	queue   eventHeap
	seq     uint64
	yield   chan struct{}
	procs   map[int]*Proc
	idCtr   int
	current *Proc
	running bool

	eventsRun uint64
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// EventsRun returns the total number of queue events dispatched so far,
// a cheap proxy for simulation effort.
func (e *Env) EventsRun() uint64 { return e.eventsRun }

// schedule inserts a callback at absolute time at (clamped to now).
func (e *Env) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run after delay d of virtual time and returns a
// cancelable Timer. fn runs in kernel context and must not park; use Spawn
// for code that needs to wait.
func (e *Env) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return &Timer{ev: e.schedule(e.now+d, fn)}
}

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Env) At(t Time, fn func()) *Timer {
	return &Timer{ev: e.schedule(t, fn)}
}

// Run dispatches events until the queue is empty. Model code typically
// spawns its processes first, then calls Run once.
func (e *Env) Run() { e.RunUntil(-1) }

// RunUntil dispatches events with timestamps <= until (or all events when
// until < 0). Events beyond the horizon remain queued. On return with a
// non-negative horizon, the clock reads exactly until.
func (e *Env) RunUntil(until Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if until >= 0 && ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.eventsRun++
		ev.fn()
	}
	if until >= 0 && e.now < until {
		e.now = until
	}
}

// killSentinel is the panic value used to unwind force-terminated processes.
type killSentinel struct{}

// resumeMsg is what a parked process receives when resumed. ok carries
// "condition satisfied" (true) vs. "timed out" (false).
type resumeMsg struct {
	kill bool
	ok   bool
}

// waiter guards one park: the first wake wins, later wakes are no-ops.
// This makes timeouts, signals, and kills race-free.
type waiter struct {
	p     *Proc
	fired bool
}

// wake resumes the waiter's process if it has not been woken already.
// Runs in kernel context.
func (e *Env) wake(w *waiter, msg resumeMsg) {
	if w.fired || w.p.dead {
		return
	}
	w.fired = true
	e.switchTo(w.p, msg)
}

// Proc is a simulation process: a goroutine interleaved with others in
// virtual time. All blocking Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	env     *Env
	name    string
	id      int
	resume  chan resumeMsg
	done    *Event
	dead    bool
	waiting *waiter // guard for the current park, if any
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done returns an Event signaled exactly once when the process terminates.
func (p *Proc) Done() *Event { return p.done }

// Dead reports whether the process has terminated.
func (p *Proc) Dead() bool { return p.dead }

// Spawn creates a process running fn, starting at the current virtual time
// (after already-queued events at this timestamp).
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter creates a process that starts running fn after delay d.
func (e *Env) SpawnAfter(d Time, name string, fn func(p *Proc)) *Proc {
	if d < 0 {
		d = 0
	}
	e.idCtr++
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.idCtr,
		resume: make(chan resumeMsg),
	}
	p.done = NewEvent(e)
	e.procs[p.id] = p
	go func() {
		msg := <-p.resume
		if !msg.kill {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(killSentinel); !ok {
							panic(r)
						}
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		delete(e.procs, p.id)
		p.done.Broadcast()
		e.yield <- struct{}{}
	}()
	// The start is guarded like any park so that a Kill issued before the
	// start event dispatches does not leave a dangling resume.
	w := &waiter{p: p}
	p.waiting = w
	e.schedule(e.now+d, func() { e.wake(w, resumeMsg{ok: true}) })
	return p
}

// switchTo transfers control to process p and waits until it parks or
// terminates. Runs in kernel context.
func (e *Env) switchTo(p *Proc, msg resumeMsg) {
	prev := e.current
	e.current = p
	p.resume <- msg
	<-e.yield
	e.current = prev
}

// park blocks the calling process until its current waiter is woken,
// returning the resume payload. p.waiting must be set by the caller.
func (p *Proc) park() resumeMsg {
	if p.env.current != p {
		panic("sim: blocking call from outside the process's goroutine")
	}
	p.env.yield <- struct{}{}
	msg := <-p.resume
	p.waiting = nil
	if msg.kill {
		panic(killSentinel{})
	}
	return msg
}

// Wait suspends the process for d of virtual time. Negative durations are
// treated as zero (the process yields and resumes at the same timestamp,
// after already-queued events).
func (p *Proc) Wait(d Time) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now + d)
}

// WaitUntil suspends the process until absolute virtual time t.
func (p *Proc) WaitUntil(t Time) {
	e := p.env
	w := &waiter{p: p}
	p.waiting = w
	e.schedule(t, func() { e.wake(w, resumeMsg{ok: true}) })
	p.park()
}

// Yield lets all other events queued at the current timestamp run first.
func (p *Proc) Yield() { p.Wait(0) }

// Kill force-terminates a process at the next safe point (it unwinds via
// panic/recover, so the process's deferred functions run). Killing a dead
// process is a no-op. A process must not kill itself.
func (e *Env) Kill(p *Proc) {
	if p == nil || p.dead {
		return
	}
	if e.current == p {
		panic("sim: process cannot Kill itself")
	}
	e.schedule(e.now, func() {
		if p.dead {
			return
		}
		if p.waiting != nil {
			// Claim the park so any pending timer/signal wake becomes a no-op.
			p.waiting.fired = true
		}
		e.switchTo(p, resumeMsg{kill: true})
	})
}

// Shutdown force-terminates all live processes and drains their wakeups.
// Call after Run to release goroutines from simulations that ended with
// processes still parked (e.g. servers waiting for requests).
func (e *Env) Shutdown() {
	for len(e.procs) > 0 {
		for _, p := range e.procs {
			e.Kill(p)
		}
		e.RunUntil(e.now)
	}
}

// LiveProcs returns the number of live (not yet terminated) processes.
func (e *Env) LiveProcs() int { return len(e.procs) }
