package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 {
		t.Fatal("empty sample has nonzero N")
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Min": s.Min(), "Max": s.Max(),
		"Median": s.Median(), "Stddev": s.Stddev(),
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s of empty sample = %v, want NaN", name, v)
		}
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(10)
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", got)
	}
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("P0 = %v, want 0", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("P100 = %v, want 10", got)
	}
}

func TestPercentileMonotonic(t *testing.T) {
	if err := quick.Check(func(vals []float64, a, b uint8) bool {
		var s Sample
		ok := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		pa := float64(a%101) / 1.0
		pb := float64(b%101) / 1.0
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestValuesSortedCopy(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	vals := s.Values()
	if !sort.Float64sAreSorted(vals) {
		t.Fatalf("Values not sorted: %v", vals)
	}
	vals[0] = 99
	if s.Min() == 99 {
		t.Fatal("Values did not return a copy")
	}
}

func TestSeries(t *testing.T) {
	var ser Series
	ser.Name = "launch"
	ser.Add(1, 10)
	ser.Add(2, 20)
	if got := ser.YAt(2); got != 20 {
		t.Fatalf("YAt(2) = %v, want 20", got)
	}
	if got := ser.YAt(3); !math.IsNaN(got) {
		t.Fatalf("YAt(3) = %v, want NaN", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Launch times", "Nodes", "Time (ms)")
	tab.AddRow(64, 110.0)
	tab.AddRow(128, 112.5)
	out := tab.String()
	for _, want := range []string{"Launch times", "Nodes", "Time (ms)", "110", "112.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("x,y", 1.0)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("CSV did not quote comma cell:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("CSV missing header:\n%s", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.NaN(): "-",
		12:         "12",
		1234.5:     "1234.5",
		3.14159:    "3.14",
		0.052:      "0.0520",
		1e-9:       "1e-09",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
