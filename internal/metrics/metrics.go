// Package metrics provides the small statistics and tabulation toolkit used
// by the STORM experiment harness: samples with mean/min/median/percentiles,
// named data series, and fixed-width table rendering for terminal output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations and answers summary queries.
// The zero value is an empty, ready-to-use sample.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or NaN if empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or NaN if empty.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or NaN if empty.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ensureSorted sorts the backing slice once; queries share the sorted order.
func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks, or NaN if empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Stddev returns the population standard deviation, or NaN if empty.
func (s *Sample) Stddev() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Point is one (X, Y) observation in a Series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of (X, Y) points, the unit the experiment
// drivers hand to table/plot rendering.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the Y value at the given X, or NaN if absent.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Table is a simple column-oriented text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float64 compactly: integers without decimals,
// small values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av >= 0.001:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table with aligned fixed-width columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
