// Package nodeos models the operating system of one cluster node at the
// granularity the STORM experiments need:
//
//   - CPUs with processor-sharing among runnable threads. An application
//     process, a spin-loop loader, a dæmon, and transient kernel work are
//     all Threads pinned to a CPU; each runnable thread with pending work
//     receives an equal share of the CPU.
//
//   - Gang-scheduling control: the Node Manager activates and deactivates
//     threads (SetActive); a deactivated thread makes no progress, which
//     is exactly what a coordinated context switch enacts.
//
//   - OS noise: per-CPU background dæmons that steal short CPU bursts at
//     random times. Noise is what skews the "execute" phase of a launch
//     across nodes and makes it grow with the machine size
//     (paper Fig. 2's execute-time curves).
//
//   - Costs for fork/exec and for a context switch (cache/TLB disruption),
//     charged as CPU work so that they automatically stretch under CPU
//     load (paper Fig. 3's CPU-loaded experiments).
package nodeos

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Config holds a node's OS parameters.
type Config struct {
	// CPUs is the number of processors per node (paper Table 3: 4).
	CPUs int
	// ForkExecCPU is the CPU work needed to fork and exec an application
	// process once its binary is on the local RAM disk.
	ForkExecCPU sim.Time
	// SwitchDisruption is the CPU work lost to a coordinated context
	// switch that actually changes the running process (cache/TLB refill,
	// register state, run-queue manipulation).
	SwitchDisruption sim.Time
	// NoiseMeanInterval is the mean inter-arrival time of OS-noise bursts
	// per CPU (exponential).
	NoiseMeanInterval sim.Time
	// NoiseBurstCPU is the median CPU time of one noise burst; actual
	// bursts are lognormal around it with NoiseBurstSigma.
	NoiseBurstCPU   sim.Time
	NoiseBurstSigma float64
}

// DefaultConfig returns parameters calibrated so that a 64-node launch
// shows the paper's few-ms execute skew and a 2 ms gang-scheduling
// quantum costs under 2%.
func DefaultConfig() Config {
	return Config{
		CPUs:              4,
		ForkExecCPU:       4 * sim.Millisecond,
		SwitchDisruption:  30 * sim.Microsecond,
		NoiseMeanInterval: 10 * sim.Millisecond,
		NoiseBurstCPU:     60 * sim.Microsecond,
		NoiseBurstSigma:   1.0,
	}
}

// CPU is one processor implementing processor-sharing among its runnable
// threads.
type CPU struct {
	env   *sim.Env
	node  *Node
	index int
	// consumers is kept in insertion order so that simultaneous
	// completions signal deterministically.
	consumers  []*Thread
	lastUpdate sim.Time
	timer      *sim.Timer
	// busy accumulates the seconds during which at least one runnable
	// thread had pending work (CPU utilization accounting).
	busy float64
}

// Thread is a schedulable entity pinned to one CPU.
type Thread struct {
	cpu    *CPU
	name   string
	active bool
	// remaining is the outstanding CPU work in seconds; negative when the
	// thread has no pending Consume.
	remaining float64
	doneEv    *sim.Event
	onDone    func() // used by Steal-style internal consumers
	// consumed tracks total CPU seconds delivered to this thread.
	consumed float64
}

// Node is one cluster node's OS.
type Node struct {
	env *sim.Env
	id  int
	cfg Config
	cpu []*CPU
	rnd *rng.RNG

	noiseOn bool
}

// New creates a node with the given ID and configuration. Seed controls
// the node's private noise stream.
func New(env *sim.Env, id int, cfg Config, seed uint64) *Node {
	if cfg.CPUs <= 0 {
		panic("nodeos: node needs at least one CPU")
	}
	n := &Node{env: env, id: id, cfg: cfg, rnd: rng.New(seed)}
	n.cpu = make([]*CPU, cfg.CPUs)
	for i := range n.cpu {
		n.cpu[i] = &CPU{env: env, node: n, index: i}
	}
	return n
}

// ID returns the node's cluster-wide ID.
func (n *Node) ID() int { return n.id }

// Config returns the node's OS parameters.
func (n *Node) Config() Config { return n.cfg }

// NumCPUs returns the number of processors.
func (n *Node) NumCPUs() int { return len(n.cpu) }

// CPU returns processor i.
func (n *Node) CPU(i int) *CPU { return n.cpu[i] }

// StartNoise spawns the per-CPU OS-noise dæmons. Idempotent.
func (n *Node) StartNoise() {
	if n.noiseOn || n.cfg.NoiseMeanInterval <= 0 {
		return
	}
	n.noiseOn = true
	for i := range n.cpu {
		cpu := n.cpu[i]
		// Each dæmon gets its own RNG stream so node behavior does not
		// depend on how many CPUs other code touches.
		r := n.rnd.Split()
		n.env.Spawn(fmt.Sprintf("noise:n%d.c%d", n.id, cpu.index), func(p *sim.Proc) {
			th := NewThread(cpu, "osnoise")
			th.SetActive(true)
			for {
				p.Wait(sim.FromSeconds(r.Exp(n.cfg.NoiseMeanInterval.Seconds())))
				burst := n.cfg.NoiseBurstCPU.Seconds() * r.LogNormal(0, n.cfg.NoiseBurstSigma)
				th.Consume(p, sim.FromSeconds(burst))
			}
		})
	}
}

// ForkExec charges the CPU work of forking and exec'ing a process on the
// given CPU, on behalf of the calling process (typically a Program
// Launcher dæmon). Under CPU load this stretches automatically.
func (n *Node) ForkExec(p *sim.Proc, cpu int) {
	th := NewThread(n.cpu[cpu], "forkexec")
	th.SetActive(true)
	th.Consume(p, n.cfg.ForkExecCPU)
	th.SetActive(false)
}

// NewThread creates an inactive thread pinned to the CPU.
func NewThread(cpu *CPU, name string) *Thread {
	return &Thread{cpu: cpu, name: name, remaining: -1, doneEv: sim.NewEvent(cpu.env)}
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// CPU returns the processor the thread is pinned to.
func (t *Thread) CPU() *CPU { return t.cpu }

// Active reports whether the thread is currently entitled to run.
func (t *Thread) Active() bool { return t.active }

// ConsumedSeconds returns the total CPU time delivered so far.
func (t *Thread) ConsumedSeconds() float64 { return t.consumed }

// SetActive changes whether the thread is entitled to CPU. Deactivating a
// thread freezes its pending work; reactivating resumes it. This is the
// knob the Node Manager turns on a coordinated context switch.
func (t *Thread) SetActive(active bool) {
	if t.active == active {
		return
	}
	c := t.cpu
	c.update()
	t.active = active
	c.reschedule()
}

// Consume blocks the calling process until the thread has received d of
// CPU service. Service accrues only while the thread is active, at rate
// 1/k when k runnable threads share the CPU.
func (t *Thread) Consume(p *sim.Proc, d sim.Time) {
	if d <= 0 {
		return
	}
	if t.remaining >= 0 {
		panic("nodeos: thread already consuming")
	}
	c := t.cpu
	c.update()
	t.remaining = d.Seconds()
	c.consumers = append(c.consumers, t)
	c.reschedule()
	t.doneEv.Wait(p)
}

// Abort cancels the thread's pending Consume (if any) without delivering
// its completion: the kill path for processes terminated mid-compute.
// The blocked Consume caller must be unwound separately (sim.Env.Kill).
func (t *Thread) Abort() {
	c := t.cpu
	c.update()
	if t.remaining >= 0 {
		t.remaining = -1
		for i, other := range c.consumers {
			if other == t {
				c.consumers = append(c.consumers[:i], c.consumers[i+1:]...)
				break
			}
		}
	}
	t.active = false
	c.reschedule()
}

// StealCPU occupies the CPU with d of kernel work without blocking the
// caller: a fire-and-forget noise/overhead injection used for context
// switches and interrupt handling.
func (c *CPU) StealCPU(d sim.Time) {
	if d <= 0 {
		return
	}
	th := NewThread(c, "steal")
	th.active = true
	th.onDone = func() { th.active = false }
	c.update()
	th.remaining = d.Seconds()
	c.consumers = append(c.consumers, th)
	c.reschedule()
}

// runnableConsumers counts threads that are active and have pending work.
func (c *CPU) runnableConsumers() int {
	k := 0
	for _, t := range c.consumers {
		if t.active {
			k++
		}
	}
	return k
}

// Load returns the number of runnable threads with pending work — a
// point-in-time utilization indicator.
func (c *CPU) Load() int { return c.runnableConsumers() }

// BusySeconds returns the accumulated time the CPU spent with runnable
// work, up to the last scheduling event. Divide by elapsed virtual time
// for utilization.
func (c *CPU) BusySeconds() float64 {
	c.update()
	return c.busy
}

// update accrues service for the elapsed interval since the last change.
func (c *CPU) update() {
	now := c.env.Now()
	dt := (now - c.lastUpdate).Seconds()
	c.lastUpdate = now
	if dt <= 0 {
		return
	}
	k := c.runnableConsumers()
	if k == 0 {
		return
	}
	c.busy += dt
	share := dt / float64(k)
	for _, t := range c.consumers {
		if t.active {
			t.remaining -= share
			t.consumed += share
		}
	}
}

// reschedule cancels the pending completion timer and arms a new one at
// the earliest projected completion.
func (c *CPU) reschedule() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	// Finish anything that completed (within float tolerance), in
	// insertion order for determinism.
	const eps = 1e-12
	live := c.consumers[:0]
	for _, t := range c.consumers {
		if t.remaining <= eps {
			t.remaining = -1
			if t.onDone != nil {
				t.onDone()
			} else {
				t.doneEv.Signal()
			}
		} else {
			live = append(live, t)
		}
	}
	c.consumers = live
	k := c.runnableConsumers()
	if k == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, t := range c.consumers {
		if t.active && t.remaining < minRem {
			minRem = t.remaining
		}
	}
	d := sim.FromSeconds(minRem * float64(k))
	if d < sim.Nanosecond {
		d = sim.Nanosecond
	}
	c.timer = c.env.After(d, func() {
		c.timer = nil
		c.update()
		c.reschedule()
	})
}
