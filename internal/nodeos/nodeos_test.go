package nodeos

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.NoiseMeanInterval = 0 // disable noise for exact-timing tests
	return cfg
}

func TestSingleThreadFullRate(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var elapsed sim.Time
	env.Spawn("app", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "app")
		th.SetActive(true)
		start := p.Now()
		th.Consume(p, 100*sim.Millisecond)
		elapsed = p.Now() - start
	})
	env.Run()
	if elapsed != 100*sim.Millisecond {
		t.Fatalf("dedicated CPU: 100ms of work took %v", elapsed)
	}
}

func TestTwoThreadsShareEqually(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var end [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("app", func(p *sim.Proc) {
			th := NewThread(n.CPU(0), "app")
			th.SetActive(true)
			th.Consume(p, 100*sim.Millisecond)
			end[i] = p.Now()
		})
	}
	env.Run()
	for i, e := range end {
		if e != 200*sim.Millisecond {
			t.Fatalf("thread %d finished at %v, want 200ms under 50%% sharing", i, e)
		}
	}
}

func TestUnequalWorkDeparture(t *testing.T) {
	// Thread A needs 10ms, thread B needs 30ms. Shared until A leaves at
	// t=20ms; B then runs alone and finishes at 20+20=40ms.
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var endA, endB sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "a")
		th.SetActive(true)
		th.Consume(p, 10*sim.Millisecond)
		endA = p.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "b")
		th.SetActive(true)
		th.Consume(p, 30*sim.Millisecond)
		endB = p.Now()
	})
	env.Run()
	if endA != 20*sim.Millisecond {
		t.Fatalf("A finished at %v, want 20ms", endA)
	}
	if endB != 40*sim.Millisecond {
		t.Fatalf("B finished at %v, want 40ms", endB)
	}
}

func TestSetActiveFreezesProgress(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	th := NewThread(n.CPU(0), "gang")
	var end sim.Time
	env.Spawn("app", func(p *sim.Proc) {
		th.SetActive(true)
		th.Consume(p, 10*sim.Millisecond)
		end = p.Now()
	})
	// Deschedule the thread from 2ms to 52ms: it must finish at 60ms.
	env.After(2*sim.Millisecond, func() { th.SetActive(false) })
	env.After(52*sim.Millisecond, func() { th.SetActive(true) })
	env.Run()
	if end != 60*sim.Millisecond {
		t.Fatalf("frozen thread finished at %v, want 60ms", end)
	}
}

func TestThreadsOnDifferentCPUsDoNotShare(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var end [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("app", func(p *sim.Proc) {
			th := NewThread(n.CPU(i), "app")
			th.SetActive(true)
			th.Consume(p, 50*sim.Millisecond)
			end[i] = p.Now()
		})
	}
	env.Run()
	for i, e := range end {
		if e != 50*sim.Millisecond {
			t.Fatalf("thread %d on its own CPU finished at %v", i, e)
		}
	}
}

func TestStealCPUDelaysApp(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var end sim.Time
	env.Spawn("app", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "app")
		th.SetActive(true)
		th.Consume(p, 10*sim.Millisecond)
		end = p.Now()
	})
	env.After(sim.Millisecond, func() { n.CPU(0).StealCPU(2 * sim.Millisecond) })
	env.Run()
	// 10ms of work + 2ms stolen = 12ms wall.
	if end != 12*sim.Millisecond {
		t.Fatalf("app finished at %v, want 12ms", end)
	}
}

func TestForkExecStretchesUnderLoad(t *testing.T) {
	measure := func(spinners int) sim.Time {
		env := sim.NewEnv()
		n := New(env, 0, quietConfig(), 1)
		for i := 0; i < spinners; i++ {
			env.Spawn("spin", func(p *sim.Proc) {
				th := NewThread(n.CPU(0), "spin")
				th.SetActive(true)
				th.Consume(p, sim.Second) // effectively forever
			})
		}
		var elapsed sim.Time
		env.Spawn("pl", func(p *sim.Proc) {
			p.Yield() // let spinners register first
			start := p.Now()
			n.ForkExec(p, 0)
			elapsed = p.Now() - start
		})
		env.RunUntil(500 * sim.Millisecond)
		env.Shutdown()
		return elapsed
	}
	clean := measure(0)
	loaded := measure(1)
	if clean != 4*sim.Millisecond {
		t.Fatalf("unloaded ForkExec = %v, want 4ms", clean)
	}
	ratio := loaded.Seconds() / clean.Seconds()
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("ForkExec under 1 spinner took %.2fx the unloaded time, want ~2x", ratio)
	}
}

func TestNoiseSkewsCompletion(t *testing.T) {
	// With noise enabled, identical work on different nodes completes at
	// (slightly) different times, and always no earlier than the ideal.
	var ends []float64
	for node := 0; node < 8; node++ {
		env := sim.NewEnv()
		cfg := DefaultConfig()
		n := New(env, node, cfg, uint64(1000+node))
		n.StartNoise()
		var end sim.Time
		env.Spawn("app", func(p *sim.Proc) {
			th := NewThread(n.CPU(0), "app")
			th.SetActive(true)
			th.Consume(p, 10*sim.Millisecond)
			end = p.Now()
		})
		env.RunUntil(sim.Second)
		env.Shutdown()
		ends = append(ends, end.Milliseconds())
	}
	min, max := ends[0], ends[0]
	for _, e := range ends {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if min < 10 {
		t.Fatalf("completion before the work amount is impossible: %v", min)
	}
	if max == min {
		t.Fatal("noise produced zero skew across 8 nodes")
	}
	if max > 13 {
		t.Fatalf("noise skew implausibly large: %v ms for 10ms of work", max)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	run := func() float64 {
		env := sim.NewEnv()
		n := New(env, 3, DefaultConfig(), 77)
		n.StartNoise()
		var end sim.Time
		env.Spawn("app", func(p *sim.Proc) {
			th := NewThread(n.CPU(0), "app")
			th.SetActive(true)
			th.Consume(p, 50*sim.Millisecond)
			end = p.Now()
		})
		env.RunUntil(sim.Second)
		env.Shutdown()
		return end.Seconds()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different completion: %v vs %v", a, b)
	}
}

func TestConsumedSecondsAccounting(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	th := NewThread(n.CPU(0), "app")
	env.Spawn("app", func(p *sim.Proc) {
		th.SetActive(true)
		th.Consume(p, 25*sim.Millisecond)
	})
	env.Run()
	if math.Abs(th.ConsumedSeconds()-0.025) > 1e-9 {
		t.Fatalf("ConsumedSeconds = %v, want 0.025", th.ConsumedSeconds())
	}
}

func TestDoubleConsumePanics(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	th := NewThread(n.CPU(0), "app")
	panicked := false
	env.Spawn("a", func(p *sim.Proc) {
		th.SetActive(true)
		th.Consume(p, 10*sim.Millisecond)
	})
	env.Spawn("b", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		th.Consume(p, 10*sim.Millisecond)
	})
	env.Run()
	if !panicked {
		t.Fatal("concurrent Consume on one thread did not panic")
	}
}

func TestZeroConsumeReturnsImmediately(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	var end sim.Time = -1
	env.Spawn("app", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "app")
		th.SetActive(true)
		th.Consume(p, 0)
		end = p.Now()
	})
	env.Run()
	if end != 0 {
		t.Fatalf("zero consume ended at %v", end)
	}
}

func TestGangSwitchScenario(t *testing.T) {
	// Two gangs timeshare one CPU with a 10ms quantum, enacted by
	// SetActive flips; each needs 50ms of CPU. Total wall ~100ms.
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	a := NewThread(n.CPU(0), "gangA")
	b := NewThread(n.CPU(0), "gangB")
	var endA, endB sim.Time
	env.Spawn("appA", func(p *sim.Proc) {
		a.Consume(p, 50*sim.Millisecond)
		endA = p.Now()
	})
	env.Spawn("appB", func(p *sim.Proc) {
		b.Consume(p, 50*sim.Millisecond)
		endB = p.Now()
	})
	env.Spawn("nm", func(p *sim.Proc) {
		cur := a
		a.SetActive(true)
		for i := 0; i < 20; i++ {
			p.Wait(10 * sim.Millisecond)
			if cur == a {
				a.SetActive(false)
				b.SetActive(true)
				cur = b
			} else {
				b.SetActive(false)
				a.SetActive(true)
				cur = a
			}
		}
	})
	env.Run()
	if endA > 100*sim.Millisecond || endB > 100*sim.Millisecond {
		t.Fatalf("gang completion too late: A=%v B=%v", endA, endB)
	}
	if endA < 50*sim.Millisecond || endB < 90*sim.Millisecond {
		t.Fatalf("gang completion too early: A=%v B=%v", endA, endB)
	}
}

func TestBusySecondsAccounting(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	th := NewThread(n.CPU(0), "app")
	env.Spawn("app", func(p *sim.Proc) {
		th.SetActive(true)
		th.Consume(p, 30*sim.Millisecond)
		p.Wait(70 * sim.Millisecond) // idle
		th.Consume(p, 10*sim.Millisecond)
	})
	env.Run()
	busy := n.CPU(0).BusySeconds()
	if math.Abs(busy-0.040) > 1e-9 {
		t.Fatalf("BusySeconds = %v, want 0.040", busy)
	}
	// Two threads sharing still count the CPU busy once.
	env2 := sim.NewEnv()
	n2 := New(env2, 0, quietConfig(), 1)
	for i := 0; i < 2; i++ {
		env2.Spawn("a", func(p *sim.Proc) {
			t2 := NewThread(n2.CPU(0), "a")
			t2.SetActive(true)
			t2.Consume(p, 50*sim.Millisecond)
		})
	}
	env2.Run()
	if busy := n2.CPU(0).BusySeconds(); math.Abs(busy-0.1) > 1e-9 {
		t.Fatalf("shared BusySeconds = %v, want 0.1", busy)
	}
}

func TestNodeAccessors(t *testing.T) {
	env := sim.NewEnv()
	cfg := quietConfig()
	n := New(env, 7, cfg, 1)
	if n.ID() != 7 || n.NumCPUs() != cfg.CPUs || n.Config().CPUs != cfg.CPUs {
		t.Fatal("accessors wrong")
	}
	th := NewThread(n.CPU(0), "x")
	if th.Name() != "x" || th.CPU() != n.CPU(0) || th.Active() {
		t.Fatal("thread accessors wrong")
	}
}

func TestNewNodeRejectsZeroCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-CPU node did not panic")
		}
	}()
	New(sim.NewEnv(), 0, Config{CPUs: 0}, 1)
}

func TestAbortCancelsPendingConsume(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	victim := NewThread(n.CPU(0), "victim")
	other := NewThread(n.CPU(0), "other")
	var otherEnd sim.Time
	vp := env.Spawn("victim", func(p *sim.Proc) {
		victim.SetActive(true)
		victim.Consume(p, sim.Second)
	})
	env.Spawn("other", func(p *sim.Proc) {
		other.SetActive(true)
		other.Consume(p, 100*sim.Millisecond)
		otherEnd = p.Now()
	})
	env.After(50*sim.Millisecond, func() {
		victim.Abort()
		env.Kill(vp)
	})
	env.Run()
	// other shared 50/50 for 50ms (earning 25ms), then ran alone:
	// finishes at 50 + 75 = 125ms. Without the abort it would be 200ms.
	if otherEnd != 125*sim.Millisecond {
		t.Fatalf("other finished at %v, want 125ms (victim's share reclaimed)", otherEnd)
	}
	if victim.Active() {
		t.Fatal("aborted thread still active")
	}
}

func TestCPULoadGauge(t *testing.T) {
	env := sim.NewEnv()
	n := New(env, 0, quietConfig(), 1)
	if n.CPU(0).Load() != 0 {
		t.Fatal("idle CPU has load")
	}
	env.Spawn("a", func(p *sim.Proc) {
		th := NewThread(n.CPU(0), "a")
		th.SetActive(true)
		th.Consume(p, 10*sim.Millisecond)
	})
	env.RunUntil(5 * sim.Millisecond)
	if n.CPU(0).Load() != 1 {
		t.Fatalf("Load = %d mid-consume", n.CPU(0).Load())
	}
	env.Run()
}
