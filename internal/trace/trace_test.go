package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestMarkAndClose(t *testing.T) {
	tl := New()
	tl.Mark("job1", 0, 'T')
	tl.Mark("job1", 10*sim.Millisecond, 'R') // closes T, opens R
	tl.Close("job1", 30*sim.Millisecond)
	l := tl.Lane("job1")
	if len(l.Spans) != 2 {
		t.Fatalf("spans = %d", len(l.Spans))
	}
	if l.Spans[0].End != 10*sim.Millisecond || l.Spans[0].Label != 'T' {
		t.Fatalf("span0 = %+v", l.Spans[0])
	}
	if l.Spans[1].Start != 10*sim.Millisecond || l.Spans[1].End != 30*sim.Millisecond {
		t.Fatalf("span1 = %+v", l.Spans[1])
	}
	if l.Busy() != 30*sim.Millisecond {
		t.Fatalf("Busy = %v", l.Busy())
	}
}

func TestCloseWithoutOpenIsNoop(t *testing.T) {
	tl := New()
	tl.Close("ghost", sim.Second)
	if len(tl.Lane("ghost").Spans) != 0 {
		t.Fatal("Close created a span")
	}
}

func TestEnd(t *testing.T) {
	tl := New()
	tl.Mark("a", 0, 'X')
	tl.Close("a", 5*sim.Second)
	tl.Mark("b", sim.Second, 'Y') // left open
	if tl.End() != 5*sim.Second {
		t.Fatalf("End = %v", tl.End())
	}
}

func TestLaneOrderIsCreationOrder(t *testing.T) {
	tl := New()
	tl.Mark("z", 0, 'a')
	tl.Mark("a", 0, 'b')
	lanes := tl.Lanes()
	if lanes[0].Name != "z" || lanes[1].Name != "a" {
		t.Fatalf("order = %v, %v", lanes[0].Name, lanes[1].Name)
	}
}

func TestRender(t *testing.T) {
	tl := New()
	tl.Mark("job1", 0, 'T')
	tl.Mark("job1", 50*sim.Millisecond, 'R')
	tl.Close("job1", 100*sim.Millisecond)
	out := tl.Render(100*sim.Millisecond, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	row := lines[1]
	if !strings.Contains(row, "TTTTTRRRRR") {
		t.Fatalf("unexpected gantt row: %q", row)
	}
}

func TestRenderOpenSpanExtendsToHorizon(t *testing.T) {
	tl := New()
	tl.Mark("n", 0, 'B')
	out := tl.Render(10*sim.Millisecond, 5)
	if !strings.Contains(out, "BBBBB") {
		t.Fatalf("open span not extended:\n%s", out)
	}
}

func TestRenderTinySpanStillVisible(t *testing.T) {
	tl := New()
	tl.Mark("n", 0, 'X')
	tl.Close("n", sim.Microsecond) // far below one column
	out := tl.Render(sim.Second, 20)
	if !strings.Contains(out, "X") {
		t.Fatalf("sub-pixel span invisible:\n%s", out)
	}
}
