// Package trace records labeled time spans in virtual time and renders
// them as ASCII Gantt charts — the observability layer behind the
// cluster-monitoring story (paper §4) and a debugging aid for scheduler
// work.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Span is one labeled interval on a lane. An open span has End < 0.
type Span struct {
	Start, End sim.Time
	Label      rune
}

// Open reports whether the span has not been closed yet.
func (s Span) Open() bool { return s.End < 0 }

// Lane is a named row of spans (a job, a node, a CPU...).
type Lane struct {
	Name  string
	Spans []Span
}

// Timeline is an ordered collection of lanes.
type Timeline struct {
	lanes  []*Lane
	byName map[string]*Lane
}

// New returns an empty timeline.
func New() *Timeline {
	return &Timeline{byName: make(map[string]*Lane)}
}

// lane returns (creating if needed) the named lane; creation order is
// display order.
func (t *Timeline) lane(name string) *Lane {
	l, ok := t.byName[name]
	if !ok {
		l = &Lane{Name: name}
		t.byName[name] = l
		t.lanes = append(t.lanes, l)
	}
	return l
}

// Lanes returns the lanes in creation order.
func (t *Timeline) Lanes() []*Lane { return t.lanes }

// Lane returns the named lane, or nil.
func (t *Timeline) Lane(name string) *Lane { return t.byName[name] }

// Mark opens a new span with the given label on the lane, closing any
// span currently open there at the same instant.
func (t *Timeline) Mark(laneName string, at sim.Time, label rune) {
	l := t.lane(laneName)
	if n := len(l.Spans); n > 0 && l.Spans[n-1].Open() {
		l.Spans[n-1].End = at
	}
	l.Spans = append(l.Spans, Span{Start: at, End: -1, Label: label})
}

// Close ends the lane's open span, if any.
func (t *Timeline) Close(laneName string, at sim.Time) {
	l := t.lane(laneName)
	if n := len(l.Spans); n > 0 && l.Spans[n-1].Open() {
		l.Spans[n-1].End = at
	}
}

// End returns the largest closed-span end across all lanes.
func (t *Timeline) End() sim.Time {
	var end sim.Time
	for _, l := range t.lanes {
		for _, s := range l.Spans {
			if !s.Open() && s.End > end {
				end = s.End
			}
		}
	}
	return end
}

// Render draws the timeline as an ASCII Gantt chart with cols columns
// spanning [0, until] (use End() for a finished run). Open spans extend
// to the horizon. Each span paints its label rune; '.' is idle.
func (t *Timeline) Render(until sim.Time, cols int) string {
	if cols < 1 {
		cols = 60
	}
	if until <= 0 {
		until = 1
	}
	nameW := 4
	for _, l := range t.lanes {
		if len(l.Name) > nameW {
			nameW = len(l.Name)
		}
	}
	var b strings.Builder
	pad := cols - len(until.String())
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%-*s 0%s%v\n", nameW, "", strings.Repeat(" ", pad), until)
	for _, l := range t.lanes {
		row := make([]rune, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range l.Spans {
			end := s.End
			if s.Open() {
				end = until
			}
			from := int(int64(s.Start) * int64(cols) / int64(until))
			to := int(int64(end) * int64(cols) / int64(until))
			if to == from {
				to = from + 1
			}
			for i := from; i < to && i < cols; i++ {
				if i >= 0 {
					row[i] = s.Label
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, l.Name, string(row))
	}
	return b.String()
}

// Busy returns the total closed-span time on a lane (label-independent).
func (l *Lane) Busy() sim.Time {
	var total sim.Time
	for _, s := range l.Spans {
		if !s.Open() {
			total += s.End - s.Start
		}
	}
	return total
}
