// Package place is the resource-aware, locality-minimizing placement
// engine shared by the simulator and the live MM/federation (ROADMAP
// item 3, after R-Storm). Jobs carry a resource demand vector and nodes
// carry capacity vectors; the engine satisfies the hard capacity
// constraints and, under the locality policy, softly minimizes the
// tree-distance between gang members.
//
// The hot path is indexed, not scanned: node state lives in the leaves
// of a power-of-two segment tree whose internal nodes carry five
// aggregates — eligible count, min (load, id) key, load sum, and the
// componentwise max and min of the leaves' free-capacity vectors. The
// max prunes subtrees where no node fits the demand; the min shortcuts
// subtrees where every node fits (so the best key or the feasible count
// is read off the aggregate in O(1)). A placement decision therefore
// descends only through subtrees whose leaves straddle the feasibility
// boundary: O(log n) amortized on the homogeneous clusters the live MM
// actually runs, never worse than the O(n) scan it replaces.
//
// The engine is deliberately NOT self-synchronizing: the live MM calls
// it under mm.mu, the federation root under f.mu, and the sim from its
// single-threaded event loop. One lock discipline, no double locking.
package place

import (
	"fmt"
	"math"
)

// Vec is a resource vector — a demand when attached to a job, a
// capacity when attached to a node. The zero Vec is a free demand
// (fits anywhere) and an empty capacity.
type Vec struct {
	CPU int64 // processing elements (or milli-CPUs; units are the caller's)
	Mem int64 // resident bytes
	Net int64 // link bandwidth share
}

// Unbounded is the capacity of a node that never refuses on resources —
// the back-compat default for nodes registered without a declared
// capacity. Quarter-range so sums of a few never overflow.
var Unbounded = Vec{CPU: math.MaxInt64 / 4, Mem: math.MaxInt64 / 4, Net: math.MaxInt64 / 4}

// Add returns v + o componentwise.
func (v Vec) Add(o Vec) Vec { return Vec{v.CPU + o.CPU, v.Mem + o.Mem, v.Net + o.Net} }

// Sub returns v − o componentwise.
func (v Vec) Sub(o Vec) Vec { return Vec{v.CPU - o.CPU, v.Mem - o.Mem, v.Net - o.Net} }

// Fits reports whether a node with free capacity v can host demand d.
func (v Vec) Fits(d Vec) bool { return v.CPU >= d.CPU && v.Mem >= d.Mem && v.Net >= d.Net }

// IsZero reports whether every component is zero.
func (v Vec) IsZero() bool { return v == Vec{} }

func (v Vec) String() string {
	return fmt.Sprintf("cpu=%d mem=%d net=%d", v.CPU, v.Mem, v.Net)
}

func vmin(a, b Vec) Vec {
	return Vec{min64(a.CPU, b.CPU), min64(a.Mem, b.Mem), min64(a.Net, b.Net)}
}

func vmax(a, b Vec) Vec {
	return Vec{max64(a.CPU, b.CPU), max64(a.Mem, b.Mem), max64(a.Net, b.Net)}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Policy selects how the engine spends its freedom once the hard
// capacity constraints are met.
type Policy uint8

const (
	// Spread is the classic least-loaded placement: nodes in (load, id)
	// ascending order, ties toward lower IDs — byte-identical to the
	// historical leastLoadedOrder prefix, so existing deterministic
	// placements reproduce exactly.
	Spread Policy = iota
	// Locality packs the gang into the smallest aligned subtree of the
	// cluster's k-ary heap topology that can hold it (ties toward the
	// lighter-loaded, then lower-based subtree), minimizing the relay
	// tree-distance members pay to reach each other on shaped links.
	Locality
)

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "spread":
		return Spread, nil
	case "locality":
		return Locality, nil
	}
	return Spread, fmt.Errorf("place: unknown policy %q (want spread or locality)", s)
}

func (p Policy) String() string {
	if p == Locality {
		return "locality"
	}
	return "spread"
}

// InsufficientError reports a Pick that could not seat the gang:
// Eligible nodes existed (after the avoid set) but fewer than Want of
// them had the free capacity to host the demand.
type InsufficientError struct {
	Want     int // gang size requested
	Eligible int // present, eligible, not avoided
	Feasible int // of those, how many fit the demand right now
}

func (e *InsufficientError) Error() string {
	if e.Feasible == e.Eligible {
		return fmt.Sprintf("place: %d nodes eligible, gang wants %d", e.Eligible, e.Want)
	}
	return fmt.Sprintf("place: %d of %d eligible nodes fit the demand, gang wants %d", e.Feasible, e.Eligible, e.Want)
}

// leaf is one node's state.
type leaf struct {
	present  bool
	eligible bool
	masked   bool // transient, inside one Pick (avoid set / already picked)
	load     int64
	cap      Vec
	used     Vec
}

func (l *leaf) free() Vec { return l.cap.Sub(l.used) }

// agg is a subtree summary over the present∧eligible∧unmasked leaves.
type agg struct {
	cnt     int   // candidate leaves below
	minLoad int64 // min (load, id) key …
	minID   int   // … and its node; -1 when cnt == 0
	sumLoad int64
	maxFree Vec // componentwise max free: prune when it can't fit the demand
	minFree Vec // componentwise min free: all-fit shortcut when it fits
}

func mergeAgg(a, b agg) agg {
	if a.cnt == 0 {
		return b
	}
	if b.cnt == 0 {
		return a
	}
	out := agg{cnt: a.cnt + b.cnt, sumLoad: a.sumLoad + b.sumLoad}
	if a.minLoad < b.minLoad || (a.minLoad == b.minLoad && a.minID < b.minID) {
		out.minLoad, out.minID = a.minLoad, a.minID
	} else {
		out.minLoad, out.minID = b.minLoad, b.minID
	}
	out.maxFree = vmax(a.maxFree, b.maxFree)
	out.minFree = vmin(a.minFree, b.minFree)
	return out
}

// Engine is the placement index. All methods assume the caller holds
// whatever lock guards the cluster state the engine mirrors.
type Engine struct {
	size   int    // leaf-array width, power of two
	leaves []leaf // len size, indexed by node ID
	tree   []agg  // len 2·size; tree[1] is the root, tree[size+id] leaf id
}

// NewEngine returns an engine sized for node IDs 0..capHint-1; it grows
// automatically when a larger ID registers.
func NewEngine(capHint int) *Engine {
	e := &Engine{}
	e.grow(capHint)
	return e
}

func (e *Engine) grow(want int) {
	size := 1
	for size < want {
		size *= 2
	}
	if size <= e.size {
		return
	}
	old := e.leaves
	e.leaves = make([]leaf, size)
	copy(e.leaves, old)
	e.size = size
	e.tree = make([]agg, 2*size)
	for id := range e.leaves {
		e.tree[size+id] = e.leafAgg(id)
	}
	for i := size - 1; i >= 1; i-- {
		e.tree[i] = mergeAgg(e.tree[2*i], e.tree[2*i+1])
	}
}

func (e *Engine) leafAgg(id int) agg {
	l := &e.leaves[id]
	if !l.present || !l.eligible || l.masked {
		return agg{minID: -1}
	}
	f := l.free()
	return agg{cnt: 1, minLoad: l.load, minID: id, sumLoad: l.load, maxFree: f, minFree: f}
}

// refresh recomputes leaf id's aggregate and every ancestor's.
func (e *Engine) refresh(id int) {
	i := e.size + id
	e.tree[i] = e.leafAgg(id)
	for i >>= 1; i >= 1; i >>= 1 {
		e.tree[i] = mergeAgg(e.tree[2*i], e.tree[2*i+1])
	}
}

// SetNode registers (or re-registers) node id with the given capacity,
// making it present and eligible. Load and usage carry over across a
// re-register, matching an NM rejoin that still hosts processes.
func (e *Engine) SetNode(id int, cap Vec) {
	if id >= e.size {
		e.grow(id + 1)
	}
	l := &e.leaves[id]
	l.present = true
	l.eligible = true
	l.cap = cap
	e.refresh(id)
}

// RemoveNode unregisters node id entirely, dropping its load and usage.
func (e *Engine) RemoveNode(id int) {
	if id >= e.size {
		return
	}
	e.leaves[id] = leaf{}
	e.refresh(id)
}

// SetEligible marks node id placeable or not (conviction, probation,
// admin exclusion) without touching its load accounting.
func (e *Engine) SetEligible(id int, ok bool) {
	if id >= e.size || !e.leaves[id].present {
		return
	}
	if e.leaves[id].eligible == ok {
		return
	}
	e.leaves[id].eligible = ok
	e.refresh(id)
}

// Eligible reports whether node id is present and placeable.
func (e *Engine) Eligible(id int) bool {
	return id < e.size && e.leaves[id].present && e.leaves[id].eligible
}

// Present reports whether node id is registered.
func (e *Engine) Present(id int) bool { return id < e.size && e.leaves[id].present }

// Commit charges one gang member with demand d onto node id.
func (e *Engine) Commit(id int, d Vec) {
	if id >= e.size {
		e.grow(id + 1)
	}
	l := &e.leaves[id]
	l.load++
	l.used = l.used.Add(d)
	e.refresh(id)
}

// Release undoes a Commit when the member terminates or the launch
// unwinds.
func (e *Engine) Release(id int, d Vec) {
	if id >= e.size {
		return
	}
	l := &e.leaves[id]
	if l.load > 0 {
		l.load--
	}
	l.used = l.used.Sub(d)
	if l.used.CPU < 0 {
		l.used.CPU = 0
	}
	if l.used.Mem < 0 {
		l.used.Mem = 0
	}
	if l.used.Net < 0 {
		l.used.Net = 0
	}
	e.refresh(id)
}

// Load returns node id's gang-member count.
func (e *Engine) Load(id int) int {
	if id >= e.size {
		return 0
	}
	return int(e.leaves[id].load)
}

// Cap returns node id's declared capacity.
func (e *Engine) Cap(id int) Vec {
	if id >= e.size {
		return Vec{}
	}
	return e.leaves[id].cap
}

// Used returns node id's committed usage.
func (e *Engine) Used(id int) Vec {
	if id >= e.size {
		return Vec{}
	}
	return e.leaves[id].used
}

// Free returns node id's uncommitted capacity.
func (e *Engine) Free(id int) Vec {
	if id >= e.size {
		return Vec{}
	}
	return e.leaves[id].free()
}

// EligibleCount returns how many nodes are present and placeable.
func (e *Engine) EligibleCount() int { return e.tree[1].cnt }

// Each calls fn for every present node in ascending ID order.
func (e *Engine) Each(fn func(id int, cap, used Vec, load int, eligible bool)) {
	for id := range e.leaves {
		l := &e.leaves[id]
		if l.present {
			fn(id, l.cap, l.used, int(l.load), l.eligible)
		}
	}
}

// Pick selects n distinct nodes for a gang with per-member demand d
// under the policy, never placing on a node in avoid. The returned
// order is the policy's deterministic placement order (tree position 0
// first); Pick does not commit — the caller charges each member with
// Commit once the placement is accepted.
func (e *Engine) Pick(n int, d Vec, pol Policy, avoid map[int]bool) ([]int, error) {
	if n <= 0 {
		return nil, nil
	}
	var restore []int
	mask := func(id int) {
		e.leaves[id].masked = true
		e.refresh(id)
		restore = append(restore, id)
	}
	defer func() {
		for _, id := range restore {
			e.leaves[id].masked = false
			e.refresh(id)
		}
	}()
	for id := range avoid {
		if id < e.size && e.leaves[id].present && e.leaves[id].eligible && !e.leaves[id].masked {
			mask(id)
		}
	}
	eligible := e.tree[1].cnt
	if eligible < n {
		return nil, &InsufficientError{Want: n, Eligible: eligible, Feasible: e.feasibleCount(1, d, eligible)}
	}

	lo, hi := 0, e.size // ID range the members are drawn from
	if pol == Locality {
		node, base, sz, ok := e.smallestFeasibleSubtree(n, d)
		if ok {
			lo, hi = base, base+sz
			_ = node
		}
		// No single aligned subtree fits the whole gang: fall through
		// to the cluster-wide spread so the job still runs; locality is
		// a soft objective, capacity is the hard one.
	}

	picked := make([]int, 0, n)
	for len(picked) < n {
		_, id := e.bestFit(1, 0, e.size, lo, hi, d)
		if id < 0 {
			if lo != 0 || hi != e.size {
				// The chosen subtree lost feasibility mid-extraction
				// (can't happen — feasibleCount counted distinct
				// leaves — but stay safe): widen to the whole cluster.
				lo, hi = 0, e.size
				continue
			}
			return nil, &InsufficientError{Want: n, Eligible: eligible, Feasible: len(picked) + e.feasibleCount(1, d, eligible)}
		}
		picked = append(picked, id)
		mask(id)
	}
	return picked, nil
}

// bestFit returns the minimum-(load, id) candidate leaf within ID range
// [lo, hi) whose free capacity fits d, or id −1. node spans [base,
// base+sz) of the leaf array.
func (e *Engine) bestFit(node, base, sz, lo, hi int, d Vec) (int64, int) {
	if base >= hi || base+sz <= lo {
		return 0, -1
	}
	a := e.tree[node]
	if a.cnt == 0 || !a.maxFree.Fits(d) {
		return 0, -1
	}
	if lo <= base && base+sz <= hi && a.minFree.Fits(d) {
		return a.minLoad, a.minID // every leaf below fits: the min key wins
	}
	if sz == 1 {
		return a.minLoad, a.minID // single leaf: maxFree == minFree, already vetted
	}
	half := sz / 2
	ll, li := e.bestFit(2*node, base, half, lo, hi, d)
	rl, ri := e.bestFit(2*node+1, base+half, half, lo, hi, d)
	if li < 0 {
		return rl, ri
	}
	if ri < 0 {
		return ll, li
	}
	if ll < rl || (ll == rl && li < ri) {
		return ll, li
	}
	return rl, ri
}

// feasibleCount counts candidate leaves under node that fit d, giving
// up once the count reaches capN (callers only care about "≥ gang
// size").
func (e *Engine) feasibleCount(node int, d Vec, capN int) int {
	a := e.tree[node]
	if a.cnt == 0 || !a.maxFree.Fits(d) {
		return 0
	}
	if a.minFree.Fits(d) {
		return a.cnt
	}
	if node >= e.size {
		return a.cnt // single leaf, vetted by maxFree above
	}
	c := e.feasibleCount(2*node, d, capN)
	if c >= capN {
		return c
	}
	return c + e.feasibleCount(2*node+1, d, capN-c)
}

// smallestFeasibleSubtree finds the minimal aligned segment-tree
// subtree holding ≥ n candidate leaves that fit d. Ties break toward
// the lower load sum, then the lower base ID, so the choice is
// deterministic. Returns ok=false when only the root qualifies with
// size e.size — callers treat that as "no locality to exploit" and may
// still use the root range.
func (e *Engine) smallestFeasibleSubtree(n int, d Vec) (node, base, sz int, ok bool) {
	type cand struct {
		node, base, sz int
		sumLoad        int64
	}
	var best *cand
	better := func(c cand) bool {
		if best == nil {
			return true
		}
		if c.sz != best.sz {
			return c.sz < best.sz
		}
		if c.sumLoad != best.sumLoad {
			return c.sumLoad < best.sumLoad
		}
		return c.base < best.base
	}
	var walk func(node, base, sz int) bool
	walk = func(node, base, sz int) bool {
		if e.feasibleCount(node, d, n) < n {
			return false
		}
		childHit := false
		if sz > 1 {
			half := sz / 2
			l := walk(2*node, base, half)
			r := walk(2*node+1, base+half, half)
			childHit = l || r
		}
		if !childHit {
			c := cand{node: node, base: base, sz: sz, sumLoad: e.tree[node].sumLoad}
			if better(c) {
				best = &c
			}
		}
		return true
	}
	if !walk(1, 0, e.size) || best == nil {
		return 0, 0, 0, false
	}
	return best.node, best.base, best.sz, best.sz < e.size
}

// --- Heap-tree distance -------------------------------------------------
//
// The cluster's physical topology is modeled as the same k-ary heap the
// forwarding trees use, but over *node IDs*: node q's parent is
// q/fanout − 1 (the MM is a virtual root above IDs 0..fanout-1).
// Distance is the relay path length between two nodes — the hop count a
// frame pays to travel between them — which is exactly what faultconn
// write-delay shaping charges per hop on the bench topologies.

// parentPos returns q's parent ID, or −1 for the virtual MM root.
func parentPos(q, fanout int) int {
	if q < fanout {
		return -1
	}
	return q/fanout - 1
}

// Depth returns node q's edge distance from the virtual MM root.
func Depth(q, fanout int) int {
	if fanout <= 1 {
		return 1 // star topology: everyone hangs off the MM
	}
	d := 1
	for q >= fanout {
		q = q/fanout - 1
		d++
	}
	return d
}

// Distance returns the hop count between node IDs a and b in the k-ary
// heap topology (0 for a == b).
func Distance(a, b, fanout int) int {
	if a == b {
		return 0
	}
	if fanout <= 1 {
		return 2 // star: up to the MM, back down
	}
	da, db := Depth(a, fanout), Depth(b, fanout)
	d := 0
	for da > db {
		a = parentPos(a, fanout)
		da--
		d++
	}
	for db > da {
		b = parentPos(b, fanout)
		db--
		d++
	}
	for a != b {
		a = parentPos(a, fanout)
		b = parentPos(b, fanout)
		d += 2
	}
	return d
}

// Span returns the sum of pairwise hop distances over a gang's node IDs
// — the locality objective the Locality policy minimizes, and the
// number the experiment tables report.
func Span(ids []int, fanout int) int {
	total := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			total += Distance(ids[i], ids[j], fanout)
		}
	}
	return total
}
