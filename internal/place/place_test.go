package place

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// oraclePick is the brute-force reference: every present, eligible,
// unavoided node whose free capacity fits d, sorted by (load, id)
// ascending, first n. This is exactly the semantics of the historical
// leastLoadedOrder prefix, extended with the capacity filter.
func oraclePick(e *Engine, n int, d Vec, avoid map[int]bool) []int {
	type cand struct {
		id   int
		load int
	}
	var cs []cand
	e.Each(func(id int, cap, used Vec, load int, eligible bool) {
		if !eligible || avoid[id] {
			return
		}
		if cap.Sub(used).Fits(d) {
			cs = append(cs, cand{id, load})
		}
	})
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].load != cs[b].load {
			return cs[a].load < cs[b].load
		}
		return cs[a].id < cs[b].id
	})
	if len(cs) < n {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = cs[i].id
	}
	return out
}

func TestSpreadMatchesLeastLoadedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine(64)
	for id := 0; id < 64; id++ {
		e.SetNode(id, Unbounded)
		for k := rng.Intn(5); k > 0; k-- {
			e.Commit(id, Vec{})
		}
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(32)
		got, err := e.Pick(n, Vec{}, Spread, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := oraclePick(e, n, Vec{}, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): engine %v, oracle %v", trial, n, got, want)
		}
		// Mutate load so trials see varied states.
		e.Commit(got[0], Vec{})
	}
}

func TestCapacityConstraints(t *testing.T) {
	e := NewEngine(8)
	for id := 0; id < 8; id++ {
		e.SetNode(id, Vec{CPU: 4, Mem: 1024, Net: 100})
	}
	d := Vec{CPU: 3, Mem: 512, Net: 10}
	ids, err := e.Pick(4, d, Spread, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		e.Commit(id, d)
	}
	// Each committed node has 1 CPU free: demand of 3 no longer fits
	// there, so the next pick must use the remaining 4 nodes only.
	ids2, err := e.Pick(4, d, Spread, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids2 {
		for _, prev := range ids {
			if id == prev {
				t.Fatalf("node %d oversubscribed: free %v cannot host %v", id, e.Free(id), d)
			}
		}
		e.Commit(id, d)
	}
	// All 8 nodes now hold one member each; a third gang cannot fit.
	if _, err := e.Pick(1, d, Spread, nil); err == nil {
		t.Fatal("expected infeasible pick to fail")
	} else if ie, ok := err.(*InsufficientError); !ok {
		t.Fatalf("want *InsufficientError, got %T: %v", err, err)
	} else if ie.Eligible != 8 || ie.Feasible != 0 {
		t.Fatalf("error accounting wrong: %+v", ie)
	}
	// Releases restore feasibility.
	for _, id := range ids {
		e.Release(id, d)
	}
	if _, err := e.Pick(4, d, Spread, nil); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAvoidAndEligibility(t *testing.T) {
	e := NewEngine(8)
	for id := 0; id < 8; id++ {
		e.SetNode(id, Unbounded)
	}
	e.SetEligible(3, false)
	ids, err := e.Pick(6, Vec{}, Spread, map[int]bool{5: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{0, 1, 2, 4, 6, 7}) {
		t.Fatalf("want [0 1 2 4 6 7], got %v", ids)
	}
	// One more than remains eligible must refuse.
	if _, err := e.Pick(7, Vec{}, Spread, map[int]bool{5: true}); err == nil {
		t.Fatal("expected 7-of-6 pick to fail")
	}
	// Masking must have been transient: eligibility state unchanged.
	if e.Eligible(3) || !e.Eligible(5) || e.EligibleCount() != 7 {
		t.Fatalf("mask leaked: eligible(3)=%v eligible(5)=%v count=%d", e.Eligible(3), e.Eligible(5), e.EligibleCount())
	}
	e.SetEligible(3, true)
	if e.EligibleCount() != 8 {
		t.Fatalf("re-enable failed: count=%d", e.EligibleCount())
	}
}

func TestRemoveAndRegrow(t *testing.T) {
	e := NewEngine(4)
	for id := 0; id < 4; id++ {
		e.SetNode(id, Unbounded)
	}
	e.RemoveNode(2)
	if e.Present(2) || e.EligibleCount() != 3 {
		t.Fatalf("remove failed: present=%v count=%d", e.Present(2), e.EligibleCount())
	}
	// Register a node beyond the current width: the tree regrows and
	// existing state carries over.
	e.SetNode(9, Vec{CPU: 2})
	if !e.Present(9) || e.EligibleCount() != 4 || !e.Present(0) {
		t.Fatalf("regrow lost state: count=%d", e.EligibleCount())
	}
	ids, err := e.Pick(4, Vec{}, Spread, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{0, 1, 3, 9}) {
		t.Fatalf("pick after regrow: %v", ids)
	}
}

func TestLocalityPacksSubtree(t *testing.T) {
	// 32 idle nodes: locality should pick an aligned block, and with
	// load skew on the low block it should move to the lighter one.
	e := NewEngine(32)
	for id := 0; id < 32; id++ {
		e.SetNode(id, Unbounded)
	}
	ids, err := e.Pick(8, Vec{}, Locality, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("idle locality pick not the base-aligned block: %v", ids)
	}
	// Load the low half: the lightest size-8 subtree is now 8..15.
	for id := 0; id < 8; id++ {
		e.Commit(id, Vec{})
	}
	ids, err = e.Pick(8, Vec{}, Locality, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted = append(sorted[:0], ids...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{8, 9, 10, 11, 12, 13, 14, 15}) {
		t.Fatalf("loaded locality pick: %v", ids)
	}
}

func TestLocalityBeatsSpreadOnSpan(t *testing.T) {
	// Skewed load: even nodes busy. Spread scatters to the odd IDs;
	// locality accepts slightly busier nodes for a contiguous block.
	const nodes, gang, fanout = 32, 8, 4
	e := NewEngine(nodes)
	for id := 0; id < nodes; id++ {
		e.SetNode(id, Unbounded)
		if id%2 == 0 {
			e.Commit(id, Vec{})
		}
	}
	spread, err := e.Pick(gang, Vec{}, Spread, nil)
	if err != nil {
		t.Fatal(err)
	}
	local, err := e.Pick(gang, Vec{}, Locality, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss, ls := Span(spread, fanout), Span(local, fanout)
	if ls >= ss {
		t.Fatalf("locality span %d not below spread span %d (spread=%v local=%v)", ls, ss, spread, local)
	}
}

func TestLocalityFallsBackWhenFragmented(t *testing.T) {
	// Capacity-fragment the cluster so no aligned 4-subtree has 3 free
	// nodes: the pick must still succeed cluster-wide.
	e := NewEngine(8)
	full := Vec{CPU: 1}
	for id := 0; id < 8; id++ {
		e.SetNode(id, full)
	}
	for _, id := range []int{0, 1, 4, 5, 6} {
		e.Commit(id, full)
	}
	ids, err := e.Pick(3, full, Locality, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{2, 3, 7}) {
		t.Fatalf("fragmented locality pick: %v", ids)
	}
}

// TestPickPropertyVsOracle cross-checks the indexed engine against the
// brute-force oracle over randomized cluster states, demands, and
// avoid sets — for Spread exactly, and for Locality on feasibility and
// capacity-respect.
func TestPickPropertyVsOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nodes = 48
			e := NewEngine(nodes)
			for id := 0; id < nodes; id++ {
				e.SetNode(id, Vec{CPU: int64(1 + rng.Intn(8)), Mem: int64(256 << rng.Intn(4)), Net: int64(10 * (1 + rng.Intn(10)))})
			}
			for trial := 0; trial < 200; trial++ {
				// Random churn.
				id := rng.Intn(nodes)
				switch rng.Intn(4) {
				case 0:
					e.Commit(id, Vec{CPU: 1, Mem: 64, Net: 5})
				case 1:
					e.Release(id, Vec{CPU: 1, Mem: 64, Net: 5})
				case 2:
					e.SetEligible(id, !e.Eligible(id))
				}
				d := Vec{CPU: int64(rng.Intn(3)), Mem: int64(rng.Intn(200)), Net: int64(rng.Intn(20))}
				avoid := map[int]bool{}
				for k := rng.Intn(4); k > 0; k-- {
					avoid[rng.Intn(nodes)] = true
				}
				n := 1 + rng.Intn(12)
				want := oraclePick(e, n, d, avoid)
				got, err := e.Pick(n, d, Spread, avoid)
				if want == nil {
					if err == nil {
						t.Fatalf("trial %d: oracle infeasible, engine picked %v", trial, got)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d: oracle feasible (%v), engine: %v", trial, want, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: spread mismatch\n engine %v\n oracle %v", trial, got, want)
				}
				lgot, err := e.Pick(n, d, Locality, avoid)
				if err != nil {
					t.Fatalf("trial %d: locality infeasible though oracle feasible: %v", trial, err)
				}
				seen := map[int]bool{}
				for _, id := range lgot {
					if seen[id] {
						t.Fatalf("trial %d: locality picked %d twice: %v", trial, id, lgot)
					}
					seen[id] = true
					if avoid[id] || !e.Eligible(id) || !e.Free(id).Fits(d) {
						t.Fatalf("trial %d: locality picked invalid node %d (avoid=%v eligible=%v free=%v demand=%v)",
							trial, id, avoid[id], e.Eligible(id), e.Free(id), d)
					}
				}
			}
		})
	}
}

func TestPickDeterministic(t *testing.T) {
	build := func() *Engine {
		e := NewEngine(64)
		for id := 0; id < 64; id++ {
			e.SetNode(id, Vec{CPU: 8, Mem: 4096, Net: 100})
		}
		for id := 0; id < 64; id += 3 {
			e.Commit(id, Vec{CPU: 2, Mem: 512, Net: 10})
		}
		return e
	}
	d := Vec{CPU: 1, Mem: 128, Net: 5}
	for _, pol := range []Policy{Spread, Locality} {
		a, err1 := build().Pick(16, d, pol, map[int]bool{7: true, 21: true})
		b, err2 := build().Pick(16, d, pol, map[int]bool{21: true, 7: true})
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v / %v", pol, err1, err2)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: picks differ across runs: %v vs %v", pol, a, b)
		}
	}
}

func TestDistanceAndSpan(t *testing.T) {
	// fanout 2: node 0,1 are children of the virtual MM root;
	// children of 0 are 2,3; of 1 are 4,5; of 2 are 6,7 …
	cases := []struct {
		a, b, fanout, want int
	}{
		{0, 0, 2, 0},
		{0, 1, 2, 2},  // siblings under the MM
		{0, 2, 2, 1},  // parent-child
		{2, 3, 2, 2},  // siblings under 0
		{6, 7, 2, 2},  // siblings under 2
		{6, 3, 2, 3},  // 6→2→0→3
		{6, 4, 2, 5},  // 6→2→0→MM→1→4
		{0, 1, 1, 2},  // star topology
		{5, 5, 1, 0},  //
		{4, 8, 4, 2},  // fanout 4: both children of 0 (8/4−1 = 1? no: 8/4−1 = 1)
		{4, 11, 4, 2}, // children of 0: 4..7; of 1: 8..11 → 4 and 11 via roots
	}
	for i, c := range cases {
		// Recompute the tricky expectations from parent math rather
		// than trusting the comment arithmetic above.
		if got := Distance(c.a, c.b, c.fanout); got != distOracle(c.a, c.b, c.fanout) {
			t.Fatalf("case %d: Distance(%d,%d,%d) = %d, oracle %d", i, c.a, c.b, c.fanout, got, distOracle(c.a, c.b, c.fanout))
		}
	}
	if Span([]int{0, 1, 2, 3}, 2) >= Span([]int{0, 2, 3, 6}, 2)+100 {
		t.Fatal("span sanity")
	}
	// Contiguous low block must have smaller span than a scatter.
	if Span([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4) >= Span([]int{1, 5, 9, 13, 17, 21, 25, 29}, 4) {
		t.Fatalf("contiguous block span %d not below scattered span %d",
			Span([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4), Span([]int{1, 5, 9, 13, 17, 21, 25, 29}, 4))
	}
}

// distOracle walks explicit ancestor chains.
func distOracle(a, b, fanout int) int {
	if fanout <= 1 {
		if a == b {
			return 0
		}
		return 2
	}
	chain := func(q int) []int {
		out := []int{q}
		for q >= fanout {
			q = q/fanout - 1
			out = append(out, q)
		}
		out = append(out, -1) // virtual MM root
		return out
	}
	ca, cb := chain(a), chain(b)
	for i, x := range ca {
		for j, y := range cb {
			if x == y {
				return i + j
			}
		}
	}
	return -1
}

func benchEngine(nodes int) *Engine {
	e := NewEngine(nodes)
	for id := 0; id < nodes; id++ {
		e.SetNode(id, Vec{CPU: 8, Mem: 8192, Net: 1000})
	}
	return e
}

// BenchmarkPick measures steady-state placement decisions/sec: pick a
// 16-member gang with a real demand vector, commit it, release it —
// the full admission-path placement cost under mm.mu.
func BenchmarkPick(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024} {
		for _, pol := range []Policy{Spread, Locality} {
			b.Run(fmt.Sprintf("%s/%dnodes", pol, nodes), func(b *testing.B) {
				e := benchEngine(nodes)
				d := Vec{CPU: 1, Mem: 256, Net: 10}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ids, err := e.Pick(16, d, pol, nil)
					if err != nil {
						b.Fatal(err)
					}
					for _, id := range ids {
						e.Commit(id, d)
					}
					for _, id := range ids {
						e.Release(id, d)
					}
				}
			})
		}
	}
}

// BenchmarkPickVsScan pits the indexed engine against the historical
// O(n log n) collect-and-sort scan it replaced, at the same semantics.
func BenchmarkPickVsScan(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("engine/%dnodes", nodes), func(b *testing.B) {
			e := benchEngine(nodes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, err := e.Pick(16, Vec{}, Spread, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					e.Commit(id, Vec{})
				}
				for _, id := range ids {
					e.Release(id, Vec{})
				}
			}
		})
		b.Run(fmt.Sprintf("scan/%dnodes", nodes), func(b *testing.B) {
			load := make(map[int]int, nodes)
			for id := 0; id < nodes; id++ {
				load[id] = 0
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]int, 0, nodes)
				for id := range load {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(a, b int) bool {
					la, lb := load[ids[a]], load[ids[b]]
					if la != lb {
						return la < lb
					}
					return ids[a] < ids[b]
				})
				for _, id := range ids[:16] {
					load[id]++
				}
				for _, id := range ids[:16] {
					load[id]--
				}
			}
		})
	}
}
