package mech

import (
	"testing"

	"repro/internal/qsnet"
	"repro/internal/sim"
)

func TestPostLocalDeliversWithoutNetwork(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		puts := d.Network().Puts
		bcasts := d.Network().Broadcasts
		var got Payload
		env.Spawn("daemon", func(p *sim.Proc) {
			d.Node(3).TestEvent(p, "local")
			got, _ = d.Node(3).Recv("local")
		})
		env.Spawn("pl", func(p *sim.Proc) {
			p.Wait(sim.Millisecond)
			d.Node(3).PostLocal("local", "exited")
		})
		env.Run()
		if got != "exited" {
			t.Fatalf("payload = %v", got)
		}
		if d.Network().Puts != puts || d.Network().Broadcasts != bcasts {
			t.Fatal("PostLocal generated network traffic")
		}
	})
}

func TestEventBacklogCounts(t *testing.T) {
	env, d := hwDomain(4)
	env.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			d.Node(1).PostLocal("ctrl", i)
		}
	})
	env.Run()
	if got := d.Node(1).EventBacklog("ctrl"); got != 3 {
		t.Fatalf("backlog = %d, want 3", got)
	}
	env.Spawn("consumer", func(p *sim.Proc) {
		d.Node(1).TestEvent(p, "ctrl")
		d.Node(1).Recv("ctrl")
	})
	env.Run()
	if got := d.Node(1).EventBacklog("ctrl"); got != 2 {
		t.Fatalf("backlog after one consume = %d, want 2", got)
	}
}

func TestSingleDestXferUsesPutPath(t *testing.T) {
	env, d := hwDomain(4)
	env.Spawn("src", func(p *sim.Proc) {
		d.Node(0).XferAndSignal(qsnet.Range(2, 1), 1024,
			qsnet.MainMem, qsnet.MainMem, "msg", "done", "data")
		d.Node(0).TestEvent(p, "done")
	})
	env.Run()
	if d.Network().Broadcasts != 0 {
		t.Fatalf("single-destination transfer used the multicast tree (%d broadcasts)",
			d.Network().Broadcasts)
	}
	if d.Network().Puts != 1 {
		t.Fatalf("Puts = %d, want 1", d.Network().Puts)
	}
	if !d.Node(2).PollEvent("data") {
		t.Fatal("payload event not signaled")
	}
}

func TestMultiDestXferUsesMulticast(t *testing.T) {
	env, d := hwDomain(4)
	env.Spawn("src", func(p *sim.Proc) {
		d.Node(0).XferAndSignal(qsnet.Range(0, 4), 1024,
			qsnet.MainMem, qsnet.MainMem, nil, "done", "data")
		d.Node(0).TestEvent(p, "done")
	})
	env.Run()
	if d.Network().Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d, want 1", d.Network().Broadcasts)
	}
}

func TestCAWOnSingleNodeSet(t *testing.T) {
	env, d := hwDomain(4)
	d.Node(2).Store("v", 9)
	var hi, lo bool
	env.Spawn("m", func(p *sim.Proc) {
		hi = d.Node(0).CompareAndWrite(p, qsnet.Range(2, 1), "v", GE, 9, nil)
		lo = d.Node(0).CompareAndWrite(p, qsnet.Range(2, 1), "v", GE, 10, nil)
	})
	env.Run()
	if !hi || lo {
		t.Fatalf("single-node CAW wrong: %v %v", hi, lo)
	}
}

func TestCompareOpStrings(t *testing.T) {
	want := map[CompareOp]string{GE: ">=", LT: "<", EQ: "==", NE: "!="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if CompareOp(99).String() != "?" {
		t.Error("unknown op should stringify to ?")
	}
}

func TestWriteToDifferentVariable(t *testing.T) {
	// The paper's CAW may write a DIFFERENT global variable than the one
	// compared (§2.2).
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		for i := 0; i < 8; i++ {
			d.Node(i).Store("epoch", 5)
		}
		env.Spawn("m", func(p *sim.Proc) {
			d.Node(0).CompareAndWrite(p, qsnet.Range(0, 8), "epoch", EQ, 5,
				&Write{Var: "go.ahead", Val: 1})
		})
		env.Run()
		for i := 0; i < 8; i++ {
			if d.Node(i).Load("go.ahead") != 1 {
				t.Fatalf("node %d: cross-variable write missing", i)
			}
			if d.Node(i).Load("epoch") != 5 {
				t.Fatalf("node %d: compared variable mutated", i)
			}
		}
	})
}
