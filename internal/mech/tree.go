package mech

import (
	"fmt"
	"math"

	"repro/internal/qsnet"
	"repro/internal/sim"
)

// TreeDomain emulates the STORM mechanisms with logarithmic software
// trees of point-to-point messages — the "thin software layer" the paper
// says commodity networks need (paper §4, Table 5). XFER-AND-SIGNAL
// becomes a binomial-tree store-and-forward broadcast; COMPARE-AND-WRITE
// becomes a gather/scatter over the same tree with per-hop host
// processing. Used by the ablation benchmarks to quantify what QsNET's
// hardware collectives buy.
type TreeDomain struct {
	net   *qsnet.Network
	nodes []*treeNode
	caw   *sim.Resource
	// PerHopHost is the host-software processing cost added at every tree
	// hop (message reception, matching, re-injection). With the default
	// 5 µs it reproduces the ~20·log n µs COMPARE-AND-WRITE latencies the
	// paper's Table 5 quotes for Myrinet/Infiniband.
	PerHopHost sim.Time
}

// NewTree builds a tree-emulation domain over net.
func NewTree(net *qsnet.Network) *TreeDomain {
	d := &TreeDomain{
		net:        net,
		caw:        sim.NewResource(net.Env(), 1),
		PerHopHost: 5 * sim.Microsecond,
	}
	d.nodes = make([]*treeNode, net.Nodes())
	for i := range d.nodes {
		d.nodes[i] = &treeNode{dom: d, nic: net.NIC(i), inboxes: map[string]*inbox{}}
	}
	return d
}

// Nodes returns the number of nodes in the domain.
func (d *TreeDomain) Nodes() int { return d.net.Nodes() }

// Node returns node id's mechanism handle.
func (d *TreeDomain) Node(id int) Node { return d.nodes[id] }

// Network returns the underlying fabric.
func (d *TreeDomain) Network() *qsnet.Network { return d.net }

// depth returns the binomial-tree depth for n receivers.
func depth(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

type treeNode struct {
	dom     *TreeDomain
	nic     *qsnet.NIC
	inboxes map[string]*inbox
	lastErr error
}

func (n *treeNode) ID() int { return n.nic.ID() }

func (n *treeNode) inboxFor(name string) *inbox {
	ib, ok := n.inboxes[name]
	if !ok {
		ib = &inbox{}
		n.inboxes[name] = ib
	}
	return ib
}

// XferAndSignal performs a binomial-tree software broadcast: the source
// sends to the root of each subtree; subtrees forward concurrently.
// Every hop is a genuine point-to-point DMA on the fabric (occupying the
// sender's injection link) plus per-hop host processing.
func (n *treeNode) XferAndSignal(dests qsnet.NodeSet, bytes int64, srcLoc, dstLoc qsnet.BufferLoc,
	payload Payload, localEv, remoteEv string) {
	d := n.dom
	env := d.net.Env()
	src := n.nic.ID()

	targets := make([]int, 0, dests.N)
	for id := dests.First; id <= dests.Last(); id++ {
		targets = append(targets, id)
	}

	remaining := len(targets)
	deliver := func(id int) {
		dst := d.nodes[id]
		if payload != nil {
			dst.inboxFor(remoteEv).msgs = append(dst.inboxFor(remoteEv).msgs, payload)
		}
		if remoteEv != "" {
			dst.nic.Event(remoteEv).Signal()
		}
		remaining--
		if remaining == 0 && localEv != "" {
			n.nic.Event(localEv).Signal()
		}
	}

	var failed bool
	var forward func(p *sim.Proc, from int, tgts []int)
	forward = func(p *sim.Proc, from int, tgts []int) {
		for len(tgts) > 0 && !failed {
			mid := len(tgts) / 2
			child := tgts[mid]
			if err := d.net.Put(p, from, child, bytes); err != nil {
				n.lastErr = err
				failed = true
				return
			}
			p.Wait(d.PerHopHost)
			// A forwarding node delivers locally, then relays its
			// subtree concurrently with the parent's remaining sends.
			deliver(child)
			sub := tgts[mid+1:]
			if len(sub) > 0 {
				env.Spawn(fmt.Sprintf("treefwd:%d", child), func(cp *sim.Proc) {
					forward(cp, child, sub)
				})
			}
			tgts = tgts[:mid]
		}
	}

	env.Spawn(fmt.Sprintf("treexfer:%d->%s", src, dests), func(p *sim.Proc) {
		// The source may itself be inside the destination set; it holds
		// the data already, so deliver locally first.
		self := -1
		for i, id := range targets {
			if id == src {
				self = i
				break
			}
		}
		if self >= 0 {
			deliver(src)
			targets = append(targets[:self], targets[self+1:]...)
		}
		forward(p, src, targets)
	})
}

func (n *treeNode) TestEvent(p *sim.Proc, name string) {
	n.nic.Event(name).Wait(p)
}

func (n *treeNode) TestEventTimeout(p *sim.Proc, name string, d sim.Time) bool {
	return n.nic.Event(name).WaitTimeout(p, d)
}

func (n *treeNode) PollEvent(name string) bool {
	return n.nic.Event(name).Poll()
}

func (n *treeNode) Recv(name string) (Payload, bool) {
	ib := n.inboxFor(name)
	if len(ib.msgs) == 0 {
		return nil, false
	}
	m := ib.msgs[0]
	ib.msgs = ib.msgs[1:]
	return m, true
}

// CompareAndWrite emulates the collective as a gather up a binomial tree
// followed by a scatter of the verdict: 2·depth hops, each costing a
// point-to-point latency plus host processing. With the default per-hop
// cost this is ~20·log2(n) µs, the figure the paper quotes for emulated
// implementations (Table 5).
func (n *treeNode) CompareAndWrite(p *sim.Proc, dests qsnet.NodeSet, gvar string, op CompareOp,
	local int64, write *Write) bool {
	d := n.dom
	d.caw.Acquire(p)
	defer d.caw.Release() // kill-safe: a killed caller must not wedge CAWs
	hops := 2 * depth(dests.N)
	perHop := d.net.Config().P2PLatency + d.PerHopHost
	p.Wait(sim.Time(hops) * perHop)
	ok := true
	for id := dests.First; id <= dests.Last(); id++ {
		if d.net.NIC(id).Dead() || !op.Eval(d.net.NIC(id).Load(gvar), local) {
			ok = false
			break
		}
	}
	if ok && write != nil {
		for id := dests.First; id <= dests.Last(); id++ {
			d.net.NIC(id).Store(write.Var, write.Val)
		}
	}
	return ok
}

func (n *treeNode) PostLocal(name string, payload Payload) {
	if payload != nil {
		n.inboxFor(name).msgs = append(n.inboxFor(name).msgs, payload)
	}
	n.nic.Event(name).Signal()
}

func (n *treeNode) EventBacklog(name string) int { return n.nic.Event(name).Pending() }

func (n *treeNode) Load(gvar string) int64     { return n.nic.Load(gvar) }
func (n *treeNode) Store(gvar string, v int64) { n.nic.Store(gvar, v) }
func (n *treeNode) LastError() error           { return n.lastErr }
