package mech

import (
	"testing"

	"repro/internal/qsnet"
	"repro/internal/sim"
)

func hwDomain(nodes int) (*sim.Env, *HWDomain) {
	env := sim.NewEnv()
	net := qsnet.New(env, qsnet.DefaultConfig(nodes))
	return env, NewHW(net)
}

func treeDomain(nodes int) (*sim.Env, *TreeDomain) {
	env := sim.NewEnv()
	net := qsnet.New(env, qsnet.DefaultConfig(nodes))
	return env, NewTree(net)
}

func TestCompareOpEval(t *testing.T) {
	cases := []struct {
		op   CompareOp
		g, l int64
		want bool
	}{
		{GE, 5, 5, true}, {GE, 4, 5, false}, {GE, 6, 5, true},
		{LT, 4, 5, true}, {LT, 5, 5, false},
		{EQ, 5, 5, true}, {EQ, 4, 5, false},
		{NE, 4, 5, true}, {NE, 5, 5, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.g, c.l); got != c.want {
			t.Errorf("%d %v %d = %v, want %v", c.g, c.op, c.l, got, c.want)
		}
	}
}

// runBoth runs a subtest against both domain implementations, since they
// must satisfy the same contract.
func runBoth(t *testing.T, f func(t *testing.T, env *sim.Env, d Domain)) {
	t.Run("hw", func(t *testing.T) {
		env, d := hwDomain(8)
		f(t, env, d)
	})
	t.Run("tree", func(t *testing.T) {
		env, d := treeDomain(8)
		f(t, env, d)
	})
}

func TestXferSignalsRemoteAndLocalEvents(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		received := make([]bool, 8)
		for i := 1; i < 8; i++ {
			i := i
			env.Spawn("recv", func(p *sim.Proc) {
				d.Node(i).TestEvent(p, "data")
				received[i] = true
			})
		}
		var localSignaled bool
		env.Spawn("src", func(p *sim.Proc) {
			d.Node(0).XferAndSignal(qsnet.Range(1, 7), 1<<20,
				qsnet.MainMem, qsnet.MainMem, nil, "sent", "data")
			d.Node(0).TestEvent(p, "sent")
			localSignaled = true
		})
		env.Run()
		for i := 1; i < 8; i++ {
			if !received[i] {
				t.Fatalf("node %d never saw the remote event", i)
			}
		}
		if !localSignaled {
			t.Fatal("local completion event never signaled")
		}
	})
}

func TestXferDeliversPayloadInOrder(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		var got []int
		env.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				d.Node(5).TestEvent(p, "ctrl")
				m, ok := d.Node(5).Recv("ctrl")
				if !ok {
					t.Error("event signaled but inbox empty")
					return
				}
				got = append(got, m.(int))
			}
		})
		env.Spawn("src", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				d.Node(0).XferAndSignal(qsnet.Range(5, 1), 64,
					qsnet.MainMem, qsnet.MainMem, i, "", "ctrl")
				// Give each transfer time to complete so ordering is
				// well-defined at the receiver.
				p.Wait(sim.Millisecond)
			}
		})
		env.Run()
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("payloads = %v, want [0 1 2]", got)
		}
	})
}

func TestXferIsNonBlocking(t *testing.T) {
	env, d := hwDomain(8)
	var issueTime sim.Time = -1
	env.Spawn("src", func(p *sim.Proc) {
		d.Node(0).XferAndSignal(qsnet.Range(0, 8), 100<<20,
			qsnet.MainMem, qsnet.MainMem, nil, "done", "")
		issueTime = p.Now() // must be immediately, not after the 100 MB transfer
	})
	env.Run()
	if issueTime != 0 {
		t.Fatalf("XferAndSignal blocked the caller until %v", issueTime)
	}
}

func TestCompareAndWriteGlobalCondition(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		for i := 0; i < 8; i++ {
			d.Node(i).Store("seq", 7)
		}
		var allTrue, oneBehindFalse, writeApplied bool
		env.Spawn("master", func(p *sim.Proc) {
			allTrue = d.Node(0).CompareAndWrite(p, qsnet.Range(0, 8), "seq", GE, 7,
				&Write{Var: "go", Val: 1})
			writeApplied = true
			for i := 0; i < 8; i++ {
				if d.Node(i).Load("go") != 1 {
					writeApplied = false
				}
			}
			d.Node(3).Store("seq", 6)
			oneBehindFalse = !d.Node(0).CompareAndWrite(p, qsnet.Range(0, 8), "seq", GE, 7, nil)
		})
		env.Run()
		if !allTrue {
			t.Fatal("CAW false though condition holds everywhere")
		}
		if !writeApplied {
			t.Fatal("conditional write not applied on all nodes")
		}
		if !oneBehindFalse {
			t.Fatal("CAW true though one node is behind")
		}
	})
}

func TestCompareAndWriteNoWriteWhenFalse(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		d.Node(2).Store("x", 1) // others are 0
		env.Spawn("m", func(p *sim.Proc) {
			ok := d.Node(0).CompareAndWrite(p, qsnet.Range(0, 8), "x", GE, 1,
				&Write{Var: "y", Val: 9})
			if ok {
				t.Error("CAW returned true")
			}
		})
		env.Run()
		for i := 0; i < 8; i++ {
			if d.Node(i).Load("y") != 0 {
				t.Fatalf("write applied on node %d despite false condition", i)
			}
		}
	})
}

// TestCompareAndWriteSequentialConsistency: when multiple nodes
// simultaneously issue CAWs identical except for the written value, all
// nodes must converge on a single value (paper §2.2 item 2).
func TestCompareAndWriteSequentialConsistency(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		for src := 0; src < 8; src++ {
			src := src
			env.Spawn("caw", func(p *sim.Proc) {
				d.Node(src).CompareAndWrite(p, qsnet.Range(0, 8), "z", GE, 0,
					&Write{Var: "winner", Val: int64(src + 1)})
			})
		}
		env.Run()
		v := d.Node(0).Load("winner")
		if v == 0 {
			t.Fatal("no write applied")
		}
		for i := 1; i < 8; i++ {
			if d.Node(i).Load("winner") != v {
				t.Fatalf("node %d sees %d, node 0 sees %d", i, d.Node(i).Load("winner"), v)
			}
		}
	})
}

func TestTestEventTimeout(t *testing.T) {
	env, d := hwDomain(2)
	var timedOut, gotIt bool
	env.Spawn("recv", func(p *sim.Proc) {
		timedOut = !d.Node(1).TestEventTimeout(p, "never", 5*sim.Millisecond)
		gotIt = d.Node(1).TestEventTimeout(p, "soon", sim.Second)
	})
	env.Spawn("src", func(p *sim.Proc) {
		p.Wait(20 * sim.Millisecond)
		d.Node(0).XferAndSignal(qsnet.Range(1, 1), 8, qsnet.MainMem, qsnet.MainMem, nil, "", "soon")
	})
	env.Run()
	if !timedOut {
		t.Fatal("TestEventTimeout did not time out on unsignaled event")
	}
	if !gotIt {
		t.Fatal("TestEventTimeout missed a signal")
	}
}

func TestPollEventDoesNotConsume(t *testing.T) {
	env, d := hwDomain(2)
	env.Spawn("src", func(p *sim.Proc) {
		d.Node(0).XferAndSignal(qsnet.Range(1, 1), 8, qsnet.MainMem, qsnet.MainMem, nil, "", "e")
	})
	env.Run()
	if !d.Node(1).PollEvent("e") {
		t.Fatal("PollEvent false after signal")
	}
	if !d.Node(1).PollEvent("e") {
		t.Fatal("PollEvent consumed the signal")
	}
}

func TestHWAtomicityOnDeadNode(t *testing.T) {
	env, d := hwDomain(8)
	d.Network().FailNode(6)
	env.Spawn("src", func(p *sim.Proc) {
		d.Node(0).XferAndSignal(qsnet.Range(1, 7), 1<<20,
			qsnet.MainMem, qsnet.MainMem, "msg", "sent", "data")
	})
	env.Run()
	// Atomicity: no node (even the healthy ones) received anything, and
	// the local event was never signaled.
	for i := 1; i < 8; i++ {
		if d.Node(i).PollEvent("data") {
			t.Fatalf("node %d received data despite failed collective", i)
		}
	}
	if d.Node(0).PollEvent("sent") {
		t.Fatal("local event signaled despite failure")
	}
	if d.Node(0).LastError() == nil {
		t.Fatal("transfer error not recorded")
	}
}

func TestDeadNodeFailsCAW(t *testing.T) {
	runBoth(t, func(t *testing.T, env *sim.Env, d Domain) {
		d.Network().FailNode(4)
		env.Spawn("m", func(p *sim.Proc) {
			if d.Node(0).CompareAndWrite(p, qsnet.Range(0, 8), "hb", GE, 0, nil) {
				t.Error("CAW over dead node returned true")
			}
		})
		env.Run()
	})
}

// TestHWCollectiveFasterThanTree is the ablation claim: hardware
// mechanisms must beat the software-tree emulation, increasingly so at
// scale.
func TestHWCollectiveFasterThanTree(t *testing.T) {
	measure := func(d Domain, env *sim.Env, nodes int) sim.Time {
		var elapsed sim.Time
		env.Spawn("src", func(p *sim.Proc) {
			start := p.Now()
			d.Node(0).XferAndSignal(qsnet.Range(0, nodes), 4<<20,
				qsnet.MainMem, qsnet.MainMem, nil, "done", "")
			d.Node(0).TestEvent(p, "done")
			elapsed = p.Now() - start
		})
		env.Run()
		return elapsed
	}
	envH, dh := hwDomain(64)
	envT, dt := treeDomain(64)
	hw, tree := measure(dh, envH, 64), measure(dt, envT, 64)
	if tree < 3*hw {
		t.Fatalf("software tree (%v) should be >=3x slower than hardware (%v) on 64 nodes", tree, hw)
	}
}

func TestTreeCAWLatencyMatchesTable5(t *testing.T) {
	env, d := treeDomain(64)
	var elapsed sim.Time
	env.Spawn("m", func(p *sim.Proc) {
		start := p.Now()
		d.Node(0).CompareAndWrite(p, qsnet.Range(0, 64), "v", GE, 0, nil)
		elapsed = p.Now() - start
	})
	env.Run()
	// Table 5: ~20·log2(64) = 120 µs for emulated networks.
	us := elapsed.Microseconds()
	if us < 90 || us > 150 {
		t.Fatalf("tree CAW on 64 nodes = %.1fus, want ~120us", us)
	}
}

func TestRecvOnEmptyInbox(t *testing.T) {
	_, d := hwDomain(2)
	if _, ok := d.Node(0).Recv("nothing"); ok {
		t.Fatal("Recv on empty inbox returned ok")
	}
}
