// Package mech implements the three STORM mechanisms (paper §2.2) — the
// narrow interface on which every resource-management function is built:
//
//	XFER-AND-SIGNAL   non-blocking PUT of a block of data to the global
//	                  memory of a set of nodes, optionally signaling a
//	                  local and/or remote event on completion; atomic and
//	                  sequentially consistent.
//	TEST-EVENT        poll a local event, optionally blocking until it is
//	                  signaled.
//	COMPARE-AND-WRITE compare a global variable on a set of nodes against
//	                  a local value (>=, <, ==, !=); if the condition
//	                  holds on ALL nodes, optionally write a new value to
//	                  a (possibly different) global variable on the set;
//	                  blocking, atomic, sequentially consistent.
//
// Two implementations are provided:
//
//   - HWDomain maps the mechanisms 1:1 onto QsNET hardware primitives
//     (hardware multicast, network conditionals, remotely signaled
//     events), as in the paper's reference implementation.
//
//   - TreeDomain emulates them with logarithmic software trees of
//     point-to-point messages, the "thin software layer" the paper says
//     commodity networks (Ethernet, Myrinet, Infiniband) would need
//     (paper §4, Table 5). It exists so the repository can measure what
//     the hardware collectives buy (the ablation benchmarks).
//
// Control messages ride along with transfers: a transfer may carry an
// opaque payload that is deposited in the destination's per-event inbox,
// which models STORM's remote hardware queues (paper §6 point on "remote
// hardware queues").
package mech

import (
	"fmt"

	"repro/internal/qsnet"
	"repro/internal/sim"
)

// CompareOp is the comparison COMPARE-AND-WRITE applies on every node.
type CompareOp int

// The four comparison operators of the paper's COMPARE-AND-WRITE.
const (
	GE CompareOp = iota // >=
	LT                  // <
	EQ                  // ==
	NE                  // !=
)

func (op CompareOp) String() string {
	switch op {
	case GE:
		return ">="
	case LT:
		return "<"
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return "?"
}

// Eval applies the operator.
func (op CompareOp) Eval(global, local int64) bool {
	switch op {
	case GE:
		return global >= local
	case LT:
		return global < local
	case EQ:
		return global == local
	case NE:
		return global != local
	}
	panic("mech: unknown CompareOp")
}

// Write describes the optional write half of COMPARE-AND-WRITE: if the
// comparison holds on all nodes, Var is set to Val on every node of the
// destination set.
type Write struct {
	Var string
	Val int64
}

// Payload is an opaque control message carried by a transfer.
type Payload interface{}

// Node is the per-node handle to the mechanisms. Exactly one Node exists
// per cluster node per domain; dæmons on that node share it.
type Node interface {
	// ID returns this node's ID.
	ID() int

	// XferAndSignal starts a non-blocking transfer of bytes from this
	// node's buffer (in srcLoc) to the same virtual address on every node
	// of dests (in dstLoc). When the transfer completes it deposits
	// payload (if non-nil) in each destination's inbox for remoteEv and
	// signals remoteEv there, then signals localEv here (if non-empty).
	// The operation is atomic: on a network error (e.g. a dead
	// destination) no node receives anything and localEv is never
	// signaled; the error is recorded and readable via LastError.
	XferAndSignal(dests qsnet.NodeSet, bytes int64, srcLoc, dstLoc qsnet.BufferLoc,
		payload Payload, localEv, remoteEv string)

	// TestEvent blocks the calling process until the named local event
	// has been signaled, consuming one signal.
	TestEvent(p *sim.Proc, name string)

	// TestEventTimeout is TestEvent with a deadline; false on timeout.
	TestEventTimeout(p *sim.Proc, name string, d sim.Time) bool

	// PollEvent is the non-blocking variant: it reports whether a signal
	// is pending without consuming it.
	PollEvent(name string) bool

	// Recv pops the oldest payload deposited for the named event, or
	// (nil, false) if none is queued.
	Recv(name string) (Payload, bool)

	// PostLocal deposits a payload in this node's own inbox and signals
	// the event — same-node dæmon-to-dæmon notification (e.g. a Program
	// Launcher telling its Node Manager a process exited). No network
	// traffic is involved.
	PostLocal(name string, payload Payload)

	// EventBacklog reports how many signals of the named event are
	// pending (deposited but not yet consumed) — the control-queue depth
	// a dæmon checks to detect overload.
	EventBacklog(name string) int

	// CompareAndWrite compares the global variable gvar on every node of
	// dests with local using op. If the condition holds on all nodes it
	// performs write (when non-nil) on all of them and returns true.
	// Blocks the calling process for the collective's latency.
	CompareAndWrite(p *sim.Proc, dests qsnet.NodeSet, gvar string, op CompareOp,
		local int64, write *Write) bool

	// Load and Store access this node's global-memory window directly
	// (local operations, free).
	Load(gvar string) int64
	Store(gvar string, v int64)

	// LastError returns the most recent asynchronous transfer error, or
	// nil. Reading it does not clear it.
	LastError() error
}

// Domain is a set of Nodes sharing one network.
type Domain interface {
	Nodes() int
	Node(id int) Node
	// Network exposes the underlying fabric (for load injection and
	// fault injection in experiments).
	Network() *qsnet.Network
}

// inbox is the per-event payload queue on a node.
type inbox struct {
	msgs []Payload
}

// ---------------------------------------------------------------------
// Hardware implementation (QsNET).
// ---------------------------------------------------------------------

// HWDomain implements the mechanisms on QsNET hardware primitives.
type HWDomain struct {
	net   *qsnet.Network
	nodes []*hwNode
	// caw serializes concurrent COMPARE-AND-WRITEs so that when several
	// nodes issue them with identical parameters, all nodes observe a
	// single winner's value: the sequential-consistency guarantee of
	// paper §2.2 item 2.
	caw *sim.Resource
}

// NewHW builds a hardware-mechanism domain over net.
func NewHW(net *qsnet.Network) *HWDomain {
	d := &HWDomain{net: net, caw: sim.NewResource(net.Env(), 1)}
	d.nodes = make([]*hwNode, net.Nodes())
	for i := range d.nodes {
		d.nodes[i] = &hwNode{dom: d, nic: net.NIC(i), inboxes: map[string]*inbox{}}
	}
	return d
}

// Nodes returns the number of nodes in the domain.
func (d *HWDomain) Nodes() int { return d.net.Nodes() }

// Node returns node id's mechanism handle.
func (d *HWDomain) Node(id int) Node { return d.nodes[id] }

// Network returns the underlying fabric.
func (d *HWDomain) Network() *qsnet.Network { return d.net }

type hwNode struct {
	dom     *HWDomain
	nic     *qsnet.NIC
	inboxes map[string]*inbox
	lastErr error
}

func (n *hwNode) ID() int { return n.nic.ID() }

func (n *hwNode) inboxFor(name string) *inbox {
	ib, ok := n.inboxes[name]
	if !ok {
		ib = &inbox{}
		n.inboxes[name] = ib
	}
	return ib
}

func (n *hwNode) XferAndSignal(dests qsnet.NodeSet, bytes int64, srcLoc, dstLoc qsnet.BufferLoc,
	payload Payload, localEv, remoteEv string) {
	env := n.dom.net.Env()
	src := n.nic.ID()
	// The NIC performs the transfer autonomously; the host returns
	// immediately (XFER-AND-SIGNAL is the one non-blocking mechanism,
	// paper §2.2 item 3).
	env.Spawn(fmt.Sprintf("xfer:%d->%s", src, dests), func(p *sim.Proc) {
		var err error
		if dests.N == 1 {
			// A single-destination transfer is an ordinary remote DMA; it
			// does not occupy the hardware multicast tree.
			err = n.dom.net.Put(p, src, dests.First, bytes)
		} else {
			err = n.dom.net.Broadcast(p, src, dests, bytes, srcLoc, dstLoc)
		}
		if err != nil {
			// Atomicity: nothing was delivered, nothing is signaled.
			n.lastErr = err
			return
		}
		for id := dests.First; id <= dests.Last(); id++ {
			dst := n.dom.nodes[id]
			if payload != nil {
				dst.inboxFor(remoteEv).msgs = append(dst.inboxFor(remoteEv).msgs, payload)
			}
			if remoteEv != "" {
				dst.nic.Event(remoteEv).Signal()
			}
		}
		if localEv != "" {
			n.nic.Event(localEv).Signal()
		}
	})
}

func (n *hwNode) TestEvent(p *sim.Proc, name string) {
	n.nic.Event(name).Wait(p)
}

func (n *hwNode) TestEventTimeout(p *sim.Proc, name string, d sim.Time) bool {
	return n.nic.Event(name).WaitTimeout(p, d)
}

func (n *hwNode) PollEvent(name string) bool {
	return n.nic.Event(name).Poll()
}

func (n *hwNode) Recv(name string) (Payload, bool) {
	ib := n.inboxFor(name)
	if len(ib.msgs) == 0 {
		return nil, false
	}
	m := ib.msgs[0]
	ib.msgs = ib.msgs[1:]
	return m, true
}

func (n *hwNode) CompareAndWrite(p *sim.Proc, dests qsnet.NodeSet, gvar string, op CompareOp,
	local int64, write *Write) bool {
	d := n.dom
	d.caw.Acquire(p)
	defer d.caw.Release() // kill-safe: a killed caller must not wedge CAWs
	ok := d.net.Conditional(p, dests, func(nic *qsnet.NIC) bool {
		return op.Eval(nic.Load(gvar), local)
	})
	if ok && write != nil {
		for id := dests.First; id <= dests.Last(); id++ {
			d.net.NIC(id).Store(write.Var, write.Val)
		}
	}
	return ok
}

func (n *hwNode) PostLocal(name string, payload Payload) {
	if payload != nil {
		n.inboxFor(name).msgs = append(n.inboxFor(name).msgs, payload)
	}
	n.nic.Event(name).Signal()
}

func (n *hwNode) EventBacklog(name string) int { return n.nic.Event(name).Pending() }

func (n *hwNode) Load(gvar string) int64     { return n.nic.Load(gvar) }
func (n *hwNode) Store(gvar string, v int64) { n.nic.Store(gvar, v) }
func (n *hwNode) LastError() error           { return n.lastErr }
