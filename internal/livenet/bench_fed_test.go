package livenet

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// BenchmarkFederatedLaunch is the scale headline: launch latency from
// 64 to 512 NMs (1024 with STORM_FED_MAX_NODES=1024), all in one
// process. 64 NMs run level-1 — a flat MM, the paper's demonstrated
// regime — and every larger size runs a level-2 federation of
// 64-NM partitions behind one root. Every NM is hub-routed and lite,
// which is what makes the big sizes fit: ~2 goroutines and ~89 KiB per
// idle NM against the seed's 3 and 261.
//
// The cold series is CPU-bound on a loopback host (n×image bytes must
// move through one kernel), so the near-flat scaling claim rides on the
// warm series: a relaunch of a cached image is pure control plane —
// manifest + HAVE ledger rounds inside each partition, running
// concurrently — and its latency tracks partition size and tree depth,
// not cluster size. Root egress is asserted O(partitions): a handful of
// Submit frames regardless of node count.
//
// Merges a `federation` section into BENCH_livenet.json, preserving
// the sections other benchmarks own.
//
//	go test -run '^$' -bench BenchmarkFederatedLaunch -benchtime=1x ./internal/livenet/
func BenchmarkFederatedLaunch(b *testing.B) {
	const (
		perPart     = 64
		leafFanout  = 4
		leafStripes = 2 // each partition stripes its transfer over 2 disjoint trees
		binaryBytes = 256 << 10
		fragBytes   = 32 << 10
		cacheBytes  = 16 << 20
	)
	maxNodes := 512
	if v, err := strconv.Atoi(os.Getenv("STORM_FED_MAX_NODES")); err == nil && v >= perPart {
		maxNodes = v
	}
	type point struct {
		Nodes           int     `json:"nodes"`
		Partitions      int     `json:"partitions"`
		Levels          int     `json:"levels"`
		ColdSendMS      float64 `json:"cold_send_ms"`
		ColdTotalMS     float64 `json:"cold_total_ms"`
		WarmSendMS      float64 `json:"warm_send_ms"`
		WarmTotalMS     float64 `json:"warm_total_ms"`
		RootEgressCold  int64   `json:"root_egress_cold_bytes"`
		RootEgressWarm  int64   `json:"root_egress_warm_bytes"`
		GoroutinesPerNM float64 `json:"goroutines_per_nm"`
		HeapKiBPerNM    float64 `json:"heap_kib_per_nm"`
	}
	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	spec := func(n int, seed uint64) JobSpec {
		return JobSpec{
			Name: "fed-bench", BinaryBytes: binaryBytes, Nodes: n, PEsPerNode: 1,
			ImageSeed: seed, Program: ProgramSpec{Kind: "exit"},
		}
	}
	points := map[int]point{}
	var sizes []int
	for n := perPart; n <= maxNodes; n *= 2 {
		sizes = append(sizes, n)
	}
	for _, n := range sizes {
		n := n
		parts := n / perPart
		b.Run(fmt.Sprintf("nodes%d", n), func(b *testing.B) {
			baseG := runtime.NumGoroutine()
			baseH := heapNow()
			fed, mms, _, _ := fedCluster(b, parts, perPart, FedConfig{Lite: true},
				MMConfig{Fanout: leafFanout, FragBytes: fragBytes, Stripes: leafStripes},
				func(int) NMConfig { return NMConfig{CacheBytes: cacheBytes} })
			pt := point{Nodes: n, Partitions: parts, Levels: 2}
			if parts == 1 {
				pt.Levels = 1 // a single partition exercises no root fan-out
			}
			pt.GoroutinesPerNM = float64(runtime.NumGoroutine()-baseG) / float64(n)
			pt.HeapKiBPerNM = float64(heapNow()-baseH) / float64(n) / 1024

			// The flat-MM 64-node point submits to the leaf directly; the
			// federated points go through the root. Either way the client
			// call is identical — that is the point of the design.
			runFed := func(seed uint64) (FedReport, error) { return fed.RunJob(spec(n, seed)) }
			runFlat := func(seed uint64) (FedReport, error) {
				rep, err := mms[0].RunJob(spec(n, seed))
				return FedReport{
					Send: rep.Send, Execute: rep.Execute, Total: rep.Total,
					RootEgress: rep.SendBytes,
					Parts:      []PartReport{{Nodes: n, Report: rep}},
				}, err
			}
			run := runFed
			if parts == 1 {
				run = runFlat
			}

			b.SetBytes(int64(binaryBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cold: a distinct seed per iteration defeats the caches.
				coldRep, err := run(0xFED_0000 + uint64(n)<<8 + uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				// Warm: first relaunch of the shared warm seed populates
				// the caches (unmeasured past iteration 0's cold half),
				// second is the pure control-plane number.
				warmSeed := 0xACE_0000 + uint64(n)
				if i == 0 {
					if _, err := run(warmSeed); err != nil {
						b.Fatal(err)
					}
				}
				warmRep, err := run(warmSeed)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range warmRep.Parts {
					if p.Report.ChunksSent != 0 {
						b.Fatalf("warm federated relaunch streamed %d chunks in partition %d, want 0",
							p.Report.ChunksSent, p.Partition)
					}
				}
				if parts > 1 {
					// Root delegation cost is O(partitions): one gob Submit
					// frame each, regardless of image or cluster size.
					if limit := int64(parts) * 4096; warmRep.RootEgress > limit {
						b.Fatalf("root egress %dB for %d partitions, want <=%d — delegation cost must not scale with nodes",
							warmRep.RootEgress, parts, limit)
					}
				}
				cold := float64(coldRep.Send) / float64(time.Millisecond)
				if pt.ColdSendMS == 0 || cold < pt.ColdSendMS {
					pt.ColdSendMS = cold
					pt.ColdTotalMS = float64(coldRep.Total) / float64(time.Millisecond)
					pt.RootEgressCold = coldRep.RootEgress
				}
				warm := float64(warmRep.Send) / float64(time.Millisecond)
				if pt.WarmSendMS == 0 || warm < pt.WarmSendMS {
					pt.WarmSendMS = warm
					pt.WarmTotalMS = float64(warmRep.Total) / float64(time.Millisecond)
					pt.RootEgressWarm = warmRep.RootEgress
				}
			}
			b.StopTimer()
			b.ReportMetric(pt.WarmSendMS, "warm-send-ms")
			b.ReportMetric(pt.ColdSendMS, "cold-send-ms")
			b.ReportMetric(pt.GoroutinesPerNM, "goroutines/NM")
			b.ReportMetric(pt.HeapKiBPerNM, "heap-KiB/NM")
			if prev, seen := points[n]; !seen || pt.WarmSendMS < prev.WarmSendMS {
				points[n] = pt
			}
		})
	}
	var series []point
	for _, n := range sizes {
		if pt, ok := points[n]; ok {
			series = append(series, pt)
		}
	}
	if len(series) == 0 {
		return
	}
	mergeBenchSummary(b, map[string]any{
		"federation": map[string]any{
			"binary_bytes":  binaryBytes,
			"frag_bytes":    fragBytes,
			"per_partition": perPart,
			"leaf_fanout":   leafFanout,
			"leaf_stripes":  leafStripes,
			"series":        series,
		},
	})
}
