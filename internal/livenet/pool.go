package livenet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunkWorkers is the size of the transient worker pool the data path
// uses for per-chunk CPU work (MM-side generate+hash+CRC when building
// a manifest, NM-side CRC verify when finalizing a spooled image):
// enough to stop a multi-megabyte image from being single-core bound,
// small enough not to fight the relay goroutines for the scheduler.
func chunkWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w > n {
		w = n
	}
	return w
}

// parallelChunks runs fn(i) for every i in [0, n) across a small worker
// pool. Small inputs run inline — the pool only pays for itself when
// there are enough chunks to amortize the goroutine handoff. fn must be
// safe to call concurrently for distinct i.
func parallelChunks(n int, fn func(i int)) {
	const minParallel = 8
	workers := chunkWorkers(n)
	if n < minParallel || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
