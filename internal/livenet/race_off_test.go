//go:build !race

package livenet

// raceEnabled reports whether this test binary was built with the race
// detector. Alloc-exactness tests consult it: the race runtime
// deliberately drops sync.Pool puts at random, so pooled codecs cannot
// hold a zero-allocation ceiling under -race.
const raceEnabled = false
