package livenet

import (
	"sync"
	"time"
)

// Heartbeat failure detection on the live control plane, mirroring the
// simulator's FaultDetector (internal/storm/fault.go): the MM
// multicasts a sequence-numbered ping to every registered NM each
// period and tracks the last sequence each node answered. A node that
// falls two sequences behind is only *suspected*; before being declared
// failed it gets a directed isolation probe with a grace window —
// exactly the sim's per-node probe phase — so a node that is merely
// slow is given the chance to prove liveness, while a crashed or
// partitioned node is flagged within two periods plus the grace.

// hbState is the pong ledger shared between the detector loop and the
// control-plane receive path.
type hbState struct {
	mu    sync.Mutex
	seq   int64
	pongs map[int]int64 // node -> last heartbeat seq answered
}

// StartHeartbeat runs a heartbeat failure detector: it pings all
// registered NMs every period and calls onFail(node) once per node
// that stops answering (after a failed isolation probe). The returned
// stop function is idempotent; MM.Close also stops the detector.
func (mm *MM) StartHeartbeat(period time.Duration, onFail func(node int)) (stop func()) {
	st := &hbState{pongs: make(map[int]int64)}
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	mm.mu.Lock()
	mm.hb = st
	mm.detStops = append(mm.detStops, stop)
	mm.mu.Unlock()

	// The isolation-probe grace is one period: a suspect is declared
	// failed no later than 2 periods (missed heartbeats) + 1 period
	// (unanswered probe) after its last sign of life.
	grace := period

	failed := make(map[int]bool)
	// known tracks every node ever seen, with the heartbeat sequence
	// current when it appeared: a node that later disconnects (and so
	// leaves the registry) keeps being checked and is declared failed —
	// exactly the paper's "slave missed a heartbeat" condition.
	known := make(map[int]int64)
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			st.mu.Lock()
			st.seq++
			seq := st.seq
			st.mu.Unlock()
			mm.mu.Lock()
			reg := make(map[int]*nmLink, len(mm.nms))
			for node, l := range mm.nms {
				reg[node] = l
			}
			mm.mu.Unlock()
			for node, l := range reg {
				if _, ok := known[node]; !ok {
					known[node] = seq - 1 // grace for late joiners
				}
				l.c.send(Message{Ping: &Ping{Seq: seq}})
			}
			// Suspicion pass: who has missed two consecutive heartbeats?
			var suspects []int
			st.mu.Lock()
			for node, joinedAt := range known {
				if failed[node] || seq-joinedAt < 2 {
					continue
				}
				last := st.pongs[node]
				if last < joinedAt {
					last = joinedAt
				}
				// Two consecutive missed heartbeats raise suspicion. A
				// merely-slow node (its pong still in flight) survives the
				// isolation probe below, so suspicion can afford to be
				// this eager — and a dead node is flagged within
				// 2 periods + grace of its last sign of life.
				if last < seq-1 {
					suspects = append(suspects, node)
				}
			}
			st.mu.Unlock()
			if len(suspects) == 0 {
				continue
			}
			// Isolation-probe pass: a suspect whose control link is gone
			// (it unregistered when its conn died) is dead outright;
			// anyone else gets a directed probe and the grace window to
			// answer it.
			var probeLinks []*nmLink
			dead := make(map[int]bool)
			for _, node := range suspects {
				if l := reg[node]; l != nil {
					probeLinks = append(probeLinks, l)
				} else {
					dead[node] = true
				}
			}
			for node := range mm.probeNodes(probeLinks, grace) {
				dead[node] = true
			}
			for node := range dead {
				failed[node] = true
				if onFail != nil {
					go onFail(node)
				}
			}
		}
	}()
	return stop
}

// onPong routes a pong to whichever detector asked: directed isolation
// probes carry sequences in a disjoint high range; everything else is
// heartbeat credit.
func (mm *MM) onPong(p *Pong) {
	mm.mu.Lock()
	st := mm.hb
	pr := mm.probes[p.Seq]
	mm.mu.Unlock()
	if pr != nil {
		pr.mu.Lock()
		pr.got[p.Node] = true
		pr.mu.Unlock()
		return
	}
	if st == nil {
		return
	}
	st.mu.Lock()
	if p.Seq > st.pongs[p.Node] {
		st.pongs[p.Node] = p.Seq
	}
	st.mu.Unlock()
}
