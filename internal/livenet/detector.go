package livenet

import (
	"sort"
	"sync"
	"time"

	"repro/internal/livenet/journal"
)

// Heartbeat failure detection on the live control plane. Unlike the
// simulator's flat detector (one unicast ping per node per period), the
// live MM multicasts ONE sequence-numbered ping per period to its ≤k
// control-tree children; every NM relays it down and answers with a
// cumulative subtree ledger (ctl.go), so the MM's steady-state control
// egress — and ingress — is O(fanout) while it still observes per-node
// liveness through the ledgers' absentee bitmaps.
//
// Suspicion is deliberately two-staged, preserving the flat detector's
// conviction bound: a node absent from fresh ledgers (or whose whole
// subtree went silent) for two consecutive periods is only *suspected*;
// before being declared failed it gets a directed unicast isolation
// probe with a grace window — tree aggregation never convicts anyone on
// its own, it only chooses whom to probe. A merely-slow subtree costs a
// spare probe round; a dead node is flagged within ~3 periods plus the
// grace even at the bottom of the tree.

// mmCtl is the MM's view of the control tree plus the latency metrics
// the bench reports. Guarded by MM.mu.
type mmCtl struct {
	epoch   int
	members []int         // sorted node IDs the tree was built over
	kids    []*nmLink     // the MM's direct children
	sub     map[int][]int // direct child -> pre-order subtree node IDs
	ledger  map[int]*mmLedger

	hbSent map[int64]time.Time // ping seq -> send time (RTT waiters)

	strobeSeq  int64
	strobeAck  map[int]int64       // direct child -> cumulative strobe credit
	strobeSent map[int64]time.Time // strobe seq -> send time (latency waiters)

	// latency stats, nanoseconds.
	hbN, hbSum, hbMax             int64
	strobeN, strobeSum, strobeMax int64
}

// mmLedger is the latest pong ledger received from one direct child.
type mmLedger struct {
	seq    int64
	min    int64
	absent uint64
}

// syncCtl rebuilds the control tree when membership changed
// (registration, disconnect, conviction) and installs every node's role
// with a CtlPlan broadcast — O(n) messages, but only on change; the
// per-period cost stays O(fanout). Returns the MM's direct children and
// the current epoch.
func (mm *MM) syncCtl() (kids []*nmLink, epoch int) {
	mm.mu.Lock()
	ids := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		if !mm.ctlExclude[id] {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	if intsEqual(ids, mm.ctl.members) {
		kids = append(kids, mm.ctl.kids...)
		epoch = mm.ctl.epoch
		mm.mu.Unlock()
		return kids, epoch
	}
	mm.ctl.epoch++
	epoch = mm.ctl.epoch
	mm.ctl.members = ids
	n := len(ids)
	links := make([]*nmLink, n)
	for i, id := range ids {
		links[i] = mm.nms[id]
	}
	mm.ctl.kids = mm.ctl.kids[:0]
	mm.ctl.sub = make(map[int][]int)
	mm.ctl.ledger = make(map[int]*mmLedger)
	mm.ctl.hbSent = make(map[int64]time.Time)
	mm.ctl.strobeAck = make(map[int]int64)
	mm.ctl.strobeSent = make(map[int64]time.Time)
	for _, pos := range mmChildren(n, mm.cfg.Fanout) {
		l := links[pos]
		mm.ctl.kids = append(mm.ctl.kids, l)
		pre := subtreePreorder(pos, n, mm.cfg.Fanout)
		sub := make([]int, len(pre))
		for i, p := range pre {
			sub[i] = links[p].node
		}
		mm.ctl.sub[l.node] = sub
	}
	kids = append(kids, mm.ctl.kids...)
	plans := make([]CtlPlan, n)
	for i := range links {
		var refs []CtlChild
		for _, k := range nodeChildren(i, n, mm.cfg.Fanout) {
			pre := subtreePreorder(k, n, mm.cfg.Fanout)
			sub := make([]int, len(pre))
			for j, p := range pre {
				sub[j] = links[p].node
			}
			refs = append(refs, CtlChild{Node: links[k].node, Addr: links[k].addr, Subtree: sub})
		}
		plans[i] = CtlPlan{Epoch: epoch, Children: refs}
	}
	mm.mu.Unlock()
	for i, l := range links {
		p := plans[i]
		l.c.send(Message{CtlPlan: &p})
	}
	return kids, epoch
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StartHeartbeat runs the tree heartbeat failure detector: one
// multicast ping per period, aggregated pong ledgers back, and
// onFail(node) called once per node that stops answering (after a
// failed isolation probe). The returned stop function is idempotent;
// MM.Close also stops the detector.
func (mm *MM) StartHeartbeat(period time.Duration, onFail func(node int)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	mm.mu.Lock()
	mm.detStops = append(mm.detStops, stop)
	mm.hbActive++
	mm.mu.Unlock()
	// The isolation-probe grace is one period: a suspect is declared
	// failed no later than ~3 periods (ledger absence at tree depth) +
	// 1 period (unanswered probe) after its last sign of life.
	go mm.heartbeatLoop(period, period, onFail, done)
	return stop
}

func (mm *MM) heartbeatLoop(period, grace time.Duration, onFail func(node int), done chan struct{}) {
	defer func() {
		mm.mu.Lock()
		mm.hbActive--
		mm.mu.Unlock()
	}()
	failed := make(map[int]bool)
	// streak counts consecutive periods a node went without a fresh
	// ledger vouching for it. known remembers every node ever seen: a
	// node that disconnects (leaving the registry and the tree) keeps
	// being checked and is declared failed — the paper's "slave missed
	// a heartbeat" condition.
	streak := make(map[int]int)
	known := make(map[int]bool)
	var seq int64
	lastEpoch := 0
	var warmUntil int64 // post-epoch-change grace: ledgers need a round to warm
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		kids, epoch := mm.syncCtl()
		seq++
		s := seq
		if epoch != lastEpoch {
			lastEpoch = epoch
			warmUntil = s + 1
		}

		// Evaluate the previous round: which nodes did the ledgers vouch
		// for heartbeat s-1?
		vouched := make(map[int]bool)
		member := make(map[int]bool)
		mm.mu.Lock()
		// Drain rejoin notices first: a readmitted node's conviction latch
		// and absence streak reset before this round judges anyone, so it
		// is evaluated as a fresh member from its first post-rejoin tick.
		for node := range mm.rejoined {
			delete(mm.rejoined, node)
			delete(failed, node)
			delete(streak, node)
		}
		if epoch == mm.ctl.epoch {
			for _, l := range mm.ctl.kids {
				sub := mm.ctl.sub[l.node]
				led := mm.ctl.ledger[l.node]
				fresh := led != nil && led.seq >= s-1
				for j, node := range sub {
					member[node] = true
					if fresh && (j >= 64 || led.absent&(uint64(1)<<uint(j)) == 0) {
						vouched[node] = true
					}
				}
			}
		}
		// Probation: every vouched round pays one period off a rejoined
		// node's sentence; at zero it re-enters the placement rotation.
		for node := range vouched {
			if p, ok := mm.probation[node]; ok {
				if p <= 1 {
					delete(mm.probation, node)
					mm.syncPlaceLocked(node) // sentence served: back in rotation
				} else {
					mm.probation[node] = p - 1
				}
			}
		}
		reg := make(map[int]*nmLink, len(mm.nms))
		for node, l := range mm.nms {
			reg[node] = l
		}
		mm.mu.Unlock()

		for node := range member {
			known[node] = true
		}
		var suspects []int
		for node := range known {
			if failed[node] {
				continue
			}
			switch {
			case !member[node]:
				// Left the tree without being convicted: its registration
				// died or it was never replanted. No ledger will ever
				// vouch for it again, so absence accounting needs no
				// warm-up.
				streak[node]++
			case s <= warmUntil:
				continue
			case vouched[node]:
				streak[node] = 0
				continue
			default:
				streak[node]++
			}
			if streak[node] >= 2 {
				suspects = append(suspects, node)
			}
		}

		// Multicast this round's ping to the direct children only — the
		// O(fanout) egress the bench asserts — and arm the RTT waiter.
		mm.mu.Lock()
		if epoch == mm.ctl.epoch {
			mm.ctl.hbSent[s] = time.Now()
			for k := range mm.ctl.hbSent {
				if k < s-8 {
					delete(mm.ctl.hbSent, k)
				}
			}
		}
		mm.mu.Unlock()
		for _, l := range kids {
			l.c.send(Message{Ping: &Ping{Seq: s, Epoch: epoch}})
		}

		if len(suspects) == 0 {
			continue
		}
		// Isolation-probe pass: a suspect whose control link is gone is
		// dead outright; anyone else gets a directed unicast probe and
		// the grace window to answer it. The tree only nominates
		// suspects — conviction always rests on a failed direct probe.
		var probeLinks []*nmLink
		dead := make(map[int]bool)
		for _, node := range suspects {
			if l := reg[node]; l != nil {
				probeLinks = append(probeLinks, l)
			} else {
				dead[node] = true
			}
		}
		for node := range mm.probeNodes(probeLinks, grace) {
			dead[node] = true
		}
		for node := range dead {
			failed[node] = true
			delete(streak, node)
			mm.mu.Lock()
			mm.ctlExclude[node] = true
			delete(mm.probation, node) // a convicted probationer is just convicted
			mm.syncPlaceLocked(node)
			mm.mu.Unlock()
			mm.jlog(journal.NodeDead, 0, node, []byte("missed heartbeats"))
			if onFail != nil {
				go onFail(node)
			}
		}
	}
}

// onPong routes a pong to whichever detector asked: directed isolation
// probes (Epoch 0, disjoint high sequence range) credit their probe
// round; tree ledgers update the per-child ledger table and complete
// the heartbeat RTT waiter once every direct child reported the round.
func (mm *MM) onPong(p *Pong) {
	mm.mu.Lock()
	if pr := mm.probes[p.Seq]; pr != nil {
		mm.mu.Unlock()
		pr.mu.Lock()
		pr.got[p.Node] = true
		pr.mu.Unlock()
		return
	}
	if p.Epoch == 0 || p.Epoch != mm.ctl.epoch || mm.ctl.ledger == nil {
		mm.mu.Unlock()
		return // stale topology (or a probe reply that missed its round)
	}
	led := mm.ctl.ledger[p.Node]
	if led == nil {
		led = &mmLedger{}
		mm.ctl.ledger[p.Node] = led
	}
	if p.Seq > led.seq {
		led.seq, led.min, led.absent = p.Seq, p.MinSeq, p.Absent
	}
	if t0, ok := mm.ctl.hbSent[p.Seq]; ok {
		complete := true
		for _, l := range mm.ctl.kids {
			if lg := mm.ctl.ledger[l.node]; lg == nil || lg.seq < p.Seq {
				complete = false
				break
			}
		}
		if complete {
			d := time.Since(t0).Nanoseconds()
			mm.ctl.hbN++
			mm.ctl.hbSum += d
			if d > mm.ctl.hbMax {
				mm.ctl.hbMax = d
			}
			delete(mm.ctl.hbSent, p.Seq)
		}
	}
	mm.mu.Unlock()
}

// HeartbeatRTT reports the observed ping→full-ledger round trip (mean,
// max, sample count): the time from a heartbeat multicast until every
// direct child's aggregated subtree ledger for that round arrived.
func (mm *MM) HeartbeatRTT() (mean, max time.Duration, n int64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.ctl.hbN > 0 {
		mean = time.Duration(mm.ctl.hbSum / mm.ctl.hbN)
	}
	return mean, time.Duration(mm.ctl.hbMax), mm.ctl.hbN
}

// StrobeLatency reports the observed strobe propagation latency (mean,
// max, sample count): the time from a strobe multicast until every
// direct child's cumulative subtree ack covered it.
func (mm *MM) StrobeLatency() (mean, max time.Duration, n int64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.ctl.strobeN > 0 {
		mean = time.Duration(mm.ctl.strobeSum / mm.ctl.strobeN)
	}
	return mean, time.Duration(mm.ctl.strobeMax), mm.ctl.strobeN
}

// ControlEgress sums the frames and bytes the MM has written across
// every registered NM link — the control-egress metric the bench
// samples over idle heartbeat periods to assert O(fanout) scaling.
func (mm *MM) ControlEgress() (frames, bytes int64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for _, l := range mm.nms {
		frames += l.c.sentFrames.Load()
		bytes += l.c.sentBytes()
	}
	return frames, bytes
}
