package livenet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/place"
)

// Multi-tenant admission: the MM keeps an explicit job table and moves
// every submitted job through a small state machine
//
//	ADMITTED -> PLANNED -> MANIFEST -> STREAMING -> LAUNCHED -> DONE/FAILED
//
// with up to MaxConcurrent jobs in the transfer phases at once. Jobs
// share the cached relay links and the control tree; which admitted job
// streams next when the slots are saturated is a pluggable policy
// (FIFO, weighted-fair over users, smallest-image-first). A per-link
// byte budget shared by every job crossing that link bounds how much
// unacknowledged data one job can park in a link's pipeline, so a fat
// job backpressures instead of starving the tree for everyone else.

// jobPhase is a job's position in the launch state machine.
type jobPhase int

const (
	phaseAdmitted  jobPhase = iota // in the admission queue
	phasePlanned                   // relay tree confirmed by every node
	phaseManifest                  // manifest multicast / HAVE fold in flight
	phaseStreaming                 // chunks moving down the tree
	phaseLaunched                  // processes forked, awaiting termination
	phaseDone
	phaseFailed
)

func (p jobPhase) String() string {
	switch p {
	case phaseAdmitted:
		return "admitted"
	case phasePlanned:
		return "planned"
	case phaseManifest:
		return "manifest"
	case phaseStreaming:
		return "streaming"
	case phaseLaunched:
		return "launched"
	case phaseDone:
		return "done"
	case phaseFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

func (j *liveJob) setPhase(p jobPhase) {
	j.mu.Lock()
	j.phase = p
	j.mu.Unlock()
}

// admissionPolicy decides which queued job gets the next free streaming
// slot. pick is a pure function of the queue (called under mm.mu);
// granted is the accounting hook invoked when its choice is admitted.
type admissionPolicy interface {
	name() string
	pick(q []*liveJob) *liveJob
	granted(j *liveJob)
}

// newAdmissionPolicy maps a policy name to its implementation.
func newAdmissionPolicy(name string) (admissionPolicy, error) {
	switch name {
	case "", "fifo":
		return fifoPolicy{}, nil
	case "wfair":
		return &wfairPolicy{vt: make(map[string]float64)}, nil
	case "sif":
		return sifPolicy{}, nil
	}
	return nil, fmt.Errorf("livenet: unknown admission policy %q (want fifo, wfair, or sif)", name)
}

// fifoPolicy streams jobs in submission order.
type fifoPolicy struct{}

func (fifoPolicy) name() string { return "fifo" }
func (fifoPolicy) pick(q []*liveJob) *liveJob {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}
func (fifoPolicy) granted(*liveJob) {}

// sifPolicy streams the smallest image first (shortest-job-first for
// the transfer phase); ties break toward the earlier submission.
type sifPolicy struct{}

func (sifPolicy) name() string { return "sif" }
func (sifPolicy) pick(q []*liveJob) *liveJob {
	var best *liveJob
	for _, j := range q {
		if best == nil || j.spec.BinaryBytes < best.spec.BinaryBytes ||
			(j.spec.BinaryBytes == best.spec.BinaryBytes && j.id < best.id) {
			best = j
		}
	}
	return best
}
func (sifPolicy) granted(*liveJob) {}

// wfairPolicy is weighted-fair queueing over users: each user
// accumulates virtual time proportional to the bytes it streams divided
// by its weight, and the queued job of the least-charged user goes
// next. A user that bursts many fat jobs falls behind users with queued
// work, without ever starving (its virtual time stands still while it
// waits).
type wfairPolicy struct {
	vt map[string]float64
}

func (*wfairPolicy) name() string { return "wfair" }

func (p *wfairPolicy) pick(q []*liveJob) *liveJob {
	var best *liveJob
	var bestVT float64
	for _, j := range q {
		vt := p.vt[j.spec.User]
		if best == nil || vt < bestVT || (vt == bestVT && j.id < best.id) {
			best, bestVT = j, vt
		}
	}
	return best
}

func (p *wfairPolicy) granted(j *liveJob) {
	w := j.spec.Weight
	if w <= 0 {
		w = 1
	}
	bytes := j.spec.BinaryBytes
	if bytes <= 0 {
		bytes = 1
	}
	p.vt[j.spec.User] += float64(bytes) / float64(w)
}

// awaitAdmission parks the job in the admission queue until the policy
// picks it, a streaming slot is free, and (under gang scheduling) an
// exclusive timeslot row is available. On success the job owns one
// streaming slot and j.row. Caller holds mm.mu.
func (mm *MM) awaitAdmission(j *liveJob) error {
	mm.admitQ = append(mm.admitQ, j)
	for {
		if mm.closed {
			mm.dropQueued(j)
			return fmt.Errorf("%w while job %d awaited admission", ErrMMClosed, j.id)
		}
		if mm.streaming < mm.cfg.MaxConcurrent && mm.policy.pick(mm.admitQ) == j {
			if row := mm.pickRow(); row >= 0 {
				// j.mu nests inside mm.mu: JobTable readers hold j.mu only.
				j.mu.Lock()
				j.row = row
				j.mu.Unlock()
				mm.dropQueued(j)
				mm.streaming++
				mm.policy.granted(j)
				// Re-wake the remaining waiters: removing this job from
				// the queue may make the new head eligible right now, and
				// no release event is due to wake it.
				mm.admit.Broadcast()
				return nil
			}
			// Every gang row is occupied: row exhaustion queues the
			// admission; a releaseRow broadcast retries it.
		}
		mm.admit.Wait()
	}
}

// dropQueued removes a job from the admission queue. Caller holds mm.mu.
func (mm *MM) dropQueued(j *liveJob) {
	for i, q := range mm.admitQ {
		if q == j {
			mm.admitQ = append(mm.admitQ[:i], mm.admitQ[i+1:]...)
			return
		}
	}
}

// releaseStream returns the job's streaming slot once its transfer is
// over (success or failure) — execution overlaps freely with other
// jobs' transfers — and wakes the admission queue.
func (mm *MM) releaseStream() {
	mm.mu.Lock()
	mm.streaming--
	mm.admit.Broadcast()
	mm.mu.Unlock()
}

// leastLoadedOrder sorts ids in place by (load, id) ascending — the one
// deterministic least-loaded spread in the system, used for node
// placement within an MM and lifted unchanged to partition picks at a
// federation root. The tie-break is the stable ID order, never map
// iteration order or sort-internal permutation: a given cluster state
// reproduces the identical placement in every run, which is what makes
// chaos schedules replayable and bench JSON comparable across runs.
func leastLoadedOrder(ids []int, load func(id int) int) []int {
	sort.Slice(ids, func(a, b int) bool {
		la, lb := load(ids[a]), load(ids[b])
		if la != lb {
			return la < lb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// placeJob picks the job's node set under mm.mu: the explicit Place
// list verbatim (in tree-position order), or a free placement from the
// indexed engine — under the default spread policy the spec.Nodes
// least-loaded eligible NMs with free capacity for spec.Demand, ties
// toward lower node IDs, so an idle cluster reproduces the classic
// sorted-prefix placement byte for byte; under the locality policy the
// smallest feasible aligned subtree of the heap topology. Eligible
// means registered, not convicted by the failure detector, past any
// rejoin probation, and not in the caller's avoid set (the nodes that
// already failed this job, on the retry path) — the engine's
// eligibility bits mirror those maps via syncPlaceLocked. Pinned
// placements name their nodes explicitly, so only hard disqualifiers
// (unregistered, convicted, avoided) refuse them — probation and
// capacity do not.
func (mm *MM) placeJob(spec *JobSpec, avoid map[int]bool) ([]*nmLink, error) {
	if len(spec.Place) > 0 {
		links := make([]*nmLink, 0, len(spec.Place))
		for _, id := range spec.Place {
			l, ok := mm.nms[id]
			if !ok {
				return nil, fmt.Errorf("livenet: placed node %d not registered", id)
			}
			if mm.ctlExclude[id] {
				return nil, fmt.Errorf("livenet: placed node %d is convicted (missed heartbeats)", id)
			}
			if avoid[id] {
				return nil, fmt.Errorf("livenet: placed node %d already failed this job", id)
			}
			links = append(links, l)
		}
		return links, nil
	}
	ids, err := mm.place.Pick(spec.Nodes, spec.Demand, mm.placePol, avoid)
	if err != nil {
		var ie *place.InsufficientError
		if errors.As(err, &ie) && ie.Feasible == ie.Eligible {
			// Pure head-count shortfall: keep the historical message.
			return nil, fmt.Errorf("livenet: %d NMs eligible, job wants %d", ie.Eligible, spec.Nodes)
		}
		return nil, fmt.Errorf("livenet: %w", err)
	}
	links := make([]*nmLink, 0, spec.Nodes)
	for _, id := range ids {
		l := mm.nms[id]
		if l == nil {
			// Unreachable: eligibility mirrors registration under mm.mu.
			return nil, fmt.Errorf("livenet: placement chose unregistered node %d", id)
		}
		links = append(links, l)
	}
	return links, nil
}

// linkBudget is the shared byte budget of one physical link (one conn
// from the MM to a direct tree child). Every job streaming across the
// link must acquire its chunk's bytes before writing and holds them
// until the child's cumulative ack covers the chunk, so the total
// unacknowledged data all jobs park in the link's pipeline is bounded:
// a fat job blocks in acquire (backpressure) instead of queueing
// unboundedly ahead of everyone else. Tickets keep waiters FIFO so a
// stream of small chunks cannot starve a large one.
type linkBudget struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int64
	used     int64
	queue    []uint64 // outstanding tickets, FIFO
	next     uint64
}

func newLinkBudget(capacity int64) *linkBudget {
	lb := &linkBudget{capacity: capacity}
	lb.cond = sync.NewCond(&lb.mu)
	return lb
}

// acquire blocks until n bytes fit under the budget (clamped to the
// whole budget so an oversized chunk still flows when the link drains).
func (lb *linkBudget) acquire(n int64, deadline time.Time) error {
	if n > lb.capacity {
		n = lb.capacity
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	t := lb.next
	lb.next++
	lb.queue = append(lb.queue, t)
	for !(lb.queue[0] == t && lb.used+n <= lb.capacity) {
		if time.Now().After(deadline) {
			lb.unqueue(t)
			lb.cond.Broadcast()
			return fmt.Errorf("link budget exhausted (%d of %d bytes unacknowledged)", lb.used, lb.capacity)
		}
		w := time.AfterFunc(100*time.Millisecond, func() { lb.cond.Broadcast() })
		lb.cond.Wait()
		w.Stop()
	}
	lb.unqueue(t)
	lb.used += n
	lb.cond.Broadcast()
	return nil
}

// release returns acknowledged bytes to the budget.
func (lb *linkBudget) release(n int64) {
	lb.mu.Lock()
	lb.used -= n
	if lb.used < 0 {
		lb.used = 0
	}
	lb.cond.Broadcast()
	lb.mu.Unlock()
}

func (lb *linkBudget) unqueue(t uint64) {
	for i, q := range lb.queue {
		if q == t {
			lb.queue = append(lb.queue[:i], lb.queue[i+1:]...)
			return
		}
	}
}

// linkBudgetFor returns (lazily creating) the budget of one child link.
func (mm *MM) linkBudgetFor(c *conn) *linkBudget {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	lb := mm.budgets[c]
	if lb == nil {
		lb = newLinkBudget(mm.cfg.LinkBudgetBytes)
		mm.budgets[c] = lb
	}
	return lb
}

// heldChunk is one chunk's worth of link budget a job holds while the
// chunk is unacknowledged by one child subtree. index is stripe-local,
// matching the cumulative acks that release it.
type heldChunk struct {
	index int
	n     int64
	lb    *linkBudget
}

// heldKey names one (stripe, direct child) ledger of held budget — the
// same node can be a direct child of several stripe trees at once, each
// with its own cumulative ack.
type heldKey struct {
	stripe int
	node   int
}

// holdChunk records budget acquired for the stripe-local chunk index on
// the link to a child node of one stripe's tree.
func (j *liveJob) holdChunk(stripe, node, index int, n int64, lb *linkBudget) {
	j.mu.Lock()
	if j.held == nil {
		j.held = make(map[heldKey][]heldChunk)
	}
	k := heldKey{stripe: stripe, node: node}
	j.held[k] = append(j.held[k], heldChunk{index: index, n: n, lb: lb})
	j.mu.Unlock()
}

// releaseAckedLocked returns the budget of every held chunk the child's
// cumulative stripe-local ack now covers. Caller holds j.mu; budget
// locks nest inside it.
func (j *liveJob) releaseAckedLocked(stripe, node, acked int) {
	k := heldKey{stripe: stripe, node: node}
	chunks := j.held[k]
	kept := chunks[:0]
	for _, h := range chunks {
		if h.index < acked {
			h.lb.release(h.n)
		} else {
			kept = append(kept, h)
		}
	}
	if len(kept) == 0 {
		delete(j.held, k)
	} else {
		j.held[k] = kept
	}
}

// releaseAllHeld returns every held byte — the epoch is over (transfer
// done, failed, or replanned; a replan re-acquires for whatever it
// re-streams).
func (j *liveJob) releaseAllHeld() {
	j.mu.Lock()
	for key, chunks := range j.held {
		for _, h := range chunks {
			h.lb.release(h.n)
		}
		delete(j.held, key)
	}
	j.mu.Unlock()
}

// JobInfo is one row of the MM's job table snapshot.
type JobInfo struct {
	ID         int
	Name       string
	User       string
	Phase      string
	Queued     time.Duration // admission-queue wait so far (or total, once granted)
	Row        int           // gang timeslot row (-1 while queued under gang scheduling)
	WindowUsed int           // chunks currently unacknowledged in the flow-control window
	WindowPeak int
}

// JobTable snapshots every job the MM currently tracks — queued and in
// flight — in ascending job-ID order.
func (mm *MM) JobTable() []JobInfo {
	mm.mu.Lock()
	jobs := make([]*liveJob, 0, len(mm.jobs)+len(mm.admitQ))
	for _, j := range mm.jobs {
		jobs = append(jobs, j)
	}
	jobs = append(jobs, mm.admitQ...)
	mm.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		queued := j.queued
		if j.phase == phaseAdmitted {
			queued = time.Since(j.qStart)
		}
		info := JobInfo{
			ID:         j.id,
			Name:       j.spec.Name,
			User:       j.spec.User,
			Phase:      j.phase.String(),
			Queued:     queued,
			Row:        j.row,
			WindowUsed: j.windowUsedLocked(),
			WindowPeak: j.winPeak,
		}
		j.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// windowUsedLocked is the job's current unacknowledged chunk count,
// summed over its stripes: per stripe, how far the stream head is past
// the slowest subtree's cumulative (stripe-local) ack. Caller holds
// j.mu.
func (j *liveJob) windowUsedLocked() int {
	used := 0
	for _, ss := range j.stripes {
		if ss.streamAt == 0 {
			continue
		}
		min := ss.streamAt
		for _, link := range ss.children {
			if got := ss.acked[link.node]; got < min {
				min = got
			}
		}
		if ss.streamAt > min {
			used += ss.streamAt - min
		}
	}
	return used
}
