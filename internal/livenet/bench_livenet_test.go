package livenet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// BenchmarkLiveLaunch is the live-mode launch-scaling benchmark: send
// time and MM egress vs node count at fixed binary size, for the flat
// fan-out (fanout=1) and for forwarding trees of fanout 2 and 4. It is
// the live analogue of the paper's Fig. 2 node-scalability curve: with
// the tree, send time should stay ~flat in node count while the flat
// fan-out grows linearly.
//
// After all sub-benchmarks it writes BENCH_livenet.json (send-time vs
// node-count series per fanout) to the repository root, mirroring the
// stormsim -json bench summaries.
//
//	go test -run '^$' -bench BenchmarkLiveLaunch -benchtime=1x ./internal/livenet/
func BenchmarkLiveLaunch(b *testing.B) {
	// 512 KB fragments: big enough that per-fragment relay overhead
	// (header parse, ack aggregation, scheduler wakeups per hop) is
	// amortized, the regime the bulk path is designed for.
	const (
		binaryBytes = 2 << 20
		fragBytes   = 512 << 10
	)
	type point struct {
		Fanout        int     `json:"fanout"`
		Nodes         int     `json:"nodes"`
		TreeDepth     int     `json:"tree_depth"`
		SendMS        float64 `json:"send_ms"`
		TotalMS       float64 `json:"total_ms"`
		MMEgressBytes int64   `json:"mm_egress_bytes"`
		// Degraded-tree variant: one node is pre-failed (asymmetrically
		// partitioned before the job starts), so every launch pays one
		// diagnose + replan round. RecoveryMS is the time spent in
		// failure diagnosis and tree rewiring, part of SendMS.
		Degraded   bool    `json:"degraded,omitempty"`
		Replans    int     `json:"replans,omitempty"`
		RecoveryMS float64 `json:"recovery_ms,omitempty"`
	}
	// The sub-benchmark body runs more than once (a b.N=1 sizing pass,
	// then the measured pass), so points are keyed and the fastest
	// launch wins; keys preserves sweep order for the JSON.
	points := map[string]point{}
	var keys []string
	for _, fanout := range []int{1, 2, 4} {
		for _, nodes := range []int{2, 4, 8, 16} {
			name := fmt.Sprintf("fanout=%d/nodes=%d", fanout, nodes)
			b.Run(name, func(b *testing.B) {
				mm, _ := startCluster(b, nodes, MMConfig{Fanout: fanout, FragBytes: fragBytes})
				spec := JobSpec{
					Name: "bench", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
					Program: ProgramSpec{Kind: "exit"},
				}
				best := point{Fanout: fanout, Nodes: nodes, TreeDepth: treeDepth(nodes, fanout)}
				b.SetBytes(binaryBytes)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := mm.RunJob(spec)
					if err != nil {
						b.Fatal(err)
					}
					sendMS := float64(rep.Send) / float64(time.Millisecond)
					if best.SendMS == 0 || sendMS < best.SendMS {
						best.SendMS = sendMS
						best.TotalMS = float64(rep.Total) / float64(time.Millisecond)
						best.MMEgressBytes = rep.SendBytes
					}
				}
				b.StopTimer()
				b.ReportMetric(best.SendMS, "send-ms")
				b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
				prev, seen := points[name]
				if !seen {
					keys = append(keys, name)
				}
				if !seen || best.SendMS < prev.SendMS {
					points[name] = best
				}
			})
		}
	}
	// Degraded-tree variant: the highest-numbered node (a tree leaf) is
	// one-way partitioned before submission, so the MM discovers it
	// mid-transfer, excludes it, and completes on the survivors. The
	// recovery latency (diagnose + replan) is reported separately.
	for _, nodes := range []int{4, 8, 16} {
		const fanout = 2
		name := fmt.Sprintf("degraded/fanout=%d/nodes=%d", fanout, nodes)
		b.Run(name, func(b *testing.B) {
			victim := nodes - 1
			mm, _, _ := chaosCluster(b, nodes, MMConfig{
				Fanout: fanout, FragBytes: fragBytes, AckTimeout: 500 * time.Millisecond,
			}, func(node int) NMConfig {
				if node != victim {
					return NMConfig{}
				}
				return NMConfig{WrapConn: func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.BlockReads = true
					return faultconn.Wrap(c, plan)
				}}
			})
			spec := JobSpec{
				Name: "bench-degraded", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			}
			best := point{Fanout: fanout, Nodes: nodes, TreeDepth: treeDepth(nodes, fanout), Degraded: true}
			b.SetBytes(binaryBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := mm.RunJob(spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Failed) != 1 || rep.Failed[0] != victim {
					b.Fatalf("degraded launch did not exclude node %d: %+v", victim, rep)
				}
				sendMS := float64(rep.Send) / float64(time.Millisecond)
				if best.SendMS == 0 || sendMS < best.SendMS {
					best.SendMS = sendMS
					best.TotalMS = float64(rep.Total) / float64(time.Millisecond)
					best.MMEgressBytes = rep.SendBytes
					best.Replans = rep.Replans
					best.RecoveryMS = float64(rep.Recovery) / float64(time.Millisecond)
				}
			}
			b.StopTimer()
			b.ReportMetric(best.SendMS, "send-ms")
			b.ReportMetric(best.RecoveryMS, "recovery-ms")
			prev, seen := points[name]
			if !seen {
				keys = append(keys, name)
			}
			if !seen || best.SendMS < prev.SendMS {
				points[name] = best
			}
		})
	}
	if len(keys) == 0 {
		return
	}
	// Healthy-tree rows and degraded-tree rows are separate series: the
	// degraded sweep answers a different question (recovery overhead, not
	// scaling), and mixing them would skew any reader plotting `series`.
	series := make([]point, 0, len(keys))
	var degraded []point
	for _, k := range keys {
		if p := points[k]; p.Degraded {
			degraded = append(degraded, p)
		} else {
			series = append(series, p)
		}
	}
	mergeBenchSummary(b, map[string]any{
		"id":              "livenet",
		"when":            time.Now().UTC(),
		"binary_bytes":    binaryBytes,
		"frag_bytes":      fragBytes,
		"series":          series,
		"degraded_series": degraded,
	})
}

// BenchmarkStripedLaunch sweeps the striped data plane: the same
// 12 MB/16-node launch carried over k ∈ {1, 2, 4} disjoint spanning
// trees, chunks interleaved round-robin. With one tree, a relay's
// uplink is the serial bottleneck for the whole image; with k trees
// every node is interior in at most one stripe, so the transfer
// engages k relay uplinks at once and cold send time drops toward 1/k
// until the MM's own egress link saturates.
//
// Loopback links are memcpy-fast, so on the bare host the relay
// bottleneck the stripes attack never appears (the transfer is
// CPU-bound and k-independent). The cold series therefore shapes every
// NM link with a per-frame write delay emulating a ~128 MB/s uplink
// (512 KiB / 4 ms), the commodity-network regime of the paper's
// Table 5 — the same faultconn wrapping the degraded series uses. The
// warm row per stripe count runs on a separate cached cluster and pins
// the delta path's invariance: a cached relaunch streams 0 chunks no
// matter how many trees the cold launch used.
//
// Merges a `striped` section into BENCH_livenet.json.
//
//	go test -run '^$' -bench BenchmarkStripedLaunch -benchtime=1x ./internal/livenet/
func BenchmarkStripedLaunch(b *testing.B) {
	const (
		binaryBytes = 12 << 20
		fragBytes   = 512 << 10
		nodes       = 16
		fanout      = 2
		linkDelay   = 4 * time.Millisecond // per-frame: 512 KiB / 4 ms ~ 128 MB/s uplinks
	)
	type point struct {
		Stripes       int     `json:"stripes"`
		Nodes         int     `json:"nodes"`
		ColdSendMS    float64 `json:"cold_send_ms"`
		ColdTotalMS   float64 `json:"cold_total_ms"`
		MMEgressBytes int64   `json:"mm_egress_bytes"`
		WarmSendMS    float64 `json:"warm_send_ms"`
		WarmChunks    int     `json:"warm_chunks_sent"`
	}
	points := map[int]point{}
	sweep := []int{1, 2, 4}
	for _, stripes := range sweep {
		stripes := stripes
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			shape := func(int) NMConfig {
				return NMConfig{WrapConn: func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.WriteDelay = linkDelay
					return faultconn.Wrap(c, plan)
				}}
			}
			// Cold cluster: shaped links, no caches (a cacheless NM keeps
			// the heap flat across iterations, so GC never pollutes the
			// series). Warm cluster: same shaped links plus chunk caches,
			// populated once — it only ever sees the one warm image.
			mm, _, _ := chaosCluster(b, nodes, MMConfig{
				Fanout: fanout, FragBytes: fragBytes, Stripes: stripes,
			}, shape)
			warmMM, _, _ := chaosCluster(b, nodes, MMConfig{
				Fanout: fanout, FragBytes: fragBytes, Stripes: stripes,
			}, func(n int) NMConfig {
				cfg := shape(n)
				cfg.CacheBytes = 32 << 20
				return cfg
			})
			spec := func(seed uint64) JobSpec {
				return JobSpec{
					Name: "striped-bench", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
					ImageSeed: seed, Program: ProgramSpec{Kind: "exit"},
				}
			}
			warmSeed := 0xCAFE_0000 + uint64(stripes)
			if _, err := warmMM.RunJob(spec(warmSeed)); err != nil {
				b.Fatal(err)
			}
			best := point{Stripes: stripes, Nodes: nodes}
			b.SetBytes(binaryBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cold: a distinct seed per iteration, every chunk streams.
				rep, err := mm.RunJob(spec(0x517 + uint64(stripes)<<16 + uint64(i)<<24))
				if err != nil {
					b.Fatal(err)
				}
				if want := binaryBytes / fragBytes; rep.ChunksSent != want {
					b.Fatalf("cold striped launch streamed %d chunks, want %d", rep.ChunksSent, want)
				}
				cold := float64(rep.Send) / float64(time.Millisecond)
				if best.ColdSendMS == 0 || cold < best.ColdSendMS {
					best.ColdSendMS = cold
					best.ColdTotalMS = float64(rep.Total) / float64(time.Millisecond)
					best.MMEgressBytes = rep.SendBytes
				}
				// Warm: relaunch of the cached image must stream 0 chunks
				// at any stripe count.
				warm, err := warmMM.RunJob(spec(warmSeed))
				if err != nil {
					b.Fatal(err)
				}
				if warm.ChunksSent != 0 {
					b.Fatalf("warm relaunch at stripes=%d streamed %d chunks, want 0",
						stripes, warm.ChunksSent)
				}
				best.WarmChunks = warm.ChunksSent
				warmMS := float64(warm.Send) / float64(time.Millisecond)
				if best.WarmSendMS == 0 || warmMS < best.WarmSendMS {
					best.WarmSendMS = warmMS
				}
			}
			b.StopTimer()
			b.ReportMetric(best.ColdSendMS, "cold-send-ms")
			b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
			if prev, seen := points[stripes]; !seen || best.ColdSendMS < prev.ColdSendMS {
				points[stripes] = best
			}
		})
	}
	series := make([]point, 0, len(sweep))
	for _, s := range sweep {
		if pt, ok := points[s]; ok {
			series = append(series, pt)
		}
	}
	if len(series) == 0 {
		return
	}
	fields := map[string]any{
		"binary_bytes":       binaryBytes,
		"frag_bytes":         fragBytes,
		"nodes":              nodes,
		"fanout":             fanout,
		"link_frame_delay":   linkDelay.String(),
		"link_mbps_emulated": float64(fragBytes) / linkDelay.Seconds() / (1 << 20),
		"series":             series,
	}
	if s1, ok := points[1]; ok {
		if s4, ok := points[4]; ok && s4.ColdSendMS > 0 {
			speedup := s1.ColdSendMS / s4.ColdSendMS
			fields["speedup_stripes4"] = speedup
			b.Logf("stripes=4 cold speedup: %.2fx (%.1f ms -> %.1f ms)",
				speedup, s1.ColdSendMS, s4.ColdSendMS)
		}
	}
	mergeBenchSummary(b, map[string]any{"striped": fields})
}

// BenchmarkDeltaLaunch measures the content-addressed delta-transfer
// path: a cold seeded launch (every chunk streams), a warm relaunch of
// the identical image (every chunk is served from NM caches, so the MM
// pays ~control-plane cost), and a one-chunk rebuild (exactly one chunk
// in the need union, at most fanout copies of its payload on the wire).
//
// After the sub-benchmarks it merges a `delta_launch` section into
// BENCH_livenet.json alongside the launch-scaling and control-plane
// series.
//
//	go test -run '^$' -bench BenchmarkDeltaLaunch -benchtime=1x ./internal/livenet/
func BenchmarkDeltaLaunch(b *testing.B) {
	const (
		binaryBytes = 12 << 20
		fragBytes   = 512 << 10
		nodes       = 16
		fanout      = 2
		patchedIdx  = 7
	)
	type result struct {
		SendMS        float64 `json:"send_ms"`
		TotalMS       float64 `json:"total_ms"`
		MMEgressBytes int64   `json:"mm_egress_bytes"`
		ChunksSent    int     `json:"chunks_sent"`
		BytesSaved    int64   `json:"bytes_saved"`
	}
	results := map[string]result{}
	// Each sub-benchmark builds a fresh cluster, so the caches start
	// cold; warm/delta pre-populate them with one unmeasured launch.
	newCluster := func(b *testing.B) *MM {
		mm, _, _ := chaosCluster(b, nodes, MMConfig{Fanout: fanout, FragBytes: fragBytes},
			func(int) NMConfig { return NMConfig{CacheBytes: 64 << 20} })
		return mm
	}
	spec := func(seed uint64, patch map[int]uint64) JobSpec {
		return JobSpec{
			Name: "delta-bench", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
			ImageSeed: seed, ImagePatch: patch,
			Program: ProgramSpec{Kind: "exit"},
		}
	}
	record := func(best *result, rep Report) {
		sendMS := float64(rep.Send) / float64(time.Millisecond)
		if best.SendMS == 0 || sendMS < best.SendMS {
			best.SendMS = sendMS
			best.TotalMS = float64(rep.Total) / float64(time.Millisecond)
			best.MMEgressBytes = rep.SendBytes
			best.ChunksSent = rep.ChunksSent
			best.BytesSaved = rep.BytesSaved
		}
	}
	keep := func(name string, best result) {
		if prev, seen := results[name]; !seen || best.SendMS < prev.SendMS {
			results[name] = best
		}
	}
	b.Run("cold", func(b *testing.B) {
		mm := newCluster(b)
		var best result
		b.SetBytes(binaryBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A distinct seed per iteration keeps every launch cold even
			// though the cluster (and its caches) persists across them.
			rep, err := mm.RunJob(spec(0xC01D_0000+uint64(i), nil))
			if err != nil {
				b.Fatal(err)
			}
			record(&best, rep)
		}
		b.StopTimer()
		b.ReportMetric(best.SendMS, "send-ms")
		b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
		keep("cold", best)
	})
	b.Run("warm", func(b *testing.B) {
		mm := newCluster(b)
		if _, err := mm.RunJob(spec(0xCAFE, nil)); err != nil {
			b.Fatal(err)
		}
		var best result
		b.SetBytes(binaryBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := mm.RunJob(spec(0xCAFE, nil))
			if err != nil {
				b.Fatal(err)
			}
			if rep.ChunksSent != 0 {
				b.Fatalf("warm relaunch streamed %d chunks, want 0", rep.ChunksSent)
			}
			record(&best, rep)
		}
		b.StopTimer()
		b.ReportMetric(best.SendMS, "send-ms")
		b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
		keep("warm", best)
	})
	b.Run("delta-1chunk", func(b *testing.B) {
		mm := newCluster(b)
		if _, err := mm.RunJob(spec(0xCAFE, nil)); err != nil {
			b.Fatal(err)
		}
		var best result
		b.SetBytes(binaryBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh patch value each iteration keeps exactly one chunk
			// cold relative to the caches.
			rep, err := mm.RunJob(spec(0xCAFE, map[int]uint64{patchedIdx: 0x1000 + uint64(i)}))
			if err != nil {
				b.Fatal(err)
			}
			if rep.ChunksSent != 1 {
				b.Fatalf("1-chunk delta streamed %d chunks, want 1", rep.ChunksSent)
			}
			if limit := int64(fanout*fragBytes + 64<<10); rep.SendBytes > limit {
				b.Fatalf("1-chunk delta cost %d egress bytes, want <=%d", rep.SendBytes, limit)
			}
			record(&best, rep)
		}
		b.StopTimer()
		b.ReportMetric(best.SendMS, "send-ms")
		b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
		keep("delta-1chunk", best)
	})
	cold, warm := results["cold"], results["warm"]
	if cold.SendMS == 0 || warm.SendMS == 0 {
		return
	}
	speedup := cold.SendMS / warm.SendMS
	b.Logf("warm relaunch speedup: %.1fx (cold %.2f ms -> warm %.2f ms)",
		speedup, cold.SendMS, warm.SendMS)
	mergeBenchSummary(b, map[string]any{
		"delta_launch": map[string]any{
			"binary_bytes": binaryBytes,
			"frag_bytes":   fragBytes,
			"nodes":        nodes,
			"fanout":       fanout,
			"chunks":       binaryBytes / fragBytes,
			"cold":         cold,
			"warm":         warm,
			"delta_1chunk": results["delta-1chunk"],
			"warm_speedup": speedup,
		},
	})
}

// mergeBenchSummary updates the given top-level keys of
// BENCH_livenet.json in place, preserving sections written by other
// benchmarks (launch scaling and the control plane share the file).
func mergeBenchSummary(b *testing.B, fields map[string]any) {
	b.Helper()
	out := filepath.Join(repoRoot(), "BENCH_livenet.json")
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		// A malformed existing file is simply rebuilt from this run.
		json.Unmarshal(data, &doc)
	}
	for k, v := range fields {
		raw, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		doc[k] = raw
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("bench summary: %v", err)
	}
	b.Logf("wrote %s", out)
}

// BenchmarkControlPlane measures the lightning-fast control plane as
// the cluster grows: heartbeat ping→full-ledger RTT, strobe propagation
// latency, and the MM's per-period control egress in frames and bytes.
// The egress series is the O(fanout) evidence — frames per period stays
// at ~Fanout (plus the strobe multicasts) while node count scales —
// and strobe latency should track tree depth, not node count.
//
//	go test -run '^$' -bench BenchmarkControlPlane -benchtime=1x ./internal/livenet/
func BenchmarkControlPlane(b *testing.B) {
	const (
		period  = 20 * time.Millisecond
		quantum = 10 * time.Millisecond
		fanout  = 2
		window  = 25 // heartbeat periods per measured sample
	)
	type point struct {
		Nodes              int     `json:"nodes"`
		TreeDepth          int     `json:"tree_depth"`
		HeartbeatRTTUS     float64 `json:"heartbeat_rtt_us"`
		HeartbeatRTTMaxUS  float64 `json:"heartbeat_rtt_max_us"`
		StrobeLatencyUS    float64 `json:"strobe_latency_us"`
		StrobeLatencyMaxUS float64 `json:"strobe_latency_max_us"`
		CtlFramesPerPeriod float64 `json:"mm_ctl_frames_per_period"`
		CtlBytesPerPeriod  float64 `json:"mm_ctl_bytes_per_period"`
	}
	points := map[string]point{}
	var keys []string
	for _, nodes := range []int{2, 4, 8, 16, 32} {
		name := fmt.Sprintf("nodes=%d", nodes)
		b.Run(name, func(b *testing.B) {
			mm, _ := startCluster(b, nodes, MMConfig{Fanout: fanout, GangQuantum: quantum, MPL: 2})
			stop := mm.StartHeartbeat(period, nil)
			defer stop()
			// A long sleep job keeps a gang row busy so strobes flow, and
			// its transfer is over before sampling starts, so the egress
			// window sees pure control traffic.
			jobDone := make(chan error, 1)
			go func() {
				_, err := mm.RunJob(JobSpec{
					Name: "ctl-bench", BinaryBytes: 64 << 10, Nodes: nodes, PEsPerNode: 1,
					Program: ProgramSpec{Kind: "sleep",
						Duration: time.Duration(b.N)*(window+10)*period + time.Second},
				})
				jobDone <- err
			}()
			deadline := time.Now().Add(10 * time.Second)
			for mm.Strobes() < 2 {
				if time.Now().After(deadline) {
					b.Fatal("strobes never started")
				}
				time.Sleep(period)
			}
			time.Sleep(4 * period) // ledgers warm under the final epoch
			best := point{Nodes: nodes, TreeDepth: treeDepth(nodes, fanout)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hbMean0, _, hbN0 := mm.HeartbeatRTT()
				stMean0, _, stN0 := mm.StrobeLatency()
				f0, by0 := mm.ControlEgress()
				t0 := time.Now()
				time.Sleep(window * period)
				elapsed := time.Since(t0)
				hbMean1, hbMax, hbN1 := mm.HeartbeatRTT()
				stMean1, stMax, stN1 := mm.StrobeLatency()
				f1, by1 := mm.ControlEgress()
				periods := float64(elapsed) / float64(period)
				p := point{
					Nodes:              nodes,
					TreeDepth:          treeDepth(nodes, fanout),
					HeartbeatRTTUS:     windowedMeanUS(hbMean0, hbN0, hbMean1, hbN1),
					HeartbeatRTTMaxUS:  float64(hbMax) / float64(time.Microsecond),
					StrobeLatencyUS:    windowedMeanUS(stMean0, stN0, stMean1, stN1),
					StrobeLatencyMaxUS: float64(stMax) / float64(time.Microsecond),
					CtlFramesPerPeriod: float64(f1-f0) / periods,
					CtlBytesPerPeriod:  float64(by1-by0) / periods,
				}
				if hbN1 == hbN0 {
					b.Fatal("no heartbeat rounds completed in the window")
				}
				if stN1 == stN0 {
					b.Fatal("no strobe rounds completed in the window")
				}
				if best.HeartbeatRTTUS == 0 || p.HeartbeatRTTUS < best.HeartbeatRTTUS {
					best = p
				}
			}
			b.StopTimer()
			stop()
			if err := <-jobDone; err != nil {
				b.Fatalf("background gang job: %v", err)
			}
			b.ReportMetric(best.HeartbeatRTTUS, "hb-rtt-us")
			b.ReportMetric(best.StrobeLatencyUS, "strobe-us")
			b.ReportMetric(best.CtlFramesPerPeriod, "ctl-frames/period")
			prev, seen := points[name]
			if !seen {
				keys = append(keys, name)
			}
			if !seen || best.HeartbeatRTTUS < prev.HeartbeatRTTUS {
				points[name] = best
			}
		})
	}
	if len(keys) == 0 {
		return
	}
	series := make([]point, 0, len(keys))
	for _, k := range keys {
		series = append(series, points[k])
	}
	mergeBenchSummary(b, map[string]any{
		"control_plane": map[string]any{
			"fanout":           fanout,
			"heartbeat_period": period.String(),
			"gang_quantum":     quantum.String(),
			"series":           series,
		},
	})
}

// BenchmarkReintegration measures the heal-back-to-full-strength path:
// the time from killing an NM to the detector convicting it
// (detect_ms), and from the kill to the restarted NM being
// placement-eligible again after its rejoin probation (reintegrate_ms).
// The floor is heartbeat_period * (conviction streak + probation
// periods); anything far above that is protocol overhead.
//
// After the run it merges a `recovery` section into BENCH_livenet.json.
//
//	go test -run '^$' -bench BenchmarkReintegration -benchtime=1x ./internal/livenet/
func BenchmarkReintegration(b *testing.B) {
	const (
		nodes     = 8
		fanout    = 2
		period    = 50 * time.Millisecond
		probation = 2
	)
	type result struct {
		HeartbeatPeriodMS float64 `json:"heartbeat_period_ms"`
		ProbationPeriods  int     `json:"probation_periods"`
		DetectMS          float64 `json:"detect_ms"`
		ReintegrateMS     float64 `json:"reintegrate_ms"`
	}
	var best result
	for i := 0; i < b.N; i++ {
		// A fresh cluster per iteration: the victim NM is consumed by the
		// kill and its node ID re-registered by the rejoin.
		mm, nms, _ := chaosCluster(b, nodes, MMConfig{
			Fanout: fanout, RejoinProbation: probation,
		}, func(int) NMConfig { return NMConfig{} })
		victim := nodes - 1
		fails := make(chan int, nodes)
		stop := mm.StartHeartbeat(period, func(n int) { fails <- n })
		time.Sleep(4 * period) // let the detector settle on a full ledger

		t0 := time.Now()
		nms[victim].Close()
		var detect time.Duration
		deadline := time.After(30 * period)
	conviction:
		for {
			select {
			case n := <-fails:
				if n == victim {
					detect = time.Since(t0)
					break conviction
				}
			case <-deadline:
				b.Fatal("detector never convicted the killed NM")
			}
		}

		nm2, err := NewNMConfig(mm.Addr(), victim, 4, NMConfig{Rejoin: true})
		if err != nil {
			b.Fatalf("rejoin: %v", err)
		}
		b.Cleanup(nm2.Close)
		var reintegrate time.Duration
		for wait := time.Now().Add(30 * period); ; {
			if mm.NodeEligible(victim) {
				reintegrate = time.Since(t0)
				break
			}
			if time.Now().After(wait) {
				b.Fatal("rejoined NM never became placement-eligible")
			}
			time.Sleep(period / 10)
		}
		stop()

		r := result{
			HeartbeatPeriodMS: float64(period) / float64(time.Millisecond),
			ProbationPeriods:  probation,
			DetectMS:          float64(detect) / float64(time.Millisecond),
			ReintegrateMS:     float64(reintegrate) / float64(time.Millisecond),
		}
		if best.ReintegrateMS == 0 || r.ReintegrateMS < best.ReintegrateMS {
			best = r
		}
	}
	b.StopTimer()
	b.ReportMetric(best.DetectMS, "detect-ms")
	b.ReportMetric(best.ReintegrateMS, "reintegrate-ms")
	mergeBenchSummary(b, map[string]any{"recovery": best})
}

// windowedMeanUS converts two cumulative (mean, count) samples into the
// mean over the window between them, in microseconds.
func windowedMeanUS(m0 time.Duration, n0 int64, m1 time.Duration, n1 int64) float64 {
	if n1 <= n0 {
		return 0
	}
	sum := float64(m1)*float64(n1) - float64(m0)*float64(n0)
	return sum / float64(n1-n0) / float64(time.Microsecond)
}

// repoRoot walks up from the working directory to the directory holding
// go.mod, so the bench summary lands at the repository root no matter
// where `go test` chdirs to. Falls back to the working directory.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
