package livenet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// BenchmarkLiveLaunch is the live-mode launch-scaling benchmark: send
// time and MM egress vs node count at fixed binary size, for the flat
// fan-out (fanout=1) and for forwarding trees of fanout 2 and 4. It is
// the live analogue of the paper's Fig. 2 node-scalability curve: with
// the tree, send time should stay ~flat in node count while the flat
// fan-out grows linearly.
//
// After all sub-benchmarks it writes BENCH_livenet.json (send-time vs
// node-count series per fanout) to the repository root, mirroring the
// stormsim -json bench summaries.
//
//	go test -run '^$' -bench BenchmarkLiveLaunch -benchtime=1x ./internal/livenet/
func BenchmarkLiveLaunch(b *testing.B) {
	// 512 KB fragments: big enough that per-fragment relay overhead
	// (header parse, ack aggregation, scheduler wakeups per hop) is
	// amortized, the regime the bulk path is designed for.
	const (
		binaryBytes = 2 << 20
		fragBytes   = 512 << 10
	)
	type point struct {
		Fanout        int     `json:"fanout"`
		Nodes         int     `json:"nodes"`
		TreeDepth     int     `json:"tree_depth"`
		SendMS        float64 `json:"send_ms"`
		TotalMS       float64 `json:"total_ms"`
		MMEgressBytes int64   `json:"mm_egress_bytes"`
		// Degraded-tree variant: one node is pre-failed (asymmetrically
		// partitioned before the job starts), so every launch pays one
		// diagnose + replan round. RecoveryMS is the time spent in
		// failure diagnosis and tree rewiring, part of SendMS.
		Degraded   bool    `json:"degraded,omitempty"`
		Replans    int     `json:"replans,omitempty"`
		RecoveryMS float64 `json:"recovery_ms,omitempty"`
	}
	// The sub-benchmark body runs more than once (a b.N=1 sizing pass,
	// then the measured pass), so points are keyed and the fastest
	// launch wins; keys preserves sweep order for the JSON.
	points := map[string]point{}
	var keys []string
	for _, fanout := range []int{1, 2, 4} {
		for _, nodes := range []int{2, 4, 8, 16} {
			name := fmt.Sprintf("fanout=%d/nodes=%d", fanout, nodes)
			b.Run(name, func(b *testing.B) {
				mm, _ := startCluster(b, nodes, MMConfig{Fanout: fanout, FragBytes: fragBytes})
				spec := JobSpec{
					Name: "bench", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
					Program: ProgramSpec{Kind: "exit"},
				}
				best := point{Fanout: fanout, Nodes: nodes, TreeDepth: treeDepth(nodes, fanout)}
				b.SetBytes(binaryBytes)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := mm.RunJob(spec)
					if err != nil {
						b.Fatal(err)
					}
					sendMS := float64(rep.Send) / float64(time.Millisecond)
					if best.SendMS == 0 || sendMS < best.SendMS {
						best.SendMS = sendMS
						best.TotalMS = float64(rep.Total) / float64(time.Millisecond)
						best.MMEgressBytes = rep.SendBytes
					}
				}
				b.StopTimer()
				b.ReportMetric(best.SendMS, "send-ms")
				b.ReportMetric(float64(best.MMEgressBytes), "mm-bytes")
				prev, seen := points[name]
				if !seen {
					keys = append(keys, name)
				}
				if !seen || best.SendMS < prev.SendMS {
					points[name] = best
				}
			})
		}
	}
	// Degraded-tree variant: the highest-numbered node (a tree leaf) is
	// one-way partitioned before submission, so the MM discovers it
	// mid-transfer, excludes it, and completes on the survivors. The
	// recovery latency (diagnose + replan) is reported separately.
	for _, nodes := range []int{4, 8, 16} {
		const fanout = 2
		name := fmt.Sprintf("degraded/fanout=%d/nodes=%d", fanout, nodes)
		b.Run(name, func(b *testing.B) {
			victim := nodes - 1
			mm, _, _ := chaosCluster(b, nodes, MMConfig{
				Fanout: fanout, FragBytes: fragBytes, AckTimeout: 500 * time.Millisecond,
			}, func(node int) NMConfig {
				if node != victim {
					return NMConfig{}
				}
				return NMConfig{WrapConn: func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.BlockReads = true
					return faultconn.Wrap(c, plan)
				}}
			})
			spec := JobSpec{
				Name: "bench-degraded", BinaryBytes: binaryBytes, Nodes: nodes, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			}
			best := point{Fanout: fanout, Nodes: nodes, TreeDepth: treeDepth(nodes, fanout), Degraded: true}
			b.SetBytes(binaryBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := mm.RunJob(spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Failed) != 1 || rep.Failed[0] != victim {
					b.Fatalf("degraded launch did not exclude node %d: %+v", victim, rep)
				}
				sendMS := float64(rep.Send) / float64(time.Millisecond)
				if best.SendMS == 0 || sendMS < best.SendMS {
					best.SendMS = sendMS
					best.TotalMS = float64(rep.Total) / float64(time.Millisecond)
					best.MMEgressBytes = rep.SendBytes
					best.Replans = rep.Replans
					best.RecoveryMS = float64(rep.Recovery) / float64(time.Millisecond)
				}
			}
			b.StopTimer()
			b.ReportMetric(best.SendMS, "send-ms")
			b.ReportMetric(best.RecoveryMS, "recovery-ms")
			prev, seen := points[name]
			if !seen {
				keys = append(keys, name)
			}
			if !seen || best.SendMS < prev.SendMS {
				points[name] = best
			}
		})
	}
	if len(keys) == 0 {
		return
	}
	series := make([]point, 0, len(keys))
	for _, k := range keys {
		series = append(series, points[k])
	}
	summary := struct {
		ID          string    `json:"id"`
		When        time.Time `json:"when"`
		BinaryBytes int       `json:"binary_bytes"`
		FragBytes   int       `json:"frag_bytes"`
		Series      []point   `json:"series"`
	}{ID: "livenet", When: time.Now().UTC(), BinaryBytes: binaryBytes, FragBytes: fragBytes, Series: series}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	out := filepath.Join(repoRoot(), "BENCH_livenet.json")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("bench summary: %v", err)
	}
	b.Logf("wrote %s", out)
}

// repoRoot walks up from the working directory to the directory holding
// go.mod, so the bench summary lands at the repository root no matter
// where `go test` chdirs to. Falls back to the working directory.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
