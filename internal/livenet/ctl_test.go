package livenet

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

// TestControlAllocs pins the hot control plane — heartbeat pings, pong
// ledgers, strobes, strobe acks — at zero allocations per frame on both
// the encode and decode paths. These frames flow every period on every
// link; a single allocation here is a per-period, per-node GC tax.
func TestControlAllocs(t *testing.T) {
	ping := &Ping{Seq: 42, Epoch: 7}
	pong := &Pong{Seq: 42, Node: 3, Epoch: 7, MinSeq: 40, Absent: 0b1010}
	strobe := &Strobe{Seq: 9, Row: 2, Epoch: 7}
	sack := &StrobeAck{Seq: 9, Node: 3, Epoch: 7}

	ec := discardConn()
	if avg := testing.AllocsPerRun(200, func() {
		if ec.sendPing(ping) != nil || ec.sendPong(pong) != nil ||
			ec.sendStrobe(strobe) != nil || ec.sendStrobeAck(sack) != nil {
			t.Fatal("send failed")
		}
	}); avg != 0 {
		t.Fatalf("control encode allocates %.1f/op, want 0", avg)
	}

	// Capture one wire image of the four frames, then decode it
	// repeatedly through a reset reader.
	var buf bytes.Buffer
	cc := &conn{w: bufio.NewWriter(&buf)}
	if cc.sendPing(ping) != nil || cc.sendPong(pong) != nil ||
		cc.sendStrobe(strobe) != nil || cc.sendStrobeAck(sack) != nil {
		t.Fatal("capture failed")
	}
	wire := append([]byte(nil), buf.Bytes()...)
	br := bytes.NewReader(wire)
	dc := &conn{r: bufio.NewReader(br)}
	if avg := testing.AllocsPerRun(200, func() {
		br.Reset(wire)
		dc.r.Reset(br)
		for i := 0; i < 4; i++ {
			m, err := dc.recv()
			if err != nil {
				t.Fatal(err)
			}
			switch i {
			case 0:
				if m.Ping == nil || m.Ping.Seq != 42 || m.Ping.Epoch != 7 {
					t.Fatal("ping mangled")
				}
			case 1:
				if m.Pong == nil || m.Pong.Node != 3 || m.Pong.MinSeq != 40 || m.Pong.Absent != 0b1010 {
					t.Fatal("pong mangled")
				}
			case 2:
				if m.Strobe == nil || m.Strobe.Row != 2 || m.Strobe.Seq != 9 {
					t.Fatal("strobe mangled")
				}
			case 3:
				if m.StrobeAck == nil || m.StrobeAck.Seq != 9 || m.StrobeAck.Node != 3 {
					t.Fatal("strobe ack mangled")
				}
			}
		}
	}); avg != 0 {
		t.Fatalf("control decode allocates %.1f/op, want 0", avg)
	}
}

// TestSubtreePreorder validates the ledger bit-layout convention against
// the independent BFS membership: a subtree's pre-order starts at its
// root, covers exactly the BFS membership, and lays each child's block
// out contiguously at offset 1 + sum of earlier siblings' sizes — the
// shift-compose rule ledgerLocked and the MM evaluator both assume.
func TestSubtreePreorder(t *testing.T) {
	for _, tc := range []struct{ n, fanout int }{{1, 2}, {5, 2}, {7, 2}, {13, 3}, {9, 1}} {
		for pos := 0; pos < tc.n; pos++ {
			pre := subtreePreorder(pos, tc.n, tc.fanout)
			if pre[0] != pos {
				t.Fatalf("n=%d f=%d pos=%d: preorder starts at %d", tc.n, tc.fanout, pos, pre[0])
			}
			want := map[int]bool{}
			for _, p := range subtreeNodes(pos, tc.n, tc.fanout) {
				want[p] = true
			}
			if len(pre) != len(want) {
				t.Fatalf("n=%d f=%d pos=%d: preorder has %d nodes, BFS has %d", tc.n, tc.fanout, pos, len(pre), len(want))
			}
			for _, p := range pre {
				if !want[p] {
					t.Fatalf("n=%d f=%d pos=%d: %d in preorder but not in subtree", tc.n, tc.fanout, pos, p)
				}
			}
			off := 1
			for _, ch := range nodeChildren(pos, tc.n, tc.fanout) {
				if pre[off] != ch {
					t.Fatalf("n=%d f=%d pos=%d: child %d not at offset %d (found %d)", tc.n, tc.fanout, pos, ch, off, pre[off])
				}
				off += len(subtreePreorder(ch, tc.n, tc.fanout))
			}
			if off != len(pre) {
				t.Fatalf("n=%d f=%d pos=%d: child blocks cover %d of %d slots", tc.n, tc.fanout, pos, off, len(pre))
			}
		}
	}
}

// TestLedgerAggregation exercises the NM-side fold: fresh children's
// bitmaps shift into place, a silent child's whole subtree is marked
// absent, and the vouched minimum takes the lagging child's value.
func TestLedgerAggregation(t *testing.T) {
	nm := &NM{node: 1}
	ctl := &nmCtl{
		epoch: 3,
		children: []*ctlChild{
			{node: 3, subtree: []int{3, 7}, off: 1},
			{node: 4, subtree: []int{4, 8, 9}, off: 3},
		},
	}

	// Both children fresh for seq 10; child 3 reports its second node
	// (bit 1, node 7) absent.
	ctl.children[0].lastSeq, ctl.children[0].lastMin, ctl.children[0].lastAbsent = 10, 9, 0b10
	ctl.children[1].lastSeq, ctl.children[1].lastMin, ctl.children[1].lastAbsent = 10, 10, 0
	p := nm.ledgerLocked(ctl, 10)
	if p.Seq != 10 || p.Node != 1 || p.Epoch != 3 {
		t.Fatalf("ledger header wrong: %+v", p)
	}
	if p.MinSeq != 9 {
		t.Fatalf("MinSeq = %d, want 9 (lagging child)", p.MinSeq)
	}
	// Child 3's local bit 1 lands at parent bit 1+1=2; nothing else set.
	if p.Absent != 0b100 {
		t.Fatalf("Absent = %#b, want %#b", p.Absent, uint64(0b100))
	}

	// Child 4 goes silent: its whole 3-node block (bits 3..5) is absent.
	ctl.children[1].lastSeq = 10 // stale relative to seq 11
	ctl.children[0].lastSeq, ctl.children[0].lastAbsent = 11, 0
	p = nm.ledgerLocked(ctl, 11)
	if p.Absent != 0b111000 {
		t.Fatalf("silent subtree: Absent = %#b, want %#b", p.Absent, uint64(0b111000))
	}

	// Degenerate width: a 70-node subtree saturates the mask without
	// shifting out of range.
	if subtreeMask(70) != ^uint64(0) {
		t.Fatal("oversized subtree mask must saturate")
	}
	if subtreeMask(0) != 0 {
		t.Fatal("empty mask must be zero")
	}
}

// TestControlEgressFlatInClusterSize is the O(fanout) acceptance check:
// with the tree heartbeat active and the cluster idle, the MM writes
// Fanout ping frames per period — the same at 4 nodes as at 12. The
// flat design this replaces wrote n frames per period.
func TestControlEgressFlatInClusterSize(t *testing.T) {
	const period = 50 * time.Millisecond
	const window = 12 // periods in the sampling window
	perPeriod := func(n int) float64 {
		mm, _ := startCluster(t, n, MMConfig{Fanout: 2})
		stop := mm.StartHeartbeat(period, nil)
		defer stop()
		time.Sleep(4 * period) // settle: CtlPlans installed, ledgers warm
		f0, _ := mm.ControlEgress()
		time.Sleep(window * period)
		f1, _ := mm.ControlEgress()
		return float64(f1-f0) / window
	}
	small := perPeriod(4)
	big := perPeriod(12)
	// Steady state is exactly Fanout=2 frames per period; allow ticker
	// phase and a stray isolation probe on a loaded machine. The bound
	// must hold independent of n — at 12 nodes the flat detector would
	// measure ~12.
	const limit = 4.5
	if small > limit {
		t.Errorf("4-node MM control egress %.1f frames/period, want <= %.1f", small, limit)
	}
	if big > limit {
		t.Errorf("12-node MM control egress %.1f frames/period, want <= %.1f (flat would be ~12)", big, limit)
	}
}

// TestHeartbeatEmptyCluster is the stormd startup order: heartbeat (and
// strobe loop) started before any NM registers. The detector must tick
// harmlessly on the empty tree — syncCtl's unchanged fast path never
// rebuilds the control maps, so they have to exist from construction —
// and pick the nodes up once they arrive.
func TestHeartbeatEmptyCluster(t *testing.T) {
	const period = 20 * time.Millisecond
	mm, err := NewMM("127.0.0.1:0", MMConfig{Fanout: 2, GangQuantum: period / 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	stop := mm.StartHeartbeat(period, nil)
	defer stop()
	time.Sleep(4 * period) // ticks with zero members must not panic
	for i := 0; i < 3; i++ {
		nm, err := NewNM(mm.Addr(), i, 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nm.Close)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, n := mm.HeartbeatRTT()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat round completed after late registration")
		}
		time.Sleep(period)
	}
}
