package livenet

// CRC-32 is a linear function over GF(2): the checksum of a
// concatenation A||B can be computed from crc(A), crc(B), and len(B)
// alone, without touching the bytes, by advancing crc(A) through len(B)
// zero bytes (a GF(2) matrix power) and xoring in crc(B). That lets a
// memory-mode NM verify a spliced image's whole-image digest from the
// per-chunk CRCs it already verified individually — O(chunks · log
// chunk-size) instead of an O(image-bytes) read-back pass. This is the
// classic zlib crc32_combine construction for the IEEE polynomial.

// ieeeReversedPoly is the reversed (LSB-first) form of the IEEE CRC-32
// polynomial, matching hash/crc32's IEEE table.
const ieeeReversedPoly = 0xedb88320

// gf2MatrixTimes multiplies a 32x32 GF(2) matrix by a vector.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare squares a 32x32 GF(2) matrix into dst.
func gf2MatrixSquare(dst, mat *[32]uint32) {
	for n := range dst {
		dst[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// crc32Combine returns crc32.ChecksumIEEE(A||B) given crc1 =
// ChecksumIEEE(A), crc2 = ChecksumIEEE(B), and len2 = len(B).
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32
	// odd = the operator that advances a CRC by one zero bit.
	odd[0] = ieeeReversedPoly
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	// Each squaring doubles how many zero bits the operator advances.
	// Two squarings turn the 1-bit operator into the 4-bit one; the
	// loop below squares on, applying the current operator for each set
	// bit of len2 (len2 counts bytes, so the loop starts at 8 bits).
	gf2MatrixSquare(&even, &odd) // 2 zero bits
	gf2MatrixSquare(&odd, &even) // 4 zero bits
	for {
		gf2MatrixSquare(&even, &odd) // 8, 32, 128, ... zero bits
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even) // 16, 64, 256, ... zero bits
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}
