package livenet

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// mtCluster boots an MM (with the given config) and n NMs sequentially,
// waiting for each registration before creating the next — so the MM's
// accept order is deterministic: accepted conn k belongs to NM k.
func mtCluster(t *testing.T, n int, cfg MMConfig) (*MM, []*NM) {
	t.Helper()
	mm, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close() })
	var nms []*NM
	for i := 0; i < n; i++ {
		nm, err := NewNMConfig(mm.Addr(), i, 4, NMConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nm.Close() })
		nms = append(nms, nm)
		deadline := time.Now().Add(5 * time.Second)
		for len(mm.NMs()) < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("NM %d never registered", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return mm, nms
}

// TestLaunchFailurePartialAbort is the regression for the launch-phase
// cleanup bug: when the Launch write to a later node fails, the nodes
// that already received their Launch must be aborted — their processes
// reaped promptly — and the error must name the failing node. The
// injected fault hard-closes NM 1's conn immediately before its second
// outgoing gob frame (G#0 is the Plan, G#1 is the Launch), so node 0
// has always launched by the time node 1's Launch write fails.
func TestLaunchFailurePartialAbort(t *testing.T) {
	cfg := MMConfig{Fanout: 2, FragBytes: 32 << 10, AckTimeout: 700 * time.Millisecond}
	var accepts atomic.Int32
	cfg.WrapConn = func(c net.Conn) net.Conn {
		if accepts.Add(1)-1 != 1 { // accept #1 = NM 1, launched last
			return c
		}
		plan := faultconn.NewPlan()
		plan.FailWriteGob = 1
		return faultconn.Wrap(c, plan)
	}
	mm, nms := mtCluster(t, 2, cfg)

	start := time.Now()
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "partial", BinaryBytes: 256 << 10, Nodes: 2, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "sleep", Duration: 10 * time.Second},
	})
	if err == nil {
		t.Fatal("launch reported success despite injected Launch write failure")
	}
	if !strings.Contains(err.Error(), "launch to node 1") {
		t.Fatalf("error does not name the failing node: %v", err)
	}
	// Node 0 forked its processes before node 1's Launch failed; the
	// abort must cancel its gate and the 10 s sleepers must exit early.
	deadline := time.Now().Add(5 * time.Second)
	for nms[0].activeGates() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 still holds %d gates: partial launch never aborted", nms[0].activeGates())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v, processes were not cut short", elapsed)
	}
}

// TestGangRowExclusiveQueueing: with MPL=2 gang rows and three
// concurrent jobs, no two in-flight jobs may ever share a row, and the
// third job must queue (not fail) until a row frees. The job table is
// sampled throughout to catch any overlap.
func TestGangRowExclusiveQueueing(t *testing.T) {
	cfg := MMConfig{GangQuantum: 10 * time.Millisecond, MPL: 2}
	mm, _ := mtCluster(t, 2, cfg)

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	var overlap atomic.Value
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			rows := make(map[int]int)
			for _, info := range mm.JobTable() {
				switch info.Phase {
				case "admitted", "done", "failed":
					continue
				}
				if other, dup := rows[info.Row]; dup {
					overlap.Store([2]int{other, info.ID})
					return
				}
				rows[info.Row] = info.ID
			}
		}
	}()

	const jobs = 3
	reports := make([]Report, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = SubmitJob(mm.Addr(), JobSpec{
				Name: "gang", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "sleep", Duration: 150 * time.Millisecond},
			})
		}(i)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if pair, ok := overlap.Load().([2]int); ok {
		t.Fatalf("jobs %d and %d shared a gang row while in flight", pair[0], pair[1])
	}
	queued := 0
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d failed under row exhaustion, want queued admission: %v", i, errs[i])
		}
		if reports[i].Row < 0 || reports[i].Row >= cfg.MPL {
			t.Fatalf("job %d ran on row %d, outside MPL %d", i, reports[i].Row, cfg.MPL)
		}
		if reports[i].Queued > 50*time.Millisecond {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("no job reports a queue wait: the third job should have waited for a free row")
	}
}

// TestAdmissionPolicies checks the pluggable admission policies' pick
// ordering directly (pick is a pure function of the queue).
func TestAdmissionPolicies(t *testing.T) {
	if _, err := newAdmissionPolicy("bogus"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	mkJob := func(id int, user string, weight, bytes int) *liveJob {
		return &liveJob{id: id, spec: JobSpec{User: user, Weight: weight, BinaryBytes: bytes}}
	}

	t.Run("fifo", func(t *testing.T) {
		p, _ := newAdmissionPolicy("")
		if p.name() != "fifo" {
			t.Fatalf("default policy is %q, want fifo", p.name())
		}
		q := []*liveJob{mkJob(3, "a", 1, 500), mkJob(4, "b", 1, 100)}
		if got := p.pick(q); got.id != 3 {
			t.Fatalf("fifo picked job %d, want 3 (head of queue)", got.id)
		}
	})

	t.Run("sif", func(t *testing.T) {
		p, _ := newAdmissionPolicy("sif")
		q := []*liveJob{mkJob(1, "a", 1, 300), mkJob(2, "a", 1, 100), mkJob(3, "a", 1, 200)}
		if got := p.pick(q); got.id != 2 {
			t.Fatalf("sif picked job %d (size %d), want 2 (smallest image)", got.id, got.spec.BinaryBytes)
		}
		// Ties break toward the earlier submission.
		q = []*liveJob{mkJob(5, "a", 1, 100), mkJob(4, "a", 1, 100)}
		if got := p.pick(q); got.id != 4 {
			t.Fatalf("sif tie-break picked job %d, want 4", got.id)
		}
	})

	t.Run("wfair", func(t *testing.T) {
		p, _ := newAdmissionPolicy("wfair")
		a1 := mkJob(1, "alice", 1, 1000)
		a2 := mkJob(2, "alice", 1, 1000)
		b1 := mkJob(3, "bob", 1, 1000)
		// Fresh users tie at virtual time 0; lower id wins.
		if got := p.pick([]*liveJob{a1, b1}); got.id != 1 {
			t.Fatalf("wfair picked job %d, want 1", got.id)
		}
		p.granted(a1)
		// alice has been charged 1000 virtual bytes; bob goes next even
		// though alice has the earlier queued job.
		if got := p.pick([]*liveJob{a2, b1}); got.id != 3 {
			t.Fatalf("wfair picked job %d after charging alice, want 3 (bob)", got.id)
		}
		p.granted(b1)
		// Weight divides the charge: a weight-4 user streams 4x the bytes
		// for the same virtual time.
		c1 := mkJob(4, "carol", 4, 4000)
		p.granted(c1)
		d1 := mkJob(5, "dave", 1, 999)
		c2 := mkJob(6, "carol", 4, 4000)
		if got := p.pick([]*liveJob{c2, d1}); got.id != 5 {
			t.Fatalf("wfair picked job %d, want 5 (dave at vt 0)", got.id)
		}
		p.granted(d1)
		// carol vt=1000, dave vt=999: dave still ahead.
		d2 := mkJob(7, "dave", 1, 999)
		if got := p.pick([]*liveJob{c2, d2}); got.id != 7 {
			t.Fatalf("wfair picked job %d, want 7 (dave vt 999 < carol vt 1000)", got.id)
		}
	})
}

// TestPlacementPinning: JobSpec.Place pins a job's node set verbatim
// (in tree-position order); an unregistered node is an error, not a
// queue wait.
func TestPlacementPinning(t *testing.T) {
	mm, nms := mtCluster(t, 4, MMConfig{Fanout: 2, FragBytes: 32 << 10})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "pinned", BinaryBytes: 128 << 10, Nodes: 3, PEsPerNode: 1,
		Place:   []int{2, 0, 3},
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 0, 3} {
		if _, ok := nms[id].ImageDigest(rep.JobID); !ok {
			t.Fatalf("pinned node %d holds no image for job %d", id, rep.JobID)
		}
	}
	if _, ok := nms[1].ImageDigest(rep.JobID); ok {
		t.Fatalf("node 1 was not placed but holds the job %d image", rep.JobID)
	}
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "bad-pin", BinaryBytes: 1 << 10, Nodes: 2, PEsPerNode: 1,
		Place:   []int{0, 9},
		Program: ProgramSpec{Kind: "exit"},
	}); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("pinning an unregistered node: got %v, want 'not registered'", err)
	}
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "short-pin", BinaryBytes: 1 << 10, Nodes: 3, PEsPerNode: 1,
		Place:   []int{0, 1},
		Program: ProgramSpec{Kind: "exit"},
	}); err == nil {
		t.Fatal("Place shorter than Nodes accepted")
	}
}

// TestConcurrentStreamsSharedLinks: many jobs streaming at once through
// the same NMs and cached relay links must all complete with correct,
// distinct images — the NM-side demultiplexing by job id and the shared
// link budget must not mix streams or deadlock.
func TestConcurrentStreamsSharedLinks(t *testing.T) {
	mm, nms := mtCluster(t, 7, MMConfig{Fanout: 2, FragBytes: 16 << 10, MaxConcurrent: 8})
	const jobs = 6
	var wg sync.WaitGroup
	reports := make([]Report, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = SubmitJob(mm.Addr(), JobSpec{
				Name: "tenant", BinaryBytes: (256 + 64*i) << 10, Nodes: 7, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent job %d failed: %v", i, errs[i])
		}
		// Every node must hold the complete, identical image for this job.
		var ref ImageDigest
		for n, nm := range nms {
			d, ok := nm.ImageDigest(reports[i].JobID)
			if !ok {
				t.Fatalf("node %d holds no image for job %d", n, reports[i].JobID)
			}
			if n == 0 {
				ref = d
			} else if d != ref {
				t.Fatalf("node %d image for job %d differs: %+v vs %+v", n, reports[i].JobID, d, ref)
			}
		}
	}
}
