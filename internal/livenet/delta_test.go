package livenet

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/chunkcache"
	"repro/internal/livenet/faultconn"
)

// deltaMMConfig mirrors chaosMMConfig: 1 MiB image in 32 chunks of
// 32 KiB, binary tree.
func deltaMMConfig() MMConfig {
	return MMConfig{
		Fanout:     2,
		FragBytes:  32 << 10,
		AckTimeout: 2 * time.Second,
	}
}

// deltaSpec is a seeded (content-addressed) job over the shared chaos
// image size, so chunk content — and therefore the caches — carry across
// job IDs.
func deltaSpec(n int, seed uint64, patch map[int]uint64) JobSpec {
	return JobSpec{
		Name: "delta", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		ImageSeed: seed, ImagePatch: patch,
		Program: ProgramSpec{Kind: "exit"},
	}
}

// deltaChunk regenerates chunk i of a seeded spec and returns its cache
// key triple, for tests that must poison or probe specific entries.
func deltaChunk(spec *JobSpec, frag, i int) (data []byte, hash uint64, crc uint32) {
	data = make([]byte, chunkSizeFor(spec, frag, i))
	fillChunkInto(spec, 0, i, data) // job ID is ignored for seeded content
	return data, chunkcache.Hash64(data), fragCRC(data)
}

// TestManifestCodecRoundTrip pins the wire layout of the three delta
// frames through a full encode/decode cycle.
func TestManifestCodecRoundTrip(t *testing.T) {
	man := &Manifest{Job: 7, Epoch: 2, ChunkBytes: 32 << 10, ImageCRC: 0xdeadbeef,
		TotalBytes: 99_001, Hashes: []uint64{1, 1 << 63, 42}, CRCs: []uint32{9, 8, 7}}
	have := &Have{Job: 7, Node: 5, Epoch: 2, Bits: []uint64{0b101, 1 << 40}}
	needm := &NeedMask{Job: 7, Epoch: 2, Bits: []uint64{^uint64(0)}}

	var buf bytes.Buffer
	cc := &conn{w: bufio.NewWriter(&buf)}
	if cc.send(Message{Manifest: man}) != nil || cc.send(Message{Have: have}) != nil ||
		cc.send(Message{NeedMask: needm}) != nil {
		t.Fatal("encode failed")
	}
	dc := &conn{r: bufio.NewReader(&buf)}
	m1, err := dc.recv()
	if err != nil || m1.Manifest == nil {
		t.Fatalf("manifest decode: %v", err)
	}
	got := m1.Manifest
	if got.Job != 7 || got.Epoch != 2 || got.ChunkBytes != 32<<10 ||
		got.ImageCRC != 0xdeadbeef || got.TotalBytes != 99_001 ||
		len(got.Hashes) != 3 || got.Hashes[1] != 1<<63 || got.CRCs[2] != 7 {
		t.Fatalf("manifest mangled: %+v", got)
	}
	m2, err := dc.recv()
	if err != nil || m2.Have == nil || m2.Have.Node != 5 || len(m2.Have.Bits) != 2 ||
		m2.Have.Bits[0] != 0b101 || m2.Have.Bits[1] != 1<<40 {
		t.Fatalf("have mangled: %+v (%v)", m2.Have, err)
	}
	m3, err := dc.recv()
	if err != nil || m3.NeedMask == nil || len(m3.NeedMask.Bits) != 1 ||
		m3.NeedMask.Bits[0] != ^uint64(0) {
		t.Fatalf("need mask mangled: %+v (%v)", m3.NeedMask, err)
	}
}

// TestManifestAllocs pins the manifest/HAVE/need-mask codecs at zero
// steady-state allocations per frame in both directions: the shared
// tail pool's grown-once scratch must absorb the variable-length
// tails.
func TestManifestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts at random; the pooled tail scratch cannot hold alloc exactness (enforced by the non-race CI step)")
	}
	man := &Manifest{Job: 7, Epoch: 2, ChunkBytes: 32 << 10, ImageCRC: 1,
		TotalBytes: 1 << 20, Hashes: make([]uint64, 32), CRCs: make([]uint32, 32)}
	have := &Have{Job: 7, Node: 5, Epoch: 2, Bits: []uint64{0b101}}
	needm := &NeedMask{Job: 7, Epoch: 2, Bits: []uint64{42}}

	ec := discardConn()
	encode := func() {
		if ec.sendManifest(man) != nil || ec.sendHave(have) != nil || ec.sendNeedMask(needm) != nil {
			t.Fatal("send failed")
		}
	}
	encode() // grow the tail scratch once
	if avg := testing.AllocsPerRun(200, encode); avg != 0 {
		t.Fatalf("delta encode allocates %.2f/op, want 0", avg)
	}

	var buf bytes.Buffer
	cc := &conn{w: bufio.NewWriter(&buf)}
	if cc.sendManifest(man) != nil || cc.sendHave(have) != nil || cc.sendNeedMask(needm) != nil {
		t.Fatal("capture failed")
	}
	wire := append([]byte(nil), buf.Bytes()...)
	br := bytes.NewReader(wire)
	dc := &conn{r: bufio.NewReader(br)}
	decode := func() {
		br.Reset(wire)
		dc.r.Reset(br)
		for i := 0; i < 3; i++ {
			m, err := dc.recv()
			if err != nil {
				t.Fatal(err)
			}
			switch i {
			case 0:
				if m.Manifest == nil || len(m.Manifest.Hashes) != 32 || m.Manifest.TotalBytes != 1<<20 {
					t.Fatal("manifest mangled")
				}
			case 1:
				if m.Have == nil || m.Have.Bits[0] != 0b101 {
					t.Fatal("have mangled")
				}
			case 2:
				if m.NeedMask == nil || m.NeedMask.Bits[0] != 42 {
					t.Fatal("need mask mangled")
				}
			}
		}
	}
	decode() // grow the decode scratch once
	if avg := testing.AllocsPerRun(200, decode); avg != 0 {
		t.Fatalf("delta decode allocates %.2f/op, want 0", avg)
	}
}

// TestDeltaWarmAndPatchedRelaunch is the tentpole's unit-level
// acceptance: a cold seeded launch populates every NM's chunk cache; an
// unchanged relaunch streams zero chunks (the whole image is served from
// caches, at near-control-plane egress); a one-chunk rebuild streams
// exactly that chunk, costing at most fanout copies of its payload.
func TestDeltaWarmAndPatchedRelaunch(t *testing.T) {
	const n = 8
	cfg := deltaMMConfig()
	frags := chaosBinary / cfg.FragBytes
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		return NMConfig{CacheBytes: 8 << 20}
	})

	// Cold: everything streams, nothing saved.
	repA, err := SubmitJob(mm.Addr(), deltaSpec(n, 0xfeed, nil))
	if err != nil {
		t.Fatal(err)
	}
	if repA.Chunks != frags || repA.ChunksSent != frags || repA.BytesSaved != 0 {
		t.Fatalf("cold launch: chunks=%d sent=%d saved=%d, want %d/%d/0",
			repA.Chunks, repA.ChunksSent, repA.BytesSaved, frags, frags)
	}
	refDigest, ok := nms[0].ImageDigest(repA.JobID)
	if !ok {
		t.Fatal("node 0 has no image for the cold job")
	}

	// Warm: identical image, zero chunks on the wire. Both MM-direct
	// subtrees are served entirely from caches.
	repB, err := SubmitJob(mm.Addr(), deltaSpec(n, 0xfeed, nil))
	if err != nil {
		t.Fatal(err)
	}
	if repB.ChunksSent != 0 {
		t.Fatalf("warm relaunch streamed %d chunks, want 0", repB.ChunksSent)
	}
	if want := int64(2 * chaosBinary); repB.BytesSaved != want {
		t.Fatalf("warm relaunch saved %d bytes, want %d (2 subtrees x image)", repB.BytesSaved, want)
	}
	if repB.SendBytes > 64<<10 {
		t.Fatalf("warm relaunch cost %d egress bytes, want control-plane-sized (<64KiB)", repB.SendBytes)
	}
	for _, nm := range nms {
		d, ok := nm.ImageDigest(repB.JobID)
		if !ok || d != refDigest {
			t.Fatalf("node %d warm image digest %+v (ok=%v), want %+v", nm.Node(), d, ok, refDigest)
		}
	}

	// One-chunk rebuild: exactly one chunk in the union, at most two
	// chunk payloads (one per MM subtree) plus control frames on the wire.
	repC, err := SubmitJob(mm.Addr(), deltaSpec(n, 0xfeed, map[int]uint64{5: 0xbeef}))
	if err != nil {
		t.Fatal(err)
	}
	if repC.ChunksSent != 1 {
		t.Fatalf("1-chunk delta streamed %d chunks, want 1", repC.ChunksSent)
	}
	if limit := int64(2*cfg.FragBytes + 64<<10); repC.SendBytes > limit {
		t.Fatalf("1-chunk delta cost %d egress bytes, want <=%d (2 chunk payloads + control)",
			repC.SendBytes, limit)
	}
	var patched ImageDigest
	for i, nm := range nms {
		d, ok := nm.ImageDigest(repC.JobID)
		if !ok {
			t.Fatalf("node %d has no image for the patched job", nm.Node())
		}
		if d == refDigest {
			t.Fatalf("node %d patched image digest equals the unpatched image", nm.Node())
		}
		if i == 0 {
			patched = d
		} else if d != patched {
			t.Fatalf("node %d patched digest %+v differs from node 0's %+v", nm.Node(), d, patched)
		}
	}
	// Cache counters flowed: every NM served the warm launches from cache.
	for _, nm := range nms {
		st, enabled := nm.CacheStats()
		if !enabled || st.Hits == 0 || st.BytesSaved == 0 {
			t.Fatalf("node %d cache stats %+v (enabled=%v), want hits", nm.Node(), st, enabled)
		}
	}
}

// TestDeltaPoisonedCacheFallsBack is the corrupt-cache satellite: a
// disk-backed cache entry is poisoned between launches. The relaunch must
// not advertise the bad chunk (Get re-verifies at splice time), fetch it
// over the wire instead, and commit a byte-identical image — with no
// replan, because corruption in a cache is a miss, not a fault.
func TestDeltaPoisonedCacheFallsBack(t *testing.T) {
	const n = 4
	cfg := deltaMMConfig()
	frags := chaosBinary / cfg.FragBytes
	// Disk-backed caches AND a real spool: the relaunch materializes the
	// image on disk and finalize re-reads every byte, so digest equality
	// below is a true byte-identity check, not bookkeeping.
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		return NMConfig{CacheBytes: 8 << 20, CacheDir: t.TempDir(), SpoolDir: t.TempDir()}
	})

	spec := deltaSpec(n, 0xabcd, nil)
	repA, err := SubmitJob(mm.Addr(), spec)
	if err != nil {
		t.Fatal(err)
	}
	refDigest, _ := nms[0].ImageDigest(repA.JobID)

	// Poison chunk 3 in one NM's on-disk cache.
	const victim, badChunk = 2, 3
	_, hash, crc := deltaChunk(&spec, cfg.FragBytes, badChunk)
	size := chunkSizeFor(&spec, cfg.FragBytes, badChunk)
	if !nms[victim].cache.Poison(hash, crc, size) {
		t.Fatalf("chunk %d not present in node %d's cache", badChunk, victim)
	}

	repB, err := SubmitJob(mm.Addr(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Replans != 0 {
		t.Fatalf("poisoned cache entry caused %d replans, want 0 (it must degrade to a miss)", repB.Replans)
	}
	if repB.ChunksSent != 1 {
		t.Fatalf("relaunch streamed %d chunks, want exactly the poisoned one", repB.ChunksSent)
	}
	for _, nm := range nms {
		d, ok := nm.ImageDigest(repB.JobID)
		if !ok || d != refDigest {
			t.Fatalf("node %d relaunch digest %+v (ok=%v), want byte-identical %+v",
				nm.Node(), d, ok, refDigest)
		}
		if d.Frags != frags {
			t.Fatalf("node %d holds %d chunks, want %d", nm.Node(), d.Frags, frags)
		}
	}
	// The wire fetch repaired the cache: the entry verifies again.
	if !nms[victim].cache.Contains(hash, crc, size) {
		t.Fatalf("node %d cache entry for chunk %d not repopulated from the wire", victim, badChunk)
	}
}

// TestChaosDeltaMidTransferKill kills an interior relay mid-*delta*
// stream (fixed seed matrix, under -race in CI): caches are warmed by a
// cold launch, a patched rebuild streams only the patched chunks, and the
// victim dies partway through. Recovery must re-derive the need masks
// from the survivors' HAVE ledgers — the warm chunks stay off the wire
// across the replan — and the survivors must hold byte-identical images.
func TestChaosDeltaMidTransferKill(t *testing.T) {
	const n = 7
	cfg := chaosMMConfig()
	frags := chaosBinary / cfg.FragBytes
	victim := treePositions(t, n, cfg.Fanout)["interior"]

	// Rebuild the last 24 of 32 chunks, so the delta stream is long
	// enough to contain every seed-chosen kill point.
	patch := make(map[int]uint64)
	for i := frags - 24; i < frags; i++ {
		patch[i] = 0x9999
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("node%d-seed%d", victim, seed), func(t *testing.T) {
			// The victim's parent link persists across jobs, so its frag
			// counter spans both: 32 cold chunks, then 4..19 delta chunks.
			killAt := frags + 4 + faultconn.NewRng(seed).Intn(16)
			var victimNM atomic.Pointer[NM]
			mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
				base := NMConfig{CacheBytes: 8 << 20}
				if node != victim {
					return base
				}
				base.WrapConn = func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.CloseAtReadFrag = killAt
					plan.OnFault = func(string) {
						go func() {
							if nm := victimNM.Load(); nm != nil {
								nm.Close()
							}
						}()
					}
					return faultconn.Wrap(c, plan)
				}
				return base
			})
			victimNM.Store(nms[victim])

			if _, err := SubmitJob(mm.Addr(), deltaSpec(n, 0x5eed, nil)); err != nil {
				t.Fatalf("cold warmup launch failed: %v", err)
			}
			rep, err := SubmitJob(mm.Addr(), deltaSpec(n, 0x5eed, patch))
			if err != nil {
				t.Fatalf("delta launch did not recover from killing node %d at frag %d: %v",
					victim, killAt, err)
			}
			if len(rep.Failed) != 1 || rep.Failed[0] != victim {
				t.Fatalf("report names failed nodes %v, want [%d]", rep.Failed, victim)
			}
			if rep.Replans < 1 {
				t.Fatalf("recovery happened without a replan? %+v", rep)
			}
			// The replan re-derived need from survivor HAVE ledgers: even
			// with a full replay of the patched chunks, the 8 warm chunks
			// never hit the wire again.
			if max := 2 * len(patch); rep.ChunksSent > max {
				t.Fatalf("delta recovery streamed %d chunks, want <=%d (warm chunks must stay cached)",
					rep.ChunksSent, max)
			}
			if rep.BytesSaved == 0 {
				t.Fatal("delta recovery reports zero bytes saved; HAVE ledgers not consulted")
			}
			assertSurvivorImages(t, nms, victim, rep.JobID, frags)
		})
	}
}
