package livenet

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestCRC32Combine checks the GF(2) combine against direct checksums of
// the concatenation, across chunk-boundary shapes (empty parts, 1-byte
// parts, sizes around word boundaries, and many-chunk folds).
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 9000)
	rng.Read(buf)
	splits := []int{0, 1, 3, 7, 8, 9, 255, 256, 4096, len(buf)}
	for _, cut := range splits {
		a, b := buf[:cut], buf[cut:]
		got := crc32Combine(crc32.ChecksumIEEE(a), crc32.ChecksumIEEE(b), int64(len(b)))
		if want := crc32.ChecksumIEEE(buf); got != want {
			t.Fatalf("combine at split %d = %08x, want %08x", cut, got, want)
		}
	}
	// Fold a long chunk list like a manifest finalize does.
	var acc uint32
	for off := 0; off < len(buf); off += 1234 {
		end := off + 1234
		if end > len(buf) {
			end = len(buf)
		}
		part := buf[off:end]
		acc = crc32Combine(acc, crc32.ChecksumIEEE(part), int64(len(part)))
	}
	if want := crc32.ChecksumIEEE(buf); acc != want {
		t.Fatalf("chunk fold = %08x, want %08x", acc, want)
	}
}
