package livenet

// The NM side of the cluster-wide control tree — the lightning-fast
// control plane. Heartbeat pings and gang strobes multicast down the
// same k-ary tree the binary distribution uses, and their answers
// aggregate back up it, so the MM's per-period control egress is
// O(fanout) regardless of cluster size:
//
//   - A Ping relays to this node's control children; their pong ledgers
//     (cumulative per subtree) are folded into one ledger that goes up
//     the conn the ping arrived on. A child that stays silent for a
//     whole period is reported absent — its entire subtree's bits —
//     rather than waited on, so a dead branch surfaces at the MM within
//     one period per level at worst and the MM's streak+probe logic
//     (detector.go) keeps the conviction bound at the flat detector's.
//   - A Strobe is enacted locally first (the context switch must not
//     queue behind the relay fan-out), then relayed; strobe acks
//     aggregate exactly like fragment acks — the minimum over the local
//     apply point and every child subtree's cumulative credit.
//
// Roles are installed by CtlPlan (gob, membership changes only). All
// per-period traffic is typed frames with zero steady-state allocations
// (TestControlAllocs).

// ctlChild is one control-tree child: where to relay, the subtree its
// ledgers vouch for, and the latest state it reported.
type ctlChild struct {
	node    int
	addr    string
	subtree []int // pre-order; subtree[0] == node
	off     int   // bit offset of this child's subtree in the parent's ledger

	lastSeq    int64  // Seq of the child's latest pong ledger
	lastMin    int64  // its MinSeq
	lastAbsent uint64 // its Absent bitmap (child-local bit positions)
	strobeAck  int64  // cumulative strobe credit from this subtree
}

// nmCtl is an NM's installed role in the control tree, replaced
// wholesale on every epoch change.
type nmCtl struct {
	epoch    int
	parent   *conn // conn the latest ctl ping/strobe arrived on; answers go up it
	children []*ctlChild

	collecting int64 // heartbeat seq being aggregated (0 = none pending)

	strobeSeen int64 // latest strobe seq enacted locally
	strobeUp   int64 // cumulative strobe credit already propagated up
}

// subtreeMask returns a bitmap with the first n positions set (all 64
// when the subtree outgrows the ledger width).
func subtreeMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// onCtlPlan installs this node's control-tree role and pre-dials the
// children so the first relayed ping is not taxed with TCP handshakes
// (best effort — the relay path redials on demand).
func (nm *NM) onCtlPlan(p *CtlPlan) {
	kids := make([]*ctlChild, 0, len(p.Children))
	off := 1
	for _, ref := range p.Children {
		kids = append(kids, &ctlChild{node: ref.Node, addr: ref.Addr, subtree: ref.Subtree, off: off})
		off += len(ref.Subtree)
	}
	nm.mu.Lock()
	nm.ctl = &nmCtl{epoch: p.Epoch, children: kids}
	nm.mu.Unlock()
	for _, ch := range kids {
		nm.peerConn(ch.addr)
	}
}

// onCtlPing handles a heartbeat ping: a directed isolation probe
// (Epoch 0) is answered immediately and never relayed; a tree ping is
// relayed to the control children and answered with the aggregated
// subtree ledger — immediately for a leaf, on the last child's pong (or
// the next ping, whichever comes first) for an interior node.
func (nm *NM) onCtlPing(p *Ping, from *conn) {
	if p.Epoch == 0 {
		from.send(Message{Pong: &Pong{Seq: p.Seq, Node: nm.node, MinSeq: p.Seq}})
		return
	}
	seq, epoch := p.Seq, p.Epoch
	nm.mu.Lock()
	ctl := nm.ctl
	if ctl == nil || epoch != ctl.epoch {
		nm.mu.Unlock()
		return // stale topology; the current epoch's plan is in flight
	}
	ctl.parent = from
	// A new ping supersedes the previous collection: flush it with the
	// silent children marked absent rather than waiting on them forever.
	var flush *Pong
	if ctl.collecting != 0 && ctl.collecting < seq {
		flush = nm.ledgerLocked(ctl, ctl.collecting)
		ctl.collecting = 0
	}
	var relay []*ctlChild
	if len(ctl.children) > 0 {
		ctl.collecting = seq
		relay = append(relay, ctl.children...)
	}
	nm.mu.Unlock()
	if flush != nil {
		from.send(Message{Pong: flush})
	}
	if len(relay) == 0 {
		from.send(Message{Pong: &Pong{Seq: seq, Node: nm.node, Epoch: epoch, MinSeq: seq}})
		return
	}
	for _, ch := range relay {
		nm.relayCtl(ch, Message{Ping: &Ping{Seq: seq, Epoch: epoch}})
	}
}

// ledgerLocked builds the aggregated subtree ledger for heartbeat seq s:
// the minimum vouched sequence across the subtree and the absentee
// bitmap, with each fresh child bitmap folded in at its pre-order offset
// and each silent child's whole subtree marked absent. Caller holds
// nm.mu.
func (nm *NM) ledgerLocked(ctl *nmCtl, s int64) *Pong {
	min := s
	var absent uint64
	for _, ch := range ctl.children {
		if ch.lastSeq >= s {
			absent |= ch.lastAbsent << uint(ch.off)
		} else {
			absent |= subtreeMask(len(ch.subtree)) << uint(ch.off)
		}
		if ch.lastMin < min {
			min = ch.lastMin
		}
	}
	return &Pong{Seq: s, Node: nm.node, Epoch: ctl.epoch, MinSeq: min, Absent: absent}
}

// onCtlPong folds a child subtree's ledger into the pending collection
// and sends the completed ledger up once every child has answered.
func (nm *NM) onCtlPong(p *Pong) {
	nm.mu.Lock()
	ctl := nm.ctl
	if ctl == nil || p.Epoch != ctl.epoch {
		nm.mu.Unlock()
		return
	}
	for _, ch := range ctl.children {
		if ch.node == p.Node && p.Seq > ch.lastSeq {
			ch.lastSeq, ch.lastMin, ch.lastAbsent = p.Seq, p.MinSeq, p.Absent
			break
		}
	}
	var out *Pong
	var parent *conn
	if s := ctl.collecting; s != 0 {
		complete := true
		for _, ch := range ctl.children {
			if ch.lastSeq < s {
				complete = false
				break
			}
		}
		if complete {
			out = nm.ledgerLocked(ctl, s)
			ctl.collecting = 0
			parent = ctl.parent
		}
	}
	nm.mu.Unlock()
	if out != nil && parent != nil {
		parent.send(Message{Pong: out})
	}
}

// onCtlStrobe enacts a gang context switch and propagates it: apply
// locally first, relay to the control children, then advance the
// aggregated ack.
func (nm *NM) onCtlStrobe(s *Strobe, from *conn) {
	nm.onStrobe(s.Row)
	seq, epoch, row := s.Seq, s.Epoch, s.Row
	nm.mu.Lock()
	ctl := nm.ctl
	if ctl == nil || epoch != ctl.epoch {
		// The row switch itself is global and was applied; acking or
		// relaying under a stale topology would corrupt the new epoch's
		// cumulative credit, so stop here.
		nm.mu.Unlock()
		return
	}
	ctl.parent = from
	if seq > ctl.strobeSeen {
		ctl.strobeSeen = seq
	}
	relay := append([]*ctlChild(nil), ctl.children...)
	nm.mu.Unlock()
	for _, ch := range relay {
		nm.relayCtl(ch, Message{Strobe: &Strobe{Seq: seq, Row: row, Epoch: epoch}})
	}
	nm.advanceStrobeAck()
}

// onCtlStrobeAck records a child subtree's cumulative strobe credit and
// advances the aggregate.
func (nm *NM) onCtlStrobeAck(a *StrobeAck) {
	nm.mu.Lock()
	ctl := nm.ctl
	if ctl == nil || a.Epoch != ctl.epoch {
		nm.mu.Unlock()
		return
	}
	for _, ch := range ctl.children {
		if ch.node == a.Node && a.Seq > ch.strobeAck {
			ch.strobeAck = a.Seq
			break
		}
	}
	nm.mu.Unlock()
	nm.advanceStrobeAck()
}

// advanceStrobeAck propagates the aggregated strobe credit — the
// minimum over the local apply point and every child subtree — up to
// the parent whenever it advances, mirroring advanceAck on the bulk
// path.
func (nm *NM) advanceStrobeAck() {
	nm.mu.Lock()
	ctl := nm.ctl
	if ctl == nil || ctl.parent == nil {
		nm.mu.Unlock()
		return
	}
	min := ctl.strobeSeen
	for _, ch := range ctl.children {
		if ch.strobeAck < min {
			min = ch.strobeAck
		}
	}
	if min <= ctl.strobeUp {
		nm.mu.Unlock()
		return
	}
	ctl.strobeUp = min
	parent := ctl.parent
	epoch := ctl.epoch
	nm.mu.Unlock()
	parent.send(Message{StrobeAck: &StrobeAck{Seq: min, Node: nm.node, Epoch: epoch}})
}

// relayCtl forwards one control-tree frame to a child over the cached
// relay link. A dead link is evicted so the next period redials; the
// missed round surfaces as an absence in the MM's ledger, never as a
// stall.
func (nm *NM) relayCtl(ch *ctlChild, m Message) {
	cc, err := nm.peerConn(ch.addr)
	if err != nil {
		return
	}
	if err := cc.send(m); err != nil {
		nm.evictDialed(cc)
	}
}
