package livenet

import (
	"math/bits"
	"sync"
	"time"
)

// This file adds live gang scheduling: when MMConfig.GangQuantum is set,
// the MM assigns each job a timeslot row and multicasts a strobe every
// quantum; each NM enacts the coordinated context switch by opening the
// gates of the designated row's processes and closing the others — the
// same MM/NM division of labor as the simulated scheduler, on wall-clock
// time. Strobes are low-rate control traffic and travel as gob frames on
// the per-NM control links, never through the bulk fragment path, so a
// context switch cannot queue behind a binary transfer's buffered data.

// gate is the suspend/resume control a PL wraps around its process: the
// process calls wait() between work chunks and blocks while the gate is
// closed. A cancelled gate releases every waiter with wait() == false,
// telling the process to exit instead of doing its next work chunk —
// how an aborted job's processes are torn down promptly even while
// descheduled.
type gate struct {
	mu        sync.Mutex
	cond      *sync.Cond
	open      bool
	cancelled bool
}

func newGate(open bool) *gate {
	g := &gate{open: open}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until the gate is open, reporting false when the gate was
// cancelled and the process must exit.
func (g *gate) wait() bool {
	g.mu.Lock()
	for !g.open && !g.cancelled {
		g.cond.Wait()
	}
	ok := !g.cancelled
	g.mu.Unlock()
	return ok
}

// cancel releases all waiters permanently; wait() reports false from
// now on.
func (g *gate) cancel() {
	g.mu.Lock()
	if !g.cancelled {
		g.cancelled = true
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// set opens or closes the gate, waking waiters on open.
func (g *gate) set(open bool) {
	g.mu.Lock()
	if g.open != open {
		g.open = open
		if open {
			g.cond.Broadcast()
		}
	}
	g.mu.Unlock()
}

// isOpen reports the gate state (for tests).
func (g *gate) isOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

// pickRow assigns a new job an exclusive timeslot row, or -1 when every
// row is occupied. Two concurrent jobs must never share a row — a
// strobe opens every gate of the designated row, so a shared row would
// co-schedule two unrelated gangs — and a job that finds no free row
// stays in the admission queue until one is released. The free rows
// live in a bitset freelist (rowFree), so picking the lowest free row
// is a find-first-set over MPL/64 words instead of the linear
// occupancy scan this ran per admission — same lowest-row-first order,
// O(1) for any realistic MPL. Caller holds mm.mu.
func (mm *MM) pickRow() int {
	if mm.cfg.GangQuantum <= 0 || mm.cfg.MPL <= 1 {
		return 0
	}
	if mm.rowCount == nil {
		mm.rowCount = make([]int, mm.cfg.MPL)
		mm.rowFree = make([]uint64, (mm.cfg.MPL+63)/64)
		for r := 0; r < mm.cfg.MPL; r++ {
			mm.rowFree[r/64] |= 1 << uint(r%64)
		}
	}
	for w, free := range mm.rowFree {
		if free == 0 {
			continue
		}
		r := w*64 + bits.TrailingZeros64(free)
		mm.rowFree[w] &^= 1 << uint(r%64)
		mm.rowCount[r]++
		return r
	}
	return -1
}

// releaseRow returns a completed job's slot to the freelist. Caller
// holds mm.mu.
func (mm *MM) releaseRow(row int) {
	if mm.rowCount != nil && row >= 0 && row < len(mm.rowCount) && mm.rowCount[row] > 0 {
		mm.rowCount[row]--
		if mm.rowCount[row] == 0 {
			mm.rowFree[row/64] |= 1 << uint(row%64)
		}
	}
}

// strobeLoop multicasts the coordinated context switch every quantum,
// cycling over rows that have jobs. The strobe travels down the control
// tree exactly like a heartbeat ping — the MM writes one frame per
// direct child, NMs enact locally and relay — so strobe egress stays
// O(fanout) and the switch reaches n nodes in O(log_k n) relay hops.
// Aggregated strobe acks coming back up drive the latency metric.
func (mm *MM) strobeLoop(done chan struct{}) {
	tick := time.NewTicker(mm.cfg.GangQuantum)
	defer tick.Stop()
	cur := 0
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		mm.mu.Lock()
		next := -1
		if mm.rowCount != nil {
			for i := 1; i <= mm.cfg.MPL; i++ {
				r := (cur + i) % mm.cfg.MPL
				if mm.rowCount[r] > 0 {
					next = r
					break
				}
			}
		}
		mm.mu.Unlock()
		if next < 0 {
			continue
		}
		cur = next
		kids, epoch := mm.syncCtl()
		mm.mu.Lock()
		mm.strobes++
		var s int64
		if epoch == mm.ctl.epoch {
			mm.ctl.strobeSeq++
			s = mm.ctl.strobeSeq
			if len(kids) > 0 {
				mm.ctl.strobeSent[s] = time.Now()
				for k := range mm.ctl.strobeSent {
					if k < s-32 {
						delete(mm.ctl.strobeSent, k)
					}
				}
			}
		}
		mm.mu.Unlock()
		for _, l := range kids {
			l.c.send(Message{Strobe: &Strobe{Seq: s, Row: next, Epoch: epoch}})
		}
	}
}

// onStrobeAck records a direct child's cumulative strobe credit and
// completes every latency waiter the new minimum now covers.
func (mm *MM) onStrobeAck(a *StrobeAck) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if a.Epoch != mm.ctl.epoch || mm.ctl.strobeAck == nil {
		return // stale topology
	}
	if a.Seq <= mm.ctl.strobeAck[a.Node] {
		return
	}
	mm.ctl.strobeAck[a.Node] = a.Seq
	min := a.Seq
	for _, l := range mm.ctl.kids {
		if ack := mm.ctl.strobeAck[l.node]; ack < min {
			min = ack
		}
	}
	for seq, t0 := range mm.ctl.strobeSent {
		if seq <= min {
			d := time.Since(t0).Nanoseconds()
			mm.ctl.strobeN++
			mm.ctl.strobeSum += d
			if d > mm.ctl.strobeMax {
				mm.ctl.strobeMax = d
			}
			delete(mm.ctl.strobeSent, seq)
		}
	}
}
