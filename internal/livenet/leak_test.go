package livenet

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
	"repro/internal/testutil"
)

// waitForGoroutines delegates to the shared testutil helper so every
// lifecycle test — from 3-node chaos to 512-NM federation — asserts
// clean teardown the same way.
func waitForGoroutines(t testing.TB, base int, within time.Duration) {
	t.Helper()
	testutil.WaitForGoroutines(t, base, within)
}

// TestNoGoroutineLeaks runs the three lifecycle shapes that historically
// leak — a healthy launch, a recovered (chaos-killed) launch, and an
// aborted (corrupt) launch, all with a heartbeat detector running — and
// asserts the process returns to its goroutine baseline after teardown.
func TestNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()

	// Healthy lifecycle, including a detector the test "forgets" to
	// stop: MM.Close must stop it.
	func() {
		mm, _, shutdown := chaosCluster(t, 3, chaosMMConfig(), nil)
		defer shutdown()
		mm.StartHeartbeat(50*time.Millisecond, nil) // no explicit stop
		if _, err := SubmitJob(mm.Addr(), JobSpec{
			Name: "ok", BinaryBytes: 256 << 10, Nodes: 3, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		}); err != nil {
			t.Fatal(err)
		}
	}()
	waitForGoroutines(t, base, 5*time.Second)

	// Recovered launch: a leaf dæmon dies mid-transfer, the tree
	// self-heals, and the dead NM's goroutines must all be reaped.
	func() {
		const n, victim = 5, 4
		var victimNM atomic.Pointer[NM]
		mm, nms, shutdown := chaosCluster(t, n, chaosMMConfig(), func(node int) NMConfig {
			if node != victim {
				return NMConfig{}
			}
			return NMConfig{WrapConn: func(c net.Conn) net.Conn {
				plan := faultconn.NewPlan()
				plan.CloseAtReadFrag = 6
				plan.OnFault = func(string) {
					go func() {
						if nm := victimNM.Load(); nm != nil {
							nm.Close()
						}
					}()
				}
				return faultconn.Wrap(c, plan)
			}}
		})
		defer shutdown()
		victimNM.Store(nms[victim])
		if _, err := SubmitJob(mm.Addr(), JobSpec{
			Name: "heal", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		}); err != nil {
			t.Fatalf("recovery launch failed: %v", err)
		}
	}()
	waitForGoroutines(t, base, 5*time.Second)

	// Aborted launch: wire corruption fails the job; abort must reap
	// every transfer goroutine and relay pump.
	func() {
		mm, _, shutdown := chaosCluster(t, 3, chaosMMConfig(), func(node int) NMConfig {
			if node != 0 {
				return NMConfig{}
			}
			return NMConfig{Dialer: func(addr string) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					return nil, err
				}
				plan := faultconn.NewPlan()
				plan.CorruptFrag = 1
				return faultconn.Wrap(c, plan), nil
			}}
		})
		defer shutdown()
		if _, err := SubmitJob(mm.Addr(), JobSpec{
			Name: "doomed", BinaryBytes: chaosBinary, Nodes: 3, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		}); err == nil {
			t.Fatal("corrupt job should fail")
		}
	}()
	waitForGoroutines(t, base, 5*time.Second)
}
