package livenet

import (
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// NMConfig tunes a live Node Manager.
type NMConfig struct {
	// PeerAddr is the listen address for relay connections from parent
	// NMs in the forwarding tree (default "127.0.0.1:0").
	PeerAddr string
	// SpoolDir, when set, makes the NM persist each job's binary image
	// to disk: fragments append to a job-private temp file that is
	// renamed into place only once the full image has verified, so an
	// aborted or failed transfer can never leave a half-written binary
	// behind. Empty keeps the image in memory only (the RAM-disk model).
	SpoolDir string
	// Dialer overrides how the NM opens its connections (to the MM and
	// to relay children); nil means TCP with retry/backoff. WrapConn,
	// when set, interposes on every established connection, inbound and
	// outbound. Both exist for deterministic fault injection (see
	// internal/livenet/faultconn).
	Dialer   Dialer
	WrapConn func(net.Conn) net.Conn
}

// NM is a live Node Manager: it registers with the MM, receives binary
// fragments (from the MM or from a parent NM in the forwarding tree),
// relays them to its own tree children, aggregates acks for its subtree,
// forks processes through its Program Launchers (goroutines), and
// reports terminations and heartbeats.
type NM struct {
	node   int
	cpus   int
	cfg    NMConfig
	c      *conn
	peerLn net.Listener

	mu      sync.Mutex
	bins    map[int]*binState   // job -> receive state
	relays  map[int]*relayState // job -> forwarding-tree state
	digests map[int]ImageDigest // job -> digest of the delivered image
	peers   map[*conn]struct{}  // inbound relay connections
	dialed  map[string]*conn    // outbound relay links, cached across jobs
	gates   map[int]*gateRow    // job -> gang gate + row
	ctl     *nmCtl              // control-tree role (heartbeat/strobe relay)

	// counters, guarded by mu: fragments verified, fragments relayed
	// downstream, processes forked, gang context switches enacted.
	fragsWritten int
	fragsRelayed int
	launches     int
	strobesSeen  int

	// testDropAcks, when set (in-package tests only), silently withholds
	// all fragment acks — the "node stops crediting the window" fault.
	testDropAcks atomic.Bool
	// testDropTerms, when set (in-package tests only), suppresses
	// termination reports — the "job never reports back" fault that the
	// MM's termination deadline must catch.
	testDropTerms atomic.Bool
	// testCorruptRelay, when set (in-package tests only), may mutate a
	// fragment's payload after local verification but before it is
	// relayed downstream — the mid-tree corruption hook.
	testCorruptRelay func(job, index int, data []byte)

	wg     sync.WaitGroup
	closed chan struct{}
}

// binState tracks one job's incoming binary image.
type binState struct {
	received int
	bytes    int
	crc      uint32 // running CRC-32 over the concatenated image
	complete bool

	// Spool state (SpoolDir set): fragments append to the temp file,
	// which is renamed to final only after the whole image verified.
	spool *os.File
	tmp   string
	final string
}

// ImageDigest summarizes the binary image a node received for a job:
// enough to prove byte-identical delivery across transfer topologies.
type ImageDigest struct {
	Bytes int
	Frags int
	CRC   uint32 // CRC-32 of the concatenated image bytes
}

// relayState is one job's position in the forwarding tree: where acks go
// (parent), whom to relay to (children), and how far the local write and
// each child subtree have progressed, so cumulative acks can be
// aggregated before being propagated up.
type relayState struct {
	frags    int
	epoch    int   // tree generation; bumped by Replan, stamped on acks
	parent   *conn // conn fragments arrive on; acks go back up it
	children []*relayChild
	sentUp   int // cumulative credit already propagated to the parent
	failed   bool
}

// relayChild is one downstream link of the forwarding tree.
type relayChild struct {
	node  int
	addr  string
	c     *conn
	acked int  // cumulative credit received from this subtree
	down  bool // link declared dead (write failed and one redial failed)
}

// gateRow couples a job's process gate with its gang timeslot row.
type gateRow struct {
	g   *gate
	row int
}

// NewNM connects a Node Manager with the given node ID to the MM at
// addr, with default configuration. cpus is the advertised processor
// count (one PL per potential process).
func NewNM(addr string, node, cpus int) (*NM, error) {
	return NewNMConfig(addr, node, cpus, NMConfig{})
}

// NewNMConfig is NewNM with explicit configuration.
func NewNMConfig(addr string, node, cpus int, cfg NMConfig) (*NM, error) {
	peerAddr := cfg.PeerAddr
	if peerAddr == "" {
		peerAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("livenet: peer listen %s: %w", peerAddr, err)
	}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			ln.Close()
			return nil, fmt.Errorf("livenet: spool dir: %w", err)
		}
	}
	c, err := dialWith(cfg.Dialer, cfg.WrapConn, addr)
	if err != nil {
		ln.Close()
		return nil, err
	}
	nm := &NM{node: node, cpus: cpus, cfg: cfg, c: c, peerLn: ln,
		bins:    make(map[int]*binState),
		relays:  make(map[int]*relayState),
		digests: make(map[int]ImageDigest),
		peers:   make(map[*conn]struct{}),
		dialed:  make(map[string]*conn),
		gates:   make(map[int]*gateRow),
		closed:  make(chan struct{})}
	if err := c.send(Message{Register: &Register{Node: node, CPUs: cpus, Addr: ln.Addr().String()}}); err != nil {
		c.close()
		ln.Close()
		return nil, fmt.Errorf("livenet: register: %w", err)
	}
	nm.wg.Add(2)
	go nm.loop()
	go nm.acceptPeers()
	return nm, nil
}

// Node returns the NM's node ID.
func (nm *NM) Node() int { return nm.node }

// PeerAddr returns the NM's relay listener address.
func (nm *NM) PeerAddr() string { return nm.peerLn.Addr().String() }

// FragsWritten returns the number of verified fragments written.
func (nm *NM) FragsWritten() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsWritten
}

// FragsRelayed returns the number of fragment copies forwarded to tree
// children.
func (nm *NM) FragsRelayed() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsRelayed
}

// Launches returns the number of processes forked.
func (nm *NM) Launches() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.launches
}

// StrobesSeen returns the number of gang context switches enacted.
func (nm *NM) StrobesSeen() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.strobesSeen
}

// ImageDigest returns the digest of the binary image this node received
// for job (retained after the job completes), and whether the image was
// fully delivered.
func (nm *NM) ImageDigest(job int) (ImageDigest, bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	d, ok := nm.digests[job]
	return d, ok
}

// SpooledBinary returns the on-disk path of a job's committed binary
// image, and whether it has been published (SpoolDir mode only; a
// published path always names a complete, verified image — partial
// transfers only ever exist under a temp name).
func (nm *NM) SpooledBinary(job int) (string, bool) {
	if nm.cfg.SpoolDir == "" {
		return "", false
	}
	p := filepath.Join(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d.bin", nm.node, job))
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

// Close disconnects the NM (simulating a node failure if abrupt).
func (nm *NM) Close() {
	// Guarded close: chaos tests kill an NM from a fault callback while
	// the test harness also Closes it on cleanup.
	nm.mu.Lock()
	select {
	case <-nm.closed:
	default:
		close(nm.closed)
	}
	nm.mu.Unlock()
	nm.c.close()
	nm.peerLn.Close()
	nm.mu.Lock()
	for pc := range nm.peers {
		pc.close()
	}
	for _, cc := range nm.dialed {
		cc.close()
	}
	for _, st := range nm.bins {
		st.discardSpool()
	}
	nm.mu.Unlock()
	nm.wg.Wait()
}

func (nm *NM) loop() {
	defer nm.wg.Done()
	for {
		m, err := nm.c.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.handleFrag(m.Frag, nm.c)
		case m.Plan != nil:
			nm.onPlan(m.Plan)
		case m.Replan != nil:
			nm.onReplan(m.Replan)
		case m.Abort != nil:
			nm.onAbort(m.Abort)
		case m.Launch != nil:
			nm.onLaunch(m.Launch)
		case m.Ping != nil:
			nm.onCtlPing(m.Ping, nm.c)
		case m.Strobe != nil:
			nm.onCtlStrobe(m.Strobe, nm.c)
		case m.CtlPlan != nil:
			nm.onCtlPlan(m.CtlPlan)
		}
	}
}

// acceptPeers serves relay connections from parent NMs.
func (nm *NM) acceptPeers() {
	defer nm.wg.Done()
	for {
		nc, err := nm.peerLn.Accept()
		if err != nil {
			return // listener closed
		}
		if nm.cfg.WrapConn != nil {
			nc = nm.cfg.WrapConn(nc)
		}
		pc := newConn(nc)
		nm.mu.Lock()
		nm.peers[pc] = struct{}{}
		nm.mu.Unlock()
		nm.wg.Add(1)
		go nm.servePeer(pc)
	}
}

// servePeer pumps fragments arriving from a parent NM; acks flow back on
// the same connection.
func (nm *NM) servePeer(pc *conn) {
	defer nm.wg.Done()
	defer func() {
		nm.mu.Lock()
		delete(nm.peers, pc)
		// If this conn was some job's ack path, unbind it: after a
		// replan the replacement parent's conn re-binds on its first
		// fragment, and acks must never be written to a dead socket.
		for _, rs := range nm.relays {
			if rs.parent == pc {
				rs.parent = nil
			}
		}
		if nm.ctl != nil && nm.ctl.parent == pc {
			nm.ctl.parent = nil
		}
		nm.mu.Unlock()
		pc.close()
	}()
	for {
		m, err := pc.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.handleFrag(m.Frag, pc)
		case m.Ping != nil:
			nm.onCtlPing(m.Ping, pc)
		case m.Strobe != nil:
			nm.onCtlStrobe(m.Strobe, pc)
		}
	}
}

// onPlan prepares a job's forwarding-tree role: resolve the relay
// children to (cached) peer connections and confirm to the MM. The MM
// does not stream until every node confirmed, so fragments can never
// outrun the tree.
func (nm *NM) onPlan(p *Plan) {
	st := &relayState{frags: p.Frags}
	for _, ref := range p.Children {
		cc, err := nm.peerConn(ref.Addr)
		if err != nil {
			nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node,
				Err: fmt.Sprintf("dial child %d: %v", ref.Node, err)}})
			return
		}
		st.children = append(st.children, &relayChild{node: ref.Node, addr: ref.Addr, c: cc})
	}
	nm.mu.Lock()
	nm.relays[p.Job] = st
	nm.mu.Unlock()
	nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node}})
}

// onReplan rewires this node's forwarding role for a new tree epoch
// after the MM excluded a failed node: the child set is replaced
// wholesale, per-child credit restarts at zero (conservative — the
// first replayed duplicate re-primes it), and the cumulative credit
// already propagated up is reset so the (possibly new) parent hears a
// fresh, epoch-stamped ack stream. The reply carries this node's local
// fragment progress, which the MM folds into the global replay point.
func (nm *NM) onReplan(p *Replan) {
	var kids []*relayChild
	for _, ref := range p.Children {
		cc, err := nm.peerConn(ref.Addr)
		if err != nil {
			nm.c.send(Message{ReplanAck: &ReplanAck{Job: p.Job, Node: nm.node, Epoch: p.Epoch,
				Err: fmt.Sprintf("dial child %d: %v", ref.Node, err)}})
			return
		}
		kids = append(kids, &relayChild{node: ref.Node, addr: ref.Addr, c: cc})
	}
	nm.mu.Lock()
	rs := nm.relays[p.Job]
	if rs == nil {
		rs = &relayState{}
		nm.relays[p.Job] = rs
	}
	rs.frags = p.Frags
	rs.epoch = p.Epoch
	rs.children = kids
	rs.parent = nil // re-binds on the first fragment of the new epoch
	rs.sentUp = 0
	received := 0
	if st := nm.bins[p.Job]; st != nil {
		received = st.received
	}
	nm.mu.Unlock()
	nm.c.send(Message{ReplanAck: &ReplanAck{Job: p.Job, Node: nm.node,
		Epoch: p.Epoch, Received: received}})
}

// peerConn returns the relay connection to a downstream NM, dialing it
// and starting its ack pump on first use. Links are cached across jobs
// and closed only when the NM shuts down: re-dialing the tree on every
// launch would put n-1 TCP handshakes on each job's critical path.
func (nm *NM) peerConn(addr string) (*conn, error) {
	nm.mu.Lock()
	cc, ok := nm.dialed[addr]
	nm.mu.Unlock()
	if ok {
		return cc, nil
	}
	return nm.dialChild(addr)
}

// dialChild opens a fresh relay link to addr, caches it, and starts its
// ack pump.
func (nm *NM) dialChild(addr string) (*conn, error) {
	cc, err := dialWith(nm.cfg.Dialer, nm.cfg.WrapConn, addr)
	if err != nil {
		return nil, err
	}
	nm.mu.Lock()
	nm.dialed[addr] = cc
	nm.mu.Unlock()
	nm.wg.Add(1)
	go nm.pumpChildAcks(cc)
	return cc, nil
}

// relayFrag forwards one fragment to a tree child, health-checking the
// cached link on the way: a write error evicts the cached connection
// and redials once before the peer is reported down. Reports whether
// the fragment reached the child.
func (nm *NM) relayFrag(job int, rc *relayChild, f *Frag) bool {
	nm.mu.Lock()
	cc, down := rc.c, rc.down
	nm.mu.Unlock()
	if down {
		return false
	}
	err := cc.sendFrag(f)
	if err == nil {
		return true
	}
	// Cached link went stale (the peer restarted, or the socket died
	// between jobs): evict it and redial once. A fragment frame is
	// atomic per connection, so the peer discards any partial frame
	// with the dead socket and the retry is a clean re-send.
	nm.evictDialed(cc)
	cc2, err2 := nm.dialChild(rc.addr)
	if err2 == nil {
		nm.mu.Lock()
		rc.c = cc2
		nm.mu.Unlock()
		if err = cc2.sendFrag(f); err == nil {
			return true
		}
	} else {
		err = err2
	}
	nm.mu.Lock()
	rc.down = true
	nm.mu.Unlock()
	// One redial did not bring the peer back: report it down so the MM
	// can start recovery without waiting for the window to stall.
	nm.c.send(Message{PeerDown: &PeerDown{Job: job, Node: rc.node, From: nm.node, Err: err.Error()}})
	return false
}

// evictDialed drops a broken link from the cross-job relay cache.
func (nm *NM) evictDialed(cc *conn) {
	nm.mu.Lock()
	for addr, c := range nm.dialed {
		if c == cc {
			delete(nm.dialed, addr)
		}
	}
	nm.mu.Unlock()
	cc.close()
}

// pumpChildAcks reads one downstream link's upward traffic — fragment
// acks for every job routed over it, plus control-tree pong ledgers and
// strobe acks — and folds each into its aggregate.
func (nm *NM) pumpChildAcks(cc *conn) {
	defer nm.wg.Done()
	defer func() {
		// The link died: make sure the cross-job cache never hands it
		// out again.
		nm.mu.Lock()
		for addr, c := range nm.dialed {
			if c == cc {
				delete(nm.dialed, addr)
			}
		}
		nm.mu.Unlock()
		cc.close()
	}()
	for {
		m, err := cc.recv()
		if err != nil {
			return
		}
		if m.Pong != nil {
			nm.onCtlPong(m.Pong)
			continue
		}
		if m.StrobeAck != nil {
			nm.onCtlStrobeAck(m.StrobeAck)
			continue
		}
		a := m.FragAck
		if a == nil {
			continue
		}
		if !a.OK {
			// A node below rejected: forward the failure up unchanged so
			// the MM learns the true origin. Content rejections are
			// epoch-independent.
			nm.mu.Lock()
			rs := nm.relays[a.Job]
			var parent *conn
			if rs != nil {
				rs.failed = true
				parent = rs.parent
			}
			nm.mu.Unlock()
			if parent != nil {
				parent.sendAck(a)
			}
			continue
		}
		nm.mu.Lock()
		if rs := nm.relays[a.Job]; rs != nil && a.Epoch == rs.epoch {
			// Credit from an older epoch vouched for a different
			// subtree shape and must not count under the new one.
			for _, rc := range rs.children {
				if rc.c == cc && a.Index+1 > rc.acked {
					rc.acked = a.Index + 1
				}
			}
		}
		nm.mu.Unlock()
		nm.advanceAck(a.Job)
	}
}

// handleFrag relays one binary fragment down the forwarding tree, then
// verifies and "writes" it (to the in-memory RAM disk) and advances the
// aggregated ack. The relay happens first, straight from the received
// pooled buffer, so per-hop latency is receive+forward and the CRC work
// of every level overlaps the downstream transmission; corruption is
// caught by each node's own check and nacked up the tree. from is the
// connection the fragment arrived on — the MM link for tree roots, a
// peer link otherwise — and is where this node's (aggregated) acks go.
func (nm *NM) handleFrag(f *Frag, from *conn) {
	nm.mu.Lock()
	rs := nm.relays[f.Job]
	if rs == nil {
		// Fragment without a plan (cannot happen with the plan barrier;
		// tolerated as a leaf role for robustness).
		rs = &relayState{frags: -1}
		nm.relays[f.Job] = rs
	}
	if rs.parent == nil {
		rs.parent = from
	}
	children := rs.children
	epoch := rs.epoch
	drop := nm.testDropAcks.Load()
	nm.mu.Unlock()

	// Relay downstream from the same buffer: one encode at the MM serves
	// the entire tree.
	if len(children) > 0 {
		forward := f
		if nm.testCorruptRelay != nil {
			// Test-only path: corrupt a private copy so the fault models a
			// bad relay link, not bad local memory.
			tmp := grabFragBuf(len(f.Data))
			copy(tmp, f.Data)
			nm.testCorruptRelay(f.Job, f.Index, tmp)
			forward = &Frag{Job: f.Job, Index: f.Index, Last: f.Last, Data: tmp, CRC: f.CRC}
			defer releaseFragBuf(tmp)
		}
		relayed := 0
		for _, rc := range children {
			if nm.relayFrag(f.Job, rc, forward) {
				relayed++
			}
		}
		nm.mu.Lock()
		nm.fragsRelayed += relayed
		nm.mu.Unlock()
	}

	// The CRC and content checks run in place against the deterministic
	// pattern — no per-fragment allocation (TestFragCheckAllocs).
	ok := fragCRC(f.Data) == f.CRC && fragPatternCheck(f.Job, f.Index, f.Data)
	nm.mu.Lock()
	st := nm.bins[f.Job]
	if st == nil {
		st = &binState{}
		nm.bins[f.Job] = st
	}
	switch {
	case !ok:
		// Corrupt: nacked below.
	case f.Index == st.received:
		if err := nm.spoolFrag(f.Job, st, f); err != nil {
			// Local write failure: this node nacks itself.
			ok = false
		} else {
			st.received++
			st.bytes += len(f.Data)
			st.crc = crc32.Update(st.crc, crc32.IEEETable, f.Data)
			st.complete = f.Last
			nm.fragsWritten++
			if f.Last {
				if err := st.commitSpool(); err != nil {
					ok = false
				} else {
					nm.digests[f.Job] = ImageDigest{Bytes: st.bytes, Frags: st.received, CRC: st.crc}
				}
			}
		}
	case f.Index < st.received:
		// Duplicate from a replayed stream after recovery: already
		// written and verified — fall through to re-ack so the new
		// topology's cumulative credit re-primes, but do not rewrite.
	default:
		// Future fragment: a surviving relay path raced a replan
		// handoff. Drop it silently — the replayed stream fills the
		// gap, and nacking would misreport a healthy node as corrupt.
		nm.mu.Unlock()
		releaseFragBuf(f.Data)
		return
	}
	if !ok {
		rs.failed = true
	}
	nm.mu.Unlock()
	releaseFragBuf(f.Data)
	if drop {
		return
	}
	if !ok {
		from.sendAck(&FragAck{Job: f.Job, Index: f.Index, Node: nm.node, Epoch: epoch, OK: false})
		return
	}
	nm.advanceAck(f.Job)
}

// spoolFrag appends an in-order verified fragment to the job's temp
// file, opening it lazily on the first fragment. No-op without a spool
// directory.
func (nm *NM) spoolFrag(job int, st *binState, f *Frag) error {
	if nm.cfg.SpoolDir == "" {
		return nil
	}
	if st.spool == nil {
		st.final = filepath.Join(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d.bin", nm.node, job))
		fh, err := os.CreateTemp(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d-*.tmp", nm.node, job))
		if err != nil {
			return err
		}
		st.spool, st.tmp = fh, fh.Name()
	}
	_, err := st.spool.Write(f.Data)
	return err
}

// commitSpool publishes a fully verified image with close + atomic
// rename, so a reader can never observe a half-written binary.
func (st *binState) commitSpool() error {
	if st.spool == nil {
		return nil
	}
	err := st.spool.Close()
	st.spool = nil
	if err != nil {
		os.Remove(st.tmp)
		return err
	}
	if err := os.Rename(st.tmp, st.final); err != nil {
		os.Remove(st.tmp)
		return err
	}
	st.tmp = ""
	return nil
}

// discardSpool drops a partial image (abort/failure/shutdown cleanup).
func (st *binState) discardSpool() {
	if st == nil {
		return
	}
	if st.spool != nil {
		st.spool.Close()
		st.spool = nil
	}
	if st.tmp != "" {
		os.Remove(st.tmp)
		st.tmp = ""
	}
}

// advanceAck propagates the aggregated cumulative credit — the minimum
// of the local write progress and every child subtree's credit — up to
// the parent whenever it advances. This is the live analogue of the
// paper's COMPARE-AND-WRITE receipt check: one ack per subtree instead
// of one per node.
func (nm *NM) advanceAck(job int) {
	nm.mu.Lock()
	rs := nm.relays[job]
	st := nm.bins[job]
	if rs == nil || st == nil || rs.failed || rs.parent == nil {
		nm.mu.Unlock()
		return
	}
	min := st.received
	for _, rc := range rs.children {
		if rc.acked < min {
			min = rc.acked
		}
	}
	if min <= rs.sentUp {
		nm.mu.Unlock()
		return
	}
	rs.sentUp = min
	parent := rs.parent
	epoch := rs.epoch
	nm.mu.Unlock()
	parent.sendAck(&FragAck{Job: job, Index: min - 1, Node: nm.node, Epoch: epoch, OK: true})
}

// onAbort drops a failed job's transfer state. The relay links are
// cached and stay up for the next job.
func (nm *NM) onAbort(a *Abort) {
	nm.mu.Lock()
	nm.bins[a.Job].discardSpool()
	delete(nm.relays, a.Job)
	delete(nm.bins, a.Job)
	delete(nm.digests, a.Job)
	nm.mu.Unlock()
}

// finishJob releases a completed job's transfer state (the image digest
// is retained for inspection, the relay links for the next job).
func (nm *NM) finishJob(job int) {
	nm.mu.Lock()
	delete(nm.relays, job)
	delete(nm.bins, job)
	delete(nm.gates, job)
	nm.mu.Unlock()
}

// onLaunch forks the job's local processes, one PL goroutine per rank,
// and reports when the last one exits.
func (nm *NM) onLaunch(l *Launch) {
	nm.mu.Lock()
	st := nm.bins[l.Job]
	ready := st != nil && st.complete
	nm.mu.Unlock()
	if !ready {
		// Binary never arrived: refuse by reporting immediately; the MM
		// will see a too-early termination in its accounting.
		if !nm.testDropTerms.Load() {
			nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		}
		return
	}
	// Gang mode: processes start gated and run only when their row is
	// strobed; otherwise they free-run.
	g := newGate(!l.Gang)
	nm.mu.Lock()
	nm.gates[l.Job] = &gateRow{g: g, row: l.Row}
	nm.launches += len(l.Ranks)
	nm.mu.Unlock()
	var procs sync.WaitGroup
	for _, rank := range l.Ranks {
		procs.Add(1)
		go func(rank int) {
			defer procs.Done()
			runProgram(l.Spec.Program, rank, g)
		}(rank)
	}
	nm.wg.Add(1)
	go func() {
		defer nm.wg.Done()
		procs.Wait()
		nm.finishJob(l.Job)
		if !nm.testDropTerms.Load() {
			nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		}
	}()
}

// onStrobe enacts the coordinated context switch: open the designated
// row's gates, close the rest.
func (nm *NM) onStrobe(row int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.strobesSeen++
	for _, gr := range nm.gates {
		gr.g.set(gr.row == row)
	}
}

// runProgram executes one live application process in gate-sized chunks:
// between chunks it blocks while descheduled (its gang's gate closed).
func runProgram(p ProgramSpec, rank int, g *gate) {
	switch p.Kind {
	case "", "exit":
		// The paper's do-nothing benchmark: terminate immediately.
	case "sleep":
		remaining := p.Duration
		const slice = 5 * time.Millisecond
		for remaining > 0 {
			g.wait()
			d := slice
			if remaining < d {
				d = remaining
			}
			time.Sleep(d)
			remaining -= d
		}
	case "spin":
		remaining := p.Duration
		x := uint64(rank + 1)
		for remaining > 0 {
			g.wait()
			start := time.Now()
			for time.Since(start) < time.Millisecond {
				for i := 0; i < 1<<12; i++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
			}
			remaining -= time.Since(start)
		}
		_ = x
	case "sweep":
		grid := p.Grid
		if grid == 0 {
			grid = 24
		}
		iters := p.Iters
		if iters == 0 {
			iters = 10
		}
		k := workload.NewSweepKernel(grid, grid, grid)
		for i := 0; i < iters; i++ {
			g.wait()
			k.Sweep()
		}
	}
}

// QueryStatus asks a live MM for its cluster snapshot.
func QueryStatus(addr string) (StatusRep, error) {
	c, err := dial(addr)
	if err != nil {
		return StatusRep{}, err
	}
	defer c.close()
	if err := c.send(Message{StatusQ: &StatusReq{}}); err != nil {
		return StatusRep{}, fmt.Errorf("livenet: status query: %w", err)
	}
	m, err := c.recv()
	if err != nil || m.StatusR == nil {
		return StatusRep{}, fmt.Errorf("livenet: status reply: %v", err)
	}
	return *m.StatusR, nil
}

// SubmitJob is the client call: dial the MM, submit, and wait for the
// completion report.
func SubmitJob(addr string, spec JobSpec) (Report, error) {
	c, err := dial(addr)
	if err != nil {
		return Report{}, err
	}
	defer c.close()
	if err := c.send(Message{Submit: &Submit{Spec: spec}}); err != nil {
		return Report{}, fmt.Errorf("livenet: submit: %w", err)
	}
	m, err := c.recv()
	if err != nil {
		return Report{}, fmt.Errorf("livenet: awaiting report: %w", err)
	}
	if m.Done == nil {
		return Report{}, fmt.Errorf("livenet: unexpected reply")
	}
	if m.Done.Err != "" {
		return m.Done.Report, fmt.Errorf("livenet: %s", m.Done.Err)
	}
	return m.Done.Report, nil
}
