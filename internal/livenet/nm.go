package livenet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/workload"
)

// NM is a live Node Manager: it registers with the MM, receives binary
// fragments and launch commands, forks processes through its Program
// Launchers (goroutines), and reports terminations and heartbeats.
type NM struct {
	node int
	cpus int
	c    *conn

	mu    sync.Mutex
	bins  map[int]*binState // job -> receive state
	gates map[int]*gateRow  // job -> gang gate + row

	// counters, guarded by mu: fragments verified, processes forked,
	// gang context switches enacted.
	fragsWritten int
	launches     int
	strobesSeen  int

	wg     sync.WaitGroup
	closed chan struct{}
}

// binState tracks one job's incoming binary image.
type binState struct {
	received int
	bytes    int
	complete bool
}

// gateRow couples a job's process gate with its gang timeslot row.
type gateRow struct {
	g   *gate
	row int
}

// NewNM connects a Node Manager with the given node ID to the MM at
// addr. cpus is the advertised processor count (one PL per potential
// process).
func NewNM(addr string, node, cpus int) (*NM, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	nm := &NM{node: node, cpus: cpus, c: c, bins: make(map[int]*binState),
		gates: make(map[int]*gateRow), closed: make(chan struct{})}
	if err := c.send(Message{Register: &Register{Node: node, CPUs: cpus}}); err != nil {
		c.close()
		return nil, fmt.Errorf("livenet: register: %w", err)
	}
	nm.wg.Add(1)
	go nm.loop()
	return nm, nil
}

// Node returns the NM's node ID.
func (nm *NM) Node() int { return nm.node }

// FragsWritten returns the number of verified fragments written.
func (nm *NM) FragsWritten() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsWritten
}

// Launches returns the number of processes forked.
func (nm *NM) Launches() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.launches
}

// StrobesSeen returns the number of gang context switches enacted.
func (nm *NM) StrobesSeen() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.strobesSeen
}

// Close disconnects the NM (simulating a node failure if abrupt).
func (nm *NM) Close() {
	select {
	case <-nm.closed:
	default:
		close(nm.closed)
	}
	nm.c.close()
	nm.wg.Wait()
}

func (nm *NM) loop() {
	defer nm.wg.Done()
	for {
		m, err := nm.c.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.onFrag(m.Frag)
		case m.Launch != nil:
			nm.onLaunch(m.Launch)
		case m.Ping != nil:
			nm.c.send(Message{Pong: &Pong{Seq: m.Ping.Seq, Node: nm.node}})
		case m.Strobe != nil:
			nm.onStrobe(m.Strobe.Row)
		}
	}
}

// onFrag verifies and "writes" one binary fragment (to the in-memory RAM
// disk), then credits the MM's flow-control window.
func (nm *NM) onFrag(f *Frag) {
	ok := fragCRC(f.Data) == f.CRC
	if ok {
		// Verify the deterministic content pattern end to end.
		want := fragPattern(f.Job, f.Index, len(f.Data))
		for i := range want {
			if f.Data[i] != want[i] {
				ok = false
				break
			}
		}
	}
	nm.mu.Lock()
	st := nm.bins[f.Job]
	if st == nil {
		st = &binState{}
		nm.bins[f.Job] = st
	}
	if ok && f.Index == st.received {
		st.received++
		st.bytes += len(f.Data)
		st.complete = f.Last
		nm.fragsWritten++
	} else if ok {
		// Out-of-order fragment on an in-order stream: reject.
		ok = false
	}
	nm.mu.Unlock()
	nm.c.send(Message{FragAck: &FragAck{Job: f.Job, Index: f.Index, Node: nm.node, OK: ok}})
}

// onLaunch forks the job's local processes, one PL goroutine per rank,
// and reports when the last one exits.
func (nm *NM) onLaunch(l *Launch) {
	nm.mu.Lock()
	st := nm.bins[l.Job]
	ready := st != nil && st.complete
	nm.mu.Unlock()
	if !ready {
		// Binary never arrived: refuse by reporting immediately; the MM
		// will see a too-early termination in its accounting.
		nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		return
	}
	// Gang mode: processes start gated and run only when their row is
	// strobed; otherwise they free-run.
	g := newGate(!l.Gang)
	nm.mu.Lock()
	nm.gates[l.Job] = &gateRow{g: g, row: l.Row}
	nm.mu.Unlock()
	var procs sync.WaitGroup
	nm.mu.Lock()
	nm.launches += len(l.Ranks)
	nm.mu.Unlock()
	for _, rank := range l.Ranks {
		procs.Add(1)
		go func(rank int) {
			defer procs.Done()
			runProgram(l.Spec.Program, rank, g)
		}(rank)
	}
	nm.wg.Add(1)
	go func() {
		defer nm.wg.Done()
		procs.Wait()
		nm.mu.Lock()
		delete(nm.bins, l.Job)
		delete(nm.gates, l.Job)
		nm.mu.Unlock()
		nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
	}()
}

// onStrobe enacts the coordinated context switch: open the designated
// row's gates, close the rest.
func (nm *NM) onStrobe(row int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.strobesSeen++
	for _, gr := range nm.gates {
		gr.g.set(gr.row == row)
	}
}

// runProgram executes one live application process in gate-sized chunks:
// between chunks it blocks while descheduled (its gang's gate closed).
func runProgram(p ProgramSpec, rank int, g *gate) {
	switch p.Kind {
	case "", "exit":
		// The paper's do-nothing benchmark: terminate immediately.
	case "sleep":
		remaining := p.Duration
		const slice = 5 * time.Millisecond
		for remaining > 0 {
			g.wait()
			d := slice
			if remaining < d {
				d = remaining
			}
			time.Sleep(d)
			remaining -= d
		}
	case "spin":
		remaining := p.Duration
		x := uint64(rank + 1)
		for remaining > 0 {
			g.wait()
			start := time.Now()
			for time.Since(start) < time.Millisecond {
				for i := 0; i < 1<<12; i++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
			}
			remaining -= time.Since(start)
		}
		_ = x
	case "sweep":
		grid := p.Grid
		if grid == 0 {
			grid = 24
		}
		iters := p.Iters
		if iters == 0 {
			iters = 10
		}
		k := workload.NewSweepKernel(grid, grid, grid)
		for i := 0; i < iters; i++ {
			g.wait()
			k.Sweep()
		}
	}
}

// QueryStatus asks a live MM for its cluster snapshot.
func QueryStatus(addr string) (StatusRep, error) {
	c, err := dial(addr)
	if err != nil {
		return StatusRep{}, err
	}
	defer c.close()
	if err := c.send(Message{StatusQ: &StatusReq{}}); err != nil {
		return StatusRep{}, fmt.Errorf("livenet: status query: %w", err)
	}
	m, err := c.recv()
	if err != nil || m.StatusR == nil {
		return StatusRep{}, fmt.Errorf("livenet: status reply: %v", err)
	}
	return *m.StatusR, nil
}

// SubmitJob is the client call: dial the MM, submit, and wait for the
// completion report.
func SubmitJob(addr string, spec JobSpec) (Report, error) {
	c, err := dial(addr)
	if err != nil {
		return Report{}, err
	}
	defer c.close()
	if err := c.send(Message{Submit: &Submit{Spec: spec}}); err != nil {
		return Report{}, fmt.Errorf("livenet: submit: %w", err)
	}
	m, err := c.recv()
	if err != nil {
		return Report{}, fmt.Errorf("livenet: awaiting report: %w", err)
	}
	if m.Done == nil {
		return Report{}, fmt.Errorf("livenet: unexpected reply")
	}
	if m.Done.Err != "" {
		return m.Done.Report, fmt.Errorf("livenet: %s", m.Done.Err)
	}
	return m.Done.Report, nil
}
