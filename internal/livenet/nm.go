package livenet

import (
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/livenet/chunkcache"
	"repro/internal/place"
	"repro/internal/workload"
)

// NMConfig tunes a live Node Manager.
type NMConfig struct {
	// PeerAddr is the listen address for relay connections from parent
	// NMs in the forwarding tree (default "127.0.0.1:0").
	PeerAddr string
	// SpoolDir, when set, makes the NM persist each job's binary image
	// to disk: fragments append to a job-private temp file that is
	// renamed into place only once the full image has verified, so an
	// aborted or failed transfer can never leave a half-written binary
	// behind. Empty keeps the image in memory only (the RAM-disk model).
	SpoolDir string
	// CacheBytes, when positive, gives the NM a bounded content-addressed
	// chunk cache (see internal/livenet/chunkcache): committed image
	// chunks are retained up to this budget and advertised in HAVE
	// ledgers, so a relaunch of an unchanged (or slightly rebuilt) image
	// streams only the missing chunks. Zero disables caching; every
	// transfer then behaves like a cold launch.
	CacheBytes int64
	// CacheDir, when set with CacheBytes, backs the chunk cache with one
	// file per chunk under this directory instead of holding chunks in
	// memory. Corrupt or truncated entries are detected on read and fall
	// back to the wire.
	CacheDir string
	// Dialer overrides how the NM opens its connections (to the MM and
	// to relay children); nil means TCP with retry/backoff. WrapConn,
	// when set, interposes on every established connection, inbound and
	// outbound. Both exist for deterministic fault injection (see
	// internal/livenet/faultconn).
	Dialer   Dialer
	WrapConn func(net.Conn) net.Conn
	// Hub, when set, replaces the NM's private relay listener with the
	// shared per-process PeerHub: the NM registers a routed
	// "host:port#node" peer address and inbound relay connections are
	// demultiplexed by the hub's single accept loop. PeerAddr is ignored.
	Hub *PeerHub
	// Lite selects the dense connection profile (shallow buffered I/O,
	// kernel-autotuned socket buffers) on every connection this NM
	// makes. The right choice when hundreds of NMs share a process;
	// the default bulk profile is tuned for per-link throughput.
	Lite bool
	// Cap declares this node's resource capacity to the MM's placement
	// engine. Placement never seats a gang member whose JobSpec.Demand
	// exceeds the node's free capacity. The zero Cap means undeclared —
	// the MM treats the node as unbounded, the pre-capacity behavior.
	Cap place.Vec
	// Rejoin announces this NM as a returning member rather than a fresh
	// one: instead of Register it opens with a Rejoin handshake, and
	// NewNMConfig blocks until the MM's RejoinAck clears the node's
	// conviction (the ack's probation count is readable via Probation).
	// Use after a crash/restart of a previously-registered node —
	// especially one the failure detector convicted, which a plain
	// Register would leave excluded from the control tree forever.
	Rejoin bool
}

// NM is a live Node Manager: it registers with the MM, receives binary
// fragments (from the MM or from a parent NM in the forwarding tree),
// relays them to its own tree children, aggregates acks for its subtree,
// forks processes through its Program Launchers (goroutines), and
// reports terminations and heartbeats.
type NM struct {
	node   int
	cpus   int
	cfg    NMConfig
	c      *conn
	peerLn net.Listener      // nil when a shared PeerHub routes inbound links
	cache  *chunkcache.Cache // nil when caching is disabled

	mu      sync.Mutex
	bins    map[int]*binState   // job -> receive state
	relays  map[int]*relayState // job -> forwarding-tree state
	digests map[int]ImageDigest // job -> digest of the delivered image
	peers   map[*conn]struct{}  // inbound relay connections
	dialed  map[string]*conn    // outbound relay links, cached across jobs
	gates   map[int]*gateRow    // job -> gang gate + row
	ctl     *nmCtl              // control-tree role (heartbeat/strobe relay)

	// counters, guarded by mu: fragments verified, fragments relayed
	// downstream, processes forked, gang context switches enacted.
	fragsWritten int
	fragsRelayed int
	launches     int
	strobesSeen  int

	// testDropAcks, when set (in-package tests only), silently withholds
	// all fragment acks — the "node stops crediting the window" fault.
	testDropAcks atomic.Bool
	// testDropTerms, when set (in-package tests only), suppresses
	// termination reports — the "job never reports back" fault that the
	// MM's termination deadline must catch.
	testDropTerms atomic.Bool
	// testCorruptRelay, when set (in-package tests only), may mutate a
	// fragment's payload after local verification but before it is
	// relayed downstream — the mid-tree corruption hook.
	testCorruptRelay func(job, index int, data []byte)

	// probation is the heartbeat-clean period count the MM's RejoinAck
	// quoted (0 for a fresh registration); set once in NewNMConfig.
	probation int

	wg     sync.WaitGroup
	closed chan struct{}
}

// binState tracks one job's incoming binary image.
type binState struct {
	received int
	bytes    int
	crc      uint32 // running CRC-32 over the concatenated image
	complete bool

	// Delta-transfer state. man is the job's manifest (cloned out of
	// conn scratch, shared by every stripe); written marks which chunks
	// are spliced into the image so far — from the cache at manifest
	// time or from the wire — and wcount counts them. received remains
	// the in-order prefix of written across all chunks (the legacy /
	// replan-fallback cursor); srecv[s] is the stripe-local in-order
	// prefix over the chunks stripe s owns (global indices ≡ s mod k),
	// which is what stripe s's cumulative acks vouch for. expect[s] is
	// stripe s's NeedMask: the authoritative set of chunks that will
	// arrive on that stripe's link this epoch.
	man      *Manifest
	written  []uint64
	wcount   int
	k        int   // stripe count the manifest round established (≥1)
	srecv    []int // per-stripe in-order chunk prefix (stripe-local counts)
	expect   [][]uint64
	draining bool // manifest-time cache drain in flight; defer the HAVE folds

	// Spool state (SpoolDir set): chunks are written at their offsets in
	// a job-private temp file that is renamed into place only once the
	// full image has re-verified against the manifest digest.
	spool *os.File
	tmp   string
	final string
}

// ImageDigest summarizes the binary image a node received for a job:
// enough to prove byte-identical delivery across transfer topologies.
type ImageDigest struct {
	Bytes int
	Frags int
	CRC   uint32 // CRC-32 of the concatenated image bytes
}

// relayState is one job's position in the striped forwarding plane: one
// stripeRelay per spanning tree (stripe s carries the chunks with global
// index ≡ s mod k). With stripes=1 there is exactly one entry and the
// behavior is the legacy single-tree data path.
type relayState struct {
	frags   int
	stripes []*stripeRelay
	failed  bool
}

// stripeRelay is this node's role in one stripe's tree: where that
// stripe's acks go (parent), whom to relay its chunks to (children), and
// how far each child subtree has progressed, so cumulative stripe-local
// credit can be aggregated before being propagated up. Epochs are
// per-stripe: a replan rewires (and re-stamps) only the trees the dead
// node was interior in.
type stripeRelay struct {
	epoch    int   // this stripe's tree generation; bumped by Replan
	parent   *conn // conn this stripe's traffic arrives on; acks go back up it
	children []*relayChild
	sentUp   int  // stripe-local cumulative credit already propagated up
	haveSent bool // this epoch's aggregated HAVE ledger already went up
}

// relayChild is one downstream link of a stripe's forwarding tree.
type relayChild struct {
	node   int
	addr   string
	c      *conn
	acked  int      // cumulative stripe-local credit received from this subtree
	have   []uint64 // the subtree's aggregated HAVE ledger (nil until reported)
	down   bool     // link declared dead (write failed and one redial failed)
	pruned bool     // MM excluded this leaf from the stripe (ChildDead); stop waiting for its credit
}

// gateRow couples a job's process gate with its gang timeslot row.
type gateRow struct {
	g   *gate
	row int
}

// NewNM connects a Node Manager with the given node ID to the MM at
// addr, with default configuration. cpus is the advertised processor
// count (one PL per potential process).
func NewNM(addr string, node, cpus int) (*NM, error) {
	return NewNMConfig(addr, node, cpus, NMConfig{})
}

// NewNMConfig is NewNM with explicit configuration.
func NewNMConfig(addr string, node, cpus int, cfg NMConfig) (*NM, error) {
	nm := &NM{node: node, cpus: cpus, cfg: cfg,
		bins:    make(map[int]*binState),
		relays:  make(map[int]*relayState),
		digests: make(map[int]ImageDigest),
		peers:   make(map[*conn]struct{}),
		dialed:  make(map[string]*conn),
		gates:   make(map[int]*gateRow),
		closed:  make(chan struct{})}
	var peerAddr string
	if cfg.Hub != nil {
		// Shared-listener mode: no private listener, no accept
		// goroutine; the hub routes inbound relay connections here by
		// the dialer's hello frame.
		if err := cfg.Hub.register(node, nm); err != nil {
			return nil, err
		}
		peerAddr = cfg.Hub.NodeAddr(node)
	} else {
		la := cfg.PeerAddr
		if la == "" {
			la = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", la)
		if err != nil {
			return nil, fmt.Errorf("livenet: peer listen %s: %w", la, err)
		}
		nm.peerLn = ln
		peerAddr = ln.Addr().String()
	}
	fail := func() {
		if nm.peerLn != nil {
			nm.peerLn.Close()
		}
		if cfg.Hub != nil {
			cfg.Hub.unregister(node, nm)
		}
	}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			fail()
			return nil, fmt.Errorf("livenet: spool dir: %w", err)
		}
	}
	if cfg.CacheBytes > 0 {
		cache, err := chunkcache.New(cfg.CacheBytes, cfg.CacheDir)
		if err != nil {
			fail()
			return nil, fmt.Errorf("livenet: chunk cache: %w", err)
		}
		nm.cache = cache
	}
	c, err := dialProf(cfg.Dialer, cfg.WrapConn, addr, nm.profile())
	if err != nil {
		fail()
		return nil, err
	}
	nm.c = c
	if cfg.Rejoin {
		// Rejoin is a synchronous handshake: the ack proves the MM
		// cleared this node's conviction before any traffic flows, so a
		// caller holding a fresh NM knows the node is back in membership
		// (probation may still gate placement for a few periods).
		if err := c.send(Message{Rejoin: &Rejoin{Node: node, CPUs: cpus, Addr: peerAddr, Cap: cfg.Cap}}); err != nil {
			c.close()
			fail()
			return nil, fmt.Errorf("livenet: rejoin: %w", err)
		}
		m, err := c.recv()
		if err != nil {
			c.close()
			fail()
			return nil, fmt.Errorf("livenet: rejoin ack: %w", err)
		}
		if m.RejoinAck == nil {
			c.close()
			fail()
			return nil, fmt.Errorf("livenet: rejoin: unexpected first message from MM")
		}
		if m.RejoinAck.Err != "" {
			c.close()
			fail()
			return nil, fmt.Errorf("livenet: rejoin refused: %s", m.RejoinAck.Err)
		}
		nm.probation = m.RejoinAck.Probation
	} else if err := c.send(Message{Register: &Register{Node: node, CPUs: cpus, Addr: peerAddr, Cap: cfg.Cap}}); err != nil {
		c.close()
		fail()
		return nil, fmt.Errorf("livenet: register: %w", err)
	}
	nm.wg.Add(1)
	go nm.loop()
	if nm.peerLn != nil {
		nm.wg.Add(1)
		go nm.acceptPeers()
	}
	return nm, nil
}

// profile is the connection profile every link of this NM uses.
func (nm *NM) profile() connProfile {
	if nm.cfg.Lite {
		return liteProfile
	}
	return bulkProfile
}

// Node returns the NM's node ID.
func (nm *NM) Node() int { return nm.node }

// Probation returns the heartbeat-clean period count the MM quoted in
// its RejoinAck (0 for a fresh registration, or a rejoin with no
// detector running).
func (nm *NM) Probation() int { return nm.probation }

// PeerAddr returns the NM's relay address: its private listener, or its
// routed "host:port#node" hub address in shared-listener mode.
func (nm *NM) PeerAddr() string {
	if nm.cfg.Hub != nil {
		return nm.cfg.Hub.NodeAddr(nm.node)
	}
	return nm.peerLn.Addr().String()
}

// FragsWritten returns the number of verified fragments written.
func (nm *NM) FragsWritten() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsWritten
}

// FragsRelayed returns the number of fragment copies forwarded to tree
// children.
func (nm *NM) FragsRelayed() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsRelayed
}

// Launches returns the number of processes forked.
func (nm *NM) Launches() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.launches
}

// StrobesSeen returns the number of gang context switches enacted.
func (nm *NM) StrobesSeen() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.strobesSeen
}

// ImageDigest returns the digest of the binary image this node received
// for job (retained after the job completes), and whether the image was
// fully delivered.
func (nm *NM) ImageDigest(job int) (ImageDigest, bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	d, ok := nm.digests[job]
	return d, ok
}

// SpooledBinary returns the on-disk path of a job's committed binary
// image, and whether it has been published (SpoolDir mode only; a
// published path always names a complete, verified image — partial
// transfers only ever exist under a temp name).
func (nm *NM) SpooledBinary(job int) (string, bool) {
	if nm.cfg.SpoolDir == "" {
		return "", false
	}
	p := filepath.Join(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d.bin", nm.node, job))
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

// Close disconnects the NM (simulating a node failure if abrupt).
func (nm *NM) Close() {
	// Guarded close: chaos tests kill an NM from a fault callback while
	// the test harness also Closes it on cleanup.
	nm.mu.Lock()
	select {
	case <-nm.closed:
	default:
		close(nm.closed)
	}
	nm.mu.Unlock()
	nm.c.close()
	if nm.peerLn != nil {
		nm.peerLn.Close()
	}
	if nm.cfg.Hub != nil {
		nm.cfg.Hub.unregister(nm.node, nm)
	}
	nm.mu.Lock()
	for pc := range nm.peers {
		pc.close()
	}
	for _, cc := range nm.dialed {
		cc.close()
	}
	for _, st := range nm.bins {
		st.discardSpool()
	}
	// Cancel every live gang gate: a process descheduled when its MM died
	// would otherwise wait forever for a strobe that is never coming, and
	// this Close would deadlock on it.
	gates := make([]*gateRow, 0, len(nm.gates))
	for _, gr := range nm.gates {
		gates = append(gates, gr)
	}
	nm.gates = make(map[int]*gateRow)
	nm.mu.Unlock()
	for _, gr := range gates {
		gr.g.cancel()
	}
	nm.wg.Wait()
}

func (nm *NM) loop() {
	defer nm.wg.Done()
	for {
		m, err := nm.c.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.handleFrag(m.Frag, nm.c)
		case m.Manifest != nil:
			nm.onManifest(m.Manifest, nm.c)
		case m.NeedMask != nil:
			nm.onNeedMask(m.NeedMask)
		case m.Plan != nil:
			nm.onPlan(m.Plan)
		case m.Replan != nil:
			nm.onReplan(m.Replan)
		case m.ChildDead != nil:
			nm.onChildDead(m.ChildDead)
		case m.Abort != nil:
			nm.onAbort(m.Abort)
		case m.Launch != nil:
			nm.onLaunch(m.Launch)
		case m.Ping != nil:
			nm.onCtlPing(m.Ping, nm.c)
		case m.Strobe != nil:
			nm.onCtlStrobe(m.Strobe, nm.c)
		case m.CtlPlan != nil:
			nm.onCtlPlan(m.CtlPlan)
		}
	}
}

// acceptPeers serves relay connections from parent NMs.
func (nm *NM) acceptPeers() {
	defer nm.wg.Done()
	for {
		nc, err := nm.peerLn.Accept()
		if err != nil {
			return // listener closed
		}
		if nm.cfg.WrapConn != nil {
			nc = nm.cfg.WrapConn(nc)
		}
		pc := newConnProf(nc, nm.profile())
		nm.mu.Lock()
		nm.peers[pc] = struct{}{}
		nm.mu.Unlock()
		nm.wg.Add(1)
		go nm.servePeer(pc)
	}
}

// adoptPeer accepts an inbound relay connection routed by a shared
// PeerHub: the NM's own fault hook and connection profile apply exactly
// as they would on a privately-accepted connection. Returns false (and
// adopts nothing) if the NM is already closed — the connection then
// belongs to the caller.
func (nm *NM) adoptPeer(nc net.Conn) bool {
	if nm.cfg.WrapConn != nil {
		nc = nm.cfg.WrapConn(nc)
	}
	pc := newConnProf(nc, nm.profile())
	nm.mu.Lock()
	select {
	case <-nm.closed:
		nm.mu.Unlock()
		return false
	default:
	}
	nm.peers[pc] = struct{}{}
	nm.wg.Add(1)
	nm.mu.Unlock()
	go nm.servePeer(pc)
	return true
}

// servePeer pumps fragments arriving from a parent NM; acks flow back on
// the same connection.
func (nm *NM) servePeer(pc *conn) {
	defer nm.wg.Done()
	defer func() {
		nm.mu.Lock()
		delete(nm.peers, pc)
		// If this conn was some stripe's ack path, unbind it: after a
		// replan the replacement parent's conn re-binds on its first
		// fragment, and acks must never be written to a dead socket.
		for _, rs := range nm.relays {
			for _, sr := range rs.stripes {
				if sr.parent == pc {
					sr.parent = nil
				}
			}
		}
		if nm.ctl != nil && nm.ctl.parent == pc {
			nm.ctl.parent = nil
		}
		nm.mu.Unlock()
		pc.close()
	}()
	for {
		m, err := pc.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.handleFrag(m.Frag, pc)
		case m.Manifest != nil:
			nm.onManifest(m.Manifest, pc)
		case m.NeedMask != nil:
			nm.onNeedMask(m.NeedMask)
		case m.Ping != nil:
			nm.onCtlPing(m.Ping, pc)
		case m.Strobe != nil:
			nm.onCtlStrobe(m.Strobe, pc)
		}
	}
}

// onPlan prepares a job's forwarding roles, one per stripe tree: resolve
// each stripe's relay children to (cached) peer connections and confirm
// to the MM. A child link shared by several stripes resolves to the same
// cached conn, so the k trees multiplex over at most one socket per peer
// pair. The MM does not stream until every node confirmed, so fragments
// can never outrun any tree.
func (nm *NM) onPlan(p *Plan) {
	st := &relayState{frags: p.Frags}
	for _, refs := range p.Children {
		sr := &stripeRelay{}
		for _, ref := range refs {
			cc, err := nm.peerConn(ref.Addr)
			if err != nil {
				nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node,
					Err: fmt.Sprintf("dial child %d: %v", ref.Node, err)}})
				return
			}
			sr.children = append(sr.children, &relayChild{node: ref.Node, addr: ref.Addr, c: cc})
		}
		st.stripes = append(st.stripes, sr)
	}
	if len(st.stripes) == 0 {
		st.stripes = []*stripeRelay{{}}
	}
	nm.mu.Lock()
	nm.relays[p.Job] = st
	nm.mu.Unlock()
	nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node}})
}

// onReplan rewires this node's forwarding role in ONE stripe's tree for
// that stripe's new epoch after the MM excluded a failed node: the
// stripe's child set is replaced wholesale, per-child credit restarts at
// zero (conservative — the first replayed duplicate re-primes it), and
// the cumulative credit already propagated up is reset so the (possibly
// new) parent hears a fresh, epoch-stamped ack stream. Other stripes'
// trees, epochs, and cursors are untouched. The reply carries this
// node's stripe-local chunk progress, which the MM folds into the
// stripe's replay point.
func (nm *NM) onReplan(p *Replan) {
	var kids []*relayChild
	for _, ref := range p.Children {
		cc, err := nm.peerConn(ref.Addr)
		if err != nil {
			nm.c.send(Message{ReplanAck: &ReplanAck{Job: p.Job, Node: nm.node, Epoch: p.Epoch,
				Stripe: p.Stripe, Err: fmt.Sprintf("dial child %d: %v", ref.Node, err)}})
			return
		}
		kids = append(kids, &relayChild{node: ref.Node, addr: ref.Addr, c: cc})
	}
	nm.mu.Lock()
	rs := nm.relays[p.Job]
	if rs == nil {
		rs = &relayState{}
		nm.relays[p.Job] = rs
	}
	rs.frags = p.Frags
	for len(rs.stripes) <= p.Stripe {
		rs.stripes = append(rs.stripes, &stripeRelay{})
	}
	sr := rs.stripes[p.Stripe]
	sr.epoch = p.Epoch
	sr.children = kids
	sr.parent = nil // re-binds on the new epoch's manifest (or first fragment)
	sr.sentUp = 0
	sr.haveSent = false // the new epoch runs a fresh HAVE round
	received := 0
	if st := nm.bins[p.Job]; st != nil {
		received = st.received
		if st.man != nil && p.Stripe < len(st.srecv) {
			received = st.srecv[p.Stripe]
		}
	}
	nm.mu.Unlock()
	nm.c.send(Message{ReplanAck: &ReplanAck{Job: p.Job, Node: nm.node,
		Epoch: p.Epoch, Stripe: p.Stripe, Received: received}})
}

// peerConn returns the relay connection to a downstream NM, dialing it
// and starting its ack pump on first use. Links are cached across jobs
// and closed only when the NM shuts down: re-dialing the tree on every
// launch would put n-1 TCP handshakes on each job's critical path.
func (nm *NM) peerConn(addr string) (*conn, error) {
	nm.mu.Lock()
	cc, ok := nm.dialed[addr]
	nm.mu.Unlock()
	if ok {
		return cc, nil
	}
	return nm.dialChild(addr)
}

// dialChild opens a fresh relay link to addr, caches it, and starts its
// ack pump.
func (nm *NM) dialChild(addr string) (*conn, error) {
	cc, err := dialProf(nm.cfg.Dialer, nm.cfg.WrapConn, addr, nm.profile())
	if err != nil {
		return nil, err
	}
	nm.mu.Lock()
	nm.dialed[addr] = cc
	nm.mu.Unlock()
	nm.wg.Add(1)
	go nm.pumpChildAcks(cc)
	return cc, nil
}

// relayFrag forwards one fragment to a tree child, health-checking the
// cached link on the way: a write error evicts the cached connection
// and redials once before the peer is reported down. Reports whether
// the fragment reached the child.
func (nm *NM) relayFrag(job int, rc *relayChild, f *Frag) bool {
	nm.mu.Lock()
	cc, down := rc.c, rc.down
	nm.mu.Unlock()
	if down {
		return false
	}
	err := cc.sendFrag(f)
	if err == nil {
		return true
	}
	// Cached link went stale (the peer restarted, or the socket died
	// between jobs): evict it and redial once. A fragment frame is
	// atomic per connection, so the peer discards any partial frame
	// with the dead socket and the retry is a clean re-send.
	nm.evictDialed(cc)
	cc2, err2 := nm.dialChild(rc.addr)
	if err2 == nil {
		nm.mu.Lock()
		rc.c = cc2
		nm.mu.Unlock()
		if err = cc2.sendFrag(f); err == nil {
			return true
		}
	} else {
		err = err2
	}
	nm.mu.Lock()
	rc.down = true
	nm.mu.Unlock()
	// One redial did not bring the peer back: report it down so the MM
	// can start recovery without waiting for the window to stall.
	nm.c.send(Message{PeerDown: &PeerDown{Job: job, Node: rc.node, From: nm.node, Err: err.Error()}})
	return false
}

// evictDialed drops a broken link from the cross-job relay cache.
func (nm *NM) evictDialed(cc *conn) {
	nm.mu.Lock()
	for addr, c := range nm.dialed {
		if c == cc {
			delete(nm.dialed, addr)
		}
	}
	nm.mu.Unlock()
	cc.close()
}

// pumpChildAcks reads one downstream link's upward traffic — fragment
// acks for every job routed over it, plus control-tree pong ledgers and
// strobe acks — and folds each into its aggregate.
func (nm *NM) pumpChildAcks(cc *conn) {
	defer nm.wg.Done()
	defer func() {
		// The link died: make sure the cross-job cache never hands it
		// out again.
		nm.mu.Lock()
		for addr, c := range nm.dialed {
			if c == cc {
				delete(nm.dialed, addr)
			}
		}
		nm.mu.Unlock()
		cc.close()
	}()
	for {
		m, err := cc.recv()
		if err != nil {
			return
		}
		if m.Pong != nil {
			nm.onCtlPong(m.Pong)
			continue
		}
		if m.StrobeAck != nil {
			nm.onCtlStrobeAck(m.StrobeAck)
			continue
		}
		if m.Have != nil {
			nm.onChildHave(m.Have, cc)
			continue
		}
		a := m.FragAck
		if a == nil {
			continue
		}
		if !a.OK {
			// A node below rejected: forward the failure up unchanged so
			// the MM learns the true origin. Content rejections are
			// epoch-independent.
			nm.mu.Lock()
			rs := nm.relays[a.Job]
			var parent *conn
			if rs != nil {
				rs.failed = true
				if a.Stripe >= 0 && a.Stripe < len(rs.stripes) {
					parent = rs.stripes[a.Stripe].parent
				}
				if parent == nil {
					for _, sr := range rs.stripes {
						if sr.parent != nil {
							parent = sr.parent
							break
						}
					}
				}
			}
			nm.mu.Unlock()
			if parent != nil {
				parent.sendAck(a)
			}
			continue
		}
		nm.mu.Lock()
		if rs := nm.relays[a.Job]; rs != nil && a.Stripe >= 0 && a.Stripe < len(rs.stripes) {
			// Credit from an older epoch vouched for a different
			// subtree shape and must not count under the new one.
			if sr := rs.stripes[a.Stripe]; a.Epoch == sr.epoch {
				for _, rc := range sr.children {
					if rc.c == cc && a.Index+1 > rc.acked {
						rc.acked = a.Index + 1
					}
				}
			}
		}
		nm.mu.Unlock()
		nm.advanceAck(a.Job, a.Stripe)
	}
}

// handleFrag relays one binary fragment down its stripe's forwarding
// tree, then verifies and "writes" it (to the in-memory RAM disk) and
// advances that stripe's aggregated ack. The relay happens first,
// straight from the received pooled buffer, so per-hop latency is
// receive+forward and the CRC work of every level overlaps the
// downstream transmission; corruption is caught by each node's own check
// and nacked up the tree. from is the connection the fragment arrived on
// — the MM link for stripe-tree roots, a peer link otherwise — and is
// where this node's (aggregated) acks for that stripe go.
func (nm *NM) handleFrag(f *Frag, from *conn) {
	nm.mu.Lock()
	rs := nm.relays[f.Job]
	if rs == nil {
		// Fragment without a plan (cannot happen with the plan barrier;
		// tolerated as a leaf role for robustness).
		rs = &relayState{frags: -1}
		nm.relays[f.Job] = rs
	}
	for len(rs.stripes) <= f.Stripe {
		rs.stripes = append(rs.stripes, &stripeRelay{})
	}
	sr := rs.stripes[f.Stripe]
	if sr.parent == nil {
		sr.parent = from
	}
	st := nm.bins[f.Job]
	if st == nil {
		st = &binState{}
		nm.bins[f.Job] = st
	}
	children := sr.children
	epoch := sr.epoch
	drop := nm.testDropAcks.Load()
	manifest := st.man != nil
	nm.mu.Unlock()

	// Relay downstream from the same buffer: one encode at the MM serves
	// the entire tree. Under a manifest, a chunk is forwarded only to the
	// subtrees that reported missing it — the selective half of the delta
	// path.
	if len(children) > 0 {
		forward := f
		if nm.testCorruptRelay != nil {
			// Test-only path: corrupt a private copy so the fault models a
			// bad relay link, not bad local memory.
			tmp := grabFragBuf(len(f.Data))
			copy(tmp, f.Data)
			nm.testCorruptRelay(f.Job, f.Index, tmp)
			forward = &Frag{Job: f.Job, Index: f.Index, Stripe: f.Stripe, Last: f.Last, Data: tmp, CRC: f.CRC}
			defer releaseFragBuf(tmp)
		}
		relayed := 0
		for _, rc := range children {
			if manifest && nm.childHasChunk(rc, f.Index) {
				continue
			}
			if nm.relayFrag(f.Job, rc, forward) {
				relayed++
			}
		}
		nm.mu.Lock()
		nm.fragsRelayed += relayed
		nm.mu.Unlock()
	}

	if manifest {
		nm.writeManifestChunk(f, from, epoch, drop)
		return
	}

	// Legacy path (no manifest announced — robustness only, since every
	// transfer now opens with one): the CRC and content checks run in
	// place against the deterministic pattern — no per-fragment
	// allocation (TestFragCheckAllocs).
	ok := fragCRC(f.Data) == f.CRC && fragPatternCheck(f.Job, f.Index, f.Data)
	nm.mu.Lock()
	switch {
	case !ok:
		// Corrupt: nacked below.
	case f.Index == st.received:
		if err := nm.spoolFrag(f.Job, st, f); err != nil {
			// Local write failure: this node nacks itself.
			ok = false
		} else {
			st.received++
			st.bytes += len(f.Data)
			st.crc = crc32.Update(st.crc, crc32.IEEETable, f.Data)
			st.complete = f.Last
			nm.fragsWritten++
			if f.Last {
				if err := st.commitSpool(); err != nil {
					ok = false
				} else {
					nm.digests[f.Job] = ImageDigest{Bytes: st.bytes, Frags: st.received, CRC: st.crc}
				}
			}
		}
	case f.Index < st.received:
		// Duplicate from a replayed stream after recovery: already
		// written and verified — fall through to re-ack so the new
		// topology's cumulative credit re-primes, but do not rewrite.
	default:
		// Future fragment: a surviving relay path raced a replan
		// handoff. Drop it silently — the replayed stream fills the
		// gap, and nacking would misreport a healthy node as corrupt.
		nm.mu.Unlock()
		releaseFragBuf(f.Data)
		return
	}
	if !ok {
		rs.failed = true
	}
	nm.mu.Unlock()
	releaseFragBuf(f.Data)
	if drop {
		return
	}
	if !ok {
		from.sendAck(&FragAck{Job: f.Job, Index: f.Index, Node: nm.node, Epoch: epoch, Stripe: f.Stripe, OK: false})
		return
	}
	nm.advanceAck(f.Job, f.Stripe)
}

// onManifest opens (or re-opens, after a replan) a job's delta transfer.
// It binds the ack path, relays the manifest down the subtree, splices
// every chunk the local cache can vouch for straight into the image, and
// folds the resulting HAVE ledger up the tree — immediately for leaves,
// once every child has reported for interior nodes. A fully cache-warm
// node may never see a fragment, so everything the fragment path would
// establish (the parent binding, the ack stream, even image completion)
// must be able to happen here.
//
// A HAVE bit is only ever set for bytes that are already verified and in
// place: the drain goes cache→Get (which re-verifies content)→splice, so
// a poisoned or truncated cache entry simply fails Get, is never
// advertised, and arrives by wire instead — corruption degrades to a
// cache miss, never into the image or a stalled transfer.
//
// With stripes, each stripe tree delivers its own copy of the manifest
// (the epoch gates are per-stripe), but the cache drain runs exactly
// once, owned by whichever stripe's manifest lands first: the image and
// the written bitmap are job-wide, so a second drain would only re-probe
// chunks the first already spliced. Later stripes' manifests just bind
// that stripe's ack path, relay down, and fold that stripe's HAVE. A
// stale-epoch manifest racing a replan on one stripe is dropped in full —
// it never touches another stripe's parent binding, ledger, or NeedMask.
func (nm *NM) onManifest(m *Manifest, from *conn) {
	nm.mu.Lock()
	rs := nm.relays[m.Job]
	if rs == nil || m.Stripe < 0 || m.Stripe >= len(rs.stripes) {
		nm.mu.Unlock()
		return
	}
	sr := rs.stripes[m.Stripe]
	if m.Epoch != sr.epoch {
		// A manifest from a superseded epoch raced a replan on this
		// stripe. Drop it whole: the MM's HAVE timeout covers the gap,
		// and no other stripe's state is touched.
		nm.mu.Unlock()
		return
	}
	sr.parent = from
	st := nm.bins[m.Job]
	if st == nil {
		st = &binState{}
		nm.bins[m.Job] = st
	}
	drain := st.man == nil
	if drain {
		st.man = m.clone()
		st.written = make([]uint64, bitWords(len(m.Hashes)))
		st.k = len(rs.stripes)
		if st.k < 1 {
			st.k = 1
		}
		st.srecv = make([]int, st.k)
		st.expect = make([][]uint64, st.k)
		st.draining = true
	}
	man := st.man
	if m.Stripe < len(st.expect) {
		st.expect[m.Stripe] = nil // the new epoch's NeedMask follows
	}
	children := sr.children
	nm.mu.Unlock()

	// Relay first, straight from conn scratch (sendManifest copies to the
	// wire), so the subtree's cache drains overlap our own.
	for _, rc := range children {
		nm.relayMsg(m.Job, rc, Message{Manifest: m})
	}

	if !drain {
		// Another stripe's manifest already drained (or is draining) the
		// cache; foldHave defers itself while that drain is in flight and
		// the drain owner re-folds every stripe when it completes.
		nm.foldHave(m.Job, m.Stripe)
		nm.advanceAck(m.Job, m.Stripe)
		return
	}

	var failIdx = -1
	nm.mu.Lock()
	if nm.cache != nil {
		spool := nm.cfg.SpoolDir != ""
		for i := range man.Hashes {
			if bitGet(st.written, i) {
				continue
			}
			size := manifestChunkLen(man, i)
			if spool {
				// Spool mode needs the bytes: fetch (Get re-verifies disk
				// entries) and splice them at the chunk's image offset.
				buf := grabFragBuf(size)
				if nm.cache.Get(man.Hashes[i], man.CRCs[i], size, buf) &&
					nm.spliceChunk(m.Job, st, i, buf[:size]) == nil {
					bitSet(st.written, i)
					st.wcount++
				}
				releaseFragBuf(buf)
				continue
			}
			// Memory mode never materializes the image (the digest is
			// verified by CRC combination at finalize), so a cache probe
			// suffices: Use charges the hit and re-verifies disk-backed
			// entries without copying bytes out. This is what makes a
			// fully-warm launch O(chunks), not O(bytes).
			if nm.cache.Use(man.Hashes[i], man.CRCs[i], size) {
				bitSet(st.written, i)
				st.wcount++
			}
		}
	}
	st.advanceReceived()
	for s := 0; s < st.k; s++ {
		st.advanceStripe(s)
	}
	if st.wcount == len(man.Hashes) && !st.complete {
		if err := nm.finalizeImageLocked(m.Job, st); err != nil {
			rs.failed = true
			failIdx = len(man.Hashes) - 1
		}
	}
	st.draining = false
	k := st.k
	parent := sr.parent
	epoch := sr.epoch
	nm.mu.Unlock()
	if failIdx >= 0 {
		parent.sendAck(&FragAck{Job: m.Job, Index: failIdx, Node: nm.node, Epoch: epoch, Stripe: m.Stripe, OK: false})
		return
	}
	// The drain may have satisfied chunks of every stripe, and other
	// stripes' manifests may have arrived (and deferred their folds)
	// while it ran: fold and re-credit them all. Stripes whose manifest
	// has not bound a parent yet are skipped inside foldHave/advanceAck.
	for s := 0; s < k; s++ {
		nm.foldHave(m.Job, s)
		nm.advanceAck(m.Job, s)
	}
}

// onChildHave folds one child subtree's HAVE report into this node's
// ledger for that stripe: record it on the matching link — it doubles as
// the selective relay filter — and send the stripe's aggregate up if
// this completes the fold.
func (nm *NM) onChildHave(h *Have, cc *conn) {
	nm.mu.Lock()
	rs := nm.relays[h.Job]
	if rs == nil || h.Stripe < 0 || h.Stripe >= len(rs.stripes) {
		nm.mu.Unlock()
		return
	}
	sr := rs.stripes[h.Stripe]
	if h.Epoch != sr.epoch {
		nm.mu.Unlock()
		return
	}
	for _, rc := range sr.children {
		if rc.c == cc {
			rc.have = append(rc.have[:0], h.Bits...)
		}
	}
	nm.mu.Unlock()
	nm.foldHave(h.Job, h.Stripe)
}

// foldHave sends one stripe subtree's aggregated HAVE ledger up once the
// local splice state and every live child's report are in: bit i is set
// iff every node in the stripe's subtree holds chunk i. (The MM only
// reads the bits a stripe owns — indices ≡ stripe mod k — but the fold
// carries the full bitmap; the extra bits are free and keep the ledger
// format identical at every stripe count.) The AND-fold is the dual of
// the control plane's pong ledgers, which aggregate absence by OR — same
// O(depth) round, O(fanout) egress per node.
func (nm *NM) foldHave(job, stripe int) {
	nm.mu.Lock()
	rs := nm.relays[job]
	st := nm.bins[job]
	if rs == nil || st == nil || st.man == nil || st.draining ||
		stripe < 0 || stripe >= len(rs.stripes) {
		nm.mu.Unlock()
		return
	}
	sr := rs.stripes[stripe]
	if sr.haveSent || sr.parent == nil {
		nm.mu.Unlock()
		return
	}
	for _, rc := range sr.children {
		if rc.have == nil && !rc.down {
			nm.mu.Unlock()
			return // a subtree report is still outstanding
		}
	}
	bits := make([]uint64, len(st.written))
	copy(bits, st.written)
	for _, rc := range sr.children {
		if rc.down {
			// A dead child cannot vouch for anything: claim nothing, and
			// let the MM's recovery path rebuild the subtree.
			for i := range bits {
				bits[i] = 0
			}
			break
		}
		for i := range bits {
			if i < len(rc.have) {
				bits[i] &= rc.have[i]
			} else {
				bits[i] = 0
			}
		}
	}
	sr.haveSent = true
	parent := sr.parent
	epoch := sr.epoch
	nm.mu.Unlock()
	parent.send(Message{Have: &Have{Job: job, Node: nm.node, Epoch: epoch, Stripe: stripe, Bits: bits}})
}

// onNeedMask records the parent's announcement of which of one stripe's
// chunks will arrive on this link during the stripe's epoch and forwards
// each stripe child its own mask (the complement of the child's HAVE
// report, restricted to the chunks the stripe owns). A stripe chunk that
// is neither announced nor already in place can never be completed —
// that means our HAVE claim and the parent's plan disagree — so nack now
// rather than stall the whole transfer window out. The check covers only
// indices ≡ stripe mod k: other stripes' chunks arrive on other trees
// and their masks say nothing about them.
func (nm *NM) onNeedMask(n *NeedMask) {
	nm.mu.Lock()
	rs := nm.relays[n.Job]
	st := nm.bins[n.Job]
	if rs == nil || st == nil || st.man == nil ||
		n.Stripe < 0 || n.Stripe >= len(rs.stripes) || n.Stripe >= len(st.expect) {
		nm.mu.Unlock()
		return
	}
	sr := rs.stripes[n.Stripe]
	if n.Epoch != sr.epoch {
		nm.mu.Unlock()
		return
	}
	st.expect[n.Stripe] = append(st.expect[n.Stripe][:0], n.Bits...)
	nchunks := len(st.man.Hashes)
	k := st.k
	stuck := -1
	for i := n.Stripe; i < nchunks; i += k {
		if !bitGet(st.written, i) && !maskGet(st.expect[n.Stripe], i) {
			stuck = i
			break
		}
	}
	type childMask struct {
		rc   *relayChild
		bits []uint64
	}
	var kids []childMask
	for _, rc := range sr.children {
		need := make([]uint64, bitWords(nchunks))
		for i := n.Stripe; i < nchunks; i += k {
			if !maskGet(rc.have, i) {
				bitSet(need, i)
			}
		}
		kids = append(kids, childMask{rc, need})
	}
	if stuck >= 0 {
		rs.failed = true
	}
	parent := sr.parent
	epoch := sr.epoch
	nm.mu.Unlock()
	for _, km := range kids {
		nm.relayMsg(n.Job, km.rc, Message{NeedMask: &NeedMask{Job: n.Job, Epoch: epoch, Stripe: n.Stripe, Bits: km.bits}})
	}
	if stuck >= 0 && parent != nil {
		parent.sendAck(&FragAck{Job: n.Job, Index: stuck, Node: nm.node, Epoch: epoch, Stripe: n.Stripe, OK: false})
	}
}

// writeManifestChunk verifies one wire chunk against the manifest —
// length, CRC, and content hash — splices it at its offset, and advances
// the in-order ack pointer across any cached spans it completes. Verified
// chunks also populate the cache, so the next launch of the same content
// skips the wire entirely.
func (nm *NM) writeManifestChunk(f *Frag, from *conn, epoch int, drop bool) {
	nm.mu.Lock()
	st := nm.bins[f.Job]
	rs := nm.relays[f.Job]
	man := st.man
	nchunks := len(man.Hashes)
	var hash uint64
	ok := f.Index >= 0 && f.Index < nchunks &&
		len(f.Data) == manifestChunkLen(man, f.Index) &&
		fragCRC(f.Data) == f.CRC && f.CRC == man.CRCs[f.Index]
	if ok {
		hash = chunkcache.Hash64(f.Data)
		ok = hash == man.Hashes[f.Index]
	}
	switch {
	case !ok:
		// Corrupt or misdirected: nacked below.
	case bitGet(st.written, f.Index):
		// Duplicate — a replayed stream after recovery, or a chunk the
		// cache already supplied. Fall through to re-ack so the new
		// topology's cumulative credit re-primes, but do not rewrite.
	default:
		if nm.spliceChunk(f.Job, st, f.Index, f.Data) != nil {
			ok = false // local write failure: this node nacks itself
			break
		}
		bitSet(st.written, f.Index)
		st.wcount++
		nm.fragsWritten++
		st.advanceReceived()
		if st.k > 0 {
			// Ledger by the chunk's own stripe (index mod k), which the
			// striped MM always matches to the frame's stripe tag.
			st.advanceStripe(f.Index % st.k)
		}
		if nm.cache != nil {
			nm.cache.Put(hash, f.CRC, f.Data)
		}
		if st.wcount == nchunks {
			if err := nm.finalizeImageLocked(f.Job, st); err != nil {
				ok = false
			}
		}
	}
	if !ok && rs != nil {
		rs.failed = true
	}
	nm.mu.Unlock()
	releaseFragBuf(f.Data)
	if drop {
		return
	}
	if !ok {
		from.sendAck(&FragAck{Job: f.Job, Index: f.Index, Node: nm.node, Epoch: epoch, Stripe: f.Stripe, OK: false})
		return
	}
	nm.advanceAck(f.Job, f.Stripe)
}

// childHasChunk reports whether a child subtree advertised chunk index in
// its HAVE ledger (and so must not have it relayed again).
func (nm *NM) childHasChunk(rc *relayChild, index int) bool {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return maskGet(rc.have, index)
}

// maskGet is bitGet against a bitmap of unverified length (a peer's HAVE
// or NeedMask): out-of-range bits read as zero.
func maskGet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]>>(uint(i)&63)&1 == 1
}

// manifestChunkLen is the byte length of chunk i: ChunkBytes for all but
// the last, which carries the image tail.
func manifestChunkLen(m *Manifest, i int) int {
	if n := len(m.Hashes); i == n-1 {
		return int(m.TotalBytes) - (n-1)*m.ChunkBytes
	}
	return m.ChunkBytes
}

// advanceReceived moves the global in-order pointer across the written
// bitmap: received is the gap-free prefix of the spliced image over ALL
// chunks, retained for replan fallbacks and the image digest.
func (st *binState) advanceReceived() {
	n := len(st.man.Hashes)
	for st.received < n && bitGet(st.written, st.received) {
		st.received++
	}
}

// advanceStripe moves one stripe's in-order pointer across the written
// bitmap, counting in stripe-local chunks (global index s + srecv[s]*k):
// srecv[s] is what that stripe's cumulative acks (and replan resume
// points) vouch for.
func (st *binState) advanceStripe(s int) {
	if s < 0 || s >= len(st.srecv) {
		return
	}
	n := len(st.man.Hashes)
	for {
		i := s + st.srecv[s]*st.k
		if i >= n || !bitGet(st.written, i) {
			return
		}
		st.srecv[s]++
	}
}

// spliceChunk writes one verified chunk at its image offset in the spool
// file (opened lazily). In memory mode there is nothing to write: the
// image is never materialized — chunk presence is tracked in the written
// bitmap and the digest is verified by CRC combination at finalize, the
// same accounting the pre-delta memory path kept. Callers hold nm.mu.
func (nm *NM) spliceChunk(job int, st *binState, index int, data []byte) error {
	if nm.cfg.SpoolDir == "" {
		return nil
	}
	off := int64(index) * int64(st.man.ChunkBytes)
	if st.spool == nil {
		st.final = filepath.Join(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d.bin", nm.node, job))
		fh, err := os.CreateTemp(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d-*.tmp", nm.node, job))
		if err != nil {
			return err
		}
		st.spool, st.tmp = fh, fh.Name()
	}
	_, err := st.spool.WriteAt(data, off)
	return err
}

// finalizeImageLocked re-verifies the whole-image digest against the
// manifest before committing. Spool mode reads the spliced file back and
// CRCs every byte — that closes the splice, proving every chunk (cached
// and wire alike) landed at the right offset with the right bytes —
// before the rename publishes it. The read-back CRCs each chunk across
// the small chunk worker pool (ReadAt is concurrent-safe, the reads are
// disjoint) and folds the per-chunk results in order with the CRC-32
// combine identity, so a multi-megabyte verify is not single-core bound
// on the launch critical path. Memory mode holds no image bytes, so it
// folds the manifest's per-chunk CRCs (each individually verified, on
// the wire or at cache admission) the same way: the result is exactly
// ChecksumIEEE of the concatenated chunks, O(chunks) instead of an
// O(bytes) re-read. Called with nm.mu held.
func (nm *NM) finalizeImageLocked(job int, st *binState) error {
	man := st.man
	var crc uint32
	if nm.cfg.SpoolDir == "" {
		for i := range man.CRCs {
			crc = crc32Combine(crc, man.CRCs[i], int64(manifestChunkLen(man, i)))
		}
	} else if st.spool != nil {
		n := len(man.Hashes)
		crcs := make([]uint32, n)
		errs := make([]error, n)
		sp := st.spool
		parallelChunks(n, func(i int) {
			size := manifestChunkLen(man, i)
			buf := grabFragBuf(size)
			nr, err := sp.ReadAt(buf[:size], int64(i)*int64(man.ChunkBytes))
			crcs[i] = crc32.ChecksumIEEE(buf[:nr])
			if err != nil && nr == size {
				err = nil // a full read at EOF is a complete chunk
			}
			errs[i] = err
			releaseFragBuf(buf)
		})
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return errs[i]
			}
			crc = crc32Combine(crc, crcs[i], int64(manifestChunkLen(man, i)))
		}
	}
	if crc != man.ImageCRC {
		return fmt.Errorf("livenet: node %d job %d: spliced image CRC %08x, manifest says %08x",
			nm.node, job, crc, man.ImageCRC)
	}
	if err := st.commitSpool(); err != nil {
		return err
	}
	st.bytes = int(man.TotalBytes)
	st.received = len(man.Hashes)
	for s := range st.srecv {
		st.srecv[s] = stripeChunks(len(man.Hashes), s, st.k)
	}
	st.crc = crc
	st.complete = true
	nm.digests[job] = ImageDigest{Bytes: st.bytes, Frags: st.received, CRC: crc}
	return nil
}

// relayMsg forwards one transfer-control frame (manifest or need-mask) to
// a tree child, with the same evict-and-redial-once health check as
// relayFrag. Reports whether the frame reached the child.
func (nm *NM) relayMsg(job int, rc *relayChild, m Message) bool {
	nm.mu.Lock()
	cc, down := rc.c, rc.down
	nm.mu.Unlock()
	if down {
		return false
	}
	err := cc.send(m)
	if err == nil {
		return true
	}
	nm.evictDialed(cc)
	cc2, err2 := nm.dialChild(rc.addr)
	if err2 == nil {
		nm.mu.Lock()
		rc.c = cc2
		nm.mu.Unlock()
		if err = cc2.send(m); err == nil {
			return true
		}
	} else {
		err = err2
	}
	nm.mu.Lock()
	rc.down = true
	nm.mu.Unlock()
	nm.c.send(Message{PeerDown: &PeerDown{Job: job, Node: rc.node, From: nm.node, Err: err.Error()}})
	return false
}

// CacheStats returns a snapshot of the NM's chunk-cache counters and
// whether caching is enabled.
func (nm *NM) CacheStats() (chunkcache.Stats, bool) {
	if nm.cache == nil {
		return chunkcache.Stats{}, false
	}
	return nm.cache.Stats(), true
}

// spoolFrag appends an in-order verified fragment to the job's temp
// file, opening it lazily on the first fragment. No-op without a spool
// directory.
func (nm *NM) spoolFrag(job int, st *binState, f *Frag) error {
	if nm.cfg.SpoolDir == "" {
		return nil
	}
	if st.spool == nil {
		st.final = filepath.Join(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d.bin", nm.node, job))
		fh, err := os.CreateTemp(nm.cfg.SpoolDir, fmt.Sprintf("node%d-job%d-*.tmp", nm.node, job))
		if err != nil {
			return err
		}
		st.spool, st.tmp = fh, fh.Name()
	}
	_, err := st.spool.Write(f.Data)
	return err
}

// commitSpool publishes a fully verified image with close + atomic
// rename, so a reader can never observe a half-written binary.
func (st *binState) commitSpool() error {
	if st.spool == nil {
		return nil
	}
	err := st.spool.Close()
	st.spool = nil
	if err != nil {
		os.Remove(st.tmp)
		return err
	}
	if err := os.Rename(st.tmp, st.final); err != nil {
		os.Remove(st.tmp)
		return err
	}
	st.tmp = ""
	return nil
}

// discardSpool drops a partial image (abort/failure/shutdown cleanup).
func (st *binState) discardSpool() {
	if st == nil {
		return
	}
	if st.spool != nil {
		st.spool.Close()
		st.spool = nil
	}
	if st.tmp != "" {
		os.Remove(st.tmp)
		st.tmp = ""
	}
}

// advanceAck propagates one stripe's aggregated cumulative credit — the
// minimum of the local stripe-local write progress and every stripe
// child subtree's credit — up to that stripe's parent whenever it
// advances. This is the live analogue of the paper's COMPARE-AND-WRITE
// receipt check: one ack per subtree per stripe instead of one per node.
// A child the MM pruned from the stripe (ChildDead) is skipped: its
// credit will never advance again and the MM has already stopped
// counting it. A child that is merely down-but-unpruned still stalls the
// aggregate — that is deliberate, so the MM can never drain a stripe's
// window past a death it has not yet been told about.
func (nm *NM) advanceAck(job, stripe int) {
	nm.mu.Lock()
	rs := nm.relays[job]
	st := nm.bins[job]
	if rs == nil || st == nil || rs.failed || stripe < 0 || stripe >= len(rs.stripes) {
		nm.mu.Unlock()
		return
	}
	sr := rs.stripes[stripe]
	if sr.parent == nil {
		nm.mu.Unlock()
		return
	}
	min := st.received
	if st.man != nil && stripe < len(st.srecv) {
		min = st.srecv[stripe]
	}
	for _, rc := range sr.children {
		if rc.pruned {
			continue
		}
		if rc.acked < min {
			min = rc.acked
		}
	}
	if min <= sr.sentUp {
		nm.mu.Unlock()
		return
	}
	sr.sentUp = min
	parent := sr.parent
	epoch := sr.epoch
	nm.mu.Unlock()
	parent.sendAck(&FragAck{Job: job, Index: min - 1, Node: nm.node, Epoch: epoch, Stripe: stripe, OK: true})
}

// onChildDead enacts the MM's leaf-prune on one stripe: the named child
// is marked pruned (and down, so no further relays are attempted), and
// the stripe's aggregate credit is re-derived without it — typically
// unsticking an ack the dead subtree was holding back. No HAVE re-fold
// and no epoch change: the stripe's ledger round already completed and
// the surviving topology is unchanged.
func (nm *NM) onChildDead(cd *ChildDead) {
	nm.mu.Lock()
	rs := nm.relays[cd.Job]
	if rs == nil || cd.Stripe < 0 || cd.Stripe >= len(rs.stripes) {
		nm.mu.Unlock()
		return
	}
	for _, rc := range rs.stripes[cd.Stripe].children {
		if rc.node == cd.Node {
			rc.pruned = true
			rc.down = true
		}
	}
	nm.mu.Unlock()
	nm.advanceAck(cd.Job, cd.Stripe)
}

// onAbort drops a failed job's transfer state and cancels the job's
// gate, so processes that were already forked by a partial launch exit
// at their next work-chunk boundary instead of running (or sitting
// descheduled) forever. The relay links are cached and stay up for the
// next job.
func (nm *NM) onAbort(a *Abort) {
	nm.mu.Lock()
	nm.bins[a.Job].discardSpool()
	delete(nm.relays, a.Job)
	delete(nm.bins, a.Job)
	delete(nm.digests, a.Job)
	gr := nm.gates[a.Job]
	delete(nm.gates, a.Job)
	nm.mu.Unlock()
	if gr != nil {
		gr.g.cancel()
	}
}

// activeGates reports how many launched jobs still hold a gate (for
// tests asserting aborted jobs were reaped).
func (nm *NM) activeGates() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return len(nm.gates)
}

// finishJob releases a completed job's transfer state (the image digest
// is retained for inspection, the relay links for the next job).
func (nm *NM) finishJob(job int) {
	nm.mu.Lock()
	delete(nm.relays, job)
	delete(nm.bins, job)
	delete(nm.gates, job)
	nm.mu.Unlock()
}

// onLaunch forks the job's local processes, one PL goroutine per rank,
// and reports when the last one exits.
func (nm *NM) onLaunch(l *Launch) {
	nm.mu.Lock()
	st := nm.bins[l.Job]
	ready := st != nil && st.complete
	nm.mu.Unlock()
	if !ready {
		// Binary never arrived: refuse by reporting immediately; the MM
		// will see a too-early termination in its accounting.
		if !nm.testDropTerms.Load() {
			nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		}
		return
	}
	// Gang mode: processes start gated and run only when their row is
	// strobed; otherwise they free-run.
	g := newGate(!l.Gang)
	nm.mu.Lock()
	nm.gates[l.Job] = &gateRow{g: g, row: l.Row}
	nm.launches += len(l.Ranks)
	nm.mu.Unlock()
	var procs sync.WaitGroup
	for _, rank := range l.Ranks {
		procs.Add(1)
		go func(rank int) {
			defer procs.Done()
			runProgram(l.Spec.Program, rank, g)
		}(rank)
	}
	nm.wg.Add(1)
	go func() {
		defer nm.wg.Done()
		procs.Wait()
		nm.finishJob(l.Job)
		if !nm.testDropTerms.Load() {
			nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		}
	}()
}

// onStrobe enacts the coordinated context switch: open the designated
// row's gates, close the rest.
func (nm *NM) onStrobe(row int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.strobesSeen++
	for _, gr := range nm.gates {
		gr.g.set(gr.row == row)
	}
}

// runProgram executes one live application process in gate-sized chunks:
// between chunks it blocks while descheduled (its gang's gate closed).
func runProgram(p ProgramSpec, rank int, g *gate) {
	switch p.Kind {
	case "", "exit":
		// The paper's do-nothing benchmark: terminate immediately.
	case "sleep":
		remaining := p.Duration
		const slice = 5 * time.Millisecond
		for remaining > 0 {
			if !g.wait() {
				return // job aborted: exit instead of finishing the run
			}
			d := slice
			if remaining < d {
				d = remaining
			}
			time.Sleep(d)
			remaining -= d
		}
	case "spin":
		remaining := p.Duration
		x := uint64(rank + 1)
		for remaining > 0 {
			if !g.wait() {
				return
			}
			start := time.Now()
			for time.Since(start) < time.Millisecond {
				for i := 0; i < 1<<12; i++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
			}
			remaining -= time.Since(start)
		}
		_ = x
	case "sweep":
		grid := p.Grid
		if grid == 0 {
			grid = 24
		}
		iters := p.Iters
		if iters == 0 {
			iters = 10
		}
		k := workload.NewSweepKernel(grid, grid, grid)
		for i := 0; i < iters; i++ {
			if !g.wait() {
				return
			}
			k.Sweep()
		}
	}
}

// QueryStatus asks a live MM for its cluster snapshot.
func QueryStatus(addr string) (StatusRep, error) {
	c, err := dial(addr)
	if err != nil {
		return StatusRep{}, err
	}
	defer c.close()
	if err := c.send(Message{StatusQ: &StatusReq{}}); err != nil {
		return StatusRep{}, fmt.Errorf("livenet: status query: %w", err)
	}
	m, err := c.recv()
	if err != nil || m.StatusR == nil {
		return StatusRep{}, fmt.Errorf("livenet: status reply: %v", err)
	}
	return *m.StatusR, nil
}

// SubmitJob is the client call: dial the MM, submit, and wait for the
// completion report.
func SubmitJob(addr string, spec JobSpec) (Report, error) {
	c, err := dial(addr)
	if err != nil {
		return Report{}, err
	}
	defer c.close()
	if err := c.send(Message{Submit: &Submit{Spec: spec}}); err != nil {
		return Report{}, fmt.Errorf("livenet: submit: %w", err)
	}
	m, err := c.recv()
	if err != nil {
		return Report{}, fmt.Errorf("livenet: awaiting report: %w", err)
	}
	if m.Done == nil {
		return Report{}, fmt.Errorf("livenet: unexpected reply")
	}
	if m.Done.Err != "" {
		return m.Done.Report, fmt.Errorf("livenet: %s", m.Done.Err)
	}
	return m.Done.Report, nil
}
