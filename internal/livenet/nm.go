package livenet

import (
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// NMConfig tunes a live Node Manager.
type NMConfig struct {
	// PeerAddr is the listen address for relay connections from parent
	// NMs in the forwarding tree (default "127.0.0.1:0").
	PeerAddr string
}

// NM is a live Node Manager: it registers with the MM, receives binary
// fragments (from the MM or from a parent NM in the forwarding tree),
// relays them to its own tree children, aggregates acks for its subtree,
// forks processes through its Program Launchers (goroutines), and
// reports terminations and heartbeats.
type NM struct {
	node   int
	cpus   int
	c      *conn
	peerLn net.Listener

	mu      sync.Mutex
	bins    map[int]*binState   // job -> receive state
	relays  map[int]*relayState // job -> forwarding-tree state
	digests map[int]ImageDigest // job -> digest of the delivered image
	peers   map[*conn]struct{}  // inbound relay connections
	dialed  map[string]*conn    // outbound relay links, cached across jobs
	gates   map[int]*gateRow    // job -> gang gate + row

	// counters, guarded by mu: fragments verified, fragments relayed
	// downstream, processes forked, gang context switches enacted.
	fragsWritten int
	fragsRelayed int
	launches     int
	strobesSeen  int

	// testDropAcks, when set (in-package tests only), silently withholds
	// all fragment acks — the "node stops crediting the window" fault.
	testDropAcks atomic.Bool
	// testCorruptRelay, when set (in-package tests only), may mutate a
	// fragment's payload after local verification but before it is
	// relayed downstream — the mid-tree corruption hook.
	testCorruptRelay func(job, index int, data []byte)

	wg     sync.WaitGroup
	closed chan struct{}
}

// binState tracks one job's incoming binary image.
type binState struct {
	received int
	bytes    int
	crc      uint32 // running CRC-32 over the concatenated image
	complete bool
}

// ImageDigest summarizes the binary image a node received for a job:
// enough to prove byte-identical delivery across transfer topologies.
type ImageDigest struct {
	Bytes int
	Frags int
	CRC   uint32 // CRC-32 of the concatenated image bytes
}

// relayState is one job's position in the forwarding tree: where acks go
// (parent), whom to relay to (children), and how far the local write and
// each child subtree have progressed, so cumulative acks can be
// aggregated before being propagated up.
type relayState struct {
	frags    int
	parent   *conn // conn fragments arrive on; acks go back up it
	children []*relayChild
	sentUp   int // cumulative credit already propagated to the parent
	failed   bool
}

// relayChild is one downstream link of the forwarding tree.
type relayChild struct {
	node  int
	c     *conn
	acked int // cumulative credit received from this subtree
}

// gateRow couples a job's process gate with its gang timeslot row.
type gateRow struct {
	g   *gate
	row int
}

// NewNM connects a Node Manager with the given node ID to the MM at
// addr, with default configuration. cpus is the advertised processor
// count (one PL per potential process).
func NewNM(addr string, node, cpus int) (*NM, error) {
	return NewNMConfig(addr, node, cpus, NMConfig{})
}

// NewNMConfig is NewNM with explicit configuration.
func NewNMConfig(addr string, node, cpus int, cfg NMConfig) (*NM, error) {
	peerAddr := cfg.PeerAddr
	if peerAddr == "" {
		peerAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", peerAddr)
	if err != nil {
		return nil, fmt.Errorf("livenet: peer listen %s: %w", peerAddr, err)
	}
	c, err := dial(addr)
	if err != nil {
		ln.Close()
		return nil, err
	}
	nm := &NM{node: node, cpus: cpus, c: c, peerLn: ln,
		bins:    make(map[int]*binState),
		relays:  make(map[int]*relayState),
		digests: make(map[int]ImageDigest),
		peers:   make(map[*conn]struct{}),
		dialed:  make(map[string]*conn),
		gates:   make(map[int]*gateRow),
		closed:  make(chan struct{})}
	if err := c.send(Message{Register: &Register{Node: node, CPUs: cpus, Addr: ln.Addr().String()}}); err != nil {
		c.close()
		ln.Close()
		return nil, fmt.Errorf("livenet: register: %w", err)
	}
	nm.wg.Add(2)
	go nm.loop()
	go nm.acceptPeers()
	return nm, nil
}

// Node returns the NM's node ID.
func (nm *NM) Node() int { return nm.node }

// PeerAddr returns the NM's relay listener address.
func (nm *NM) PeerAddr() string { return nm.peerLn.Addr().String() }

// FragsWritten returns the number of verified fragments written.
func (nm *NM) FragsWritten() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsWritten
}

// FragsRelayed returns the number of fragment copies forwarded to tree
// children.
func (nm *NM) FragsRelayed() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.fragsRelayed
}

// Launches returns the number of processes forked.
func (nm *NM) Launches() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.launches
}

// StrobesSeen returns the number of gang context switches enacted.
func (nm *NM) StrobesSeen() int {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.strobesSeen
}

// ImageDigest returns the digest of the binary image this node received
// for job (retained after the job completes), and whether the image was
// fully delivered.
func (nm *NM) ImageDigest(job int) (ImageDigest, bool) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	d, ok := nm.digests[job]
	return d, ok
}

// Close disconnects the NM (simulating a node failure if abrupt).
func (nm *NM) Close() {
	select {
	case <-nm.closed:
	default:
		close(nm.closed)
	}
	nm.c.close()
	nm.peerLn.Close()
	nm.mu.Lock()
	for pc := range nm.peers {
		pc.close()
	}
	for _, cc := range nm.dialed {
		cc.close()
	}
	nm.mu.Unlock()
	nm.wg.Wait()
}

func (nm *NM) loop() {
	defer nm.wg.Done()
	for {
		m, err := nm.c.recv()
		if err != nil {
			return
		}
		switch {
		case m.Frag != nil:
			nm.handleFrag(m.Frag, nm.c)
		case m.Plan != nil:
			nm.onPlan(m.Plan)
		case m.Abort != nil:
			nm.onAbort(m.Abort)
		case m.Launch != nil:
			nm.onLaunch(m.Launch)
		case m.Ping != nil:
			nm.c.send(Message{Pong: &Pong{Seq: m.Ping.Seq, Node: nm.node}})
		case m.Strobe != nil:
			nm.onStrobe(m.Strobe.Row)
		}
	}
}

// acceptPeers serves relay connections from parent NMs.
func (nm *NM) acceptPeers() {
	defer nm.wg.Done()
	for {
		nc, err := nm.peerLn.Accept()
		if err != nil {
			return // listener closed
		}
		pc := newConn(nc)
		nm.mu.Lock()
		nm.peers[pc] = struct{}{}
		nm.mu.Unlock()
		nm.wg.Add(1)
		go nm.servePeer(pc)
	}
}

// servePeer pumps fragments arriving from a parent NM; acks flow back on
// the same connection.
func (nm *NM) servePeer(pc *conn) {
	defer nm.wg.Done()
	defer func() {
		nm.mu.Lock()
		delete(nm.peers, pc)
		nm.mu.Unlock()
		pc.close()
	}()
	for {
		m, err := pc.recv()
		if err != nil {
			return
		}
		if m.Frag != nil {
			nm.handleFrag(m.Frag, pc)
		}
	}
}

// onPlan prepares a job's forwarding-tree role: resolve the relay
// children to (cached) peer connections and confirm to the MM. The MM
// does not stream until every node confirmed, so fragments can never
// outrun the tree.
func (nm *NM) onPlan(p *Plan) {
	st := &relayState{frags: p.Frags}
	for _, ref := range p.Children {
		cc, err := nm.peerConn(ref.Addr)
		if err != nil {
			nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node,
				Err: fmt.Sprintf("dial child %d: %v", ref.Node, err)}})
			return
		}
		st.children = append(st.children, &relayChild{node: ref.Node, c: cc})
	}
	nm.mu.Lock()
	nm.relays[p.Job] = st
	nm.mu.Unlock()
	nm.c.send(Message{PlanAck: &PlanAck{Job: p.Job, Node: nm.node}})
}

// peerConn returns the relay connection to a downstream NM, dialing it
// and starting its ack pump on first use. Links are cached across jobs
// and closed only when the NM shuts down: re-dialing the tree on every
// launch would put n-1 TCP handshakes on each job's critical path.
func (nm *NM) peerConn(addr string) (*conn, error) {
	nm.mu.Lock()
	cc, ok := nm.dialed[addr]
	nm.mu.Unlock()
	if ok {
		return cc, nil
	}
	cc, err := dial(addr)
	if err != nil {
		return nil, err
	}
	nm.mu.Lock()
	nm.dialed[addr] = cc
	nm.mu.Unlock()
	nm.wg.Add(1)
	go nm.pumpChildAcks(cc)
	return cc, nil
}

// pumpChildAcks reads one downstream link's acks — for every job routed
// over it — and folds them into the owning job's aggregated credit.
func (nm *NM) pumpChildAcks(cc *conn) {
	defer nm.wg.Done()
	for {
		m, err := cc.recv()
		if err != nil {
			return
		}
		a := m.FragAck
		if a == nil {
			continue
		}
		if !a.OK {
			// A node below rejected: forward the failure up unchanged so
			// the MM learns the true origin.
			nm.mu.Lock()
			rs := nm.relays[a.Job]
			var parent *conn
			if rs != nil {
				rs.failed = true
				parent = rs.parent
			}
			nm.mu.Unlock()
			if parent != nil {
				parent.sendAck(a)
			}
			continue
		}
		nm.mu.Lock()
		if rs := nm.relays[a.Job]; rs != nil {
			for _, rc := range rs.children {
				if rc.c == cc && a.Index+1 > rc.acked {
					rc.acked = a.Index + 1
				}
			}
		}
		nm.mu.Unlock()
		nm.advanceAck(a.Job)
	}
}

// handleFrag relays one binary fragment down the forwarding tree, then
// verifies and "writes" it (to the in-memory RAM disk) and advances the
// aggregated ack. The relay happens first, straight from the received
// pooled buffer, so per-hop latency is receive+forward and the CRC work
// of every level overlaps the downstream transmission; corruption is
// caught by each node's own check and nacked up the tree. from is the
// connection the fragment arrived on — the MM link for tree roots, a
// peer link otherwise — and is where this node's (aggregated) acks go.
func (nm *NM) handleFrag(f *Frag, from *conn) {
	nm.mu.Lock()
	rs := nm.relays[f.Job]
	if rs == nil {
		// Fragment without a plan (cannot happen with the plan barrier;
		// tolerated as a leaf role for robustness).
		rs = &relayState{frags: -1}
		nm.relays[f.Job] = rs
	}
	if rs.parent == nil {
		rs.parent = from
	}
	children := rs.children
	drop := nm.testDropAcks.Load()
	nm.mu.Unlock()

	// Relay downstream from the same buffer: one encode at the MM serves
	// the entire tree.
	if len(children) > 0 {
		forward := f
		if nm.testCorruptRelay != nil {
			// Test-only path: corrupt a private copy so the fault models a
			// bad relay link, not bad local memory.
			tmp := grabFragBuf(len(f.Data))
			copy(tmp, f.Data)
			nm.testCorruptRelay(f.Job, f.Index, tmp)
			forward = &Frag{Job: f.Job, Index: f.Index, Last: f.Last, Data: tmp, CRC: f.CRC}
			defer releaseFragBuf(tmp)
		}
		relayed := 0
		for _, rc := range children {
			if err := rc.c.sendFrag(forward); err == nil {
				relayed++
			}
		}
		nm.mu.Lock()
		nm.fragsRelayed += relayed
		nm.mu.Unlock()
	}

	// The CRC and content checks run in place against the deterministic
	// pattern — no per-fragment allocation (TestFragCheckAllocs).
	ok := fragCRC(f.Data) == f.CRC && fragPatternCheck(f.Job, f.Index, f.Data)
	nm.mu.Lock()
	st := nm.bins[f.Job]
	if st == nil {
		st = &binState{}
		nm.bins[f.Job] = st
	}
	if ok && f.Index == st.received {
		st.received++
		st.bytes += len(f.Data)
		st.crc = crc32.Update(st.crc, crc32.IEEETable, f.Data)
		st.complete = f.Last
		nm.fragsWritten++
		if f.Last {
			nm.digests[f.Job] = ImageDigest{Bytes: st.bytes, Frags: st.received, CRC: st.crc}
		}
	} else if ok {
		// Out-of-order fragment on an in-order stream: reject.
		ok = false
	}
	if !ok {
		rs.failed = true
	}
	nm.mu.Unlock()
	releaseFragBuf(f.Data)
	if drop {
		return
	}
	if !ok {
		from.sendAck(&FragAck{Job: f.Job, Index: f.Index, Node: nm.node, OK: false})
		return
	}
	nm.advanceAck(f.Job)
}

// advanceAck propagates the aggregated cumulative credit — the minimum
// of the local write progress and every child subtree's credit — up to
// the parent whenever it advances. This is the live analogue of the
// paper's COMPARE-AND-WRITE receipt check: one ack per subtree instead
// of one per node.
func (nm *NM) advanceAck(job int) {
	nm.mu.Lock()
	rs := nm.relays[job]
	st := nm.bins[job]
	if rs == nil || st == nil || rs.failed || rs.parent == nil {
		nm.mu.Unlock()
		return
	}
	min := st.received
	for _, rc := range rs.children {
		if rc.acked < min {
			min = rc.acked
		}
	}
	if min <= rs.sentUp {
		nm.mu.Unlock()
		return
	}
	rs.sentUp = min
	parent := rs.parent
	nm.mu.Unlock()
	parent.sendAck(&FragAck{Job: job, Index: min - 1, Node: nm.node, OK: true})
}

// onAbort drops a failed job's transfer state. The relay links are
// cached and stay up for the next job.
func (nm *NM) onAbort(a *Abort) {
	nm.mu.Lock()
	delete(nm.relays, a.Job)
	delete(nm.bins, a.Job)
	delete(nm.digests, a.Job)
	nm.mu.Unlock()
}

// finishJob releases a completed job's transfer state (the image digest
// is retained for inspection, the relay links for the next job).
func (nm *NM) finishJob(job int) {
	nm.mu.Lock()
	delete(nm.relays, job)
	delete(nm.bins, job)
	delete(nm.gates, job)
	nm.mu.Unlock()
}

// onLaunch forks the job's local processes, one PL goroutine per rank,
// and reports when the last one exits.
func (nm *NM) onLaunch(l *Launch) {
	nm.mu.Lock()
	st := nm.bins[l.Job]
	ready := st != nil && st.complete
	nm.mu.Unlock()
	if !ready {
		// Binary never arrived: refuse by reporting immediately; the MM
		// will see a too-early termination in its accounting.
		nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
		return
	}
	// Gang mode: processes start gated and run only when their row is
	// strobed; otherwise they free-run.
	g := newGate(!l.Gang)
	nm.mu.Lock()
	nm.gates[l.Job] = &gateRow{g: g, row: l.Row}
	nm.launches += len(l.Ranks)
	nm.mu.Unlock()
	var procs sync.WaitGroup
	for _, rank := range l.Ranks {
		procs.Add(1)
		go func(rank int) {
			defer procs.Done()
			runProgram(l.Spec.Program, rank, g)
		}(rank)
	}
	nm.wg.Add(1)
	go func() {
		defer nm.wg.Done()
		procs.Wait()
		nm.finishJob(l.Job)
		nm.c.send(Message{Term: &Term{Job: l.Job, Node: nm.node}})
	}()
}

// onStrobe enacts the coordinated context switch: open the designated
// row's gates, close the rest.
func (nm *NM) onStrobe(row int) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.strobesSeen++
	for _, gr := range nm.gates {
		gr.g.set(gr.row == row)
	}
}

// runProgram executes one live application process in gate-sized chunks:
// between chunks it blocks while descheduled (its gang's gate closed).
func runProgram(p ProgramSpec, rank int, g *gate) {
	switch p.Kind {
	case "", "exit":
		// The paper's do-nothing benchmark: terminate immediately.
	case "sleep":
		remaining := p.Duration
		const slice = 5 * time.Millisecond
		for remaining > 0 {
			g.wait()
			d := slice
			if remaining < d {
				d = remaining
			}
			time.Sleep(d)
			remaining -= d
		}
	case "spin":
		remaining := p.Duration
		x := uint64(rank + 1)
		for remaining > 0 {
			g.wait()
			start := time.Now()
			for time.Since(start) < time.Millisecond {
				for i := 0; i < 1<<12; i++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
			}
			remaining -= time.Since(start)
		}
		_ = x
	case "sweep":
		grid := p.Grid
		if grid == 0 {
			grid = 24
		}
		iters := p.Iters
		if iters == 0 {
			iters = 10
		}
		k := workload.NewSweepKernel(grid, grid, grid)
		for i := 0; i < iters; i++ {
			g.wait()
			k.Sweep()
		}
	}
}

// QueryStatus asks a live MM for its cluster snapshot.
func QueryStatus(addr string) (StatusRep, error) {
	c, err := dial(addr)
	if err != nil {
		return StatusRep{}, err
	}
	defer c.close()
	if err := c.send(Message{StatusQ: &StatusReq{}}); err != nil {
		return StatusRep{}, fmt.Errorf("livenet: status query: %w", err)
	}
	m, err := c.recv()
	if err != nil || m.StatusR == nil {
		return StatusRep{}, fmt.Errorf("livenet: status reply: %v", err)
	}
	return *m.StatusR, nil
}

// SubmitJob is the client call: dial the MM, submit, and wait for the
// completion report.
func SubmitJob(addr string, spec JobSpec) (Report, error) {
	c, err := dial(addr)
	if err != nil {
		return Report{}, err
	}
	defer c.close()
	if err := c.send(Message{Submit: &Submit{Spec: spec}}); err != nil {
		return Report{}, fmt.Errorf("livenet: submit: %w", err)
	}
	m, err := c.recv()
	if err != nil {
		return Report{}, fmt.Errorf("livenet: awaiting report: %w", err)
	}
	if m.Done == nil {
		return Report{}, fmt.Errorf("livenet: unexpected reply")
	}
	if m.Done.Err != "" {
		return m.Done.Report, fmt.Errorf("livenet: %s", m.Done.Err)
	}
	return m.Done.Report, nil
}
