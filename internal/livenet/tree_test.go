package livenet

import (
	"reflect"
	"sort"
	"testing"
)

// TestTreePartition: for any (n, fanout), the MM's subtrees partition
// the positions 0..n-1 — every node receives the binary exactly once.
func TestTreePartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 17, 64} {
		for _, fanout := range []int{1, 2, 3, 4, 8} {
			seen := map[int]int{}
			for _, root := range mmChildren(n, fanout) {
				for _, p := range subtreeNodes(root, n, fanout) {
					seen[p]++
				}
			}
			if len(seen) != n {
				t.Fatalf("n=%d fanout=%d: %d positions covered, want %d", n, fanout, len(seen), n)
			}
			for p, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d fanout=%d: position %d covered %d times", n, fanout, p, c)
				}
				if p < 0 || p >= n {
					t.Fatalf("n=%d fanout=%d: position %d out of range", n, fanout, p)
				}
			}
		}
	}
}

// TestTreeFlatDegenerates: fanout 1 is the flat fan-out — the MM streams
// to everyone and nobody relays.
func TestTreeFlatDegenerates(t *testing.T) {
	n := 9
	if got := mmChildren(n, 1); len(got) != n {
		t.Fatalf("flat mmChildren = %v", got)
	}
	for p := 0; p < n; p++ {
		if kids := nodeChildren(p, n, 1); len(kids) != 0 {
			t.Fatalf("flat node %d has children %v", p, kids)
		}
	}
	if d := treeDepth(n, 1); d != 1 {
		t.Fatalf("flat depth = %d", d)
	}
}

// TestTreeLogDepth: the binomial/k-ary tree keeps depth logarithmic —
// the property that makes broadcast cost O(log n) instead of O(n).
func TestTreeLogDepth(t *testing.T) {
	cases := []struct{ n, fanout, maxDepth int }{
		{16, 2, 4},
		{64, 2, 6},
		{64, 4, 3},
		{256, 4, 4},
		{2, 2, 1},
	}
	for _, c := range cases {
		if d := treeDepth(c.n, c.fanout); d > c.maxDepth {
			t.Errorf("treeDepth(%d, %d) = %d, want <= %d", c.n, c.fanout, d, c.maxDepth)
		}
	}
}

// TestTreeChildrenShape: spot-check the heap layout.
func TestTreeChildrenShape(t *testing.T) {
	// n=7, k=2: MM -> {0,1}; 0 -> {2,3}; 1 -> {4,5}; 2 -> {6}.
	if got := mmChildren(7, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("mmChildren(7,2) = %v", got)
	}
	if got := nodeChildren(0, 7, 2); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("nodeChildren(0,7,2) = %v", got)
	}
	if got := nodeChildren(1, 7, 2); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Fatalf("nodeChildren(1,7,2) = %v", got)
	}
	if got := nodeChildren(2, 7, 2); !reflect.DeepEqual(got, []int{6}) {
		t.Fatalf("nodeChildren(2,7,2) = %v", got)
	}
	sub := subtreeNodes(0, 7, 2)
	sort.Ints(sub)
	if !reflect.DeepEqual(sub, []int{0, 2, 3, 6}) {
		t.Fatalf("subtreeNodes(0,7,2) = %v", sub)
	}
}
