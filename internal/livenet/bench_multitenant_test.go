package livenet

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// BenchmarkSustainedLaunch is the multi-tenant headline benchmark:
// jobs arrive as a Poisson process at several offered rates, with cold
// (every image distinct) and warm-cache (identical seeded image)
// variants, and the MM admits and streams them concurrently over the
// shared relay links. Reported per point: sustained launches/sec over
// the whole run and the p50/p99 end-to-end launch latency (queue wait
// included). A final overlap sub-benchmark runs the same 8 small jobs
// serially and concurrently and reports the throughput ratio.
//
// After the sub-benchmarks it merges a `multi_tenant` section into
// BENCH_livenet.json.
//
//	go test -run '^$' -bench BenchmarkSustainedLaunch -benchtime=1x ./internal/livenet/
func BenchmarkSustainedLaunch(b *testing.B) {
	// Geometry sized so a cold launch costs a few ms of CPU: on a
	// small shared host the transfer path is compute-bound (chunk
	// generation, hashing, per-hop CRC and splice), so offered rates are
	// chosen under the single-core service capacity and the multi-tenant
	// win comes from overlapping transfers with execute phases and queue
	// waits, not from parallel CRC crunching.
	const (
		nodes       = 8
		fanout      = 2
		fragBytes   = 64 << 10
		binaryBytes = 512 << 10
		jobsPerRun  = 32
		warmSeed    = 0x3A17
	)
	type point struct {
		Mode            string  `json:"mode"`
		RatePerSec      float64 `json:"offered_rate_per_sec"`
		Jobs            int     `json:"jobs"`
		SustainedPerSec float64 `json:"sustained_launches_per_sec"`
		P50MS           float64 `json:"latency_p50_ms"`
		P99MS           float64 `json:"latency_p99_ms"`
		MeanQueuedMS    float64 `json:"mean_queued_ms"`
	}
	newCluster := func(b *testing.B) (*MM, func()) {
		mm, _, shutdown := chaosCluster(b, nodes,
			MMConfig{Fanout: fanout, FragBytes: fragBytes, MaxConcurrent: 8},
			func(int) NMConfig { return NMConfig{CacheBytes: 64 << 20} })
		return mm, shutdown
	}
	spec := func(seed uint64) JobSpec {
		return JobSpec{
			Name: "tenant", User: "bench", BinaryBytes: binaryBytes,
			Nodes: nodes, PEsPerNode: 1, ImageSeed: seed,
			Program: ProgramSpec{Kind: "exit"},
		}
	}
	// run offers jobsPerRun jobs at Poisson rate per second (seeded
	// splitmix interarrivals, deterministic per rate) and measures the
	// completed-launch throughput and latency distribution.
	run := func(b *testing.B, mode string, rate float64) point {
		mm, shutdown := newCluster(b)
		defer shutdown()
		if mode == "warm" {
			if _, err := mm.RunJob(spec(warmSeed)); err != nil {
				b.Fatal(err)
			}
		}
		r := rng.New(0xBEEF + uint64(rate*1000))
		arrivals := make([]time.Duration, jobsPerRun)
		var at time.Duration
		for i := range arrivals {
			// Exponential interarrival: -ln(1-U)/rate.
			at += time.Duration(-math.Log(1-r.Float64()) / rate * float64(time.Second))
			arrivals[i] = at
		}
		lat := make([]time.Duration, jobsPerRun)
		queued := make([]time.Duration, jobsPerRun)
		errs := make([]error, jobsPerRun)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < jobsPerRun; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if d := arrivals[i] - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				seed := uint64(warmSeed)
				if mode == "cold" {
					// A distinct seed per job keeps every image cold.
					seed = 0xC01D<<16 + uint64(i) + uint64(rate*1000)<<32
				}
				t0 := time.Now()
				rep, err := mm.RunJob(spec(seed))
				lat[i] = time.Since(t0)
				queued[i] = rep.Queued
				if err == nil && mode == "warm" && rep.ChunksSent != 0 {
					err = fmt.Errorf("warm launch streamed %d chunks, want 0", rep.ChunksSent)
				}
				errs[i] = err
			}(i)
		}
		wg.Wait()
		makespan := time.Since(start)
		var latMS metrics.Sample
		var queuedSum time.Duration
		for i := 0; i < jobsPerRun; i++ {
			if errs[i] != nil {
				b.Fatalf("%s job %d at rate %.0f/s: %v", mode, i, rate, errs[i])
			}
			latMS.Add(float64(lat[i]) / float64(time.Millisecond))
			queuedSum += queued[i]
		}
		return point{
			Mode:            mode,
			RatePerSec:      rate,
			Jobs:            jobsPerRun,
			SustainedPerSec: float64(jobsPerRun) / makespan.Seconds(),
			P50MS:           latMS.Percentile(50),
			P99MS:           latMS.Percentile(99),
			MeanQueuedMS:    float64(queuedSum) / float64(jobsPerRun) / float64(time.Millisecond),
		}
	}

	points := map[string]point{}
	var keys []string
	for _, mode := range []string{"cold", "warm"} {
		for _, rate := range []float64{10, 40} {
			name := fmt.Sprintf("%s/rate=%.0f", mode, rate)
			b.Run(name, func(b *testing.B) {
				var best point
				for i := 0; i < b.N; i++ {
					p := run(b, mode, rate)
					if best.SustainedPerSec == 0 || p.SustainedPerSec > best.SustainedPerSec {
						best = p
					}
				}
				b.ReportMetric(best.SustainedPerSec, "launches/sec")
				b.ReportMetric(best.P50MS, "p50-ms")
				b.ReportMetric(best.P99MS, "p99-ms")
				prev, seen := points[name]
				if !seen {
					keys = append(keys, name)
				}
				if !seen || best.SustainedPerSec > prev.SustainedPerSec {
					points[name] = best
				}
			})
		}
	}

	// Overlap acceptance: the same 8 small jobs, submitted back-to-back
	// serially vs all at once, with a short execute phase each — the
	// concurrent pipeline should sustain several times the serial
	// launches/sec because transfers and executions overlap.
	type overlapResult struct {
		Jobs             int     `json:"jobs"`
		SerialPerSec     float64 `json:"serial_launches_per_sec"`
		ConcurrentPerSec float64 `json:"concurrent_launches_per_sec"`
		Speedup          float64 `json:"speedup"`
	}
	var overlap overlapResult
	b.Run("overlap-8x", func(b *testing.B) {
		smallSpec := func(i int) JobSpec {
			return JobSpec{
				Name: fmt.Sprintf("small-%d", i), User: "bench",
				BinaryBytes: 256 << 10, Nodes: nodes, PEsPerNode: 1,
				ImageSeed: 0x5A<<8 + uint64(i),
				Program:   ProgramSpec{Kind: "sleep", Duration: 150 * time.Millisecond},
			}
		}
		const jobs = 8
		best := overlapResult{Jobs: jobs}
		for n := 0; n < b.N; n++ {
			mm, shutdown := newCluster(b)
			t0 := time.Now()
			for i := 0; i < jobs; i++ {
				if _, err := mm.RunJob(smallSpec(i)); err != nil {
					b.Fatal(err)
				}
			}
			serial := time.Since(t0)
			// Fresh image seeds so the concurrent pass is as cold as the
			// serial one was.
			conc := func(i int) JobSpec {
				s := smallSpec(i)
				s.ImageSeed += 0x100000
				return s
			}
			t0 = time.Now()
			var wg sync.WaitGroup
			errs := make([]error, jobs)
			for i := 0; i < jobs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = mm.RunJob(conc(i))
				}(i)
			}
			wg.Wait()
			concurrent := time.Since(t0)
			shutdown()
			for i, err := range errs {
				if err != nil {
					b.Fatalf("concurrent job %d: %v", i, err)
				}
			}
			r := overlapResult{
				Jobs:             jobs,
				SerialPerSec:     jobs / serial.Seconds(),
				ConcurrentPerSec: jobs / concurrent.Seconds(),
				Speedup:          serial.Seconds() / concurrent.Seconds(),
			}
			if best.Speedup == 0 || r.Speedup > best.Speedup {
				best = r
			}
		}
		overlap = best
		b.ReportMetric(best.Speedup, "overlap-speedup")
		b.Logf("8-job overlap: serial %.1f launches/sec, concurrent %.1f launches/sec (%.1fx)",
			best.SerialPerSec, best.ConcurrentPerSec, best.Speedup)
	})

	if len(keys) == 0 {
		return
	}
	series := make([]point, 0, len(keys))
	for _, k := range keys {
		series = append(series, points[k])
	}
	mergeBenchSummary(b, map[string]any{
		"multi_tenant": map[string]any{
			"nodes":          nodes,
			"fanout":         fanout,
			"binary_bytes":   binaryBytes,
			"frag_bytes":     fragBytes,
			"max_concurrent": 8,
			"admission":      "fifo",
			"series":         series,
			"overlap_8x":     overlap,
		},
	})
}
