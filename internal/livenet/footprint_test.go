package livenet

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/testutil"
)

// footprintNodes is sized so per-NM constants dominate the fixed
// process overhead (MM, hub, test harness) in the per-NM quotient.
const footprintNodes = 64

// TestPerNMFootprint enforces the profiling-driven footprint budget
// that makes 512–1024 in-process NMs possible. The seed design cost
// 3.02 goroutines and ~261 KiB of heap per idle NM (measured at 64
// NMs): 3 goroutines (NM loop, NM accept loop, MM-side serve) and two
// 64 KiB-buffered conn pairs. Hub mode deletes the per-NM listener and
// accept goroutine; the lite profile shrinks the bufio pairs to 8 KiB;
// the persistent per-link gob codec buys its launch-path CPU win at
// ~50 KiB of compiled type state per MM link. The ceilings below are
// generous against the measured post-change numbers (~2.05 goroutines,
// ~89 KiB per NM) but far below the seed — a regression to per-NM
// accept loops or bulk buffers trips them immediately.
func TestPerNMFootprint(t *testing.T) {
	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	baseG := runtime.NumGoroutine()
	baseH := heapNow()

	hub, err := NewPeerHub("")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	mm, err := NewMM("127.0.0.1:0", MMConfig{Lite: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	var nms []*NM
	defer func() {
		for _, nm := range nms {
			nm.Close()
		}
	}()
	for i := 0; i < footprintNodes; i++ {
		nm, err := NewNMConfig(mm.Addr(), i, 4, NMConfig{Hub: hub, Lite: true})
		if err != nil {
			t.Fatal(err)
		}
		nms = append(nms, nm)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(mm.NMs()) < footprintNodes {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d NMs registered", len(mm.NMs()), footprintNodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	perG := float64(runtime.NumGoroutine()-baseG) / footprintNodes
	perH := float64(heapNow()-baseH) / footprintNodes
	t.Logf("idle footprint: %.2f goroutines/NM, %.1f KiB/NM (seed: 3.02, 261.0)", perG, perH/1024)
	// 2 structural goroutines per NM (its loop + the MM-side serve), a
	// hair of slack for shared machinery amortized across 64 nodes.
	if perG > 2.5 {
		t.Fatalf("idle goroutines/NM = %.2f, budget 2.5 (seed was 3.02) — per-NM accept loops are back?", perG)
	}
	if perH > 128*1024 {
		t.Fatalf("idle heap/NM = %.1f KiB, budget 128 KiB (seed was ~261) — bulk buffers on lite conns?", perH/1024)
	}

	// A launch must not permanently grow the per-NM goroutine count:
	// transfer goroutines and relay pumps are job-scoped and must be
	// reaped when the job ends.
	launched := runtime.NumGoroutine()
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "fp", BinaryBytes: 512 << 10, Nodes: footprintNodes, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"}, ImageSeed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	// Post-launch the tree edges stay warm — one inbound serve plus one
	// outbound pump per live relay edge is inherent (the seed paid the
	// same ~2/edge) — so settle to launched + 2 goroutines per node
	// rather than the idle baseline. Job-scoped transfer goroutines
	// beyond that must be reaped.
	testutil.WaitForGoroutines(t, launched+2*footprintNodes, 10*time.Second)
}
