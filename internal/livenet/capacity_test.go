package livenet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/place"
)

// TestConcurrentAdmissionsNeverOversubscribe is the capacity-safety
// property test: with every node declaring a hard capacity, concurrent
// job streams (seeded, race-enabled) must never drive any node's
// committed usage past its declared capacity at any observable instant,
// and every commitment must unwind when the jobs drain.
func TestConcurrentAdmissionsNeverOversubscribe(t *testing.T) {
	cap := place.Vec{CPU: 4, Mem: 4096, Net: 100}
	mm, _, shutdown := chaosCluster(t, 8, MMConfig{}, func(node int) NMConfig {
		return NMConfig{Cap: cap}
	})
	defer shutdown()

	// Sampler: watch the node table for oversubscription while jobs fly.
	stop := make(chan struct{})
	violation := make(chan string, 1)
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			for _, ni := range mm.NodeTable() {
				if !cap.Fits(ni.Used) {
					select {
					case violation <- fmt.Sprintf("node %d used %v exceeds cap %v", ni.Node, ni.Used, cap):
					default:
					}
					return
				}
			}
		}
	}()

	// 6 submitters × 3 jobs, 3 nodes × 1 CPU each: worst-case in-flight
	// demand is 18 CPUs against 32 declared, so every placement is
	// feasible and any failure is a real bug.
	const submitters, jobsEach = 6, 3
	demand := place.Vec{CPU: 1, Mem: 512, Net: 10}
	var wg sync.WaitGroup
	errs := make(chan error, submitters*jobsEach)
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for k := 0; k < jobsEach; k++ {
				_, err := mm.RunJob(JobSpec{
					Name: fmt.Sprintf("cap-%d-%d", g, k), BinaryBytes: 64 << 10,
					Nodes: 3, PEsPerNode: 1, Demand: demand,
					Program: ProgramSpec{Kind: "sleep", Duration: time.Duration(5+rng.Intn(15)) * time.Millisecond},
				})
				if err != nil {
					errs <- fmt.Errorf("submitter %d job %d: %w", g, k, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case v := <-violation:
		t.Fatalf("oversubscription observed: %s", v)
	default:
	}
	// All commitments must have unwound.
	for _, ni := range mm.NodeTable() {
		if !ni.Used.IsZero() || ni.Load != 0 {
			t.Fatalf("node %d still charged after drain: used %v load %d", ni.Node, ni.Used, ni.Load)
		}
	}
}

// TestDemandRefusedWhenNoNodeFits pins the capacity error path: a
// demand no node can host fails fast with the capacity-aware message,
// while a zero demand on the same cluster still places.
func TestDemandRefusedWhenNoNodeFits(t *testing.T) {
	mm, _, shutdown := chaosCluster(t, 4, MMConfig{}, func(node int) NMConfig {
		return NMConfig{Cap: place.Vec{CPU: 2, Mem: 1024, Net: 10}}
	})
	defer shutdown()
	_, err := mm.RunJob(JobSpec{
		Name: "fat", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
		Demand:  place.Vec{CPU: 3},
		Program: ProgramSpec{Kind: "exit"},
	})
	if err == nil {
		t.Fatal("oversized demand was placed")
	}
	if _, err := mm.RunJob(JobSpec{
		Name: "thin", BinaryBytes: 64 << 10, Nodes: 4, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}); err != nil {
		t.Fatalf("zero-demand job refused: %v", err)
	}
}

// placementTrace runs a fixed placement script against a fresh engine
// snapshot of the given policy and returns the byte-exact transcript.
// In-package access: placeJob runs under mm.mu exactly as admission
// does.
func placementTrace(t *testing.T, policy string) string {
	t.Helper()
	mm, _, shutdown := chaosCluster(t, 8, MMConfig{Placement: policy}, func(node int) NMConfig {
		return NMConfig{Cap: place.Vec{CPU: 4, Mem: 2048, Net: 100}}
	})
	defer shutdown()
	out := ""
	mm.mu.Lock()
	defer mm.mu.Unlock()
	script := []struct {
		nodes  int
		demand place.Vec
		avoid  map[int]bool
	}{
		{3, place.Vec{}, nil},
		{2, place.Vec{CPU: 2}, nil},
		{4, place.Vec{CPU: 1, Mem: 256}, map[int]bool{1: true}},
		{2, place.Vec{Mem: 1024}, map[int]bool{0: true, 5: true}},
		{3, place.Vec{CPU: 1}, nil},
	}
	for i, s := range script {
		spec := JobSpec{Nodes: s.nodes, Demand: s.demand}
		links, err := mm.placeJob(&spec, s.avoid)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		out += fmt.Sprintf("step %d:", i)
		for _, l := range links {
			out += fmt.Sprintf(" %d", l.node)
			mm.place.Commit(l.node, s.demand)
		}
		out += "\n"
	}
	return out
}

// TestPlacementTraceByteIdentical is the determinism regression for the
// engine-backed placement: the same script on a fresh cluster produces
// the identical transcript on every run, under both policies.
func TestPlacementTraceByteIdentical(t *testing.T) {
	for _, policy := range []string{"spread", "locality"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			first := placementTrace(t, policy)
			for run := 1; run < 3; run++ {
				if got := placementTrace(t, policy); got != first {
					t.Fatalf("run %d diverged:\n--- first ---\n%s--- run %d ---\n%s", run, first, run, got)
				}
			}
		})
	}
}

// TestLocalityPolicyPacksCluster checks the live wiring end to end: a
// locality MM places a gang in one aligned block even when spread would
// scatter it across the load skew.
func TestLocalityPolicyPacksCluster(t *testing.T) {
	mm, _, shutdown := chaosCluster(t, 16, MMConfig{Placement: "locality"}, nil)
	defer shutdown()
	mm.mu.Lock()
	// Busy the low half's even nodes: spread would hop to the idle odd
	// IDs; locality should take the contiguous idle block 8..15.
	for id := 0; id < 8; id++ {
		mm.place.Commit(id, place.Vec{})
	}
	spec := JobSpec{Nodes: 8}
	links, err := mm.placeJob(&spec, nil)
	mm.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if l.node < 8 {
			t.Fatalf("locality placement left its block: node %d", l.node)
		}
	}
}
