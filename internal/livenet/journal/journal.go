// Package journal is the MM's durable event log: a compact append-only,
// CRC-framed write-ahead log of cluster events (job admission, placement,
// epoch bumps, launch, completion, membership changes) that a restarted
// Machine Manager replays to rebuild its job table. The format favors
// the MM's actual write pattern — a few hundred bytes per job, flushed
// per event — over general-purpose durability machinery:
//
//	segment file:  journal-000001.wal, journal-000002.wal, ...
//	record frame:  u32 payload length | u32 CRC-32(payload) | payload
//	payload:       u8 type | i64 job | i64 node | u32 dlen | dlen bytes
//
// Records append to the highest-numbered segment. Rotation is atomic:
// the caller supplies a snapshot of the live state, which is written to
// a temp file, synced, renamed to the next segment number, and only then
// are the older segments deleted — a crash at any point leaves either
// the old segments or a complete new one, never neither. Replay walks
// the segments in order and stops at the first torn or corrupt frame
// (the tail a crash mid-append leaves behind), so a half-written record
// is indistinguishable from a clean end of log.
//
// The package holds no livenet types: event payloads are opaque bytes
// (the MM gob-encodes job specs into Data), so journal can be tested —
// and reused — on its own.
package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// EventType tags one journal record.
type EventType uint8

const (
	// JobAdmitted records a job entering the admission queue; Data
	// carries the encoded spec so a restart can resubmit it.
	JobAdmitted EventType = iota + 1
	// JobPlanned records placement: the job owns nodes and a tree.
	JobPlanned
	// JobEpoch records a mid-transfer replan (tree generation bump).
	JobEpoch
	// JobManifest records the manifest round opening a streaming epoch.
	JobManifest
	// JobLaunched records process launch on every surviving node.
	JobLaunched
	// JobDone and JobFailed close a job's record; a job with neither at
	// replay time was in flight when the MM died.
	JobDone
	JobFailed
	// NodeJoin, NodeDead, and NodeRejoin are membership changes.
	NodeJoin
	NodeDead
	NodeRejoin
)

func (t EventType) String() string {
	switch t {
	case JobAdmitted:
		return "job-admitted"
	case JobPlanned:
		return "job-planned"
	case JobEpoch:
		return "job-epoch"
	case JobManifest:
		return "job-manifest"
	case JobLaunched:
		return "job-launched"
	case JobDone:
		return "job-done"
	case JobFailed:
		return "job-failed"
	case NodeJoin:
		return "node-join"
	case NodeDead:
		return "node-dead"
	case NodeRejoin:
		return "node-rejoin"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Event is one journal record. Job and Node are whichever identities the
// type concerns (zero when not applicable); Data is an opaque payload
// owned by the writer (the MM stores gob-encoded job specs and error
// strings there).
type Event struct {
	Type EventType
	Job  int
	Node int
	Data []byte
}

const (
	frameHdrLen  = 8  // u32 length + u32 CRC
	recFixedLen  = 21 // u8 type + i64 job + i64 node + u32 dlen
	segmentLimit = 1 << 20
)

func segName(n int) string { return fmt.Sprintf("journal-%06d.wal", n) }

// Journal is an open write-ahead log rooted at one directory. Safe for
// concurrent use.
type Journal struct {
	dir string

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seg    int
	size   int64
	closed bool
}

// Open creates (or re-opens) the journal under dir, appending to the
// highest-numbered existing segment.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	seg := 1
	if len(segs) > 0 {
		seg = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, f: f, w: bufio.NewWriter(f), seg: seg, size: fi.Size()}, nil
}

// segments lists the existing segment numbers in ascending order.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "journal-%06d.wal", &n); err == nil && segName(n) == e.Name() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Size returns the current segment's byte length — the rotation signal.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// NeedsRotation reports whether the current segment has outgrown the
// built-in limit and the owner should Rotate with a state snapshot.
func (j *Journal) NeedsRotation() bool { return j.Size() > segmentLimit }

func encode(ev Event, buf []byte) []byte {
	payload := recFixedLen + len(ev.Data)
	buf = append(buf[:0], make([]byte, frameHdrLen+payload)...)
	binary.BigEndian.PutUint32(buf[0:], uint32(payload))
	p := buf[frameHdrLen:]
	p[0] = byte(ev.Type)
	binary.BigEndian.PutUint64(p[1:], uint64(int64(ev.Job)))
	binary.BigEndian.PutUint64(p[9:], uint64(int64(ev.Node)))
	binary.BigEndian.PutUint32(p[17:], uint32(len(ev.Data)))
	copy(p[recFixedLen:], ev.Data)
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	return buf
}

// Append writes one event and flushes it to the OS — a record is
// readable by replay the moment Append returns, whatever kills the
// process next.
func (j *Journal) Append(ev Event) error {
	frame := encode(ev, nil)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.w.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	return nil
}

// Rotate atomically replaces the log with a fresh segment seeded by the
// given snapshot events (the caller's condensed live state). The new
// segment is fully written and synced under a temp name, renamed into
// place, and only then are the older segments removed — a crash leaves
// either the complete old log or the complete new one.
func (j *Journal) Rotate(snapshot []Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	next := j.seg + 1
	tmp, err := os.CreateTemp(j.dir, "journal-rotate-*")
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	w := bufio.NewWriter(tmp)
	var size int64
	var buf []byte
	for _, ev := range snapshot {
		buf = encode(ev, buf)
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("journal: rotate: %w", err)
		}
		size += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.dir, segName(next))); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: rotate: %w", err)
	}
	// The new segment is durable under its final name: switch the writer
	// over and drop the superseded history.
	old := j.seg
	j.f.Close()
	f, err := os.OpenFile(filepath.Join(j.dir, segName(next)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f, j.w, j.seg, j.size = f, bufio.NewWriter(f), next, size
	for s := old; s >= 1; s-- {
		path := filepath.Join(j.dir, segName(s))
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			break
		}
	}
	return nil
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// Replay reads every intact event under dir in order, invoking fn for
// each. A torn or corrupt frame ends the replay silently — that is the
// tail a crash mid-append leaves, and everything before it is intact by
// construction. A missing directory replays zero events.
func Replay(dir string, fn func(Event) error) error {
	segs, err := segments(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		if _, statErr := os.Stat(dir); os.IsNotExist(statErr) {
			return nil
		}
		return err
	}
	for _, s := range segs {
		done, err := replaySegment(filepath.Join(dir, segName(s)), fn)
		if err != nil {
			return err
		}
		if done {
			return nil // torn tail: nothing after it is trustworthy
		}
	}
	return nil
}

// replaySegment replays one segment file; torn reports whether a torn
// or corrupt frame cut the replay short.
func replaySegment(path string, fn func(Event) error) (torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdr := make([]byte, frameHdrLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return err != io.EOF, nil // short header = torn tail; clean EOF = end
		}
		n := int(binary.BigEndian.Uint32(hdr[0:]))
		want := binary.BigEndian.Uint32(hdr[4:])
		if n < recFixedLen || n > 64<<20 {
			return true, nil
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return true, nil
		}
		if crc32.ChecksumIEEE(payload) != want {
			return true, nil
		}
		ev := Event{
			Type: EventType(payload[0]),
			Job:  int(int64(binary.BigEndian.Uint64(payload[1:]))),
			Node: int(int64(binary.BigEndian.Uint64(payload[9:]))),
		}
		if dlen := int(binary.BigEndian.Uint32(payload[17:])); dlen > 0 {
			if recFixedLen+dlen > n {
				return true, nil
			}
			ev.Data = append([]byte(nil), payload[recFixedLen:recFixedLen+dlen]...)
		}
		if err := fn(ev); err != nil {
			return false, err
		}
	}
}
