package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, dir string) []Event {
	t.Helper()
	var evs []Event
	if err := Replay(dir, func(ev Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return evs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: NodeJoin, Node: 3},
		{Type: JobAdmitted, Job: 7, Data: []byte("spec-bytes")},
		{Type: JobPlanned, Job: 7},
		{Type: JobEpoch, Job: 7},
		{Type: JobDone, Job: 7},
		{Type: NodeDead, Node: 3, Data: []byte("missed heartbeats")},
	}
	for _, ev := range want {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Job != want[i].Job ||
			got[i].Node != want[i].Node || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: JobAdmitted, Job: 1})
	j.Close()
	j, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: JobDone, Job: 1})
	j.Close()
	got := replayAll(t, dir)
	if len(got) != 2 || got[0].Type != JobAdmitted || got[1].Type != JobDone {
		t.Fatalf("got %+v, want admitted then done", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: JobAdmitted, Job: 1, Data: []byte("keep")})
	j.Append(Event{Type: JobDone, Job: 1})
	j.Close()
	// Simulate a crash mid-append: chop bytes off the last frame.
	path := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].Type != JobAdmitted || string(got[0].Data) != "keep" {
		t.Fatalf("got %+v, want only the intact first event", got)
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: JobAdmitted, Job: 1})
	j.Append(Event{Type: JobDone, Job: 1})
	j.Close()
	path := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[frameHdrLen+3] ^= 0xff // flip a payload byte inside the first frame
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 0 {
		t.Fatalf("got %d events past a corrupt frame, want 0", len(got))
	}
}

func TestRotateKeepsSnapshotDropsHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		j.Append(Event{Type: JobAdmitted, Job: i})
		j.Append(Event{Type: JobDone, Job: i})
	}
	snapshot := []Event{
		{Type: NodeJoin, Node: 0},
		{Type: JobAdmitted, Job: 99, Data: []byte("live")},
	}
	if err := j.Rotate(snapshot); err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: JobPlanned, Job: 99})
	j.Close()

	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("old segment survived rotation: %v", err)
	}
	got := replayAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("replayed %d events, want 3 (snapshot + post-rotate append)", len(got))
	}
	if got[1].Job != 99 || string(got[1].Data) != "live" || got[2].Type != JobPlanned {
		t.Fatalf("got %+v, want snapshot then post-rotate append", got)
	}
}

func TestReplayMissingDir(t *testing.T) {
	if err := Replay(filepath.Join(t.TempDir(), "nope"), func(Event) error {
		t.Fatal("unexpected event")
		return nil
	}); err != nil {
		t.Fatalf("missing dir should replay zero events, got %v", err)
	}
}
