package livenet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// chaosSeeds is the fixed seed matrix the CI chaos step runs; each seed
// deterministically picks the fragment at which the victim dies.
var chaosSeeds = []uint64{1, 2, 3}

// chaosCluster boots an MM and n NMs where each NM's config comes from
// nmCfg(node) — the hook the chaos suite uses to arm fault plans on
// selected victims. Shutdown is explicit (returned close func), so leak
// tests can assert the goroutine count after teardown.
func chaosCluster(t testing.TB, n int, cfg MMConfig, nmCfg func(node int) NMConfig) (*MM, []*NM, func()) {
	t.Helper()
	mm, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nms []*NM
	for i := 0; i < n; i++ {
		var c NMConfig
		if nmCfg != nil {
			c = nmCfg(i)
		}
		nm, err := NewNMConfig(mm.Addr(), i, 4, c)
		if err != nil {
			t.Fatal(err)
		}
		nms = append(nms, nm)
	}
	shutdown := func() {
		for _, nm := range nms {
			nm.Close()
		}
		mm.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(mm.NMs()) < n {
		if time.Now().After(deadline) {
			shutdown()
			t.Fatalf("only %d of %d NMs registered", len(mm.NMs()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(shutdown)
	return mm, nms, shutdown
}

// chaosMMConfig is the shared fast-failure-detection tuning: 1 MB image
// in 32 fragments, so kill points land mid-transfer.
func chaosMMConfig() MMConfig {
	return MMConfig{
		Fanout:     2,
		FragBytes:  32 << 10,
		AckTimeout: 700 * time.Millisecond,
	}
}

const chaosBinary = 1 << 20 // 32 fragments of 32 KiB

// treePositions returns one node per tree role on an n-node fanout-f
// tree: a root child (direct MM child), an interior relay (has children
// but is not an MM child), and a leaf.
func treePositions(t *testing.T, n, fanout int) map[string]int {
	t.Helper()
	roots := mmChildren(n, fanout)
	isRoot := make(map[int]bool)
	for _, p := range roots {
		isRoot[p] = true
	}
	pos := map[string]int{"root-child": roots[0], "leaf": n - 1}
	for p := 0; p < n; p++ {
		if !isRoot[p] && len(nodeChildren(p, n, fanout)) > 0 {
			pos["interior"] = p
			break
		}
	}
	if _, ok := pos["interior"]; !ok {
		t.Fatalf("no interior position on a %d-node fanout-%d tree", n, fanout)
	}
	if len(nodeChildren(pos["leaf"], n, fanout)) != 0 {
		t.Fatalf("position %d is not a leaf", pos["leaf"])
	}
	return pos
}

// assertSurvivorImages checks that every survivor holds a complete,
// byte-identical image for the job.
func assertSurvivorImages(t *testing.T, nms []*NM, victim, job, frags int) {
	t.Helper()
	var ref ImageDigest
	seen := false
	for _, nm := range nms {
		if nm.Node() == victim {
			continue
		}
		d, ok := nm.ImageDigest(job)
		if !ok {
			t.Fatalf("survivor %d has no image for job %d", nm.Node(), job)
		}
		if d.Frags != frags {
			t.Fatalf("survivor %d holds %d fragments, want %d", nm.Node(), d.Frags, frags)
		}
		if !seen {
			ref, seen = d, true
		} else if d != ref {
			t.Fatalf("survivor %d image digest %+v differs from %+v", nm.Node(), d, ref)
		}
	}
}

// TestChaosKillEachTreePosition is the core acceptance scenario: for
// every tree role (root child, interior relay, leaf) and every seed in
// the fixed matrix, the NM at that position is hard-killed
// mid-transfer (its inbound conn dies at a seed-chosen fragment and the
// whole dæmon goes down with it). The launch must complete on the
// survivors with byte-identical images, naming the victim in the
// report.
func TestChaosKillEachTreePosition(t *testing.T) {
	const n = 7
	cfg := chaosMMConfig()
	positions := treePositions(t, n, cfg.Fanout)
	for role, victim := range positions {
		for _, seed := range chaosSeeds {
			t.Run(fmt.Sprintf("%s-node%d-seed%d", role, victim, seed), func(t *testing.T) {
				// The victim dies somewhere in the middle half of the
				// stream, position chosen by the seed.
				killAt := 8 + faultconn.NewRng(seed).Intn(16)
				// The fault plan is armed before the victim NM exists, so
				// the kill callback resolves it through an atomic holder.
				var victimNM atomic.Pointer[NM]
				mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
					if node != victim {
						return NMConfig{}
					}
					return NMConfig{WrapConn: func(c net.Conn) net.Conn {
						plan := faultconn.NewPlan()
						plan.CloseAtReadFrag = killAt
						plan.OnFault = func(string) {
							// A read-side kill models a crashed dæmon, not
							// just a dropped link: take the whole NM down.
							go func() {
								if nm := victimNM.Load(); nm != nil {
									nm.Close()
								}
							}()
						}
						return faultconn.Wrap(c, plan)
					}}
				})
				victimNM.Store(nms[victim])
				rep, err := SubmitJob(mm.Addr(), JobSpec{
					Name: "chaos", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
					Program: ProgramSpec{Kind: "exit"},
				})
				if err != nil {
					t.Fatalf("launch did not recover from killing %s node %d at frag %d: %v",
						role, victim, killAt, err)
				}
				if len(rep.Failed) != 1 || rep.Failed[0] != victim {
					t.Fatalf("report names failed nodes %v, want [%d]", rep.Failed, victim)
				}
				if rep.Replans < 1 {
					t.Fatalf("recovery happened without a replan? %+v", rep)
				}
				assertSurvivorImages(t, nms, victim, rep.JobID, chaosBinary/cfg.FragBytes)
				for _, nm := range nms {
					if nm.Node() == victim && nm.Launches() != 0 {
						t.Fatalf("dead node %d launched %d processes", victim, nm.Launches())
					}
				}
			})
		}
	}
}

// TestChaosOneWayPartition: a leaf NM keeps its outbound path (it
// registers, its conns look open) but never receives another byte — an
// asymmetric partition. It never confirms the relay plan, fails the
// isolation probe, and is excluded; the launch completes on the rest.
func TestChaosOneWayPartition(t *testing.T) {
	const n, victim = 5, 4
	cfg := chaosMMConfig()
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		if node != victim {
			return NMConfig{}
		}
		return NMConfig{WrapConn: func(c net.Conn) net.Conn {
			plan := faultconn.NewPlan()
			plan.BlockReads = true
			return faultconn.Wrap(c, plan)
		}}
	})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "partition", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("launch did not route around partitioned node %d: %v", victim, err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != victim {
		t.Fatalf("report names failed nodes %v, want [%d]", rep.Failed, victim)
	}
	assertSurvivorImages(t, nms, victim, rep.JobID, chaosBinary/cfg.FragBytes)
}

// TestChaosCorruptRelayFailsFast: wire-level corruption on a relay link
// is a content failure, not a liveness failure — the job must fail fast
// naming the rejecting node, with no replan attempt.
func TestChaosCorruptRelayFailsFast(t *testing.T) {
	const n = 3 // MM -> {0, 1}, node 0 relays to node 2
	cfg := chaosMMConfig()
	mm, _, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		if node != 0 {
			return NMConfig{}
		}
		return NMConfig{Dialer: func(addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			plan := faultconn.NewPlan()
			plan.CorruptFrag = 2
			return faultconn.Wrap(c, plan), nil
		}}
	})
	start := time.Now()
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "corrupt", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err == nil {
		t.Fatal("corrupted relay stream must fail the job")
	}
	if !strings.Contains(err.Error(), "node 2") || !strings.Contains(err.Error(), "rejected fragment") {
		t.Fatalf("error should name the rejecting node and fragment: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("content failure took %v — it must fail fast, not wait out recovery", elapsed)
	}
}

// TestChaosDuplicateAndDelayTolerated: a relay link that duplicates one
// frag frame and delays every write must not corrupt delivery — the
// receiver re-acks the duplicate without rewriting it.
func TestChaosDuplicateAndDelayTolerated(t *testing.T) {
	const n = 3
	cfg := chaosMMConfig()
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		if node != 0 {
			return NMConfig{}
		}
		return NMConfig{Dialer: func(addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			plan := faultconn.NewPlan()
			plan.DuplicateFrag = 1
			plan.WriteDelay = time.Millisecond
			return faultconn.Wrap(c, plan), nil
		}}
	})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dup", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("duplicated frame broke the launch: %v", err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("no node should be declared failed, got %v", rep.Failed)
	}
	frags := chaosBinary / cfg.FragBytes
	for _, nm := range nms {
		if nm.FragsWritten() != frags {
			t.Fatalf("node %d wrote %d fragments, want %d (duplicate must not be double-counted)",
				nm.Node(), nm.FragsWritten(), frags)
		}
	}
	assertSurvivorImages(t, nms, -1, rep.JobID, frags)
}

// TestChaosDialRetryAbsorbsTransients: an NM whose first two dial
// attempts fail still comes up — the capped-backoff retry in the dial
// path absorbs transient connection faults before they become failures.
func TestChaosDialRetryAbsorbsTransients(t *testing.T) {
	faults := make(chan string, 8)
	mm, _, _ := chaosCluster(t, 2, chaosMMConfig(), func(node int) NMConfig {
		if node != 1 {
			return NMConfig{}
		}
		return NMConfig{Dialer: faultconn.FlakyDialer(2, func(k string) { faults <- k })}
	})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "flaky", BinaryBytes: 256 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("launch failed despite dial retry: %v", err)
	}
	if rep.Total <= 0 {
		t.Fatal("bad report")
	}
	if len(faults) != 2 {
		t.Fatalf("%d injected dial failures consumed, want 2", len(faults))
	}
}

// TestChaosSpoolAtomicity: with SpoolDir set, a failed transfer must
// leave no binary (and no temp debris) on disk, while a successful one
// publishes the image under its final name — the temp-file + rename
// contract.
func TestChaosSpoolAtomicity(t *testing.T) {
	const n = 3
	cfg := chaosMMConfig()
	spools := make([]string, n)
	for i := range spools {
		spools[i] = t.TempDir()
	}
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		c := NMConfig{SpoolDir: spools[node]}
		if node == 0 {
			c.Dialer = func(addr string) (net.Conn, error) {
				nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
				if err != nil {
					return nil, err
				}
				plan := faultconn.NewPlan()
				plan.CorruptFrag = 3
				return faultconn.Wrap(nc, plan), nil
			}
		}
		return c
	})

	// Job 1 dies on the corrupted relay link; nobody may keep an image.
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "doomed", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}); err == nil {
		t.Fatal("corrupted job should fail")
	}
	// The Abort fan-out is asynchronous: poll until every spool dir is
	// empty (no committed image, no temp debris).
	deadline := time.Now().Add(3 * time.Second)
	for {
		dirty := ""
		for i, dir := range spools {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				dirty = fmt.Sprintf("node %d: %s", i, e.Name())
			}
		}
		if dirty == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spool not clean after abort: %s left behind", dirty)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Job 2 runs on nodes 1..2 only (excluding the corrupting link's
	// dialer on node 0 is not possible per-job, but the corrupt trigger
	// already fired once per conn plan and relay links are per-pair, so
	// just submit on 2 nodes that don't traverse node 0).
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "ok", BinaryBytes: 256 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("clean job failed: %v", err)
	}
	published := 0
	for _, nm := range nms {
		if path, ok := nm.SpooledBinary(rep.JobID); ok {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatalf("published binary missing: %v", err)
			}
			if fi.Size() != 256<<10 {
				t.Fatalf("published binary is %d bytes, want %d", fi.Size(), 256<<10)
			}
			if !strings.HasSuffix(path, ".bin") || strings.Contains(filepath.Base(path), "*") {
				t.Fatalf("published under a temp-looking name: %s", path)
			}
			published++
		}
	}
	if published != 2 {
		t.Fatalf("%d nodes published the image, want 2", published)
	}
}

// TestChaosHeartbeatDetectionBound: the heartbeat detector must flag a
// killed node within 2 periods + the probe grace (one period), with
// scheduling slack — and must not flag healthy nodes.
func TestChaosHeartbeatDetectionBound(t *testing.T) {
	mm, nms, _ := chaosCluster(t, 3, MMConfig{}, nil)
	const period = 100 * time.Millisecond
	type hit struct {
		node int
		at   time.Time
	}
	hits := make(chan hit, 3)
	stop := mm.StartHeartbeat(period, func(node int) { hits <- hit{node, time.Now()} })
	defer stop()
	time.Sleep(4 * period) // settle: every node answering
	select {
	case h := <-hits:
		t.Fatalf("false positive on node %d", h.node)
	default:
	}
	killed := time.Now()
	nms[2].Close()
	select {
	case h := <-hits:
		if h.node != 2 {
			t.Fatalf("detected node %d, want 2", h.node)
		}
		// Bound: 2 missed periods + probe grace (1 period), plus slack
		// for ticker phase and scheduling.
		if lat := h.at.Sub(killed); lat > 2*period+period+250*time.Millisecond {
			t.Fatalf("detection took %v, want within 2 periods + grace (%v nominal)", lat, 3*period)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure never detected")
	}
}

// TestChaosCtlFrameFaultsAbsorbed: losing, duplicating, and delaying
// individual heartbeat frames — pings on the MM's child links, pong
// ledgers on an aggregator's uplink — must never convict a healthy
// node. A missed round costs one absence streak; conviction requires a
// failed directed probe, and every probed node here is alive. The
// detector must also still catch a real failure afterwards.
func TestChaosCtlFrameFaultsAbsorbed(t *testing.T) {
	const n = 5
	const period = 100 * time.Millisecond
	cfg := chaosMMConfig()
	// Every conn the MM accepts drops its 3rd outgoing ping, duplicates
	// its 5th, and holds its 7th for over half a period. Only the two
	// direct-child links carry pings, so that is where the faults land.
	cfg.WrapConn = func(c net.Conn) net.Conn {
		plan := faultconn.NewPlan()
		plan.CtlFaults = []faultconn.CtlFault{
			{Kind: 'P', Index: 2, Op: "drop"},
			{Kind: 'P', Index: 4, Op: "dup"},
			{Kind: 'P', Index: 6, Op: "delay", Delay: 60 * time.Millisecond},
		}
		return faultconn.Wrap(c, plan)
	}
	// Node 1 aggregates a subtree; its uplink loses one pong ledger and
	// duplicates another.
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		if node != 1 {
			return NMConfig{}
		}
		return NMConfig{WrapConn: func(c net.Conn) net.Conn {
			plan := faultconn.NewPlan()
			plan.CtlFaults = []faultconn.CtlFault{
				{Kind: 'Q', Index: 3, Op: "drop"},
				{Kind: 'Q', Index: 5, Op: "dup"},
			}
			return faultconn.Wrap(c, plan)
		}}
	})
	fails := make(chan int, n)
	stop := mm.StartHeartbeat(period, func(node int) { fails <- node })
	defer stop()
	time.Sleep(12 * period) // long enough for every armed fault to fire
	select {
	case node := <-fails:
		t.Fatalf("healthy node %d convicted under control-frame faults", node)
	default:
	}
	// The plane must still be live: a genuinely dead node is detected.
	nms[4].Close()
	select {
	case node := <-fails:
		if node != 4 {
			t.Fatalf("detected node %d, want 4", node)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("real failure undetected after absorbing frame faults")
	}
}

// TestChaosKillMidTransferControlPlaneActive: the full control plane —
// tree heartbeat and gang strobes — runs while an interior relay is
// hard-killed mid-transfer. The launch must recover onto the survivors
// with byte-identical images, the heartbeat must never convict a
// survivor despite the epoch churn (stale ledgers and strobe acks from
// the old topology are rejected, not miscounted), and strobes must keep
// flowing through the recovery.
func TestChaosKillMidTransferControlPlaneActive(t *testing.T) {
	const n = 7
	// The period sets the suspicion window (2 periods + probe grace).
	// Under the race detector on a loaded single-CPU host a live NM can
	// be starved past 100 ms mid-replay, so use a period comfortably
	// above scheduler-stall noise — the false-conviction assertion is
	// the point of this test, and it must not fire on starvation.
	const period = 250 * time.Millisecond
	cfg := chaosMMConfig()
	cfg.GangQuantum = 20 * time.Millisecond
	cfg.MPL = 2
	victim := treePositions(t, n, cfg.Fanout)["interior"]
	killAt := 8 + faultconn.NewRng(chaosSeeds[0]).Intn(16)
	var victimNM atomic.Pointer[NM]
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		if node != victim {
			return NMConfig{}
		}
		return NMConfig{WrapConn: func(c net.Conn) net.Conn {
			plan := faultconn.NewPlan()
			plan.CloseAtReadFrag = killAt
			plan.OnFault = func(string) {
				go func() {
					if nm := victimNM.Load(); nm != nil {
						nm.Close()
					}
				}()
			}
			return faultconn.Wrap(c, plan)
		}}
	})
	victimNM.Store(nms[victim])
	fails := make(chan int, n)
	stop := mm.StartHeartbeat(period, func(node int) { fails <- node })
	defer stop()
	time.Sleep(3 * period) // heartbeat settled over the full tree
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "ctl-chaos", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "spin", Duration: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("launch did not recover from killing node %d at frag %d with control plane active: %v",
			victim, killAt, err)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != victim {
		t.Fatalf("report names failed nodes %v, want [%d]", rep.Failed, victim)
	}
	assertSurvivorImages(t, nms, victim, rep.JobID, chaosBinary/cfg.FragBytes)
	if mm.Strobes() == 0 {
		t.Fatal("MM issued no strobes while gang scheduling was active")
	}
	strobesSeen := 0
	for _, nm := range nms {
		if nm.Node() != victim {
			strobesSeen += nm.StrobesSeen()
		}
	}
	if strobesSeen == 0 {
		t.Fatal("survivors saw no strobes through the recovery")
	}
	// The heartbeat may convict the victim in parallel with the
	// transfer's own diagnosis; it must never convict anyone else.
	for {
		select {
		case node := <-fails:
			if node != victim {
				t.Fatalf("heartbeat falsely convicted survivor %d during recovery", node)
			}
			continue
		default:
		}
		break
	}
}

// TestChaosTermDeadlineNamed: a node that delivers the binary but never
// reports termination must trip the *termination* deadline (not the
// transfer one), and the error names the silent node.
func TestChaosTermDeadlineNamed(t *testing.T) {
	mm, nms, _ := chaosCluster(t, 2, MMConfig{
		AckTimeout:  2 * time.Second,
		TermTimeout: 500 * time.Millisecond,
	}, nil)
	nms[1].testDropTerms.Store(true)
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "silent", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err == nil {
		t.Fatal("job with a silent node should fail")
	}
	if !strings.Contains(err.Error(), ErrTermTimeout.Error()) {
		t.Fatalf("error is not the named termination-phase error: %v", err)
	}
	if !strings.Contains(err.Error(), "missing 1") {
		t.Fatalf("termination error should name node 1: %v", err)
	}
	if strings.Contains(err.Error(), ErrTransferTimeout.Error()) {
		t.Fatalf("termination failure mislabeled as transfer failure: %v", err)
	}
}

// errors.Is sanity for the two phase errors across wrapping.
func TestPhaseErrorsAreDistinct(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", ErrTransferTimeout)
	if !errors.Is(wrapped, ErrTransferTimeout) || errors.Is(wrapped, ErrTermTimeout) {
		t.Fatal("phase error identity broken")
	}
}

// assertPlacedImages checks that every placed survivor of one job holds
// a complete, byte-identical image (the placed-subset analogue of
// assertSurvivorImages, for multi-tenant jobs that occupy only part of
// the cluster).
func assertPlacedImages(t *testing.T, nms []*NM, placed []int, victim, job, frags int) {
	t.Helper()
	var ref ImageDigest
	seen := false
	for _, node := range placed {
		if node == victim {
			continue
		}
		d, ok := nms[node].ImageDigest(job)
		if !ok {
			t.Fatalf("placed survivor %d has no image for job %d", node, job)
		}
		if d.Frags != frags {
			t.Fatalf("survivor %d holds %d fragments of job %d, want %d", node, d.Frags, job, frags)
		}
		if !seen {
			ref, seen = d, true
		} else if d != ref {
			t.Fatalf("survivor %d image digest %+v differs from %+v for job %d", node, d, ref, job)
		}
	}
}

// TestChaosConcurrentJobsInteriorKill: three jobs stream concurrently
// through the same interior relay node while a fourth runs elsewhere;
// the relay is hard-killed mid-stream. Only the jobs placed on the
// victim may replan — each completing on its survivors with
// byte-identical images — and the bystander job must finish with no
// replan at all. Explicit Place pins node 2 at interior tree position 2
// of each affected job (parents 0, 7, and 1 respectively), so three
// distinct relay conns feed the victim and every one is armed to die at
// the seed-chosen fragment: no affected job can complete its 32-chunk
// stream without tripping the kill.
func TestChaosConcurrentJobsInteriorKill(t *testing.T) {
	const n = 8
	const victim = 2
	cfg := chaosMMConfig()
	specs := []JobSpec{
		{Name: "via-A", BinaryBytes: chaosBinary, Nodes: 7, PEsPerNode: 1,
			Place: []int{0, 1, 2, 3, 4, 5, 6}, Program: ProgramSpec{Kind: "exit"}},
		{Name: "via-B", BinaryBytes: chaosBinary, Nodes: 7, PEsPerNode: 1,
			Place: []int{7, 6, 2, 5, 0, 3, 4}, Program: ProgramSpec{Kind: "exit"}},
		{Name: "via-D", BinaryBytes: chaosBinary, Nodes: 7, PEsPerNode: 1,
			Place: []int{1, 3, 2, 0, 5, 6, 7}, Program: ProgramSpec{Kind: "exit"}},
		{Name: "bystander", BinaryBytes: chaosBinary, Nodes: 4, PEsPerNode: 1,
			Place: []int{3, 4, 5, 6}, Program: ProgramSpec{Kind: "exit"}},
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killAt := 8 + faultconn.NewRng(seed).Intn(16)
			var victimNM atomic.Pointer[NM]
			mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
				if node != victim {
					return NMConfig{}
				}
				return NMConfig{WrapConn: func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.CloseAtReadFrag = killAt
					plan.OnFault = func(string) {
						go func() {
							if nm := victimNM.Load(); nm != nil {
								nm.Close()
							}
						}()
					}
					return faultconn.Wrap(c, plan)
				}}
			})
			victimNM.Store(nms[victim])

			reports := make([]Report, len(specs))
			errs := make([]error, len(specs))
			var wg sync.WaitGroup
			for i, spec := range specs {
				wg.Add(1)
				go func(i int, spec JobSpec) {
					defer wg.Done()
					reports[i], errs[i] = SubmitJob(mm.Addr(), spec)
				}(i, spec)
			}
			wg.Wait()

			frags := chaosBinary / cfg.FragBytes
			for i, spec := range specs {
				if errs[i] != nil {
					t.Fatalf("job %q did not recover from killing node %d at frag %d: %v",
						spec.Name, victim, killAt, errs[i])
				}
				onVictim := false
				for _, node := range spec.Place {
					if node == victim {
						onVictim = true
					}
				}
				if onVictim {
					if len(reports[i].Failed) != 1 || reports[i].Failed[0] != victim {
						t.Fatalf("job %q names failed nodes %v, want [%d]", spec.Name, reports[i].Failed, victim)
					}
					if reports[i].Replans < 1 {
						t.Fatalf("job %q recovered without a replan? %+v", spec.Name, reports[i])
					}
				} else {
					if len(reports[i].Failed) != 0 || reports[i].Replans != 0 {
						t.Fatalf("bystander job %q replanned (failed %v, replans %d) though it never placed on node %d",
							spec.Name, reports[i].Failed, reports[i].Replans, victim)
					}
				}
				assertPlacedImages(t, nms, spec.Place, victim, reports[i].JobID, frags)
			}
		})
	}
}
