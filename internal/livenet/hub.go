package livenet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// PeerHub is a process-shared relay listener. The seed design gave
// every NM its own TCP listener plus an accept goroutine — fine at 16
// nodes, a third of the whole per-NM footprint at 512. NMs created with
// NMConfig.Hub instead advertise a shared "host:port#node" address; the
// dialing parent opens the connection with a 5-byte hello frame naming
// the target node, and the hub's single accept loop routes the
// connection to that NM (applying the NM's own WrapConn fault hook and
// connection profile, so per-NM fault injection still works). Per NM
// this removes one listener, one accept goroutine, and one listen
// socket; what remains per inbound link is the servePeer read loop,
// which is inherent (one goroutine per live tree edge).
type PeerHub struct {
	ln net.Listener

	mu     sync.Mutex
	nms    map[int]*NM
	closed bool

	wg sync.WaitGroup
}

// helloTimeout bounds how long the hub waits for a fresh connection's
// routing hello; a dialer that connects and goes silent must not pin a
// hub goroutine forever.
const helloTimeout = 5 * time.Second

// NewPeerHub starts a shared peer listener on addr ("" or ":0" forms
// pick an ephemeral port on localhost).
func NewPeerHub(addr string) (*PeerHub, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: hub listen %s: %w", addr, err)
	}
	h := &PeerHub{ln: ln, nms: make(map[int]*NM)}
	h.wg.Add(1)
	go h.accept()
	return h, nil
}

// Addr returns the hub's listening endpoint (without a node suffix).
func (h *PeerHub) Addr() string { return h.ln.Addr().String() }

// NodeAddr returns the routed peer address an NM registers with the MM:
// dialing it reaches that NM through the hub.
func (h *PeerHub) NodeAddr(node int) string {
	return fmt.Sprintf("%s#%d", h.Addr(), node)
}

// register claims a node ID on the hub.
func (h *PeerHub) register(node int, nm *NM) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("livenet: hub closed")
	}
	if _, dup := h.nms[node]; dup {
		return fmt.Errorf("livenet: hub already serves node %d", node)
	}
	h.nms[node] = nm
	return nil
}

// unregister releases a node ID; inbound connections for it are refused
// from now on. Connections already routed belong to the NM and die with
// it.
func (h *PeerHub) unregister(node int, nm *NM) {
	h.mu.Lock()
	if h.nms[node] == nm {
		delete(h.nms, node)
	}
	h.mu.Unlock()
}

// Close stops the hub. NMs still registered keep running but become
// unreachable for new relay connections; close them first.
func (h *PeerHub) Close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.ln.Close()
	h.wg.Wait()
}

func (h *PeerHub) accept() {
	defer h.wg.Done()
	for {
		nc, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.route(nc)
	}
}

// route reads the routing hello off a fresh connection and hands the
// connection to the target NM. The hello is read raw — before any
// buffering — so the NM-side conn built afterwards starts exactly at
// the first real frame and over-reads nothing.
func (h *PeerHub) route(nc net.Conn) {
	defer h.wg.Done()
	var hello [1 + helloBodyLen]byte
	nc.SetReadDeadline(time.Now().Add(helloTimeout))
	if _, err := io.ReadFull(nc, hello[:]); err != nil || hello[0] != frameHello {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	node := int(binary.BigEndian.Uint32(hello[1:]))
	h.mu.Lock()
	nm := h.nms[node]
	h.mu.Unlock()
	if nm == nil || !nm.adoptPeer(nc) {
		nc.Close()
	}
}
