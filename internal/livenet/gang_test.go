package livenet

import (
	"sync"
	"testing"
	"time"
)

func TestGateBlocksAndReleases(t *testing.T) {
	g := newGate(false)
	released := make(chan struct{})
	go func() {
		g.wait()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("closed gate did not block")
	case <-time.After(50 * time.Millisecond):
	}
	g.set(true)
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("open gate did not release waiter")
	}
	if !g.isOpen() {
		t.Fatal("gate state wrong")
	}
}

// TestLiveGangScheduling runs two spin jobs timeshared at MPL 2 with a
// 25 ms quantum: both must finish, the NMs must see strobes, and each
// job's wall time must clearly exceed its solo CPU demand (they share
// the machine).
func TestLiveGangScheduling(t *testing.T) {
	mm, nms := startCluster(t, 2, MMConfig{GangQuantum: 25 * time.Millisecond, MPL: 2})
	const work = 300 * time.Millisecond
	spec := func(name string) JobSpec {
		return JobSpec{
			Name: name, BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "spin", Duration: work},
		}
	}
	var wg sync.WaitGroup
	reports := make([]Report, 2)
	errs := make([]error, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = SubmitJob(mm.Addr(), spec("gang"))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	// Two 300 ms CPU-bound gangs timesharing one machine need >= ~600 ms
	// wall; allow scheduling slack but require clear serialization.
	if elapsed < 450*time.Millisecond {
		t.Fatalf("two timeshared 300ms jobs finished in %v; not serialized", elapsed)
	}
	strobes := 0
	for _, nm := range nms {
		strobes += nm.StrobesSeen()
	}
	if strobes == 0 {
		t.Fatal("NMs saw no strobes")
	}
	if mm.Strobes() == 0 {
		t.Fatal("MM issued no strobes")
	}
}

// TestLiveGangRowsAlternate: with MPL 2, two jobs land on different rows
// (least-loaded assignment).
func TestLiveGangRowAssignment(t *testing.T) {
	mm, err := NewMM("127.0.0.1:0", MMConfig{GangQuantum: 10 * time.Millisecond, MPL: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	mm.mu.Lock()
	r1 := mm.pickRow()
	r2 := mm.pickRow()
	r3 := mm.pickRow()
	mm.mu.Unlock()
	if r1 == r2 {
		t.Fatalf("first two jobs share row %d", r1)
	}
	// Rows are exclusive: with MPL=2 occupied, a third concurrent job
	// must wait in the admission queue, not share a row.
	if r3 != -1 {
		t.Fatalf("row overcommit: third concurrent job got row %d, want -1 (exhausted)", r3)
	}
	mm.mu.Lock()
	mm.releaseRow(r1)
	r4 := mm.pickRow()
	mm.mu.Unlock()
	if r4 != r1 {
		t.Fatalf("released row not reused: got %d, want %d", r4, r1)
	}
}

// TestNonGangJobsFreeRun: without GangQuantum processes run ungated.
func TestNonGangJobsFreeRun(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	start := time.Now()
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "solo", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "spin", Duration: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("ungated job took %v", elapsed)
	}
	if mm.Strobes() != 0 {
		t.Fatalf("non-gang MM issued %d strobes", mm.Strobes())
	}
}
