package livenet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/livenet/chunkcache"
	"repro/internal/livenet/journal"
	"repro/internal/place"
	"repro/internal/rng"
)

// Phase-named errors. A live launch fails in one of two timed phases —
// binary distribution (transfer) or process execution (termination
// collection) — and callers that retry or alert need to tell them
// apart without string matching.
var (
	// ErrTransferTimeout marks transfer-phase deadline failures: an
	// unconfirmed relay plan or a flow-control window that stalled and
	// could not be recovered.
	ErrTransferTimeout = errors.New("livenet: transfer phase timed out")
	// ErrTermTimeout marks termination-phase deadline failures: the
	// binary was delivered and processes launched, but not every node
	// reported termination within the program's duration plus the
	// configured termination grace.
	ErrTermTimeout = errors.New("livenet: termination phase timed out")
	// ErrMMClosed marks submissions rejected — or queued waiters
	// released — because the MM shut down. Jobs parked in the admission
	// queue fail promptly with this error on Close; they never hang.
	ErrMMClosed = errors.New("livenet: MM closed")
	// ErrReplansExhausted marks a transfer that burned through
	// MMConfig.MaxReplans recovery rounds without draining — the
	// job-level retry path treats it as a fresh-placement candidate.
	ErrReplansExhausted = errors.New("livenet: replans exhausted")
	// ErrJobRetriesExhausted is the named terminal error after
	// MMConfig.JobRetries full re-placements also failed.
	ErrJobRetriesExhausted = errors.New("livenet: job retries exhausted")
)

// rejectError is a content failure: some node's CRC/pattern check
// rejected a fragment. It is NOT recoverable by replanning the tree —
// the payload itself is wrong — so recovery excludes it.
type rejectError struct {
	node  int
	index int
}

func (e rejectError) Error() string {
	return fmt.Sprintf("node %d rejected fragment %d (corrupt)", e.node, e.index)
}

// downError is liveness evidence: a specific node's link failed or a
// parent reported it unreachable. Recovery treats the named node as a
// failure candidate without waiting for a window stall.
type downError struct {
	node  int
	cause string
}

func (e downError) Error() string {
	return fmt.Sprintf("node %d down (%s)", e.node, e.cause)
}

// MMConfig tunes the live Machine Manager.
type MMConfig struct {
	// FragBytes is the binary-distribution fragment size (default 256 KB).
	FragBytes int
	// Slots is the flow-control window depth per direct tree child, the
	// live analogue of the simulator's multi-buffering slots (default 4).
	Slots int
	// AckTimeout bounds how long a transfer waits for window credit
	// before starting failure diagnosis (default 10 s).
	AckTimeout time.Duration
	// TermTimeout is the termination-phase grace: after launch, every
	// node must report termination within the program's expected
	// duration plus this budget (default 60 s). Distinct from
	// AckTimeout, which times only the transfer phase.
	TermTimeout time.Duration
	// ProbeGrace is how long an isolation probe waits for a node's
	// pong before declaring it dead during transfer recovery (default
	// AckTimeout/4, clamped to [50ms, 1s]).
	ProbeGrace time.Duration
	// MaxReplans bounds how many tree-replan recovery rounds one
	// transfer may attempt before giving up (default 3). Each round can
	// exclude several failed nodes at once.
	MaxReplans int
	// Fanout is the out-degree of the software-multicast forwarding
	// tree used for binary distribution (default 2). Fanout 1 selects
	// the flat fan-out: the MM unicasts every fragment to every node
	// itself and no NM relays.
	Fanout int
	// Stripes is the number of disjoint spanning trees the bulk plane
	// stripes a transfer across (default 1: the single-tree plan,
	// byte-compatible with every prior release). With k > 1 the
	// interior/leaf roles rotate per stripe (each node is interior in
	// ~1/k of the trees) and manifest chunks interleave round-robin
	// (chunk i rides stripe i%k), so aggregate delivery drives k
	// uplinks per node and a slow or dead relay only throttles the
	// stripes it is interior in. Clamped per job to the chunk count and
	// to 255 (the wire's stripe byte).
	Stripes int
	// GangQuantum, when positive, enables live gang scheduling: the MM
	// strobes a coordinated context switch every quantum and launches
	// processes gated.
	GangQuantum time.Duration
	// MPL is the number of gang timeslot rows (default 2 when gang
	// scheduling is enabled).
	MPL int
	// MaxConcurrent bounds how many admitted jobs may be in their
	// transfer phases at once (default 8); further submissions queue in
	// admission order. Execution always overlaps freely — a job's
	// streaming slot is released the moment its binary is resident.
	MaxConcurrent int
	// Admission selects the policy deciding which queued job streams
	// next when the slots are saturated: "fifo" (default), "wfair"
	// (weighted-fair over JobSpec.User/Weight), or "sif"
	// (smallest-image-first).
	Admission string
	// LinkBudgetBytes is the shared per-link byte budget (default
	// 16 MB): the total unacknowledged data all jobs may park in one
	// direct-child link's pipeline. A job that would exceed it blocks
	// before writing — backpressure, not unbounded queueing — so one fat
	// job cannot starve the tree for concurrent small ones.
	LinkBudgetBytes int64
	// WrapConn, when set, interposes on every accepted connection —
	// the fault-injection hook (see internal/livenet/faultconn).
	WrapConn func(net.Conn) net.Conn
	// JobBase offsets this MM's job numbering: job IDs count up from
	// JobBase+1. A federation gives each leaf MM a disjoint base
	// (partition-scoped job IDs), so the job field in every frame header
	// cluster-wide names both the partition and the job — no two leaves
	// can collide on the shared relay fabric.
	JobBase int
	// Lite selects the dense connection profile (shallow buffered I/O,
	// kernel-autotuned socket buffers) on every accepted connection.
	// Pair with NMConfig.Lite when packing hundreds of NMs in-process.
	Lite bool
	// JournalDir, when set, makes MM state durable: every job and
	// membership event is appended to a CRC-framed write-ahead log under
	// this directory (see internal/livenet/journal), and a NewMM over
	// the same directory replays it — in-flight transfers are failed
	// cleanly and journaled as such, while jobs that were admitted but
	// never placed are resubmitted once enough NMs re-register (their
	// outcomes surface via RecoveredJobs). Empty keeps all state in
	// memory, exactly as before.
	JournalDir string
	// RejoinProbation is how many heartbeat-clean periods a rejoining
	// NM must survive before it is eligible for placement again
	// (default 2). It only gates placement while a heartbeat detector
	// is running: with no detector there is nobody to vouch, so rejoin
	// restores eligibility immediately.
	RejoinProbation int
	// Placement selects the free-placement policy: "spread" (default)
	// is the classic deterministic least-loaded order, byte-identical
	// to every prior release; "locality" packs each gang into the
	// smallest aligned subtree of the cluster's k-ary heap topology
	// that has the free capacity, minimizing the relay hops gang
	// members pay to reach each other on distance-shaped links. Both
	// respect JobSpec.Demand against declared node capacities.
	Placement string
	// JobRetries bounds full job-level re-placements after a transfer
	// exhausts its replans or loses its nodes (default 0: a transfer
	// failure is terminal, the pre-retry behavior). Each retry waits a
	// bounded, jittered backoff, re-places the job on the surviving
	// membership excluding every node that already failed it, and
	// restarts the transfer from the manifest round — warm caches make
	// the replay cheap. After JobRetries failed re-placements the job
	// fails with ErrJobRetriesExhausted.
	JobRetries int
}

func (c *MMConfig) fill() {
	if c.FragBytes == 0 {
		c.FragBytes = 256 << 10
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.TermTimeout == 0 {
		c.TermTimeout = 60 * time.Second
	}
	if c.ProbeGrace == 0 {
		c.ProbeGrace = c.AckTimeout / 4
		if c.ProbeGrace > time.Second {
			c.ProbeGrace = time.Second
		}
		if c.ProbeGrace < 50*time.Millisecond {
			c.ProbeGrace = 50 * time.Millisecond
		}
	}
	if c.MaxReplans == 0 {
		c.MaxReplans = 3
	}
	if c.Fanout == 0 {
		c.Fanout = 2
	}
	if c.Stripes < 1 {
		c.Stripes = 1
	}
	if c.Stripes > 255 {
		c.Stripes = 255 // the frame headers carry the stripe in one byte
	}
	if c.GangQuantum > 0 && c.MPL == 0 {
		c.MPL = 2
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 1
	}
	if c.LinkBudgetBytes <= 0 {
		c.LinkBudgetBytes = 16 << 20
	}
	if c.RejoinProbation == 0 {
		c.RejoinProbation = 2
	}
}

// MM is the live Machine Manager: it accepts NM registrations and client
// job submissions on one TCP port.
type MM struct {
	cfg MMConfig
	ln  net.Listener

	mu      sync.Mutex
	nms     map[int]*nmLink
	jobs    map[int]*liveJob
	nextJob int
	closed  bool
	// closing is closed by shutdown so blocking waits that cannot see
	// the admission condvar (e.g. a launched job collecting termination
	// reports) notice the MM going away without running out their full
	// deadline budgets.
	closing chan struct{}
	// clients tracks in-flight submission connections so Kill can sever
	// them: Close leaves them to drain naturally (serveClient closes
	// each when its job finishes), but a simulated process death must
	// cut mid-job submitters loose immediately.
	clients map[*conn]struct{}

	// Multi-tenant admission (see admit.go): jobs wait in admitQ until
	// the policy grants them one of MaxConcurrent streaming slots;
	// admit broadcasts on every slot/row release. place is the indexed
	// placement engine (internal/place): it tracks per-node load,
	// declared capacity, committed usage, and eligibility, and answers
	// placement decisions in O(log n) instead of a cluster scan — all
	// mutated under mu. budgets holds each direct-child link's shared
	// byte budget. All guarded by mu.
	admit     *sync.Cond
	admitQ    []*liveJob
	streaming int
	policy    admissionPolicy
	place     *place.Engine
	placePol  place.Policy
	budgets   map[*conn]*linkBudget

	// ctl is the cluster-wide control tree (heartbeat + strobe fast
	// path); ctlExclude holds convicted nodes, kept out of the tree even
	// while their registration lingers (a partitioned node's conn can
	// stay up long after the detector declared it dead). Guarded by mu.
	ctl        mmCtl
	ctlExclude map[int]bool

	// Rejoin state, guarded by mu. probation counts the heartbeat-clean
	// periods a rejoined node still owes before placement trusts it
	// again; rejoined queues conviction-latch resets for the heartbeat
	// loop (whose failed/streak state is loop-local) to drain on its
	// next tick. hbActive counts running heartbeat loops — a rejoin
	// only arms probation when somebody is actually vouching.
	probation map[int]int
	rejoined  map[int]bool
	hbActive  int

	// jnl is the durable event log (nil without MMConfig.JournalDir);
	// recovered holds the queued-but-unfinished jobs replayed from it
	// at startup, resubmitted by recoverLoop as NMs re-register.
	// recovered entries are guarded by mu once the loop starts.
	jnl       *journal.Journal
	recovered []*RecoveredJob

	// manifests caches the content-derived part of transfer manifests
	// for seeded (content-addressed) images, keyed by content identity,
	// so a warm relaunch skips the generate-and-hash pass over the whole
	// image. Guarded by mu.
	manifests map[manifestKey]*manifestData

	// probes routes directed isolation-probe pongs by sequence number
	// (transfer recovery and the heartbeat detector share the Pong
	// path with distinct sequence ranges).
	probeSeq int64
	probes   map[int64]*probeRound

	// detStops are stop functions of running heartbeat detectors,
	// invoked by Close so a forgotten detector cannot leak its
	// goroutine past the MM's lifetime.
	detStops []func()

	// counters, guarded by mu: job lifecycle milestones and gang
	// context-switch multicasts issued.
	launched  int
	completed int
	strobes   int

	// rowCount tracks gang-row occupancy (the strobe loop skips empty
	// rows); rowFree is the bitset freelist of unoccupied rows pickRow
	// pops lowest-first.
	rowCount   []int
	rowFree    []uint64
	strobeStop chan struct{}

	// testCorrupt, when set (in-package tests only), may mutate a
	// fragment's payload after its CRC is computed — the in-flight
	// corruption hook.
	testCorrupt func(job, index int, data []byte)

	wg sync.WaitGroup
}

// nmLink is the MM's view of one registered Node Manager.
type nmLink struct {
	node int
	cpus int
	addr string // NM peer listener, for relay children to dial
	c    *conn
}

// probeRound collects pongs for one directed isolation-probe sweep.
type probeRound struct {
	mu  sync.Mutex
	got map[int]bool
}

// manifestData is the content-derived part of a transfer manifest. For
// seeded images it is cacheable across jobs: the same (seed, patch,
// size, chunking) always produces the same chunks.
type manifestData struct {
	seed     uint64
	patch    map[int]uint64
	hashes   []uint64
	crcs     []uint32
	imageCRC uint32
	total    int64
}

// manifestKey is the cache key for manifestData. The patch map is folded
// to a fingerprint for hashability; the stored patch copy breaks the
// (astronomically unlikely) fingerprint collision on lookup.
type manifestKey struct {
	seed    uint64
	patchFP uint64
	bytes   int
	frag    int
}

func patchFingerprint(p map[int]uint64) uint64 {
	h := uint64(len(p))
	keys := make([]int, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		h = rng.Mix64(h ^ uint64(k)*rng.GoldenGamma)
		h = rng.Mix64(h ^ p[k])
	}
	return h
}

func patchEqual(a, b map[int]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// liveJob is one row of the MM's job table: the full MM-side state of a
// job from admission to completion.
type liveJob struct {
	id    int
	spec  JobSpec
	row   int
	frags int

	// Admission bookkeeping: qStart is when the job entered the
	// admission queue, queued its total queue wait once granted, and
	// placed the node IDs placement charged to the engine (fixed even
	// as j.nodes shrinks through recovery).
	qStart time.Time
	queued time.Duration
	placed []int

	mu    sync.Mutex
	nodes []*nmLink // current (surviving) job nodes, position-ordered

	// stripes is the per-stripe transfer state: every spanning tree the
	// bulk plane stripes this job across owns its own epoch, ack ledger,
	// HAVE/need masks and stream cursor (one entry, stripe 0, for the
	// legacy single-tree plan). stripeReplans counts the replan rounds
	// charged to each stripe — a dead leaf is pruned from a stripe
	// without bumping its epoch, so an undisturbed stripe's count stays 0
	// through another stripe's recovery.
	stripes       []*stripeState
	stripeReplans []int

	planned map[int]bool // initial job-wide Plan barrier
	cond    *sync.Cond
	fail    error

	// Delta-transfer state shared by all stripes. man is the job's
	// manifest; chunksSent counts chunks streamed across all stripes and
	// epochs (replayed chunks count again); bytesSaved is the payload the
	// HAVE ledgers let the MM keep off the wire, summed per link.
	man        *manifestData
	chunksSent int
	bytesSaved int64

	// peerDown accumulates NM reports of unreachable relay children
	// (failure-detector evidence consumed by diagnose).
	peerDown map[int]string

	// failedNodes, replans, recovery, retries are the job's fault
	// history for the completion report.
	failedNodes []int
	replans     int
	recovery    time.Duration
	retries     int

	// phase is the job's position in the admission state machine;
	// winPeak is the largest unacknowledged-chunk count observed across
	// all stripes, for the job-table snapshot and the report. held
	// tracks link-budget bytes per (stripe, direct child) that acks have
	// not yet returned. sendBytes counts the MM's own distribution
	// egress for this job exactly (frag, manifest, and need-mask
	// frames), so concurrent jobs sharing a link never bill each other.
	phase     jobPhase
	winPeak   int
	held      map[heldKey][]heldChunk
	sendBytes int64

	terms chan int
}

// stripeState is one stripe's transfer state: its spanning tree (a
// rotation of the job's placement order), tree epoch, cumulative-ack
// ledger, HAVE/need masks and stream cursor. All index arithmetic below
// the sendList is stripe-local (chunk s+j·k is the stripe's j-th), so
// each stripe's window and replay logic is the single-tree logic
// verbatim. Guarded by the owning job's mu.
type stripeState struct {
	id int
	// order snapshots the stripe's position-ordered node set: order[q]
	// is the node at tree position q. It is rebuilt on a replan of THIS
	// stripe only — pruning a dead leaf from another stripe shrinks
	// j.nodes but must not shift this stripe's positions mid-epoch.
	order    []*nmLink
	children []*nmLink     // MM's direct children in this stripe's tree
	subtree  map[int][]int // direct child node -> node IDs its acks vouch for
	epoch    int           // stripe tree generation; bumped per stripe replan
	acked    map[int]int   // direct child -> cumulative stripe-local chunks acked
	planned  map[int]bool  // per-stripe Replan barrier
	received map[int]int   // node -> stripe-local progress from ReplanAck
	haves    map[int][]uint64
	needs    map[int][]uint64
	sendList []int // ascending global chunk indices this stripe still streams
	// streamPos indexes sendList (next entry to stream); streamAt is the
	// stripe-local index just past the last chunk streamed this epoch.
	streamPos    int
	streamAt     int
	needManifest bool // run a manifest round before streaming (fresh epoch)
	done         bool // stripe fully streamed and drained
}

// NewMM starts a Machine Manager listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func NewMM(addr string, cfg MMConfig) (*MM, error) {
	cfg.fill()
	policy, err := newAdmissionPolicy(cfg.Admission)
	if err != nil {
		return nil, err
	}
	placePol, err := place.ParsePolicy(cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("livenet: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: listen %s: %w", addr, err)
	}
	mm := &MM{
		cfg:        cfg,
		ln:         ln,
		nms:        make(map[int]*nmLink),
		jobs:       make(map[int]*liveJob),
		nextJob:    cfg.JobBase,
		clients:    make(map[*conn]struct{}),
		manifests:  make(map[manifestKey]*manifestData),
		probes:     make(map[int64]*probeRound),
		ctlExclude: make(map[int]bool),
		probation:  make(map[int]int),
		rejoined:   make(map[int]bool),
		policy:     policy,
		place:      place.NewEngine(64),
		placePol:   placePol,
		budgets:    make(map[*conn]*linkBudget),
		closing:    make(chan struct{}),
	}
	mm.admit = sync.NewCond(&mm.mu)
	if cfg.JournalDir != "" {
		if err := mm.openJournal(cfg.JournalDir); err != nil {
			ln.Close()
			return nil, err
		}
	}
	// The control-tree maps must exist before the first syncCtl rebuild:
	// a heartbeat or strobe loop started on an empty cluster ticks at
	// epoch 0 with no members, so syncCtl takes its unchanged fast path
	// without ever allocating them.
	mm.ctl.sub = make(map[int][]int)
	mm.ctl.ledger = make(map[int]*mmLedger)
	mm.ctl.hbSent = make(map[int64]time.Time)
	mm.ctl.strobeAck = make(map[int]int64)
	mm.ctl.strobeSent = make(map[int64]time.Time)
	mm.wg.Add(1)
	go mm.acceptLoop()
	if len(mm.recovered) > 0 {
		mm.wg.Add(1)
		go mm.recoverLoop()
	}
	if cfg.GangQuantum > 0 {
		stop := make(chan struct{})
		mm.strobeStop = stop
		mm.wg.Add(1)
		go func() {
			defer mm.wg.Done()
			mm.strobeLoop(stop)
		}()
	}
	return mm, nil
}

// RecoveredJob is one job the MM's journal showed as admitted but never
// placed when the MM restarted. The recovery loop resubmits it once
// enough NMs have (re-)registered; Done flips when its rerun finished,
// with the outcome in Report/Err.
type RecoveredJob struct {
	ID     int // job ID under the previous incarnation
	Spec   JobSpec
	Report Report
	Err    error
	Done   bool
}

// encodeSpec/decodeSpec gob a JobSpec into the journal's opaque Data.
func encodeSpec(spec *JobSpec) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spec); err != nil {
		return nil
	}
	return buf.Bytes()
}

func decodeSpec(b []byte) (JobSpec, error) {
	var spec JobSpec
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&spec)
	return spec, err
}

// openJournal replays the write-ahead log under dir (if any), rebuilds
// the job table's unfinished tail, and opens the journal for appending.
// Jobs that were already placed when the previous MM died cannot be
// resumed — their relay topology and window state died with it — so
// they are failed cleanly (and durably, so the next restart forgets
// them too). Jobs that were admitted but never placed lost nothing but
// queue position: they are queued for resubmission.
func (mm *MM) openJournal(dir string) error {
	type jobRec struct {
		spec     []byte
		inflight bool
	}
	recs := make(map[int]*jobRec)
	var order []int
	maxID := 0
	err := journal.Replay(dir, func(ev journal.Event) error {
		if ev.Job > maxID {
			maxID = ev.Job
		}
		switch ev.Type {
		case journal.JobAdmitted:
			if recs[ev.Job] == nil {
				recs[ev.Job] = &jobRec{spec: ev.Data}
				order = append(order, ev.Job)
			}
		case journal.JobPlanned, journal.JobEpoch, journal.JobManifest, journal.JobLaunched:
			if r := recs[ev.Job]; r != nil {
				r.inflight = true
			}
		case journal.JobDone, journal.JobFailed:
			delete(recs, ev.Job)
		}
		return nil
	})
	if err != nil {
		return err
	}
	jnl, err := journal.Open(dir)
	if err != nil {
		return err
	}
	mm.jnl = jnl
	if maxID > mm.nextJob {
		mm.nextJob = maxID
	}
	for _, id := range order {
		r := recs[id]
		if r == nil {
			continue // finished before the crash
		}
		if r.inflight {
			jnl.Append(journal.Event{Type: journal.JobFailed, Job: id,
				Data: []byte("interrupted by MM restart")})
			continue
		}
		spec, err := decodeSpec(r.spec)
		if err != nil {
			continue // torn spec payload: nothing actionable survives
		}
		mm.recovered = append(mm.recovered, &RecoveredJob{ID: id, Spec: spec})
	}
	return nil
}

// recoverLoop resubmits the journal's admitted-but-unplaced jobs, each
// as soon as the cluster can hold it — after a full restart the NMs
// re-register (or rejoin) on their own schedule, so recovery waits for
// the membership rather than failing the backlog against an empty map.
func (mm *MM) recoverLoop() {
	defer mm.wg.Done()
	for _, rj := range mm.recovered {
		for {
			mm.mu.Lock()
			closed := mm.closed
			enough := len(mm.nms) >= rj.Spec.Nodes
			mm.mu.Unlock()
			if closed {
				mm.mu.Lock()
				for _, r := range mm.recovered {
					if !r.Done {
						r.Err, r.Done = ErrMMClosed, true
					}
				}
				mm.mu.Unlock()
				return
			}
			if enough {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		// Retire the old ID durably before the rerun journals its own
		// admission — otherwise every future restart would re-recover
		// (and re-run) this job under its original ID.
		mm.jlog(journal.JobFailed, rj.ID, 0, []byte("resubmitted after restart"))
		rep, err := mm.RunJob(rj.Spec)
		mm.mu.Lock()
		rj.Report, rj.Err, rj.Done = rep, err, true
		mm.mu.Unlock()
	}
}

// RecoveredJobs snapshots the journal-recovery backlog: the jobs a
// restarted MM found admitted but unplaced, with their rerun outcomes
// so far. Empty for an MM that did not restart (or has no journal).
func (mm *MM) RecoveredJobs() []RecoveredJob {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]RecoveredJob, 0, len(mm.recovered))
	for _, rj := range mm.recovered {
		out = append(out, *rj)
	}
	return out
}

// jlog appends one event to the journal; a no-op without one. Callers
// may hold mm.mu: the journal has its own lock and never takes mm.mu.
func (mm *MM) jlog(t journal.EventType, job, node int, data []byte) {
	if mm.jnl == nil {
		return
	}
	mm.jnl.Append(journal.Event{Type: t, Job: job, Node: node, Data: data})
}

// maybeRotateJournal condenses the log once the active segment outgrows
// its limit: the snapshot is the current membership plus every
// unfinished job, written to a fresh segment that atomically replaces
// the history. Holding mm.mu across the rotation keeps the snapshot and
// the segment swap consistent with concurrent appends.
func (mm *MM) maybeRotateJournal() {
	if mm.jnl == nil || !mm.jnl.NeedsRotation() {
		return
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	var snap []journal.Event
	ids := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		snap = append(snap, journal.Event{Type: journal.NodeJoin, Node: id})
	}
	for id := range mm.ctlExclude {
		snap = append(snap, journal.Event{Type: journal.NodeDead, Node: id})
	}
	for _, j := range mm.admitQ {
		snap = append(snap, journal.Event{Type: journal.JobAdmitted, Job: j.id, Data: encodeSpec(&j.spec)})
	}
	for id, j := range mm.jobs {
		snap = append(snap,
			journal.Event{Type: journal.JobAdmitted, Job: id, Data: encodeSpec(&j.spec)},
			journal.Event{Type: journal.JobPlanned, Job: id})
	}
	mm.jnl.Rotate(snap)
}

// JournalPath returns the journal directory ("" without one).
func (mm *MM) JournalPath() string {
	if mm.jnl == nil {
		return ""
	}
	return mm.jnl.Dir()
}

// Closed reports whether the MM has shut down — how a federation tells
// a stale leaf handle from a live one after a leaf restart.
func (mm *MM) Closed() bool {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.closed
}

// NodeEligible reports whether a node is in the placement rotation:
// registered, not convicted, and past any rejoin probation.
func (mm *MM) NodeEligible(node int) bool {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.nms[node] != nil && !mm.ctlExclude[node] && mm.probation[node] == 0
}

// capOrUnbounded maps an undeclared (zero) capacity to the unbounded
// sentinel, so clusters that never mention capacities place as before.
func capOrUnbounded(c place.Vec) place.Vec {
	if c.IsZero() {
		return place.Unbounded
	}
	return c
}

// syncPlaceLocked aligns the placement engine's eligibility bit for one
// node with the membership maps — registered, not convicted, past any
// probation — which stay the source of truth. Called at every mutation
// of those maps; caller holds mm.mu.
func (mm *MM) syncPlaceLocked(node int) {
	mm.place.SetEligible(node, mm.nms[node] != nil && !mm.ctlExclude[node] && mm.probation[node] == 0)
}

// NodeInfo is one row of the MM's per-node placement snapshot.
type NodeInfo struct {
	Node     int
	CPUs     int       // from the NM's registration (0 if currently unregistered)
	Cap      place.Vec // declared capacity (Unbounded when undeclared)
	Used     place.Vec // usage committed by running jobs' demands
	Load     int       // gang members currently charged to the node
	Eligible bool      // in the placement rotation right now
}

// NodeTable snapshots every node the placement engine tracks, in
// ascending node-ID order — the livecluster demo's capacity/load view.
func (mm *MM) NodeTable() []NodeInfo {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	var out []NodeInfo
	mm.place.Each(func(id int, cap, used place.Vec, load int, eligible bool) {
		info := NodeInfo{Node: id, Cap: cap, Used: used, Load: load, Eligible: eligible}
		if l := mm.nms[id]; l != nil {
			info.CPUs = l.cpus
		}
		out = append(out, info)
	})
	return out
}

// ProbationLeft returns how many heartbeat-clean periods a rejoined
// node still owes before placement trusts it again (0 once eligible).
func (mm *MM) ProbationLeft(node int) int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.probation[node]
}

// Addr returns the listening address (for NMs and clients to dial).
func (mm *MM) Addr() string { return mm.ln.Addr().String() }

// Launched returns the number of jobs accepted for execution.
func (mm *MM) Launched() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.launched
}

// Completed returns the number of jobs that finished successfully.
func (mm *MM) Completed() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.completed
}

// Strobes returns the number of gang context-switch multicasts issued.
func (mm *MM) Strobes() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.strobes
}

// NMs returns the registered node IDs in ascending order.
func (mm *MM) NMs() []int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Close shuts the MM down and disconnects everyone.
func (mm *MM) Close() { mm.shutdown(false) }

// Kill is the abrupt shutdown — the leaf-manager process death a
// federation must survive. Where Close lets in-flight submissions drain
// (their jobs fail against the closed cluster and report back), Kill
// severs the client connections immediately, so a root MM waiting on a
// delegated job sees the link die now rather than after the dead leaf's
// transfer machinery times out.
func (mm *MM) Kill() { mm.shutdown(true) }

func (mm *MM) shutdown(abrupt bool) {
	if mm.strobeStop != nil {
		close(mm.strobeStop)
		mm.strobeStop = nil
	}
	mm.mu.Lock()
	if !mm.closed {
		mm.closed = true
		close(mm.closing)
	}
	mm.admit.Broadcast() // release jobs parked in the admission queue
	stops := mm.detStops
	mm.detStops = nil
	for _, l := range mm.nms {
		l.c.close()
	}
	if abrupt {
		for c := range mm.clients {
			c.close()
		}
	}
	mm.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
	mm.ln.Close()
	mm.wg.Wait()
	if mm.jnl != nil {
		mm.jnl.Close()
	}
}

func (mm *MM) acceptLoop() {
	defer mm.wg.Done()
	for {
		nc, err := mm.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if mm.cfg.WrapConn != nil {
			nc = mm.cfg.WrapConn(nc)
		}
		prof := bulkProfile
		if mm.cfg.Lite {
			prof = liteProfile
		}
		mm.wg.Add(1)
		go mm.handleConn(newConnProf(nc, prof))
	}
}

// handleConn demultiplexes by the first message: NMs start with Register,
// clients with Submit.
func (mm *MM) handleConn(c *conn) {
	defer mm.wg.Done()
	first, err := c.recv()
	if err != nil {
		c.close()
		return
	}
	switch {
	case first.Register != nil:
		mm.serveNM(c, first.Register)
	case first.Rejoin != nil:
		mm.serveRejoin(c, first.Rejoin)
	case first.Submit != nil:
		mm.serveClient(c, first.Submit.Spec)
	case first.StatusQ != nil:
		rep := mm.status()
		c.send(Message{StatusR: &rep})
		c.close()
	default:
		c.close()
	}
}

// status builds the cluster snapshot.
func (mm *MM) status() StatusRep {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	nodes := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	return StatusRep{
		Nodes:     nodes,
		Jobs:      len(mm.jobs),
		Queued:    len(mm.admitQ),
		Launched:  mm.launched,
		Completed: mm.completed,
		Strobes:   mm.strobes,
		Gang:      mm.cfg.GangQuantum > 0,
	}
}

// serveNM registers a Node Manager and pumps its notifications.
func (mm *MM) serveNM(c *conn, reg *Register) {
	link := &nmLink{node: reg.Node, cpus: reg.CPUs, addr: reg.Addr, c: c}
	mm.mu.Lock()
	if mm.closed {
		mm.mu.Unlock()
		c.close()
		return
	}
	mm.nms[reg.Node] = link
	mm.place.SetNode(reg.Node, capOrUnbounded(reg.Cap))
	mm.syncPlaceLocked(reg.Node)
	mm.mu.Unlock()
	mm.jlog(journal.NodeJoin, 0, reg.Node, nil)
	mm.pumpNM(c, link, reg.Node)
}

// serveRejoin readmits an NM the cluster has already written off — one
// the failure detector convicted, or one whose process restarted. The
// conviction is cleared (both the placement exclusion and, via the
// rejoined set, the detector loop's private streak latches), a
// probation window is armed when a detector is running, and only then
// is the acknowledgement sent: by the time the NM starts serving
// traffic the next control-tree epoch already wires it back in. Its
// placement eligibility returns after probation; its chunk cache makes
// it a warm relay immediately.
func (mm *MM) serveRejoin(c *conn, rj *Rejoin) {
	link := &nmLink{node: rj.Node, cpus: rj.CPUs, addr: rj.Addr, c: c}
	mm.mu.Lock()
	if mm.closed {
		mm.mu.Unlock()
		c.send(Message{RejoinAck: &RejoinAck{Err: "MM closed"}})
		c.close()
		return
	}
	delete(mm.ctlExclude, rj.Node)
	mm.rejoined[rj.Node] = true
	prob := 0
	if mm.hbActive > 0 {
		prob = mm.cfg.RejoinProbation
	}
	if prob > 0 {
		mm.probation[rj.Node] = prob
	} else {
		delete(mm.probation, rj.Node)
	}
	mm.nms[rj.Node] = link
	mm.place.SetNode(rj.Node, capOrUnbounded(rj.Cap))
	mm.syncPlaceLocked(rj.Node)
	mm.mu.Unlock()
	mm.jlog(journal.NodeRejoin, 0, rj.Node, nil)
	if err := c.send(Message{RejoinAck: &RejoinAck{Probation: prob}}); err != nil {
		mm.mu.Lock()
		if mm.nms[rj.Node] == link {
			delete(mm.nms, rj.Node)
			mm.syncPlaceLocked(rj.Node)
		}
		mm.mu.Unlock()
		c.close()
		return
	}
	mm.pumpNM(c, link, rj.Node)
}

// pumpNM serves one NM link's notification stream until the link dies,
// then unregisters it — shared by fresh registrations and rejoins.
func (mm *MM) pumpNM(c *conn, link *nmLink, node int) {
	defer func() {
		mm.mu.Lock()
		if mm.nms[node] == link {
			delete(mm.nms, node)
			mm.syncPlaceLocked(node)
		}
		delete(mm.budgets, c)
		mm.mu.Unlock()
		c.close()
	}()
	for {
		m, err := c.recv()
		if err != nil {
			return
		}
		switch {
		case m.FragAck != nil:
			mm.onFragAck(m.FragAck)
		case m.PlanAck != nil:
			mm.onPlanAck(m.PlanAck)
		case m.ReplanAck != nil:
			mm.onReplanAck(m.ReplanAck)
		case m.Have != nil:
			mm.onHave(m.Have)
		case m.PeerDown != nil:
			mm.onPeerDown(m.PeerDown)
		case m.Term != nil:
			mm.onTerm(m.Term)
		case m.Pong != nil:
			mm.onPong(m.Pong)
		case m.StrobeAck != nil:
			mm.onStrobeAck(m.StrobeAck)
		}
	}
}

func (mm *MM) jobByID(id int) *liveJob {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.jobs[id]
}

// stripeByID returns the job's stripe s (nil if out of range). Caller
// holds j.mu.
func (j *liveJob) stripeByID(s int) *stripeState {
	if s < 0 || s >= len(j.stripes) {
		return nil
	}
	return j.stripes[s]
}

func (mm *MM) onFragAck(a *FragAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !a.OK {
		// First failure wins: a rejected fragment forces every later
		// fragment out of order, and those cascade nacks would otherwise
		// mask the original corruption site. Nacks carry the global chunk
		// index, so the report names the corruption site unambiguously.
		if j.fail == nil {
			j.fail = rejectError{node: a.Node, index: a.Index}
		}
	} else if ss := j.stripeByID(a.Stripe); ss != nil &&
		a.Epoch == ss.epoch && a.Index+1 > ss.acked[a.Node] {
		// Credit from an older tree epoch vouched for a different
		// subtree shape; only current-epoch credit moves the window.
		// Cumulative acks are stripe-local counts.
		ss.acked[a.Node] = a.Index + 1
		// Acknowledged chunks hand their bytes back to the shared link
		// budget, unblocking whatever job is waiting on that link.
		j.releaseAckedLocked(ss.id, a.Node, a.Index+1)
	}
	j.cond.Broadcast()
}

func (mm *MM) onPlanAck(a *PlanAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if a.Err != "" {
		j.fail = fmt.Errorf("node %d could not set up its relay plan: %s", a.Node, a.Err)
	}
	j.planned[a.Node] = true
	j.cond.Broadcast()
}

func (mm *MM) onReplanAck(a *ReplanAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ss := j.stripeByID(a.Stripe)
	if ss == nil || a.Epoch != ss.epoch {
		return // stale round
	}
	if a.Err != "" {
		if j.fail == nil {
			j.fail = fmt.Errorf("node %d could not rewire its relay plan: %s", a.Node, a.Err)
		}
	}
	ss.planned[a.Node] = true
	ss.received[a.Node] = a.Received
	j.cond.Broadcast()
}

// onPeerDown records an NM's report that a relay child is unreachable —
// failure-detector evidence that wakes the transfer immediately instead
// of letting it burn the whole window timeout.
func (mm *MM) onPeerDown(d *PeerDown) {
	j := mm.jobByID(d.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.peerDown == nil {
		j.peerDown = make(map[int]string)
	}
	if _, seen := j.peerDown[d.Node]; !seen {
		j.peerDown[d.Node] = fmt.Sprintf("parent %d could not reach it: %s", d.From, d.Err)
	}
	if j.fail == nil {
		j.fail = downError{node: d.Node, cause: j.peerDown[d.Node]}
	}
	j.cond.Broadcast()
}

func (mm *MM) onTerm(t *Term) {
	if j := mm.jobByID(t.Job); j != nil {
		j.terms <- t.Node
	}
}

// serveClient runs one job's full lifecycle on behalf of a submitter.
func (mm *MM) serveClient(c *conn, spec JobSpec) {
	defer c.close()
	mm.mu.Lock()
	mm.clients[c] = struct{}{}
	mm.mu.Unlock()
	defer func() {
		mm.mu.Lock()
		delete(mm.clients, c)
		mm.mu.Unlock()
	}()
	rep, err := mm.RunJob(spec)
	done := Done{Report: rep}
	if err != nil {
		done.Err = err.Error()
	}
	c.send(Message{Done: &done})
}

// RunJob executes a job synchronously: admit (queueing behind the
// concurrency cap under the configured admission policy), place on the
// least-loaded nodes, build the forwarding tree, distribute the binary
// through it with windowed flow control (self-healing around node
// failures), launch, and collect termination reports. It returns the
// paper-style timing decomposition. Up to MMConfig.MaxConcurrent jobs
// stream concurrently, multiplexed over the shared relay links by the
// job-tagged frame headers.
func (mm *MM) RunJob(spec JobSpec) (Report, error) {
	if spec.Nodes <= 0 || spec.PEsPerNode <= 0 {
		return Report{}, fmt.Errorf("livenet: bad job geometry %dx%d", spec.Nodes, spec.PEsPerNode)
	}
	if len(spec.Place) > 0 && len(spec.Place) != spec.Nodes {
		return Report{}, fmt.Errorf("livenet: Place names %d nodes, job wants %d", len(spec.Place), spec.Nodes)
	}
	mm.maybeRotateJournal()
	mm.mu.Lock()
	if mm.closed {
		mm.mu.Unlock()
		return Report{}, ErrMMClosed
	}
	if len(mm.nms) < spec.Nodes {
		// Fast-fail before queueing: a cluster that cannot ever hold the
		// job should not park it in the admission queue.
		n := len(mm.nms)
		mm.mu.Unlock()
		return Report{}, fmt.Errorf("livenet: %d NMs registered, job wants %d", n, spec.Nodes)
	}
	mm.nextJob++
	frags := (spec.BinaryBytes + mm.cfg.FragBytes - 1) / mm.cfg.FragBytes
	if frags == 0 {
		frags = 1
	}
	j := &liveJob{
		id:      mm.nextJob,
		spec:    spec,
		row:     -1,
		frags:   frags,
		phase:   phaseAdmitted,
		qStart:  time.Now(),
		planned: make(map[int]bool),
		terms:   make(chan int, spec.Nodes),
	}
	j.cond = sync.NewCond(&j.mu)
	mm.jlog(journal.JobAdmitted, j.id, 0, encodeSpec(&spec))
	if err := mm.awaitAdmission(j); err != nil {
		mm.mu.Unlock()
		// A queued job bumped by shutdown is not failed — it is exactly
		// what a restarted MM resumes from the journal. Only real
		// admission failures are recorded durably.
		if !errors.Is(err, ErrMMClosed) {
			mm.jlog(journal.JobFailed, j.id, 0, []byte(err.Error()))
		}
		return Report{}, err
	}
	j.mu.Lock()
	j.queued = time.Since(j.qStart)
	j.mu.Unlock()
	nodes, err := mm.placeJob(&spec, nil)
	if err != nil {
		mm.streaming--
		mm.releaseRow(j.row)
		mm.admit.Broadcast()
		mm.mu.Unlock()
		mm.jlog(journal.JobFailed, j.id, 0, []byte(err.Error()))
		return Report{}, err
	}
	j.nodes = nodes
	for _, l := range nodes {
		j.placed = append(j.placed, l.node)
		mm.place.Commit(l.node, spec.Demand)
	}
	mm.rewireTree(j)
	mm.jobs[j.id] = j
	mm.launched++
	mm.mu.Unlock()
	mm.jlog(journal.JobPlanned, j.id, 0, nil)
	defer func() {
		mm.mu.Lock()
		delete(mm.jobs, j.id)
		mm.releaseRow(j.row)
		for _, n := range j.placed {
			mm.place.Release(n, spec.Demand)
		}
		mm.admit.Broadcast()
		mm.mu.Unlock()
	}()

	start := time.Now()
	err = mm.transfer(j)
	// Job-level retry: a transfer that exhausted its mid-stream recovery
	// (or lost its nodes outright) gets up to JobRetries fresh
	// placements on the surviving membership, each after a bounded,
	// jittered backoff. Content failures and shutdown are never retried.
	for attempt := 0; err != nil && attempt < mm.cfg.JobRetries && retryableJobErr(err); attempt++ {
		time.Sleep(retryBackoff(j.id, attempt))
		if rerr := mm.rehome(j); rerr != nil {
			err = fmt.Errorf("%w: job %d: re-placement failed: %v (after %v)",
				ErrJobRetriesExhausted, j.id, rerr, err)
			break
		}
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		err = mm.transfer(j)
	}
	if err != nil && mm.cfg.JobRetries > 0 && retryableJobErr(err) {
		err = fmt.Errorf("%w: job %d still failing after %d re-placements: %v",
			ErrJobRetriesExhausted, j.id, j.retries, err)
	}
	// The streaming slot frees as soon as the transfer phase is over —
	// this job's execution overlaps the next job's stream.
	mm.releaseStream()
	if err != nil {
		j.setPhase(phaseFailed)
		mm.abort(j, err)
		mm.jlog(journal.JobFailed, j.id, 0, []byte(err.Error()))
		return Report{}, err
	}
	send := time.Since(start)

	// Launch: tell each surviving NM its ranks (re-ranked densely over
	// the survivor set if recovery shrank the job).
	j.mu.Lock()
	nodes = append([]*nmLink(nil), j.nodes...)
	j.mu.Unlock()
	for i, link := range nodes {
		ranks := make([]int, 0, spec.PEsPerNode)
		for r := 0; r < spec.PEsPerNode; r++ {
			ranks = append(ranks, i*spec.PEsPerNode+r)
		}
		msg := Message{Launch: &Launch{Job: j.id, Spec: spec, Ranks: ranks,
			BinSize: spec.BinaryBytes, Row: j.row, Gang: mm.cfg.GangQuantum > 0}}
		if err := link.c.send(msg); err != nil {
			// A partial launch must not strand the nodes that already
			// forked: abort the whole job so every NM cancels its gates,
			// reaps its processes, and drops the transfer state.
			err = fmt.Errorf("livenet: launch to node %d: %w", link.node, err)
			j.setPhase(phaseFailed)
			mm.abort(j, err)
			mm.jlog(journal.JobFailed, j.id, 0, []byte(err.Error()))
			return Report{}, err
		}
	}
	j.setPhase(phaseLaunched)
	mm.jlog(journal.JobLaunched, j.id, 0, nil)

	// Collect termination reports. The termination deadline is its own
	// budget — the program's expected duration plus TermTimeout — and
	// is independent of the transfer-phase AckTimeout.
	deadline := time.NewTimer(spec.Program.Duration + mm.cfg.TermTimeout)
	defer deadline.Stop()
	got := make(map[int]bool)
	for len(got) < len(nodes) {
		select {
		case n := <-j.terms:
			got[n] = true
		case <-mm.closing:
			// No jlog: a launched-but-unfinished job is already marked
			// failed durably when the journal is replayed.
			return Report{}, fmt.Errorf("%w: job %d closed while awaiting termination",
				ErrMMClosed, j.id)
		case <-deadline.C:
			var missing []string
			for _, link := range nodes {
				if !got[link.node] {
					missing = append(missing, fmt.Sprintf("%d", link.node))
				}
			}
			terr := fmt.Errorf("%w: job %d: %d/%d nodes reported termination (missing %s)",
				ErrTermTimeout, j.id, len(got), len(nodes), strings.Join(missing, ", "))
			mm.jlog(journal.JobFailed, j.id, 0, []byte(terr.Error()))
			return Report{}, terr
		}
	}
	total := time.Since(start)
	mm.mu.Lock()
	mm.completed++
	mm.mu.Unlock()
	failed := append([]int(nil), j.failedNodes...)
	sort.Ints(failed)
	timeline := fmt.Sprintf("send=%v execute=%v nodes=%d pes=%d fanout=%d",
		send, total-send, len(nodes), len(nodes)*spec.PEsPerNode, mm.cfg.Fanout)
	if len(j.stripeReplans) > 1 {
		timeline += fmt.Sprintf(" stripes=%d", len(j.stripeReplans))
	}
	if j.queued > time.Millisecond {
		timeline += fmt.Sprintf(" queued=%v", j.queued.Round(time.Millisecond))
	}
	if j.bytesSaved > 0 {
		timeline += fmt.Sprintf(" delta: streamed %d/%d chunks, %d B served from caches",
			j.chunksSent, j.frags, j.bytesSaved)
	}
	if len(failed) > 0 {
		timeline += fmt.Sprintf(" failed=%v replans=%d recovery=%v", failed, j.replans, j.recovery)
	}
	j.mu.Lock()
	winPeak := j.winPeak
	j.mu.Unlock()
	j.setPhase(phaseDone)
	mm.jlog(journal.JobDone, j.id, 0, nil)
	return Report{
		JobID:         j.id,
		Send:          send,
		Execute:       total - send,
		Total:         total,
		SendBytes:     j.sendBytes,
		Failed:        failed,
		Replans:       j.replans,
		Recovery:      j.recovery,
		StripeReplans: append([]int(nil), j.stripeReplans...),
		Chunks:        j.frags,
		ChunksSent:    j.chunksSent,
		BytesSaved:    j.bytesSaved,
		Queued:        j.queued,
		Row:           j.row,
		WindowPeak:    winPeak,
		Timeline:      timeline,
		Retries:       j.retries,
	}, nil
}

// retryableJobErr reports whether a transfer failure is worth a fresh
// placement: content rejections are not (the payload itself is wrong),
// shutdown is not, and an already-terminal retry verdict is final.
func retryableJobErr(err error) bool {
	var reject rejectError
	if errors.As(err, &reject) {
		return false
	}
	return !errors.Is(err, ErrMMClosed) && !errors.Is(err, ErrJobRetriesExhausted)
}

// retryBackoff is the bounded, jittered wait before a job's next
// placement attempt: exponential from 25 ms, capped at 500 ms, with up
// to half the base again in deterministic per-(job, attempt) jitter so
// simultaneous victims of one dead node do not re-place in lockstep.
func retryBackoff(job, attempt int) time.Duration {
	base := 25 * time.Millisecond << uint(attempt)
	if base > 500*time.Millisecond {
		base = 500 * time.Millisecond
	}
	jitter := time.Duration(rng.Mix64(uint64(job)<<20^uint64(attempt)) % uint64(base/2))
	return base + jitter
}

// rehome gives a failed job a fresh placement on the current
// membership, excluding every node that already failed it, and resets
// its transfer state to epoch zero — the next transfer re-runs the
// plan and manifest rounds from scratch, so surviving caches turn the
// replay into a mostly-delta stream. Pinned jobs cannot move: they are
// only re-dialed if every pinned node is still unblemished.
func (mm *MM) rehome(j *liveJob) error {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if mm.closed {
		return ErrMMClosed
	}
	bad := make(map[int]bool, len(j.failedNodes))
	for _, n := range j.failedNodes {
		bad[n] = true
	}
	nodes, err := mm.placeJob(&j.spec, bad)
	if err != nil {
		return err
	}
	for _, n := range j.placed {
		mm.place.Release(n, j.spec.Demand)
	}
	j.placed = j.placed[:0]
	for _, l := range nodes {
		j.placed = append(j.placed, l.node)
		mm.place.Commit(l.node, j.spec.Demand)
	}
	j.mu.Lock()
	j.nodes = nodes
	j.planned = make(map[int]bool)
	j.fail = nil
	j.peerDown = nil
	mm.rewireTree(j) // rebuilds every stripe at epoch 0
	j.mu.Unlock()
	mm.jlog(journal.JobPlanned, j.id, 0, nil)
	return nil
}

// stripeCountFor is the job's stripe count: the configured count clamped
// to the chunk count (an extra stripe with nothing to carry is pure
// overhead) and the node count.
func (mm *MM) stripeCountFor(j *liveJob) int {
	k := mm.cfg.Stripes
	if k > j.frags {
		k = j.frags
	}
	if n := len(j.nodes); k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// rewireTree rebuilds the job's full striped forwarding plan over the
// current node set: every stripe's tree at epoch 0. Used at placement
// and re-placement (rehome); mid-transfer recovery rewires single
// stripes via rewireStripe instead. Caller must hold j.mu or have
// exclusive access to j.
func (mm *MM) rewireTree(j *liveJob) {
	k := mm.stripeCountFor(j)
	j.stripes = j.stripes[:0]
	for s := 0; s < k; s++ {
		ss := &stripeState{id: s, needManifest: true}
		mm.rewireStripe(j, ss, k)
		j.stripes = append(j.stripes, ss)
	}
	if len(j.stripeReplans) != k {
		j.stripeReplans = make([]int, k)
	}
}

// rewireStripe rebuilds one stripe's tree bookkeeping over the job's
// current node set: the position-ordered snapshot (stripe s's position q
// is held by the node at placement index (q + s·n/k) mod n), the MM's
// direct children, and the per-subtree membership map. Resets the
// stripe's ack/plan ledgers and stream cursor for a fresh epoch. Caller
// must hold j.mu or have exclusive access to j.
func (mm *MM) rewireStripe(j *liveJob, ss *stripeState, k int) {
	n := len(j.nodes)
	ss.order = ss.order[:0]
	for q := 0; q < n; q++ {
		ss.order = append(ss.order, j.nodes[stripeNodeAt(q, ss.id, k, n)])
	}
	ss.children = ss.children[:0]
	ss.subtree = make(map[int][]int)
	for _, pos := range mmChildren(n, mm.cfg.Fanout) {
		child := ss.order[pos]
		ss.children = append(ss.children, child)
		sub := make([]int, 0, 1)
		for _, p := range subtreeNodes(pos, n, mm.cfg.Fanout) {
			sub = append(sub, ss.order[p].node)
		}
		ss.subtree[child.node] = sub
	}
	ss.acked = make(map[int]int)
	ss.planned = make(map[int]bool)
	ss.received = make(map[int]int)
	ss.haves = nil
	ss.needs = nil
	ss.sendList = ss.sendList[:0]
	ss.streamPos = 0
	ss.streamAt = 0
	ss.done = false
}

// transfer streams the synthetic binary image down the forwarding tree,
// self-healing around node failures. Phases:
//
//  1. Plan: every node is told its relay children and acks once it has
//     dialed them, so no fragment can reach a node before that node
//     knows whom to relay to.
//  2. Manifest round: the MM multicasts the per-chunk content manifest
//     down the tree; every node splices what its chunk cache holds and
//     the per-subtree HAVE ledgers fold back up, so the MM learns the
//     set-union of missing chunks in one O(depth) round with O(fanout)
//     egress. Each link is then announced its need mask.
//  3. Stream: each missing chunk is generated once into a pooled buffer
//     and written only to the subtrees that miss it; NMs relay onward
//     (again selectively) and aggregate acks, so the MM's window check
//     sees one cumulative credit per subtree. A chunk goes out only
//     after every subtree has acknowledged the chunk a window behind it
//     (the live analogue of the COMPARE-AND-WRITE flow control over the
//     remote receive queues).
//  4. Recover (only on liveness failures): diagnose which nodes are
//     actually dead (accumulated PeerDown evidence plus directed
//     isolation probes over the control links), exclude them, and heal
//     each stripe by the cheapest sufficient means — a stripe the dead
//     node relayed for is rewired with an epoch-stamped Replan round
//     and re-runs its manifest round (the survivors' ledgers re-derive
//     the remaining need from their actual splice and cache state); a
//     stripe where it was only a leaf is pruned in place (a ChildDead
//     note to its tree parent) and resumes streaming under the same
//     epoch. Chunks are regenerated deterministically, so the send log
//     is the generator plus an index. Content failures (CRC
//     rejections) are never retried.
//
// With MMConfig.Stripes > 1 the phases run per stripe and overlap:
// each stripe pipelines its own manifest round and stream in a
// dedicated goroutine, so stripe i is streaming chunks while stripe j
// still folds HAVEs, with the shared per-link budgets arbitrating the
// conns they cross.
func (mm *MM) transfer(j *liveJob) error {
	// Whatever path exits the transfer, return every byte this job still
	// holds against the shared link budgets — a failed job must not leave
	// a budget leaked and starve its link peers.
	defer j.releaseAllHeld()
	j.man = mm.buildManifest(j)

	j.setPhase(phasePlanned)
	err := mm.plan(j)
	if err == nil {
		err = mm.runStripes(j)
	}
	for replans := 0; err != nil; replans++ {
		var reject rejectError
		if errors.As(err, &reject) {
			return err // content failure: replanning cannot help
		}
		if replans >= mm.cfg.MaxReplans {
			return fmt.Errorf("%w: job %d: giving up after %d replans: %w", ErrReplansExhausted, j.id, replans, err)
		}
		t0 := time.Now()
		dead := mm.diagnose(j, err)
		if len(dead) == 0 {
			return err // nothing provably dead: surface the original failure
		}
		rerr := mm.recoverStripes(j, dead)
		if rerr != nil {
			err = rerr // may itself be recoverable; loop diagnoses again
			j.recovery += time.Since(t0)
			continue
		}
		j.replans++
		j.recovery += time.Since(t0)
		mm.jlog(journal.JobEpoch, j.id, 0, nil)
		err = mm.runStripes(j)
	}
	return nil
}

// runStripes drives every unfinished stripe's manifest round and stream
// concurrently — the phase pipeline. Each stripe goroutine runs its own
// manifest round first (only when its epoch is fresh: initial transfer
// or just replanned) and streams immediately after, so fast stripes
// push payload while slow ones still fold HAVEs. The first failure is
// returned, content rejections winning over liveness errors so a replan
// loop never retries corruption.
func (mm *MM) runStripes(j *liveJob) error {
	j.mu.Lock()
	stripes := make([]*stripeState, 0, len(j.stripes))
	manifest := false
	for _, ss := range j.stripes {
		if !ss.done {
			stripes = append(stripes, ss)
			manifest = manifest || ss.needManifest
		}
	}
	j.mu.Unlock()
	if len(stripes) == 0 {
		return nil
	}
	j.setPhase(phaseManifest)
	if manifest {
		mm.jlog(journal.JobManifest, j.id, 0, nil)
	}
	errs := make([]error, len(stripes))
	var wg sync.WaitGroup
	for i, ss := range stripes {
		wg.Add(1)
		go func(i int, ss *stripeState) {
			defer wg.Done()
			errs[i] = mm.runStripe(j, ss)
		}(i, ss)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var reject rejectError
		if errors.As(err, &reject) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// runStripe is one stripe's slice of the pipeline: manifest round if the
// epoch is fresh, then stream to drain.
func (mm *MM) runStripe(j *liveJob, ss *stripeState) error {
	j.mu.Lock()
	need := ss.needManifest
	j.mu.Unlock()
	if need {
		if err := mm.manifestStripe(j, ss); err != nil {
			return err
		}
		j.mu.Lock()
		ss.needManifest = false
		j.mu.Unlock()
	}
	if err := mm.streamStripe(j, ss); err != nil {
		return err
	}
	j.mu.Lock()
	ss.done = true
	j.mu.Unlock()
	return nil
}

// plan runs the initial topology barrier: every node learns its relay
// children in every stripe's tree and confirms before any fragment
// flows. One Plan message carries all stripes — a single job-wide
// barrier, not one per stripe.
func (mm *MM) plan(j *liveJob) error {
	j.mu.Lock()
	nodes := append([]*nmLink(nil), j.nodes...)
	stripes := append([]*stripeState(nil), j.stripes...)
	j.mu.Unlock()
	n := len(nodes)
	k := len(stripes)
	for i, link := range nodes {
		children := make([][]ChildRef, k)
		for _, ss := range stripes {
			q := stripePosOf(i, ss.id, k, n)
			kids := nodeChildren(q, n, mm.cfg.Fanout)
			refs := make([]ChildRef, 0, len(kids))
			for _, kid := range kids {
				refs = append(refs, ChildRef{Node: ss.order[kid].node, Addr: ss.order[kid].addr})
			}
			children[ss.id] = refs
		}
		msg := Message{Plan: &Plan{Job: j.id, Frags: j.frags, Fanout: mm.cfg.Fanout,
			Stripes: k, Children: children}}
		if err := link.c.send(msg); err != nil {
			return downError{node: link.node, cause: fmt.Sprintf("transfer plan write: %v", err)}
		}
	}
	return mm.awaitPlans(j, time.Now().Add(mm.cfg.AckTimeout))
}

// buildManifest computes (or retrieves) the job's transfer manifest: the
// per-chunk content hashes and CRCs plus the whole-image digest. For
// seeded (content-addressed) images the result is cached MM-side keyed
// by content identity, so a warm relaunch skips the generate-and-hash
// pass over the whole image and opens at near-control-plane cost.
func (mm *MM) buildManifest(j *liveJob) *manifestData {
	frag := mm.cfg.FragBytes
	var key manifestKey
	cacheable := j.spec.ImageSeed != 0
	if cacheable {
		key = manifestKey{seed: j.spec.ImageSeed, patchFP: patchFingerprint(j.spec.ImagePatch),
			bytes: j.spec.BinaryBytes, frag: frag}
		mm.mu.Lock()
		d := mm.manifests[key]
		mm.mu.Unlock()
		if d != nil && patchEqual(d.patch, j.spec.ImagePatch) {
			return d
		}
	}
	d := &manifestData{
		seed:   j.spec.ImageSeed,
		hashes: make([]uint64, j.frags),
		crcs:   make([]uint32, j.frags),
	}
	// Chunks are independent (generate + hash + CRC each), so the pass
	// fans out over a small worker pool; the whole-image digest then
	// folds the per-chunk CRCs in order with crc32Combine, which equals
	// the sequential crc32.Update over the concatenation.
	parallelChunks(j.frags, func(i int) {
		size := chunkSizeFor(&j.spec, frag, i)
		data := grabFragBuf(size)
		fillChunkInto(&j.spec, j.id, i, data)
		d.hashes[i] = chunkcache.Hash64(data)
		d.crcs[i] = fragCRC(data)
		releaseFragBuf(data)
	})
	for i := 0; i < j.frags; i++ {
		size := chunkSizeFor(&j.spec, frag, i)
		d.imageCRC = crc32Combine(d.imageCRC, d.crcs[i], int64(size))
		d.total += int64(size)
	}
	if cacheable {
		d.patch = make(map[int]uint64, len(j.spec.ImagePatch))
		for k, v := range j.spec.ImagePatch {
			d.patch[k] = v
		}
		mm.mu.Lock()
		if len(mm.manifests) >= 16 {
			// Tiny bound, rarely hit: images come from a handful of seeds.
			mm.manifests = make(map[manifestKey]*manifestData)
		}
		mm.manifests[key] = d
		mm.mu.Unlock()
	}
	return d
}

// chunkSizeFor is the byte length of chunk i under the given chunking —
// the floor of 1 keeps zero-byte jobs streaming one sentinel chunk.
func chunkSizeFor(spec *JobSpec, frag, i int) int {
	size := spec.BinaryBytes - i*frag
	if size > frag {
		size = frag
	}
	if size <= 0 {
		size = 1
	}
	return size
}

// fillChunkInto generates chunk i's bytes: seeded tile content for
// content-addressed images (stable across jobs, so caches hit on
// relaunch), the legacy job-keyed ramp otherwise.
func fillChunkInto(spec *JobSpec, job, i int, b []byte) {
	if spec.ImageSeed != 0 {
		seededFragInto(b, chunkSeed(spec, i), i)
	} else {
		fragPatternInto(b, job, i)
	}
}

// manifestStripe opens one streaming epoch of a stripe's delta path:
// multicast the manifest down the stripe's tree, wait for each direct
// child's folded HAVE ledger, derive the per-subtree need masks and the
// stripe's send list (restricted to the chunks the round-robin
// interleave assigns this stripe), and announce the masks down the
// tree. After a stripe replan the round simply runs again under the new
// epoch: the survivors' ledgers re-derive what is still missing from
// their actual splice and cache state.
func (mm *MM) manifestStripe(j *liveJob, ss *stripeState) error {
	j.mu.Lock()
	children := append([]*nmLink(nil), ss.children...)
	epoch := ss.epoch
	k := len(j.stripes)
	ss.haves = make(map[int][]uint64)
	j.mu.Unlock()

	m := &Manifest{Job: j.id, Epoch: epoch, Stripe: ss.id, ChunkBytes: mm.cfg.FragBytes,
		ImageCRC: j.man.imageCRC, TotalBytes: j.man.total,
		Hashes: j.man.hashes, CRCs: j.man.crcs}
	for _, link := range children {
		if err := link.c.send(Message{Manifest: m}); err != nil {
			return downError{node: link.node, cause: fmt.Sprintf("manifest write: %v", err)}
		}
		// Relay links are shared across jobs, so per-conn byte counters
		// cannot be attributed to one job; account egress by frame size
		// (type byte + 29-byte header + 12 bytes per chunk entry).
		j.mu.Lock()
		j.sendBytes += int64(30 + 12*len(m.Hashes))
		j.mu.Unlock()
	}
	if err := mm.awaitStripeHaves(j, ss, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
		return err
	}

	j.mu.Lock()
	n := j.frags
	ss.needs = make(map[int][]uint64)
	union := make([]uint64, bitWords(n))
	for _, link := range children {
		have := ss.haves[link.node]
		need := make([]uint64, bitWords(n))
		// Only this stripe's chunks (i ≡ stripe mod k) are derived here:
		// the other stripes run their own rounds over their own trees.
		for i := ss.id; i < n; i += k {
			if !maskGet(have, i) {
				bitSet(need, i)
				bitSet(union, i)
			} else {
				j.bytesSaved += int64(chunkSizeFor(&j.spec, mm.cfg.FragBytes, i))
			}
		}
		ss.needs[link.node] = need
	}
	ss.sendList = ss.sendList[:0]
	for i := ss.id; i < n; i += k {
		if bitGet(union, i) {
			ss.sendList = append(ss.sendList, i)
		}
	}
	ss.streamPos = 0
	ss.streamAt = 0
	j.chunksSent += len(ss.sendList)
	needs := ss.needs
	j.mu.Unlock()

	for _, link := range children {
		msg := Message{NeedMask: &NeedMask{Job: j.id, Epoch: epoch, Stripe: ss.id, Bits: needs[link.node]}}
		if err := link.c.send(msg); err != nil {
			return downError{node: link.node, cause: fmt.Sprintf("need-mask write: %v", err)}
		}
		j.mu.Lock()
		j.sendBytes += int64(12 + 8*len(needs[link.node]))
		j.mu.Unlock()
	}
	return nil
}

// awaitStripeHaves blocks until every direct child of the stripe's tree
// reported its subtree's HAVE ledger for the stripe's current epoch; on
// timeout the error names the silent subtree roots.
func (mm *MM) awaitStripeHaves(j *liveJob, ss *stripeState, deadline time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		missing := ""
		for _, link := range ss.children {
			if _, ok := ss.haves[link.node]; !ok {
				if missing != "" {
					missing += ", "
				}
				missing += fmt.Sprintf("%d", link.node)
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: job %d stripe %d: chunk ledger (HAVE) unreported by nodes %s",
				ErrTransferTimeout, j.id, ss.id, missing)
		}
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// onHave records a direct child's folded subtree HAVE ledger for the
// stripe's current epoch.
func (mm *MM) onHave(h *Have) {
	j := mm.jobByID(h.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if ss := j.stripeByID(h.Stripe); ss != nil && h.Epoch == ss.epoch && ss.haves != nil {
		ss.haves[h.Node] = append([]uint64(nil), h.Bits...)
	}
	j.cond.Broadcast()
}

// streamStripe pushes the stripe's current send list (the union of its
// missing chunks, ascending) down the stripe's tree, writing each chunk
// only to the subtrees whose need mask claims it, and waits for the
// stripe's window to drain. Resumable: after a leaf prune the cursor is
// rewound to the slowest surviving subtree's credit and the loop simply
// continues under the same epoch (duplicates re-ack idempotently).
func (mm *MM) streamStripe(j *liveJob, ss *stripeState) error {
	j.setPhase(phaseStreaming)
	j.mu.Lock()
	children := append([]*nmLink(nil), ss.children...)
	needs := ss.needs
	list := append([]int(nil), ss.sendList...)
	nodeCount := len(ss.order)
	start := ss.streamPos
	k := len(j.stripes)
	j.mu.Unlock()

	// The window is end-to-end (the credit the MM sees is the minimum over
	// whole subtrees), so its bandwidth-delay product spans every
	// store-and-forward hop down plus the ack aggregation back up. Scale
	// the configured per-hop depth by the tree depth or a deep tree would
	// be credit-starved: with Slots in flight over a depth-d relay chain,
	// d of them are resident in the pipe before the first cumulative ack
	// can even form. Cumulative acks advance through cached spans without
	// wire traffic, so pacing by the send list position is exact. All
	// credit arithmetic is stripe-local (chunk i is the stripe's i/k-th).
	window := mm.cfg.Slots * treeDepth(nodeCount, mm.cfg.Fanout)
	frag := mm.cfg.FragBytes
	for pos := start; pos < len(list); pos++ {
		i := list[pos]
		if pos >= window {
			if err := mm.awaitStripeCredit(j, ss, list[pos-window]/k+1, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
				return err
			}
		}
		size := chunkSizeFor(&j.spec, frag, i)
		data := grabFragBuf(size)
		fillChunkInto(&j.spec, j.id, i, data)
		f := &Frag{Job: j.id, Index: i, Stripe: ss.id, Last: i == j.frags-1, Data: data, CRC: j.man.crcs[i]}
		if mm.testCorrupt != nil {
			mm.testCorrupt(j.id, i, data)
		}
		frame := int64(19 + size) // type byte + fragment header + payload
		for _, link := range children {
			if !maskGet(needs[link.node], i) {
				continue // the whole subtree already holds this chunk
			}
			// Shared-link backpressure: reserve the frame's bytes against
			// the link budget before writing, held until this subtree's
			// cumulative ack covers the chunk. Concurrent jobs — and the
			// job's other stripes — crossing the same cached relay link
			// block here instead of queueing unbounded data ahead of each
			// other.
			lb := mm.linkBudgetFor(link.c)
			if err := lb.acquire(frame, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
				releaseFragBuf(data)
				return downError{node: link.node, cause: fmt.Sprintf("fragment %d: %v", i, err)}
			}
			j.holdChunk(ss.id, link.node, i/k, frame, lb)
			if err := link.c.sendFrag(f); err != nil {
				releaseFragBuf(data)
				return downError{node: link.node, cause: fmt.Sprintf("fragment %d write: %v", i, err)}
			}
			j.mu.Lock()
			j.sendBytes += frame
			j.mu.Unlock()
		}
		releaseFragBuf(data)
		j.mu.Lock()
		ss.streamPos = pos + 1
		if i/k+1 > ss.streamAt {
			ss.streamAt = i/k + 1
		}
		if used := j.windowUsedLocked(); used > j.winPeak {
			j.winPeak = used
		}
		j.mu.Unlock()
	}
	// Drain: wait until every subtree acknowledged every fragment of this
	// stripe — on a fully warm launch (empty send list) this is the whole
	// transfer: the manifest-time cache drains advance every node's
	// cumulative ack to the end without any payload on the wire. One
	// AckTimeout, started when the last fragment left, covers the whole
	// tail — the budget is not restarted on partial progress, so a
	// stalled node cannot stack the per-fragment timeout on top of the
	// final wait.
	return mm.awaitStripeCredit(j, ss, stripeChunks(j.frags, ss.id, k), time.Now().Add(mm.cfg.AckTimeout))
}

// diagnose turns a transfer failure into a verdict about which job
// nodes are actually dead: nodes named by connection-level evidence
// (failed writes, PeerDown reports) are taken at their parents' word —
// the relay layer already retried them — and every other node is sent
// a directed isolation probe over its control link, mirroring the
// simulator FaultDetector's per-node probe phase. Nodes that neither
// answer within ProbeGrace nor accept the probe write are dead.
func (mm *MM) diagnose(j *liveJob, cause error) map[int]string {
	dead := make(map[int]string)
	var down downError
	if errors.As(cause, &down) {
		dead[down.node] = down.cause
	}
	j.mu.Lock()
	for node, why := range j.peerDown {
		if _, seen := dead[node]; !seen {
			dead[node] = why
		}
	}
	j.peerDown = nil
	j.fail = nil // consumed; recovery starts from a clean slate
	nodes := append([]*nmLink(nil), j.nodes...)
	j.mu.Unlock()

	var suspects []*nmLink
	for _, link := range nodes {
		if _, gone := dead[link.node]; !gone {
			suspects = append(suspects, link)
		}
	}
	for node, why := range mm.probeNodes(suspects, mm.cfg.ProbeGrace) {
		dead[node] = why
	}
	return dead
}

// probeNodes pings each link directly and waits grace for the pongs.
// Returns the nodes that failed the probe, with the reason.
func (mm *MM) probeNodes(links []*nmLink, grace time.Duration) map[int]string {
	dead := make(map[int]string)
	if len(links) == 0 {
		return dead
	}
	pr := &probeRound{got: make(map[int]bool)}
	mm.mu.Lock()
	// Probe sequences live far above heartbeat sequences so the shared
	// Pong path can route them unambiguously.
	mm.probeSeq++
	seq := mm.probeSeq | 1<<40
	mm.probes[seq] = pr
	mm.mu.Unlock()
	for _, l := range links {
		if err := l.c.send(Message{Ping: &Ping{Seq: seq}}); err != nil {
			dead[l.node] = fmt.Sprintf("probe write failed: %v", err)
		}
	}
	time.Sleep(grace)
	pr.mu.Lock()
	for _, l := range links {
		if _, gone := dead[l.node]; !gone && !pr.got[l.node] {
			dead[l.node] = fmt.Sprintf("no answer to isolation probe within %v", grace)
		}
	}
	pr.mu.Unlock()
	mm.mu.Lock()
	delete(mm.probes, seq)
	mm.mu.Unlock()
	return dead
}

// recoverStripes excludes the dead nodes from the job and heals every
// affected stripe by the cheapest sufficient means. A stripe the dead
// node relayed for (interior in its tree) — or any stripe of a
// single-tree plan, preserving the legacy recovery path — is rewired
// over the survivors with an epoch-stamped Replan round and will re-run
// its manifest round. A stripe where every dead node was a leaf is
// pruned in place: the leaf's tree parent gets a ChildDead note so its
// aggregated acks stop waiting on the corpse, the MM drops it from its
// own ledger if it was a direct child, and the stripe resumes streaming
// under the same epoch — it never replans (stripeReplans stays 0).
func (mm *MM) recoverStripes(j *liveJob, dead map[int]string) error {
	j.mu.Lock()
	var survivors []*nmLink
	for _, l := range j.nodes {
		if _, gone := dead[l.node]; gone {
			j.failedNodes = append(j.failedNodes, l.node)
		} else {
			survivors = append(survivors, l)
		}
	}
	if len(survivors) == 0 {
		failed := append([]int(nil), j.failedNodes...)
		sort.Ints(failed)
		j.mu.Unlock()
		return fmt.Errorf("livenet: job %d: all nodes failed (%v)", j.id, failed)
	}
	j.nodes = survivors
	k := len(j.stripes)
	stripes := append([]*stripeState(nil), j.stripes...)
	j.mu.Unlock()
	// Unacknowledged chunks of the interrupted epoch hand their
	// link-budget bytes back now: replanned stripes reset their credit,
	// pruned stripes re-acquire for whatever they re-stream.
	j.releaseAllHeld()

	for _, ss := range stripes {
		j.mu.Lock()
		done := ss.done
		interior := false
		for q, link := range ss.order {
			if _, gone := dead[link.node]; gone && len(nodeChildren(q, len(ss.order), mm.cfg.Fanout)) > 0 {
				interior = true
				break
			}
		}
		j.mu.Unlock()
		if done {
			continue // fully drained before the failure; nothing to heal
		}
		if k == 1 || interior {
			if err := mm.replanStripe(j, ss, dead); err != nil {
				return err
			}
		} else if err := mm.pruneStripe(j, ss, dead); err != nil {
			return err
		}
	}
	return nil
}

// replanStripe rewires one stripe's tree over the job's surviving nodes
// with a Replan/ReplanAck round under a bumped epoch, then pre-credits
// the stripe's window to the slowest survivor's confirmed stripe-local
// progress (every survivor proved at least that much). The stripe's
// next act is a fresh manifest round: the survivors' HAVE ledgers
// re-derive what is still missing.
func (mm *MM) replanStripe(j *liveJob, ss *stripeState, dead map[int]string) error {
	j.mu.Lock()
	ss.epoch++
	epoch := ss.epoch
	k := len(j.stripes)
	mm.rewireStripe(j, ss, k)
	ss.needManifest = true
	j.stripeReplans[ss.id]++
	order := append([]*nmLink(nil), ss.order...)
	j.mu.Unlock()

	n := len(order)
	for q, link := range order {
		kids := nodeChildren(q, n, mm.cfg.Fanout)
		refs := make([]ChildRef, 0, len(kids))
		for _, kid := range kids {
			refs = append(refs, ChildRef{Node: order[kid].node, Addr: order[kid].addr})
		}
		msg := Message{Replan: &Replan{Job: j.id, Stripe: ss.id, Epoch: epoch, Frags: j.frags,
			Fanout: mm.cfg.Fanout, Children: refs}}
		if err := link.c.send(msg); err != nil {
			return downError{node: link.node, cause: fmt.Sprintf("replan write: %v", err)}
		}
	}
	if err := mm.awaitStripePlans(j, ss, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
		return err
	}

	j.mu.Lock()
	resume := stripeChunks(j.frags, ss.id, k)
	for _, l := range ss.order {
		if r := ss.received[l.node]; r < resume {
			resume = r
		}
	}
	for _, c := range ss.children {
		ss.acked[c.node] = resume
	}
	j.mu.Unlock()
	return nil
}

// pruneStripe removes dead leaves from one stripe without disturbing its
// epoch: a direct child of the MM is dropped from the stripe's own ack
// ledger; a deeper leaf's tree parent is told via ChildDead to stop
// counting it in the aggregated acks. The stream cursor rewinds to the
// slowest surviving subtree's credit so chunks the corpse's loss left
// unacknowledged are re-sent (duplicates re-ack idempotently), and the
// stripe resumes — no Replan round, no manifest round, no epoch bump.
func (mm *MM) pruneStripe(j *liveJob, ss *stripeState, dead map[int]string) error {
	type deadLeaf struct {
		parent *nmLink
		node   int
	}
	var notify []deadLeaf
	j.mu.Lock()
	n := len(ss.order)
	for q, link := range ss.order {
		if _, gone := dead[link.node]; !gone {
			continue
		}
		direct := false
		for ci, c := range ss.children {
			if c == link {
				// Direct child of the MM (and a leaf, or the stripe would
				// have replanned): drop it from the stripe's ledgers.
				ss.children = append(ss.children[:ci], ss.children[ci+1:]...)
				delete(ss.acked, link.node)
				delete(ss.subtree, link.node)
				if ss.needs != nil {
					delete(ss.needs, link.node)
				}
				direct = true
				break
			}
		}
		if direct {
			continue
		}
		if parentPos := q/mm.cfg.Fanout - 1; mm.cfg.Fanout > 1 && parentPos >= 0 && parentPos < n {
			notify = append(notify, deadLeaf{parent: ss.order[parentPos], node: link.node})
		}
	}
	if len(ss.children) == 0 {
		j.mu.Unlock()
		return fmt.Errorf("livenet: job %d stripe %d: no surviving subtree roots", j.id, ss.id)
	}
	// Rewind the cursor to the slowest surviving subtree's stripe-local
	// credit: everything below it is acknowledged everywhere, everything
	// past it may have died with the leaf's parent link buffer.
	resume := ss.streamAt
	for _, c := range ss.children {
		if got := ss.acked[c.node]; got < resume {
			resume = got
		}
	}
	pos := 0
	k := len(j.stripes)
	for pos < len(ss.sendList) && ss.sendList[pos]/k < resume {
		pos++
	}
	if pos < ss.streamPos {
		ss.streamPos = pos
	}
	j.mu.Unlock()

	for _, d := range notify {
		msg := Message{ChildDead: &ChildDead{Job: j.id, Stripe: ss.id, Node: d.node}}
		if err := d.parent.c.send(msg); err != nil {
			return downError{node: d.parent.node, cause: fmt.Sprintf("child-dead write: %v", err)}
		}
	}
	return nil
}

// awaitPlans blocks until every node of the job confirmed its relay
// plan (or replan); on timeout the error names the nodes that never
// answered.
func (mm *MM) awaitPlans(j *liveJob, deadline time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		missing := ""
		for _, link := range j.nodes {
			if !j.planned[link.node] {
				if missing != "" {
					missing += ", "
				}
				missing += fmt.Sprintf("%d", link.node)
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: job %d: relay plan unconfirmed by nodes %s", ErrTransferTimeout, j.id, missing)
		}
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// awaitStripePlans blocks until every node of the stripe's tree
// confirmed its replan for the stripe's current epoch; on timeout the
// error names the nodes that never answered.
func (mm *MM) awaitStripePlans(j *liveJob, ss *stripeState, deadline time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		missing := ""
		for _, link := range ss.order {
			if !ss.planned[link.node] {
				if missing != "" {
					missing += ", "
				}
				missing += fmt.Sprintf("%d", link.node)
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: job %d stripe %d: relay replan unconfirmed by nodes %s",
				ErrTransferTimeout, j.id, ss.id, missing)
		}
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// awaitStripeCredit blocks until every direct child of the stripe's
// tree has acknowledged `need` stripe-local fragments on behalf of its
// whole subtree (i.e. the stripe's window has room for the next
// fragment, or — with need = the stripe's total — the stripe has
// drained). On timeout the error names each node still owing credit,
// with its subtree and the credit it has delivered so far.
func (mm *MM) awaitStripeCredit(j *liveJob, ss *stripeState, need int, deadline time.Time) error {
	if need <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		var owing []string
		for _, link := range ss.children {
			if got := ss.acked[link.node]; got < need {
				if sub := ss.subtree[link.node]; len(sub) > 1 {
					owing = append(owing, fmt.Sprintf("node %d (subtree %v, acked %d)", link.node, sub, got))
				} else {
					owing = append(owing, fmt.Sprintf("node %d (acked %d)", link.node, got))
				}
			}
		}
		if len(owing) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: job %d stripe %d: flow control stalled awaiting fragment %d credit from %s",
				ErrTransferTimeout, j.id, ss.id, need-1, strings.Join(owing, ", "))
		}
		// Wake periodically to enforce the deadline even if no acks come.
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// abort tells every node of a failed job to drop its transfer state
// (including any half-spooled binary) and close its relay links (best
// effort) — the per-node cleanup of a clean abort.
func (mm *MM) abort(j *liveJob, reason error) {
	msg := Message{Abort: &Abort{Job: j.id, Reason: reason.Error()}}
	j.mu.Lock()
	nodes := append([]*nmLink(nil), j.nodes...)
	j.mu.Unlock()
	for _, link := range nodes {
		link.c.send(msg)
	}
}
