package livenet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// MMConfig tunes the live Machine Manager.
type MMConfig struct {
	// FragBytes is the binary-distribution fragment size (default 256 KB).
	FragBytes int
	// Slots is the per-node flow-control window, the live analogue of
	// the simulator's multi-buffering slots (default 4).
	Slots int
	// AckTimeout bounds how long a transfer waits for window credit
	// before declaring a node failed (default 10 s).
	AckTimeout time.Duration
	// GangQuantum, when positive, enables live gang scheduling: the MM
	// strobes a coordinated context switch every quantum and launches
	// processes gated.
	GangQuantum time.Duration
	// MPL is the number of gang timeslot rows (default 2 when gang
	// scheduling is enabled).
	MPL int
}

func (c *MMConfig) fill() {
	if c.FragBytes == 0 {
		c.FragBytes = 256 << 10
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.GangQuantum > 0 && c.MPL == 0 {
		c.MPL = 2
	}
}

// MM is the live Machine Manager: it accepts NM registrations and client
// job submissions on one TCP port.
type MM struct {
	cfg MMConfig
	ln  net.Listener

	mu      sync.Mutex
	nms     map[int]*nmLink
	jobs    map[int]*liveJob
	nextJob int
	closed  bool
	hb      *hbState

	// counters, guarded by mu: job lifecycle milestones and gang
	// context-switch multicasts issued.
	launched  int
	completed int
	strobes   int

	rowCount   []int
	strobeStop chan struct{}

	wg sync.WaitGroup
}

// nmLink is the MM's view of one registered Node Manager.
type nmLink struct {
	node int
	cpus int
	c    *conn
}

// liveJob is the MM-side state of one job in flight.
type liveJob struct {
	id    int
	spec  JobSpec
	row   int
	nodes []*nmLink

	mu    sync.Mutex
	acked map[int]int // node -> fragments acknowledged
	cond  *sync.Cond
	fail  error

	terms chan int
}

// NewMM starts a Machine Manager listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func NewMM(addr string, cfg MMConfig) (*MM, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: listen %s: %w", addr, err)
	}
	mm := &MM{
		cfg:  cfg,
		ln:   ln,
		nms:  make(map[int]*nmLink),
		jobs: make(map[int]*liveJob),
	}
	mm.wg.Add(1)
	go mm.acceptLoop()
	if cfg.GangQuantum > 0 {
		stop := make(chan struct{})
		mm.strobeStop = stop
		mm.wg.Add(1)
		go func() {
			defer mm.wg.Done()
			mm.strobeLoop(stop)
		}()
	}
	return mm, nil
}

// Addr returns the listening address (for NMs and clients to dial).
func (mm *MM) Addr() string { return mm.ln.Addr().String() }

// Launched returns the number of jobs accepted for execution.
func (mm *MM) Launched() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.launched
}

// Completed returns the number of jobs that finished successfully.
func (mm *MM) Completed() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.completed
}

// Strobes returns the number of gang context-switch multicasts issued.
func (mm *MM) Strobes() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.strobes
}

// NMs returns the registered node IDs in ascending order.
func (mm *MM) NMs() []int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Close shuts the MM down and disconnects everyone.
func (mm *MM) Close() {
	if mm.strobeStop != nil {
		close(mm.strobeStop)
		mm.strobeStop = nil
	}
	mm.mu.Lock()
	mm.closed = true
	for _, l := range mm.nms {
		l.c.close()
	}
	mm.mu.Unlock()
	mm.ln.Close()
	mm.wg.Wait()
}

func (mm *MM) acceptLoop() {
	defer mm.wg.Done()
	for {
		nc, err := mm.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mm.wg.Add(1)
		go mm.handleConn(newConn(nc))
	}
}

// handleConn demultiplexes by the first message: NMs start with Register,
// clients with Submit.
func (mm *MM) handleConn(c *conn) {
	defer mm.wg.Done()
	first, err := c.recv()
	if err != nil {
		c.close()
		return
	}
	switch {
	case first.Register != nil:
		mm.serveNM(c, first.Register)
	case first.Submit != nil:
		mm.serveClient(c, first.Submit.Spec)
	case first.StatusQ != nil:
		rep := mm.status()
		c.send(Message{StatusR: &rep})
		c.close()
	default:
		c.close()
	}
}

// status builds the cluster snapshot.
func (mm *MM) status() StatusRep {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	nodes := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	return StatusRep{
		Nodes:     nodes,
		Jobs:      len(mm.jobs),
		Launched:  mm.launched,
		Completed: mm.completed,
		Strobes:   mm.strobes,
		Gang:      mm.cfg.GangQuantum > 0,
	}
}

// serveNM registers a Node Manager and pumps its notifications.
func (mm *MM) serveNM(c *conn, reg *Register) {
	link := &nmLink{node: reg.Node, cpus: reg.CPUs, c: c}
	mm.mu.Lock()
	if mm.closed {
		mm.mu.Unlock()
		c.close()
		return
	}
	mm.nms[reg.Node] = link
	mm.mu.Unlock()
	defer func() {
		mm.mu.Lock()
		if mm.nms[reg.Node] == link {
			delete(mm.nms, reg.Node)
		}
		mm.mu.Unlock()
		c.close()
	}()
	for {
		m, err := c.recv()
		if err != nil {
			return
		}
		switch {
		case m.FragAck != nil:
			mm.onFragAck(m.FragAck)
		case m.Term != nil:
			mm.onTerm(m.Term)
		case m.Pong != nil:
			mm.onPong(m.Pong)
		}
	}
}

func (mm *MM) jobByID(id int) *liveJob {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.jobs[id]
}

func (mm *MM) onFragAck(a *FragAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !a.OK {
		j.fail = fmt.Errorf("node %d rejected fragment %d (corrupt)", a.Node, a.Index)
	} else if a.Index+1 > j.acked[a.Node] {
		j.acked[a.Node] = a.Index + 1
	}
	j.cond.Broadcast()
}

func (mm *MM) onTerm(t *Term) {
	if j := mm.jobByID(t.Job); j != nil {
		j.terms <- t.Node
	}
}

// serveClient runs one job's full lifecycle on behalf of a submitter.
func (mm *MM) serveClient(c *conn, spec JobSpec) {
	defer c.close()
	rep, err := mm.RunJob(spec)
	done := Done{Report: rep}
	if err != nil {
		done.Err = err.Error()
	}
	c.send(Message{Done: &done})
}

// RunJob executes a job synchronously: select nodes, distribute the
// binary with windowed flow control, launch, and collect termination
// reports. It returns the paper-style timing decomposition.
func (mm *MM) RunJob(spec JobSpec) (Report, error) {
	if spec.Nodes <= 0 || spec.PEsPerNode <= 0 {
		return Report{}, fmt.Errorf("livenet: bad job geometry %dx%d", spec.Nodes, spec.PEsPerNode)
	}
	mm.mu.Lock()
	ids := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) < spec.Nodes {
		mm.mu.Unlock()
		return Report{}, fmt.Errorf("livenet: %d NMs registered, job wants %d", len(ids), spec.Nodes)
	}
	mm.nextJob++
	j := &liveJob{
		id:    mm.nextJob,
		spec:  spec,
		row:   mm.pickRow(),
		acked: make(map[int]int),
		terms: make(chan int, spec.Nodes),
	}
	j.cond = sync.NewCond(&j.mu)
	for _, id := range ids[:spec.Nodes] {
		j.nodes = append(j.nodes, mm.nms[id])
	}
	mm.jobs[j.id] = j
	mm.launched++
	mm.mu.Unlock()
	defer func() {
		mm.mu.Lock()
		delete(mm.jobs, j.id)
		mm.releaseRow(j.row)
		mm.mu.Unlock()
	}()

	start := time.Now()
	if err := mm.transfer(j); err != nil {
		return Report{}, err
	}
	send := time.Since(start)

	// Launch: tell each NM its ranks.
	for i, link := range j.nodes {
		ranks := make([]int, 0, spec.PEsPerNode)
		for r := 0; r < spec.PEsPerNode; r++ {
			ranks = append(ranks, i*spec.PEsPerNode+r)
		}
		msg := Message{Launch: &Launch{Job: j.id, Spec: spec, Ranks: ranks,
			BinSize: spec.BinaryBytes, Row: j.row, Gang: mm.cfg.GangQuantum > 0}}
		if err := link.c.send(msg); err != nil {
			return Report{}, fmt.Errorf("livenet: launch to node %d: %w", link.node, err)
		}
	}

	// Collect termination reports.
	deadline := time.NewTimer(mm.cfg.AckTimeout + spec.Program.Duration + 60*time.Second)
	defer deadline.Stop()
	got := make(map[int]bool)
	for len(got) < spec.Nodes {
		select {
		case n := <-j.terms:
			got[n] = true
		case <-deadline.C:
			return Report{}, fmt.Errorf("livenet: job %d: %d/%d nodes reported termination before timeout",
				j.id, len(got), spec.Nodes)
		}
	}
	total := time.Since(start)
	mm.mu.Lock()
	mm.completed++
	mm.mu.Unlock()
	return Report{
		JobID:   j.id,
		Send:    send,
		Execute: total - send,
		Total:   total,
		Timeline: fmt.Sprintf("send=%v execute=%v nodes=%d pes=%d",
			send, total-send, spec.Nodes, spec.Nodes*spec.PEsPerNode),
	}, nil
}

// transfer streams the synthetic binary image to every node of the job
// with a Slots-deep per-node window: fragment i goes out only after every
// node has acknowledged fragment i-Slots (the live analogue of the
// COMPARE-AND-WRITE flow control over the remote receive queues).
func (mm *MM) transfer(j *liveJob) error {
	frag := mm.cfg.FragBytes
	n := (j.spec.BinaryBytes + frag - 1) / frag
	if n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		if err := mm.awaitWindow(j, i); err != nil {
			return err
		}
		size := j.spec.BinaryBytes - i*frag
		if size > frag {
			size = frag
		}
		if size <= 0 {
			size = 1
		}
		data := fragPattern(j.id, i, size)
		msg := Message{Frag: &Frag{Job: j.id, Index: i, Last: i == n-1, Data: data, CRC: fragCRC(data)}}
		for _, link := range j.nodes {
			if err := link.c.send(msg); err != nil {
				return fmt.Errorf("livenet: fragment %d to node %d: %w", i, link.node, err)
			}
		}
	}
	// Wait until every node acknowledged the final fragment.
	return mm.awaitWindow(j, n-1+mm.cfg.Slots)
}

// awaitWindow blocks until every node of the job has acknowledged
// fragment i-Slots (i.e. the window has room to send fragment i).
func (mm *MM) awaitWindow(j *liveJob, i int) error {
	need := i - mm.cfg.Slots + 1
	if need <= 0 {
		return nil
	}
	deadline := time.Now().Add(mm.cfg.AckTimeout)
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		min := need
		for _, link := range j.nodes {
			if j.acked[link.node] < min {
				min = j.acked[link.node]
			}
		}
		if min >= need {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livenet: flow control stalled waiting for fragment %d acks", need)
		}
		// Wake periodically to enforce the deadline even if no acks come.
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// heartbeat support ---------------------------------------------------

type hbState struct {
	mu    sync.Mutex
	seq   int64
	pongs map[int]int64 // node -> last seq answered
}

// StartHeartbeat pings all registered NMs every period and calls onFail
// once for a node that misses two consecutive heartbeats. Returns a stop
// function.
func (mm *MM) StartHeartbeat(period time.Duration, onFail func(node int)) (stop func()) {
	st := &hbState{pongs: make(map[int]int64)}
	mm.mu.Lock()
	mm.hb = st
	mm.mu.Unlock()
	done := make(chan struct{})
	failed := make(map[int]bool)
	// known tracks every node ever seen, with the heartbeat sequence
	// current when it appeared: a node that later disconnects (and so
	// leaves the registry) keeps being checked and is declared failed —
	// exactly the paper's "slave missed a heartbeat" condition.
	known := make(map[int]int64)
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			st.mu.Lock()
			st.seq++
			seq := st.seq
			st.mu.Unlock()
			mm.mu.Lock()
			links := make([]*nmLink, 0, len(mm.nms))
			for _, l := range mm.nms {
				links = append(links, l)
			}
			mm.mu.Unlock()
			for _, l := range links {
				if _, ok := known[l.node]; !ok {
					known[l.node] = seq - 1 // grace for late joiners
				}
				l.c.send(Message{Ping: &Ping{Seq: seq}})
			}
			st.mu.Lock()
			for node, joinedAt := range known {
				if failed[node] || seq-joinedAt < 3 {
					continue
				}
				last := st.pongs[node]
				if last < joinedAt {
					last = joinedAt
				}
				if last < seq-2 {
					failed[node] = true
					if onFail != nil {
						go onFail(node)
					}
				}
			}
			st.mu.Unlock()
		}
	}()
	return func() { close(done) }
}

func (mm *MM) onPong(p *Pong) {
	mm.mu.Lock()
	st := mm.hb
	mm.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if p.Seq > st.pongs[p.Node] {
		st.pongs[p.Node] = p.Seq
	}
	st.mu.Unlock()
}
