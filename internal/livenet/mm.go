package livenet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// MMConfig tunes the live Machine Manager.
type MMConfig struct {
	// FragBytes is the binary-distribution fragment size (default 256 KB).
	FragBytes int
	// Slots is the flow-control window depth per direct tree child, the
	// live analogue of the simulator's multi-buffering slots (default 4).
	Slots int
	// AckTimeout bounds how long a transfer waits for window credit
	// before declaring the owing nodes failed (default 10 s).
	AckTimeout time.Duration
	// Fanout is the out-degree of the software-multicast forwarding
	// tree used for binary distribution (default 2). Fanout 1 selects
	// the flat fan-out: the MM unicasts every fragment to every node
	// itself and no NM relays.
	Fanout int
	// GangQuantum, when positive, enables live gang scheduling: the MM
	// strobes a coordinated context switch every quantum and launches
	// processes gated.
	GangQuantum time.Duration
	// MPL is the number of gang timeslot rows (default 2 when gang
	// scheduling is enabled).
	MPL int
}

func (c *MMConfig) fill() {
	if c.FragBytes == 0 {
		c.FragBytes = 256 << 10
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 10 * time.Second
	}
	if c.Fanout == 0 {
		c.Fanout = 2
	}
	if c.GangQuantum > 0 && c.MPL == 0 {
		c.MPL = 2
	}
}

// MM is the live Machine Manager: it accepts NM registrations and client
// job submissions on one TCP port.
type MM struct {
	cfg MMConfig
	ln  net.Listener

	mu      sync.Mutex
	nms     map[int]*nmLink
	jobs    map[int]*liveJob
	nextJob int
	closed  bool
	hb      *hbState

	// counters, guarded by mu: job lifecycle milestones and gang
	// context-switch multicasts issued.
	launched  int
	completed int
	strobes   int

	rowCount   []int
	strobeStop chan struct{}

	// testCorrupt, when set (in-package tests only), may mutate a
	// fragment's payload after its CRC is computed — the in-flight
	// corruption hook.
	testCorrupt func(job, index int, data []byte)

	wg sync.WaitGroup
}

// nmLink is the MM's view of one registered Node Manager.
type nmLink struct {
	node int
	cpus int
	addr string // NM peer listener, for relay children to dial
	c    *conn
}

// liveJob is the MM-side state of one job in flight.
type liveJob struct {
	id    int
	spec  JobSpec
	row   int
	nodes []*nmLink // all job nodes, position-ordered

	// children are the MM's direct forwarding-tree children (subtree
	// roots); subtree maps each child's node ID to the node IDs its
	// aggregated acks vouch for.
	children []*nmLink
	subtree  map[int][]int

	mu      sync.Mutex
	acked   map[int]int // direct child node -> cumulative fragments acked (subtree-wide)
	planned map[int]bool
	cond    *sync.Cond
	fail    error

	sendBytes int64

	terms chan int
}

// NewMM starts a Machine Manager listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func NewMM(addr string, cfg MMConfig) (*MM, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: listen %s: %w", addr, err)
	}
	mm := &MM{
		cfg:  cfg,
		ln:   ln,
		nms:  make(map[int]*nmLink),
		jobs: make(map[int]*liveJob),
	}
	mm.wg.Add(1)
	go mm.acceptLoop()
	if cfg.GangQuantum > 0 {
		stop := make(chan struct{})
		mm.strobeStop = stop
		mm.wg.Add(1)
		go func() {
			defer mm.wg.Done()
			mm.strobeLoop(stop)
		}()
	}
	return mm, nil
}

// Addr returns the listening address (for NMs and clients to dial).
func (mm *MM) Addr() string { return mm.ln.Addr().String() }

// Launched returns the number of jobs accepted for execution.
func (mm *MM) Launched() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.launched
}

// Completed returns the number of jobs that finished successfully.
func (mm *MM) Completed() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.completed
}

// Strobes returns the number of gang context-switch multicasts issued.
func (mm *MM) Strobes() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.strobes
}

// NMs returns the registered node IDs in ascending order.
func (mm *MM) NMs() []int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Close shuts the MM down and disconnects everyone.
func (mm *MM) Close() {
	if mm.strobeStop != nil {
		close(mm.strobeStop)
		mm.strobeStop = nil
	}
	mm.mu.Lock()
	mm.closed = true
	for _, l := range mm.nms {
		l.c.close()
	}
	mm.mu.Unlock()
	mm.ln.Close()
	mm.wg.Wait()
}

func (mm *MM) acceptLoop() {
	defer mm.wg.Done()
	for {
		nc, err := mm.ln.Accept()
		if err != nil {
			return // listener closed
		}
		mm.wg.Add(1)
		go mm.handleConn(newConn(nc))
	}
}

// handleConn demultiplexes by the first message: NMs start with Register,
// clients with Submit.
func (mm *MM) handleConn(c *conn) {
	defer mm.wg.Done()
	first, err := c.recv()
	if err != nil {
		c.close()
		return
	}
	switch {
	case first.Register != nil:
		mm.serveNM(c, first.Register)
	case first.Submit != nil:
		mm.serveClient(c, first.Submit.Spec)
	case first.StatusQ != nil:
		rep := mm.status()
		c.send(Message{StatusR: &rep})
		c.close()
	default:
		c.close()
	}
}

// status builds the cluster snapshot.
func (mm *MM) status() StatusRep {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	nodes := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	return StatusRep{
		Nodes:     nodes,
		Jobs:      len(mm.jobs),
		Launched:  mm.launched,
		Completed: mm.completed,
		Strobes:   mm.strobes,
		Gang:      mm.cfg.GangQuantum > 0,
	}
}

// serveNM registers a Node Manager and pumps its notifications.
func (mm *MM) serveNM(c *conn, reg *Register) {
	link := &nmLink{node: reg.Node, cpus: reg.CPUs, addr: reg.Addr, c: c}
	mm.mu.Lock()
	if mm.closed {
		mm.mu.Unlock()
		c.close()
		return
	}
	mm.nms[reg.Node] = link
	mm.mu.Unlock()
	defer func() {
		mm.mu.Lock()
		if mm.nms[reg.Node] == link {
			delete(mm.nms, reg.Node)
		}
		mm.mu.Unlock()
		c.close()
	}()
	for {
		m, err := c.recv()
		if err != nil {
			return
		}
		switch {
		case m.FragAck != nil:
			mm.onFragAck(m.FragAck)
		case m.PlanAck != nil:
			mm.onPlanAck(m.PlanAck)
		case m.Term != nil:
			mm.onTerm(m.Term)
		case m.Pong != nil:
			mm.onPong(m.Pong)
		}
	}
}

func (mm *MM) jobByID(id int) *liveJob {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.jobs[id]
}

func (mm *MM) onFragAck(a *FragAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !a.OK {
		// First failure wins: a rejected fragment forces every later
		// fragment out of order, and those cascade nacks would otherwise
		// mask the original corruption site.
		if j.fail == nil {
			j.fail = fmt.Errorf("node %d rejected fragment %d (corrupt)", a.Node, a.Index)
		}
	} else if a.Index+1 > j.acked[a.Node] {
		j.acked[a.Node] = a.Index + 1
	}
	j.cond.Broadcast()
}

func (mm *MM) onPlanAck(a *PlanAck) {
	j := mm.jobByID(a.Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if a.Err != "" {
		j.fail = fmt.Errorf("node %d could not set up its relay plan: %s", a.Node, a.Err)
	}
	j.planned[a.Node] = true
	j.cond.Broadcast()
}

func (mm *MM) onTerm(t *Term) {
	if j := mm.jobByID(t.Job); j != nil {
		j.terms <- t.Node
	}
}

// serveClient runs one job's full lifecycle on behalf of a submitter.
func (mm *MM) serveClient(c *conn, spec JobSpec) {
	defer c.close()
	rep, err := mm.RunJob(spec)
	done := Done{Report: rep}
	if err != nil {
		done.Err = err.Error()
	}
	c.send(Message{Done: &done})
}

// RunJob executes a job synchronously: select nodes, build the
// forwarding tree, distribute the binary through it with windowed flow
// control, launch, and collect termination reports. It returns the
// paper-style timing decomposition.
func (mm *MM) RunJob(spec JobSpec) (Report, error) {
	if spec.Nodes <= 0 || spec.PEsPerNode <= 0 {
		return Report{}, fmt.Errorf("livenet: bad job geometry %dx%d", spec.Nodes, spec.PEsPerNode)
	}
	mm.mu.Lock()
	ids := make([]int, 0, len(mm.nms))
	for id := range mm.nms {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) < spec.Nodes {
		mm.mu.Unlock()
		return Report{}, fmt.Errorf("livenet: %d NMs registered, job wants %d", len(ids), spec.Nodes)
	}
	mm.nextJob++
	j := &liveJob{
		id:      mm.nextJob,
		spec:    spec,
		row:     mm.pickRow(),
		acked:   make(map[int]int),
		planned: make(map[int]bool),
		subtree: make(map[int][]int),
		terms:   make(chan int, spec.Nodes),
	}
	j.cond = sync.NewCond(&j.mu)
	for _, id := range ids[:spec.Nodes] {
		j.nodes = append(j.nodes, mm.nms[id])
	}
	for _, pos := range mmChildren(spec.Nodes, mm.cfg.Fanout) {
		child := j.nodes[pos]
		j.children = append(j.children, child)
		sub := make([]int, 0, 1)
		for _, p := range subtreeNodes(pos, spec.Nodes, mm.cfg.Fanout) {
			sub = append(sub, j.nodes[p].node)
		}
		j.subtree[child.node] = sub
	}
	mm.jobs[j.id] = j
	mm.launched++
	mm.mu.Unlock()
	defer func() {
		mm.mu.Lock()
		delete(mm.jobs, j.id)
		mm.releaseRow(j.row)
		mm.mu.Unlock()
	}()

	start := time.Now()
	if err := mm.transfer(j); err != nil {
		mm.abort(j, err)
		return Report{}, err
	}
	send := time.Since(start)

	// Launch: tell each NM its ranks.
	for i, link := range j.nodes {
		ranks := make([]int, 0, spec.PEsPerNode)
		for r := 0; r < spec.PEsPerNode; r++ {
			ranks = append(ranks, i*spec.PEsPerNode+r)
		}
		msg := Message{Launch: &Launch{Job: j.id, Spec: spec, Ranks: ranks,
			BinSize: spec.BinaryBytes, Row: j.row, Gang: mm.cfg.GangQuantum > 0}}
		if err := link.c.send(msg); err != nil {
			return Report{}, fmt.Errorf("livenet: launch to node %d: %w", link.node, err)
		}
	}

	// Collect termination reports.
	deadline := time.NewTimer(mm.cfg.AckTimeout + spec.Program.Duration + 60*time.Second)
	defer deadline.Stop()
	got := make(map[int]bool)
	for len(got) < spec.Nodes {
		select {
		case n := <-j.terms:
			got[n] = true
		case <-deadline.C:
			return Report{}, fmt.Errorf("livenet: job %d: %d/%d nodes reported termination before timeout",
				j.id, len(got), spec.Nodes)
		}
	}
	total := time.Since(start)
	mm.mu.Lock()
	mm.completed++
	mm.mu.Unlock()
	return Report{
		JobID:     j.id,
		Send:      send,
		Execute:   total - send,
		Total:     total,
		SendBytes: j.sendBytes,
		Timeline: fmt.Sprintf("send=%v execute=%v nodes=%d pes=%d fanout=%d",
			send, total-send, spec.Nodes, spec.Nodes*spec.PEsPerNode, mm.cfg.Fanout),
	}, nil
}

// transfer streams the synthetic binary image down the forwarding tree.
// Two phases:
//
//  1. Plan: every node is told its relay children and acks once it has
//     dialed them, so no fragment can reach a node before that node
//     knows whom to relay to.
//  2. Stream: each fragment is generated once into a pooled buffer,
//     CRC'd once, and written to the MM's direct children only; NMs
//     relay onward and aggregate acks, so the MM's window check sees one
//     cumulative credit per subtree. Fragment i goes out only after
//     every subtree has acknowledged fragment i-Slots (the live
//     analogue of the COMPARE-AND-WRITE flow control over the remote
//     receive queues).
func (mm *MM) transfer(j *liveJob) error {
	frag := mm.cfg.FragBytes
	n := (j.spec.BinaryBytes + frag - 1) / frag
	if n == 0 {
		n = 1
	}
	for i, link := range j.nodes {
		kids := nodeChildren(i, len(j.nodes), mm.cfg.Fanout)
		refs := make([]ChildRef, 0, len(kids))
		for _, k := range kids {
			refs = append(refs, ChildRef{Node: j.nodes[k].node, Addr: j.nodes[k].addr})
		}
		msg := Message{Plan: &Plan{Job: j.id, Frags: n, Fanout: mm.cfg.Fanout, Children: refs}}
		if err := link.c.send(msg); err != nil {
			return fmt.Errorf("livenet: transfer plan to node %d: %w", link.node, err)
		}
	}
	if err := mm.awaitPlans(j, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
		return err
	}

	egress0 := int64(0)
	for _, link := range j.children {
		egress0 += link.c.sentBytes()
	}
	// The window is end-to-end (the credit the MM sees is the minimum over
	// whole subtrees), so its bandwidth-delay product spans every
	// store-and-forward hop down plus the ack aggregation back up. Scale
	// the configured per-hop depth by the tree depth or a deep tree would
	// be credit-starved: with Slots in flight over a depth-d relay chain,
	// d of them are resident in the pipe before the first cumulative ack
	// can even form.
	window := mm.cfg.Slots * treeDepth(len(j.nodes), mm.cfg.Fanout)
	for i := 0; i < n; i++ {
		if err := mm.awaitCredit(j, i-window+1, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
			return err
		}
		size := j.spec.BinaryBytes - i*frag
		if size > frag {
			size = frag
		}
		if size <= 0 {
			size = 1
		}
		data := grabFragBuf(size)
		fragPatternInto(data, j.id, i)
		f := &Frag{Job: j.id, Index: i, Last: i == n-1, Data: data, CRC: fragCRC(data)}
		if mm.testCorrupt != nil {
			mm.testCorrupt(j.id, i, data)
		}
		for _, link := range j.children {
			if err := link.c.sendFrag(f); err != nil {
				releaseFragBuf(data)
				return fmt.Errorf("livenet: fragment %d to node %d: %w", i, link.node, err)
			}
		}
		releaseFragBuf(data)
	}
	// Drain: wait until every subtree acknowledged every fragment. One
	// AckTimeout, started when the last fragment left, covers the whole
	// tail — the budget is not restarted on partial progress, so a
	// stalled node cannot stack the per-fragment timeout on top of the
	// final wait.
	if err := mm.awaitCredit(j, n, time.Now().Add(mm.cfg.AckTimeout)); err != nil {
		return err
	}
	for _, link := range j.children {
		j.sendBytes += link.c.sentBytes()
	}
	j.sendBytes -= egress0
	return nil
}

// awaitPlans blocks until every node of the job confirmed its relay
// plan; on timeout the error names the nodes that never answered.
func (mm *MM) awaitPlans(j *liveJob, deadline time.Time) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		missing := ""
		for _, link := range j.nodes {
			if !j.planned[link.node] {
				if missing != "" {
					missing += ", "
				}
				missing += fmt.Sprintf("%d", link.node)
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livenet: job %d: relay plan unconfirmed by nodes %s", j.id, missing)
		}
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// awaitCredit blocks until every direct tree child has acknowledged
// `need` fragments on behalf of its whole subtree (i.e. the window has
// room for the next fragment, or — with need = total fragments — the
// transfer has drained). On timeout the error names each node still
// owing credit, with its subtree and the credit it has delivered so far.
func (mm *MM) awaitCredit(j *liveJob, need int, deadline time.Time) error {
	if need <= 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.fail != nil {
			return j.fail
		}
		var owing []string
		for _, link := range j.children {
			if got := j.acked[link.node]; got < need {
				if sub := j.subtree[link.node]; len(sub) > 1 {
					owing = append(owing, fmt.Sprintf("node %d (subtree %v, acked %d)", link.node, sub, got))
				} else {
					owing = append(owing, fmt.Sprintf("node %d (acked %d)", link.node, got))
				}
			}
		}
		if len(owing) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livenet: job %d: flow control stalled awaiting fragment %d credit from %s",
				j.id, need-1, strings.Join(owing, ", "))
		}
		// Wake periodically to enforce the deadline even if no acks come.
		t := time.AfterFunc(100*time.Millisecond, func() { j.cond.Broadcast() })
		j.cond.Wait()
		t.Stop()
	}
}

// abort tells every node of a failed job to drop its transfer state and
// close its relay links (best effort).
func (mm *MM) abort(j *liveJob, reason error) {
	msg := Message{Abort: &Abort{Job: j.id, Reason: reason.Error()}}
	for _, link := range j.nodes {
		link.c.send(msg)
	}
}

// heartbeat support ---------------------------------------------------

type hbState struct {
	mu    sync.Mutex
	seq   int64
	pongs map[int]int64 // node -> last seq answered
}

// StartHeartbeat pings all registered NMs every period and calls onFail
// once for a node that misses two consecutive heartbeats. Returns a stop
// function.
func (mm *MM) StartHeartbeat(period time.Duration, onFail func(node int)) (stop func()) {
	st := &hbState{pongs: make(map[int]int64)}
	mm.mu.Lock()
	mm.hb = st
	mm.mu.Unlock()
	done := make(chan struct{})
	failed := make(map[int]bool)
	// known tracks every node ever seen, with the heartbeat sequence
	// current when it appeared: a node that later disconnects (and so
	// leaves the registry) keeps being checked and is declared failed —
	// exactly the paper's "slave missed a heartbeat" condition.
	known := make(map[int]int64)
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			st.mu.Lock()
			st.seq++
			seq := st.seq
			st.mu.Unlock()
			mm.mu.Lock()
			links := make([]*nmLink, 0, len(mm.nms))
			for _, l := range mm.nms {
				links = append(links, l)
			}
			mm.mu.Unlock()
			for _, l := range links {
				if _, ok := known[l.node]; !ok {
					known[l.node] = seq - 1 // grace for late joiners
				}
				l.c.send(Message{Ping: &Ping{Seq: seq}})
			}
			st.mu.Lock()
			for node, joinedAt := range known {
				if failed[node] || seq-joinedAt < 3 {
					continue
				}
				last := st.pongs[node]
				if last < joinedAt {
					last = joinedAt
				}
				if last < seq-2 {
					failed[node] = true
					if onFail != nil {
						go onFail(node)
					}
				}
			}
			st.mu.Unlock()
		}
	}()
	return func() { close(done) }
}

func (mm *MM) onPong(p *Pong) {
	mm.mu.Lock()
	st := mm.hb
	mm.mu.Unlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	if p.Seq > st.pongs[p.Node] {
		st.pongs[p.Node] = p.Seq
	}
	st.mu.Unlock()
}
