package livenet

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// TestStripeLayout pins the rotation arithmetic the striped plan is
// built on: disjoint interior prefixes, inverse position maps, and the
// round-robin chunk split.
func TestStripeLayout(t *testing.T) {
	const n, k = 16, 2
	if r := stripeRotation(1, k, n); r != 8 {
		t.Fatalf("stripeRotation(1,2,16) = %d, want 8", r)
	}
	for q := 0; q < n; q++ {
		for s := 0; s < k; s++ {
			idx := stripeNodeAt(q, s, k, n)
			if back := stripePosOf(idx, s, k, n); back != q {
				t.Fatalf("stripePosOf(stripeNodeAt(%d,%d)) = %d", q, s, back)
			}
		}
	}
	// n=16, fanout=2: positions 0..6 are relays. With the n/k rotation the
	// interior node sets of the two stripes are disjoint.
	interior := func(s int) map[int]bool {
		m := map[int]bool{}
		for q := 0; q < n; q++ {
			if len(nodeChildren(q, n, 2)) > 0 {
				m[stripeNodeAt(q, s, k, n)] = true
			}
		}
		return m
	}
	i0, i1 := interior(0), interior(1)
	for node := range i0 {
		if i1[node] {
			t.Fatalf("node %d interior in both stripes", node)
		}
	}
	// Chunk split: 33 chunks over 2 stripes = 17 + 16.
	if a, b := stripeChunks(33, 0, 2), stripeChunks(33, 1, 2); a != 17 || b != 16 {
		t.Fatalf("stripeChunks(33) = %d,%d, want 17,16", a, b)
	}
	if c := stripeChunks(33, 0, 1); c != 33 {
		t.Fatalf("stripeChunks k=1 = %d, want 33", c)
	}
}

// TestLiveStripedEquivalence (acceptance): the same job through stripes
// 1, 2, and 4 delivers byte-identical per-node images, the same
// fragment accounting, and tree-bounded MM egress — striping changes
// which link carries a chunk, never the bytes that arrive.
func TestLiveStripedEquivalence(t *testing.T) {
	const n, binary = 16, 2 << 20
	spec := JobSpec{
		Name: "striped-equiv", BinaryBytes: binary, Nodes: n, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}
	run := func(stripes int) (Report, map[int]ImageDigest) {
		mm, nms := startCluster(t, n, MMConfig{Fanout: 2, FragBytes: 128 << 10, Stripes: stripes})
		rep, err := SubmitJob(mm.Addr(), spec)
		if err != nil {
			t.Fatalf("stripes=%d: %v", stripes, err)
		}
		digests := map[int]ImageDigest{}
		for _, nm := range nms {
			d, ok := nm.ImageDigest(rep.JobID)
			if !ok {
				t.Fatalf("stripes=%d: node %d has no image", stripes, nm.Node())
			}
			digests[nm.Node()] = d
		}
		return rep, digests
	}
	ref, refDigests := run(1)
	for _, stripes := range []int{2, 4} {
		rep, digests := run(stripes)
		for node, d := range digests {
			if d != refDigests[node] {
				t.Fatalf("stripes=%d: node %d image %+v diverges from single-tree %+v",
					stripes, node, d, refDigests[node])
			}
		}
		if rep.Chunks != ref.Chunks || rep.ChunksSent != ref.Chunks {
			t.Fatalf("stripes=%d: chunks=%d sent=%d, want %d cold chunks",
				stripes, rep.Chunks, rep.ChunksSent, ref.Chunks)
		}
		if len(rep.StripeReplans) != stripes {
			t.Fatalf("stripes=%d: StripeReplans has %d entries", stripes, len(rep.StripeReplans))
		}
		// The union of the stripe trees still sends each chunk to fanout
		// subtree roots: MM egress stays ~fanout x image, not stripes x.
		if max := int64(3 * binary); rep.SendBytes > max {
			t.Fatalf("stripes=%d: MM pushed %d bytes, want <= %d", stripes, rep.SendBytes, max)
		}
	}
}

// TestDeltaStripedWarmRelaunch (acceptance): warm launches stream zero
// chunks at any stripe count — the per-stripe HAVE rounds each discover
// their slice of the image is cached, and no stripe opens its stream.
func TestDeltaStripedWarmRelaunch(t *testing.T) {
	const n = 8
	cfg := deltaMMConfig()
	cfg.Stripes = 2
	frags := chaosBinary / cfg.FragBytes
	mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
		return NMConfig{CacheBytes: 8 << 20}
	})
	repA, err := SubmitJob(mm.Addr(), deltaSpec(n, 0x57a1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if repA.ChunksSent != frags {
		t.Fatalf("cold striped launch streamed %d chunks, want %d", repA.ChunksSent, frags)
	}
	refDigest, ok := nms[0].ImageDigest(repA.JobID)
	if !ok {
		t.Fatal("node 0 has no cold image")
	}
	repB, err := SubmitJob(mm.Addr(), deltaSpec(n, 0x57a1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if repB.ChunksSent != 0 {
		t.Fatalf("warm striped relaunch streamed %d chunks, want 0", repB.ChunksSent)
	}
	if repB.SendBytes > 64<<10 {
		t.Fatalf("warm striped relaunch cost %d egress bytes, want control-plane-sized", repB.SendBytes)
	}
	for _, nm := range nms {
		if d, ok := nm.ImageDigest(repB.JobID); !ok || d != refDigest {
			t.Fatalf("node %d warm digest %+v (ok=%v), want %+v", nm.Node(), d, ok, refDigest)
		}
	}
	// A one-chunk patch streams exactly that chunk, over its own stripe.
	repC, err := SubmitJob(mm.Addr(), deltaSpec(n, 0x57a1, map[int]uint64{5: 0xbeef}))
	if err != nil {
		t.Fatal(err)
	}
	if repC.ChunksSent != 1 {
		t.Fatalf("striped 1-chunk delta streamed %d chunks, want 1", repC.ChunksSent)
	}
}

// TestChaosStripedInteriorKill (satellite): with stripes=2 on 8 nodes,
// node 1 relays for stripe 0 but is a leaf of stripe 1's rotated tree.
// Killing it mid-transfer must replan ONLY stripe 0 — stripe 1 prunes
// the dead leaf without an epoch bump or manifest round — and the
// launch completes on the survivors with byte-identical images inside
// the usual recovery envelope.
func TestChaosStripedInteriorKill(t *testing.T) {
	const n, victim = 8, 1
	cfg := chaosMMConfig()
	cfg.Stripes = 2
	frags := chaosBinary / cfg.FragBytes
	// Sanity-pin the scenario to the rotation rule: interior in stripe 0,
	// leaf in stripe 1.
	if len(nodeChildren(stripePosOf(victim, 0, 2, n), n, cfg.Fanout)) == 0 {
		t.Fatalf("node %d is not a stripe-0 relay", victim)
	}
	if len(nodeChildren(stripePosOf(victim, 1, 2, n), n, cfg.Fanout)) != 0 {
		t.Fatalf("node %d is not a stripe-1 leaf", victim)
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Each stripe delivers 16 of the 32 chunks, so a per-conn kill
			// point must land inside one stripe's stream.
			killAt := 4 + faultconn.NewRng(seed).Intn(8)
			var victimNM atomic.Pointer[NM]
			mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
				if node != victim {
					return NMConfig{}
				}
				return NMConfig{WrapConn: func(c net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.CloseAtReadFrag = killAt
					plan.OnFault = func(string) {
						go func() {
							if nm := victimNM.Load(); nm != nil {
								nm.Close()
							}
						}()
					}
					return faultconn.Wrap(c, plan)
				}}
			})
			victimNM.Store(nms[victim])
			rep, err := SubmitJob(mm.Addr(), JobSpec{
				Name: "striped-chaos", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
			if err != nil {
				t.Fatalf("striped launch did not recover from killing node %d at frag %d: %v",
					victim, killAt, err)
			}
			if len(rep.Failed) != 1 || rep.Failed[0] != victim {
				t.Fatalf("report names failed nodes %v, want [%d]", rep.Failed, victim)
			}
			if len(rep.StripeReplans) != 2 {
				t.Fatalf("StripeReplans = %v, want 2 entries", rep.StripeReplans)
			}
			if rep.StripeReplans[0] < 1 {
				t.Fatalf("stripe 0 lost its relay but never replanned: %v", rep.StripeReplans)
			}
			if rep.StripeReplans[1] != 0 {
				t.Fatalf("stripe 1 replanned %d times for a dead leaf, want 0 (prune only)",
					rep.StripeReplans[1])
			}
			if rep.Recovery <= 0 || rep.Recovery > 4*time.Second {
				t.Fatalf("recovery took %v, want within the diagnosis+replan envelope", rep.Recovery)
			}
			assertSurvivorImages(t, nms, victim, rep.JobID, frags)
		})
	}
}

// TestStaleEpochManifestIsolated (satellite): a Manifest from a
// superseded epoch racing a Replan on one stripe must be dropped in
// full — it may not bind that stripe's parent, and it may not touch any
// other stripe's epoch, parent, expect ledger, or written bitmap.
func TestStaleEpochManifestIsolated(t *testing.T) {
	nm := &NM{
		bins:    make(map[int]*binState),
		relays:  make(map[int]*relayState),
		digests: make(map[int]ImageDigest),
	}
	const job = 7
	rs := &relayState{frags: 4, stripes: []*stripeRelay{{epoch: 0}, {epoch: 2}}}
	nm.relays[job] = rs
	parent0 := discardConn()

	// Stripe 0's manifest (current epoch) opens the transfer normally.
	man := &Manifest{Job: job, Epoch: 0, Stripe: 0, ChunkBytes: 4,
		TotalBytes: 16, Hashes: make([]uint64, 4), CRCs: make([]uint32, 4)}
	nm.onManifest(man, parent0)
	st := nm.bins[job]
	if st == nil || st.man == nil || st.k != 2 {
		t.Fatalf("stripe 0 manifest did not open the transfer: %+v", st)
	}
	if rs.stripes[0].parent != parent0 {
		t.Fatal("stripe 0 parent not bound")
	}
	nm.onNeedMask(&NeedMask{Job: job, Epoch: 0, Stripe: 0, Bits: []uint64{0b0101}})
	if len(st.expect[0]) != 1 || st.expect[0][0] != 0b0101 {
		t.Fatalf("stripe 0 NeedMask not recorded: %v", st.expect[0])
	}

	// A stale manifest for stripe 1 (epoch 1; the stripe replanned to
	// epoch 2) must change nothing.
	stale := &Manifest{Job: job, Epoch: 1, Stripe: 1, ChunkBytes: 4,
		TotalBytes: 16, Hashes: make([]uint64, 4), CRCs: make([]uint32, 4)}
	nm.onManifest(stale, discardConn())
	if rs.stripes[1].parent != nil {
		t.Fatal("stale manifest bound stripe 1's parent")
	}
	if rs.stripes[1].epoch != 2 {
		t.Fatalf("stale manifest changed stripe 1's epoch to %d", rs.stripes[1].epoch)
	}
	if st.expect[1] != nil {
		t.Fatalf("stale manifest seeded stripe 1's expect ledger: %v", st.expect[1])
	}
	// ...and it must not have poisoned stripe 0's ledgers either.
	if len(st.expect[0]) != 1 || st.expect[0][0] != 0b0101 {
		t.Fatalf("stale stripe-1 manifest poisoned stripe 0's NeedMask: %v", st.expect[0])
	}
	if rs.stripes[0].parent != parent0 || rs.stripes[0].epoch != 0 {
		t.Fatal("stale stripe-1 manifest disturbed stripe 0's binding")
	}

	// A stale NeedMask on the replanned stripe is equally inert.
	nm.onNeedMask(&NeedMask{Job: job, Epoch: 1, Stripe: 1, Bits: []uint64{^uint64(0)}})
	if st.expect[1] != nil {
		t.Fatalf("stale NeedMask recorded on stripe 1: %v", st.expect[1])
	}
	// The current-epoch manifest for stripe 1 then binds normally.
	fresh := &Manifest{Job: job, Epoch: 2, Stripe: 1, ChunkBytes: 4,
		TotalBytes: 16, Hashes: make([]uint64, 4), CRCs: make([]uint32, 4)}
	parent1 := discardConn()
	nm.onManifest(fresh, parent1)
	if rs.stripes[1].parent != parent1 {
		t.Fatal("current-epoch manifest failed to bind stripe 1 after the stale drop")
	}
}

// TestStripedFragAllocs pins the striped hot path at the same alloc
// ceiling as the legacy one: a fragment or cumulative ack carrying a
// nonzero stripe byte must encode without per-frame garbage.
func TestStripedFragAllocs(t *testing.T) {
	data := fragPattern(5, 11, 256<<10)
	crc := fragCRC(data)
	c := discardConn()
	f := &Frag{Job: 5, Index: 11, Stripe: 3, Data: data, CRC: crc}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.sendFrag(f); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("striped sendFrag allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.sendAck(&FragAck{Job: 5, Index: 11, Node: 1, Stripe: 3, OK: true}); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("striped sendAck allocates %.1f/op, want <= 1", avg)
	}
}
