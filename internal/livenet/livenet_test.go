package livenet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// startCluster boots an MM and n NMs on the loopback interface.
func startCluster(t *testing.T, n int, cfg MMConfig) (*MM, []*NM) {
	t.Helper()
	mm, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	var nms []*NM
	for i := 0; i < n; i++ {
		nm, err := NewNM(mm.Addr(), i, 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nm.Close)
		nms = append(nms, nm)
	}
	// Registration is asynchronous; wait for all NMs to appear.
	deadline := time.Now().Add(5 * time.Second)
	for len(mm.NMs()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d NMs registered", len(mm.NMs()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return mm, nms
}

func TestLiveLaunchDoNothing(t *testing.T) {
	mm, nms := startCluster(t, 4, MMConfig{})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 4 << 20, Nodes: 4, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Send <= 0 || rep.Total < rep.Send {
		t.Fatalf("nonsensical report: %+v", rep)
	}
	if rep.Total > 10*time.Second {
		t.Fatalf("4 MB live launch on loopback took %v", rep.Total)
	}
	wantFrags := (4 << 20) / (256 << 10)
	for _, nm := range nms {
		if nm.FragsWritten() != wantFrags {
			t.Errorf("node %d wrote %d fragments, want %d", nm.Node(), nm.FragsWritten(), wantFrags)
		}
		if nm.Launches() != 2 {
			t.Errorf("node %d forked %d processes, want 2", nm.Node(), nm.Launches())
		}
	}
	if mm.Completed() != 1 {
		t.Errorf("Completed = %d", mm.Completed())
	}
}

func TestLiveSweepKernelJob(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	start := time.Now()
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "sweep", BinaryBytes: 1 << 20, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "sweep", Grid: 24, Iters: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Execute <= 0 {
		t.Fatalf("sweep job reported zero execute time: %+v", rep)
	}
	_ = start
}

func TestLiveSleepJobDuration(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	const d = 300 * time.Millisecond
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "sleep", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "sleep", Duration: d},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Execute < d {
		t.Fatalf("execute %v < sleep duration %v", rep.Execute, d)
	}
}

func TestLiveInsufficientNodes(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "big", BinaryBytes: 1024, Nodes: 8, PEsPerNode: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "NMs registered") {
		t.Fatalf("expected insufficient-nodes error, got %v", err)
	}
}

func TestLiveConcurrentJobs(t *testing.T) {
	mm, _ := startCluster(t, 4, MMConfig{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = SubmitJob(mm.Addr(), JobSpec{
				Name: "dn", BinaryBytes: 512 << 10, Nodes: 2, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	if mm.Completed() != 4 {
		t.Errorf("Completed = %d, want 4", mm.Completed())
	}
}

func TestLiveNodeFailureStallsTransfer(t *testing.T) {
	mm, nms := startCluster(t, 3, MMConfig{AckTimeout: time.Second})
	// Kill one NM before submitting: its link drops, so it unregisters
	// and the job should only see the survivors.
	nms[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(mm.NMs()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("dead NM never unregistered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 256 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("launch on survivors failed: %v", err)
	}
	if rep.Total <= 0 {
		t.Fatal("bad report")
	}
}

func TestLiveHeartbeatDetectsFailure(t *testing.T) {
	mm, nms := startCluster(t, 3, MMConfig{})
	failedCh := make(chan int, 3)
	stop := mm.StartHeartbeat(50*time.Millisecond, func(node int) { failedCh <- node })
	defer stop()
	time.Sleep(300 * time.Millisecond)
	select {
	case n := <-failedCh:
		t.Fatalf("false positive: node %d", n)
	default:
	}
	nms[2].Close()
	select {
	case n := <-failedCh:
		if n != 2 {
			t.Fatalf("detected node %d, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure never detected")
	}
}

func TestFragPatternIntegrity(t *testing.T) {
	a := fragPattern(3, 7, 1024)
	b := fragPattern(3, 7, 1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	if fragCRC(a) != fragCRC(b) {
		t.Fatal("CRC not deterministic")
	}
	c := fragPattern(3, 8, 1024)
	if fragCRC(a) == fragCRC(c) {
		t.Fatal("different fragments share a CRC")
	}
}

func TestQueryStatus(t *testing.T) {
	mm, _ := startCluster(t, 3, MMConfig{})
	st, err := QueryStatus(mm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 || st.Jobs != 0 || st.Gang {
		t.Fatalf("status = %+v", st)
	}
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 1024, Nodes: 2, PEsPerNode: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st, err = QueryStatus(mm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Launched != 1 {
		t.Fatalf("post-job status = %+v", st)
	}
}
