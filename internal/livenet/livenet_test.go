package livenet

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// startCluster boots an MM and n NMs on the loopback interface.
func startCluster(t testing.TB, n int, cfg MMConfig) (*MM, []*NM) {
	t.Helper()
	mm, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm.Close)
	var nms []*NM
	for i := 0; i < n; i++ {
		nm, err := NewNM(mm.Addr(), i, 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nm.Close)
		nms = append(nms, nm)
	}
	// Registration is asynchronous; wait for all NMs to appear.
	deadline := time.Now().Add(5 * time.Second)
	for len(mm.NMs()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d NMs registered", len(mm.NMs()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return mm, nms
}

func TestLiveLaunchDoNothing(t *testing.T) {
	mm, nms := startCluster(t, 4, MMConfig{})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 4 << 20, Nodes: 4, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Send <= 0 || rep.Total < rep.Send {
		t.Fatalf("nonsensical report: %+v", rep)
	}
	if rep.Total > 10*time.Second {
		t.Fatalf("4 MB live launch on loopback took %v", rep.Total)
	}
	wantFrags := (4 << 20) / (256 << 10)
	for _, nm := range nms {
		if nm.FragsWritten() != wantFrags {
			t.Errorf("node %d wrote %d fragments, want %d", nm.Node(), nm.FragsWritten(), wantFrags)
		}
		if nm.Launches() != 2 {
			t.Errorf("node %d forked %d processes, want 2", nm.Node(), nm.Launches())
		}
	}
	if mm.Completed() != 1 {
		t.Errorf("Completed = %d", mm.Completed())
	}
}

func TestLiveSweepKernelJob(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	start := time.Now()
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "sweep", BinaryBytes: 1 << 20, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "sweep", Grid: 24, Iters: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Execute <= 0 {
		t.Fatalf("sweep job reported zero execute time: %+v", rep)
	}
	_ = start
}

func TestLiveSleepJobDuration(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	const d = 300 * time.Millisecond
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "sleep", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "sleep", Duration: d},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Execute < d {
		t.Fatalf("execute %v < sleep duration %v", rep.Execute, d)
	}
}

func TestLiveInsufficientNodes(t *testing.T) {
	mm, _ := startCluster(t, 2, MMConfig{})
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "big", BinaryBytes: 1024, Nodes: 8, PEsPerNode: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "NMs registered") {
		t.Fatalf("expected insufficient-nodes error, got %v", err)
	}
}

func TestLiveConcurrentJobs(t *testing.T) {
	mm, _ := startCluster(t, 4, MMConfig{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = SubmitJob(mm.Addr(), JobSpec{
				Name: "dn", BinaryBytes: 512 << 10, Nodes: 2, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	if mm.Completed() != 4 {
		t.Errorf("Completed = %d, want 4", mm.Completed())
	}
}

func TestLiveNodeFailureStallsTransfer(t *testing.T) {
	mm, nms := startCluster(t, 3, MMConfig{AckTimeout: time.Second})
	// Kill one NM before submitting: its link drops, so it unregisters
	// and the job should only see the survivors.
	nms[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(mm.NMs()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("dead NM never unregistered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 256 << 10, Nodes: 2, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("launch on survivors failed: %v", err)
	}
	if rep.Total <= 0 {
		t.Fatal("bad report")
	}
}

func TestLiveHeartbeatDetectsFailure(t *testing.T) {
	mm, nms := startCluster(t, 3, MMConfig{})
	failedCh := make(chan int, 3)
	stop := mm.StartHeartbeat(50*time.Millisecond, func(node int) { failedCh <- node })
	defer stop()
	time.Sleep(300 * time.Millisecond)
	select {
	case n := <-failedCh:
		t.Fatalf("false positive: node %d", n)
	default:
	}
	nms[2].Close()
	select {
	case n := <-failedCh:
		if n != 2 {
			t.Fatalf("detected node %d, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure never detected")
	}
}

func TestFragPatternIntegrity(t *testing.T) {
	a := fragPattern(3, 7, 1024)
	b := fragPattern(3, 7, 1024)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	if fragCRC(a) != fragCRC(b) {
		t.Fatal("CRC not deterministic")
	}
	c := fragPattern(3, 8, 1024)
	if fragCRC(a) == fragCRC(c) {
		t.Fatal("different fragments share a CRC")
	}
}

// TestLiveTreeRelayCounts: with fanout 2 on 8 nodes, the MM streams to
// two children only and interior NMs carry the rest of the copies.
func TestLiveTreeRelayCounts(t *testing.T) {
	mm, nms := startCluster(t, 8, MMConfig{Fanout: 2, FragBytes: 64 << 10})
	rep, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "tree", BinaryBytes: 512 << 10, Nodes: 8, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	frags := (512 << 10) / (64 << 10)
	// Every node writes the full image exactly once.
	for _, nm := range nms {
		if nm.FragsWritten() != frags {
			t.Errorf("node %d wrote %d fragments, want %d", nm.Node(), nm.FragsWritten(), frags)
		}
	}
	// 8 nodes, 2 MM children: 6 copies flow over relay links.
	relayed := 0
	for _, nm := range nms {
		relayed += nm.FragsRelayed()
	}
	if want := 6 * frags; relayed != want {
		t.Errorf("relayed %d fragment copies, want %d", relayed, want)
	}
	// MM egress ~= 2 subtree streams, not 8 unicasts.
	if max := int64(3 * 512 << 10); rep.SendBytes > max {
		t.Errorf("MM pushed %d bytes, want <= %d (tree should bound egress)", rep.SendBytes, max)
	}
}

// TestLiveCorruptFragmentRejected (satellite): a fragment corrupted in
// flight at the MM must be rejected by CRC at an NM and fail the job
// with a diagnosable error instead of hanging the window.
func TestLiveCorruptFragmentRejected(t *testing.T) {
	for _, fanout := range []int{1, 2} {
		mm, _ := startCluster(t, 4, MMConfig{Fanout: fanout, FragBytes: 64 << 10, AckTimeout: 5 * time.Second})
		mm.testCorrupt = func(job, index int, data []byte) {
			if index == 1 {
				data[17] ^= 0xff
			}
		}
		start := time.Now()
		_, err := SubmitJob(mm.Addr(), JobSpec{
			Name: "corrupt", BinaryBytes: 256 << 10, Nodes: 4, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		})
		if err == nil {
			t.Fatalf("fanout %d: corrupted transfer succeeded", fanout)
		}
		if !strings.Contains(err.Error(), "corrupt") || !strings.Contains(err.Error(), "rejected fragment 1") {
			t.Fatalf("fanout %d: undiagnosable error: %v", fanout, err)
		}
		if elapsed := time.Since(start); elapsed > 4*time.Second {
			t.Fatalf("fanout %d: rejection took %v; window hung", fanout, elapsed)
		}
	}
}

// TestLiveMidTreeCorruptionPropagates (satellite): corruption introduced
// by a relaying NM is caught by the child's CRC check and the nack names
// the rejecting node all the way up the tree.
func TestLiveMidTreeCorruptionPropagates(t *testing.T) {
	mm, nms := startCluster(t, 3, MMConfig{Fanout: 2, FragBytes: 64 << 10, AckTimeout: 5 * time.Second})
	// Tree for 3 nodes at fanout 2: MM -> {0, 1}, node 0 -> {2}. Corrupt
	// on node 0's relay link; node 2 must reject.
	nms[0].testCorruptRelay = func(job, index int, data []byte) {
		if index == 0 {
			data[0] ^= 0x01
		}
	}
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "midtree", BinaryBytes: 128 << 10, Nodes: 3, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err == nil {
		t.Fatal("mid-tree corruption went unnoticed")
	}
	if !strings.Contains(err.Error(), "node 2 rejected fragment 0") {
		t.Fatalf("nack lost the rejecting node: %v", err)
	}
}

// TestLiveAckTimeoutNamesNodes (satellite): a stalled window's error
// names the specific nodes still owing credit.
func TestLiveAckTimeoutNamesNodes(t *testing.T) {
	const ackTimeout = 400 * time.Millisecond
	mm, nms := startCluster(t, 3, MMConfig{Fanout: 2, FragBytes: 64 << 10, AckTimeout: ackTimeout})
	// Node 1 is a direct MM child and a leaf; it writes fragments but
	// never credits the window.
	nms[1].testDropAcks.Store(true)
	start := time.Now()
	_, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "stall", BinaryBytes: 128 << 10, Nodes: 3, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled transfer succeeded")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("timeout does not name the owing node: %v", err)
	}
	if strings.Contains(err.Error(), "node 0 ") {
		t.Fatalf("timeout blames a healthy subtree: %v", err)
	}
	// The binary fits the window (2 fragments <= 4 slots), so the only
	// wait is the tail drain: a single AckTimeout budget, not stacked
	// per-fragment budgets.
	if elapsed > 2*ackTimeout {
		t.Fatalf("tail wait consumed %v; timeout budget double-counted (AckTimeout %v)", elapsed, ackTimeout)
	}
}

// TestLiveTreeFlatEquivalence (satellite): the same job spec through the
// flat fan-out and the fanout-2 tree delivers byte-identical per-node
// images (digest equality) and the same termination accounting.
func TestLiveTreeFlatEquivalence(t *testing.T) {
	spec := JobSpec{
		Name: "equiv", BinaryBytes: 300<<10 + 123, Nodes: 5, PEsPerNode: 2,
		Program: ProgramSpec{Kind: "exit"},
	}
	type result struct {
		digests map[int]ImageDigest
		frags   map[int]int
		report  Report
	}
	run := func(fanout int) result {
		mm, nms := startCluster(t, 5, MMConfig{Fanout: fanout, FragBytes: 64 << 10})
		rep, err := SubmitJob(mm.Addr(), spec)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if mm.Completed() != 1 {
			t.Fatalf("fanout %d: completed = %d", fanout, mm.Completed())
		}
		r := result{digests: map[int]ImageDigest{}, frags: map[int]int{}, report: rep}
		for _, nm := range nms {
			d, ok := nm.ImageDigest(rep.JobID)
			if !ok {
				t.Fatalf("fanout %d: node %d has no image digest", fanout, nm.Node())
			}
			r.digests[nm.Node()] = d
			r.frags[nm.Node()] = nm.FragsWritten()
		}
		return r
	}
	flat := run(1)
	tree := run(2)
	if flat.report.JobID != tree.report.JobID {
		t.Fatalf("job ids diverge: %d vs %d", flat.report.JobID, tree.report.JobID)
	}
	for node, fd := range flat.digests {
		td, ok := tree.digests[node]
		if !ok {
			t.Fatalf("tree run missing node %d", node)
		}
		if fd != td {
			t.Fatalf("node %d image diverges: flat %+v vs tree %+v", node, fd, td)
		}
		if fd.Bytes != spec.BinaryBytes {
			t.Fatalf("node %d image is %d bytes, want %d", node, fd.Bytes, spec.BinaryBytes)
		}
		if flat.frags[node] != tree.frags[node] {
			t.Fatalf("node %d fragment counts diverge: %d vs %d", node, flat.frags[node], tree.frags[node])
		}
	}
}

// TestLiveTreeEgressAdvantage (acceptance): at 16 nodes and fixed binary
// size, the fanout-2 tree pushes >= 3x fewer bytes through the MM's
// sockets than the flat fan-out, with byte-identical delivered images.
func TestLiveTreeEgressAdvantage(t *testing.T) {
	// Large fragments, the regime the bulk path targets: per-fragment
	// relay overhead is amortized, so send-time comparisons are not
	// dominated by scheduler wakeups per hop.
	const nodes, binary = 16, 2 << 20
	spec := JobSpec{
		Name: "egress", BinaryBytes: binary, Nodes: nodes, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}
	run := func(fanout int) (Report, map[int]ImageDigest) {
		mm, nms := startCluster(t, nodes, MMConfig{Fanout: fanout, FragBytes: 512 << 10})
		// Two launches, keeping the faster send: a single sample on a
		// loaded CI machine is too noisy for a cross-topology
		// comparison.
		rep, err := SubmitJob(mm.Addr(), spec)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		rep2, err := SubmitJob(mm.Addr(), spec)
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if rep2.Send < rep.Send {
			rep2.JobID = rep.JobID // digests below come from the first run
			rep = rep2
		}
		digests := map[int]ImageDigest{}
		for _, nm := range nms {
			if d, ok := nm.ImageDigest(rep.JobID); ok {
				digests[nm.Node()] = d
			}
		}
		return rep, digests
	}
	flatRep, flatDigests := run(1)
	treeRep, treeDigests := run(2)
	if flatRep.SendBytes < nodes*binary {
		t.Fatalf("flat egress %d implausibly small", flatRep.SendBytes)
	}
	if ratio := float64(flatRep.SendBytes) / float64(treeRep.SendBytes); ratio < 3 {
		t.Fatalf("MM egress: flat %d vs tree %d bytes (ratio %.1f, want >= 3)",
			flatRep.SendBytes, treeRep.SendBytes, ratio)
	}
	// Send time: the tree removes the MM serial bottleneck. Timing on a
	// shared CI machine is noisy, so only catastrophic inversions fail.
	if treeRep.Send > flatRep.Send*3/2 {
		t.Errorf("tree send %v much slower than flat send %v", treeRep.Send, flatRep.Send)
	}
	if len(flatDigests) != nodes || len(treeDigests) != nodes {
		t.Fatalf("digests missing: flat %d, tree %d", len(flatDigests), len(treeDigests))
	}
	for node, fd := range flatDigests {
		if fd != treeDigests[node] {
			t.Fatalf("node %d image diverges across topologies", node)
		}
	}
}

func TestQueryStatus(t *testing.T) {
	mm, _ := startCluster(t, 3, MMConfig{})
	st, err := QueryStatus(mm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 || st.Jobs != 0 || st.Gang {
		t.Fatalf("status = %+v", st)
	}
	if _, err := SubmitJob(mm.Addr(), JobSpec{
		Name: "dn", BinaryBytes: 1024, Nodes: 2, PEsPerNode: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st, err = QueryStatus(mm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.Launched != 1 {
		t.Fatalf("post-job status = %+v", st)
	}
}
