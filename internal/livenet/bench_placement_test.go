package livenet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
	"repro/internal/metrics"
	"repro/internal/place"
)

// liteFlatCluster boots one flat MM over n hub-routed lite NMs — the
// dense in-process profile the federation benches use, but without a
// root, so the flat placement path itself is what scales to 1024
// registered nodes.
func liteFlatCluster(b *testing.B, n int, cfg MMConfig) (*MM, func()) {
	b.Helper()
	hub, err := NewPeerHub("")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Lite = true
	mm, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		hub.Close()
		b.Fatal(err)
	}
	var nms []*NM
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		for _, nm := range nms {
			nm.Close()
		}
		mm.Close()
		hub.Close()
	}
	b.Cleanup(shutdown)
	for i := 0; i < n; i++ {
		nm, err := NewNMConfig(mm.Addr(), i, 4, NMConfig{Hub: hub, Lite: true})
		if err != nil {
			b.Fatal(err)
		}
		nms = append(nms, nm)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(mm.NMs()) < n {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d NMs registered", len(mm.NMs()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return mm, shutdown
}

// BenchmarkPlacement measures the resource-aware placement engine where
// it actually runs: inside the MM, under mm.mu, against real registered
// membership.
//
// throughput/* drives placeJob at 64–1024 registered nodes with a
// rolling window of resident gangs (place → commit, release the oldest)
// and reports placements/sec plus per-placement p50/p99 — the numbers
// that must dwarf the multi-tenant admission rates so placement never
// becomes the admission bottleneck at scale.
//
// locality-launch/* is the end-to-end payoff: the same cold striped
// launch of a communicating gang on a 16-node cluster whose NM→NM links are
// write-delay shaped proportionally to the hop distance in the fanout-4
// heap topology (faultconn, per-frame). The idle nodes are scattered
// across the leaf groups, so load-only spread placement chases them
// cross-rack while locality accepts loaded-but-adjacent nodes; the gang
// then pays the difference in relay hops on every chunk. Locality must
// beat spread by >=1.2x on cold send time.
//
// Merges a `placement` section into BENCH_livenet.json.
//
//	go test -run '^$' -bench BenchmarkPlacement -benchtime=1x ./internal/livenet/
func BenchmarkPlacement(b *testing.B) {
	type thrPoint struct {
		Nodes            int     `json:"nodes"`
		Policy           string  `json:"policy"`
		Gang             int     `json:"gang"`
		PlacementsPerSec float64 `json:"placements_per_sec"`
		P50US            float64 `json:"p50_us"`
		P99US            float64 `json:"p99_us"`
	}
	var thrSeries []thrPoint
	const (
		thrGang   = 16
		thrBatch  = 4096
		thrWindow = 32 // resident gangs before the oldest releases
	)
	demand := place.Vec{CPU: 1, Mem: 256, Net: 2}
	for _, n := range []int{64, 256, 1024} {
		n := n
		mm, shutdown := liteFlatCluster(b, n, MMConfig{Fanout: 4})
		for _, pol := range []place.Policy{place.Spread, place.Locality} {
			pol := pol
			b.Run(fmt.Sprintf("throughput/nodes=%d/policy=%s", n, pol), func(b *testing.B) {
				best := thrPoint{Nodes: n, Policy: pol.String(), Gang: thrGang}
				for i := 0; i < b.N; i++ {
					mm.mu.Lock()
					prevPol := mm.placePol
					mm.placePol = pol
					window := make([][]int, thrWindow)
					var lat metrics.Sample
					var failed error
					t0 := time.Now()
					for op := 0; op < thrBatch; op++ {
						if old := window[op%thrWindow]; old != nil {
							for _, id := range old {
								mm.place.Release(id, demand)
							}
						}
						s0 := time.Now()
						spec := JobSpec{Nodes: thrGang, Demand: demand}
						links, err := mm.placeJob(&spec, nil)
						lat.Add(float64(time.Since(s0)) / float64(time.Microsecond))
						if err != nil {
							failed = err
							break
						}
						ids := make([]int, len(links))
						for k, l := range links {
							ids[k] = l.node
							mm.place.Commit(l.node, demand)
						}
						window[op%thrWindow] = ids
					}
					elapsed := time.Since(t0)
					for _, ids := range window {
						for _, id := range ids {
							mm.place.Release(id, demand)
						}
					}
					mm.placePol = prevPol
					mm.mu.Unlock()
					if failed != nil {
						b.Fatal(failed)
					}
					p := thrPoint{
						Nodes: n, Policy: pol.String(), Gang: thrGang,
						PlacementsPerSec: thrBatch / elapsed.Seconds(),
						P50US:            lat.Percentile(50),
						P99US:            lat.Percentile(99),
					}
					if best.PlacementsPerSec == 0 || p.PlacementsPerSec > best.PlacementsPerSec {
						best = p
					}
				}
				b.ReportMetric(best.PlacementsPerSec, "placements/sec")
				b.ReportMetric(best.P99US, "p99-us")
				thrSeries = append(thrSeries, best)
			})
		}
		shutdown()
	}

	// Locality-vs-spread cold striped launch on distance-shaped links.
	const (
		lnNodes    = 16
		lnGang     = 4
		lnFanout   = 2 // launch-tree fanout
		lnStripes  = 2
		physFanout = 4 // heap topology the link shaping charges hops on
		lnBinary   = 4 << 20
		lnFrag     = 256 << 10
		hopDelay   = 2 * time.Millisecond // per frame, per relay hop
	)
	type lnPoint struct {
		Policy     string  `json:"policy"`
		ColdSendMS float64 `json:"cold_send_ms"`
		Span       int     `json:"gang_span_hops"`
		Placed     []int   `json:"placed"`
	}
	// Busy everything except one idle node per topology group: load-only
	// placement chases the idle set {3, 5, 9, 13} cross-rack, while
	// locality takes the equally-loaded but adjacent block [0..3].
	busy := []int{0, 1, 2, 4, 6, 7, 8, 10, 11, 12, 14, 15}
	lnPoints := map[string]lnPoint{}
	for _, policy := range []string{"spread", "locality"} {
		policy := policy
		b.Run(fmt.Sprintf("locality-launch/policy=%s", policy), func(b *testing.B) {
			// addr→node fills after boot; dials during launches read it to
			// charge the hop distance between the two endpoints. The MM's
			// address never enters the map, so control links stay unshaped.
			var mu sync.Mutex
			addrNode := map[string]int{}
			nmCfg := func(self int) NMConfig {
				return NMConfig{Dialer: func(addr string) (net.Conn, error) {
					c, err := net.DialTimeout("tcp", addr, dialTimeout)
					if err != nil {
						return nil, err
					}
					mu.Lock()
					peer, ok := addrNode[addr]
					mu.Unlock()
					if !ok {
						return c, nil
					}
					plan := faultconn.NewPlan()
					plan.WriteDelay = time.Duration(place.Distance(self, peer, physFanout)) * hopDelay
					return faultconn.Wrap(c, plan), nil
				}}
			}
			mm, nms, _ := chaosCluster(b, lnNodes, MMConfig{
				Fanout: lnFanout, FragBytes: lnFrag, Stripes: lnStripes, Placement: policy,
			}, nmCfg)
			mu.Lock()
			for _, nm := range nms {
				addrNode[nm.PeerAddr()] = nm.Node()
			}
			mu.Unlock()
			mm.mu.Lock()
			for _, id := range busy {
				mm.place.Commit(id, place.Vec{})
			}
			mm.mu.Unlock()
			spec := func(seed uint64) JobSpec {
				return JobSpec{
					Name: "locality-bench", BinaryBytes: lnBinary, Nodes: lnGang,
					PEsPerNode: 1, Demand: place.Vec{CPU: 1}, ImageSeed: seed,
					Program: ProgramSpec{Kind: "exit"},
				}
			}
			// Warmup launch: establishes the (cached) relay conns and tells
			// us which nodes this policy picks, via image presence.
			rep, err := mm.RunJob(spec(0x10CA_0000))
			if err != nil {
				b.Fatal(err)
			}
			var placed []int
			for _, nm := range nms {
				if _, ok := nm.ImageDigest(rep.JobID); ok {
					placed = append(placed, nm.Node())
				}
			}
			if len(placed) != lnGang {
				b.Fatalf("placed %d nodes, want %d", len(placed), lnGang)
			}
			pt := lnPoint{Policy: policy, Span: place.Span(placed, physFanout), Placed: placed}
			b.SetBytes(lnBinary)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := mm.RunJob(spec(0x10CA_1000 + uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				cold := float64(rep.Send) / float64(time.Millisecond)
				if pt.ColdSendMS == 0 || cold < pt.ColdSendMS {
					pt.ColdSendMS = cold
				}
			}
			b.StopTimer()
			b.ReportMetric(pt.ColdSendMS, "cold-send-ms")
			b.ReportMetric(float64(pt.Span), "span-hops")
			if prev, seen := lnPoints[policy]; !seen || pt.ColdSendMS < prev.ColdSendMS {
				lnPoints[policy] = pt
			}
		})
	}

	fields := map[string]any{
		"gang":       thrGang,
		"throughput": thrSeries,
	}
	if sp, ok := lnPoints["spread"]; ok {
		if lc, ok := lnPoints["locality"]; ok && lc.ColdSendMS > 0 {
			speedup := sp.ColdSendMS / lc.ColdSendMS
			fields["locality_launch"] = map[string]any{
				"nodes":         lnNodes,
				"gang":          lnGang,
				"fanout":        lnFanout,
				"stripes":       lnStripes,
				"phys_fanout":   physFanout,
				"binary_bytes":  lnBinary,
				"frag_bytes":    lnFrag,
				"hop_delay":     hopDelay.String(),
				"spread":        sp,
				"locality":      lc,
				"speedup":       speedup,
				"span_spread":   sp.Span,
				"span_locality": lc.Span,
			}
			b.Logf("locality cold-launch speedup on shaped links: %.2fx (spread %.1f ms span %d -> locality %.1f ms span %d)",
				speedup, sp.ColdSendMS, sp.Span, lc.ColdSendMS, lc.Span)
			if speedup < 1.2 {
				b.Errorf("locality speedup %.2fx below the 1.2x floor", speedup)
			}
		}
	}
	if len(thrSeries) == 0 && len(lnPoints) == 0 {
		return
	}
	mergeBenchSummary(b, map[string]any{"placement": fields})
}
