// Package livenet is the live (wall-clock) mode of the STORM
// reproduction: the same MM / NM / PL dæmon architecture as
// internal/storm, but running as real goroutines (or separate processes,
// via cmd/stormd) that talk framed messages over TCP.
//
// QsNET's hardware collectives obviously do not exist on a TCP loopback,
// so this is precisely the situation the paper's §4 "Portability"
// discussion describes: the mechanisms are emulated in a thin software
// layer — the hardware multicast becomes a k-ary forwarding tree among
// the NMs (the MM streams each fragment to its tree children only; every
// NM relays to its own children and aggregates acks for its whole
// subtree), and the COMPARE-AND-WRITE receipt check becomes that ack
// aggregation. The dæmon logic above that layer is the same shape as the
// simulated one. Live mode exists so the repository also runs as an
// actual distributed resource manager on localhost, not only as a
// simulator.
//
// Wire format: every message is a length-delimited frame. Low-rate
// control messages (registration, launch, heartbeats, strobes, plans)
// travel as gob payloads inside a 'G' frame; the bulk path — binary
// fragments and their acks — uses fixed binary headers ('F' and 'A'
// frames) so a fragment is encoded exactly once and every child link is
// served from the same buffer with no per-destination marshalling.
package livenet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// JobSpec describes a live job.
type JobSpec struct {
	Name string
	// BinaryBytes is the size of the synthetic executable image the MM
	// distributes (contents are generated deterministically and
	// CRC-checked at each NM).
	BinaryBytes int
	// Nodes is how many NMs the job spans.
	Nodes int
	// PEsPerNode is processes per node.
	PEsPerNode int
	// Program selects the live process behavior.
	Program ProgramSpec
}

// ProgramSpec is the live process behavior, transmitted to the PLs.
type ProgramSpec struct {
	// Kind is "exit" (do-nothing), "sleep", "spin", or "sweep".
	Kind string
	// Duration bounds sleep/spin programs.
	Duration time.Duration
	// Grid and Iters parameterize the real sweep kernel.
	Grid  int
	Iters int
}

// Report is the timing breakdown returned to the submitting client,
// mirroring the paper's send/execute decomposition.
type Report struct {
	JobID   int
	Send    time.Duration // binary resident on all nodes
	Execute time.Duration // fork through last termination report
	Total   time.Duration
	// SendBytes is how many bytes the MM itself pushed through its
	// sockets to distribute the binary: ~Nodes×size for the flat
	// fan-out, ~Fanout×size with the forwarding tree.
	SendBytes int64
	// Failed lists nodes excluded by mid-transfer recovery; Replans
	// counts tree-rewire rounds and Recovery is the wall time spent in
	// diagnosis + replan (zero for an undisturbed launch).
	Failed   []int
	Replans  int
	Recovery time.Duration
	Timeline string
}

// Message is the wire envelope. Exactly one pointer field is set.
type Message struct {
	Register  *Register
	Submit    *Submit
	Frag      *Frag
	FragAck   *FragAck
	Plan      *Plan
	PlanAck   *PlanAck
	Replan    *Replan
	ReplanAck *ReplanAck
	PeerDown  *PeerDown
	Abort     *Abort
	Launch    *Launch
	Term      *Term
	Done      *Done
	Ping      *Ping
	Pong      *Pong
	Strobe    *Strobe
	StatusQ   *StatusReq
	StatusR   *StatusRep
}

// Register announces an NM to the MM. Addr is the NM's peer listener,
// where parent NMs in the forwarding tree dial relay connections.
type Register struct {
	Node int
	CPUs int
	Addr string
}

// Submit asks the MM to run a job.
type Submit struct {
	Spec JobSpec
}

// Frag carries one fragment of a job's binary image. On the wire it is a
// binary 'F' frame, not gob; Data received from recv is pooled and must
// be returned with releaseFragBuf once consumed.
type Frag struct {
	Job   int
	Index int
	Last  bool
	Data  []byte
	CRC   uint32
}

// FragAck credits the sender's flow-control window. With the forwarding
// tree the ack is cumulative and aggregated: Node's ack for Index means
// every node in Node's subtree has verified and written fragments
// 0..Index. OK=false reports a CRC/pattern rejection; Node then names
// the rejecting node, which parents forward up unchanged. Epoch is the
// tree generation the ack was computed under: after a mid-transfer
// replan the subtree a node vouches for changes, so credit from an
// earlier topology must not be mistaken for credit under the new one.
type FragAck struct {
	Job   int
	Index int
	Node  int
	Epoch int
	OK    bool
}

// ChildRef names one relay child in a transfer plan.
type ChildRef struct {
	Node int
	Addr string
}

// Plan tells an NM its role in one job's forwarding tree before the
// fragment stream starts: how many fragments to expect and which NMs (if
// any) it must relay them to.
type Plan struct {
	Job      int
	Frags    int
	Fanout   int
	Children []ChildRef
}

// PlanAck confirms the NM has dialed its relay children (or reports why
// it could not). The MM starts streaming only after every node acked its
// plan, so no fragment can outrun its relay topology.
type PlanAck struct {
	Job  int
	Node int
	Err  string
}

// Replan rewires a node's forwarding-tree role mid-transfer after a
// node failure: a fresh child set (replacing the old one wholesale) and
// a new tree epoch. Resume is the fragment index the MM will restart the
// stream from; fragments below a node's local progress arrive as
// duplicates and are acknowledged without being rewritten.
type Replan struct {
	Job      int
	Epoch    int
	Frags    int
	Fanout   int
	Resume   int
	Children []ChildRef
}

// ReplanAck confirms a node rewired for the new epoch (or reports why it
// could not). Received is the node's local in-order fragment progress,
// which the MM folds into the global replay point.
type ReplanAck struct {
	Job      int
	Node     int
	Epoch    int
	Received int
	Err      string
}

// PeerDown is an NM's report that a relay child is unreachable: the
// cached link failed a write, and one fresh redial also failed. The MM
// treats it as failure-detector evidence and triggers recovery without
// waiting for the flow-control window to time out.
type PeerDown struct {
	Job  int
	Node int // the unreachable child
	From int // the reporting parent
	Err  string
}

// Abort tells NMs to drop a failed job's transfer state and close its
// relay links.
type Abort struct {
	Job    int
	Reason string
}

// Launch orders an NM to fork a job's local processes.
type Launch struct {
	Job     int
	Spec    JobSpec
	Ranks   []int
	BinSize int
	// Row is the job's gang timeslot; Gang says whether processes start
	// gated (awaiting strobes) or free-running.
	Row  int
	Gang bool
}

// Term reports that all of a job's processes on a node have exited.
type Term struct {
	Job  int
	Node int
}

// Done returns the completion report to the client.
type Done struct {
	Report Report
	Err    string
}

// StatusReq asks the MM for a cluster snapshot; StatusRep answers it.
type StatusReq struct{}

// StatusRep is the MM's cluster snapshot.
type StatusRep struct {
	Nodes     []int // registered NM IDs, ascending
	Jobs      int   // jobs currently in flight
	Launched  int
	Completed int
	Strobes   int
	Gang      bool // live gang scheduling enabled
}

// Ping and Pong implement heartbeats.
type Ping struct{ Seq int64 }

// Pong acknowledges a Ping.
type Pong struct {
	Seq  int64
	Node int
}

// fragCRC computes the fragment checksum.
func fragCRC(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// patternRamp is two cycles of the byte ramp 0..255: the fragment
// pattern b[i] = seed + byte(i) is periodic with period 256, so filling
// and checking reduce to memmove/memequal against a 256-byte window of
// this table instead of byte-at-a-time arithmetic (~10x on the 2 MB
// images the launch bench pushes around).
var patternRamp = func() []byte {
	r := make([]byte, 512)
	for i := range r {
		r[i] = byte(i)
	}
	return r
}()

// fragPatternInto fills b with the deterministic byte pattern of the
// synthetic binary image for (job, index). Zero allocations.
func fragPatternInto(b []byte, job, index int) {
	seed := byte(job*31 + index*7)
	w := patternRamp[seed : int(seed)+256]
	for len(b) >= 256 {
		copy(b, w)
		b = b[256:]
	}
	copy(b, w[:len(b)])
}

// fragPattern allocates and fills a fragment pattern (test helper; the
// hot paths use fragPatternInto / fragPatternCheck on pooled buffers).
func fragPattern(job, index, size int) []byte {
	b := make([]byte, size)
	fragPatternInto(b, job, index)
	return b
}

// fragPatternCheck verifies data against the deterministic pattern in
// place, without materializing the expected image. Zero allocations
// (ceiling enforced by TestFragCheckAllocs).
func fragPatternCheck(job, index int, data []byte) bool {
	seed := byte(job*31 + index*7)
	w := patternRamp[seed : int(seed)+256]
	for len(data) >= 256 {
		if !bytes.Equal(data[:256], w) {
			return false
		}
		data = data[256:]
	}
	return bytes.Equal(data, w[:len(data)])
}

// Frame types. Every frame starts with one type byte.
const (
	frameGob  = 'G' // 4-byte length + gob(Message)
	frameFrag = 'F' // fragHdrLen header + payload
	frameAck  = 'A' // ackHdrLen fixed body
)

const (
	// fragHdrLen is job u32 | index u32 | flags u8 | crc u32 | len u32.
	fragHdrLen = 17
	// ackHdrLen is job u32 | index u32 | node u32 | epoch u32 | ok u8.
	ackHdrLen = 17
	// maxFrame bounds a frame payload (corruption guard).
	maxFrame = 64 << 20
)

// fragBufPool recycles fragment payload buffers across the send, relay,
// and receive paths so the steady-state transfer allocates nothing per
// fragment.
var fragBufPool sync.Pool

// grabFragBuf returns a buffer of length n, reusing a pooled one when
// its capacity suffices.
func grabFragBuf(n int) []byte {
	if v := fragBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// releaseFragBuf returns a fragment buffer to the pool. Callers must not
// touch the slice afterwards.
func releaseFragBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	fragBufPool.Put(&b)
}

// gobBufPool recycles the scratch buffers control messages are gob-
// encoded into before framing.
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// conn wraps a TCP connection with the frame codec: buffered writes with
// explicit flush per frame, a write lock (frames must not interleave),
// and an egress byte counter (the bench's MM-egress metric).
type conn struct {
	c   net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	wmu sync.Mutex
	// hdr is the frame-header scratch buffer, guarded by wmu; reusing it
	// keeps the bulk send path at zero allocations per frame.
	hdr [1 + fragHdrLen]byte

	sent atomic.Int64 // bytes written, frames included
}

func newConn(c net.Conn) *conn {
	if tc, ok := c.(*net.TCPConn); ok {
		// A fragment write should land in the kernel in one shot: the
		// default send buffer starts tiny (tcp_wmem[1]) and autotunes,
		// so without this every early frag write blocks mid-frame and
		// store-and-forward hops pay an extra context switch per block.
		tc.SetWriteBuffer(1 << 20)
		tc.SetReadBuffer(1 << 20)
	}
	return &conn{c: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriterSize(c, 64<<10)}
}

// send serializes one message. Fragments are routed to the binary frame
// path; everything else is gob inside a 'G' frame. Each control message
// gets a fresh gob stream: the per-message type-descriptor overhead is
// irrelevant at control rates and keeps the framing self-contained.
func (c *conn) send(m Message) error {
	if m.Frag != nil {
		return c.sendFrag(m.Frag)
	}
	if m.FragAck != nil {
		return c.sendAck(m.FragAck)
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(&m); err != nil {
		gobBufPool.Put(buf)
		return err
	}
	c.wmu.Lock()
	var hdr [5]byte
	hdr[0] = frameGob
	binary.BigEndian.PutUint32(hdr[1:], uint32(buf.Len()))
	err := c.writeFrame(hdr[:], buf.Bytes())
	c.wmu.Unlock()
	gobBufPool.Put(buf)
	return err
}

// sendFrag writes one fragment frame: the header is built on the stack
// and the payload is written straight from the caller's buffer — no
// per-destination encoding, no copies. Safe for concurrent use with
// other senders on the same conn.
func (c *conn) sendFrag(f *Frag) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+fragHdrLen]
	hdr[0] = frameFrag
	binary.BigEndian.PutUint32(hdr[1:], uint32(f.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(f.Index))
	hdr[9] = 0
	if f.Last {
		hdr[9] = 1
	}
	binary.BigEndian.PutUint32(hdr[10:], f.CRC)
	binary.BigEndian.PutUint32(hdr[14:], uint32(len(f.Data)))
	return c.writeFrame(hdr, f.Data)
}

// sendAck writes one fixed-size ack frame.
func (c *conn) sendAck(a *FragAck) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+ackHdrLen]
	hdr[0] = frameAck
	binary.BigEndian.PutUint32(hdr[1:], uint32(a.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(a.Index))
	binary.BigEndian.PutUint32(hdr[9:], uint32(a.Node))
	binary.BigEndian.PutUint32(hdr[13:], uint32(a.Epoch))
	hdr[17] = 0
	if a.OK {
		hdr[17] = 1
	}
	return c.writeFrame(hdr, nil)
}

// writeFrame writes header+payload and flushes. Caller holds wmu.
func (c *conn) writeFrame(hdr, payload []byte) error {
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.w.Write(payload); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.sent.Add(int64(len(hdr) + len(payload)))
	return nil
}

// recv blocks for the next message. A received Frag's Data is a pooled
// buffer: the consumer must call releaseFragBuf(f.Data) when done.
func (c *conn) recv() (Message, error) {
	var t [1]byte
	if _, err := io.ReadFull(c.r, t[:]); err != nil {
		return Message{}, err
	}
	switch t[0] {
	case frameGob:
		var lb [4]byte
		if _, err := io.ReadFull(c.r, lb[:]); err != nil {
			return Message{}, err
		}
		n := int(binary.BigEndian.Uint32(lb[:]))
		if n > maxFrame {
			return Message{}, fmt.Errorf("livenet: oversized control frame (%d bytes)", n)
		}
		payload := grabFragBuf(n)
		if _, err := io.ReadFull(c.r, payload); err != nil {
			releaseFragBuf(payload)
			return Message{}, err
		}
		var m Message
		err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m)
		releaseFragBuf(payload)
		return m, err
	case frameFrag:
		var hb [fragHdrLen]byte
		if _, err := io.ReadFull(c.r, hb[:]); err != nil {
			return Message{}, err
		}
		n := int(binary.BigEndian.Uint32(hb[13:]))
		if n > maxFrame {
			return Message{}, fmt.Errorf("livenet: oversized fragment frame (%d bytes)", n)
		}
		f := &Frag{
			Job:   int(binary.BigEndian.Uint32(hb[0:])),
			Index: int(binary.BigEndian.Uint32(hb[4:])),
			Last:  hb[8] == 1,
			CRC:   binary.BigEndian.Uint32(hb[9:]),
			Data:  grabFragBuf(n),
		}
		if _, err := io.ReadFull(c.r, f.Data); err != nil {
			releaseFragBuf(f.Data)
			return Message{}, err
		}
		return Message{Frag: f}, nil
	case frameAck:
		var hb [ackHdrLen]byte
		if _, err := io.ReadFull(c.r, hb[:]); err != nil {
			return Message{}, err
		}
		return Message{FragAck: &FragAck{
			Job:   int(binary.BigEndian.Uint32(hb[0:])),
			Index: int(binary.BigEndian.Uint32(hb[4:])),
			Node:  int(binary.BigEndian.Uint32(hb[8:])),
			Epoch: int(binary.BigEndian.Uint32(hb[12:])),
			OK:    hb[16] == 1,
		}}, nil
	default:
		return Message{}, fmt.Errorf("livenet: unknown frame type %#x", t[0])
	}
}

// sentBytes reports how many bytes have been written on this conn.
func (c *conn) sentBytes() int64 { return c.sent.Load() }

func (c *conn) close() { c.c.Close() }

// Dialer opens the transport connection to an address. MM/NM configs
// accept one so tests can interpose deterministic faults (see
// internal/livenet/faultconn); nil means plain TCP.
type Dialer func(addr string) (net.Conn, error)

// Connection-level fault absorption: transient dial failures (a peer
// restarting its listener, a SYN lost under load) are retried with
// capped exponential backoff before they are escalated into node
// failures.
const (
	dialAttempts    = 3
	dialBaseBackoff = 50 * time.Millisecond
	dialMaxBackoff  = 400 * time.Millisecond
	dialTimeout     = 5 * time.Second
)

// backoffSeq is the splitmix64 state feeding backoff jitter; jitter
// decorrelates retry storms when many nodes redial at once.
var backoffSeq atomic.Uint64

// backoffDelay returns the capped exponential backoff for a retry
// attempt (0-based), jittered to 50-100% of the nominal value.
func backoffDelay(attempt int) time.Duration {
	d := dialBaseBackoff << uint(attempt)
	if d > dialMaxBackoff {
		d = dialMaxBackoff
	}
	z := backoffSeq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d/2 + time.Duration(z%uint64(d/2+1))
}

// dialWith connects to addr through dialer (nil = TCP with a bounded
// timeout), retrying transient failures with jittered backoff, and runs
// the established connection through wrap (nil = identity).
func dialWith(dialer Dialer, wrap func(net.Conn) net.Conn, addr string) (*conn, error) {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, dialTimeout) }
	}
	var err error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffDelay(attempt - 1))
		}
		var nc net.Conn
		if nc, err = dialer(addr); err == nil {
			if wrap != nil {
				nc = wrap(nc)
			}
			return newConn(nc), nil
		}
	}
	return nil, fmt.Errorf("livenet: dial %s (%d attempts): %w", addr, dialAttempts, err)
}

// dial connects to addr with defaults: plain TCP, bounded timeout,
// retry with backoff.
func dial(addr string) (*conn, error) {
	return dialWith(nil, nil, addr)
}
