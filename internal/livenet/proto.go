// Package livenet is the live (wall-clock) mode of the STORM
// reproduction: the same MM / NM / PL dæmon architecture as
// internal/storm, but running as real goroutines (or separate processes,
// via cmd/stormd) that talk framed messages over TCP.
//
// QsNET's hardware collectives obviously do not exist on a TCP loopback,
// so this is precisely the situation the paper's §4 "Portability"
// discussion describes: the mechanisms are emulated in a thin software
// layer — the hardware multicast becomes a k-ary forwarding tree among
// the NMs (the MM streams each fragment to its tree children only; every
// NM relays to its own children and aggregates acks for its whole
// subtree), and the COMPARE-AND-WRITE receipt check becomes that ack
// aggregation. The dæmon logic above that layer is the same shape as the
// simulated one. Live mode exists so the repository also runs as an
// actual distributed resource manager on localhost, not only as a
// simulator.
//
// Wire format: every message is a length-delimited frame. Low-rate
// control messages (registration, launch, heartbeats, strobes, plans)
// travel as gob payloads inside a 'G' frame; the bulk path — binary
// fragments and their acks — uses fixed binary headers ('F' and 'A'
// frames) so a fragment is encoded exactly once and every child link is
// served from the same buffer with no per-destination marshalling.
package livenet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/place"
	"repro/internal/rng"
)

// JobSpec describes a live job.
type JobSpec struct {
	Name string
	// BinaryBytes is the size of the synthetic executable image the MM
	// distributes (contents are generated deterministically and
	// CRC-checked at each NM).
	BinaryBytes int
	// Nodes is how many NMs the job spans.
	Nodes int
	// PEsPerNode is processes per node.
	PEsPerNode int
	// Program selects the live process behavior.
	Program ProgramSpec
	// ImageSeed selects content-addressed image generation: when nonzero,
	// a chunk's bytes derive from (seed, chunk index) alone — two jobs
	// with the same seed share content, so a relaunch finds every chunk
	// in the NM caches — instead of the job-keyed legacy ramp (seed 0).
	ImageSeed uint64
	// ImagePatch overrides the content seed for individual chunk indices,
	// modelling an incremental rebuild that touches a few chunks of an
	// otherwise unchanged image.
	ImagePatch map[int]uint64
	// User names the submitting tenant; the weighted-fair admission
	// policy keeps per-user virtual time so one user's burst cannot
	// monopolize the streaming slots. Empty is a distinct (anonymous)
	// user.
	User string
	// Weight scales the user's weighted-fair share (default 1).
	Weight int
	// Place, when non-empty, pins the job to exactly these node IDs in
	// tree-position order (len must equal Nodes); empty lets the MM pick
	// the least-loaded registered NMs.
	Place []int
	// Demand is the per-member resource demand vector. Placement only
	// seats a member on a node whose free declared capacity covers it;
	// the zero Demand (the default) fits anywhere, preserving the
	// pre-capacity behavior byte for byte.
	Demand place.Vec
}

// ProgramSpec is the live process behavior, transmitted to the PLs.
type ProgramSpec struct {
	// Kind is "exit" (do-nothing), "sleep", "spin", or "sweep".
	Kind string
	// Duration bounds sleep/spin programs.
	Duration time.Duration
	// Grid and Iters parameterize the real sweep kernel.
	Grid  int
	Iters int
}

// Report is the timing breakdown returned to the submitting client,
// mirroring the paper's send/execute decomposition.
type Report struct {
	JobID   int
	Send    time.Duration // binary resident on all nodes
	Execute time.Duration // fork through last termination report
	Total   time.Duration
	// SendBytes is how many bytes the MM itself pushed through its
	// sockets to distribute the binary: ~Nodes×size for the flat
	// fan-out, ~Fanout×size with the forwarding tree.
	SendBytes int64
	// Failed lists nodes excluded by mid-transfer recovery; Replans
	// counts tree-rewire rounds and Recovery is the wall time spent in
	// diagnosis + replan (zero for an undisturbed launch).
	Failed   []int
	Replans  int
	Recovery time.Duration
	// StripeReplans counts the replan rounds charged to each stripe of
	// the striped data plane (one entry per stripe; a single entry for
	// the legacy single-tree plan). A dead node rewires only the stripes
	// it was interior in, so the other stripes' counts stay 0 — leaves
	// are pruned from them without an epoch bump.
	StripeReplans []int
	// Chunks is the transfer manifest's chunk count and ChunksSent how
	// many of them the MM actually streamed after the HAVE round (the
	// union of its direct children's subtree needs). BytesSaved is the
	// payload the delta path avoided relative to a cold full-image
	// fan-out to the same direct children.
	Chunks     int
	ChunksSent int
	BytesSaved int64
	// Queued is how long the job waited in the admission queue before it
	// was granted a streaming slot (and, under gang scheduling, a free
	// timeslot row). Row is the gang row the job ran in (0 when gang
	// scheduling is off). WindowPeak is the largest number of
	// unacknowledged chunks the job's flow-control window held at once.
	Queued     time.Duration
	Row        int
	WindowPeak int
	Timeline   string
	// Retries counts full job-level retry attempts after transfer-phase
	// failures that exhausted mid-stream recovery (0 for a job that
	// succeeded, or failed, on its first placement).
	Retries int
}

// Message is the wire envelope. Exactly one pointer field is set.
//
// Hot control messages (Ping, Pong, Strobe, StrobeAck, FragAck,
// PlanAck, ReplanAck, PeerDown, Manifest, Have, NeedMask) never travel
// as gob: send routes them to fixed-layout typed frames and recv
// decodes the zero-alloc subset into conn-owned scratch structs. The
// pointers recv returns for Ping, Pong, Strobe, StrobeAck, FragAck,
// Manifest, Have, and NeedMask are therefore only valid until the next
// recv on the same conn — consume or copy them before looping (Manifest
// has clone() for retention).
type Message struct {
	Register  *Register
	Hello     *Hello
	Submit    *Submit
	Frag      *Frag
	FragAck   *FragAck
	Manifest  *Manifest
	Have      *Have
	NeedMask  *NeedMask
	Plan      *Plan
	PlanAck   *PlanAck
	Replan    *Replan
	ReplanAck *ReplanAck
	ChildDead *ChildDead
	PeerDown  *PeerDown
	Abort     *Abort
	Launch    *Launch
	Term      *Term
	Done      *Done
	Ping      *Ping
	Pong      *Pong
	Strobe    *Strobe
	StrobeAck *StrobeAck
	CtlPlan   *CtlPlan
	StatusQ   *StatusReq
	StatusR   *StatusRep
	Rejoin    *Rejoin
	RejoinAck *RejoinAck
}

// Register announces an NM to the MM. Addr is the NM's peer listener,
// where parent NMs in the forwarding tree dial relay connections.
type Register struct {
	Node int
	CPUs int
	Addr string
	// Cap is the node's declared resource capacity. The zero Cap means
	// undeclared: the MM treats the node as unbounded, so clusters that
	// never mention capacities place exactly as before.
	Cap place.Vec
}

// Submit asks the MM to run a job.
type Submit struct {
	Spec JobSpec
}

// Rejoin re-introduces an NM the MM has already seen — one that was
// convicted by the failure detector, or whose process restarted. Unlike
// Register it is an explicit readmission request: the MM clears the
// node's conviction, arms a probation window, and answers with a
// RejoinAck before the link starts serving traffic. Membership-rate, so
// it rides the gob path.
type Rejoin struct {
	Node int
	CPUs int
	Addr string
	Cap  place.Vec // declared capacity, as in Register
}

// RejoinAck answers a Rejoin. Probation is how many heartbeat-clean
// periods the node must survive before it is eligible for placement
// again (0 when no detector is running); Err non-empty means the MM
// refused the rejoin and the NM must not proceed.
type RejoinAck struct {
	Probation int
	Err       string
}

// Hello routes an inbound relay connection on a shared peer listener
// (see PeerHub): when many NMs live in one process they share one
// listener instead of owning one each, and the dialer's first frame
// names which NM the connection is for. It is always the first bytes on
// such a connection and never appears once a link is established.
type Hello struct {
	Node int
}

// Frag carries one fragment of a job's binary image. On the wire it is a
// binary 'F' frame, not gob; Data received from recv is pooled and must
// be returned with releaseFragBuf once consumed. Stripe names the
// spanning tree the fragment travels down (0 on a single-tree plan):
// with a striped plan, chunk i belongs to stripe i%k and each stripe's
// tree relays only its own chunks.
type Frag struct {
	Job    int
	Index  int
	Last   bool
	Data   []byte
	CRC    uint32
	Stripe int
}

// FragAck credits the sender's flow-control window. With the forwarding
// tree the ack is cumulative and aggregated: Node's ack for Index means
// every node in Node's subtree has verified and written fragments
// 0..Index. OK=false reports a CRC/pattern rejection; Node then names
// the rejecting node, which parents forward up unchanged. Epoch is the
// tree generation the ack was computed under: after a mid-transfer
// replan the subtree a node vouches for changes, so credit from an
// earlier topology must not be mistaken for credit under the new one.
// Stripe scopes the ack to one stripe tree; Index counts in
// stripe-local chunk order (chunk s, s+k, s+2k, ... for stripe s), so
// each stripe keeps an independent cumulative ledger.
type FragAck struct {
	Job    int
	Index  int
	Node   int
	Epoch  int
	OK     bool
	Stripe int
}

// ChildRef names one relay child in a transfer plan.
type ChildRef struct {
	Node int
	Addr string
}

// Plan tells an NM its role in one job's forwarding trees before the
// fragment stream starts: how many fragments to expect and which NMs (if
// any) it must relay them to, per stripe. Children[s] is the node's
// relay child set in stripe s's spanning tree (SplitStream-style role
// rotation makes a node interior in ~1/k of the trees and a leaf in the
// rest). Stripes is the stripe count k; a legacy single-tree plan has
// Stripes == 1 and one child list.
type Plan struct {
	Job      int
	Frags    int
	Fanout   int
	Stripes  int
	Children [][]ChildRef
}

// PlanAck confirms the NM has dialed its relay children (or reports why
// it could not). The MM starts streaming only after every node acked its
// plan, so no fragment can outrun its relay topology.
type PlanAck struct {
	Job  int
	Node int
	Err  string
}

// Replan rewires a node's forwarding-tree role mid-transfer after a
// node failure: a fresh child set (replacing the old one wholesale) and
// a new tree epoch. Resume is the stripe-local fragment index the MM
// will restart the stream from; fragments below a node's local progress
// arrive as duplicates and are acknowledged without being rewritten.
// Stripe scopes the rewire to one stripe tree — the other stripes'
// trees, epochs, and streams are untouched, which is what lets a striped
// transfer recover a dead interior node without stalling the stripes it
// was only a leaf in.
type Replan struct {
	Job      int
	Stripe   int
	Epoch    int
	Frags    int
	Fanout   int
	Resume   int
	Children []ChildRef
}

// ReplanAck confirms a node rewired one stripe for the new epoch (or
// reports why it could not). Received is the node's local in-order
// stripe-local fragment progress, which the MM folds into the stripe's
// replay point.
type ReplanAck struct {
	Job      int
	Node     int
	Epoch    int
	Received int
	Stripe   int
	Err      string
}

// ChildDead prunes a dead leaf out of one stripe's tree without a
// replan round: the MM, having convicted the node, tells its tree
// parent to stop waiting on the subtree's acks. Only valid when the
// dead node is a leaf in this stripe (interior deaths need a real
// Replan to re-home the orphaned subtree). Rare, so it rides the gob
// path.
type ChildDead struct {
	Job    int
	Stripe int
	Node   int
}

// PeerDown is an NM's report that a relay child is unreachable: the
// cached link failed a write, and one fresh redial also failed. The MM
// treats it as failure-detector evidence and triggers recovery without
// waiting for the flow-control window to time out.
type PeerDown struct {
	Job  int
	Node int // the unreachable child
	From int // the reporting parent
	Err  string
}

// Abort tells NMs to drop a failed job's transfer state and close its
// relay links.
type Abort struct {
	Job    int
	Reason string
}

// Launch orders an NM to fork a job's local processes.
type Launch struct {
	Job     int
	Spec    JobSpec
	Ranks   []int
	BinSize int
	// Row is the job's gang timeslot; Gang says whether processes start
	// gated (awaiting strobes) or free-running.
	Row  int
	Gang bool
}

// Term reports that all of a job's processes on a node have exited.
type Term struct {
	Job  int
	Node int
}

// Done returns the completion report to the client.
type Done struct {
	Report Report
	Err    string
}

// StatusReq asks the MM for a cluster snapshot; StatusRep answers it.
type StatusReq struct{}

// StatusRep is the MM's cluster snapshot.
type StatusRep struct {
	Nodes     []int // registered NM IDs, ascending
	Jobs      int   // jobs currently in flight
	Queued    int   // jobs waiting in the admission queue
	Launched  int
	Completed int
	Strobes   int
	Gang      bool // live gang scheduling enabled
}

// Ping is one heartbeat (or isolation-probe) round. On the control
// tree the MM sends one epoch-stamped ping per period to its direct
// children only; every NM relays it to its own control-tree children,
// so MM heartbeat egress is O(fanout) regardless of cluster size.
// Directed isolation probes reuse the same frame with Epoch 0 and a
// sequence in the disjoint probe range.
type Ping struct {
	Seq   int64
	Epoch int
}

// Pong answers a Ping. On the control tree it is not a per-node reply
// but a cumulative subtree ledger: MinSeq is the oldest heartbeat
// sequence any node in the sender's subtree is still vouched for, and
// Absent is a bitmap of subtree members whose answers have gone stale,
// indexed by the subtree's pre-order position (bit 0 = the sender
// itself; only the first 64 positions are tracked — beyond that a
// silent node is still caught when its whole subtree goes quiet). The
// MM thus consumes exactly one frame per direct child per period and
// still sees per-node liveness. Epoch is the control-tree generation
// the ledger was aggregated under; a ledger from an older topology
// vouched for a different subtree and is discarded. Epoch 0 marks a
// directed isolation-probe reply, which bypasses the tree entirely.
type Pong struct {
	Seq    int64
	Node   int
	Epoch  int
	MinSeq int64
	Absent uint64
}

// Strobe is the live gang-scheduling context switch: row Row becomes
// the running timeslot. It multicasts down the control tree exactly
// like a heartbeat ping (O(fanout) MM egress), and NMs both enact it
// locally and relay it to their control-tree children. Seq orders
// strobes; Epoch guards against stale-topology acks.
type Strobe struct {
	Seq   int64
	Row   int
	Epoch int
}

// StrobeAck confirms strobe delivery, aggregated like fragment acks:
// Node's ack for Seq means every node in Node's control subtree has
// enacted strobes up to and including Seq. The MM's strobe latency
// metric is the gap between the multicast and the last direct child's
// cumulative ack.
type StrobeAck struct {
	Seq   int64
	Node  int
	Epoch int
}

// CtlChild names one control-tree child and the subtree its aggregated
// ledgers vouch for. Subtree is in pre-order (the child itself first,
// then each grandchild subtree recursively): that order is the canonical
// bit layout of the pong ledger's Absent bitmap, so a parent folds a
// child's bitmap into its own with a single shift.
type CtlChild struct {
	Node    int
	Addr    string
	Subtree []int
}

// CtlPlan installs a node's role in the cluster-wide control tree (the
// heartbeat/strobe fast path). It is sent only when membership changes
// — registration, unregistration, conviction — so it stays on the gob
// cold path; the per-period traffic it enables is all typed frames.
type CtlPlan struct {
	Epoch    int
	Children []CtlChild
}

// Manifest opens a transfer epoch: the content map of the image about
// to be distributed. Hashes[i]/CRCs[i] address chunk i (fixed
// ChunkBytes each except a short tail), so an NM can recognize chunks
// it already holds in its content-addressed cache; ImageCRC is the
// whole-image digest every NM re-verifies before committing its spool.
// It multicasts down the forwarding tree like a fragment and, like the
// hot control frames, travels as a typed 'M' frame with zero
// steady-state allocations. recv returns it in conn-owned scratch —
// clone() it to retain past the next recv. Stripe is the spanning tree
// the copy multicast down (with per-stripe epochs, the same image map
// travels once per stripe tree); Epoch is that stripe's tree
// generation.
type Manifest struct {
	Job        int
	Epoch      int
	ChunkBytes int
	ImageCRC   uint32
	TotalBytes int64
	Stripe     int
	Hashes     []uint64
	CRCs       []uint32
}

// clone deep-copies a Manifest out of conn scratch.
func (m *Manifest) clone() *Manifest {
	c := *m
	c.Hashes = append([]uint64(nil), m.Hashes...)
	c.CRCs = append([]uint32(nil), m.CRCs...)
	return &c
}

// Have is the aggregated cache ledger answering a Manifest: bit i set
// means every node in the sender's subtree already holds chunk i
// (verified against the manifest's hash+CRC and spliced into its
// spool). Parents AND their own bitmap with each child's before sending
// up — the dual of the pong ledger's absence fold — so the MM learns
// the set-union of missing chunks across the cluster in one O(depth)
// round with O(fanout) egress, and every interior node learns exactly
// which chunks each child subtree still needs. The bitmap always covers
// the full chunk index space; Stripe names the tree (and epoch ledger)
// the fold ran up, since each stripe's tree aggregates its own HAVE
// round.
type Have struct {
	Job    int
	Node   int
	Epoch  int
	Stripe int
	Bits   []uint64
}

// NeedMask is the transfer epoch's stream announcement, sent down each
// link just before streaming: bit i set means chunk i will arrive on
// this link. A receiver uses it as the authoritative split between
// wire-sourced and locally-sourced chunks — a chunk outside the mask
// that the node cannot produce locally is a protocol violation worth a
// fast nack, not a silent stall. Stripe scopes the announcement to one
// stripe's tree: the mask only ever sets bits of chunks in that stripe
// (index ≡ stripe mod k), so a stale or misrouted mask cannot poison
// another stripe's expectations.
type NeedMask struct {
	Job    int
	Epoch  int
	Stripe int
	Bits   []uint64
}

// bitWords returns the ledger word count covering n chunks.
func bitWords(n int) int { return (n + 63) / 64 }

// bitGet reports bit i of a chunk bitmap.
func bitGet(bits []uint64, i int) bool {
	return bits[i>>6]&(1<<uint(i&63)) != 0
}

// bitSet sets bit i of a chunk bitmap.
func bitSet(bits []uint64, i int) {
	bits[i>>6] |= 1 << uint(i&63)
}

// fragCRC computes the fragment checksum.
func fragCRC(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// patternRamp is two cycles of the byte ramp 0..255: the fragment
// pattern b[i] = seed + byte(i) is periodic with period 256, so filling
// and checking reduce to memmove/memequal against a 256-byte window of
// this table instead of byte-at-a-time arithmetic (~10x on the 2 MB
// images the launch bench pushes around).
var patternRamp = func() []byte {
	r := make([]byte, 512)
	for i := range r {
		r[i] = byte(i)
	}
	return r
}()

// fragPatternInto fills b with the deterministic byte pattern of the
// synthetic binary image for (job, index). Zero allocations.
func fragPatternInto(b []byte, job, index int) {
	seed := byte(job*31 + index*7)
	w := patternRamp[seed : int(seed)+256]
	for len(b) >= 256 {
		copy(b, w)
		b = b[256:]
	}
	copy(b, w[:len(b)])
}

// fragPattern allocates and fills a fragment pattern (test helper; the
// hot paths use fragPatternInto / fragPatternCheck on pooled buffers).
func fragPattern(job, index, size int) []byte {
	b := make([]byte, size)
	fragPatternInto(b, job, index)
	return b
}

// fragPatternCheck verifies data against the deterministic pattern in
// place, without materializing the expected image. Zero allocations
// (ceiling enforced by TestFragCheckAllocs).
func fragPatternCheck(job, index int, data []byte) bool {
	seed := byte(job*31 + index*7)
	w := patternRamp[seed : int(seed)+256]
	for len(data) >= 256 {
		if !bytes.Equal(data[:256], w) {
			return false
		}
		data = data[256:]
	}
	return bytes.Equal(data, w[:len(data)])
}

// chunkSeed returns the content seed of one chunk of a seeded image:
// the job's ImageSeed unless an ImagePatch entry rebuilds that chunk.
func chunkSeed(spec *JobSpec, index int) uint64 {
	if s, ok := spec.ImagePatch[index]; ok {
		return s
	}
	return spec.ImageSeed
}

// seededFragInto fills b with the content-addressed image bytes of a
// chunk: a 256-byte pseudorandom tile derived from (seed, index) via
// splitmix64, repeated by block copy. Like the legacy ramp it fills at
// memmove speed with zero allocations, but the bytes depend only on
// the content seed — not the job — so identical images hash and cache
// identically across launches.
func seededFragInto(b []byte, seed uint64, index int) {
	var tile [256]byte
	s := rng.SplitMix64(rng.Mix64(seed ^ (uint64(index)+1)*rng.GoldenGamma))
	for i := 0; i < 256; i += 8 {
		binary.LittleEndian.PutUint64(tile[i:], s.Next())
	}
	for len(b) >= 256 {
		copy(b, tile[:])
		b = b[256:]
	}
	copy(b, tile[:len(b)])
}

// Frame types. Every frame starts with one type byte. 'G' is the cold
// path (rare, topology-sized messages: Register, Submit, Plan, Replan,
// CtlPlan, Launch, ...); everything that runs per-fragment or per-period
// has its own fixed-layout frame so the hot paths never touch gob's
// per-stream type descriptors or allocations.
const (
	frameGob       = 'G' // 4-byte length + gob(Message)
	frameFrag      = 'F' // fragHdrLen header + payload
	frameAck       = 'A' // ackHdrLen fixed body
	framePing      = 'P' // pingBodyLen fixed body
	framePong      = 'Q' // pongBodyLen fixed body
	frameStrobe    = 'S' // strobeBodyLen fixed body
	frameStrobeAck = 'T' // strobeAckBodyLen fixed body
	framePlanAck   = 'K' // planAckFixedLen fixed part + error string
	frameReplanAck = 'R' // replanAckFixedLen fixed part + error string
	framePeerDown  = 'D' // peerDownFixedLen fixed part + error string
	frameManifest  = 'M' // manifestFixedLen fixed part + nchunks×12 tail
	frameHave      = 'H' // haveFixedLen fixed part + nwords×8 tail
	frameNeed      = 'N' // needFixedLen fixed part + nwords×8 tail
	frameHello     = 'L' // helloBodyLen fixed body (shared-listener demux)
)

const (
	// fragHdrLen is job u32 | index u32 | flags u8 | crc u32 | len u32 |
	// stripe u8. The stripe byte rides at the end so the payload length
	// keeps its offset (13) — the faultconn frame scanner and the hub
	// demux depend on it.
	fragHdrLen = 18
	// ackHdrLen is job u32 | index u32 | node u32 | epoch u32 | ok u8 |
	// stripe u8.
	ackHdrLen = 18
	// pingBodyLen is seq u64 | epoch u32.
	pingBodyLen = 12
	// pongBodyLen is seq u64 | node u32 | epoch u32 | minseq u64 | absent u64.
	pongBodyLen = 32
	// strobeBodyLen is seq u64 | row u32 | epoch u32.
	strobeBodyLen = 16
	// strobeAckBodyLen is seq u64 | node u32 | epoch u32.
	strobeAckBodyLen = 16
	// planAckFixedLen is job u32 | node u32 | elen u16 (error string follows).
	planAckFixedLen = 10
	// replanAckFixedLen is job u32 | node u32 | epoch u32 | received u32 |
	// stripe u8 | elen u16 (the error length stays the last two fixed
	// bytes, the invariant the faultconn scanner's varlen rule encodes).
	replanAckFixedLen = 19
	// peerDownFixedLen is job u32 | node u32 | from u32 | elen u16.
	peerDownFixedLen = 14
	// manifestFixedLen is job u32 | epoch u32 | chunkbytes u32 |
	// imagecrc u32 | totalbytes u64 | nchunks u32 | stripe u8; a
	// 12-byte (hash u64 | crc u32) record per chunk follows. nchunks
	// keeps offset 24 for the faultconn scanner's tail count.
	manifestFixedLen = 29
	// haveFixedLen is job u32 | node u32 | epoch u32 | nwords u16 |
	// stripe u8; the bitmap words follow, 8 bytes each.
	haveFixedLen = 15
	// needFixedLen is job u32 | epoch u32 | nwords u16 | stripe u8;
	// bitmap words follow.
	needFixedLen = 11
	// helloBodyLen is node u32. A shared peer listener (PeerHub) reads
	// exactly 1+helloBodyLen raw bytes off a fresh connection to learn
	// which NM it is for, so the frame must stay fixed-size.
	helloBodyLen = 4
	// maxFrame bounds a frame payload (corruption guard).
	maxFrame = 64 << 20
	// maxCtlErr bounds the error string carried in a typed control
	// frame; longer errors are truncated (they are diagnostics, not
	// data).
	maxCtlErr = 1 << 12
	// connScratchLen sizes the conn's frame scratch buffer: the largest
	// fixed frame is the pong (1 type byte + pongBodyLen).
	connScratchLen = 1 + pongBodyLen
)

// fragBufPool recycles fragment payload buffers across the send, relay,
// and receive paths so the steady-state transfer allocates nothing per
// fragment.
var fragBufPool sync.Pool

// grabFragBuf returns a buffer of length n, reusing a pooled one when
// its capacity suffices.
func grabFragBuf(n int) []byte {
	if v := fragBufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// releaseFragBuf returns a fragment buffer to the pool. Callers must not
// touch the slice afterwards.
func releaseFragBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	fragBufPool.Put(&b)
}

// conn wraps a TCP connection with the frame codec: buffered writes with
// explicit flush per frame, a write lock (frames must not interleave),
// and an egress byte counter (the bench's MM-egress metric).
type conn struct {
	c   net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	wmu sync.Mutex
	// hdr is the frame scratch buffer, guarded by wmu; reusing it keeps
	// the bulk and control send paths at zero allocations per frame. It
	// is sized for the largest fixed frame (the pong ledger); varlen
	// control frames (PlanAck and kin) borrow its prefix and append the
	// error string as a second write.
	hdr [connScratchLen]byte

	// Decode scratch for the zero-alloc control subset: recv returns
	// pointers into these, valid until the next recv. A conn has one
	// reader (the read loop that owns it), so there is no aliasing.
	// rbuf is the header/body read buffer — a conn field rather than a
	// stack array because a stack array passed to io.ReadFull escapes
	// and would cost an allocation per frame.
	rbuf       [connScratchLen]byte
	rHello     Hello
	rPing      Ping
	rPong      Pong
	rStrobe    Strobe
	rStrobeAck StrobeAck
	rAck       FragAck
	rManifest  Manifest // Hashes/CRCs grown once, reused across frames
	rHave      Have     // Bits grown once
	rNeed      NeedMask // Bits grown once

	// Persistent gob codec. Type descriptors compile once per link, not
	// once per message: a fresh gob.NewEncoder/NewDecoder pair per frame
	// costs a reflect-driven type compilation each time, which profiles
	// as the dominant control-plane cost once a launch pushes one plan
	// per NM across hundreds of NMs. The encoder state lives under wmu
	// (Encode mutates it); the decoder is owned by the conn's single
	// reader. The byte stream stays framed — each Encode's output is
	// drained into one length-prefixed 'G' frame, and the receiver feeds
	// payloads to its decoder in arrival order, so the pair see one
	// continuous gob stream.
	enc    *gob.Encoder
	encBuf bytes.Buffer
	dec    *gob.Decoder
	decBuf bytes.Buffer

	sent       atomic.Int64 // bytes written, frames included
	sentFrames atomic.Int64 // frames written (the control-egress metric)
}

// connProfile sizes a connection's buffering. The bulk profile is tuned
// for throughput on a handful of links (deep bufio, 1MB socket buffers
// so an early fragment write lands in the kernel in one shot instead of
// blocking on tcp_wmem autotuning). The lite profile is tuned for
// density: with hundreds of NMs in one process the per-conn bufio pair
// dominates the per-NM heap (2×64KB on each side of every link), so
// lite conns carry shallow buffers and leave the socket buffers to the
// kernel — the right trade for control-sized frames, which is all a
// steady-state registered NM exchanges.
type connProfile struct {
	bufBytes  int // bufio reader/writer size, each direction
	sockBytes int // TCP send/receive buffer; 0 keeps the kernel default
}

var (
	bulkProfile = connProfile{bufBytes: 64 << 10, sockBytes: 1 << 20}
	liteProfile = connProfile{bufBytes: 8 << 10}
)

func newConn(c net.Conn) *conn { return newConnProf(c, bulkProfile) }

func newConnProf(c net.Conn, prof connProfile) *conn {
	if tc, ok := c.(*net.TCPConn); ok && prof.sockBytes > 0 {
		tc.SetWriteBuffer(prof.sockBytes)
		tc.SetReadBuffer(prof.sockBytes)
	}
	return &conn{c: c, r: bufio.NewReaderSize(c, prof.bufBytes), w: bufio.NewWriterSize(c, prof.bufBytes)}
}

// send serializes one message. Fragments, fragment acks, and the hot
// control messages (heartbeats, strobes, plan confirmations, peer-down
// reports) are routed to fixed-layout typed frames; only the cold
// remainder (registration, submissions, topology plans, launches,
// reports) is gob inside a 'G' frame, encoded on the conn's persistent
// gob stream so type descriptors cross each link exactly once.
func (c *conn) send(m Message) error {
	switch {
	case m.Frag != nil:
		return c.sendFrag(m.Frag)
	case m.FragAck != nil:
		return c.sendAck(m.FragAck)
	case m.Ping != nil:
		return c.sendPing(m.Ping)
	case m.Pong != nil:
		return c.sendPong(m.Pong)
	case m.Strobe != nil:
		return c.sendStrobe(m.Strobe)
	case m.StrobeAck != nil:
		return c.sendStrobeAck(m.StrobeAck)
	case m.PlanAck != nil:
		return c.sendPlanAck(m.PlanAck)
	case m.ReplanAck != nil:
		return c.sendReplanAck(m.ReplanAck)
	case m.PeerDown != nil:
		return c.sendPeerDown(m.PeerDown)
	case m.Manifest != nil:
		return c.sendManifest(m.Manifest)
	case m.Have != nil:
		return c.sendHave(m.Have)
	case m.NeedMask != nil:
		return c.sendNeedMask(m.NeedMask)
	}
	c.wmu.Lock()
	if c.enc == nil {
		c.enc = gob.NewEncoder(&c.encBuf)
	}
	c.encBuf.Reset()
	if err := c.enc.Encode(&m); err != nil {
		c.wmu.Unlock()
		return err
	}
	var hdr [5]byte
	hdr[0] = frameGob
	binary.BigEndian.PutUint32(hdr[1:], uint32(c.encBuf.Len()))
	err := c.writeFrame(hdr[:], c.encBuf.Bytes())
	c.wmu.Unlock()
	return err
}

// sendFrag writes one fragment frame: the header is built on the stack
// and the payload is written straight from the caller's buffer — no
// per-destination encoding, no copies. Safe for concurrent use with
// other senders on the same conn.
func (c *conn) sendFrag(f *Frag) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+fragHdrLen]
	hdr[0] = frameFrag
	binary.BigEndian.PutUint32(hdr[1:], uint32(f.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(f.Index))
	hdr[9] = 0
	if f.Last {
		hdr[9] = 1
	}
	binary.BigEndian.PutUint32(hdr[10:], f.CRC)
	binary.BigEndian.PutUint32(hdr[14:], uint32(len(f.Data)))
	hdr[18] = byte(f.Stripe)
	return c.writeFrame(hdr, f.Data)
}

// sendAck writes one fixed-size ack frame.
func (c *conn) sendAck(a *FragAck) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+ackHdrLen]
	hdr[0] = frameAck
	binary.BigEndian.PutUint32(hdr[1:], uint32(a.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(a.Index))
	binary.BigEndian.PutUint32(hdr[9:], uint32(a.Node))
	binary.BigEndian.PutUint32(hdr[13:], uint32(a.Epoch))
	hdr[17] = 0
	if a.OK {
		hdr[17] = 1
	}
	hdr[18] = byte(a.Stripe)
	return c.writeFrame(hdr, nil)
}

// sendPing writes one fixed-size ping frame (zero allocations).
func (c *conn) sendPing(p *Ping) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+pingBodyLen]
	hdr[0] = framePing
	binary.BigEndian.PutUint64(hdr[1:], uint64(p.Seq))
	binary.BigEndian.PutUint32(hdr[9:], uint32(p.Epoch))
	return c.writeFrame(hdr, nil)
}

// sendPong writes one fixed-size pong-ledger frame (zero allocations).
func (c *conn) sendPong(p *Pong) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+pongBodyLen]
	hdr[0] = framePong
	binary.BigEndian.PutUint64(hdr[1:], uint64(p.Seq))
	binary.BigEndian.PutUint32(hdr[9:], uint32(p.Node))
	binary.BigEndian.PutUint32(hdr[13:], uint32(p.Epoch))
	binary.BigEndian.PutUint64(hdr[17:], uint64(p.MinSeq))
	binary.BigEndian.PutUint64(hdr[25:], p.Absent)
	return c.writeFrame(hdr, nil)
}

// sendStrobe writes one fixed-size strobe frame (zero allocations).
func (c *conn) sendStrobe(s *Strobe) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+strobeBodyLen]
	hdr[0] = frameStrobe
	binary.BigEndian.PutUint64(hdr[1:], uint64(s.Seq))
	binary.BigEndian.PutUint32(hdr[9:], uint32(s.Row))
	binary.BigEndian.PutUint32(hdr[13:], uint32(s.Epoch))
	return c.writeFrame(hdr, nil)
}

// sendStrobeAck writes one fixed-size strobe-ack frame (zero
// allocations).
func (c *conn) sendStrobeAck(a *StrobeAck) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+strobeAckBodyLen]
	hdr[0] = frameStrobeAck
	binary.BigEndian.PutUint64(hdr[1:], uint64(a.Seq))
	binary.BigEndian.PutUint32(hdr[9:], uint32(a.Node))
	binary.BigEndian.PutUint32(hdr[13:], uint32(a.Epoch))
	return c.writeFrame(hdr, nil)
}

// ctlErr clips a control-frame error string to the wire bound.
func ctlErr(s string) string {
	if len(s) > maxCtlErr {
		return s[:maxCtlErr]
	}
	return s
}

// sendPlanAck writes a typed plan-confirmation frame: fixed part plus
// the (usually empty) error string.
func (c *conn) sendPlanAck(a *PlanAck) error {
	e := ctlErr(a.Err)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+planAckFixedLen]
	hdr[0] = framePlanAck
	binary.BigEndian.PutUint32(hdr[1:], uint32(a.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(a.Node))
	binary.BigEndian.PutUint16(hdr[9:], uint16(len(e)))
	return c.writeFrameString(hdr, e)
}

// sendReplanAck writes a typed replan-confirmation frame.
func (c *conn) sendReplanAck(a *ReplanAck) error {
	e := ctlErr(a.Err)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+replanAckFixedLen]
	hdr[0] = frameReplanAck
	binary.BigEndian.PutUint32(hdr[1:], uint32(a.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(a.Node))
	binary.BigEndian.PutUint32(hdr[9:], uint32(a.Epoch))
	binary.BigEndian.PutUint32(hdr[13:], uint32(a.Received))
	hdr[17] = byte(a.Stripe)
	binary.BigEndian.PutUint16(hdr[18:], uint16(len(e)))
	return c.writeFrameString(hdr, e)
}

// sendPeerDown writes a typed peer-down report frame.
func (c *conn) sendPeerDown(d *PeerDown) error {
	e := ctlErr(d.Err)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+peerDownFixedLen]
	hdr[0] = framePeerDown
	binary.BigEndian.PutUint32(hdr[1:], uint32(d.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(d.Node))
	binary.BigEndian.PutUint32(hdr[9:], uint32(d.From))
	binary.BigEndian.PutUint16(hdr[13:], uint16(len(e)))
	return c.writeFrameString(hdr, e)
}

// tailPool recycles the scratch buffers for variable-length typed-frame
// tails (manifest chunk records, HAVE/need bitmap words) on both the
// encode and decode paths. The scratch used to be a grown-once buffer
// owned by each conn, which sizes the fleet's tail memory by the number
// of connections — O(cluster) with hundreds of NMs in one process. A
// tail is only live while one frame is being built or decoded, so the
// pool's working set is the number of conns concurrently inside a
// varlen send/recv: O(fanout), not O(cluster).
var tailPool sync.Pool

// grabTail returns pooled tail scratch with at least n usable bytes.
// Release with putTail once the frame is written or decoded.
func grabTail(n int) *[]byte {
	if v := tailPool.Get(); v != nil {
		p := v.(*[]byte)
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	b := make([]byte, n)
	return &b
}

func putTail(p *[]byte) { tailPool.Put(p) }

// sendHello writes the shared-listener routing frame; it must be the
// first frame on a connection dialed through a PeerHub address.
func (c *conn) sendHello(node int) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+helloBodyLen]
	hdr[0] = frameHello
	binary.BigEndian.PutUint32(hdr[1:], uint32(node))
	return c.writeFrame(hdr, nil)
}

// sendManifest writes a typed manifest frame: fixed part in the conn
// scratch, per-chunk hash records in pooled tail scratch (zero
// steady-state allocations).
func (c *conn) sendManifest(m *Manifest) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+manifestFixedLen]
	hdr[0] = frameManifest
	binary.BigEndian.PutUint32(hdr[1:], uint32(m.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(m.Epoch))
	binary.BigEndian.PutUint32(hdr[9:], uint32(m.ChunkBytes))
	binary.BigEndian.PutUint32(hdr[13:], m.ImageCRC)
	binary.BigEndian.PutUint64(hdr[17:], uint64(m.TotalBytes))
	binary.BigEndian.PutUint32(hdr[25:], uint32(len(m.Hashes)))
	hdr[29] = byte(m.Stripe)
	tp := grabTail(len(m.Hashes) * 12)
	tail := *tp
	for i, h := range m.Hashes {
		binary.BigEndian.PutUint64(tail[i*12:], h)
		binary.BigEndian.PutUint32(tail[i*12+8:], m.CRCs[i])
	}
	err := c.writeFrame(hdr, tail)
	putTail(tp)
	return err
}

// sendHave writes a typed aggregated cache-ledger frame (zero
// steady-state allocations).
func (c *conn) sendHave(h *Have) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+haveFixedLen]
	hdr[0] = frameHave
	binary.BigEndian.PutUint32(hdr[1:], uint32(h.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(h.Node))
	binary.BigEndian.PutUint32(hdr[9:], uint32(h.Epoch))
	binary.BigEndian.PutUint16(hdr[13:], uint16(len(h.Bits)))
	hdr[15] = byte(h.Stripe)
	tp := grabTail(len(h.Bits) * 8)
	tail := *tp
	for i, w := range h.Bits {
		binary.BigEndian.PutUint64(tail[i*8:], w)
	}
	err := c.writeFrame(hdr, tail)
	putTail(tp)
	return err
}

// sendNeedMask writes a typed stream-announcement frame (zero
// steady-state allocations).
func (c *conn) sendNeedMask(n *NeedMask) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	hdr := c.hdr[:1+needFixedLen]
	hdr[0] = frameNeed
	binary.BigEndian.PutUint32(hdr[1:], uint32(n.Job))
	binary.BigEndian.PutUint32(hdr[5:], uint32(n.Epoch))
	binary.BigEndian.PutUint16(hdr[9:], uint16(len(n.Bits)))
	hdr[11] = byte(n.Stripe)
	tp := grabTail(len(n.Bits) * 8)
	tail := *tp
	for i, w := range n.Bits {
		binary.BigEndian.PutUint64(tail[i*8:], w)
	}
	err := c.writeFrame(hdr, tail)
	putTail(tp)
	return err
}

// writeFrame writes header+payload and flushes. Caller holds wmu.
func (c *conn) writeFrame(hdr, payload []byte) error {
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.w.Write(payload); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.sent.Add(int64(len(hdr) + len(payload)))
	c.sentFrames.Add(1)
	return nil
}

// writeFrameString is writeFrame with a string tail (control-frame
// error strings), avoiding a []byte conversion allocation. Caller
// holds wmu.
func (c *conn) writeFrameString(hdr []byte, tail string) error {
	if _, err := c.w.Write(hdr); err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := c.w.WriteString(tail); err != nil {
			return err
		}
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	c.sent.Add(int64(len(hdr) + len(tail)))
	c.sentFrames.Add(1)
	return nil
}

// recv blocks for the next message. A received Frag's Data is a pooled
// buffer: the consumer must call releaseFragBuf(f.Data) when done.
func (c *conn) recv() (Message, error) {
	if _, err := io.ReadFull(c.r, c.rbuf[:1]); err != nil {
		return Message{}, err
	}
	ft := c.rbuf[0]
	switch ft {
	case frameGob:
		lb := c.rbuf[:4]
		if _, err := io.ReadFull(c.r, lb); err != nil {
			return Message{}, err
		}
		n := int(binary.BigEndian.Uint32(lb))
		if n > maxFrame {
			return Message{}, fmt.Errorf("livenet: oversized control frame (%d bytes)", n)
		}
		if c.dec == nil {
			c.dec = gob.NewDecoder(&c.decBuf)
		}
		// Feed the payload onto the conn's continuous gob stream;
		// bytes.Buffer's ReadFrom keeps the copy allocation-free once
		// the buffer has grown to the largest control message.
		if _, err := io.CopyN(&c.decBuf, c.r, int64(n)); err != nil {
			return Message{}, err
		}
		var m Message
		err := c.dec.Decode(&m)
		return m, err
	case frameFrag:
		hb := c.rbuf[:fragHdrLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		n := int(binary.BigEndian.Uint32(hb[13:]))
		if n > maxFrame {
			return Message{}, fmt.Errorf("livenet: oversized fragment frame (%d bytes)", n)
		}
		f := &Frag{
			Job:    int(binary.BigEndian.Uint32(hb[0:])),
			Index:  int(binary.BigEndian.Uint32(hb[4:])),
			Last:   hb[8] == 1,
			CRC:    binary.BigEndian.Uint32(hb[9:]),
			Stripe: int(hb[17]),
			Data:   grabFragBuf(n),
		}
		if _, err := io.ReadFull(c.r, f.Data); err != nil {
			releaseFragBuf(f.Data)
			return Message{}, err
		}
		return Message{Frag: f}, nil
	case frameAck:
		hb := c.rbuf[:ackHdrLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rAck = FragAck{
			Job:    int(binary.BigEndian.Uint32(hb[0:])),
			Index:  int(binary.BigEndian.Uint32(hb[4:])),
			Node:   int(binary.BigEndian.Uint32(hb[8:])),
			Epoch:  int(binary.BigEndian.Uint32(hb[12:])),
			OK:     hb[16] == 1,
			Stripe: int(hb[17]),
		}
		return Message{FragAck: &c.rAck}, nil
	case framePing:
		hb := c.rbuf[:pingBodyLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rPing = Ping{
			Seq:   int64(binary.BigEndian.Uint64(hb[0:])),
			Epoch: int(binary.BigEndian.Uint32(hb[8:])),
		}
		return Message{Ping: &c.rPing}, nil
	case framePong:
		hb := c.rbuf[:pongBodyLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rPong = Pong{
			Seq:    int64(binary.BigEndian.Uint64(hb[0:])),
			Node:   int(binary.BigEndian.Uint32(hb[8:])),
			Epoch:  int(binary.BigEndian.Uint32(hb[12:])),
			MinSeq: int64(binary.BigEndian.Uint64(hb[16:])),
			Absent: binary.BigEndian.Uint64(hb[24:]),
		}
		return Message{Pong: &c.rPong}, nil
	case frameStrobe:
		hb := c.rbuf[:strobeBodyLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rStrobe = Strobe{
			Seq:   int64(binary.BigEndian.Uint64(hb[0:])),
			Row:   int(binary.BigEndian.Uint32(hb[8:])),
			Epoch: int(binary.BigEndian.Uint32(hb[12:])),
		}
		return Message{Strobe: &c.rStrobe}, nil
	case frameStrobeAck:
		hb := c.rbuf[:strobeAckBodyLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rStrobeAck = StrobeAck{
			Seq:   int64(binary.BigEndian.Uint64(hb[0:])),
			Node:  int(binary.BigEndian.Uint32(hb[8:])),
			Epoch: int(binary.BigEndian.Uint32(hb[12:])),
		}
		return Message{StrobeAck: &c.rStrobeAck}, nil
	case framePlanAck:
		hb := c.rbuf[:planAckFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		e, err := c.readCtlErr(int(binary.BigEndian.Uint16(hb[8:])))
		if err != nil {
			return Message{}, err
		}
		return Message{PlanAck: &PlanAck{
			Job:  int(binary.BigEndian.Uint32(hb[0:])),
			Node: int(binary.BigEndian.Uint32(hb[4:])),
			Err:  e,
		}}, nil
	case frameReplanAck:
		hb := c.rbuf[:replanAckFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		e, err := c.readCtlErr(int(binary.BigEndian.Uint16(hb[17:])))
		if err != nil {
			return Message{}, err
		}
		return Message{ReplanAck: &ReplanAck{
			Job:      int(binary.BigEndian.Uint32(hb[0:])),
			Node:     int(binary.BigEndian.Uint32(hb[4:])),
			Epoch:    int(binary.BigEndian.Uint32(hb[8:])),
			Received: int(binary.BigEndian.Uint32(hb[12:])),
			Stripe:   int(hb[16]),
			Err:      e,
		}}, nil
	case framePeerDown:
		hb := c.rbuf[:peerDownFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		e, err := c.readCtlErr(int(binary.BigEndian.Uint16(hb[12:])))
		if err != nil {
			return Message{}, err
		}
		return Message{PeerDown: &PeerDown{
			Job:  int(binary.BigEndian.Uint32(hb[0:])),
			Node: int(binary.BigEndian.Uint32(hb[4:])),
			From: int(binary.BigEndian.Uint32(hb[8:])),
			Err:  e,
		}}, nil
	case frameManifest:
		hb := c.rbuf[:manifestFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		nch := int(binary.BigEndian.Uint32(hb[24:]))
		if nch*12 > maxFrame {
			return Message{}, fmt.Errorf("livenet: oversized manifest (%d chunks)", nch)
		}
		tp, err := c.readTail(nch * 12)
		if err != nil {
			return Message{}, err
		}
		tail := *tp
		m := &c.rManifest
		m.Job = int(binary.BigEndian.Uint32(hb[0:]))
		m.Epoch = int(binary.BigEndian.Uint32(hb[4:]))
		m.ChunkBytes = int(binary.BigEndian.Uint32(hb[8:]))
		m.ImageCRC = binary.BigEndian.Uint32(hb[12:])
		m.TotalBytes = int64(binary.BigEndian.Uint64(hb[16:]))
		m.Stripe = int(hb[28])
		if cap(m.Hashes) < nch {
			m.Hashes = make([]uint64, nch)
			m.CRCs = make([]uint32, nch)
		}
		m.Hashes, m.CRCs = m.Hashes[:nch], m.CRCs[:nch]
		for i := 0; i < nch; i++ {
			m.Hashes[i] = binary.BigEndian.Uint64(tail[i*12:])
			m.CRCs[i] = binary.BigEndian.Uint32(tail[i*12+8:])
		}
		putTail(tp)
		return Message{Manifest: m}, nil
	case frameHave:
		hb := c.rbuf[:haveFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		nw := int(binary.BigEndian.Uint16(hb[12:]))
		tp, err := c.readTail(nw * 8)
		if err != nil {
			return Message{}, err
		}
		tail := *tp
		h := &c.rHave
		h.Job = int(binary.BigEndian.Uint32(hb[0:]))
		h.Node = int(binary.BigEndian.Uint32(hb[4:]))
		h.Epoch = int(binary.BigEndian.Uint32(hb[8:]))
		h.Stripe = int(hb[14])
		if cap(h.Bits) < nw {
			h.Bits = make([]uint64, nw)
		}
		h.Bits = h.Bits[:nw]
		for i := 0; i < nw; i++ {
			h.Bits[i] = binary.BigEndian.Uint64(tail[i*8:])
		}
		putTail(tp)
		return Message{Have: h}, nil
	case frameNeed:
		hb := c.rbuf[:needFixedLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		nw := int(binary.BigEndian.Uint16(hb[8:]))
		tp, err := c.readTail(nw * 8)
		if err != nil {
			return Message{}, err
		}
		tail := *tp
		n := &c.rNeed
		n.Job = int(binary.BigEndian.Uint32(hb[0:]))
		n.Epoch = int(binary.BigEndian.Uint32(hb[4:]))
		n.Stripe = int(hb[10])
		if cap(n.Bits) < nw {
			n.Bits = make([]uint64, nw)
		}
		n.Bits = n.Bits[:nw]
		for i := 0; i < nw; i++ {
			n.Bits[i] = binary.BigEndian.Uint64(tail[i*8:])
		}
		putTail(tp)
		return Message{NeedMask: n}, nil
	case frameHello:
		hb := c.rbuf[:helloBodyLen]
		if _, err := io.ReadFull(c.r, hb); err != nil {
			return Message{}, err
		}
		c.rHello = Hello{Node: int(binary.BigEndian.Uint32(hb[0:]))}
		return Message{Hello: &c.rHello}, nil
	default:
		return Message{}, fmt.Errorf("livenet: unknown frame type %#x", ft)
	}
}

// readTail reads a variable frame tail into pooled scratch. The caller
// decodes out of it and returns it with putTail before recv returns —
// the decoded message lives in the conn's typed scratch structs, never
// in the tail itself.
func (c *conn) readTail(n int) (*[]byte, error) {
	tp := grabTail(n)
	if _, err := io.ReadFull(c.r, *tp); err != nil {
		putTail(tp)
		return nil, err
	}
	return tp, nil
}

// readCtlErr reads a control frame's trailing error string. Zero-length
// (the overwhelmingly common case) costs nothing.
func (c *conn) readCtlErr(n int) (string, error) {
	if n == 0 {
		return "", nil
	}
	if n > maxCtlErr {
		return "", fmt.Errorf("livenet: oversized control error (%d bytes)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// sentBytes reports how many bytes have been written on this conn.
func (c *conn) sentBytes() int64 { return c.sent.Load() }

func (c *conn) close() { c.c.Close() }

// Dialer opens the transport connection to an address. MM/NM configs
// accept one so tests can interpose deterministic faults (see
// internal/livenet/faultconn); nil means plain TCP.
type Dialer func(addr string) (net.Conn, error)

// Connection-level fault absorption: transient dial failures (a peer
// restarting its listener, a SYN lost under load) are retried with
// capped exponential backoff before they are escalated into node
// failures.
const (
	dialAttempts    = 3
	dialBaseBackoff = 50 * time.Millisecond
	dialMaxBackoff  = 400 * time.Millisecond
	dialTimeout     = 5 * time.Second
)

// backoffSeq is the splitmix64 state feeding backoff jitter; jitter
// decorrelates retry storms when many nodes redial at once. The state
// steps atomically (many goroutines may back off concurrently), with
// the shared internal/rng step constants.
var backoffSeq atomic.Uint64

// backoffDelay returns the capped exponential backoff for a retry
// attempt (0-based), jittered to 50-100% of the nominal value.
func backoffDelay(attempt int) time.Duration {
	d := dialBaseBackoff << uint(attempt)
	if d > dialMaxBackoff {
		d = dialMaxBackoff
	}
	z := rng.Mix64(backoffSeq.Add(rng.GoldenGamma))
	return d/2 + time.Duration(z%uint64(d/2+1))
}

// splitPeerAddr splits a hub-routed peer address "host:port#node" into
// the dialable endpoint and the target NM. A plain address comes back
// with hub=false and is dialed as-is.
func splitPeerAddr(addr string) (endpoint string, node int, hub bool) {
	i := strings.LastIndexByte(addr, '#')
	if i < 0 {
		return addr, 0, false
	}
	n, err := strconv.Atoi(addr[i+1:])
	if err != nil {
		return addr, 0, false
	}
	return addr[:i], n, true
}

// dialWith connects to addr through dialer (nil = TCP with a bounded
// timeout), retrying transient failures with jittered backoff, and runs
// the established connection through wrap (nil = identity).
func dialWith(dialer Dialer, wrap func(net.Conn) net.Conn, addr string) (*conn, error) {
	return dialProf(dialer, wrap, addr, bulkProfile)
}

// dialProf is dialWith with an explicit connection profile. A peer
// address carrying a "#node" suffix routes through a shared PeerHub
// listener: the suffix is stripped before dialing and a hello frame
// naming the target NM opens the connection.
func dialProf(dialer Dialer, wrap func(net.Conn) net.Conn, addr string, prof connProfile) (*conn, error) {
	endpoint, node, hub := splitPeerAddr(addr)
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, dialTimeout) }
	}
	var err error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffDelay(attempt - 1))
		}
		var nc net.Conn
		if nc, err = dialer(endpoint); err == nil {
			if wrap != nil {
				nc = wrap(nc)
			}
			c := newConnProf(nc, prof)
			if hub {
				// The hello must land before any other frame so the hub
				// can route the connection; a failure here is a transient
				// connection fault like any dial error — retry.
				if err = c.sendHello(node); err != nil {
					c.close()
					continue
				}
			}
			return c, nil
		}
	}
	return nil, fmt.Errorf("livenet: dial %s (%d attempts): %w", addr, dialAttempts, err)
}

// dial connects to addr with defaults: plain TCP, bounded timeout,
// retry with backoff.
func dial(addr string) (*conn, error) {
	return dialWith(nil, nil, addr)
}
