// Package livenet is the live (wall-clock) mode of the STORM
// reproduction: the same MM / NM / PL dæmon architecture as
// internal/storm, but running as real goroutines (or separate processes,
// via cmd/stormd) that talk gob-encoded messages over TCP.
//
// QsNET's hardware collectives obviously do not exist on a TCP loopback,
// so this is precisely the situation the paper's §4 "Portability"
// discussion describes: the mechanisms are emulated in a thin software
// layer — the binary multicast becomes a windowed per-node stream
// (the window plays the role of the Slots + COMPARE-AND-WRITE flow
// control), and the heartbeat receipt check becomes an ack aggregation.
// The dæmon logic above that layer is the same shape as the simulated
// one. Live mode exists so the repository also runs as an actual
// distributed resource manager on localhost, not only as a simulator.
package livenet

import (
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"time"
)

// JobSpec describes a live job.
type JobSpec struct {
	Name string
	// BinaryBytes is the size of the synthetic executable image the MM
	// distributes (contents are generated deterministically and
	// CRC-checked at each NM).
	BinaryBytes int
	// Nodes is how many NMs the job spans.
	Nodes int
	// PEsPerNode is processes per node.
	PEsPerNode int
	// Program selects the live process behavior.
	Program ProgramSpec
}

// ProgramSpec is the live process behavior, transmitted to the PLs.
type ProgramSpec struct {
	// Kind is "exit" (do-nothing), "sleep", "spin", or "sweep".
	Kind string
	// Duration bounds sleep/spin programs.
	Duration time.Duration
	// Grid and Iters parameterize the real sweep kernel.
	Grid  int
	Iters int
}

// Report is the timing breakdown returned to the submitting client,
// mirroring the paper's send/execute decomposition.
type Report struct {
	JobID    int
	Send     time.Duration // binary resident on all nodes
	Execute  time.Duration // fork through last termination report
	Total    time.Duration
	Timeline string
}

// Message is the wire envelope. Exactly one pointer field is set.
type Message struct {
	Register *Register
	Submit   *Submit
	Frag     *Frag
	FragAck  *FragAck
	Launch   *Launch
	Term     *Term
	Done     *Done
	Ping     *Ping
	Pong     *Pong
	Strobe   *Strobe
	StatusQ  *StatusReq
	StatusR  *StatusRep
}

// Register announces an NM to the MM.
type Register struct {
	Node int
	CPUs int
}

// Submit asks the MM to run a job.
type Submit struct {
	Spec JobSpec
}

// Frag carries one fragment of a job's binary image.
type Frag struct {
	Job   int
	Index int
	Last  bool
	Data  []byte
	CRC   uint32
}

// FragAck credits the sender's flow-control window after a fragment has
// been verified and written.
type FragAck struct {
	Job   int
	Index int
	Node  int
	OK    bool
}

// Launch orders an NM to fork a job's local processes.
type Launch struct {
	Job     int
	Spec    JobSpec
	Ranks   []int
	BinSize int
	// Row is the job's gang timeslot; Gang says whether processes start
	// gated (awaiting strobes) or free-running.
	Row  int
	Gang bool
}

// Term reports that all of a job's processes on a node have exited.
type Term struct {
	Job  int
	Node int
}

// Done returns the completion report to the client.
type Done struct {
	Report Report
	Err    string
}

// StatusReq asks the MM for a cluster snapshot; StatusRep answers it.
type StatusReq struct{}

// StatusRep is the MM's cluster snapshot.
type StatusRep struct {
	Nodes     []int // registered NM IDs, ascending
	Jobs      int   // jobs currently in flight
	Launched  int
	Completed int
	Strobes   int
	Gang      bool // live gang scheduling enabled
}

// Ping and Pong implement heartbeats.
type Ping struct{ Seq int64 }

// Pong acknowledges a Ping.
type Pong struct {
	Seq  int64
	Node int
}

// fragCRC computes the fragment checksum.
func fragCRC(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// fragPattern fills a fragment with the deterministic byte pattern of
// the synthetic binary image (so NMs can verify integrity end to end).
func fragPattern(job, index, size int) []byte {
	b := make([]byte, size)
	seed := byte(job*31 + index*7)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// conn wraps a TCP connection with gob codecs and a write lock (gob
// encoders are not safe for concurrent use).
type conn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	mu  sync.Mutex
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// send serializes one message.
func (c *conn) send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(&m)
}

// recv blocks for the next message.
func (c *conn) recv() (Message, error) {
	var m Message
	err := c.dec.Decode(&m)
	return m, err
}

func (c *conn) close() { c.c.Close() }

// dial connects to addr with a bounded timeout.
func dial(addr string) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("livenet: dial %s: %w", addr, err)
	}
	return newConn(nc), nil
}
