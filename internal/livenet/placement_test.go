package livenet

import (
	"testing"
)

// TestLeastLoadedOrderDeterministic pins the placement tie-break: equal
// loads order by ascending node ID regardless of input order, so an
// idle cluster reproduces the classic sorted-prefix placement and two
// identical clusters place identical jobs identically. (The pre-fix
// spread inherited Go's randomized map iteration through the caller and
// could differ run to run.)
func TestLeastLoadedOrderDeterministic(t *testing.T) {
	load := map[int]int{4: 1, 2: 0, 7: 1, 1: 0, 9: 2, 0: 0}
	perms := [][]int{
		{4, 2, 7, 1, 9, 0},
		{0, 1, 2, 4, 7, 9},
		{9, 7, 4, 2, 1, 0},
		{1, 9, 0, 4, 2, 7},
	}
	want := []int{0, 1, 2, 4, 7, 9} // loads 0,0,0 then 1,1 then 2 — ties by ID
	for _, perm := range perms {
		ids := append([]int(nil), perm...)
		got := leastLoadedOrder(ids, func(id int) int { return load[id] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("input %v: got %v, want %v", perm, got, want)
			}
		}
	}
}

// TestPlacementDeterministic checks the tie-break end to end: on an
// idle cluster the least-loaded pick is the sorted node-ID prefix,
// every time.
func TestPlacementDeterministic(t *testing.T) {
	mm, nms := startCluster(t, 6, MMConfig{})
	_ = nms
	for run := 0; run < 3; run++ {
		rep, err := SubmitJob(mm.Addr(), JobSpec{
			Name: "pd", BinaryBytes: 64 << 10, Nodes: 3, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		})
		if err != nil {
			t.Fatal(err)
		}
		// The placed set is observable through which NMs hold the image.
		for i, nm := range nms {
			_, ok := nm.ImageDigest(rep.JobID)
			if want := i < 3; ok != want {
				t.Fatalf("run %d: node %d image presence %v, want %v (idle placement must be nodes 0..2)",
					run, nm.Node(), ok, want)
			}
		}
	}
}
