// Package faultconn injects deterministic faults into livenet
// connections for chaos testing. A Conn wraps a net.Conn and applies a
// Plan — a fixed schedule of faults keyed to byte offsets and fragment
// ordinals observed on the wire — so a failure scenario is fully
// reproducible from its seed: hard close at fragment k or at gob frame
// k, one-way partitions, per-write delay, duplicated and corrupted frag
// frames, and injected dial failures.
//
// The wrapper is frame-aware: it runs the livenet frame grammar
// ('G' gob frames, 'F' frag frames with an 18-byte header carrying the
// payload length at offset 13, 'A' fixed 18-byte acks, the fixed typed
// control frames 'P'/'Q'/'S'/'T', the varlen control frames
// 'K'/'R'/'D' whose fixed part ends in a u16 error length, and the
// delta-transfer frames 'M'/'H'/'N' whose fixed part carries a tail
// element count — u32 of 12-byte chunk records for a manifest, u16 of
// 8-byte bitmap words for HAVE/need ledgers) as a
// streaming state machine over both directions, so triggers land on
// exact frame boundaries regardless of how the transport chunks
// writes. Beyond the fragment triggers, CtlFaults drop, duplicate, or
// delay one typed control frame picked by kind and per-kind ordinal —
// e.g. "drop the 3rd heartbeat ping this conn sends".
//
// Plans are wired in behind livenet's Config.Dialer / Config.WrapConn
// hooks; the package deliberately does not import livenet, so it can
// wrap either side of any link (MM accept path, NM peer accept path,
// NM outbound dials).
package faultconn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rng"
)

// Plan is one connection's deterministic fault schedule. Fragment
// ordinals count 'F' frames observed on this connection (0-based, per
// direction); -1 disables a trigger. Use NewPlan to get a Plan with
// every trigger disabled.
type Plan struct {
	// Write-path faults (bytes this endpoint sends).
	CloseAtFrag   int           // hard-close mid-header of the k-th outgoing frag frame
	DropAfter     int64         // >0: outbound one-way partition after this many bytes (writes report success, bytes vanish)
	WriteDelay    time.Duration // injected before every write
	DuplicateFrag int           // retransmit the k-th outgoing frag frame immediately after itself
	CorruptFrag   int           // flip a payload byte of the k-th outgoing frag frame (CRC must catch it)
	FailWriteGob  int           // hard-close before any byte of the k-th outgoing gob ('G') frame reaches the wire

	// CtlFaults target typed control frames this endpoint sends; each
	// fault fires at most once. Faults on distinct frames compose.
	CtlFaults []CtlFault

	// Read-path faults (bytes this endpoint receives).
	CloseAtReadFrag int  // hard-close after fully receiving the k-th incoming frag frame
	BlockReads      bool // inbound one-way partition: reads hang until the conn is closed

	// OnFault, if set, is called once per fired trigger with a short
	// kind tag ("close", "read-close", "drop", "duplicate", "corrupt",
	// "ctl-drop", "ctl-dup", "ctl-delay", "gate-kill"). Called from
	// Read/Write; must not block.
	OnFault func(kind string)

	// Gate, if set, subjects every conn wrapped with this plan to
	// process-level pause/heal/kill control. Unlike the per-conn
	// triggers above, a Gate is shared: one Gate attached to all of a
	// node's plans models signals delivered to the whole process.
	Gate *Gate
}

// Gate models process-level fault control over a set of connections: a
// paused node stops emitting bytes on every attached conn (its pongs
// and frags go silent, like SIGSTOP), a healed node resumes exactly
// where it left off, and a killed node's conns all die with
// ErrInjectedClose (like SIGKILL). Attach a Gate by setting Plan.Gate
// on every plan wrapped for that node's conns; conns wrapped after a
// Kill die immediately, so a gate covers links the node opens later
// too.
type Gate struct {
	mu     sync.Mutex
	paused bool
	killed bool
	wake   chan struct{} // closed and replaced on every state change
	conns  []*Conn
}

// NewGate returns a running (unpaused) gate.
func NewGate() *Gate {
	return &Gate{wake: make(chan struct{})}
}

// Pause blocks all future writes on attached conns until Heal. Writes
// already handed to the kernel are not recalled.
func (g *Gate) Pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.paused && !g.killed {
		g.paused = true
		close(g.wake)
		g.wake = make(chan struct{})
	}
}

// Heal releases writers blocked by Pause; the node resumes mid-stream
// with no bytes lost.
func (g *Gate) Heal() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.paused {
		g.paused = false
		close(g.wake)
		g.wake = make(chan struct{})
	}
}

// Kill hard-closes every attached conn (and every conn attached
// later), releasing any writer blocked by Pause with ErrInjectedClose.
// Kill is terminal: Heal does not undo it.
func (g *Gate) Kill() {
	g.mu.Lock()
	if g.killed {
		g.mu.Unlock()
		return
	}
	g.killed = true
	conns := g.conns
	g.conns = nil
	close(g.wake)
	g.mu.Unlock()
	for _, c := range conns {
		c.kill("gate-kill")
	}
}

// Killed reports whether Kill has been called.
func (g *Gate) Killed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.killed
}

// attach registers c for Kill propagation. Called from Wrap.
func (g *Gate) attach(c *Conn) {
	g.mu.Lock()
	if g.killed {
		g.mu.Unlock()
		c.kill("gate-kill")
		return
	}
	g.conns = append(g.conns, c)
	g.mu.Unlock()
}

// wait blocks while the gate is paused. It returns ErrInjectedClose if
// the gate is killed or the conn closes while waiting, nil otherwise.
func (g *Gate) wait(done <-chan struct{}) error {
	for {
		g.mu.Lock()
		if g.killed {
			g.mu.Unlock()
			return ErrInjectedClose
		}
		if !g.paused {
			g.mu.Unlock()
			return nil
		}
		wake := g.wake
		g.mu.Unlock()
		select {
		case <-wake:
		case <-done:
			return ErrInjectedClose
		}
	}
}

// CtlFault is one deterministic fault on a typed control frame: the
// Index-th outgoing frame of type Kind ('P' ping, 'Q' pong, 'S'
// strobe, 'T' strobe ack) is dropped, duplicated back-to-back, or
// delayed by Delay while later frames queue behind it — the classic
// lost/duplicated/late heartbeat cases a tree control plane must
// absorb without false convictions.
type CtlFault struct {
	Kind  byte
	Index int
	Op    string // "drop", "dup", or "delay"
	Delay time.Duration
}

// NewPlan returns a Plan with all triggers disabled.
func NewPlan() Plan {
	return Plan{CloseAtFrag: -1, DuplicateFrag: -1, CorruptFrag: -1, FailWriteGob: -1, CloseAtReadFrag: -1}
}

// ErrInjectedClose is the error surfaced by operations on a connection
// a Plan hard-closed.
var ErrInjectedClose = errors.New("faultconn: injected connection close")

// frame grammar constants, mirroring livenet's wire format.
const (
	fragHdrLen  = 18 // job u32 | index u32 | flags u8 | crc u32 | len u32 | stripe u8
	ackBodyLen  = 18
	lenOffInHdr = 13 // payload length within the frag header
	gobLenBytes = 4
	stType      = 0 // expecting a frame type byte
	stGobLen    = 1
	stFragHdr   = 2
	stSkipN     = 3 // skipping a fixed-size remainder (ack body, gob payload, ctl error)
	stFragBody  = 4
	stCtl       = 5 // inside a fixed-body typed control frame
	stVarHdr    = 6 // reading the fixed part of a varlen control frame

	// typed control frame sizes (proto.go). The varlen kinds carry a
	// u16 error length in the last two bytes of the fixed part.
	pingBodyLen       = 12
	pongBodyLen       = 32
	strobeBodyLen     = 16
	strobeAckBodyLen  = 16
	planAckFixedLen   = 10
	replanAckFixedLen = 19 // stripe byte precedes the trailing u16 error length
	peerDownFixedLen  = 14
	manifestFixedLen  = 29 // u32 chunk count at offset 24, stripe u8, 12-byte records follow
	haveFixedLen      = 15 // u16 word count at offset 12, stripe u8, 8-byte words follow
	needFixedLen      = 11 // u16 word count at offset 8, stripe u8, 8-byte words follow
	helloBodyLen      = 4  // shared-listener routing hello ('L')

	scanHdrLen = manifestFixedLen // widest fixed region buffered by the scanner
)

// ctlKindIdx maps a fixed-body control frame type byte to its ordinal
// counter slot, or -1.
func ctlKindIdx(b byte) int {
	switch b {
	case 'P':
		return 0
	case 'Q':
		return 1
	case 'S':
		return 2
	case 'T':
		return 3
	}
	return -1
}

// scanner is a streaming parser over one direction of the frame
// stream. step consumes a byte and reports frame-boundary events.
type scanner struct {
	state   int
	need    int // bytes left in the current fixed-size region
	hdr     [scanHdrLen]byte
	got     int
	bodyPos int // current byte's offset within a frag payload
	frags   int // frag frames seen so far; current ordinal is frags-1
	gobs    int // gob frames seen so far; current ordinal is gobs-1

	ctlKind   byte   // type byte of the fixed control frame being scanned
	ctlCounts [4]int // per-kind ordinals for 'P','Q','S','T'
	varElen   int    // offset of the tail-count field in the varlen fixed part
	varWidth  int    // width of that count field (2 or 4 bytes)
	varUnit   int    // bytes per counted tail element (1 for error strings)
}

type event struct {
	fragHdrDone   bool // this byte completed a frag header
	fragFrameDone bool // this byte completed a frag frame
	inFragBody    bool // this byte is frag payload
	bodyPos       int
	ord           int // fragment ordinal the event refers to

	ctlBegin bool // this byte is the type byte of a fixed control frame
	ctlDone  bool // this byte completed a fixed control frame
	ctlKind  byte
	ctlOrd   int // per-kind ordinal the ctl event refers to

	gobBegin bool // this byte is the type byte of a gob frame
	gobOrd   int  // gob ordinal the event refers to
}

func (s *scanner) step(b byte) event {
	var ev event
	switch s.state {
	case stType:
		switch b {
		case 'G':
			ev.gobBegin, ev.gobOrd = true, s.gobs
			s.gobs++
			s.state, s.need = stGobLen, gobLenBytes
			s.got = 0
		case 'F':
			s.state, s.got = stFragHdr, 0
		case 'A':
			s.state, s.need = stSkipN, ackBodyLen
		case 'P', 'Q', 'S', 'T':
			var n int
			switch b {
			case 'P':
				n = pingBodyLen
			case 'Q':
				n = pongBodyLen
			case 'S':
				n = strobeBodyLen
			case 'T':
				n = strobeAckBodyLen
			}
			idx := ctlKindIdx(b)
			ev.ctlBegin, ev.ctlKind, ev.ctlOrd = true, b, s.ctlCounts[idx]
			s.ctlCounts[idx]++
			s.ctlKind = b
			s.state, s.need = stCtl, n
		case 'K':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, planAckFixedLen, planAckFixedLen-2, 2, 1
		case 'R':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, replanAckFixedLen, replanAckFixedLen-2, 2, 1
		case 'D':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, peerDownFixedLen, peerDownFixedLen-2, 2, 1
		case 'M':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, manifestFixedLen, manifestFixedLen-5, 4, 12
		case 'H':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, haveFixedLen, haveFixedLen-3, 2, 8
		case 'N':
			s.state, s.got, s.need, s.varElen, s.varWidth, s.varUnit = stVarHdr, 0, needFixedLen, needFixedLen-3, 2, 8
		case 'L':
			// Shared-listener routing hello: fixed body, nothing to
			// count — but it must be consumed as a frame, or its body
			// bytes would be misread as frame types and desync the
			// scanner on hub-routed links.
			s.state, s.need = stSkipN, helloBodyLen
		default:
			// Unknown byte: stay in stType. The real codec would error;
			// the scanner just degrades to pass-through.
		}
	case stGobLen:
		s.hdr[s.got] = b
		s.got++
		s.need--
		if s.need == 0 {
			n := int(binary.BigEndian.Uint32(s.hdr[:gobLenBytes]))
			if n == 0 {
				s.state = stType
			} else {
				s.state, s.need = stSkipN, n
			}
		}
	case stFragHdr:
		s.hdr[s.got] = b
		s.got++
		if s.got == fragHdrLen {
			ev.fragHdrDone = true
			ev.ord = s.frags
			s.frags++
			n := int(binary.BigEndian.Uint32(s.hdr[lenOffInHdr:]))
			if n == 0 {
				ev.fragFrameDone = true
				s.state = stType
			} else {
				s.state, s.need, s.bodyPos = stFragBody, n, 0
			}
		}
	case stFragBody:
		ev.inFragBody = true
		ev.bodyPos = s.bodyPos
		ev.ord = s.frags - 1
		s.bodyPos++
		s.need--
		if s.need == 0 {
			ev.fragFrameDone = true
			s.state = stType
		}
	case stCtl:
		s.need--
		if s.need == 0 {
			idx := ctlKindIdx(s.ctlKind)
			ev.ctlDone, ev.ctlKind, ev.ctlOrd = true, s.ctlKind, s.ctlCounts[idx]-1
			s.state = stType
		}
	case stVarHdr:
		s.hdr[s.got] = b
		s.got++
		s.need--
		if s.need == 0 {
			var n int
			if s.varWidth == 4 {
				n = int(binary.BigEndian.Uint32(s.hdr[s.varElen : s.varElen+4]))
			} else {
				n = int(binary.BigEndian.Uint16(s.hdr[s.varElen : s.varElen+2]))
			}
			n *= s.varUnit
			if n == 0 {
				s.state = stType
			} else {
				s.state, s.need = stSkipN, n
			}
		}
	case stSkipN:
		s.need--
		if s.need == 0 {
			s.state = stType
		}
	}
	return ev
}

// Conn is a net.Conn with a fault Plan applied.
type Conn struct {
	net.Conn
	plan Plan

	wmu      sync.Mutex
	wScan    scanner
	written  int64
	dropping bool
	frame    []byte // current outgoing frame bytes, kept only while DuplicateFrag is armed
	inFrame  bool

	ctlHold    []byte // bytes of a control frame withheld for a pending CtlFault
	ctlHolding bool
	ctlFaultIx int    // index into plan.CtlFaults of the fault being held
	ctlFired   []bool // per-CtlFault fired-once latches

	rmu   sync.Mutex
	rScan scanner

	closeOnce sync.Once
	done      chan struct{}
	killed    bool
}

// Wrap applies plan to c. The returned Conn is safe for one concurrent
// reader and one concurrent writer, matching net.Conn conventions.
func Wrap(c net.Conn, plan Plan) *Conn {
	fc := &Conn{Conn: c, plan: plan, ctlFired: make([]bool, len(plan.CtlFaults)), done: make(chan struct{})}
	if plan.Gate != nil {
		plan.Gate.attach(fc)
	}
	return fc
}

// armedCtlFault returns the index of an unfired fault matching the
// control frame that just began, or -1.
func (c *Conn) armedCtlFault(kind byte, ord int) int {
	for i, f := range c.plan.CtlFaults {
		if !c.ctlFired[i] && f.Kind == kind && f.Index == ord {
			return i
		}
	}
	return -1
}

func (c *Conn) fire(kind string) {
	if c.plan.OnFault != nil {
		c.plan.OnFault(kind)
	}
}

// kill hard-closes the underlying conn on behalf of a trigger.
func (c *Conn) kill(kind string) {
	c.closeOnce.Do(func() {
		c.killed = true
		close(c.done)
		c.Conn.Close()
	})
	c.fire(kind)
}

// Close closes the wrapped connection and releases any blocked reader.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.Conn.Close()
	})
	return err
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.Gate != nil {
		if err := c.plan.Gate.wait(c.done); err != nil {
			return 0, err
		}
	}
	if c.plan.WriteDelay > 0 {
		select {
		case <-time.After(c.plan.WriteDelay):
		case <-c.done:
			return 0, ErrInjectedClose
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.dropping {
		// One-way partition: the sender keeps believing the link works.
		return len(p), nil
	}

	// Fast path: no frame-level write triggers armed.
	if c.plan.CloseAtFrag < 0 && c.plan.DuplicateFrag < 0 && c.plan.CorruptFrag < 0 &&
		c.plan.FailWriteGob < 0 && c.plan.DropAfter <= 0 && len(c.plan.CtlFaults) == 0 {
		return c.Conn.Write(p)
	}

	// Scan the chunk, building the (possibly mutated) output and
	// watching for trigger points.
	out := make([]byte, 0, len(p))
	capture := c.plan.DuplicateFrag >= 0
	for i := 0; i < len(p); i++ {
		b := p[i]
		prev := c.wScan.state
		ev := c.wScan.step(b)
		if ev.gobBegin && ev.gobOrd == c.plan.FailWriteGob {
			// Crash before the frame: everything earlier in this chunk goes
			// out, the targeted gob frame never starts. The receiver sees a
			// clean frame boundary then EOF; the sender sees a write error.
			if len(out) > 0 {
				c.Conn.Write(out)
			}
			c.kill("gob-close")
			return i, fmt.Errorf("%w (at outgoing gob frame %d)", ErrInjectedClose, ev.gobOrd)
		}
		if ev.fragHdrDone && ev.ord == c.plan.CloseAtFrag {
			// Crash mid-frame: flush what was already on the wire plus
			// the torn header, then die. The receiver sees a truncated
			// frame; the sender sees a write error.
			out = append(out, b)
			c.Conn.Write(out)
			c.kill("close")
			return i + 1, fmt.Errorf("%w (at outgoing fragment %d)", ErrInjectedClose, ev.ord)
		}
		if ev.inFragBody && ev.ord == c.plan.CorruptFrag && ev.bodyPos == 0 {
			b ^= 0xFF
			c.fire("corrupt")
		}
		if !c.ctlHolding && ev.ctlBegin {
			if fi := c.armedCtlFault(ev.ctlKind, ev.ctlOrd); fi >= 0 {
				c.ctlHolding, c.ctlFaultIx = true, fi
				c.ctlHold = c.ctlHold[:0]
			}
		}
		held := c.ctlHolding
		if held {
			// Withhold the targeted control frame's bytes — across Write
			// call boundaries if the frame is split — and resolve the
			// fault on its final byte.
			c.ctlHold = append(c.ctlHold, b)
			if ev.ctlDone {
				f := c.plan.CtlFaults[c.ctlFaultIx]
				c.ctlFired[c.ctlFaultIx] = true
				c.ctlHolding = false
				switch f.Op {
				case "drop":
					c.fire("ctl-drop")
				case "dup":
					out = append(out, c.ctlHold...)
					out = append(out, c.ctlHold...)
					c.fire("ctl-dup")
				case "delay":
					// Everything before the frame goes out now; the frame
					// (and whatever follows it) waits out the delay, like a
					// queueing stall at this hop.
					if len(out) > 0 {
						n, err := c.Conn.Write(out)
						c.written += int64(n)
						if err != nil {
							return 0, err
						}
						out = out[:0]
					}
					c.fire("ctl-delay")
					select {
					case <-time.After(f.Delay):
					case <-c.done:
						return 0, ErrInjectedClose
					}
					out = append(out, c.ctlHold...)
				default:
					out = append(out, c.ctlHold...)
				}
			}
		}
		if !held {
			out = append(out, b)
		}
		if !held && capture {
			if prev == stType && c.wScan.state == stFragHdr {
				// 'F' type byte just consumed: a frag frame starts here.
				c.frame = c.frame[:0]
				c.inFrame = true
			}
			if c.inFrame {
				c.frame = append(c.frame, b)
				if ev.fragFrameDone {
					c.inFrame = false
					if ev.ord == c.plan.DuplicateFrag {
						out = append(out, c.frame...)
						c.fire("duplicate")
					}
				}
			}
		}
		if c.plan.DropAfter > 0 && c.written+int64(len(out)) >= c.plan.DropAfter {
			// Partition point: deliver the prefix, swallow the rest.
			cut := int(c.plan.DropAfter - c.written)
			if cut < 0 {
				cut = 0
			}
			if cut > len(out) {
				cut = len(out)
			}
			if cut > 0 {
				c.Conn.Write(out[:cut])
			}
			c.written = c.plan.DropAfter
			c.dropping = true
			c.fire("drop")
			return len(p), nil
		}
	}
	n, err := c.Conn.Write(out)
	c.written += int64(n)
	if err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.plan.BlockReads {
		// Inbound partition: nothing ever arrives, but the conn looks
		// open until closed.
		<-c.done
		return 0, ErrInjectedClose
	}
	n, err := c.Conn.Read(p)
	if n > 0 && c.plan.CloseAtReadFrag >= 0 {
		c.rmu.Lock()
		for i := 0; i < n; i++ {
			ev := c.rScan.step(p[i])
			if ev.fragFrameDone && ev.ord == c.plan.CloseAtReadFrag {
				c.rmu.Unlock()
				// Deliver through the end of the fatal fragment, then die:
				// the node processes fragment k and crashes.
				c.kill("read-close")
				return i + 1, nil
			}
		}
		c.rmu.Unlock()
	}
	return n, err
}

// Killed reports whether a close trigger fired on this conn.
func (c *Conn) Killed() bool {
	select {
	case <-c.done:
		return c.killed
	default:
		return false
	}
}

// FlakyDialer returns a dial function whose first failFirst attempts
// fail with an injected error, exercising livenet's capped-backoff dial
// retry. Subsequent attempts dial through normally.
func FlakyDialer(failFirst int, onFault func(kind string)) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	attempts := 0
	return func(addr string) (net.Conn, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= failFirst {
			if onFault != nil {
				onFault("dial-fail")
			}
			return nil, fmt.Errorf("faultconn: injected dial failure %d/%d", n, failFirst)
		}
		return net.DialTimeout("tcp", addr, 5*time.Second)
	}
}

// Rng is splitmix64 — the repo's standard experiment generator, shared
// through internal/rng — so chaos schedules derived from a seed
// reproduce exactly across runs.
type Rng struct{ s rng.SplitMix64 }

// NewRng seeds a generator.
func NewRng(seed uint64) *Rng { return &Rng{s: rng.SplitMix64(seed)} }

// Next returns the next 64 random bits.
func (r *Rng) Next() uint64 { return r.s.Next() }

// Intn returns a deterministic value in [0, n).
func (r *Rng) Intn(n int) int { return r.s.Intn(n) }
