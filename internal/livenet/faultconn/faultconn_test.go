package faultconn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// buildFrag assembles one 'F' frame with an n-byte payload.
func buildFrag(index, n int) []byte {
	buf := make([]byte, 1+fragHdrLen+n)
	buf[0] = 'F'
	binary.BigEndian.PutUint32(buf[1:], 1) // job
	binary.BigEndian.PutUint32(buf[5:], uint32(index))
	buf[9] = 0
	binary.BigEndian.PutUint32(buf[10:], 0xdeadbeef)
	binary.BigEndian.PutUint32(buf[14:], uint32(n))
	for i := 0; i < n; i++ {
		buf[1+fragHdrLen+i] = byte(i)
	}
	return buf
}

func buildGob(n int) []byte {
	buf := make([]byte, 1+4+n)
	buf[0] = 'G'
	binary.BigEndian.PutUint32(buf[1:], uint32(n))
	return buf
}

func buildAck() []byte {
	buf := make([]byte, 1+ackBodyLen)
	buf[0] = 'A'
	return buf
}

// buildCtl assembles one fixed-body typed control frame with a
// non-trivial body pattern.
func buildCtl(kind byte) []byte {
	var n int
	switch kind {
	case 'P':
		n = pingBodyLen
	case 'Q':
		n = pongBodyLen
	case 'S':
		n = strobeBodyLen
	case 'T':
		n = strobeAckBodyLen
	default:
		panic("not a fixed ctl kind")
	}
	buf := make([]byte, 1+n)
	buf[0] = kind
	for i := 1; i < len(buf); i++ {
		buf[i] = byte(0x40 + i)
	}
	return buf
}

// buildVarCtl assembles one varlen control frame ('K'/'R'/'D') with the
// given trailing error string.
func buildVarCtl(kind byte, errStr string) []byte {
	var fixed int
	switch kind {
	case 'K':
		fixed = planAckFixedLen
	case 'R':
		fixed = replanAckFixedLen
	case 'D':
		fixed = peerDownFixedLen
	default:
		panic("not a varlen ctl kind")
	}
	buf := make([]byte, 1+fixed, 1+fixed+len(errStr))
	buf[0] = kind
	binary.BigEndian.PutUint16(buf[1+fixed-2:], uint16(len(errStr)))
	return append(buf, errStr...)
}

// pipeConn returns both ends of an in-memory connection.
func pipeConn(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestScannerCountsFragsAcrossChunking: frag ordinals are found no
// matter how the byte stream is sliced, with gob and ack frames mixed in.
func TestScannerCountsFragsAcrossChunking(t *testing.T) {
	var stream []byte
	stream = append(stream, buildGob(33)...)
	stream = append(stream, buildFrag(0, 100)...)
	stream = append(stream, buildAck()...)
	stream = append(stream, buildFrag(1, 7)...)
	stream = append(stream, buildGob(0)...)
	stream = append(stream, buildFrag(2, 1)...)
	for _, chunk := range []int{1, 3, 17, len(stream)} {
		var s scanner
		frames := 0
		for i := 0; i < len(stream); i += chunk {
			end := i + chunk
			if end > len(stream) {
				end = len(stream)
			}
			for _, b := range stream[i:end] {
				if ev := s.step(b); ev.fragFrameDone {
					frames++
				}
			}
		}
		if frames != 3 {
			t.Fatalf("chunk %d: %d frag frames scanned, want 3", chunk, frames)
		}
	}
}

// TestCloseAtFragTriggersWriteError: writing the k-th frag frame kills
// the conn mid-header and surfaces an injected error to the writer.
func TestCloseAtFragTriggersWriteError(t *testing.T) {
	a, b := pipeConn(t)
	go func() { // drain so net.Pipe writes don't block
		buf := make([]byte, 4096)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	var fired []string
	plan := NewPlan()
	plan.CloseAtFrag = 1
	plan.OnFault = func(k string) { fired = append(fired, k) }
	fc := Wrap(a, plan)
	if _, err := fc.Write(buildFrag(0, 64)); err != nil {
		t.Fatalf("fragment 0 should pass: %v", err)
	}
	_, err := fc.Write(buildFrag(1, 64))
	if !errors.Is(err, ErrInjectedClose) {
		t.Fatalf("fragment 1 write error = %v, want ErrInjectedClose", err)
	}
	if !fc.Killed() {
		t.Fatal("conn not marked killed")
	}
	if len(fired) != 1 || fired[0] != "close" {
		t.Fatalf("OnFault calls = %v, want [close]", fired)
	}
	if _, err := fc.Write([]byte{'A'}); err == nil {
		t.Fatal("write after injected close should fail")
	}
}

// TestCorruptFragFlipsOnePayloadByte: the k-th frag frame arrives with
// exactly its first payload byte inverted; everything else is intact.
func TestCorruptFragFlipsOnePayloadByte(t *testing.T) {
	a, b := pipeConn(t)
	plan := NewPlan()
	plan.CorruptFrag = 1
	fc := Wrap(a, plan)
	sent := append(append([]byte{}, buildFrag(0, 32)...), buildFrag(1, 32)...)
	got := make([]byte, 0, len(sent))
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for len(got) < len(sent) {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done
	frameLen := 1 + fragHdrLen + 32
	if !bytes.Equal(got[:frameLen], sent[:frameLen]) {
		t.Fatal("fragment 0 was modified")
	}
	corruptAt := frameLen + 1 + fragHdrLen // first payload byte of frag 1
	want := append([]byte{}, sent...)
	want[corruptAt] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatal("corruption did not hit exactly the first payload byte of fragment 1")
	}
}

// TestDuplicateFragRetransmitsFrame: the k-th frag frame appears twice
// back-to-back on the wire.
func TestDuplicateFragRetransmitsFrame(t *testing.T) {
	a, b := pipeConn(t)
	plan := NewPlan()
	plan.DuplicateFrag = 0
	fc := Wrap(a, plan)
	frame := buildFrag(0, 16)
	want := append(append([]byte{}, frame...), frame...)
	got := make([]byte, 0, len(want))
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for len(got) < len(want) {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-done
	if !bytes.Equal(got, want) {
		t.Fatal("fragment 0 was not duplicated verbatim")
	}
}

// TestDropAfterPartitionsOutbound: after the byte budget, writes keep
// reporting success but nothing reaches the peer.
func TestDropAfterPartitionsOutbound(t *testing.T) {
	a, b := pipeConn(t)
	plan := NewPlan()
	plan.DropAfter = 10
	fc := Wrap(a, plan)
	got := make([]byte, 0, 10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil || len(got) >= 10 {
				return
			}
		}
	}()
	n, err := fc.Write(make([]byte, 64))
	if err != nil || n != 64 {
		t.Fatalf("partitioned write = (%d, %v), want (64, nil)", n, err)
	}
	if n, err := fc.Write(make([]byte, 64)); err != nil || n != 64 {
		t.Fatalf("post-partition write = (%d, %v), want silent success", n, err)
	}
	<-done
	if len(got) != 10 {
		t.Fatalf("peer received %d bytes, want exactly 10", len(got))
	}
}

// TestCloseAtReadFrag: the reader gets fragment k in full, then the
// conn dies.
func TestCloseAtReadFrag(t *testing.T) {
	a, b := pipeConn(t)
	plan := NewPlan()
	plan.CloseAtReadFrag = 0
	fc := Wrap(b, plan)
	frame := buildFrag(0, 8)
	go func() {
		a.Write(frame)
		a.Write(buildFrag(1, 8))
	}()
	got := make([]byte, 0, len(frame))
	buf := make([]byte, 1024)
	for len(got) < len(frame) {
		n, err := fc.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			t.Fatalf("read before trigger: %v", err)
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("fragment 0 not delivered intact before the kill")
	}
	if _, err := fc.Read(buf); err == nil {
		t.Fatal("read after injected close should fail")
	}
	if !fc.Killed() {
		t.Fatal("conn not marked killed")
	}
}

// TestBlockReadsUnblocksOnClose: an inbound partition hangs reads until
// Close, then errors out.
func TestBlockReadsUnblocksOnClose(t *testing.T) {
	a, b := pipeConn(t)
	_ = a
	plan := NewPlan()
	plan.BlockReads = true
	fc := Wrap(b, plan)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 16))
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInjectedClose) {
			t.Fatalf("blocked read error = %v, want ErrInjectedClose", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked read never released by Close")
	}
}

// TestFlakyDialer: first n attempts fail, later ones are real dials.
func TestFlakyDialer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	faults := 0
	d := FlakyDialer(2, func(string) { faults++ })
	for i := 0; i < 2; i++ {
		if _, err := d(ln.Addr().String()); err == nil {
			t.Fatalf("attempt %d should fail", i+1)
		}
	}
	c, err := d(ln.Addr().String())
	if err != nil {
		t.Fatalf("attempt 3 should connect: %v", err)
	}
	c.Close()
	if faults != 2 {
		t.Fatalf("OnFault fired %d times, want 2", faults)
	}
}

// TestScannerTypedControlFrames: the scanner tracks frag ordinals and
// per-kind control ordinals through a stream mixing every frame kind,
// regardless of chunking — no desync on 'P'/'Q'/'S'/'T'/'K'/'R'/'D'.
func TestScannerTypedControlFrames(t *testing.T) {
	var stream []byte
	stream = append(stream, buildGob(9)...)
	stream = append(stream, buildCtl('P')...)
	stream = append(stream, buildFrag(0, 40)...)
	stream = append(stream, buildCtl('Q')...)
	stream = append(stream, buildAck()...)
	stream = append(stream, buildCtl('S')...)
	stream = append(stream, buildVarCtl('K', "launch: exec format error")...)
	stream = append(stream, buildCtl('T')...)
	stream = append(stream, buildVarCtl('R', "replan refused")...)
	stream = append(stream, buildCtl('P')...)
	stream = append(stream, buildVarCtl('D', "")...)
	stream = append(stream, buildFrag(1, 3)...)
	for _, chunk := range []int{1, 2, 5, 13, len(stream)} {
		var s scanner
		frags := 0
		var ctl [4]int
		for i := 0; i < len(stream); i += chunk {
			end := i + chunk
			if end > len(stream) {
				end = len(stream)
			}
			for _, b := range stream[i:end] {
				ev := s.step(b)
				if ev.fragFrameDone {
					frags++
				}
				if ev.ctlDone {
					ctl[ctlKindIdx(ev.ctlKind)]++
				}
			}
		}
		if frags != 2 {
			t.Fatalf("chunk %d: %d frag frames, want 2", chunk, frags)
		}
		if ctl != [4]int{2, 1, 1, 1} {
			t.Fatalf("chunk %d: ctl frame counts = %v, want [2 1 1 1]", chunk, ctl)
		}
		if s.state != stType {
			t.Fatalf("chunk %d: scanner ended in state %d, want stType", chunk, s.state)
		}
	}
}

// readN drains exactly n bytes from c into the returned slice.
func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	got := make([]byte, 0, n)
	buf := make([]byte, 4096)
	for len(got) < n {
		m, err := c.Read(buf)
		got = append(got, buf[:m]...)
		if err != nil {
			t.Fatalf("read after %d/%d bytes: %v", len(got), n, err)
		}
	}
	return got
}

// TestCtlFaultDropPingByIndex: exactly the k-th outgoing ping vanishes
// — earlier and later pings, and bulk frames, pass untouched — even
// when the doomed frame is split across Write calls.
func TestCtlFaultDropPingByIndex(t *testing.T) {
	a, b := pipeConn(t)
	var fired []string
	plan := NewPlan()
	plan.CtlFaults = []CtlFault{{Kind: 'P', Index: 1, Op: "drop"}}
	plan.OnFault = func(k string) { fired = append(fired, k) }
	fc := Wrap(a, plan)
	ping := buildCtl('P')
	frag := buildFrag(0, 24)
	var want []byte
	want = append(want, ping...) // ping 0 passes
	want = append(want, frag...) // ping 1 dropped
	want = append(want, ping...) // ping 2 passes
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, len(want)) }()
	if _, err := fc.Write(ping); err != nil {
		t.Fatalf("ping 0: %v", err)
	}
	// Split the doomed ping across two writes: the hold must span them.
	if _, err := fc.Write(ping[:5]); err != nil {
		t.Fatalf("ping 1 head: %v", err)
	}
	if _, err := fc.Write(append(append([]byte{}, ping[5:]...), frag...)); err != nil {
		t.Fatalf("ping 1 tail + frag: %v", err)
	}
	if _, err := fc.Write(ping); err != nil {
		t.Fatalf("ping 2: %v", err)
	}
	if got := <-done; !bytes.Equal(got, want) {
		t.Fatal("stream mismatch: drop did not remove exactly ping 1")
	}
	if len(fired) != 1 || fired[0] != "ctl-drop" {
		t.Fatalf("OnFault calls = %v, want [ctl-drop]", fired)
	}
}

// TestCtlFaultDupStrobe: the k-th strobe appears twice back-to-back;
// a pong sharing the conn is untouched (per-kind ordinals).
func TestCtlFaultDupStrobe(t *testing.T) {
	a, b := pipeConn(t)
	plan := NewPlan()
	plan.CtlFaults = []CtlFault{{Kind: 'S', Index: 1, Op: "dup"}}
	fc := Wrap(a, plan)
	strobe, pong := buildCtl('S'), buildCtl('Q')
	var sent, want []byte
	sent = append(sent, strobe...)
	sent = append(sent, pong...)
	sent = append(sent, strobe...)
	want = append(want, strobe...)
	want = append(want, pong...)
	want = append(want, strobe...)
	want = append(want, strobe...) // the duplicate
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, len(want)) }()
	if _, err := fc.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := <-done; !bytes.Equal(got, want) {
		t.Fatal("strobe 1 was not duplicated verbatim (or another frame was touched)")
	}
}

// TestCtlFaultDelayPong: the k-th pong is held back for the configured
// delay while the bytes before it flush immediately; the stream arrives
// intact and in order.
func TestCtlFaultDelayPong(t *testing.T) {
	a, b := pipeConn(t)
	const delay = 60 * time.Millisecond
	plan := NewPlan()
	plan.CtlFaults = []CtlFault{{Kind: 'Q', Index: 0, Op: "delay", Delay: delay}}
	fc := Wrap(a, plan)
	ping, pong := buildCtl('P'), buildCtl('Q')
	sent := append(append([]byte{}, ping...), pong...)
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, len(sent)) }()
	t0 := time.Now()
	if _, err := fc.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	if el := time.Since(t0); el < delay {
		t.Fatalf("write returned after %v, want >= %v (delay not applied)", el, delay)
	}
	if got := <-done; !bytes.Equal(got, sent) {
		t.Fatal("delayed stream corrupted or reordered")
	}
}

// TestRngDeterminism: same seed, same schedule.
func TestRngDeterminism(t *testing.T) {
	r1, r2 := NewRng(42), NewRng(42)
	for i := 0; i < 100; i++ {
		if r1.Next() != r2.Next() {
			t.Fatal("splitmix64 not deterministic")
		}
	}
	if NewRng(1).Next() == NewRng(2).Next() {
		t.Fatal("distinct seeds collide on first draw")
	}
}
