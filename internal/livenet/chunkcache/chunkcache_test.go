package chunkcache

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestHash64Vectors pins the hand-rolled XXH64 against the reference
// implementation's published seed-0 vectors, covering every tail path
// (empty, <4, <8, <32, and the 32-byte stripe loop).
func TestHash64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0x02a2e85470d6fd96},
	}
	for _, tc := range cases {
		if got := Hash64([]byte(tc.in)); got != tc.want {
			t.Errorf("Hash64(%q) = %#016x, want %#016x", tc.in, got, tc.want)
		}
	}
}

func put(c *Cache, b []byte) (uint64, uint32) {
	h, crc := Hash64(b), crc32.ChecksumIEEE(b)
	c.Put(h, crc, b)
	return h, crc
}

// chunk makes a distinguishable test chunk of n bytes.
func chunk(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag + byte(i*7)
	}
	return b
}

// TestLRUDeterministicEviction pins the eviction order under a size
// cap: strictly least-recently-used first, with Get and re-Put both
// refreshing recency, so the same access sequence always evicts the
// same entries.
func TestLRUDeterministicEviction(t *testing.T) {
	c, err := New(3*64, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := chunk(1, 64), chunk(2, 64), chunk(3, 64)
	ha, _ := put(c, a)
	hb, crcB := put(c, b)
	hd, _ := put(c, d)
	if c.Len() != 3 || c.Size() != 3*64 {
		t.Fatalf("cache holds %d entries / %d bytes, want 3 / 192", c.Len(), c.Size())
	}
	// Touch a: order (front to back) becomes a, d, b.
	dst := make([]byte, 64)
	if !c.Get(ha, crc32.ChecksumIEEE(a), 64, dst) {
		t.Fatal("expected hit on a")
	}
	if got := c.lruHashes(); !reflect.DeepEqual(got, []uint64{ha, hd, hb}) {
		t.Fatalf("LRU order after Get(a) = %x, want [a d b]", got)
	}
	// Adding e must evict exactly b (the back).
	he, _ := put(c, chunk(4, 64))
	if got := c.lruHashes(); !reflect.DeepEqual(got, []uint64{he, ha, hd}) {
		t.Fatalf("LRU order after eviction = %x, want [e a d]", got)
	}
	if c.Get(hb, crcB, 64, dst) {
		t.Fatal("evicted entry must miss")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// A chunk bigger than the whole budget is refused, not thrashed in.
	c.Put(1, 2, make([]byte, 4*64))
	if c.Len() != 3 {
		t.Fatal("oversized chunk must not be stored")
	}
	// A multi-entry squeeze evicts from the back until it fits: adding a
	// 128-byte chunk evicts the two oldest (d then a).
	big := chunk(5, 128)
	hbig, _ := put(c, big)
	if got := c.lruHashes(); !reflect.DeepEqual(got, []uint64{hbig, he}) {
		t.Fatalf("LRU order after squeeze = %x, want [big e]", got)
	}
}

// TestNoAliasing: same-length different-byte inputs — the shape a hash
// collision would take — must never serve one chunk for the other,
// because Get re-verifies content against the full key.
func TestNoAliasing(t *testing.T) {
	c, err := New(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	a, b := chunk(10, 256), chunk(20, 256)
	ha, crcA := put(c, a)
	hb, crcB := put(c, b)
	if ha == hb {
		t.Fatal("test chunks accidentally hash-equal") // astronomically unlikely
	}
	dst := make([]byte, 256)
	// Ask for a's content under b's hash (simulating a collision where
	// the lookup key disagrees with the stored bytes): at worst a miss,
	// never b's bytes presented as a's.
	if c.Get(hb, crcA, 256, dst) {
		t.Fatal("mismatched hash/CRC pair must miss")
	}
	if !c.Get(ha, crcA, 256, dst) || string(dst) != string(a) {
		t.Fatal("a must round-trip")
	}
	if !c.Get(hb, crcB, 256, dst) || string(dst) != string(b) {
		t.Fatal("b must round-trip")
	}
	// Force the alias shape directly: corrupt a's stored bytes so the
	// entry's key no longer matches its data (same length, different
	// bytes). Get must detect the mismatch, evict, and miss.
	if !c.Poison(ha, crcA, 256) {
		t.Fatal("poison failed")
	}
	if c.Get(ha, crcA, 256, dst) {
		t.Fatal("poisoned entry must miss")
	}
	if c.Get(ha, crcA, 256, dst) {
		t.Fatal("poisoned entry must have been evicted")
	}
}

// TestUse pins the no-copy probe: a memory hit is trusted by key (the
// bytes were verified against it at Put) and charges hit + bytes-saved
// stats; an absent key charges a miss; a poisoned disk entry is
// re-verified on every Use, evicted, and degrades to a miss.
func TestUse(t *testing.T) {
	c, err := New(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	a := chunk(3, 256)
	ha, crcA := put(c, a)
	if !c.Use(ha, crcA, 256) {
		t.Fatal("memory entry must hit")
	}
	if c.Use(ha, crcA, 128) {
		t.Fatal("wrong length must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 256 {
		t.Fatalf("stats after hit+miss: %+v", st)
	}

	dir := t.TempDir()
	dc, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	hb, crcB := put(dc, a)
	if !dc.Use(hb, crcB, 256) {
		t.Fatal("disk entry must hit")
	}
	if !dc.Poison(hb, crcB, 256) {
		t.Fatal("poison failed")
	}
	if dc.Use(hb, crcB, 256) {
		t.Fatal("poisoned disk entry must miss: Use re-verifies disk bytes")
	}
	if dc.Len() != 0 {
		t.Fatal("poisoned disk entry must be evicted")
	}
}

// TestCorruptDiskEntryFallsBack poisons and truncates disk-backed
// entries and asserts Get/Contains degrade to misses with the entry
// evicted — the cache-level half of the corrupt-cache satellite.
func TestCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	a := chunk(7, 512)
	ha, crcA := put(c, a)
	dst := make([]byte, 512)
	if !c.Get(ha, crcA, 512, dst) || string(dst) != string(a) {
		t.Fatal("disk entry must round-trip")
	}
	if !c.Poison(ha, crcA, 512) {
		t.Fatal("poison failed")
	}
	if c.Contains(ha, crcA, 512) {
		t.Fatal("poisoned disk entry must not be advertised")
	}
	if c.Get(ha, crcA, 512, dst) {
		t.Fatal("poisoned disk entry must miss")
	}
	// Truncation: re-insert, then truncate the backing file.
	ha, crcA = put(c, a)
	path := filepath.Join(dir, fmt.Sprintf("%016x-%08x-%d.chunk", ha, crcA, len(a)))
	if err := writeFileTrunc(path, a[:100]); err != nil {
		t.Fatal(err)
	}
	if c.Get(ha, crcA, 512, dst) {
		t.Fatal("truncated disk entry must miss")
	}
	if c.Len() != 0 {
		t.Fatalf("bad entries must be evicted, %d remain", c.Len())
	}
}

func writeFileTrunc(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// TestConcurrentReadersWriters hammers the cache from parallel
// goroutines (run under -race in CI): interleaved Put/Get/Contains over
// an overlapping key set with eviction pressure.
func TestConcurrentReadersWriters(t *testing.T) {
	c, err := New(16*128, "")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	chunks := make([][]byte, 32)
	hashes := make([]uint64, 32)
	crcs := make([]uint32, 32)
	for i := range chunks {
		chunks[i] = chunk(byte(i), 128)
		hashes[i] = Hash64(chunks[i])
		crcs[i] = crc32.ChecksumIEEE(chunks[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, 128)
			for i := 0; i < 500; i++ {
				k := (i*7 + w*13) % len(chunks)
				switch i % 3 {
				case 0:
					c.Put(hashes[k], crcs[k], chunks[k])
				case 1:
					if c.Get(hashes[k], crcs[k], 128, dst) && string(dst) != string(chunks[k]) {
						t.Error("hit returned wrong bytes")
						return
					}
				case 2:
					c.Contains(hashes[k], crcs[k], 128)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Size() > 16*128 {
		t.Fatalf("size %d exceeds budget %d", c.Size(), 16*128)
	}
}

// TestZeroBudgetDisables: a zero-byte cache stores nothing and misses
// everything — the "caching off" configuration shares the code path.
func TestZeroBudgetDisables(t *testing.T) {
	c, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	a := chunk(1, 64)
	ha, crcA := put(c, a)
	if c.Len() != 0 {
		t.Fatal("zero-budget cache must not store")
	}
	if c.Get(ha, crcA, 64, make([]byte, 64)) {
		t.Fatal("zero-budget cache must miss")
	}
}
