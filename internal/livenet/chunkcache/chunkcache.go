// Package chunkcache is a bounded, content-addressed store for binary
// chunks, the substrate of livenet's delta-transfer path. Entries are
// keyed by (xxhash64, CRC-32, length) — the fast non-crypto hash does
// the addressing, the CRC (already computed on the wire path) is kept
// as an independent check so a 64-bit collision alone cannot alias two
// chunks, and the length closes the remaining gap for equal-hash
// equal-CRC inputs of different sizes.
//
// The cache is deliberately paranoid on the read side: Get re-verifies
// the stored bytes against the key before handing them out. A corrupt,
// truncated, or aliased entry — bit rot on the disk backing, a torn
// write, a hash collision — is evicted and reported as a miss, so the
// caller silently falls back to the wire. A cache can make a transfer
// cheaper; it must never be able to make an image wrong.
//
// Eviction is strict LRU under a byte budget, so the eviction order for
// a given access sequence is deterministic — a property the tests pin.
package chunkcache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of the cache's counters. BytesSaved is the total
// payload served from cache (bytes that did not cross the wire).
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	BytesSaved int64
}

type key struct {
	hash uint64
	crc  uint32
	n    int
}

type entry struct {
	key  key
	data []byte // in-memory copy; nil when the entry lives on disk
	path string // disk backing file; "" when in-memory
}

// Cache is a bounded LRU chunk store, safe for concurrent use. A zero
// byte budget disables storage entirely (every Get is a miss), which
// lets callers keep one code path whether caching is on or off.
type Cache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	dir     string
	ll      *list.List // front = most recently used
	entries map[key]*list.Element

	hits, misses, evictions, saved atomic.Int64
}

// New builds a cache holding at most maxBytes of chunk payload. If dir
// is non-empty, entries are spilled to one file each under dir (created
// if needed) instead of held in memory; the byte budget applies either
// way.
func New(maxBytes int64, dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("chunkcache: %w", err)
		}
	}
	return &Cache{
		max:     maxBytes,
		dir:     dir,
		ll:      list.New(),
		entries: make(map[key]*list.Element),
	}, nil
}

// Hash64 is XXH64 (seed 0): the fast non-crypto content hash that keys
// the cache and the transfer manifests. Hand-rolled so the wire format
// has no dependency beyond the standard library, and deterministic
// across processes and runs (unlike hash/maphash).
func Hash64(b []byte) uint64 {
	const (
		prime1 uint64 = 11400714785074694791
		prime2 uint64 = 14029467366897019727
		prime3 uint64 = 1609587929392839161
		prime4 uint64 = 9650029242287828579
		prime5 uint64 = 2870177450012600261
	)
	round := func(acc, in uint64) uint64 {
		return bits.RotateLeft64(acc+in*prime2, 31) * prime1
	}
	merge := func(acc, v uint64) uint64 {
		return (acc^round(0, v))*prime1 + prime4
	}
	n := uint64(len(b))
	var h uint64
	if len(b) >= 32 {
		v1 := prime1
		v1 += prime2
		v2 := prime2
		v3 := uint64(0)
		v4 := ^(prime1 - 1) // two's-complement -prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = merge(h, v1)
		h = merge(h, v2)
		h = merge(h, v3)
		h = merge(h, v4)
	} else {
		h = prime5
	}
	h += n
	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Put stores a copy of data under its content key. A chunk larger than
// the whole budget is not stored; otherwise colder entries are evicted
// (back of the LRU first) until it fits. Re-putting a present key just
// refreshes its recency.
func (c *Cache) Put(hash uint64, crc uint32, data []byte) {
	n := int64(len(data))
	if n == 0 || n > c.max {
		return
	}
	k := key{hash: hash, crc: crc, n: len(data)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.size+n > c.max {
		c.evictOldestLocked()
	}
	e := &entry{key: k}
	if c.dir != "" {
		path := filepath.Join(c.dir, fmt.Sprintf("%016x-%08x-%d.chunk", hash, crc, len(data)))
		tmp, err := os.CreateTemp(c.dir, ".chunk-*")
		if err != nil {
			return
		}
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			os.Remove(tmp.Name())
			return
		}
		e.path = path
	} else {
		e.data = append([]byte(nil), data...)
	}
	c.entries[k] = c.ll.PushFront(e)
	c.size += n
}

// Get looks up a chunk by content key and, on a hit, copies its bytes
// into dst (which must be at least n long) after re-verifying them
// against the key. Any mismatch — wrong hash, wrong CRC, short disk
// read — evicts the entry and returns a miss, so corruption degrades to
// a wire fetch, never into the image.
func (c *Cache) Get(hash uint64, crc uint32, n int, dst []byte) bool {
	k := key{hash: hash, crc: crc, n: n}
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	e := el.Value.(*entry)
	var data []byte
	if e.path != "" {
		// Read outside the view of other writers is fine: the file is
		// immutable once renamed into place. Hold the lock anyway — the
		// chunks are small and eviction racing the read is worse.
		b, err := os.ReadFile(e.path)
		if err != nil || len(b) != n {
			c.removeLocked(el)
			c.mu.Unlock()
			c.misses.Add(1)
			return false
		}
		data = b
	} else {
		data = e.data
	}
	if Hash64(data) != hash || crc32.ChecksumIEEE(data) != crc {
		c.removeLocked(el)
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()
	copy(dst[:n], data)
	c.hits.Add(1)
	c.saved.Add(int64(n))
	return true
}

// Use reports whether a chunk can be served from the cache, charging a
// hit (and its bytes to the saved counter) without copying the bytes
// out — the probe behind memory-image delta assembly, where the image
// is never materialized and only the chunk's presence matters.
//
// Memory-backed entries are trusted by key alone: the entry's bytes
// matched (hash, crc, length) when Put copied them into the private
// heap, which is exactly the acceptance check a wire chunk gets, so a
// key match here is as strong as a wire fetch. Disk-backed entries can
// rot or truncate after Put, so they are re-read and re-verified like
// Get; any mismatch evicts the entry and degrades to a miss.
func (c *Cache) Use(hash uint64, crc uint32, n int) bool {
	k := key{hash: hash, crc: crc, n: n}
	c.mu.Lock()
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	e := el.Value.(*entry)
	if e.path != "" {
		b, err := os.ReadFile(e.path)
		if err != nil || len(b) != n || Hash64(b) != hash || crc32.ChecksumIEEE(b) != crc {
			c.removeLocked(el)
			c.mu.Unlock()
			c.misses.Add(1)
			return false
		}
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	c.saved.Add(int64(n))
	return true
}

// Contains reports whether a chunk is present and verifiable without
// copying it out — the probe behind HAVE bitmaps. It verifies just like
// Get (a poisoned entry must not be advertised up the tree) but charges
// no hit/miss, since no transfer decision has been made yet.
func (c *Cache) Contains(hash uint64, crc uint32, n int) bool {
	k := key{hash: hash, crc: crc, n: n}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	data := e.data
	if e.path != "" {
		b, err := os.ReadFile(e.path)
		if err != nil || len(b) != n {
			c.removeLocked(el)
			return false
		}
		data = b
	}
	if Hash64(data) != hash || crc32.ChecksumIEEE(data) != crc {
		c.removeLocked(el)
		return false
	}
	return true
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		BytesSaved: c.saved.Load(),
	}
}

// Len returns the number of cached chunks; Size the payload bytes held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.evictions.Add(1)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.size -= int64(e.key.n)
	if e.path != "" {
		os.Remove(e.path)
	}
}

// Poison corrupts the stored bytes of a present entry in place (test
// hook for the corruption-fallback path). It reports whether the entry
// was found.
func (c *Cache) Poison(hash uint64, crc uint32, n int) bool {
	k := key{hash: hash, crc: crc, n: n}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	if e.path != "" {
		b, err := os.ReadFile(e.path)
		if err != nil || len(b) == 0 {
			return false
		}
		b[len(b)/2] ^= 0xff
		return os.WriteFile(e.path, b, 0o644) == nil
	}
	if len(e.data) == 0 {
		return false
	}
	e.data[len(e.data)/2] ^= 0xff
	return true
}

// lruHashes reports the LRU order from front (most recent) to back as
// hash keys — test hook for pinning deterministic eviction.
func (c *Cache) lruHashes() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key.hash)
	}
	return out
}
