package livenet

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet/faultconn"
)

// Restart-and-rejoin chaos: where chaos_test.go proves the cluster
// survives losing a component, this file proves it heals back to full
// strength — a convicted NM rejoins and is trusted again after
// probation, a crashed MM resumes its admitted backlog from the
// journal, and a dead federation leaf is re-absorbed by the root's
// resurrection prober.

// gatedNMConfig arms every conn a node accepts or dials with the same
// process-level Gate, so Pause/Heal/Kill act on the whole NM like
// signals on a dæmon.
func gatedNMConfig(gate *faultconn.Gate) NMConfig {
	gatedPlan := func() faultconn.Plan {
		plan := faultconn.NewPlan()
		plan.Gate = gate
		return plan
	}
	return NMConfig{
		WrapConn: func(c net.Conn) net.Conn {
			return faultconn.Wrap(c, gatedPlan())
		},
		Dialer: func(addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return faultconn.Wrap(c, gatedPlan()), nil
		},
	}
}

// waitStatus polls the MM until cond(status) holds, failing after the
// deadline.
func waitStatus(t *testing.T, mm *MM, what string, timeout time.Duration, cond func(StatusRep) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := mm.status()
		if cond(st) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (status %+v)", what, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseWithQueuedAdmissions: jobs parked in the admission queue
// when the MM shuts down must fail promptly with the named ErrMMClosed
// — never hang on the condition variable, never return a misleading
// placement error.
func TestCloseWithQueuedAdmissions(t *testing.T) {
	cfg := chaosMMConfig()
	// Two gang rows, both held by long sleeps: later submissions park in
	// the admission queue on row exhaustion.
	cfg.GangQuantum = 10 * time.Millisecond
	cfg.MPL = 2
	mm, _, _ := chaosCluster(t, 2, cfg, nil)
	hogErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := mm.RunJob(JobSpec{
				Name: "hog", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "sleep", Duration: 10 * time.Second},
			})
			hogErrs <- err
		}()
	}
	waitStatus(t, mm, "both gang rows occupied", 5*time.Second,
		func(st StatusRep) bool { return st.Jobs == 2 })

	const queued = 4
	qErrs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, err := mm.RunJob(JobSpec{
				Name: "parked", BinaryBytes: 64 << 10, Nodes: 2, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
			qErrs <- err
		}()
	}
	waitStatus(t, mm, "submissions parked in the admission queue", 5*time.Second,
		func(st StatusRep) bool { return st.Queued == queued })

	mm.Close()
	for i := 0; i < queued; i++ {
		select {
		case err := <-qErrs:
			if !errors.Is(err, ErrMMClosed) {
				t.Fatalf("queued waiter got %v, want ErrMMClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued admission waiter %d still hung after Close", i)
		}
	}
}

// TestChaosDetectorFlapNoConviction: a node that stalls for a bit over
// one heartbeat period — a GC pause, a scheduler hiccup — and then
// recovers must never be convicted. One missed round is an absence
// streak, not a failure; conviction needs two consecutive misses plus a
// failed directed probe, and this node answers its probe.
func TestChaosDetectorFlapNoConviction(t *testing.T) {
	const n, victim = 3, 2
	const period = 200 * time.Millisecond
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			gate := faultconn.NewGate()
			mm, _, _ := chaosCluster(t, n, chaosMMConfig(), func(node int) NMConfig {
				if node != victim {
					return NMConfig{}
				}
				return gatedNMConfig(gate)
			})
			fails := make(chan int, n)
			stop := mm.StartHeartbeat(period, func(node int) { fails <- node })
			defer stop()
			time.Sleep(4 * period) // settle: every node vouched for
			select {
			case node := <-fails:
				t.Fatalf("false positive on node %d before any fault", node)
			default:
			}
			// Stall the whole node for 1.0–1.33 periods, the seed picking
			// where in that band. Its queued pongs flush on heal.
			pause := period + time.Duration(faultconn.NewRng(seed).Intn(int(period)/3))
			gate.Pause()
			time.Sleep(pause)
			gate.Heal()
			time.Sleep(6 * period)
			select {
			case node := <-fails:
				t.Fatalf("node %d convicted for a %v stall (period %v)", node, pause, period)
			default:
			}
			if !mm.NodeEligible(victim) {
				t.Fatal("flapped node lost placement eligibility without a conviction")
			}
		})
	}
}

// TestChaosNMRejoinFullStrength is the healing half of the kill tests:
// an NM is hard-killed mid-transfer and convicted, then restarts with
// the Rejoin handshake and its persisted chunk cache. It must re-enter
// under the configured probation, earn back placement eligibility by
// answering heartbeats, and the next full-cluster launch must use it —
// completing with zero failures, a byte-identical image everywhere, and
// its warm cache honored (the relaunch streams less than the image).
func TestChaosNMRejoinFullStrength(t *testing.T) {
	const n = 5
	const period = 250 * time.Millisecond
	const probation = 2
	victim := n - 1 // a distribution-tree leaf
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := chaosMMConfig()
			cfg.RejoinProbation = probation
			killAt := 8 + faultconn.NewRng(seed).Intn(16)
			cacheDir := t.TempDir() // the victim's cache survives its restart
			var victimNM atomic.Pointer[NM]
			mm, nms, _ := chaosCluster(t, n, cfg, func(node int) NMConfig {
				c := NMConfig{CacheBytes: 8 << 20}
				if node != victim {
					return c
				}
				c.CacheDir = cacheDir
				c.WrapConn = func(nc net.Conn) net.Conn {
					plan := faultconn.NewPlan()
					plan.CloseAtReadFrag = killAt
					plan.OnFault = func(string) {
						go func() {
							if nm := victimNM.Load(); nm != nil {
								nm.Close()
							}
						}()
					}
					return faultconn.Wrap(nc, plan)
				}
				return c
			})
			victimNM.Store(nms[victim])
			fails := make(chan int, n)
			stop := mm.StartHeartbeat(period, func(node int) { fails <- node })
			defer stop()
			time.Sleep(3 * period)

			spec := JobSpec{
				Name: "heal", BinaryBytes: chaosBinary, Nodes: n, PEsPerNode: 1,
				ImageSeed: 0xBEEF, Program: ProgramSpec{Kind: "exit"},
			}
			rep1, err := SubmitJob(mm.Addr(), spec)
			if err != nil {
				t.Fatalf("launch did not recover from killing node %d at frag %d: %v", victim, killAt, err)
			}
			if len(rep1.Failed) != 1 || rep1.Failed[0] != victim {
				t.Fatalf("report names failed nodes %v, want [%d]", rep1.Failed, victim)
			}

			// The detector convicts the dead node; until it rejoins it is
			// out of the placement rotation.
			select {
			case node := <-fails:
				if node != victim {
					t.Fatalf("healthy node %d convicted", node)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("killed node never convicted")
			}
			if mm.NodeEligible(victim) {
				t.Fatal("convicted node still placement-eligible")
			}

			// Restart: same node ID, same cache dir, Rejoin handshake.
			nm2, err := NewNMConfig(mm.Addr(), victim, 4, NMConfig{
				Rejoin: true, CacheBytes: 8 << 20, CacheDir: cacheDir,
			})
			if err != nil {
				t.Fatalf("rejoin failed: %v", err)
			}
			t.Cleanup(nm2.Close)
			if nm2.Probation() != probation {
				t.Fatalf("rejoin ack granted probation %d, want %d", nm2.Probation(), probation)
			}
			deadline := time.Now().Add(10*period + 5*time.Second)
			for !mm.NodeEligible(victim) {
				if time.Now().After(deadline) {
					t.Fatalf("rejoined node never cleared probation (%d rounds left)",
						mm.ProbationLeft(victim))
				}
				time.Sleep(20 * time.Millisecond)
			}

			// Full strength: the n-node relaunch can only succeed if the
			// rejoined node is back in the rotation.
			rep2, err := SubmitJob(mm.Addr(), spec)
			if err != nil {
				t.Fatalf("full-cluster relaunch after rejoin failed: %v", err)
			}
			if len(rep2.Failed) != 0 {
				t.Fatalf("relaunch reported failed nodes %v on a healed cluster", rep2.Failed)
			}
			if rep2.BytesSaved <= 0 {
				t.Fatalf("relaunch of the same image saved no bytes — caches (incl. the rejoined node's) ignored: %+v", rep2)
			}
			frags := chaosBinary / cfg.FragBytes
			assertSurvivorImages(t, nms, victim, rep2.JobID, frags)
			d, ok := nm2.ImageDigest(rep2.JobID)
			if !ok || d.Frags != frags {
				t.Fatalf("rejoined node holds no complete image for job %d (%+v, ok=%v)", rep2.JobID, d, ok)
			}
			if ref, _ := nms[0].ImageDigest(rep2.JobID); d != ref {
				t.Fatalf("rejoined node's image %+v differs from survivor's %+v", d, ref)
			}
			if nm2.Launches() == 0 {
				t.Fatal("rejoined node launched no processes")
			}
			// Conviction of the old incarnation must not have leaked into
			// the new one.
			select {
			case node := <-fails:
				if node == victim {
					t.Fatal("rejoined node re-convicted without a new failure")
				}
				t.Fatalf("healthy node %d convicted", node)
			default:
			}
		})
	}
}

// TestChaosMMRestartJournalReplay: an MM with a durable journal goes
// down with two jobs mid-flight and two more parked in the admission
// queue. The queued waiters fail promptly with ErrMMClosed; a new MM on
// the same journal fails the in-flight jobs durably, recovers exactly
// the two admitted-but-unplaced specs, and — once NMs register — reruns
// them to completion. A second restart must not re-run them again.
func TestChaosMMRestartJournalReplay(t *testing.T) {
	jdir := t.TempDir()
	cfg := chaosMMConfig()
	cfg.JournalDir = jdir
	cfg.GangQuantum = 10 * time.Millisecond
	cfg.MPL = 2
	mm, _, shutdown := chaosCluster(t, 3, cfg, nil)
	if mm.JournalPath() == "" {
		t.Fatal("journal not open")
	}

	hogErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := mm.RunJob(JobSpec{
				Name: "hog", BinaryBytes: 64 << 10, Nodes: 3, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "sleep", Duration: 10 * time.Second},
			})
			hogErrs <- err
		}()
	}
	waitStatus(t, mm, "both gang rows occupied", 5*time.Second,
		func(st StatusRep) bool { return st.Jobs == 2 })

	qErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := mm.RunJob(JobSpec{
				Name: fmt.Sprintf("recover-%d", i), BinaryBytes: 128 << 10, Nodes: 3,
				PEsPerNode: 1, ImageSeed: 0xFEED, Program: ProgramSpec{Kind: "exit"},
			})
			qErrs <- err
		}(i)
	}
	waitStatus(t, mm, "two jobs parked in the admission queue", 5*time.Second,
		func(st StatusRep) bool { return st.Queued == 2 })

	shutdown()
	for i := 0; i < 2; i++ {
		select {
		case err := <-qErrs:
			if !errors.Is(err, ErrMMClosed) {
				t.Fatalf("queued waiter got %v, want ErrMMClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued admission waiter hung across shutdown")
		}
	}

	// Restart on the same journal. The hogs were placed (in flight), so
	// they are failed durably; the parked pair is the recovery backlog.
	mm2, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm2.Close)
	rec := mm2.RecoveredJobs()
	if len(rec) != 2 {
		t.Fatalf("restart recovered %d jobs, want 2 (%+v)", len(rec), rec)
	}
	names := map[string]bool{}
	for _, rj := range rec {
		names[rj.Spec.Name] = true
	}
	if !names["recover-0"] || !names["recover-1"] {
		t.Fatalf("recovered the wrong specs: %v", names)
	}

	// The backlog waits for membership; give the restarted cluster NMs.
	for i := 0; i < 3; i++ {
		nm, err := NewNMConfig(mm2.Addr(), i, 4, NMConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nm.Close)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		rec = mm2.RecoveredJobs()
		done := 0
		for _, rj := range rec {
			if rj.Done {
				done++
				if rj.Err != nil {
					t.Fatalf("recovered job %q failed its rerun: %v", rj.Spec.Name, rj.Err)
				}
				if rj.Report.JobID == 0 || rj.Report.Total <= 0 {
					t.Fatalf("recovered job %q has a bogus report: %+v", rj.Spec.Name, rj.Report)
				}
			}
		}
		if done == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered jobs never completed (%d/2 done)", done)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Idempotence: the reruns retired the original IDs, so yet another
	// restart finds nothing to recover.
	mm2.Close()
	mm3, err := NewMM("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mm3.Close)
	if rec := mm3.RecoveredJobs(); len(rec) != 0 {
		t.Fatalf("second restart re-recovered %d jobs, want 0: %+v", len(rec), rec)
	}
}

// TestChaosFederationResurrection: a federation leaf MM dies
// mid-transfer (the root re-admits the job's share to the survivor and
// convicts the partition), then the leaf restarts from its journal on a
// fresh port. After Reabsorb hands the root the new incarnation, the
// resurrection prober verifies it over the wire and marks the partition
// live again — and placement flows back to it.
func TestChaosFederationResurrection(t *testing.T) {
	const perPart = 3
	cfg := chaosMMConfig()
	jdir := t.TempDir()
	seed := chaosSeeds[0]
	killAt := 8 + faultconn.NewRng(seed).Intn(16)

	newLeaf := func(p int, journal string) *MM {
		c := cfg
		c.JobBase = fedJobBase(p)
		c.JournalDir = journal
		mm, err := NewMM("127.0.0.1:0", c)
		if err != nil {
			t.Fatal(err)
		}
		return mm
	}
	startNMs := func(mm *MM, base int, nmCfg func(node int) NMConfig) []*NM {
		var out []*NM
		for i := 0; i < perPart; i++ {
			var c NMConfig
			if nmCfg != nil {
				c = nmCfg(base + i)
			}
			nm, err := NewNMConfig(mm.Addr(), base+i, 4, c)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(nm.Close)
			out = append(out, nm)
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(mm.NMs()) < perPart {
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d NMs registered on leaf %s", len(mm.NMs()), perPart, mm.Addr())
			}
			time.Sleep(5 * time.Millisecond)
		}
		return out
	}

	var victimMM atomic.Pointer[MM]
	mm0 := newLeaf(0, jdir)
	t.Cleanup(mm0.Close)
	victimMM.Store(mm0)
	mm1 := newLeaf(1, "")
	t.Cleanup(mm1.Close)
	nms0 := startNMs(mm0, 0, func(node int) NMConfig {
		if node != 0 { // partition 0's direct MM child carries the stream
			return NMConfig{}
		}
		return NMConfig{WrapConn: func(c net.Conn) net.Conn {
			plan := faultconn.NewPlan()
			plan.CloseAtReadFrag = killAt
			plan.OnFault = func(string) {
				go func() {
					if mm := victimMM.Load(); mm != nil {
						mm.Kill()
					}
				}()
			}
			return faultconn.Wrap(c, plan)
		}}
	})
	startNMs(mm1, perPart, nil)
	fed, err := NewFederation("127.0.0.1:0", FedConfig{ProbeInterval: 50 * time.Millisecond}, []*MM{mm0, mm1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Close)

	// Free placement on an idle federation picks partition 0 — the one
	// armed to die. The share is re-admitted to partition 1.
	rep, err := fed.RunJob(JobSpec{
		Name: "leafdeath", BinaryBytes: chaosBinary, Nodes: perPart, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("job did not survive leaf death at frag %d: %v", killAt, err)
	}
	if rep.Readmits != 1 {
		t.Fatalf("want one re-admission, got %d (%s)", rep.Readmits, rep.Timeline)
	}
	if live := fed.LivePartitions(); len(live) != 1 || live[0] != 1 {
		t.Fatalf("partition 0 should be convicted, live=%v", live)
	}

	// Restart the dead leaf from its journal. Its in-flight share was
	// failed durably on replay (the root already re-ran it elsewhere),
	// so the recovery backlog is empty.
	for _, nm := range nms0 {
		nm.Close()
	}
	mm0b := newLeaf(0, jdir)
	t.Cleanup(mm0b.Close)
	if rec := mm0b.RecoveredJobs(); len(rec) != 0 {
		t.Fatalf("restarted leaf re-recovered %d in-flight jobs, want 0: %+v", len(rec), rec)
	}
	startNMs(mm0b, 0, nil)
	if err := fed.Reabsorb(mm0b); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(fed.LivePartitions()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never resurrected partition 0, live=%v", fed.LivePartitions())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fed.Resurrections() != 1 {
		t.Fatalf("resurrections=%d, want 1", fed.Resurrections())
	}

	// Placement rebalances toward the returned partition: it carries no
	// load, so the next free placement lands there...
	rep2, err := SubmitJob(fed.Addr(), JobSpec{
		Name: "rebalance", BinaryBytes: 256 << 10, Nodes: perPart, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("post-resurrection launch failed: %v", err)
	}
	if !strings.Contains(rep2.Timeline, "partitions=[0]") {
		t.Fatalf("free placement should favor the resurrected idle partition: %s", rep2.Timeline)
	}
	// ...and a spanning job uses the whole federation again.
	rep3, err := SubmitJob(fed.Addr(), JobSpec{
		Name: "span", BinaryBytes: 256 << 10, Nodes: 2 * perPart, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatalf("spanning launch after resurrection failed: %v", err)
	}
	if !strings.Contains(rep3.Timeline, "partitions=[0,1]") {
		t.Fatalf("spanning job should cross both partitions: %s", rep3.Timeline)
	}
}
