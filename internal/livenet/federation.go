package livenet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/place"
)

// Two-level MM federation. The paper demonstrates STORM's O(log n)
// launch scaling to 64 nodes with a single Machine Manager; past that
// the MM itself is the ceiling — every NM registration, heartbeat
// ledger, and direct-child stream terminates on one process. The
// federation applies the system's own medicine one level up: leaf MMs
// own disjoint partitions of NMs and run the existing plan / manifest /
// stream / launch machinery completely unchanged, while a root holds
// only partition-level state — which partitions exist, how many nodes
// each owns, how loaded each is — and delegates whole sub-jobs down.
// Per-partition completion reports fold up to the root the same way
// pong and HAVE ledgers fold up the forwarding tree: the root sees one
// aggregate per partition, never one record per node, so its egress and
// bookkeeping are O(partitions) regardless of cluster size.
//
// Job identity is partition-scoped: each leaf numbers its jobs from a
// disjoint MMConfig.JobBase, so the job field already present in every
// frame header names both the partition and the job, and nothing in the
// NM relay fabric needed to change.

// FedConfig tunes a federation root.
type FedConfig struct {
	// MaxConcurrent bounds how many federated jobs may be in flight at
	// once (default 8); beyond it submissions queue under the root's
	// admission policy.
	MaxConcurrent int
	// Admission is the root-level queue policy: "fifo" (default),
	// "wfair", or "sif" — the same policies the leaves use, lifted one
	// level to order whole jobs instead of streams.
	Admission string
	// ReadmitRetries is how many times one job may be re-admitted to a
	// surviving partition after a leaf MM dies under it (default 1).
	ReadmitRetries int
	// Lite selects the dense connection profile for the root's
	// submission links to the leaves.
	Lite bool
	// ProbeInterval paces the resurrection prober: the root redials each
	// dead partition's submit address on this base period with capped
	// exponential backoff (default 250ms, backoff capped at 8× the
	// base). A successful status probe re-absorbs the partition —
	// placement rebalances toward it on the next free assignment, since
	// a returning leaf carries no federated load.
	ProbeInterval time.Duration
	// Placement selects the partition-pick policy for free jobs, the
	// root-level lift of MMConfig.Placement: "spread" (default) is the
	// classic least-loaded fill-and-spill over partitions; "locality"
	// best-fits the whole job into the smallest partition that can
	// hold it (ties toward the lighter-loaded, then lower ID), so a
	// job that fits one leaf never straddles the inter-partition
	// fabric — the same keep-the-gang-close objective the leaf engine
	// applies to nodes, applied to partitions.
	Placement string
}

func (c *FedConfig) fill() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.ReadmitRetries == 0 {
		c.ReadmitRetries = 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
}

// fedPartition is the root's whole view of one leaf: identity, where to
// submit, and a node-weighted load figure. Nothing node-granular lives
// here beyond a membership snapshot refreshed from the in-process leaf
// handle — the leaf owns its nodes.
type fedPartition struct {
	id   int
	addr string
	mm   *MM
	dead bool
	load int // nodes charged by in-flight federated sub-jobs

	// Resurrection-probe pacing: probeFails counts consecutive failed
	// redials since the partition died (drives the capped backoff),
	// nextProbe is when the prober may try again. Guarded by f.mu.
	probeFails int
	nextProbe  time.Time
}

// PartReport is one partition's contribution to a federated job.
type PartReport struct {
	Partition int
	Nodes     int
	Report    Report
}

// FedReport aggregates a federated job the way a tree parent aggregates
// its children: the timing is the critical path (max over partitions,
// since sub-jobs run concurrently), the egress is the root's own — the
// submission frames it wrote to leaf MMs, O(partitions) by
// construction — and the per-partition breakdown rides along for
// anyone who wants the leaves' detail.
type FedReport struct {
	JobID   int
	Send    time.Duration // max partition binary-resident time
	Execute time.Duration // max partition execution time
	Total   time.Duration
	// RootEgress is every byte the root wrote to delegate this job:
	// one Submit frame per partition touched. Compare Report.SendBytes
	// on a leaf, which scales with image size × fanout.
	RootEgress int64
	// Readmits counts sub-jobs re-admitted to a surviving partition
	// after a leaf death.
	Readmits int
	Parts    []PartReport
	Timeline string
}

// FedStatus is the aggregated cluster snapshot: per-partition rows plus
// the fold.
type FedStatus struct {
	Partitions int // live partitions
	Nodes      int // total registered NMs across live partitions
	Jobs       int
	Queued     int
	Launched   int
	Completed  int
	Parts      []StatusRep
}

// fedAssign is one partition's share of a federated job.
type fedAssign struct {
	part  *fedPartition
	nodes int
	place []int // non-nil when the job pinned explicit node IDs
}

// Federation is the root MM of a two-level cluster. It listens on its
// own port for Submit/StatusQ exactly like an MM, so clients cannot
// tell a federation root from a flat MM.
type Federation struct {
	ln  net.Listener
	cfg FedConfig

	mu      sync.Mutex
	parts   []*fedPartition
	nextJob int
	closed  bool

	// Root-level admission reuses the leaf queue machinery verbatim:
	// the queue elements are liveJobs (only their id/spec/bookkeeping
	// fields are used — no streams run at the root) and the policy is
	// the same pluggable fifo/wfair/sif set.
	admit     *sync.Cond
	admitQ    []*liveJob
	streaming int
	policy    admissionPolicy
	placePol  place.Policy

	launched      int
	completed     int
	readmits      int
	resurrections int

	done chan struct{} // closed by Close; stops the resurrection prober
	wg   sync.WaitGroup
}

// NewFederation starts a federation root over the given leaf MMs. Each
// leaf must carry a distinct MMConfig.JobBase (partition-scoped job
// IDs); leaves stay owned by the caller and are not closed by
// Federation.Close.
func NewFederation(addr string, cfg FedConfig, leaves []*MM) (*Federation, error) {
	cfg.fill()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("livenet: federation needs at least one leaf MM")
	}
	bases := make(map[int]bool)
	for _, mm := range leaves {
		if bases[mm.cfg.JobBase] {
			return nil, fmt.Errorf("livenet: leaf MMs share JobBase %d — job IDs must be partition-scoped", mm.cfg.JobBase)
		}
		bases[mm.cfg.JobBase] = true
	}
	policy, err := newAdmissionPolicy(cfg.Admission)
	if err != nil {
		return nil, err
	}
	placePol, err := place.ParsePolicy(cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("livenet: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenet: federation listen %s: %w", addr, err)
	}
	f := &Federation{ln: ln, cfg: cfg, policy: policy, placePol: placePol, done: make(chan struct{})}
	f.admit = sync.NewCond(&f.mu)
	for i, mm := range leaves {
		f.parts = append(f.parts, &fedPartition{id: i, addr: mm.Addr(), mm: mm})
	}
	f.wg.Add(2)
	go f.acceptLoop()
	go f.resurrectLoop()
	return f, nil
}

// Addr returns the root's listening address.
func (f *Federation) Addr() string { return f.ln.Addr().String() }

// Close shuts the root down. The leaves are caller-owned and keep
// running.
func (f *Federation) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.admit.Broadcast()
	f.mu.Unlock()
	close(f.done)
	f.ln.Close()
	f.wg.Wait()
}

// Readmits returns how many sub-jobs have been re-admitted to a
// surviving partition after a leaf death.
func (f *Federation) Readmits() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.readmits
}

// Resurrections returns how many dead partitions the prober has
// re-absorbed.
func (f *Federation) Resurrections() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resurrections
}

// resurrectLoop is the root's half of federation healing: every
// ProbeInterval it redials each dead partition's submit address (with
// capped per-partition backoff, so a long-dead leaf costs a dial every
// ~2s, not every tick) and sends a status probe. A leaf that answers is
// re-absorbed — marked live, backoff reset — and, carrying no federated
// load, naturally attracts the next free placement.
func (f *Federation) resurrectLoop() {
	defer f.wg.Done()
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		type target struct {
			p    *fedPartition
			addr string // snapshotted under f.mu: Reabsorb rewrites it
		}
		f.mu.Lock()
		var due []target
		for _, p := range f.parts {
			if p.dead && !now.Before(p.nextProbe) {
				due = append(due, target{p, p.addr})
			}
		}
		f.mu.Unlock()
		for _, t := range due {
			p := t.p
			alive := f.probe(t.addr)
			f.mu.Lock()
			if !p.dead {
				// A concurrent Reabsorb (or an earlier probe) beat us.
			} else if alive && !p.mm.Closed() {
				p.dead = false
				p.probeFails = 0
				p.nextProbe = time.Time{}
				f.resurrections++
			} else {
				if p.probeFails < 3 {
					p.probeFails++
				}
				p.nextProbe = now.Add(f.cfg.ProbeInterval << uint(p.probeFails))
			}
			f.mu.Unlock()
		}
	}
}

// probe asks addr for a status snapshot over a fresh submit link.
func (f *Federation) probe(addr string) bool {
	prof := bulkProfile
	if f.cfg.Lite {
		prof = liteProfile
	}
	c, err := dialProf(nil, nil, addr, prof)
	if err != nil {
		return false
	}
	defer c.close()
	if err := c.send(Message{StatusQ: &StatusReq{}}); err != nil {
		return false
	}
	m, err := c.recv()
	return err == nil && m.StatusR != nil
}

// Reabsorb swaps in a restarted leaf MM for the dead partition that
// carried the same MMConfig.JobBase — the partition identity job IDs
// are scoped by. An in-process leaf that died and was rebuilt (say,
// from its journal) has a fresh *MM and usually a fresh port, which the
// root cannot discover on its own; after Reabsorb the resurrection
// prober verifies the new leaf over the wire and marks the partition
// live. The old handle is abandoned, never closed — it was the caller's
// to begin with.
func (f *Federation) Reabsorb(mm *MM) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range f.parts {
		if p.mm.cfg.JobBase == mm.cfg.JobBase {
			p.mm = mm
			p.addr = mm.Addr()
			p.nextProbe = time.Time{} // probe the new address next tick
			return nil
		}
	}
	return fmt.Errorf("livenet: no partition carries JobBase %d", mm.cfg.JobBase)
}

// LivePartitions returns the IDs of partitions not marked dead.
func (f *Federation) LivePartitions() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for _, p := range f.parts {
		if !p.dead {
			out = append(out, p.id)
		}
	}
	return out
}

// Status folds the per-partition snapshots into the cluster view.
func (f *Federation) Status() FedStatus {
	f.mu.Lock()
	parts := append([]*fedPartition(nil), f.parts...)
	st := FedStatus{Launched: f.launched, Completed: f.completed, Queued: len(f.admitQ)}
	f.mu.Unlock()
	for _, p := range parts {
		if p.dead || p.mm.Closed() {
			continue
		}
		rep := p.mm.status()
		st.Partitions++
		st.Nodes += len(rep.Nodes)
		st.Jobs += rep.Jobs
		st.Queued += rep.Queued
		st.Parts = append(st.Parts, rep)
	}
	return st
}

func (f *Federation) acceptLoop() {
	defer f.wg.Done()
	for {
		nc, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go f.handleConn(newConn(nc))
	}
}

func (f *Federation) handleConn(c *conn) {
	defer f.wg.Done()
	defer c.close()
	first, err := c.recv()
	if err != nil {
		return
	}
	switch {
	case first.Submit != nil:
		rep, err := f.RunJob(first.Submit.Spec)
		done := Done{Report: Report{
			JobID:     rep.JobID,
			Send:      rep.Send,
			Execute:   rep.Execute,
			Total:     rep.Total,
			SendBytes: rep.RootEgress,
			Timeline:  rep.Timeline,
		}}
		if err != nil {
			done.Err = err.Error()
		}
		c.send(Message{Done: &done})
	case first.StatusQ != nil:
		st := f.Status()
		c.send(Message{StatusR: &StatusRep{
			Nodes:     nodesOf(st),
			Jobs:      st.Jobs,
			Queued:    st.Queued,
			Launched:  st.Launched,
			Completed: st.Completed,
		}})
	}
}

func nodesOf(st FedStatus) []int {
	var all []int
	for _, p := range st.Parts {
		all = append(all, p.Nodes...)
	}
	sort.Ints(all)
	return all
}

// membership returns each live partition's registered node set. Caller
// holds f.mu; the per-leaf snapshot takes the leaf's own lock, which
// never acquires federation state — lock order is root before leaf,
// always.
func (f *Federation) membership() map[int][]int {
	m := make(map[int][]int, len(f.parts))
	for _, p := range f.parts {
		if !p.dead && !p.mm.Closed() {
			m[p.id] = p.mm.NMs()
		}
	}
	return m
}

// assign splits a job across partitions under f.mu. A pinned job
// (spec.Place) groups its node IDs by owning partition. A free job
// follows FedConfig.Placement: spread takes partitions in
// deterministic least-loaded order (ties toward the lower partition ID
// — the same leastLoadedOrder spread placeJob uses on nodes) and fills
// each before spilling into the next; locality best-fits the whole job
// into the smallest single partition that can seat it, spilling only
// when none can. Either way a job that fits one partition lands on
// exactly one leaf.
func (f *Federation) assign(spec *JobSpec, members map[int][]int) ([]fedAssign, error) {
	byID := make(map[int]*fedPartition, len(f.parts))
	var ids []int
	total := 0
	for _, p := range f.parts {
		if p.dead {
			continue
		}
		if _, ok := members[p.id]; !ok {
			continue
		}
		byID[p.id] = p
		ids = append(ids, p.id)
		total += len(members[p.id])
	}
	if total < spec.Nodes {
		return nil, fmt.Errorf("livenet: %d NMs registered across %d partitions, job wants %d", total, len(ids), spec.Nodes)
	}
	if len(spec.Place) > 0 {
		owner := make(map[int]int) // node -> partition
		for pid, nodes := range members {
			for _, n := range nodes {
				owner[n] = pid
			}
		}
		group := make(map[int][]int)
		for _, n := range spec.Place {
			pid, ok := owner[n]
			if !ok {
				return nil, fmt.Errorf("livenet: placed node %d not registered in any live partition", n)
			}
			group[pid] = append(group[pid], n)
		}
		var pids []int
		for pid := range group {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		var out []fedAssign
		for _, pid := range pids {
			out = append(out, fedAssign{part: byID[pid], nodes: len(group[pid]), place: group[pid]})
		}
		return out, nil
	}
	if f.placePol == place.Locality {
		// Best-fit: the smallest partition that holds the whole job
		// (ties → lighter federated load, then lower ID) — the gang
		// never straddles the inter-partition fabric when any single
		// leaf can seat it. The comparator is total, so the choice is
		// independent of partition iteration order.
		best := -1
		for _, id := range ids {
			if len(members[id]) < spec.Nodes {
				continue
			}
			if best < 0 ||
				len(members[id]) < len(members[best]) ||
				(len(members[id]) == len(members[best]) &&
					(byID[id].load < byID[best].load ||
						(byID[id].load == byID[best].load && id < best))) {
				best = id
			}
		}
		if best >= 0 {
			return []fedAssign{{part: byID[best], nodes: spec.Nodes}}, nil
		}
		// No single partition fits: spill like spread does.
	}
	leastLoadedOrder(ids, func(id int) int { return byID[id].load })
	var out []fedAssign
	remaining := spec.Nodes
	for _, id := range ids {
		if remaining == 0 {
			break
		}
		n := len(members[id])
		if n > remaining {
			n = remaining
		}
		out = append(out, fedAssign{part: byID[id], nodes: n})
		remaining -= n
	}
	return out, nil
}

// subSpec derives one partition's share of the job. Everything
// content-related is identical — same image seed, same patch — so the
// leaf manifest memos and NM chunk caches work exactly as they do under
// a flat MM, and a warm federated relaunch is warm in every partition.
func subSpec(spec JobSpec, a fedAssign) JobSpec {
	s := spec
	s.Nodes = a.nodes
	s.Place = a.place
	return s
}

// RunJob executes one federated job: root-level admission, partition
// assignment, concurrent delegation to the leaf MMs over real submit
// links, and ledger-style aggregation of the per-partition reports. A
// leaf that dies mid-job is marked dead and its share is re-admitted to
// a surviving partition with free capacity.
func (f *Federation) RunJob(spec JobSpec) (FedReport, error) {
	if spec.Nodes <= 0 || spec.PEsPerNode <= 0 {
		return FedReport{}, fmt.Errorf("livenet: bad job geometry %dx%d", spec.Nodes, spec.PEsPerNode)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return FedReport{}, fmt.Errorf("livenet: federation closed")
	}
	f.nextJob++
	j := &liveJob{id: f.nextJob, spec: spec, qStart: time.Now()}
	if err := f.awaitAdmission(j); err != nil {
		f.mu.Unlock()
		return FedReport{}, err
	}
	members := f.membership()
	assigns, err := f.assign(&spec, members)
	if err != nil {
		f.streaming--
		f.admit.Broadcast()
		f.mu.Unlock()
		return FedReport{}, err
	}
	for _, a := range assigns {
		a.part.load += a.nodes
	}
	f.launched++
	f.mu.Unlock()

	release := func(a fedAssign) {
		f.mu.Lock()
		if a.part.load >= a.nodes {
			a.part.load -= a.nodes
		} else {
			a.part.load = 0
		}
		f.mu.Unlock()
	}
	defer func() {
		f.mu.Lock()
		f.streaming--
		f.admit.Broadcast()
		f.mu.Unlock()
	}()

	start := time.Now()
	results := make([]subResult, len(assigns))
	var wg sync.WaitGroup
	for i, a := range assigns {
		wg.Add(1)
		go func(i int, a fedAssign) {
			defer wg.Done()
			defer release(a)
			results[i] = f.runPart(j.id, subSpec(spec, a), a)
		}(i, a)
	}
	wg.Wait()

	rep := FedReport{JobID: j.id}
	var firstErr error
	for _, r := range results {
		rep.RootEgress += r.eg
		rep.Readmits += r.rad
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if r.pr.Report.Send > rep.Send {
			rep.Send = r.pr.Report.Send
		}
		if r.pr.Report.Execute > rep.Execute {
			rep.Execute = r.pr.Report.Execute
		}
		rep.Parts = append(rep.Parts, r.pr)
	}
	sort.Slice(rep.Parts, func(a, b int) bool { return rep.Parts[a].Partition < rep.Parts[b].Partition })
	rep.Total = time.Since(start)
	if firstErr != nil {
		return rep, firstErr
	}
	f.mu.Lock()
	f.completed++
	f.readmits += rep.Readmits
	f.mu.Unlock()
	var pids []string
	for _, p := range rep.Parts {
		pids = append(pids, fmt.Sprintf("%d", p.Partition))
	}
	rep.Timeline = fmt.Sprintf("send=%v execute=%v nodes=%d partitions=[%s] root_egress=%dB",
		rep.Send, rep.Execute, spec.Nodes, strings.Join(pids, ","), rep.RootEgress)
	if rep.Readmits > 0 {
		rep.Timeline += fmt.Sprintf(" readmits=%d", rep.Readmits)
	}
	return rep, nil
}

// subResult is one partition's outcome within a federated job.
type subResult struct {
	pr  PartReport
	eg  int64 // root submit-link egress for this share, retries included
	rad int   // re-admissions this share needed
	err error
}

// runPart delegates one partition's share, re-admitting to a survivor
// when the leaf's submit link dies mid-job (the leaf process died). A
// job-level failure reported over a healthy link is final — the cluster
// rejected the job, not the partition.
func (f *Federation) runPart(jobID int, spec JobSpec, a fedAssign) (res subResult) {
	part := a.part
	for attempt := 0; ; attempt++ {
		rep, egress, dead, err := f.submit(part.addr, spec)
		res.eg += egress
		if err == nil {
			res.pr = PartReport{Partition: part.id, Nodes: spec.Nodes, Report: rep}
			return res
		}
		if !dead || attempt >= f.cfg.ReadmitRetries {
			if dead {
				res.err = fmt.Errorf("%w: fed job %d on partition %d: %v", ErrJobRetriesExhausted, jobID, part.id, err)
			} else {
				res.err = fmt.Errorf("livenet: fed job %d on partition %d: %w", jobID, part.id, err)
			}
			return res
		}
		// Jittered pause before the re-admitted share goes out: shares
		// orphaned by the same leaf death should not re-place in
		// lockstep against one survivor.
		time.Sleep(retryBackoff(jobID, attempt))
		// The submit link died: convict the partition and re-admit this
		// share to the deterministically least-loaded survivor with
		// room. Pinned placement cannot survive its partition — the
		// pinned nodes died with it — so the re-admitted share falls
		// back to the survivor's own least-loaded placement.
		f.mu.Lock()
		part.dead = true
		next := f.pickSurvivor(spec.Nodes, part)
		if next != nil {
			next.load += spec.Nodes
		}
		f.mu.Unlock()
		if next == nil {
			res.err = fmt.Errorf("livenet: fed job %d: partition %d died and no survivor has %d free nodes", jobID, part.id, spec.Nodes)
			return res
		}
		spec.Place = nil
		res.rad++
		part = next
		// The survivor's load charge lives until this share finishes,
		// however many further retries that takes.
		defer func(p *fedPartition, n int) {
			f.mu.Lock()
			if p.load >= n {
				p.load -= n
			} else {
				p.load = 0
			}
			f.mu.Unlock()
		}(next, spec.Nodes)
	}
}

// pickSurvivor chooses the least-loaded live partition (deterministic
// tie-break by ID) with at least n registered nodes, excluding the one
// that just died. Caller holds f.mu.
func (f *Federation) pickSurvivor(n int, exclude *fedPartition) *fedPartition {
	var ids []int
	byID := make(map[int]*fedPartition)
	for _, p := range f.parts {
		if p.dead || p == exclude || p.mm.Closed() {
			continue
		}
		if len(p.mm.NMs()) < n {
			continue
		}
		byID[p.id] = p
		ids = append(ids, p.id)
	}
	if len(ids) == 0 {
		return nil
	}
	leastLoadedOrder(ids, func(id int) int { return byID[id].load })
	return byID[ids[0]]
}

// submit runs one sub-job on a leaf over a real TCP submit link and
// reports the bytes the root wrote on it — the root's whole per-
// partition delegation cost. dead reports link death (leaf process
// gone) as opposed to a job failure returned over a live link.
func (f *Federation) submit(addr string, spec JobSpec) (rep Report, egress int64, dead bool, err error) {
	prof := bulkProfile
	if f.cfg.Lite {
		prof = liteProfile
	}
	c, err := dialProf(nil, nil, addr, prof)
	if err != nil {
		return Report{}, 0, true, err
	}
	defer c.close()
	if err := c.send(Message{Submit: &Submit{Spec: spec}}); err != nil {
		return Report{}, c.sentBytes(), true, fmt.Errorf("submit: %w", err)
	}
	m, err := c.recv()
	if err != nil {
		return Report{}, c.sentBytes(), true, fmt.Errorf("awaiting report: %w", err)
	}
	if m.Done == nil {
		return Report{}, c.sentBytes(), false, fmt.Errorf("unexpected reply")
	}
	if m.Done.Err != "" {
		return m.Done.Report, c.sentBytes(), false, fmt.Errorf("%s", m.Done.Err)
	}
	return m.Done.Report, c.sentBytes(), false, nil
}

// awaitAdmission parks a federated job until the root policy picks it
// and a concurrency slot frees — the leaf admission loop without gang
// rows. Caller holds f.mu.
func (f *Federation) awaitAdmission(j *liveJob) error {
	f.admitQ = append(f.admitQ, j)
	for {
		if f.closed {
			f.dropQueued(j)
			return fmt.Errorf("livenet: federation closed while job %d awaited admission", j.id)
		}
		if f.streaming < f.cfg.MaxConcurrent && f.policy.pick(f.admitQ) == j {
			f.dropQueued(j)
			f.streaming++
			f.policy.granted(j)
			f.admit.Broadcast()
			j.queued = time.Since(j.qStart)
			return nil
		}
		f.admit.Wait()
	}
}

func (f *Federation) dropQueued(j *liveJob) {
	for i, q := range f.admitQ {
		if q == j {
			f.admitQ = append(f.admitQ[:i], f.admitQ[i+1:]...)
			return
		}
	}
}
