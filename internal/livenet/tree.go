package livenet

// Software-multicast forwarding tree for binary distribution (the
// paper's §4 "Portability" argument made concrete): commodity networks
// have no hardware multicast, so the XFER-AND-SIGNAL broadcast is
// emulated with a k-ary relay tree over the job's NMs. The MM streams
// each fragment to its tree children only; every interior NM writes the
// fragment locally and relays the same buffer to its own children, so
// per-hop fan-out is bounded by the tree degree and total depth is
// O(log_k n) — the reason the paper's launch curves stay flat in node
// count.
//
// Layout: the MM is heap index 0 of a k-ary heap and the job's node
// *positions* 0..n-1 occupy heap indices 1..n. Children of heap index h
// are h·k+1 … h·k+k, so position p's children are positions
// (p+1)·k-1+1 … clipped to n. Fanout ≤ 1 selects the flat fan-out: the
// MM unicasts to every position itself and no NM relays.

// mmChildren returns the positions the MM streams to directly: all of
// them for the flat fan-out, the first min(fanout, n) positions for a
// tree.
func mmChildren(n, fanout int) []int {
	if n <= 0 {
		return nil
	}
	k := n
	if fanout > 1 && fanout < n {
		k = fanout
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// nodeChildren returns the positions that position pos relays to (empty
// for leaves and for the flat fan-out).
func nodeChildren(pos, n, fanout int) []int {
	if fanout <= 1 {
		return nil
	}
	first := (pos + 1) * fanout
	if first >= n {
		return nil
	}
	last := first + fanout
	if last > n {
		last = n
	}
	out := make([]int, 0, last-first)
	for p := first; p < last; p++ {
		out = append(out, p)
	}
	return out
}

// subtreeNodes returns pos plus every position below it in the tree —
// the set an aggregated ack from pos vouches for.
func subtreeNodes(pos, n, fanout int) []int {
	out := []int{pos}
	for i := 0; i < len(out); i++ {
		out = append(out, nodeChildren(out[i], n, fanout)...)
	}
	return out
}

// subtreePreorder returns pos's subtree in DFS pre-order: pos itself
// first, then each child's subtree recursively in child order. This is
// the canonical bit layout of the control tree's pong ledger: a node's
// bitmap is [self] ++ child₁'s bitmap ++ child₂'s bitmap ..., so a
// parent folds a child's bitmap into its own with one shift by the
// child's running offset.
func subtreePreorder(pos, n, fanout int) []int {
	out := []int{pos}
	for _, c := range nodeChildren(pos, n, fanout) {
		out = append(out, subtreePreorder(c, n, fanout)...)
	}
	return out
}

// treeDepth returns the number of relay hops below the MM (1 for the
// flat fan-out). Used by tests and the bench report.
func treeDepth(n, fanout int) int {
	if n <= 0 {
		return 0
	}
	if fanout <= 1 || fanout >= n {
		return 1
	}
	depth := 0
	for _, p := range mmChildren(n, fanout) {
		d := 1 + treeDepthFrom(p, n, fanout)
		if d > depth {
			depth = d
		}
	}
	return depth
}

func treeDepthFrom(pos, n, fanout int) int {
	depth := 0
	for _, c := range nodeChildren(pos, n, fanout) {
		d := 1 + treeDepthFrom(c, n, fanout)
		if d > depth {
			depth = d
		}
	}
	return depth
}

// Striped multi-tree layout (SplitStream-style): a k-stripe plan builds
// k spanning trees over the same node set, with the interior/leaf roles
// rotated per stripe so each node is interior in ~1/k of the trees and
// the aggregate delivery uses k uplinks per node instead of one. The
// rotation is a cyclic shift of the placement order: stripe s's tree
// position q is held by the node at index (q + s·n/k) mod n. A k-ary
// heap's interior positions are a prefix of the position space, so
// shifting by n/k per stripe keeps the interior sets (nearly) disjoint —
// e.g. n=16, k=2, fanout=2 puts nodes 0..6 interior in stripe 0 and
// nodes 8..14 interior in stripe 1.
//
// Chunks interleave round-robin: chunk i travels stripe i%k, and within
// a stripe, chunks are counted in stripe-local order (chunk s+j·k is the
// stripe's j-th), which keeps each stripe's cumulative-ack and replay
// arithmetic identical to the single-tree plan's.

// stripeRotation returns stripe s's cyclic shift of the placement order
// in a k-stripe plan over n nodes.
func stripeRotation(s, k, n int) int {
	if k <= 1 || n <= 0 {
		return 0
	}
	return s * n / k
}

// stripeNodeAt maps tree position q of stripe s to a node index in the
// job's placement order.
func stripeNodeAt(q, s, k, n int) int {
	return (q + stripeRotation(s, k, n)) % n
}

// stripePosOf is the inverse map: the tree position node index idx holds
// in stripe s.
func stripePosOf(idx, s, k, n int) int {
	return (idx - stripeRotation(s, k, n) + n) % n
}

// stripeChunks returns how many of an image's nchunks chunks travel
// stripe s under the round-robin interleave (chunk i → stripe i%k).
func stripeChunks(nchunks, s, k int) int {
	if k <= 1 {
		return nchunks
	}
	if s >= nchunks {
		return 0
	}
	return (nchunks - s + k - 1) / k
}
