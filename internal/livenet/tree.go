package livenet

// Software-multicast forwarding tree for binary distribution (the
// paper's §4 "Portability" argument made concrete): commodity networks
// have no hardware multicast, so the XFER-AND-SIGNAL broadcast is
// emulated with a k-ary relay tree over the job's NMs. The MM streams
// each fragment to its tree children only; every interior NM writes the
// fragment locally and relays the same buffer to its own children, so
// per-hop fan-out is bounded by the tree degree and total depth is
// O(log_k n) — the reason the paper's launch curves stay flat in node
// count.
//
// Layout: the MM is heap index 0 of a k-ary heap and the job's node
// *positions* 0..n-1 occupy heap indices 1..n. Children of heap index h
// are h·k+1 … h·k+k, so position p's children are positions
// (p+1)·k-1+1 … clipped to n. Fanout ≤ 1 selects the flat fan-out: the
// MM unicasts to every position itself and no NM relays.

// mmChildren returns the positions the MM streams to directly: all of
// them for the flat fan-out, the first min(fanout, n) positions for a
// tree.
func mmChildren(n, fanout int) []int {
	if n <= 0 {
		return nil
	}
	k := n
	if fanout > 1 && fanout < n {
		k = fanout
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// nodeChildren returns the positions that position pos relays to (empty
// for leaves and for the flat fan-out).
func nodeChildren(pos, n, fanout int) []int {
	if fanout <= 1 {
		return nil
	}
	first := (pos + 1) * fanout
	if first >= n {
		return nil
	}
	last := first + fanout
	if last > n {
		last = n
	}
	out := make([]int, 0, last-first)
	for p := first; p < last; p++ {
		out = append(out, p)
	}
	return out
}

// subtreeNodes returns pos plus every position below it in the tree —
// the set an aggregated ack from pos vouches for.
func subtreeNodes(pos, n, fanout int) []int {
	out := []int{pos}
	for i := 0; i < len(out); i++ {
		out = append(out, nodeChildren(out[i], n, fanout)...)
	}
	return out
}

// subtreePreorder returns pos's subtree in DFS pre-order: pos itself
// first, then each child's subtree recursively in child order. This is
// the canonical bit layout of the control tree's pong ledger: a node's
// bitmap is [self] ++ child₁'s bitmap ++ child₂'s bitmap ..., so a
// parent folds a child's bitmap into its own with one shift by the
// child's running offset.
func subtreePreorder(pos, n, fanout int) []int {
	out := []int{pos}
	for _, c := range nodeChildren(pos, n, fanout) {
		out = append(out, subtreePreorder(c, n, fanout)...)
	}
	return out
}

// treeDepth returns the number of relay hops below the MM (1 for the
// flat fan-out). Used by tests and the bench report.
func treeDepth(n, fanout int) int {
	if n <= 0 {
		return 0
	}
	if fanout <= 1 || fanout >= n {
		return 1
	}
	depth := 0
	for _, p := range mmChildren(n, fanout) {
		d := 1 + treeDepthFrom(p, n, fanout)
		if d > depth {
			depth = d
		}
	}
	return depth
}

func treeDepthFrom(pos, n, fanout int) int {
	depth := 0
	for _, c := range nodeChildren(pos, n, fanout) {
		d := 1 + treeDepthFrom(c, n, fanout)
		if d > depth {
			depth = d
		}
	}
	return depth
}
