package livenet

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/livenet/faultconn"
)

// Partition-boundary chaos: the failure domains the flat-cluster suite
// cannot express. A leaf MM dying takes a whole partition with it — the
// root must convict the partition off the dead submit link and re-admit
// the job's share to a survivor. An NM dying inside one partition must
// stay that partition's problem — the leaf replans locally and the root
// never hears about it, so a bystander job in another partition is
// bit-for-bit undisturbed.

// TestChaosFederationLeafDeathReadmits kills a leaf MM mid-transfer
// (the trigger is seed-deterministic: the victim partition's direct
// child NM faults its stream at a seed-chosen fragment and takes the
// whole leaf down) and asserts the root re-admits the job to the
// surviving partition and completes it there.
func TestChaosFederationLeafDeathReadmits(t *testing.T) {
	const perPart = 3
	cfg := chaosMMConfig()
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killAt := 8 + faultconn.NewRng(seed).Intn(16)
			// The fault plan is armed before the leaf MM exists; the kill
			// callback resolves it through an atomic holder.
			var victimMM atomic.Pointer[MM]
			fed, mms, nms, _ := fedCluster(t, 2, perPart, FedConfig{Lite: true}, cfg,
				func(node int) NMConfig {
					if node != 0 { // partition 0's first NM — a direct MM child
						return NMConfig{}
					}
					return NMConfig{WrapConn: func(c net.Conn) net.Conn {
						plan := faultconn.NewPlan()
						plan.CloseAtReadFrag = killAt
						plan.OnFault = func(string) {
							// The stream fault models the leaf MM process
							// dying, not one NM: take the whole leaf down,
							// severing the root's submit link.
							go func() {
								if mm := victimMM.Load(); mm != nil {
									mm.Kill()
								}
							}()
						}
						return faultconn.Wrap(c, plan)
					}}
				})
			victimMM.Store(mms[0])
			// Free placement on an idle federation deterministically picks
			// partition 0 — the one armed to die at fragment killAt.
			rep, err := fed.RunJob(JobSpec{
				Name: "leafdeath", BinaryBytes: chaosBinary, Nodes: perPart, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			})
			if err != nil {
				t.Fatalf("job did not survive leaf death at frag %d: %v", killAt, err)
			}
			if rep.Readmits != 1 {
				t.Fatalf("want exactly one re-admission, got %d (%s)", rep.Readmits, rep.Timeline)
			}
			if len(rep.Parts) != 1 || rep.Parts[0].Partition != 1 {
				t.Fatalf("re-admitted share should have completed on partition 1: %+v", rep.Parts)
			}
			if live := fed.LivePartitions(); len(live) != 1 || live[0] != 1 {
				t.Fatalf("partition 0 should be convicted, live=%v", live)
			}
			// The survivors — partition 1's NMs — hold the complete image
			// under partition 1's job-ID range.
			leafJob := rep.Parts[0].Report.JobID
			if leafJob <= fedJobBase(1) || leafJob > fedJobBase(1)+1024 {
				t.Fatalf("re-admitted job ID %d outside partition 1's base range", leafJob)
			}
			assertSurvivorImages(t, nms[perPart:], -1, leafJob, chaosBinary/cfg.FragBytes)
			// The federation keeps serving from the survivor.
			if _, err := SubmitJob(fed.Addr(), JobSpec{
				Name: "after", BinaryBytes: 256 << 10, Nodes: perPart, PEsPerNode: 1,
				Program: ProgramSpec{Kind: "exit"},
			}); err != nil {
				t.Fatalf("post-conviction launch failed: %v", err)
			}
		})
	}
}

// TestChaosFederationPartitionIsolation kills an NM in partition 0
// mid-transfer while a bystander job runs pinned to partition 1. The
// disturbed job must recover via its own leaf's replan machinery; the
// bystander must complete with zero replans, zero failed nodes, and
// byte-identical images — proof the failure domain is the partition.
func TestChaosFederationPartitionIsolation(t *testing.T) {
	const perPart, victim = 5, 2 // node 2: a distribution-tree leaf of partition 0
	cfg := chaosMMConfig()
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			killAt := 8 + faultconn.NewRng(seed).Intn(16)
			var victimNM atomic.Pointer[NM]
			fed, _, nms, _ := fedCluster(t, 2, perPart, FedConfig{Lite: true}, cfg,
				func(node int) NMConfig {
					if node != victim {
						return NMConfig{}
					}
					return NMConfig{WrapConn: func(c net.Conn) net.Conn {
						plan := faultconn.NewPlan()
						plan.CloseAtReadFrag = killAt
						plan.OnFault = func(string) {
							go func() {
								if nm := victimNM.Load(); nm != nil {
									nm.Close()
								}
							}()
						}
						return faultconn.Wrap(c, plan)
					}}
				})
			victimNM.Store(nms[victim])

			type res struct {
				rep FedReport
				err error
			}
			run := func(name string, place []int) chan res {
				ch := make(chan res, 1)
				go func() {
					rep, err := fed.RunJob(JobSpec{
						Name: name, BinaryBytes: chaosBinary, Nodes: len(place), PEsPerNode: 1,
						Program: ProgramSpec{Kind: "exit"}, Place: place,
					})
					ch <- res{rep, err}
				}()
				return ch
			}
			disturbedCh := run("disturbed", []int{0, 1, 2, 3, 4})
			bystanderCh := run("bystander", []int{5, 6, 7, 8, 9})
			disturbed, bystander := <-disturbedCh, <-bystanderCh

			if disturbed.err != nil {
				t.Fatalf("disturbed job did not recover from NM death at frag %d: %v", killAt, disturbed.err)
			}
			dr := disturbed.rep.Parts[0].Report
			if dr.Replans < 1 || len(dr.Failed) != 1 || dr.Failed[0] != victim {
				t.Fatalf("disturbed job should have replanned around node %d: replans=%d failed=%v",
					victim, dr.Replans, dr.Failed)
			}
			assertSurvivorImages(t, nms[:perPart], victim, dr.JobID, chaosBinary/cfg.FragBytes)

			if bystander.err != nil {
				t.Fatalf("bystander job failed: %v", bystander.err)
			}
			br := bystander.rep.Parts[0].Report
			if br.Replans != 0 || len(br.Failed) != 0 {
				t.Fatalf("bystander in partition 1 disturbed by partition 0's NM death: replans=%d failed=%v",
					br.Replans, br.Failed)
			}
			assertSurvivorImages(t, nms[perPart:], -1, br.JobID, chaosBinary/cfg.FragBytes)
			if live := fed.LivePartitions(); len(live) != 2 {
				t.Fatalf("an NM death must not convict its partition, live=%v", live)
			}
		})
	}
}
