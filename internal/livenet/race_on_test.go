//go:build race

package livenet

// See race_off_test.go.
const raceEnabled = true
