package livenet

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// fedJobBase returns the partition-scoped job-ID base for partition p.
// Bases are spaced 1<<20 apart so a leaf would need a million jobs to
// collide with its neighbour.
func fedJobBase(p int) int { return (p + 1) << 20 }

// fedCluster boots a two-level federation: one shared PeerHub, P leaf
// MMs each owning perPart lite NMs (partition p owns global node IDs
// [p·perPart, (p+1)·perPart)), and a federation root over them. nmCfg,
// when non-nil, customizes individual NMs by global node ID — the hook
// the chaos suite uses to arm fault plans. Shutdown is explicit
// (returned close func) so leak tests can assert the goroutine count
// after teardown; it is also registered via t.Cleanup and safe to call
// twice.
func fedCluster(t testing.TB, partitions, perPart int, fcfg FedConfig, mmCfg MMConfig,
	nmCfg func(node int) NMConfig) (*Federation, []*MM, []*NM, func()) {
	t.Helper()
	hub, err := NewPeerHub("")
	if err != nil {
		t.Fatal(err)
	}
	var mms []*MM
	var nms []*NM
	var fed *Federation
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		if fed != nil {
			fed.Close()
		}
		for _, nm := range nms {
			nm.Close()
		}
		for _, mm := range mms {
			mm.Close()
		}
		hub.Close()
	}
	t.Cleanup(shutdown)
	for p := 0; p < partitions; p++ {
		cfg := mmCfg
		cfg.JobBase = fedJobBase(p)
		cfg.Lite = true
		mm, err := NewMM("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		mms = append(mms, mm)
		for i := 0; i < perPart; i++ {
			node := p*perPart + i
			var c NMConfig
			if nmCfg != nil {
				c = nmCfg(node)
			}
			c.Hub = hub
			c.Lite = true
			nm, err := NewNMConfig(mm.Addr(), node, 4, c)
			if err != nil {
				t.Fatal(err)
			}
			nms = append(nms, nm)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, mm := range mms {
		for len(mm.NMs()) < perPart {
			if time.Now().After(deadline) {
				t.Fatalf("only %d of %d NMs registered on leaf %s", len(mm.NMs()), perPart, mm.Addr())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	fed, err = NewFederation("127.0.0.1:0", fcfg, mms)
	if err != nil {
		t.Fatal(err)
	}
	return fed, mms, nms, shutdown
}

// TestFederationSinglePartition checks that a job fitting one partition
// lands on exactly one leaf — the root never splits a job that doesn't
// need splitting — and that clients cannot tell a federation root from
// a flat MM: the plain SubmitJob client call works against it.
func TestFederationSinglePartition(t *testing.T) {
	fed, mms, _, _ := fedCluster(t, 2, 4, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	rep, err := SubmitJob(fed.Addr(), JobSpec{
		Name: "one", BinaryBytes: 256 << 10, Nodes: 4, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Send <= 0 || rep.Total < rep.Send {
		t.Fatalf("nonsensical report: %+v", rep)
	}
	if !strings.Contains(rep.Timeline, "partitions=[0]") {
		t.Fatalf("4-node job on 2x4 federation should land on partition 0 alone: %s", rep.Timeline)
	}
	// Exactly one leaf ran the sub-job; job accounting is leaf-local.
	st0, st1 := mms[0].status(), mms[1].status()
	if st0.Completed != 1 || st1.Completed != 0 {
		t.Fatalf("sub-job accounting: partition 0 completed %d, partition 1 completed %d; want 1, 0",
			st0.Completed, st1.Completed)
	}
}

// TestFederationSpanning checks that a job larger than any single
// partition spans multiple leaves, that the aggregate report is the
// critical path over the concurrent sub-jobs, and that the root's
// delegation egress stays O(partitions) — a couple of Submit frames,
// nowhere near the image bytes the leaves push.
func TestFederationSpanning(t *testing.T) {
	fed, _, _, _ := fedCluster(t, 2, 3, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	rep, err := fed.RunJob(JobSpec{
		Name: "span", BinaryBytes: 512 << 10, Nodes: 6, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Parts) != 2 {
		t.Fatalf("6-node job over 2x3 should span 2 partitions, got %d: %+v", len(rep.Parts), rep.Parts)
	}
	for _, p := range rep.Parts {
		if p.Nodes != 3 {
			t.Fatalf("partition %d got %d nodes, want 3", p.Partition, p.Nodes)
		}
		if p.Report.Send > rep.Send {
			t.Fatalf("aggregate Send %v below partition %d's %v", rep.Send, p.Partition, p.Report.Send)
		}
	}
	// One gob Submit frame per partition: generously bounded well below
	// the 512 KiB image each leaf then fans out itself.
	if rep.RootEgress <= 0 || rep.RootEgress > 8<<10 {
		t.Fatalf("root egress %dB, want small O(partitions) delegation cost", rep.RootEgress)
	}
}

// TestFederationPlaceGrouping checks that an explicitly placed job is
// split by node ownership: each pinned node reaches its owning
// partition, and an unknown node is rejected.
func TestFederationPlaceGrouping(t *testing.T) {
	fed, mms, _, _ := fedCluster(t, 2, 4, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	// Nodes 1,2 live in partition 0; nodes 5,6 in partition 1.
	rep, err := fed.RunJob(JobSpec{
		Name: "pin", BinaryBytes: 128 << 10, Nodes: 4, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"}, Place: []int{1, 2, 5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Parts) != 2 || rep.Parts[0].Nodes != 2 || rep.Parts[1].Nodes != 2 {
		t.Fatalf("pinned 2+2 split, got %+v", rep.Parts)
	}
	if st := mms[0].status(); st.Completed != 1 {
		t.Fatalf("partition 0 should have completed its pinned share: %+v", st)
	}
	if _, err := fed.RunJob(JobSpec{
		Name: "ghost", BinaryBytes: 64 << 10, Nodes: 1, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"}, Place: []int{99},
	}); err == nil {
		t.Fatal("placing an unregistered node must fail")
	}
}

// TestFederationJobIDsPartitionScoped checks the tentpole's frame-header
// invariant: leaves number jobs from disjoint JobBase ranges, so the
// u32 job ID in every frame already names its partition, and a
// federation over clashing bases is refused outright.
func TestFederationJobIDsPartitionScoped(t *testing.T) {
	fed, mms, nms, _ := fedCluster(t, 2, 2, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	if _, err := fed.RunJob(JobSpec{
		Name: "ids", BinaryBytes: 128 << 10, Nodes: 4, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}); err != nil {
		t.Fatal(err)
	}
	// Each NM holds the image under its own leaf's job ID, inside that
	// partition's base range.
	for _, nm := range nms {
		part := nm.Node() / 2
		want := fedJobBase(part) + 1
		if _, ok := nm.ImageDigest(want); !ok {
			t.Fatalf("node %d (partition %d) has no image for job %d", nm.Node(), part, want)
		}
	}
	// Clashing bases are a construction error, not a latent collision.
	if _, err := NewFederation("127.0.0.1:0", FedConfig{}, []*MM{mms[0], mms[0]}); err == nil {
		t.Fatal("duplicate JobBase must be rejected")
	}
}

// TestFederationStatusFold checks that per-partition snapshots fold up
// to one cluster view, over both the typed API and the wire StatusQ a
// plain client sends.
func TestFederationStatusFold(t *testing.T) {
	fed, _, _, _ := fedCluster(t, 3, 2, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	if _, err := fed.RunJob(JobSpec{
		Name: "st", BinaryBytes: 64 << 10, Nodes: 6, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}); err != nil {
		t.Fatal(err)
	}
	st := fed.Status()
	if st.Partitions != 3 || st.Nodes != 6 || st.Launched != 1 || st.Completed != 1 {
		t.Fatalf("folded status: %+v", st)
	}
	wire, err := QueryStatus(fed.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(wire.Nodes) != 6 || wire.Completed != 1 {
		t.Fatalf("wire status: %+v", wire)
	}
	for i, n := range wire.Nodes {
		if n != i {
			t.Fatalf("folded node set not ascending globals: %v", wire.Nodes)
		}
	}
}

// TestFederationDeterministicPick checks satellite determinism one
// level up: on an idle federation the partition pick is a pure function
// of (load, partition ID), so back-to-back identical jobs land on the
// same partitions every time.
func TestFederationDeterministicPick(t *testing.T) {
	fed, _, _, _ := fedCluster(t, 3, 2, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	var first string
	for i := 0; i < 3; i++ {
		rep, err := fed.RunJob(JobSpec{
			Name: "det", BinaryBytes: 64 << 10, Nodes: 3, PEsPerNode: 1,
			Program: ProgramSpec{Kind: "exit"},
		})
		if err != nil {
			t.Fatal(err)
		}
		pick := rep.Timeline[strings.Index(rep.Timeline, "partitions="):]
		pick = pick[:strings.Index(pick, " ")]
		if first == "" {
			first = pick
		} else if pick != first {
			t.Fatalf("run %d picked %s, run 0 picked %s — partition pick must be deterministic", i, pick, first)
		}
	}
	if first != "partitions=[0,1]" {
		t.Fatalf("idle 3x2 federation, 3-node job: want fill-from-partition-0 spill to 1, got %s", first)
	}
}

// TestFederationCapacity checks that a job exceeding the whole cluster
// is refused with the partition-aware error, not hung.
func TestFederationCapacity(t *testing.T) {
	fed, _, _, _ := fedCluster(t, 2, 2, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	_, err := fed.RunJob(JobSpec{
		Name: "big", BinaryBytes: 64 << 10, Nodes: 5, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	})
	if err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("want capacity error naming partitions, got %v", err)
	}
}

// TestFederationTeardown checks the whole two-level stack — root, hub,
// leaves, NMs — returns the process to its goroutine baseline, using
// the shared testutil helper the 512-NM runs rely on.
func TestFederationTeardown(t *testing.T) {
	base := runtime.NumGoroutine()
	fed, _, _, shutdown := fedCluster(t, 2, 4, FedConfig{Lite: true}, MMConfig{Fanout: 2}, nil)
	if _, err := SubmitJob(fed.Addr(), JobSpec{
		Name: "bye", BinaryBytes: 64 << 10, Nodes: 8, PEsPerNode: 1,
		Program: ProgramSpec{Kind: "exit"},
	}); err != nil {
		t.Fatal(err)
	}
	shutdown()
	testutil.WaitForGoroutines(t, base, 5*time.Second)
}
