package livenet

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"
)

// pipeConns returns two framed conns joined by an in-memory pipe.
func pipeConns(t *testing.T) (*conn, *conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	t.Cleanup(func() { ca.close(); cb.close() })
	return ca, cb
}

// TestFrameRoundTripControl: control messages survive the gob frame.
func TestFrameRoundTripControl(t *testing.T) {
	ca, cb := pipeConns(t)
	go func() {
		ca.send(Message{Register: &Register{Node: 3, CPUs: 4, Addr: "127.0.0.1:99"}})
		ca.send(Message{Plan: &Plan{Job: 7, Frags: 5, Fanout: 2, Stripes: 2,
			Children: [][]ChildRef{
				{{Node: 1, Addr: "a"}, {Node: 2, Addr: "b"}},
				{{Node: 3, Addr: "c"}},
			}}})
	}()
	m, err := cb.recv()
	if err != nil || m.Register == nil || m.Register.Node != 3 || m.Register.Addr != "127.0.0.1:99" {
		t.Fatalf("register round trip: %+v, %v", m, err)
	}
	m, err = cb.recv()
	if err != nil || m.Plan == nil || m.Plan.Job != 7 || m.Plan.Stripes != 2 ||
		len(m.Plan.Children) != 2 || len(m.Plan.Children[0]) != 2 || m.Plan.Children[0][1].Addr != "b" ||
		m.Plan.Children[1][0].Node != 3 {
		t.Fatalf("plan round trip: %+v, %v", m, err)
	}
}

// TestFrameRoundTripFrag: the binary fragment frame carries payload,
// CRC, and flags intact, and the receive buffer is pooled.
func TestFrameRoundTripFrag(t *testing.T) {
	ca, cb := pipeConns(t)
	data := fragPattern(7, 3, 1234)
	go ca.sendFrag(&Frag{Job: 7, Index: 3, Last: true, Data: data, CRC: fragCRC(data)})
	m, err := cb.recv()
	if err != nil || m.Frag == nil {
		t.Fatalf("frag round trip: %v", err)
	}
	f := m.Frag
	if f.Job != 7 || f.Index != 3 || !f.Last || len(f.Data) != 1234 {
		t.Fatalf("frag header mangled: %+v", f)
	}
	if fragCRC(f.Data) != f.CRC || !fragPatternCheck(f.Job, f.Index, f.Data) {
		t.Fatal("frag payload mangled")
	}
	releaseFragBuf(f.Data)
}

// TestFrameRoundTripAck: the fixed ack frame, OK and not.
func TestFrameRoundTripAck(t *testing.T) {
	ca, cb := pipeConns(t)
	go func() {
		ca.sendAck(&FragAck{Job: 9, Index: 41, Node: 6, OK: true})
		ca.sendAck(&FragAck{Job: 9, Index: 2, Node: 5, OK: false})
	}()
	m, err := cb.recv()
	if err != nil || m.FragAck == nil || !m.FragAck.OK || m.FragAck.Index != 41 || m.FragAck.Node != 6 {
		t.Fatalf("ack round trip: %+v, %v", m, err)
	}
	m, err = cb.recv()
	if err != nil || m.FragAck == nil || m.FragAck.OK || m.FragAck.Node != 5 {
		t.Fatalf("nack round trip: %+v, %v", m, err)
	}
}

// TestFrameInterleaving: bulk frames and control frames share a link
// without corrupting each other.
func TestFrameInterleaving(t *testing.T) {
	ca, cb := pipeConns(t)
	data := fragPattern(1, 0, 4096)
	go func() {
		ca.send(Message{Ping: &Ping{Seq: 1}})
		ca.sendFrag(&Frag{Job: 1, Index: 0, Data: data, CRC: fragCRC(data)})
		ca.sendAck(&FragAck{Job: 1, Index: 0, Node: 2, OK: true})
		ca.send(Message{Strobe: &Strobe{Row: 1}})
	}()
	wantKinds := []string{"ping", "frag", "ack", "strobe"}
	for _, want := range wantKinds {
		m, err := cb.recv()
		if err != nil {
			t.Fatalf("awaiting %s: %v", want, err)
		}
		switch want {
		case "ping":
			if m.Ping == nil {
				t.Fatalf("want ping, got %+v", m)
			}
		case "frag":
			if m.Frag == nil || !fragPatternCheck(1, 0, m.Frag.Data) {
				t.Fatalf("want frag, got %+v", m)
			}
			releaseFragBuf(m.Frag.Data)
		case "ack":
			if m.FragAck == nil {
				t.Fatalf("want ack, got %+v", m)
			}
		case "strobe":
			if m.Strobe == nil || m.Strobe.Row != 1 {
				t.Fatalf("want strobe, got %+v", m)
			}
		}
	}
}

// discardConn builds a conn whose writes go nowhere, for alloc
// accounting of the send path.
func discardConn() *conn {
	return &conn{w: bufio.NewWriterSize(io.Discard, 64<<10)}
}

// TestFragCheckAllocs pins the NM's per-fragment verification — CRC plus
// in-place pattern check — at zero allocations, and the single-encode
// fragment send path at zero allocations per destination.
func TestFragCheckAllocs(t *testing.T) {
	data := fragPattern(5, 11, 256<<10)
	crc := fragCRC(data)
	if avg := testing.AllocsPerRun(100, func() {
		if fragCRC(data) != crc || !fragPatternCheck(5, 11, data) {
			t.Fatal("verification failed")
		}
	}); avg != 0 {
		t.Fatalf("fragment verification allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		fragPatternInto(data, 5, 11)
	}); avg != 0 {
		t.Fatalf("fragPatternInto allocates %.1f/op, want 0", avg)
	}
	c := discardConn()
	f := &Frag{Job: 5, Index: 11, Data: data, CRC: crc}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.sendFrag(f); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("sendFrag allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.sendAck(&FragAck{Job: 5, Index: 11, Node: 1, OK: true}); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("sendAck allocates %.1f/op, want <= 1", avg)
	}
}

// TestFragBufPoolReuse: receive buffers cycle through the pool.
func TestFragBufPoolReuse(t *testing.T) {
	b := grabFragBuf(1 << 20)
	releaseFragBuf(b)
	b2 := grabFragBuf(64 << 10)
	if cap(b2) < 64<<10 {
		t.Fatalf("pooled buffer too small: %d", cap(b2))
	}
	releaseFragBuf(b2)
}

// TestConnSentBytes: the egress counter sees frame and payload bytes.
func TestConnSentBytes(t *testing.T) {
	ca, cb := pipeConns(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			m, err := cb.recv()
			if err != nil {
				return
			}
			if m.Frag != nil {
				releaseFragBuf(m.Frag.Data)
			}
		}
	}()
	data := fragPattern(1, 0, 1000)
	if err := ca.sendFrag(&Frag{Job: 1, Index: 0, Data: data, CRC: fragCRC(data)}); err != nil {
		t.Fatal(err)
	}
	if err := ca.sendAck(&FragAck{Job: 1, Index: 0, Node: 0, OK: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stuck")
	}
	want := int64(1+fragHdrLen+1000) + int64(1+ackHdrLen)
	if got := ca.sentBytes(); got != want {
		t.Fatalf("sentBytes = %d, want %d", got, want)
	}
}
