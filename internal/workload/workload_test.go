package workload

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/nodeos"
	"repro/internal/sim"
)

// runSolo executes a program as a single process on a dedicated CPU with
// no contention and returns its wall time.
func runSolo(t *testing.T, prog job.Program) sim.Time {
	t.Helper()
	env := sim.NewEnv()
	cfg := nodeos.DefaultConfig()
	cfg.NoiseMeanInterval = 0
	n := nodeos.New(env, 0, cfg, 1)
	var end sim.Time
	env.Spawn("app", func(p *sim.Proc) {
		th := nodeos.NewThread(n.CPU(0), "app")
		th.SetActive(true)
		ctx := &job.ProcessCtx{
			Job:     &job.Job{NodesWanted: 1, PEsPerNode: 1},
			Thread:  th,
			Barrier: func(*sim.Proc) {},
			SendTo:  func(*sim.Proc, int, int64) {},
		}
		prog.Run(p, ctx)
		end = p.Now()
	})
	env.Run()
	return end
}

func TestDefaultSweep3DRuntimeNearPaper(t *testing.T) {
	// One instance should take ~48-49 s of CPU (the paper's ~49 s point).
	got := DefaultSweep3D().TotalComputeSeconds()
	if got < 45 || got > 52 {
		t.Fatalf("SWEEP3D per-PE compute = %.1fs, want ~48", got)
	}
}

func TestScaledSweep3D(t *testing.T) {
	s := ScaledSweep3D(4)
	if got := s.TotalComputeSeconds(); math.Abs(got-4) > 0.01 {
		t.Fatalf("scaled total = %.2fs, want 4", got)
	}
	wall := runSolo(t, s)
	if wall.Seconds() < 3.9 || wall.Seconds() > 4.2 {
		t.Fatalf("scaled SWEEP3D solo wall = %.2fs, want ~4", wall.Seconds())
	}
}

func TestSyntheticRuntime(t *testing.T) {
	s := Synthetic{Total: 2 * sim.Second, BarrierEvery: 100 * sim.Millisecond}
	wall := runSolo(t, s)
	if wall.Seconds() < 1.99 || wall.Seconds() > 2.1 {
		t.Fatalf("synthetic wall = %.3fs, want ~2", wall.Seconds())
	}
}

func TestSyntheticWithoutBarriers(t *testing.T) {
	s := Synthetic{Total: sim.Second}
	if wall := runSolo(t, s); wall != sim.Second {
		t.Fatalf("barrier-free synthetic wall = %v, want exactly 1s", wall)
	}
}

func TestSpinLoopConsumesFullDuration(t *testing.T) {
	if wall := runSolo(t, SpinLoop{Duration: 500 * sim.Millisecond}); wall != 500*sim.Millisecond {
		t.Fatalf("spin wall = %v", wall)
	}
}

func TestPingPongUnpairedRankSpins(t *testing.T) {
	// With a single process, rank 0's peer (1) does not exist.
	wall := runSolo(t, PingPong{Duration: 100 * sim.Millisecond})
	if wall != 100*sim.Millisecond {
		t.Fatalf("unpaired ping-pong wall = %v", wall)
	}
}

func TestPingPongSendsMessages(t *testing.T) {
	env := sim.NewEnv()
	cfg := nodeos.DefaultConfig()
	cfg.NoiseMeanInterval = 0
	n := nodeos.New(env, 0, cfg, 1)
	sends := 0
	env.Spawn("app", func(p *sim.Proc) {
		th := nodeos.NewThread(n.CPU(0), "app")
		th.SetActive(true)
		ctx := &job.ProcessCtx{
			Job:     &job.Job{NodesWanted: 2, PEsPerNode: 1},
			Rank:    0,
			Thread:  th,
			Barrier: func(*sim.Proc) {},
			SendTo: func(sp *sim.Proc, peer int, bytes int64) {
				if peer != 1 {
					t.Errorf("rank 0 sent to %d, want 1", peer)
				}
				sends++
				sp.Wait(100 * sim.Microsecond)
			},
		}
		PingPong{Duration: 10 * sim.Millisecond, MsgBytes: 1024}.Run(p, ctx)
	})
	env.Run()
	if sends < 10 {
		t.Fatalf("ping-pong sent only %d messages in 10ms", sends)
	}
}

func TestSweep3DCommunicates(t *testing.T) {
	env := sim.NewEnv()
	cfg := nodeos.DefaultConfig()
	cfg.NoiseMeanInterval = 0
	n := nodeos.New(env, 0, cfg, 1)
	sends, barriers := 0, 0
	sw := ScaledSweep3D(0.1)
	env.Spawn("app", func(p *sim.Proc) {
		th := nodeos.NewThread(n.CPU(0), "app")
		th.SetActive(true)
		ctx := &job.ProcessCtx{
			Job:     &job.Job{NodesWanted: 4, PEsPerNode: 1},
			Rank:    0,
			Thread:  th,
			Barrier: func(*sim.Proc) { barriers++ },
			SendTo:  func(*sim.Proc, int, int64) { sends++ },
		}
		sw.Run(p, ctx)
	})
	env.Run()
	wantStages := sw.Iterations * sw.SweepsPerIter
	if barriers != wantStages {
		t.Fatalf("barriers = %d, want %d", barriers, wantStages)
	}
	if sends != wantStages {
		t.Fatalf("sends = %d, want %d", sends, wantStages)
	}
}

func TestDefaultSynthetic(t *testing.T) {
	s := DefaultSynthetic()
	if s.Total != 20*sim.Second || s.BarrierEvery != sim.Second {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestImbalancedMeanWork(t *testing.T) {
	// The lognormal normalization keeps the mean per-iteration work near
	// MeanIter; check the solo wall time lands near Iters*MeanIter.
	prog := Imbalanced{MeanIter: 10 * sim.Millisecond, Iters: 200, Sigma: 0.6}
	wall := runSolo(t, prog).Seconds()
	if wall < 1.5 || wall > 2.6 {
		t.Fatalf("imbalanced solo wall = %.2fs, want ~2s", wall)
	}
}

func TestImbalancedWithoutRngFallsBack(t *testing.T) {
	prog := Imbalanced{MeanIter: 10 * sim.Millisecond, Iters: 5}
	if wall := runSolo(t, prog); wall <= 0 {
		t.Fatal("no progress without an RNG")
	}
}
