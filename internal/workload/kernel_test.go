package workload

import (
	"math"
	"testing"
)

func TestSweepKernelClampsTinyGrids(t *testing.T) {
	k := NewSweepKernel(0, 1, -3)
	if k.NX < 2 || k.NY < 2 || k.NZ < 2 {
		t.Fatalf("grid not clamped: %dx%dx%d", k.NX, k.NY, k.NZ)
	}
	k.Sweep() // must not panic
}

func TestSweepKernelProgresses(t *testing.T) {
	k := NewSweepKernel(16, 16, 16)
	first := k.Sweep()
	if first <= 0 {
		t.Fatalf("first sweep average = %v, want > 0", first)
	}
	second := k.Sweep()
	// With a constant source and absorption, flux grows toward a fixed
	// point: successive sweeps increase the average.
	if second <= first {
		t.Fatalf("flux did not grow: %v -> %v", first, second)
	}
}

func TestSweepKernelConverges(t *testing.T) {
	k := NewSweepKernel(12, 12, 12)
	prev := 0.0
	var delta float64
	for i := 0; i < 60; i++ {
		cur := k.Sweep()
		delta = math.Abs(cur - prev)
		prev = cur
	}
	if delta > 1e-6 {
		t.Fatalf("kernel did not converge: last delta %v", delta)
	}
	if math.IsNaN(prev) || math.IsInf(prev, 0) {
		t.Fatalf("flux diverged: %v", prev)
	}
}

func TestSweepKernelDeterministic(t *testing.T) {
	a := NewSweepKernel(10, 10, 10).Run(20)
	b := NewSweepKernel(10, 10, 10).Run(20)
	if a != b {
		t.Fatalf("kernel not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkSweepKernel(b *testing.B) {
	k := NewSweepKernel(32, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Sweep()
	}
}
