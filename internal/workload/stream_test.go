package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGenerateStreamBasics(t *testing.T) {
	cfg := DefaultStreamConfig(16)
	jobs := GenerateStream(cfg)
	if len(jobs) != cfg.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(jobs), cfg.Jobs)
	}
	var prev sim.Time
	for i, j := range jobs {
		if j.Submit < prev {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		prev = j.Submit
		if j.Nodes < 1 || j.Nodes > 16 {
			t.Fatalf("job %d width %d out of [1,16]", i, j.Nodes)
		}
		if j.Runtime < sim.Millisecond {
			t.Fatalf("job %d runtime too small: %v", i, j.Runtime)
		}
		if j.Est < j.Runtime {
			t.Fatalf("job %d estimate %v below runtime %v", i, j.Est, j.Runtime)
		}
		if j.Est > 3*j.Runtime+sim.Millisecond {
			t.Fatalf("job %d estimate %v beyond factor 3 of %v", i, j.Est, j.Runtime)
		}
	}
}

func TestGenerateStreamDeterministic(t *testing.T) {
	cfg := DefaultStreamConfig(8)
	a, b := GenerateStream(cfg), GenerateStream(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at job %d", i)
		}
	}
	cfg.Seed = 2
	c := GenerateStream(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateStreamProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, width uint8) bool {
		maxNodes := 1 << (seed % 6) // 1..32
		cfg := DefaultStreamConfig(maxNodes)
		cfg.Seed = seed
		cfg.Jobs = 30
		for _, j := range GenerateStream(cfg) {
			if j.Nodes < 1 || j.Nodes > maxNodes || j.Est < j.Runtime || j.Submit < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateStreamDegenerate(t *testing.T) {
	if got := GenerateStream(StreamConfig{}); got != nil {
		t.Fatalf("empty config produced %d jobs", len(got))
	}
}

func TestSummarize(t *testing.T) {
	jobs := []StreamJob{
		{Submit: sim.Second, Nodes: 2, Runtime: 2 * sim.Second},
		{Submit: 3 * sim.Second, Nodes: 4, Runtime: sim.Second},
	}
	st := Summarize(jobs)
	if st.Jobs != 2 || st.MeanNodes != 3 || st.MeanRuntimeS != 1.5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalWorkNode != 8 || st.SpanS != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if z := Summarize(nil); z.Jobs != 0 {
		t.Fatal("empty summary wrong")
	}
}
