package workload

// This file contains a real (non-simulated) serial sweep kernel used by
// the live-mode dæmons: a miniature of SWEEP3D's inner loop — a wavefront
// update over a 3-D grid in discrete-ordinates style. It exists so the
// live cluster demonstrably executes genuine floating-point work rather
// than sleeping.

// SweepKernel is an in-memory wavefront solver over an NX×NY×NZ grid.
type SweepKernel struct {
	NX, NY, NZ int
	flux       []float64
	src        []float64
}

// NewSweepKernel allocates a kernel over the given grid (minimum 2 in
// each dimension).
func NewSweepKernel(nx, ny, nz int) *SweepKernel {
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	if nz < 2 {
		nz = 2
	}
	k := &SweepKernel{NX: nx, NY: ny, NZ: nz}
	n := nx * ny * nz
	k.flux = make([]float64, n)
	k.src = make([]float64, n)
	for i := range k.src {
		k.src[i] = 1.0
	}
	return k
}

func (k *SweepKernel) idx(x, y, z int) int {
	return (z*k.NY+y)*k.NX + x
}

// Sweep performs one source iteration: a full wavefront pass in the
// (+x,+y,+z) octant — each cell's flux updated from its upwind
// neighbours, exactly the data dependence that makes SWEEP3D a pipelined
// wavefront code — followed by the scattering-source update that couples
// successive iterations (SWEEP3D's outer source iteration). It returns
// the grid-average flux, so the computation cannot be dead-code
// eliminated and tests can check convergence.
func (k *SweepKernel) Sweep() float64 {
	const (
		sigma   = 0.5 // total cross-section
		scatter = 0.3 // scattering ratio (< sigma: convergent)
	)
	sum := 0.0
	for z := 1; z < k.NZ; z++ {
		for y := 1; y < k.NY; y++ {
			for x := 1; x < k.NX; x++ {
				upwind := (k.flux[k.idx(x-1, y, z)] +
					k.flux[k.idx(x, y-1, z)] +
					k.flux[k.idx(x, y, z-1)]) / 3.0
				v := (k.src[k.idx(x, y, z)] + upwind) / (1.0 + sigma)
				k.flux[k.idx(x, y, z)] = v
				sum += v
			}
		}
	}
	// Scattering source for the next iteration.
	for i, f := range k.flux {
		k.src[i] = 1.0 + scatter*f
	}
	return sum / float64((k.NX-1)*(k.NY-1)*(k.NZ-1))
}

// Run performs iters sweeps and returns the final average flux.
func (k *SweepKernel) Run(iters int) float64 {
	var avg float64
	for i := 0; i < iters; i++ {
		avg = k.Sweep()
	}
	return avg
}
