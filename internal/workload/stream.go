package workload

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
)

// This file generates synthetic job streams for scheduler evaluation —
// the "common set of workloads" on which the paper argues STORM enables
// fair comparisons of scheduling algorithms (§5.2). The shape follows
// the classic parallel-workload findings Feitelson's archive codified:
// Poisson arrivals, power-of-two-biased job widths, heavy-tailed
// (lognormal) runtimes, and loose user runtime estimates.

// StreamConfig parameterizes a job stream.
type StreamConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// MeanInterarrival is the mean of the exponential arrival gaps.
	MeanInterarrival sim.Time
	// MaxNodes bounds job widths; widths are drawn log-uniformly in
	// [1, MaxNodes] and snapped to powers of two with probability
	// PowerOfTwoBias.
	MaxNodes       int
	PowerOfTwoBias float64
	// MedianRuntime and RuntimeSigma shape the lognormal runtimes.
	MedianRuntime sim.Time
	RuntimeSigma  float64
	// EstimateFactor inflates user estimates: est = runtime × U(1, F).
	// Values below 1 are treated as exact estimates.
	EstimateFactor float64
	// PEsPerNode is the per-node process count for every job.
	PEsPerNode int
	// Seed drives generation.
	Seed uint64
}

// DefaultStreamConfig returns a moderate 50-job stream for a machine of
// the given width.
func DefaultStreamConfig(maxNodes int) StreamConfig {
	return StreamConfig{
		Jobs:             50,
		MeanInterarrival: 400 * sim.Millisecond,
		MaxNodes:         maxNodes,
		PowerOfTwoBias:   0.75,
		MedianRuntime:    2 * sim.Second,
		RuntimeSigma:     0.9,
		EstimateFactor:   3,
		PEsPerNode:       1,
		Seed:             1,
	}
}

// StreamJob is one generated job description.
type StreamJob struct {
	Submit  sim.Time
	Nodes   int
	Runtime sim.Time
	Est     sim.Time
}

// GenerateStream produces a deterministic job stream for the config.
func GenerateStream(cfg StreamConfig) []StreamJob {
	if cfg.Jobs <= 0 || cfg.MaxNodes <= 0 {
		return nil
	}
	r := rng.New(cfg.Seed)
	jobs := make([]StreamJob, 0, cfg.Jobs)
	now := sim.Time(0)
	maxLg := math.Log2(float64(cfg.MaxNodes))
	for i := 0; i < cfg.Jobs; i++ {
		now += sim.FromSeconds(r.Exp(cfg.MeanInterarrival.Seconds()))
		// Width: log-uniform, optionally snapped to a power of two.
		w := int(math.Floor(math.Pow(2, r.Uniform(0, maxLg+1e-9))))
		if w < 1 {
			w = 1
		}
		if w > cfg.MaxNodes {
			w = cfg.MaxNodes
		}
		if r.Float64() < cfg.PowerOfTwoBias {
			w = 1 << int(math.Round(math.Log2(float64(w))))
			if w > cfg.MaxNodes {
				w = cfg.MaxNodes
			}
		}
		// Runtime: lognormal around the median.
		rt := sim.FromSeconds(cfg.MedianRuntime.Seconds() * r.LogNormal(0, cfg.RuntimeSigma))
		if rt < sim.Millisecond {
			rt = sim.Millisecond
		}
		est := rt
		if cfg.EstimateFactor > 1 {
			est = sim.FromSeconds(rt.Seconds() * r.Uniform(1, cfg.EstimateFactor))
		}
		jobs = append(jobs, StreamJob{Submit: now, Nodes: w, Runtime: rt, Est: est})
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	return jobs
}

// StreamStats summarizes a stream (for tests and reports).
type StreamStats struct {
	Jobs          int
	MeanNodes     float64
	MeanRuntimeS  float64
	TotalWorkNode float64 // node-seconds of demand
	SpanS         float64 // last arrival time
}

// Summarize computes stream statistics.
func Summarize(jobs []StreamJob) StreamStats {
	st := StreamStats{Jobs: len(jobs)}
	if len(jobs) == 0 {
		return st
	}
	for _, j := range jobs {
		st.MeanNodes += float64(j.Nodes)
		st.MeanRuntimeS += j.Runtime.Seconds()
		st.TotalWorkNode += float64(j.Nodes) * j.Runtime.Seconds()
	}
	st.MeanNodes /= float64(len(jobs))
	st.MeanRuntimeS /= float64(len(jobs))
	st.SpanS = jobs[len(jobs)-1].Submit.Seconds()
	return st
}
