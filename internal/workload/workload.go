// Package workload implements the application models of the paper's
// evaluation (§3.2):
//
//   - SWEEP3D, the ASCI deterministic particle-transport code: a
//     wavefront (KBA) computation — pipelined sweeps across a 2-D
//     processor grid with nearest-neighbour communication and poor memory
//     locality (which is why timesharing two instances costs nothing,
//     paper footnote 4).
//
//   - A synthetic CPU-intensive computation: pure compute with periodic
//     gang barriers.
//
//   - The two loaders of §3.1.2: a spin-loop CPU hog and a
//     message-ping-pong network hog (the System-level loaders live in
//     internal/storm; the programs here are the job-shaped equivalents).
//
// A real (non-simulated) serial sweep kernel is in kernel.go for the
// live-mode examples; the types here model timing for the simulator.
package workload

import (
	"math"

	"repro/internal/job"
	"repro/internal/sim"
)

// Sweep3D models the SWEEP3D wavefront computation. The paper runs it so
// that one instance takes ~49 s on 32 nodes / 64 PEs; per-PE work is
// fixed (weak scaling), so runtime is node-count independent (its
// Fig. 5).
type Sweep3D struct {
	// Iterations is the number of outer (source/flux) iterations.
	Iterations int
	// SweepsPerIter is the number of wavefront sweeps (octant pairs) per
	// outer iteration.
	SweepsPerIter int
	// CellCompute is the CPU time per PE per sweep stage.
	CellCompute sim.Time
	// MsgBytes is the boundary-exchange message size between neighbours.
	MsgBytes int64
}

// DefaultSweep3D returns a configuration whose single-instance runtime is
// close to the paper's ~49 s (observed run time divided by MPL in its
// Fig. 4: the annotated point is (2 ms, 49 s)).
func DefaultSweep3D() Sweep3D {
	return Sweep3D{
		Iterations:    12,
		SweepsPerIter: 8,
		CellCompute:   500 * sim.Millisecond,
		MsgBytes:      64 << 10,
	}
}

// ScaledSweep3D returns a SWEEP3D model whose total runtime is scaled to
// approximately the given seconds (for fast tests and quick experiment
// runs).
func ScaledSweep3D(seconds float64) Sweep3D {
	s := DefaultSweep3D()
	total := float64(s.Iterations*s.SweepsPerIter) * s.CellCompute.Seconds()
	s.CellCompute = sim.FromSeconds(s.CellCompute.Seconds() * seconds / total)
	return s
}

// TotalComputeSeconds returns the per-PE CPU demand of one instance.
func (s Sweep3D) TotalComputeSeconds() float64 {
	return float64(s.Iterations*s.SweepsPerIter) * s.CellCompute.Seconds()
}

// Run implements job.Program. Each sweep consists of the local cell work,
// a boundary exchange with the pipeline successor, and (at sweep end) a
// gang-wide synchronization — the communication pattern that makes
// SWEEP3D coscheduling-sensitive.
func (s Sweep3D) Run(p *sim.Proc, ctx *job.ProcessCtx) {
	size := ctx.Job.Processes()
	for it := 0; it < s.Iterations; it++ {
		for sw := 0; sw < s.SweepsPerIter; sw++ {
			// Pipelined wavefront: the rank's position in the sweep order
			// staggers its start; the stagger is hidden by the pipeline
			// except at the edges, so we model the local stage as compute
			// + neighbour exchange.
			ctx.Thread.Consume(p, s.CellCompute)
			if next := ctx.Rank + 1; next < size {
				ctx.SendTo(p, next, s.MsgBytes)
			}
			// Octant boundary: global flux synchronization.
			ctx.Barrier(p)
		}
	}
}

// Synthetic is the paper's synthetic CPU-intensive job: Total CPU seconds
// of pure computation per PE, with a gang barrier every BarrierEvery to
// keep the gang honest (zero disables barriers entirely).
type Synthetic struct {
	Total        sim.Time
	BarrierEvery sim.Time
}

// DefaultSynthetic returns a ~20 s synthetic computation.
func DefaultSynthetic() Synthetic {
	return Synthetic{Total: 20 * sim.Second, BarrierEvery: sim.Second}
}

// Run implements job.Program.
func (s Synthetic) Run(p *sim.Proc, ctx *job.ProcessCtx) {
	if s.BarrierEvery <= 0 || s.BarrierEvery >= s.Total {
		ctx.Thread.Consume(p, s.Total)
		return
	}
	steps := int(math.Ceil(float64(s.Total) / float64(s.BarrierEvery)))
	per := sim.Time(int64(s.Total) / int64(steps))
	for i := 0; i < steps; i++ {
		ctx.Thread.Consume(p, per)
		ctx.Barrier(p)
	}
}

// Imbalanced is a bulk-synchronous application with internal load
// imbalance: each rank's per-iteration compute is drawn lognormally, so
// fast ranks idle at every barrier waiting for the slowest — the
// resource-waste pattern the paper's conclusions blame on space sharing
// ("large jobs frequently suffer from internal load imbalance", §6).
// Uncoordinated policies (implicit coscheduling) can fill those idle
// cycles with another job's work.
type Imbalanced struct {
	// MeanIter is the mean per-rank compute per iteration.
	MeanIter sim.Time
	// Iters is the number of barrier-terminated iterations.
	Iters int
	// Sigma is the lognormal spread of per-rank, per-iteration work.
	Sigma float64
}

// Run implements job.Program.
func (im Imbalanced) Run(p *sim.Proc, ctx *job.ProcessCtx) {
	sigma := im.Sigma
	if sigma <= 0 {
		sigma = 0.5
	}
	// exp(-sigma^2/2) normalizes the lognormal so the mean stays MeanIter.
	norm := math.Exp(-sigma * sigma / 2)
	for i := 0; i < im.Iters; i++ {
		f := norm
		if ctx.Rnd != nil {
			f = ctx.Rnd.LogNormal(0, sigma) * norm
		}
		ctx.Thread.Consume(p, sim.FromSeconds(im.MeanIter.Seconds()*f))
		ctx.Barrier(p)
	}
}

// SpinLoop is the CPU loader of §3.1.2 as a job program: it burns CPU
// until Duration elapses (never yielding voluntarily).
type SpinLoop struct {
	Duration sim.Time
}

// Run implements job.Program.
func (s SpinLoop) Run(p *sim.Proc, ctx *job.ProcessCtx) {
	ctx.Thread.Consume(p, s.Duration)
}

// PingPong is the network loader of §3.1.2 as a job program: pairs of
// ranks exchange messages continuously for Duration.
type PingPong struct {
	Duration sim.Time
	MsgBytes int64
}

// Run implements job.Program.
func (pp PingPong) Run(p *sim.Proc, ctx *job.ProcessCtx) {
	peer := ctx.Rank ^ 1
	if peer >= ctx.Job.Processes() {
		// Odd rank count: the unpaired rank just spins.
		ctx.Thread.Consume(p, pp.Duration)
		return
	}
	deadline := p.Now() + pp.Duration
	bytes := pp.MsgBytes
	if bytes <= 0 {
		bytes = 64 << 10
	}
	for p.Now() < deadline {
		ctx.SendTo(p, peer, bytes)
		ctx.Thread.Consume(p, 50*sim.Microsecond)
	}
}
