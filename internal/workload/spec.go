package workload

import (
	"encoding/json"
	"fmt"

	"repro/internal/job"
	"repro/internal/sim"
)

// This file defines the JSON workload-specification format consumed by
// `stormsim replay`: a portable description of a job stream that can be
// run under any scheduling policy on the simulated cluster.
//
// Example:
//
//	{
//	  "jobs": [
//	    {"name": "hog",  "submit_s": 0,   "nodes": 8, "pes_per_node": 2,
//	     "binary_mb": 12, "program": {"kind": "synthetic", "seconds": 30}},
//	    {"name": "quick","submit_s": 2.5, "nodes": 2, "pes_per_node": 1,
//	     "binary_mb": 2,  "program": {"kind": "sweep3d", "seconds": 5},
//	     "est_s": 6, "priority": 1}
//	  ]
//	}

// Spec is a portable workload description.
type Spec struct {
	// Jobs in submission order (re-sorted by SubmitS at load).
	Jobs []JobSpec `json:"jobs"`
}

// JobSpec is one job in a workload file.
type JobSpec struct {
	Name       string      `json:"name"`
	SubmitS    float64     `json:"submit_s"`
	Nodes      int         `json:"nodes"`
	PEsPerNode int         `json:"pes_per_node"`
	BinaryMB   float64     `json:"binary_mb"`
	Program    ProgramSpec `json:"program"`
	EstS       float64     `json:"est_s"`
	Priority   int         `json:"priority"`
}

// ProgramSpec selects a per-process behavior by name.
type ProgramSpec struct {
	// Kind is "donothing", "synthetic", "sweep3d", "imbalanced",
	// "spin", or "pingpong".
	Kind string `json:"kind"`
	// Seconds scales the program's total demand (per PE).
	Seconds float64 `json:"seconds"`
	// Iters is the iteration count for iterative kinds (default 50).
	Iters int `json:"iters"`
	// Sigma is the imbalance spread (imbalanced kind).
	Sigma float64 `json:"sigma"`
}

// ParseSpec decodes and validates a workload file.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if len(s.Jobs) == 0 {
		return nil, fmt.Errorf("workload: spec has no jobs")
	}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if j.Name == "" {
			j.Name = fmt.Sprintf("job%d", i+1)
		}
		if j.Nodes <= 0 {
			return nil, fmt.Errorf("workload: job %q: nodes must be positive", j.Name)
		}
		if j.PEsPerNode <= 0 {
			j.PEsPerNode = 1
		}
		if j.BinaryMB <= 0 {
			j.BinaryMB = 12
		}
		if j.SubmitS < 0 {
			return nil, fmt.Errorf("workload: job %q: negative submit time", j.Name)
		}
		if _, err := j.Program.Build(); err != nil {
			return nil, fmt.Errorf("workload: job %q: %w", j.Name, err)
		}
	}
	return &s, nil
}

// Build instantiates the program behavior a spec names.
func (ps ProgramSpec) Build() (job.Program, error) {
	secs := ps.Seconds
	if secs <= 0 {
		secs = 1
	}
	iters := ps.Iters
	if iters <= 0 {
		iters = 50
	}
	switch ps.Kind {
	case "", "donothing", "exit":
		return job.DoNothing{}, nil
	case "synthetic":
		return Synthetic{
			Total:        sim.FromSeconds(secs),
			BarrierEvery: sim.FromSeconds(secs / float64(iters)),
		}, nil
	case "sweep3d":
		return ScaledSweep3D(secs), nil
	case "imbalanced":
		return Imbalanced{
			MeanIter: sim.FromSeconds(secs / float64(iters)),
			Iters:    iters,
			Sigma:    ps.Sigma,
		}, nil
	case "spin":
		return SpinLoop{Duration: sim.FromSeconds(secs)}, nil
	case "pingpong":
		return PingPong{Duration: sim.FromSeconds(secs)}, nil
	default:
		return nil, fmt.Errorf("unknown program kind %q", ps.Kind)
	}
}
