// Package fsim models the three file systems the STORM paper reads
// binaries from (paper Fig. 6): NFS over the cluster network, a local
// ext2 disk, and a local RAM disk. Bandwidths are calibrated to the
// paper's measurements of a 12 MB read on the ES40:
//
//	                 into main memory   into NIC memory
//	NFS                    11.4 MB/s         11.2 MB/s
//	Local disk (ext2)      31.5 MB/s         30.5 MB/s
//	RAM disk (ext2)       218   MB/s        120   MB/s
//
// Reads into NIC memory are slower only for the RAM disk, where the PCI
// bus and the NIC's virtual-memory hardware become the bottleneck; for
// the slow media the disk/network is the bottleneck either way.
//
// NFS is a shared, single-server resource: concurrent clients queue, and
// a client whose request sits in the queue longer than the RPC timeout
// gets a timeout error — the launch-failure mode the paper blames on
// shared-filesystem job launching (paper §2.3, §5.1).
package fsim

import (
	"errors"
	"fmt"

	"repro/internal/qsnet"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Kind identifies a filesystem type.
type Kind int

// The filesystems of paper Fig. 6.
const (
	NFS Kind = iota
	LocalDisk
	RAMDisk
)

func (k Kind) String() string {
	switch k {
	case NFS:
		return "NFS"
	case LocalDisk:
		return "Local (ext2)"
	case RAMDisk:
		return "RAM (ext2)"
	}
	return "unknown"
}

// ErrTimeout is returned when a shared-server request waits longer than
// the client's RPC timeout.
var ErrTimeout = errors.New("fsim: request timed out under server load")

// Config holds a filesystem's performance parameters. Bandwidths are in
// MB/s (1e6 bytes per second).
type Config struct {
	Kind         Kind
	ReadMainMBs  float64 // read bandwidth into host memory
	ReadNICMBs   float64 // read bandwidth into NIC memory
	WriteMainMBs float64 // write bandwidth from host memory
	WriteNICMBs  float64 // write bandwidth from NIC memory
	// WriteJitter is the sigma of the lognormal multiplier applied to
	// each write's duration: the per-node filesystem variability that
	// motivates STORM's multi-buffering (paper §2.3).
	WriteJitter float64
	// Shared marks a single-server filesystem (NFS): all clients contend
	// for one service resource.
	Shared bool
	// Timeout is the client RPC timeout for shared filesystems.
	Timeout sim.Time
	// PerRequest is the fixed per-request overhead (RPC round trip,
	// syscall, metadata).
	PerRequest sim.Time
}

// DefaultConfig returns the paper-calibrated parameters for a kind.
func DefaultConfig(kind Kind) Config {
	switch kind {
	case NFS:
		return Config{
			Kind: NFS, ReadMainMBs: 11.4, ReadNICMBs: 11.2,
			WriteMainMBs: 9.5, WriteNICMBs: 9.5,
			WriteJitter: 0.10, Shared: true,
			Timeout: 30 * sim.Second, PerRequest: 2 * sim.Millisecond,
		}
	case LocalDisk:
		return Config{
			Kind: LocalDisk, ReadMainMBs: 31.5, ReadNICMBs: 30.5,
			WriteMainMBs: 42, WriteNICMBs: 40,
			WriteJitter: 0.15, PerRequest: 5 * sim.Millisecond,
		}
	case RAMDisk:
		return Config{
			Kind: RAMDisk, ReadMainMBs: 218, ReadNICMBs: 120,
			WriteMainMBs: 400, WriteNICMBs: 250,
			WriteJitter: 0.08, PerRequest: 30 * sim.Microsecond,
		}
	}
	panic("fsim: unknown kind")
}

// FileSystem is one mounted filesystem instance. Local filesystems are
// per-node; a shared (NFS) instance is mounted by many nodes at once.
type FileSystem struct {
	env    *sim.Env
	cfg    Config
	server *sim.Resource
	rnd    *rng.RNG

	// Reads and Writes count completed operations (for tests).
	Reads, Writes int
	// TimedOut counts requests that failed with ErrTimeout.
	TimedOut int
}

// New creates a filesystem with the given configuration.
func New(env *sim.Env, cfg Config, seed uint64) *FileSystem {
	fs := &FileSystem{env: env, cfg: cfg, rnd: rng.New(seed)}
	if cfg.Shared {
		fs.server = sim.NewResource(env, 1)
	}
	return fs
}

// NewDefault creates a filesystem of the given kind with paper defaults.
func NewDefault(env *sim.Env, kind Kind, seed uint64) *FileSystem {
	return New(env, DefaultConfig(kind), seed)
}

// Config returns the filesystem's configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// Kind returns the filesystem's type.
func (fs *FileSystem) Kind() Kind { return fs.cfg.Kind }

func (fs *FileSystem) readBW(loc qsnet.BufferLoc) float64 {
	if loc == qsnet.NICMem {
		return fs.cfg.ReadNICMBs
	}
	return fs.cfg.ReadMainMBs
}

func (fs *FileSystem) writeBW(loc qsnet.BufferLoc) float64 {
	if loc == qsnet.NICMem {
		return fs.cfg.WriteNICMBs
	}
	return fs.cfg.WriteMainMBs
}

// ReadBW reports the nominal read bandwidth (MB/s) into buffers at loc —
// the quantity plotted in paper Fig. 6.
func (fs *FileSystem) ReadBW(loc qsnet.BufferLoc) float64 { return fs.readBW(loc) }

// xferTime converts a byte count and bandwidth into a duration.
func xferTime(bytes int64, bwMBs float64) sim.Time {
	return sim.FromSeconds(float64(bytes) / (bwMBs * 1e6))
}

// Read reads bytes into a buffer at loc, blocking the calling process.
// On a shared filesystem the request may queue behind other clients and
// can time out.
func (fs *FileSystem) Read(p *sim.Proc, bytes int64, loc qsnet.BufferLoc) error {
	d := fs.cfg.PerRequest + xferTime(bytes, fs.readBW(loc))
	if err := fs.serve(p, d); err != nil {
		return err
	}
	fs.Reads++
	return nil
}

// Write writes bytes from a buffer at loc, blocking the calling process.
// Write durations carry the configured lognormal jitter.
func (fs *FileSystem) Write(p *sim.Proc, bytes int64, loc qsnet.BufferLoc) error {
	d := fs.cfg.PerRequest + xferTime(bytes, fs.writeBW(loc))
	if fs.cfg.WriteJitter > 0 {
		d = sim.FromSeconds(d.Seconds() * fs.rnd.LogNormal(0, fs.cfg.WriteJitter))
	}
	if err := fs.serve(p, d); err != nil {
		return err
	}
	fs.Writes++
	return nil
}

// serve executes one request of duration d, applying shared-server
// queueing and timeout semantics when configured.
func (fs *FileSystem) serve(p *sim.Proc, d sim.Time) error {
	if fs.server == nil {
		p.Wait(d)
		return nil
	}
	// Shared server: queue for service; give up if the queue is too deep
	// to be served within the timeout. This reproduces the paper's
	// "file servers ... tend to fail with timeout errors" under load.
	waitStart := fs.env.Now()
	fs.server.Acquire(p)
	if fs.cfg.Timeout > 0 && fs.env.Now()-waitStart+d > fs.cfg.Timeout {
		fs.server.Release()
		fs.TimedOut++
		return fmt.Errorf("%w (queued %v, need %v more)", ErrTimeout, fs.env.Now()-waitStart, d)
	}
	p.Wait(d)
	fs.server.Release()
	return nil
}
