package fsim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/qsnet"
	"repro/internal/sim"
)

// measureRead returns the measured bandwidth (MB/s) of a 12 MB read,
// the experiment of paper Fig. 6.
func measureRead(t *testing.T, kind Kind, loc qsnet.BufferLoc) float64 {
	t.Helper()
	env := sim.NewEnv()
	fs := NewDefault(env, kind, 1)
	const bytes = 12 * 1000 * 1000
	var elapsed sim.Time
	env.Spawn("reader", func(p *sim.Proc) {
		start := p.Now()
		if err := fs.Read(p, bytes, loc); err != nil {
			t.Errorf("read: %v", err)
		}
		elapsed = p.Now() - start
	})
	env.Run()
	return float64(bytes) / elapsed.Seconds() / 1e6
}

// TestFig6ReadBandwidths checks all six bars of paper Fig. 6 within 3%.
func TestFig6ReadBandwidths(t *testing.T) {
	cases := []struct {
		kind Kind
		loc  qsnet.BufferLoc
		want float64
	}{
		{NFS, qsnet.MainMem, 11.4},
		{NFS, qsnet.NICMem, 11.2},
		{LocalDisk, qsnet.MainMem, 31.5},
		{LocalDisk, qsnet.NICMem, 30.5},
		{RAMDisk, qsnet.MainMem, 218},
		{RAMDisk, qsnet.NICMem, 120},
	}
	for _, c := range cases {
		got := measureRead(t, c.kind, c.loc)
		if math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("%v into %v: %.1f MB/s, paper %.1f", c.kind, c.loc, got, c.want)
		}
	}
}

// TestRAMDiskPrefersMainMemory verifies the paper's §3.3.1 conclusion:
// only for the fast RAM disk does the buffer location matter much.
func TestRAMDiskPrefersMainMemory(t *testing.T) {
	ram := measureRead(t, RAMDisk, qsnet.MainMem) / measureRead(t, RAMDisk, qsnet.NICMem)
	nfs := measureRead(t, NFS, qsnet.MainMem) / measureRead(t, NFS, qsnet.NICMem)
	if ram < 1.5 {
		t.Errorf("RAM disk main/NIC ratio = %.2f, want ~1.8", ram)
	}
	if nfs > 1.1 {
		t.Errorf("NFS main/NIC ratio = %.2f, want ~1.0", nfs)
	}
}

// TestWriteFasterThanRead encodes the paper's observation that read
// bandwidth is consistently lower than write bandwidth (so writes are
// never the file-transfer bottleneck).
func TestWriteFasterThanRead(t *testing.T) {
	for _, kind := range []Kind{LocalDisk, RAMDisk} {
		cfg := DefaultConfig(kind)
		if cfg.WriteMainMBs <= cfg.ReadMainMBs {
			t.Errorf("%v: write BW %.1f should exceed read BW %.1f",
				kind, cfg.WriteMainMBs, cfg.ReadMainMBs)
		}
	}
}

func TestWriteJitterVariesDurations(t *testing.T) {
	env := sim.NewEnv()
	fs := NewDefault(env, RAMDisk, 7)
	var durations []float64
	env.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			start := p.Now()
			if err := fs.Write(p, 512<<10, qsnet.MainMem); err != nil {
				t.Errorf("write: %v", err)
			}
			durations = append(durations, (p.Now() - start).Seconds())
		}
	})
	env.Run()
	min, max := durations[0], durations[0]
	for _, d := range durations {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max/min < 1.05 {
		t.Fatalf("write jitter too small: min %.6f max %.6f", min, max)
	}
	if max/min > 3 {
		t.Fatalf("write jitter implausibly large: min %.6f max %.6f", min, max)
	}
}

func TestWriteDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		env := sim.NewEnv()
		fs := NewDefault(env, RAMDisk, 42)
		var ends []sim.Time
		env.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				fs.Write(p, 256<<10, qsnet.MainMem)
				ends = append(ends, p.Now())
			}
		})
		env.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at write %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestNFSContention: N clients demand-paging one file from one server
// serialize; aggregate time scales with N (the nonscalability the paper
// attacks), and with a short timeout some clients fail.
func TestNFSContention(t *testing.T) {
	env := sim.NewEnv()
	fs := NewDefault(env, NFS, 3)
	const clients = 8
	const bytes = 12 * 1000 * 1000
	var lastEnd sim.Time
	errs := 0
	for i := 0; i < clients; i++ {
		env.Spawn("client", func(p *sim.Proc) {
			if err := fs.Read(p, bytes, qsnet.MainMem); err != nil {
				errs++
				return
			}
			if p.Now() > lastEnd {
				lastEnd = p.Now()
			}
		})
	}
	env.Run()
	single := float64(bytes) / (11.4e6)
	if errs > 0 {
		t.Fatalf("unexpected timeouts with default 30s timeout: %d", errs)
	}
	if lastEnd.Seconds() < float64(clients)*single*0.95 {
		t.Fatalf("8 clients finished in %.2fs; server should serialize to ~%.2fs",
			lastEnd.Seconds(), float64(clients)*single)
	}
}

func TestNFSTimeoutUnderLoad(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig(NFS)
	cfg.Timeout = 3 * sim.Second // aggressive client timeout
	fs := New(env, cfg, 3)
	const clients = 16
	failures := 0
	for i := 0; i < clients; i++ {
		env.Spawn("client", func(p *sim.Proc) {
			if err := fs.Read(p, 12*1000*1000, qsnet.MainMem); err != nil {
				if !errors.Is(err, ErrTimeout) {
					t.Errorf("unexpected error type: %v", err)
				}
				failures++
			}
		})
	}
	env.Run()
	if failures == 0 {
		t.Fatal("no timeout failures despite 16 clients and a 3s timeout")
	}
	if fs.TimedOut != failures {
		t.Fatalf("TimedOut counter = %d, want %d", fs.TimedOut, failures)
	}
}

func TestLocalDisksDoNotContend(t *testing.T) {
	env := sim.NewEnv()
	// Two separate local-disk instances (two nodes): parallel reads.
	a := NewDefault(env, LocalDisk, 1)
	b := NewDefault(env, LocalDisk, 2)
	var endA, endB sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		a.Read(p, 12*1000*1000, qsnet.MainMem)
		endA = p.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		b.Read(p, 12*1000*1000, qsnet.MainMem)
		endB = p.Now()
	})
	env.Run()
	single := 12.0 / 31.5
	if endA.Seconds() > single*1.1 || endB.Seconds() > single*1.1 {
		t.Fatalf("independent local reads serialized: %v, %v", endA, endB)
	}
}

func TestKindString(t *testing.T) {
	if NFS.String() != "NFS" || LocalDisk.String() != "Local (ext2)" || RAMDisk.String() != "RAM (ext2)" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestAccessorsAndReadBW(t *testing.T) {
	env := sim.NewEnv()
	fs := NewDefault(env, RAMDisk, 1)
	if fs.Kind() != RAMDisk || fs.Config().Kind != RAMDisk {
		t.Fatal("accessors wrong")
	}
	if fs.ReadBW(qsnet.MainMem) != 218 || fs.ReadBW(qsnet.NICMem) != 120 {
		t.Fatalf("ReadBW = %v / %v", fs.ReadBW(qsnet.MainMem), fs.ReadBW(qsnet.NICMem))
	}
}

func TestWriteToNICMemory(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig(RAMDisk)
	cfg.WriteJitter = 0
	fs := New(env, cfg, 1)
	var elapsed sim.Time
	env.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		fs.Write(p, 1_000_000, qsnet.NICMem)
		elapsed = p.Now() - start
	})
	env.Run()
	// 1 MB at 250 MB/s = 4ms (+30us per-request).
	got := elapsed.Seconds()
	if got < 0.004 || got > 0.0045 {
		t.Fatalf("NIC-memory write took %vs", got)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	DefaultConfig(Kind(99))
}
