// Package testutil holds small helpers shared across the repository's
// test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitForGoroutines waits for the process goroutine count to settle
// back to at most base+slack within the deadline, dumping all stacks on
// failure. Shared by every lifecycle test that asserts clean teardown —
// from 3-node chaos scenarios to 512-NM federation sweeps, where a
// silent per-NM leak would be invisible until it isn't.
func WaitForGoroutines(t testing.TB, base int, within time.Duration) {
	t.Helper()
	// Small slack: the runtime keeps a few service goroutines (timer
	// scavenger, race runtime) whose lifetime we don't control.
	const slack = 2
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d (+%d slack)\n%s",
		runtime.NumGoroutine(), base, slack, buf[:n])
}
