package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestQuickstartSession(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 16, Timeslice: sim.Millisecond, Seed: 2})
	defer c.Close()
	j := c.Submit(JobSpec{Name: "hello", BinaryMB: 12, Nodes: 16, PEsPerNode: 4})
	end := c.Await(j)
	if j.State != job.Finished {
		t.Fatalf("state = %v", j.State)
	}
	if end.Seconds() > 0.2 {
		t.Fatalf("12 MB launch took %.3fs, expected ~0.11s", end.Seconds())
	}
}

func TestDefaultsFillIn(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 4})
	defer c.Close()
	j := c.Submit(JobSpec{Name: "defaults"})
	if j.BinaryBytes != 12_000_000 {
		t.Errorf("BinaryBytes = %d, want 12e6", j.BinaryBytes)
	}
	if j.NodesWanted != 4 || j.PEsPerNode != 1 {
		t.Errorf("geometry = %d x %d, want 4 x 1", j.NodesWanted, j.PEsPerNode)
	}
	c.Await(j)
	if j.State != job.Finished {
		t.Fatalf("state = %v", j.State)
	}
}

func TestWorkloadOnCluster(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 4, Timeslice: 10 * sim.Millisecond, Seed: 5})
	defer c.Close()
	j := c.Submit(JobSpec{
		Name: "sweep", BinaryMB: 7, Nodes: 4, PEsPerNode: 2,
		Program: workload.ScaledSweep3D(0.5),
	})
	c.Await(j)
	if j.State != job.Finished {
		t.Fatalf("state = %v", j.State)
	}
	wall := (j.LastExit - j.FirstRun).Seconds()
	if wall < 0.45 || wall > 0.8 {
		t.Fatalf("0.5s SWEEP3D wall = %.3fs", wall)
	}
}

func TestPolicyOverride(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 4, Policy: sched.BatchFCFS{}, Timeslice: 5 * sim.Millisecond})
	defer c.Close()
	a := c.Submit(JobSpec{Name: "a", BinaryMB: 1, Nodes: 4, Program: workload.Synthetic{Total: 100 * sim.Millisecond}})
	b := c.Submit(JobSpec{Name: "b", BinaryMB: 1, Nodes: 4, Program: workload.Synthetic{Total: 100 * sim.Millisecond}})
	c.Await(a, b)
	// Batch (MPL 1): b cannot start before a finished.
	if b.FirstRun < a.LastExit {
		t.Fatalf("batch policy overlapped jobs: b started %v, a ended %v", b.FirstRun, a.LastExit)
	}
}

func TestFaultDetectionFacade(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 8})
	defer c.Close()
	c.System().Network().Config() // touch for coverage of accessors
	var hit []int
	c.DetectFaults(50*sim.Millisecond, func(n int) { hit = append(hit, n) })
	c.RunFor(200 * sim.Millisecond)
	if len(hit) != 0 {
		t.Fatalf("false positives: %v", hit)
	}
	c.FailNode(2)
	// Detection must ride out the 2s dead-node hardware timeout that a
	// failed collective holds the fabric for, plus per-node isolation
	// probes with their own retry windows.
	c.RunFor(15 * sim.Second)
	if len(hit) != 1 || hit[0] != 2 {
		t.Fatalf("detected %v, want [2]", hit)
	}
}

func TestTimelineFacade(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 4, Timeslice: sim.Millisecond})
	defer c.Close()
	tl := c.Timeline()
	j := c.Submit(JobSpec{Name: "traced", BinaryMB: 4, Nodes: 4})
	c.Await(j)
	lane := tl.Lane("job1:traced")
	if lane == nil {
		t.Fatal("no lane recorded for the job")
	}
	// Expect q -> T -> R spans, all closed.
	labels := ""
	for _, s := range lane.Spans {
		labels += string(s.Label)
		if s.Open() {
			t.Fatalf("span %c left open", s.Label)
		}
	}
	if labels != "qTR" {
		t.Fatalf("lifecycle spans = %q, want qTR", labels)
	}
	if out := tl.Render(tl.End(), 40); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationFacade(t *testing.T) {
	run := func(tree bool) sim.Time {
		c := NewCluster(ClusterConfig{Nodes: 8, Timeslice: sim.Millisecond, SoftwareTreeMechanisms: tree})
		defer c.Close()
		j := c.Submit(JobSpec{Name: "dn", BinaryMB: 12, Nodes: 8, PEsPerNode: 1})
		return c.Await(j)
	}
	hw, tree := run(false), run(true)
	if tree <= hw {
		t.Fatalf("software-tree launch (%v) should be slower than hardware (%v)", tree, hw)
	}
}

func TestLoadAndCancelFacades(t *testing.T) {
	c := NewCluster(ClusterConfig{Nodes: 4, Timeslice: 5 * sim.Millisecond})
	defer c.Close()
	c.LoadNetwork(0.5)
	if got := c.System().Network().BackgroundLoad(); got != 0.5 {
		t.Fatalf("BackgroundLoad = %v", got)
	}
	c.LoadCPU()
	j := c.Submit(JobSpec{
		Name: "victim", BinaryMB: 0.5, Nodes: 4,
		Program: workload.Synthetic{Total: 100 * sim.Second},
	})
	c.RunFor(2 * sim.Second)
	if c.Now() < 2*sim.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Cancel(j)
	c.Await(j)
	if j.State != job.Canceled {
		t.Fatalf("state = %v", j.State)
	}
}
