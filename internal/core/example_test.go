package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example reproduces the paper's headline measurement: a 12 MB do-nothing
// binary launched on a 64-node cluster in about a tenth of a second.
func Example() {
	cluster := core.NewCluster(core.ClusterConfig{
		Nodes:     64,
		Timeslice: sim.Millisecond,
		Seed:      1,
	})
	defer cluster.Close()

	j := cluster.Submit(core.JobSpec{
		Name: "do-nothing", BinaryMB: 12, Nodes: 64, PEsPerNode: 4,
	})
	total := cluster.Await(j)

	fmt.Println("state:", j.State)
	fmt.Println("launched in under 150 ms:", total < 150*sim.Millisecond)
	fmt.Println("send dominates execute:",
		(j.TransferDone-j.SubmitTime) > (j.EndTime-j.TransferDone))
	// Output:
	// state: finished
	// launched in under 150 ms: true
	// send dominates execute: true
}

// Example_gangScheduling timeshares two SWEEP3D instances on the same
// processors with a 2 ms quantum — the granularity the paper shows costs
// essentially nothing.
func Example_gangScheduling() {
	cluster := core.NewCluster(core.ClusterConfig{
		Nodes:     8,
		Timeslice: 2 * sim.Millisecond,
		MPL:       2,
		Seed:      1,
	})
	defer cluster.Close()

	app := workload.ScaledSweep3D(1.0) // a 1-second SWEEP3D
	a := cluster.Submit(core.JobSpec{Name: "a", BinaryMB: 4, Nodes: 8, PEsPerNode: 2, Program: app})
	b := cluster.Submit(core.JobSpec{Name: "b", BinaryMB: 4, Nodes: 8, PEsPerNode: 2, Program: app})
	cluster.Await(a, b)

	wallA := (a.LastExit - a.FirstRun).Seconds()
	fmt.Println("both finished:", a.State.String() == "finished" && b.State.String() == "finished")
	fmt.Println("each saw ~half the machine (1.8s-2.3s wall):", wallA > 1.8 && wallA < 2.3)
	// Output:
	// both finished: true
	// each saw ~half the machine (1.8s-2.3s wall): true
}
