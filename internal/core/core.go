// Package core is the top-level facade of the STORM reproduction: one
// import that exposes the cluster builder, job submission, scheduling
// policies, and the paper's workloads, wired to the simulated QsNET
// cluster underneath.
//
// The paper's architecture (its Fig. 1) maps to packages as follows:
//
//	STORM functions      internal/storm   (MM, NM, PL dæmons; launching,
//	                                       gang scheduling, heartbeat,
//	                                       fault detection)
//	STORM helper layer   internal/storm   (flow control, queue management)
//	STORM mechanisms     internal/mech    (XFER-AND-SIGNAL, TEST-EVENT,
//	                                       COMPARE-AND-WRITE)
//	QsNET primitives     internal/qsnet   (remote DMA, hardware multicast,
//	                                       network conditionals, events)
//
// A minimal session:
//
//	cluster := core.NewCluster(core.ClusterConfig{Nodes: 64})
//	j := cluster.Submit(core.JobSpec{
//	    Name: "sweep3d", BinaryMB: 12, Nodes: 32, PEsPerNode: 2,
//	    Program: workload.DefaultSweep3D(),
//	})
//	cluster.Await(j)
//	fmt.Println(j.EndTime - j.SubmitTime)
package core

import (
	"repro/internal/job"
	"repro/internal/mech"
	"repro/internal/qsnet"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/trace"
)

// ClusterConfig selects the shape of a simulated cluster. The zero value
// of every field falls back to the paper's 64-node ES40/QsNET evaluation
// platform (its Table 3).
type ClusterConfig struct {
	// Nodes is the number of compute nodes (default 64).
	Nodes int
	// Timeslice is the gang-scheduling quantum (default 50 ms).
	Timeslice sim.Time
	// MPL is the multiprogramming level for the default gang policy
	// (default 2). Ignored when Policy is set.
	MPL int
	// Policy overrides the scheduling policy.
	Policy sched.Policy
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// SoftwareTreeMechanisms swaps the QsNET hardware collectives for the
	// commodity-network software-tree emulation (the ablation).
	SoftwareTreeMechanisms bool
}

// Cluster is a running simulated STORM cluster.
type Cluster struct {
	env *sim.Env
	sys *storm.System
}

// JobSpec describes a job for Submit.
type JobSpec struct {
	// Name labels the job in diagnostics.
	Name string
	// BinaryMB is the executable size in decimal MB (default 12, the
	// paper's largest benchmark binary).
	BinaryMB float64
	// Nodes is the number of compute nodes requested (default: whole
	// cluster).
	Nodes int
	// PEsPerNode is processes per node, 1..4 (default 1).
	PEsPerNode int
	// Program is the per-process behavior (default: the do-nothing
	// launch benchmark).
	Program job.Program
	// EstRuntime is the runtime estimate for backfilling policies.
	EstRuntime sim.Time
}

// NewCluster builds and boots a simulated cluster: network, node OSes,
// filesystems, and the MM/NM/PL dæmons.
func NewCluster(cc ClusterConfig) *Cluster {
	if cc.Nodes == 0 {
		cc.Nodes = 64
	}
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(cc.Nodes)
	if cc.Timeslice != 0 {
		cfg.Timeslice = cc.Timeslice
	}
	if cc.Seed != 0 {
		cfg.Seed = cc.Seed
	}
	if cc.Policy != nil {
		cfg.Policy = cc.Policy
	} else if cc.MPL != 0 {
		cfg.Policy = sched.GangFCFS{MPL: cc.MPL}
	}
	var sys *storm.System
	if cc.SoftwareTreeMechanisms {
		sys = storm.NewWithDomain(env, cfg, func(n *qsnet.Network) mech.Domain {
			return mech.NewTree(n)
		})
	} else {
		sys = storm.New(env, cfg)
	}
	return &Cluster{env: env, sys: sys}
}

// Submit queues a job with the Machine Manager and returns its
// descriptor; timestamps fill in as the simulation advances.
func (c *Cluster) Submit(spec JobSpec) *job.Job {
	if spec.BinaryMB == 0 {
		spec.BinaryMB = 12
	}
	if spec.Nodes == 0 {
		spec.Nodes = c.sys.Config().Nodes
	}
	if spec.PEsPerNode == 0 {
		spec.PEsPerNode = 1
	}
	return c.sys.Submit(&job.Job{
		Name:        spec.Name,
		BinaryBytes: int64(spec.BinaryMB * 1e6),
		NodesWanted: spec.Nodes,
		PEsPerNode:  spec.PEsPerNode,
		Program:     spec.Program,
		EstRuntime:  spec.EstRuntime,
	})
}

// Await advances the simulation until all given jobs complete and returns
// the completion time.
func (c *Cluster) Await(jobs ...*job.Job) sim.Time {
	return c.sys.RunUntilDone(jobs...)
}

// RunFor advances the simulation by d of virtual time.
func (c *Cluster) RunFor(d sim.Time) {
	c.env.RunUntil(c.env.Now() + d)
}

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.env.Now() }

// System exposes the underlying STORM system for advanced use (load
// injection, fault injection, dæmon statistics).
func (c *Cluster) System() *storm.System { return c.sys }

// LoadCPU starts the paper's spin-loop CPU loader on every processor.
func (c *Cluster) LoadCPU() { c.sys.LoadCPU() }

// LoadNetwork saturates the fabric to the given background utilization.
func (c *Cluster) LoadNetwork(u float64) { c.sys.LoadNetwork(u) }

// FailNode kills a compute node (fault injection).
func (c *Cluster) FailNode(id int) { c.sys.Network().FailNode(id) }

// DetectFaults starts heartbeat-based fault detection; onFail runs once
// per detected node failure.
func (c *Cluster) DetectFaults(period sim.Time, onFail func(node int)) *storm.FaultDetector {
	grace := period / 10
	if grace <= 0 {
		grace = sim.Millisecond
	}
	return c.sys.StartFaultDetector(period, grace, onFail)
}

// Cancel requests a job's termination; it is enacted at the next
// timeslice boundary.
func (c *Cluster) Cancel(j *job.Job) { c.sys.Cancel(j) }

// RecoverFaults starts heartbeat fault detection wired into the Machine
// Manager: jobs on a detected-dead node are failed, their surviving
// processes killed, and the space reclaimed. onFail (optional) also runs
// per failed node.
func (c *Cluster) RecoverFaults(period sim.Time, onFail func(node int)) *storm.FaultDetector {
	grace := period / 10
	if grace <= 0 {
		grace = sim.Millisecond
	}
	return c.sys.EnableFaultRecovery(period, grace, onFail)
}

// Timeline enables (and returns) job-lifecycle tracing: lanes per job
// with 'q'ueued / 'T'ransfer / 'R'unning spans, renderable as an ASCII
// Gantt chart. Enable before submitting jobs to capture full histories.
func (c *Cluster) Timeline() *trace.Timeline { return c.sys.EnableTimeline() }

// Close releases the simulation's resources.
func (c *Cluster) Close() { c.sys.Shutdown() }
