package netmodel

import (
	"math"
	"testing"
)

func TestStages(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 1, 5: 2, 16: 2, 17: 3, 64: 3, 256: 4, 1024: 5, 4096: 6, 16384: 7}
	for nodes, want := range cases {
		if got := Stages(nodes); got != want {
			t.Errorf("Stages(%d) = %d, want %d", nodes, got, want)
		}
	}
}

func TestSwitches(t *testing.T) {
	// Paper Table 4's "Switches" column.
	cases := map[int]int{4: 1, 16: 3, 64: 5, 256: 7, 1024: 9, 4096: 11}
	for nodes, want := range cases {
		if got := Switches(nodes); got != want {
			t.Errorf("Switches(%d) = %d, want %d", nodes, got, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	// Eq. (2): floor(sqrt(2*nodes)).
	cases := map[int]float64{4: 2, 64: 11, 256: 22, 1024: 45, 4096: 90, 16384: 181}
	for nodes, want := range cases {
		if got := Diameter(nodes); got != want {
			t.Errorf("Diameter(%d) = %v, want %v", nodes, got, want)
		}
	}
}

// TestBroadcastBWMatchesPaperTable4 checks every cell of the paper's
// Table 4 against the fitted pipeline model, within 1.5%.
func TestBroadcastBWMatchesPaperTable4(t *testing.T) {
	cables := []float64{10, 20, 30, 40, 60, 80, 100}
	want := map[int][]float64{
		4:    {319, 319, 319, 319, 284, 249, 222},
		16:   {319, 319, 309, 287, 251, 224, 202},
		64:   {312, 290, 270, 254, 225, 203, 185},
		256:  {273, 256, 241, 227, 204, 186, 170},
		1024: {243, 229, 217, 206, 187, 171, 158},
		4096: {218, 207, 197, 188, 172, 159, 147},
	}
	for nodes, row := range want {
		for i, cable := range cables {
			got := BroadcastBW(nodes, cable)
			rel := math.Abs(got-row[i]) / row[i]
			if rel > 0.015 {
				t.Errorf("BroadcastBW(%d, %gm) = %.1f, paper %.0f (%.1f%% off)",
					nodes, cable, got, row[i], rel*100)
			}
		}
	}
}

func TestBroadcastBWWorstCaseIsLongestCable(t *testing.T) {
	for _, nodes := range []int{4, 64, 4096} {
		if BroadcastBW(nodes, 100) >= BroadcastBW(nodes, 10) {
			t.Errorf("bandwidth at 100m should be below 10m for %d nodes", nodes)
		}
	}
}

func TestBroadcastBWMonotoneInNodes(t *testing.T) {
	prev := math.Inf(1)
	for _, nodes := range []int{4, 16, 64, 256, 1024, 4096} {
		bw := BroadcastBWAuto(nodes)
		if bw > prev {
			t.Errorf("BroadcastBWAuto not non-increasing at %d nodes: %v > %v", nodes, bw, prev)
		}
		prev = bw
	}
}

func TestLaunchTimeES40PaperClaims(t *testing.T) {
	// Paper §3.1.1: 12 MB launched in ~110 ms on the 64-node cluster.
	got := LaunchTimeES40(64, 12)
	if got < 0.100 || got > 0.120 {
		t.Errorf("LaunchTimeES40(64, 12MB) = %.3fs, paper ~0.110s", got)
	}
	// Paper §3.3.2: 12 MB launched in ~135 ms on 16,384 nodes.
	got = LaunchTimeES40(16384, 12)
	if got < 0.125 || got > 0.145 {
		t.Errorf("LaunchTimeES40(16384, 12MB) = %.3fs, paper ~0.135s", got)
	}
}

func TestLaunchModelsConvergeAtScale(t *testing.T) {
	// Paper Fig. 10: ES40 and ideal models converge beyond 4,096 nodes
	// because both become network-broadcast-bound.
	es40 := LaunchTimeES40(16384, 12)
	ideal := LaunchTimeIdeal(16384, 12)
	if math.Abs(es40-ideal)/es40 > 0.02 {
		t.Errorf("models did not converge at 16384 nodes: ES40 %.4fs vs ideal %.4fs", es40, ideal)
	}
	// And the ideal machine is strictly faster at small scale.
	if LaunchTimeIdeal(64, 12) >= LaunchTimeES40(64, 12) {
		t.Error("ideal I/O bus should beat ES40 at 64 nodes")
	}
}

func TestBarrierLatencyMatchesFig9(t *testing.T) {
	// ~4.5 µs at tiny scale.
	if got := BarrierLatencyUs(2); math.Abs(got-4.5) > 0.3 {
		t.Errorf("BarrierLatencyUs(2) = %.2f, want ~4.5", got)
	}
	// Paper: latency grows ~2 µs across a 384× increase in nodes.
	growth := BarrierLatencyUs(768) - BarrierLatencyUs(2)
	if growth < 1 || growth > 3 {
		t.Errorf("barrier latency growth 2->768 nodes = %.2fµs, paper ~2µs", growth)
	}
	// Sub-7µs even at 1024 nodes.
	if got := BarrierLatencyUs(1024); got > 7 {
		t.Errorf("BarrierLatencyUs(1024) = %.2f, want < 7", got)
	}
}

// TestLiteratureModelsMatchTable7 checks the paper's extrapolations to
// 4,096 nodes (its Table 7).
func TestLiteratureModelsMatchTable7(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"rsh", LaunchRsh(4096), 3827.10, 0.01},
		{"RMS", LaunchRMS(4096), 317.67, 0.01},
		{"GLUnix", LaunchGLUnix(4096), 49.38, 0.01},
		{"Cplant", LaunchCplant(4096), 22.73, 0.01},
		{"BProc", LaunchBProc(4096), 4.88, 0.01},
		{"STORM", LaunchSTORM(4096), 0.11, 0.35},
	}
	for _, c := range cases {
		rel := math.Abs(c.got-c.want) / c.want
		if rel > c.tol {
			t.Errorf("%s @4096 nodes = %.2fs, paper %.2fs", c.name, c.got, c.want)
		}
	}
}

// TestTable6MeasuredPoints checks the models at the node counts where the
// original systems were actually measured (paper Table 6).
func TestTable6MeasuredPoints(t *testing.T) {
	cases := []struct {
		name  string
		got   float64
		want  float64
		tolPc float64
	}{
		{"rsh@95", LaunchRsh(95), 90, 2},
		{"RMS@64", LaunchRMS(64), 5.9, 5},
		{"GLUnix@95", LaunchGLUnix(95), 1.3, 6},
		{"Cplant@1010", LaunchCplant(1010), 20, 5},
		{"BProc@100", LaunchBProc(100), 2.7, 5},
		{"STORM@64", LaunchSTORM(64), 0.11, 5},
	}
	for _, c := range cases {
		rel := math.Abs(c.got-c.want) / c.want * 100
		if rel > c.tolPc {
			t.Errorf("%s = %.2fs, paper %.2fs (%.1f%% off)", c.name, c.got, c.want, rel)
		}
	}
}

func TestSTORMBeatsEveryBaselineEverywhere(t *testing.T) {
	// The paper's headline: STORM is orders of magnitude faster.
	for _, n := range []int{2, 16, 64, 256, 1024, 4096, 16384} {
		storm := LaunchSTORM(n)
		for name, f := range map[string]func(int) float64{
			"rsh": LaunchRsh, "RMS": LaunchRMS, "GLUnix": LaunchGLUnix,
			"Cplant": LaunchCplant, "BProc": LaunchBProc,
		} {
			if f(n) <= storm {
				t.Errorf("%s(%d) = %.3fs does not exceed STORM %.3fs", name, n, f(n), storm)
			}
		}
		// At 4096 nodes the gap to the best competitor (BProc) is >40x.
		if n == 4096 {
			if ratio := LaunchBProc(n) / storm; ratio < 20 {
				t.Errorf("BProc/STORM ratio at 4096 = %.1f, want > 20", ratio)
			}
		}
	}
}

func TestAltNetworks(t *testing.T) {
	nets := AltNetworks()
	if len(nets) != 5 {
		t.Fatalf("want 5 alternative networks, got %d", len(nets))
	}
	byName := map[string]AltNetwork{}
	for _, n := range nets {
		byName[n.Name] = n
	}
	// Table 5 spot checks at 1024 nodes (lg n = 10).
	if got := byName["Gigabit Ethernet"].CompareAndWriteUs(1024); got != 460 {
		t.Errorf("GigE CAW(1024) = %v, want 460", got)
	}
	if got := byName["Myrinet"].XferBWMBs(1024); got != 15360 {
		t.Errorf("Myrinet Xfer(1024) = %v, want 15360", got)
	}
	if got := byName["BlueGene/L"].CompareAndWriteUs(1024); got >= 2.5 {
		t.Errorf("BlueGene CAW = %v, want < 2.5", got)
	}
	if !math.IsNaN(byName["Infiniband"].XferBWMBs(64)) {
		t.Error("Infiniband Xfer bandwidth should be N/A")
	}
	if byName["QsNET"].Emulated {
		t.Error("QsNET mechanisms are hardware, not emulated")
	}
	if !byName["Myrinet"].Emulated {
		t.Error("Myrinet mechanisms require emulation")
	}
}

func TestEffectiveBW(t *testing.T) {
	// With zero startup the effective bandwidth equals the asymptote.
	if got := EffectiveBWMBs(1e6, 175, 0); math.Abs(got-175) > 1e-9 {
		t.Errorf("EffectiveBW = %v", got)
	}
	// Startup cost reduces effective bandwidth for small messages.
	small := EffectiveBWMBs(32e3, 175, 20e-6)
	large := EffectiveBWMBs(1e6, 175, 20e-6)
	if small >= large {
		t.Errorf("small-message BW %v should be below large-message BW %v", small, large)
	}
}

func TestDiameterClampsAndExec(t *testing.T) {
	if Diameter(0) != Diameter(1) {
		t.Fatal("non-positive node count not clamped")
	}
	if ExecOverheadSec(0) != ExecOverheadSec(1) {
		t.Fatal("exec overhead clamp missing")
	}
	// Exec overhead grows with machine size.
	if ExecOverheadSec(4096) <= ExecOverheadSec(4) {
		t.Fatal("exec overhead should grow with nodes")
	}
}

func TestAltNetworkFunctionsTotal(t *testing.T) {
	// Exercise every model function at two scales.
	for _, alt := range AltNetworks() {
		for _, n := range []int{16, 4096} {
			if v := alt.CompareAndWriteUs(n); v <= 0 {
				t.Errorf("%s CAW(%d) = %v", alt.Name, n, v)
			}
			alt.XferBWMBs(n) // NaN allowed
		}
	}
}
