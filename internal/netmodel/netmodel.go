// Package netmodel contains the closed-form performance models from the
// STORM paper (SC2002), independent of the discrete-event simulator:
//
//   - the QsNET hardware-broadcast bandwidth model behind the paper's
//     Table 4 (circuit-switched, 320-byte packets, one outstanding packet,
//     ack-per-packet flow control);
//   - the machine floor-plan diameter estimate, paper Eq. (2);
//   - the job-launch time model, paper Eq. (3), for both the real ES40
//     cluster (I/O-bus-limited to 131 MB/s) and an idealized machine;
//   - the hardware-barrier latency curve of the paper's Figure 9;
//   - the literature job-launcher models of Tables 6 and 7 (rsh, RMS,
//     GLUnix, Cplant, BProc);
//   - the expected mechanism performance on alternative networks,
//     paper Table 5.
//
// All bandwidths are decimal MB/s (1e6 bytes per second), matching the
// paper's units.
package netmodel

import "math"

// QsNET pipeline constants. These were fitted to the vendor-provided
// bandwidth table (paper Table 4); with them the model reproduces every
// cell of that table within ~1%.
//
// The flow control works as follows (paper §3.3.2): a broadcast message is
// chunked into packets of 320 bytes; packet i may be injected only after
// the acknowledgment token of packet i-1 returns, and on a broadcast the
// ack returns only when ALL destinations have received the packet. The
// steady-state packet period is therefore
//
//	period = basePacket + 2·switches·switchDelay + 2·diameter·wireDelay
//
// (the factor 2 covers the downstream data path and the upstream ack
// combining path), and the bandwidth is 320 bytes / period, capped by the
// injection rate of the link (LinkPeakMBs).
const (
	PacketBytes   = 320.0 // QsNET Elan3 maximum transfer unit (paper §3.3.2)
	basePacketNs  = 581.6 // fitted: source+sink per-packet processing
	switchDelayNs = 36.7  // fitted: ~35 ns flow-through per switch (paper)
	wireDelayNs   = 3.93  // fitted: per-meter propagation, each way

	// LinkPeakMBs is the injection-rate cap of a single Elan3 link.
	LinkPeakMBs = 319.0
)

// Stages returns the number of stages of the quaternary fat tree needed to
// connect the given number of nodes (paper Table 4: 4 nodes -> 1 stage,
// 16 -> 2, ..., 4096 -> 6).
func Stages(nodes int) int {
	if nodes <= 4 {
		return 1
	}
	s := 1
	span := 4
	for span < nodes {
		span *= 4
		s++
	}
	return s
}

// Switches returns the worst-case number of switches a broadcast packet
// crosses in an n-node quaternary fat tree: up to the root and back down,
// 2·stages − 1 (paper Table 4's "Switches" column).
func Switches(nodes int) int {
	return 2*Stages(nodes) - 1
}

// Diameter implements the paper's Eq. (2): a conservative floor-plan
// estimate of the maximum cable length (in meters) between two nodes,
// assuming 4 m² of machine-room floor per node in a square arrangement:
//
//	diameter(nodes) = floor(sqrt(2 · nodes))
func Diameter(nodes int) float64 {
	if nodes < 1 {
		nodes = 1
	}
	return math.Floor(math.Sqrt(2 * float64(nodes)))
}

// PacketPeriodNs returns the steady-state per-packet period in
// nanoseconds for a broadcast crossing the given number of switches with
// the given maximum cable length in meters.
func PacketPeriodNs(switches int, cableMeters float64) float64 {
	period := basePacketNs + 2*float64(switches)*switchDelayNs + 2*cableMeters*wireDelayNs
	minPeriod := PacketBytes / LinkPeakMBs * 1000 // ns per packet at link peak
	if period < minPeriod {
		period = minPeriod
	}
	return period
}

// BroadcastBW returns the asymptotic hardware-broadcast bandwidth in MB/s
// for a machine with the given node count and maximum cable length in
// meters. This regenerates the paper's Table 4.
func BroadcastBW(nodes int, cableMeters float64) float64 {
	return PacketBytes / PacketPeriodNs(Switches(nodes), cableMeters) * 1000
}

// BroadcastBWAuto returns the broadcast bandwidth using the paper's own
// floor-plan diameter estimate (Eq. 2) for the cable length. This is the
// BWbroadcast(nodes) used by the launch-time model (paper Fig. 10).
func BroadcastBWAuto(nodes int) float64 {
	return BroadcastBW(nodes, Diameter(nodes))
}

// ES40 I/O-path constants (paper §3.3.1).
const (
	// ES40ProtocolBWMBs is the measured effective bandwidth of STORM's
	// file-transfer protocol on the ES40: the 175 MB/s main-memory
	// broadcast ceiling eroded to 131 MB/s by the unresponsiveness and
	// serialization of the lightweight host process that services NIC TLB
	// misses and file accesses.
	ES40ProtocolBWMBs = 131.0

	// MainMemBroadcastMBs is the PCI-limited main-memory-to-main-memory
	// broadcast asymptote (paper Fig. 7).
	MainMemBroadcastMBs = 175.0

	// NICMemBroadcastMBs is the NIC-to-NIC-memory broadcast asymptote on
	// 64 nodes (paper Fig. 7); it equals the Table 4 pipeline value for
	// 64 nodes with ~10 m cables.
	NICMemBroadcastMBs = 312.0

	// RAMDiskReadMBs is the RAM-disk read bandwidth into main memory
	// (paper Fig. 6).
	RAMDiskReadMBs = 218.0
)

// ExecOverheadSec models the execute phase of a launch: fork/exec, the
// wait for timeslice boundaries, termination reporting, and OS-noise skew
// that grows logarithmically with the machine size (paper Fig. 2 shows
// ~14 ms at 64 nodes; the paper's 16,384-node projection of 135 ms total
// implies ~24 ms). Fitted: 6.5 ms + 1.25 ms per node-count doubling.
func ExecOverheadSec(nodes int) float64 {
	if nodes < 1 {
		nodes = 1
	}
	return 0.0065 + 0.00125*math.Log2(float64(nodes))
}

// LaunchTimeES40 implements the paper's Eq. (3) for the real ES40-based
// cluster: transfer bandwidth is the minimum of the 131 MB/s I/O-bus-and-
// host-process ceiling and the network broadcast bandwidth.
// binaryMB is the executable size in MB; the result is seconds.
func LaunchTimeES40(nodes int, binaryMB float64) float64 {
	bw := math.Min(ES40ProtocolBWMBs, BroadcastBWAuto(nodes))
	return binaryMB/bw + ExecOverheadSec(nodes)
}

// LaunchTimeIdeal implements Eq. (3) for the idealized machine whose I/O
// bus is not the bottleneck: transfer runs at full network broadcast
// bandwidth.
func LaunchTimeIdeal(nodes int, binaryMB float64) float64 {
	return binaryMB/BroadcastBWAuto(nodes) + ExecOverheadSec(nodes)
}

// BarrierLatencyUs models the QsNET hardware-barrier latency (µs) as a
// function of node count, calibrated to the Terascale Computing System
// measurements in the paper's Fig. 9: ~4.5 µs at small node counts,
// growing ~2 µs across a 384× node-count increase (0.25 µs per switch
// crossed on the conditional's combining tree).
func BarrierLatencyUs(nodes int) float64 {
	return 4.25 + 0.25*float64(Switches(nodes))
}

// Literature launcher models (paper Tables 6-7, Figs. 11-12). Each returns
// seconds to launch on n nodes; binary sizes are fixed by the original
// studies (0 MB for rsh and GLUnix, 12 MB for the others).
func lg(n int) float64 { return math.Log2(float64(n)) }

// LaunchRsh: t = 0.934·n + 1.266 (minimal job; linear remote-shell loop).
func LaunchRsh(nodes int) float64 { return 0.934*float64(nodes) + 1.266 }

// LaunchRMS: t = 0.077·n + 1.092 (12 MB job on Quadrics RMS).
func LaunchRMS(nodes int) float64 { return 0.077*float64(nodes) + 1.092 }

// LaunchGLUnix: t = 0.012·n + 0.228 (minimal job).
func LaunchGLUnix(nodes int) float64 { return 0.012*float64(nodes) + 0.228 }

// LaunchCplant: t = 1.379·lg n + 6.177 (12 MB job; logarithmic tree).
func LaunchCplant(nodes int) float64 { return 1.379*lg(nodes) + 6.177 }

// LaunchBProc: t = 0.413·lg n − 0.084 (12 MB job; process-image tree).
func LaunchBProc(nodes int) float64 { return 0.413*lg(nodes) - 0.084 }

// LaunchSTORM is the STORM model used in the paper's Fig. 11/12 and
// Table 7: Eq. (3) with a 12 MB binary.
func LaunchSTORM(nodes int) float64 { return LaunchTimeES40(nodes, 12) }

// AltNetwork describes the expected performance of the STORM mechanisms
// on one interconnect (paper Table 5).
type AltNetwork struct {
	Name string
	// CompareAndWriteUs returns the expected COMPARE-AND-WRITE latency in
	// µs on n nodes.
	CompareAndWriteUs func(nodes int) float64
	// XferBWMBs returns the expected aggregate XFER-AND-SIGNAL bandwidth
	// in MB/s delivered to n nodes, or NaN if not available in the
	// literature.
	XferBWMBs func(nodes int) float64
	// Emulated reports whether the mechanisms require a software
	// emulation layer (tree algorithms) on this network.
	Emulated bool
}

// AltNetworks returns the paper's Table 5 models in presentation order.
func AltNetworks() []AltNetwork {
	nan := func(int) float64 { return math.NaN() }
	return []AltNetwork{
		{"Gigabit Ethernet", func(n int) float64 { return 46 * lg(n) }, nan, true},
		{"Myrinet", func(n int) float64 { return 20 * lg(n) }, func(n int) float64 { return 15 * float64(n) }, true},
		{"Infiniband", func(n int) float64 { return 20 * lg(n) }, nan, true},
		{"QsNET", func(n int) float64 { return BarrierLatencyUs(n) }, func(n int) float64 { return 150 * float64(n) }, false},
		{"BlueGene/L", func(n int) float64 { return 2 }, func(n int) float64 { return 700 * float64(n) }, false},
	}
}

// MsgTimeSec returns the time to deliver a message of the given size at
// the given asymptotic bandwidth (MB/s) with the given startup latency
// (seconds): the standard latency/bandwidth first-order model used to
// shape the Fig. 7 bandwidth-vs-message-size curves.
func MsgTimeSec(bytes float64, bwMBs float64, startupSec float64) float64 {
	return startupSec + bytes/(bwMBs*1e6)
}

// EffectiveBWMBs is the measured-bandwidth counterpart of MsgTimeSec.
func EffectiveBWMBs(bytes float64, bwMBs float64, startupSec float64) float64 {
	return bytes / MsgTimeSec(bytes, bwMBs, startupSec) / 1e6
}
