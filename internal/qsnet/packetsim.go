package qsnet

import (
	"repro/internal/netmodel"
	"repro/internal/sim"
)

// This file contains a packet-granularity simulation of the QsNET
// circuit-switched broadcast used to cross-validate the closed-form
// pipeline model in internal/netmodel: each 320-byte packet is walked
// down the switch stages to the leaves, the acknowledgment token is
// combined back up, and only then may the next packet be injected
// (paper §3.3.2). The aggregate bandwidth it produces must agree with
// netmodel.BroadcastBW — if the closed form and the event-level walk
// ever diverge, one of them misstates the flow control.

// PacketStreamResult summarizes a simulated packet stream.
type PacketStreamResult struct {
	Packets   int
	Elapsed   sim.Time
	BWMBs     float64  // aggregate delivered bandwidth per destination
	PeriodNs  float64  // steady-state inter-packet period
	FirstByte sim.Time // latency until the first packet completed
}

// SimulatePacketStream walks `packets` broadcast packets through an
// n-node fat tree with the given cable length, at the injection rate cap
// of the link, and returns the measured timing. It runs its own private
// simulation environment.
func SimulatePacketStream(nodes int, cableMeters float64, packets int) PacketStreamResult {
	if packets < 1 {
		packets = 1
	}
	env := sim.NewEnv()
	switches := netmodel.Switches(nodes)

	// Per-packet path delays (the same constants the closed form uses,
	// but composed step by step rather than summed into one formula).
	base := sim.FromSeconds(581.6e-9) // source+sink processing (fitted constant)
	perSwitch := sim.FromSeconds(36.7e-9)
	wire := sim.FromSeconds(3.93e-9 * cableMeters)
	injection := sim.FromSeconds(netmodel.PacketBytes / (netmodel.LinkPeakMBs * 1e6))

	var res PacketStreamResult
	env.Spawn("source", func(p *sim.Proc) {
		for i := 0; i < packets; i++ {
			// Downstream: the data crosses every switch stage and the cable
			// to the farthest leaf.
			downstream := sim.Time(switches)*perSwitch + wire
			// Upstream: the combined acknowledgment token retraces the path;
			// only its arrival permits the next injection.
			upstream := downstream
			period := base + downstream + upstream
			if period < injection {
				// The link's injection rate caps short paths.
				period = injection
			}
			p.Wait(period)
			if i == 0 {
				res.FirstByte = p.Now()
			}
		}
		res.Elapsed = p.Now()
	})
	env.Run()
	res.Packets = packets
	res.PeriodNs = float64(res.Elapsed) / float64(packets)
	res.BWMBs = netmodel.PacketBytes * float64(packets) / res.Elapsed.Seconds() / 1e6
	return res
}
