package qsnet

import (
	"math"
	"testing"

	"repro/internal/netmodel"
)

// TestPacketSimMatchesClosedForm cross-validates the event-level packet
// walk against the analytical pipeline model on every Table 4 cell.
func TestPacketSimMatchesClosedForm(t *testing.T) {
	for _, nodes := range []int{4, 16, 64, 256, 1024, 4096} {
		for _, cable := range []float64{10, 40, 100} {
			want := netmodel.BroadcastBW(nodes, cable)
			got := SimulatePacketStream(nodes, cable, 2000).BWMBs
			if rel := math.Abs(got-want) / want; rel > 0.01 {
				t.Errorf("packet sim %d nodes/%gm = %.1f MB/s, closed form %.1f (%.2f%% off)",
					nodes, cable, got, want, rel*100)
			}
		}
	}
}

func TestPacketSimFirstByteLatency(t *testing.T) {
	r := SimulatePacketStream(64, 10, 100)
	if r.FirstByte <= 0 || r.FirstByte > r.Elapsed {
		t.Fatalf("first-byte latency %v outside (0, %v]", r.FirstByte, r.Elapsed)
	}
	// One packet's completion is roughly one steady-state period.
	if math.Abs(float64(r.FirstByte)-r.PeriodNs) > r.PeriodNs*0.5 {
		t.Fatalf("first packet at %v, period %.0fns", r.FirstByte, r.PeriodNs)
	}
}

func TestPacketSimLongerCablesSlower(t *testing.T) {
	near := SimulatePacketStream(256, 10, 500).BWMBs
	far := SimulatePacketStream(256, 100, 500).BWMBs
	if far >= near {
		t.Fatalf("100m cable (%.1f) should be slower than 10m (%.1f)", far, near)
	}
}

func TestPacketSimAtLeastOnePacket(t *testing.T) {
	r := SimulatePacketStream(4, 10, 0)
	if r.Packets != 1 {
		t.Fatalf("Packets = %d, want clamp to 1", r.Packets)
	}
}
