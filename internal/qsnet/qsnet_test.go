package qsnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func newNet(nodes int) (*sim.Env, *Network) {
	env := sim.NewEnv()
	return env, New(env, DefaultConfig(nodes))
}

func TestNodeSet(t *testing.T) {
	s := Range(4, 8)
	if s.Last() != 11 {
		t.Fatalf("Last = %d", s.Last())
	}
	if !s.Contains(4) || !s.Contains(11) || s.Contains(3) || s.Contains(12) {
		t.Fatal("Contains is wrong")
	}
	if Range(3, 1).String() != "node 3" {
		t.Fatalf("String = %q", Range(3, 1).String())
	}
	if Range(0, 4).String() != "nodes 0-3" {
		t.Fatalf("String = %q", Range(0, 4).String())
	}
}

// TestBroadcastAsymptoticBandwidth checks the Fig. 7 asymptotes on a
// 64-node network with ~10 m cables: ~312 MB/s for NIC-resident buffers,
// ~175 MB/s for host-memory buffers.
func TestBroadcastAsymptoticBandwidth(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultConfig(64)
	cfg.CableMeters = 10
	net := New(env, cfg)
	const bytes = 64 << 20 // large enough to amortize startup
	for _, tc := range []struct {
		loc  BufferLoc
		want float64
	}{
		{NICMem, 312},
		{MainMem, 175},
	} {
		d := net.BroadcastTime(bytes, Range(0, 64), tc.loc, tc.loc)
		bw := float64(bytes) / d.Seconds() / 1e6
		if math.Abs(bw-tc.want)/tc.want > 0.03 {
			t.Errorf("asymptotic broadcast BW from %v = %.1f MB/s, want ~%.0f", tc.loc, bw, tc.want)
		}
	}
}

func TestBroadcastBandwidthRampsWithMessageSize(t *testing.T) {
	_, net := newNet(64)
	bwAt := func(bytes int64) float64 {
		return float64(bytes) / net.BroadcastTime(bytes, Range(0, 64), NICMem, NICMem).Seconds() / 1e6
	}
	small, large := bwAt(100<<10), bwAt(1000<<10)
	if small >= large {
		t.Fatalf("BW should grow with message size: %0.1f vs %0.1f", small, large)
	}
	if large > netmodel.LinkPeakMBs {
		t.Fatalf("BW exceeds link peak: %.1f", large)
	}
}

func TestBroadcastBlocksCaller(t *testing.T) {
	env, net := newNet(64)
	var elapsed sim.Time
	env.Spawn("src", func(p *sim.Proc) {
		start := p.Now()
		if err := net.Broadcast(p, 0, Range(0, 64), 12<<20, MainMem, MainMem); err != nil {
			t.Errorf("broadcast failed: %v", err)
		}
		elapsed = p.Now() - start
	})
	env.Run()
	// 12 MiB at ~175 MB/s is ~72 ms.
	sec := elapsed.Seconds()
	if sec < 0.060 || sec > 0.090 {
		t.Fatalf("12 MiB broadcast took %.3fs, want ~0.072s", sec)
	}
	if net.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", net.Broadcasts)
	}
}

// TestConcurrentBroadcastsSerialize verifies that the single hardware
// multicast tree serializes concurrent collectives.
func TestConcurrentBroadcastsSerialize(t *testing.T) {
	env, net := newNet(16)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("src", func(p *sim.Proc) {
			if err := net.Broadcast(p, i, Range(0, 16), 1<<20, NICMem, NICMem); err != nil {
				t.Errorf("broadcast: %v", err)
			}
			done[i] = p.Now()
		})
	}
	env.Run()
	single := net.BroadcastTime(1<<20, Range(0, 16), NICMem, NICMem)
	latest := done[0]
	if done[1] > latest {
		latest = done[1]
	}
	if latest < 2*single-sim.Millisecond {
		t.Fatalf("two broadcasts finished at %v, expected serialization to ~%v", latest, 2*single)
	}
}

func TestPutLatencyAndBandwidth(t *testing.T) {
	env, net := newNet(4)
	var tiny, big sim.Time
	env.Spawn("src", func(p *sim.Proc) {
		start := p.Now()
		if err := net.Put(p, 0, 1, 8); err != nil {
			t.Errorf("put: %v", err)
		}
		tiny = p.Now() - start
		start = p.Now()
		if err := net.Put(p, 0, 1, 1<<20); err != nil {
			t.Errorf("put: %v", err)
		}
		big = p.Now() - start
	})
	env.Run()
	if tiny < 5*sim.Microsecond || tiny > 10*sim.Microsecond {
		t.Fatalf("small-message latency = %v, want ~5-7us", tiny)
	}
	bw := float64(1<<20) / big.Seconds() / 1e6
	if bw < 120 || bw > 180 {
		t.Fatalf("P2P bandwidth = %.1f MB/s, want ~175", bw)
	}
}

func TestConditionalLatencyMatchesFig9(t *testing.T) {
	env, net := newNet(1024)
	var lat sim.Time
	env.Spawn("root", func(p *sim.Proc) {
		start := p.Now()
		net.Conditional(p, Range(0, 1024), func(*NIC) bool { return true })
		lat = p.Now() - start
	})
	env.Run()
	us := lat.Microseconds()
	if us < 5.5 || us > 7 {
		t.Fatalf("1024-node conditional latency = %.2fus, want ~6.5us", us)
	}
}

func TestConditionalGlobalAnd(t *testing.T) {
	env, net := newNet(8)
	for i := 0; i < 8; i++ {
		net.NIC(i).Store("flag", 1)
	}
	var all, notAll bool
	env.Spawn("root", func(p *sim.Proc) {
		all = net.Conditional(p, Range(0, 8), func(n *NIC) bool { return n.Load("flag") >= 1 })
		net.NIC(5).Store("flag", 0)
		notAll = net.Conditional(p, Range(0, 8), func(n *NIC) bool { return n.Load("flag") >= 1 })
	})
	env.Run()
	if !all {
		t.Fatal("conditional false with all flags set")
	}
	if notAll {
		t.Fatal("conditional true with one flag clear")
	}
}

func TestDeadNodeFailsConditional(t *testing.T) {
	env, net := newNet(8)
	net.FailNode(3)
	var ok bool
	env.Spawn("root", func(p *sim.Proc) {
		ok = net.Conditional(p, Range(0, 8), func(*NIC) bool { return true })
	})
	env.Run()
	if ok {
		t.Fatal("conditional over a dead node returned true")
	}
}

func TestDeadNodeFailsBroadcastAtomically(t *testing.T) {
	env, net := newNet(8)
	net.FailNode(6)
	var err error
	var elapsed sim.Time
	env.Spawn("src", func(p *sim.Proc) {
		start := p.Now()
		err = net.Broadcast(p, 0, Range(0, 8), 1<<20, MainMem, MainMem)
		elapsed = p.Now() - start
	})
	env.Run()
	if err == nil {
		t.Fatal("broadcast to a dead node succeeded")
	}
	if _, ok := err.(ErrNodeDead); !ok {
		t.Fatalf("error type = %T", err)
	}
	if elapsed < net.Config().DeadNodeTimeout {
		t.Fatalf("failure reported before hardware timeout: %v", elapsed)
	}
	// Revive and retry: must succeed.
	net.ReviveNode(6)
	env.Spawn("retry", func(p *sim.Proc) {
		if e := net.Broadcast(p, 0, Range(0, 8), 1<<20, MainMem, MainMem); e != nil {
			t.Errorf("broadcast after revive: %v", e)
		}
	})
	env.Run()
}

func TestBackgroundLoadSlowsTransfers(t *testing.T) {
	env, net := newNet(64)
	base := net.BroadcastTime(12<<20, Range(0, 64), MainMem, MainMem)
	net.SetBackgroundLoad(0.9)
	loaded := net.BroadcastTime(12<<20, Range(0, 64), MainMem, MainMem)
	ratio := loaded.Seconds() / base.Seconds()
	if ratio < 9 || ratio > 11 {
		t.Fatalf("90%% background load slowed transfer %.1fx, want ~10x", ratio)
	}
	_ = env
}

func TestBackgroundLoadValidation(t *testing.T) {
	_, net := newNet(4)
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBackgroundLoad(%v) did not panic", bad)
				}
			}()
			net.SetBackgroundLoad(bad)
		}()
	}
}

func TestEventsAndGlobalMemory(t *testing.T) {
	_, net := newNet(2)
	nic := net.NIC(0)
	if nic.Event("launch") != nic.Event("launch") {
		t.Fatal("Event not memoized")
	}
	if nic.Event("launch") == nic.Event("other") {
		t.Fatal("different names share an event")
	}
	if nic.Load("x") != 0 {
		t.Fatal("unwritten global not zero")
	}
	nic.Store("x", 42)
	if nic.Load("x") != 42 {
		t.Fatal("Store/Load roundtrip failed")
	}
	if net.NIC(1).Load("x") != 0 {
		t.Fatal("global memory leaked across nodes")
	}
}

func TestOutOfRangeSetPanics(t *testing.T) {
	env, net := newNet(4)
	panicked := false
	env.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		net.Conditional(p, Range(2, 4), func(*NIC) bool { return true })
	})
	env.Run()
	if !panicked {
		t.Fatal("out-of-range set did not panic")
	}
}

func TestZeroByteTransfer(t *testing.T) {
	env, net := newNet(4)
	env.Spawn("src", func(p *sim.Proc) {
		if err := net.Broadcast(p, 0, Range(0, 4), 0, MainMem, MainMem); err != nil {
			t.Errorf("zero-byte broadcast: %v", err)
		}
	})
	env.Run()
}

func TestCableLengthDefaultsToDiameter(t *testing.T) {
	_, net := newNet(256)
	if got := net.Config().CableMeters; got != netmodel.Diameter(256) {
		t.Fatalf("CableMeters = %v, want Eq. (2) value %v", got, netmodel.Diameter(256))
	}
}

// TestBroadcastTimeMonotonic: transfer time must be non-decreasing in
// message size and destination-set size (property test).
func TestBroadcastTimeMonotonic(t *testing.T) {
	_, net := newNet(256)
	if err := quick.Check(func(a, b uint32, n1, n2 uint8) bool {
		bytesA, bytesB := int64(a%(64<<20)), int64(b%(64<<20))
		if bytesA > bytesB {
			bytesA, bytesB = bytesB, bytesA
		}
		nA, nB := 1+int(n1)%256, 1+int(n2)%256
		if nA > nB {
			nA, nB = nB, nA
		}
		tSmall := net.BroadcastTime(bytesA, Range(0, nA), MainMem, MainMem)
		tBigBytes := net.BroadcastTime(bytesB, Range(0, nA), MainMem, MainMem)
		tBigSet := net.BroadcastTime(bytesA, Range(0, nB), MainMem, MainMem)
		return tBigBytes >= tSmall && tBigSet >= tSmall
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCondLatencyGrowsWithSetSize: the network conditional's latency is
// non-decreasing in the set size.
func TestCondLatencyGrowsWithSetSize(t *testing.T) {
	_, net := newNet(1024)
	prev := sim.Time(0)
	for n := 1; n <= 1024; n *= 2 {
		lat := net.CondLatency(n)
		if lat < prev {
			t.Fatalf("CondLatency(%d) = %v < CondLatency(%d) = %v", n, lat, n/2, prev)
		}
		prev = lat
	}
}

func TestSwitchesBetween(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},   // same node
		{0, 3, 1},   // same leaf switch (group of 4)
		{0, 4, 3},   // adjacent groups: up one level and down
		{0, 15, 3},  // within the same 16-node subtree
		{0, 16, 5},  // crossing the 16-node boundary
		{0, 63, 5},  // within 64
		{0, 64, 7},  // crossing the 64-node boundary
		{5, 6, 1},   // same group
		{60, 63, 1}, // same group at the high end
	}
	for _, c := range cases {
		if got := SwitchesBetween(c.a, c.b); got != c.want {
			t.Errorf("SwitchesBetween(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := SwitchesBetween(c.b, c.a); got != c.want {
			t.Errorf("SwitchesBetween not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestPutLatencyTopologyAware(t *testing.T) {
	env, net := newNet(256)
	var near, far sim.Time
	env.Spawn("src", func(p *sim.Proc) {
		start := p.Now()
		net.Put(p, 0, 1, 8) // same leaf switch
		near = p.Now() - start
		start = p.Now()
		net.Put(p, 0, 255, 8) // across the whole machine
		far = p.Now() - start
	})
	env.Run()
	if far <= near {
		t.Fatalf("distant put (%v) should exceed nearby put (%v)", far, near)
	}
	if far-near > sim.Microsecond {
		t.Fatalf("topology delta implausibly large: %v", far-near)
	}
}
