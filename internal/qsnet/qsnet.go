// Package qsnet simulates the Quadrics QsNET (Elan3) interconnect at the
// level of detail the STORM paper depends on:
//
//   - remote DMA (PUT) between node memories, with distinct performance
//     for host-memory and NIC-memory buffers (the PCI bus is the
//     bottleneck for host-resident buffers, paper Fig. 7);
//   - hardware multicast to a contiguous range of nodes, with the
//     circuit-switched ack-per-packet flow control of paper §3.3.2
//     (320-byte packets, one outstanding packet, ack returns only when all
//     destinations have accepted);
//   - network conditionals: a hardware combining-tree query that returns
//     TRUE iff a condition holds on all nodes of a set, with the barrier
//     latency of paper Fig. 9;
//   - remotely signalable events and per-node global memory (data at the
//     same virtual address on every node), the substrate for the three
//     STORM mechanisms.
//
// Timing comes from the closed-form pipeline model in internal/netmodel,
// which is calibrated to the paper's Table 4; contention is modeled with
// simulator resources (one hardware broadcast in flight per network, one
// injection per link) plus an adjustable background-load factor used by
// the loaded-system experiments (paper Fig. 3).
package qsnet

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// BufferLoc says where a DMA source/destination buffer resides. NIC-memory
// buffers bypass the PCI bus and sustain higher bandwidth (paper Fig. 7),
// but the NIC has far less memory than the host.
type BufferLoc int

const (
	// MainMem is host main memory, reached over the PCI bus.
	MainMem BufferLoc = iota
	// NICMem is memory on the Elan NIC itself.
	NICMem
)

func (l BufferLoc) String() string {
	if l == NICMem {
		return "NIC memory"
	}
	return "main memory"
}

// NodeSet is a contiguous range of node IDs [First, First+N). QsNET
// hardware collectives operate on contiguous ranges; STORM's buddy-tree
// allocator hands out exactly such ranges, which is why the two compose
// (paper §2.1, §2.2).
type NodeSet struct {
	First, N int
}

// Range constructs the node set [first, first+n).
func Range(first, n int) NodeSet { return NodeSet{First: first, N: n} }

// Contains reports whether node id is in the set.
func (s NodeSet) Contains(id int) bool { return id >= s.First && id < s.First+s.N }

// Last returns the largest node ID in the set (First-1 when empty).
func (s NodeSet) Last() int { return s.First + s.N - 1 }

func (s NodeSet) String() string {
	if s.N == 1 {
		return fmt.Sprintf("node %d", s.First)
	}
	return fmt.Sprintf("nodes %d-%d", s.First, s.Last())
}

// Config holds the physical parameters of a simulated QsNET network.
type Config struct {
	// Nodes is the number of compute nodes attached to the network.
	Nodes int
	// CableMeters is the maximum cable length. Zero means "use the
	// paper's Eq. (2) floor-plan estimate for this node count".
	CableMeters float64
	// PutStartup is the software+DMA-descriptor startup cost of a PUT or
	// multicast operation.
	PutStartup sim.Time
	// CondLatencyUs overrides the network-conditional latency in µs;
	// zero means "use the Fig. 9 barrier model for this node count".
	CondLatencyUs float64
	// MainMemBWMBs caps per-packet throughput when a buffer is in host
	// memory (PCI-limited; paper Fig. 7: 175 MB/s).
	MainMemBWMBs float64
	// NICMemBWMBs caps per-packet throughput for NIC-resident buffers
	// (paper Fig. 7: 312 MB/s on 64 nodes; effectively the link rate).
	NICMemBWMBs float64
	// P2PLatency is the one-way small-message latency of a point-to-point
	// PUT (a few µs on Elan3).
	P2PLatency sim.Time
	// P2PBWMBs is the point-to-point bandwidth for host-memory transfers.
	P2PBWMBs float64
	// DeadNodeTimeout is how long a hardware operation waits before
	// reporting an error when a destination node is dead.
	DeadNodeTimeout sim.Time
}

// DefaultConfig returns the parameters of the paper's evaluation cluster
// scaled to the given node count.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		CableMeters:     0, // Eq. (2)
		PutStartup:      40 * sim.Microsecond,
		MainMemBWMBs:    netmodel.MainMemBroadcastMBs,
		NICMemBWMBs:     netmodel.LinkPeakMBs,
		P2PLatency:      5 * sim.Microsecond,
		P2PBWMBs:        netmodel.MainMemBroadcastMBs,
		DeadNodeTimeout: 2 * sim.Second,
	}
}

// NIC models one node's Elan3 network interface: its remotely signalable
// events and its window of global memory.
type NIC struct {
	id     int
	net    *Network
	events map[string]*sim.Event
	gmem   map[string]int64
	link   *sim.Resource // injection port: one outbound DMA at a time
	dead   bool
}

// ID returns the node ID this NIC belongs to.
func (n *NIC) ID() int { return n.id }

// Event returns the named local event, creating it on first use. Events
// are the completion/notification primitive behind XFER-AND-SIGNAL and
// TEST-EVENT.
func (n *NIC) Event(name string) *sim.Event {
	ev, ok := n.events[name]
	if !ok {
		ev = sim.NewEvent(n.net.env)
		n.events[name] = ev
	}
	return ev
}

// Load reads the named global variable (zero if never written).
func (n *NIC) Load(name string) int64 { return n.gmem[name] }

// Store writes the named global variable.
func (n *NIC) Store(name string, v int64) { n.gmem[name] = v }

// Dead reports whether the node has been failed by fault injection.
func (n *NIC) Dead() bool { return n.dead }

// Network is a simulated QsNET fabric connecting Config.Nodes nodes.
type Network struct {
	env    *sim.Env
	cfg    Config
	nics   []*NIC
	bcast  *sim.Resource // the hardware multicast tree: one collective at a time
	bgLoad float64       // background utilization in [0, 1)

	// Counters for tests and diagnostics.
	Broadcasts int
	Puts       int
	Conds      int
}

// ErrNodeDead is returned by operations whose destination set includes a
// failed node: the hardware cannot collect the ack, so after a timeout the
// operation reports failure having delivered to no one (atomicity,
// paper §2.2 point 2).
type ErrNodeDead struct{ Node int }

func (e ErrNodeDead) Error() string { return fmt.Sprintf("qsnet: node %d is dead", e.Node) }

// New builds a network. Panics on a non-positive node count.
func New(env *sim.Env, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("qsnet: need at least one node")
	}
	if cfg.CableMeters == 0 {
		cfg.CableMeters = netmodel.Diameter(cfg.Nodes)
	}
	net := &Network{env: env, cfg: cfg}
	net.bcast = sim.NewResource(env, 1)
	net.nics = make([]*NIC, cfg.Nodes)
	for i := range net.nics {
		net.nics[i] = &NIC{
			id:     i,
			net:    net,
			events: make(map[string]*sim.Event),
			gmem:   make(map[string]int64),
			link:   sim.NewResource(env, 1),
		}
	}
	return net
}

// Env returns the simulation environment the network runs in.
func (net *Network) Env() *sim.Env { return net.env }

// Config returns the network's configuration.
func (net *Network) Config() Config { return net.cfg }

// Nodes returns the number of attached nodes.
func (net *Network) Nodes() int { return net.cfg.Nodes }

// NIC returns node id's network interface.
func (net *Network) NIC(id int) *NIC { return net.nics[id] }

// SetBackgroundLoad sets the fraction of fabric capacity consumed by
// traffic outside the model (the paper's network-loaded experiments,
// Fig. 3). Transfers take 1/(1-u) times longer. u must be in [0, 1).
func (net *Network) SetBackgroundLoad(u float64) {
	if u < 0 || u >= 1 {
		panic("qsnet: background load must be in [0, 1)")
	}
	net.bgLoad = u
}

// BackgroundLoad returns the current background utilization.
func (net *Network) BackgroundLoad() float64 { return net.bgLoad }

// FailNode marks a node dead: it stops acking packets and its conditional
// contributions read as false.
func (net *Network) FailNode(id int) { net.nics[id].dead = true }

// ReviveNode brings a failed node back (used by recovery tests).
func (net *Network) ReviveNode(id int) { net.nics[id].dead = false }

// stretch applies the background-load slowdown to a duration.
func (net *Network) stretch(d sim.Time) sim.Time {
	if net.bgLoad == 0 {
		return d
	}
	return sim.FromSeconds(d.Seconds() / (1 - net.bgLoad))
}

// packetPeriod returns the steady-state per-packet period for a collective
// reaching n nodes with buffers at the given locations.
func (net *Network) packetPeriod(nodes int, src, dst BufferLoc) sim.Time {
	periodNs := netmodel.PacketPeriodNs(netmodel.Switches(nodes), net.cfg.CableMeters)
	// A host-memory buffer on either side throttles the packet stream to
	// the PCI-sustainable rate.
	cap := net.cfg.NICMemBWMBs
	if src == MainMem || dst == MainMem {
		cap = net.cfg.MainMemBWMBs
	}
	minPeriodNs := netmodel.PacketBytes / cap * 1000
	if periodNs < minPeriodNs {
		periodNs = minPeriodNs
	}
	return sim.FromSeconds(periodNs * 1e-9)
}

// xferTime returns the wire time for a transfer of the given size.
func (net *Network) xferTime(bytes int64, nodes int, src, dst BufferLoc) sim.Time {
	if bytes <= 0 {
		return net.stretch(net.cfg.PutStartup)
	}
	packets := (bytes + int64(netmodel.PacketBytes) - 1) / int64(netmodel.PacketBytes)
	return net.stretch(net.cfg.PutStartup + sim.Time(packets)*net.packetPeriod(nodes, src, dst))
}

// BroadcastTime predicts the duration of a hardware multicast without
// performing one (used by capacity planning and tests).
func (net *Network) BroadcastTime(bytes int64, dests NodeSet, src, dst BufferLoc) sim.Time {
	return net.xferTime(bytes, dests.N, src, dst)
}

// Broadcast performs a hardware multicast of bytes from node src to every
// node in dests, blocking the calling process for the transfer duration.
// It is atomic: if any destination is dead, no destination receives the
// data and an ErrNodeDead is returned after the hardware timeout.
// Releases are deferred so a killed caller (job cancellation) cannot leak
// the injection link or the multicast tree.
func (net *Network) Broadcast(p *sim.Proc, src int, dests NodeSet, bytes int64, srcLoc, dstLoc BufferLoc) error {
	net.checkSet(dests)
	net.Broadcasts++
	nic := net.nics[src]
	nic.link.Acquire(p)
	defer nic.link.Release()
	net.bcast.Acquire(p)
	defer net.bcast.Release()
	return net.deliver(p, dests, bytes, srcLoc, dstLoc)
}

// deliver waits the transfer (or timeout) duration and reports failure if
// any destination is dead.
func (net *Network) deliver(p *sim.Proc, dests NodeSet, bytes int64, srcLoc, dstLoc BufferLoc) error {
	for id := dests.First; id <= dests.Last(); id++ {
		if net.nics[id].dead {
			p.Wait(net.cfg.DeadNodeTimeout)
			return ErrNodeDead{Node: id}
		}
	}
	p.Wait(net.xferTime(bytes, dests.N, srcLoc, dstLoc))
	return nil
}

// SwitchesBetween returns the number of switches a packet crosses
// between two nodes of the quaternary fat tree: up to their lowest
// common ancestor level and back down (nodes under one leaf switch cross
// exactly one).
func SwitchesBetween(a, b int) int {
	if a == b {
		return 0
	}
	level := 1
	for a/4 != b/4 {
		a /= 4
		b /= 4
		level++
	}
	return 2*level - 1
}

// Put performs a point-to-point remote DMA of bytes from node src to node
// dst, blocking the calling process. Latency is topology-aware: distant
// nodes cross more fat-tree stages. The link release is deferred so a
// killed caller (job cancellation mid-send) cannot leak the port.
func (net *Network) Put(p *sim.Proc, src, dst int, bytes int64) error {
	net.Puts++
	nic := net.nics[src]
	nic.link.Acquire(p)
	defer nic.link.Release()
	if net.nics[dst].dead {
		p.Wait(net.cfg.DeadNodeTimeout)
		return ErrNodeDead{Node: dst}
	}
	per := sim.FromSeconds(netmodel.PacketBytes / (net.cfg.P2PBWMBs * 1e6))
	packets := (bytes + int64(netmodel.PacketBytes) - 1) / int64(netmodel.PacketBytes)
	if packets < 1 {
		packets = 1
	}
	hops := sim.FromSeconds(float64(SwitchesBetween(src, dst)) * 36.7e-9)
	p.Wait(net.stretch(net.cfg.P2PLatency + hops + sim.Time(packets)*per))
	return nil
}

// CondLatency returns the latency of one network-conditional round over a
// set of the given size (paper Fig. 9).
func (net *Network) CondLatency(nodes int) sim.Time {
	us := net.cfg.CondLatencyUs
	if us == 0 {
		us = netmodel.BarrierLatencyUs(nodes)
	}
	return net.stretch(sim.FromMicroseconds(us))
}

// Conditional evaluates eval on every node of dests through the hardware
// combining tree and returns TRUE iff it holds on all of them, blocking
// the caller for the barrier latency. Dead nodes cannot assert the
// condition, so their membership forces FALSE — exactly the property the
// paper's fault-detection sketch relies on (§4).
func (net *Network) Conditional(p *sim.Proc, dests NodeSet, eval func(nic *NIC) bool) bool {
	net.checkSet(dests)
	net.Conds++
	p.Wait(net.CondLatency(dests.N))
	for id := dests.First; id <= dests.Last(); id++ {
		if net.nics[id].dead || !eval(net.nics[id]) {
			return false
		}
	}
	return true
}

func (net *Network) checkSet(s NodeSet) {
	if s.N <= 0 || s.First < 0 || s.Last() >= net.cfg.Nodes {
		panic(fmt.Sprintf("qsnet: node set %+v out of range (0-%d)", s, net.cfg.Nodes-1))
	}
}
