package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/place"
)

func init() {
	register("placecmp",
		"Resource-aware placement policies on heterogeneous and oversubscribed clusters (R-Storm axis)",
		placecmp)
}

// placecmp replays one seeded gang stream per scenario through the
// shared placement engine (the exact code the live MM runs under
// mm.mu) under each policy, and reports deterministic placement-quality
// figures: how many gangs seated, the locality objective (mean
// pairwise tree-distance span), and the load imbalance. No wall-clock
// values appear — the tables are byte-identical across runs and worker
// counts; placement throughput lives in the Go benchmarks.

// placeScenario is one cluster shape × workload mix.
type placeScenario struct {
	name   string
	nodes  int
	fanout int
	cap    func(id int) place.Vec
	// job derives gang i's size, per-member demand, and lifetime (how
	// many subsequent arrivals it stays resident for).
	job func(r *rand.Rand) (gang int, d place.Vec, life int)
}

// placeOutcome is one (scenario, policy) replay's aggregate.
type placeOutcome struct {
	placed, refused int
	spanMean        float64
	peakLoad        int
	loadSpread      float64 // max-min node load at end of replay
}

func replayPlacement(sc placeScenario, pol place.Policy, seed uint64, jobs int) placeOutcome {
	e := place.NewEngine(sc.nodes)
	for id := 0; id < sc.nodes; id++ {
		e.SetNode(id, sc.cap(id))
	}
	r := rand.New(rand.NewSource(int64(seed)))
	type resident struct {
		ids   []int
		d     place.Vec
		leave int
	}
	var live []resident
	var out placeOutcome
	spanSum := 0
	for i := 0; i < jobs; i++ {
		// Departures first, in admission order — deterministic.
		kept := live[:0]
		for _, res := range live {
			if res.leave <= i {
				for _, id := range res.ids {
					e.Release(id, res.d)
				}
			} else {
				kept = append(kept, res)
			}
		}
		live = kept
		gang, d, life := sc.job(r)
		ids, err := e.Pick(gang, d, pol, nil)
		if err != nil {
			out.refused++
			continue
		}
		out.placed++
		spanSum += place.Span(ids, sc.fanout)
		for _, id := range ids {
			e.Commit(id, d)
			if l := e.Load(id); l > out.peakLoad {
				out.peakLoad = l
			}
		}
		live = append(live, resident{ids: ids, d: d, leave: i + life})
	}
	if out.placed > 0 {
		out.spanMean = float64(spanSum) / float64(out.placed)
	}
	min, max := -1, 0
	e.Each(func(id int, cap, used place.Vec, load int, eligible bool) {
		if load > max {
			max = load
		}
		if min < 0 || load < min {
			min = load
		}
	})
	if min < 0 {
		min = 0
	}
	out.loadSpread = float64(max - min)
	return out
}

func placecmp(opt Options) (*Result, error) {
	jobs := 2000
	if opt.Quick {
		jobs = 300
	}
	scenarios := []placeScenario{
		{
			// The baseline the paper's homogeneous clusters assume.
			name: "uniform", nodes: 64, fanout: 4,
			cap: func(id int) place.Vec { return place.Vec{CPU: 8, Mem: 8192, Net: 100} },
			job: func(r *rand.Rand) (int, place.Vec, int) {
				return 2 + r.Intn(7), place.Vec{CPU: 1, Mem: 256 << r.Intn(3), Net: 5}, 4 + r.Intn(12)
			},
		},
		{
			// Heterogeneous: a fat quarter and a thin remainder — the
			// scenario axis the paper never had. Fat demands only fit
			// the fat nodes once the thin ones carry any load.
			name: "heterogeneous", nodes: 64, fanout: 4,
			cap: func(id int) place.Vec {
				if id%4 == 0 {
					return place.Vec{CPU: 16, Mem: 16384, Net: 200}
				}
				return place.Vec{CPU: 4, Mem: 2048, Net: 50}
			},
			job: func(r *rand.Rand) (int, place.Vec, int) {
				if r.Intn(4) == 0 {
					return 2 + r.Intn(3), place.Vec{CPU: 6, Mem: 3072, Net: 40}, 6 + r.Intn(10)
				}
				return 2 + r.Intn(7), place.Vec{CPU: 1, Mem: 512, Net: 5}, 4 + r.Intn(8)
			},
		},
		{
			// Oversubscribed: aggregate demand persistently exceeds
			// capacity, so refusals are expected and fragmentation
			// decides how many big gangs still seat.
			name: "oversubscribed", nodes: 64, fanout: 4,
			cap: func(id int) place.Vec { return place.Vec{CPU: 4, Mem: 4096, Net: 50} },
			job: func(r *rand.Rand) (int, place.Vec, int) {
				return 4 + r.Intn(9), place.Vec{CPU: 2, Mem: 1024, Net: 10}, 10 + r.Intn(20)
			},
		},
	}
	policies := []place.Policy{place.Spread, place.Locality}
	type point struct {
		sc  placeScenario
		pol place.Policy
	}
	var points []point
	for _, sc := range scenarios {
		for _, pol := range policies {
			points = append(points, point{sc, pol})
		}
	}
	outs := sweep.Run(points, opt.Workers, func(_ int, pt point) placeOutcome {
		return replayPlacement(pt.sc, pt.pol, opt.seed(), jobs)
	})
	tab := metrics.NewTable(
		fmt.Sprintf("Placement policies on a %d-gang stream per scenario, 64 nodes (fanout-4 heap topology)", jobs),
		"Scenario", "Policy", "Placed", "Refused", "Mean span (hops)", "Peak node load", "Final load spread")
	for i, pt := range points {
		o := outs[i]
		tab.AddRow(pt.sc.name, pt.pol.String(), o.placed, o.refused, o.spanMean, o.peakLoad, o.loadSpread)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Same engine, same seeded gang stream, two policies: spread is the",
			"classic deterministic least-loaded order; locality packs each gang",
			"into the smallest aligned subtree with free capacity. Span is the",
			"mean pairwise tree-distance between gang members — the relay hops",
			"a communicating gang pays on shaped links. Expect locality to cut",
			"span severalfold at equal feasibility on uniform clusters, and to",
			"seat no fewer gangs when the cluster is oversubscribed (packing",
			"preserves whole subtrees for the big gangs).",
		},
	}, nil
}
