package experiments

import (
	"fmt"

	"repro/internal/experiments/sweep"
	"repro/internal/fsim"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/qsnet"
	"repro/internal/sim"
)

func init() {
	register("fig6", "Read bandwidth from NFS, local disk, and RAM disk (paper Fig. 6)", fig6)
	register("fig7", "Broadcast bandwidth from NIC- vs. host-resident buffers (paper Fig. 7)", fig7)
	register("fig9", "Barrier-synchronization latency vs. nodes (paper Fig. 9)", fig9)
	register("table4", "Hardware broadcast bandwidth vs. nodes and cable length (paper Table 4)", table4)
	register("fig10", "Measured and modeled launch times to 16,384 nodes (paper Fig. 10)", fig10)
	register("table5", "Expected mechanism performance on other networks (paper Table 5)", table5)
}

func fig6(opt Options) (*Result, error) {
	tab := metrics.NewTable("Read bandwidth for a 12 MB binary (MB/s)",
		"Filesystem", "Into NIC memory", "Into main memory")
	const bytes = 12_000_000
	for _, kind := range []fsim.Kind{fsim.NFS, fsim.LocalDisk, fsim.RAMDisk} {
		row := []interface{}{kind.String()}
		for _, loc := range []qsnet.BufferLoc{qsnet.NICMem, qsnet.MainMem} {
			env := sim.NewEnv()
			fs := fsim.NewDefault(env, kind, opt.seed())
			var elapsed sim.Time
			loc := loc
			env.Spawn("reader", func(p *sim.Proc) {
				start := p.Now()
				if err := fs.Read(p, bytes, loc); err == nil {
					elapsed = p.Now() - start
				}
			})
			env.Run()
			opt.recordEvents(env)
			row = append(row, float64(bytes)/elapsed.Seconds()/1e6)
		}
		tab.AddRow(row...)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: NFS 11.2/11.4, local ext2 30.5/31.5,",
			"RAM disk 120/218 MB/s (NIC/main). Only for the RAM disk does the",
			"buffer location matter.",
		},
	}, nil
}

func fig7(opt Options) (*Result, error) {
	sizesKB := []int64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	if opt.Quick {
		sizesKB = []int64{100, 500, 1000}
	}
	tab := metrics.NewTable("Broadcast bandwidth on 64 nodes (MB/s)",
		"Message size (KB)", "NIC memory", "Main memory")
	env := sim.NewEnv()
	cfg := qsnet.DefaultConfig(64)
	cfg.CableMeters = 10
	net := qsnet.New(env, cfg)
	for _, kb := range sizesKB {
		bytes := kb * 1000
		nic := net.BroadcastTime(bytes, qsnet.Range(0, 64), qsnet.NICMem, qsnet.NICMem)
		mm := net.BroadcastTime(bytes, qsnet.Range(0, 64), qsnet.MainMem, qsnet.MainMem)
		tab.AddRow(kb, float64(bytes)/nic.Seconds()/1e6, float64(bytes)/mm.Seconds()/1e6)
	}
	opt.recordEvents(env)
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: asymptotes of ~312 MB/s (NIC-resident buffers)",
			"and ~175 MB/s (host buffers, PCI-limited).",
		},
	}, nil
}

func fig9(opt Options) (*Result, error) {
	nodesAxis := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if opt.Quick {
		nodesAxis = []int{1, 16, 256, 1024}
	}
	tab := metrics.NewTable("Barrier synchronization latency (us)",
		"Nodes", "Measured (simulated fabric)", "Model")
	lats := sweep.Run(nodesAxis, opt.Workers, func(_ int, n int) sim.Time {
		env := sim.NewEnv()
		net := qsnet.New(env, qsnet.DefaultConfig(n))
		var lat sim.Time
		env.Spawn("root", func(p *sim.Proc) {
			start := p.Now()
			// Average several rounds as on the real machine.
			const rounds = 10
			for i := 0; i < rounds; i++ {
				net.Conditional(p, qsnet.Range(0, n), func(*qsnet.NIC) bool { return true })
			}
			lat = (p.Now() - start) / rounds
		})
		env.Run()
		opt.recordEvents(env)
		return lat
	})
	for i, n := range nodesAxis {
		tab.AddRow(n, lats[i].Microseconds(), netmodel.BarrierLatencyUs(n))
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference (Terascale Computing System): ~4.5 us at small",
			"scale, growing only ~2 us across a 384x increase in nodes.",
		},
	}, nil
}

func table4(opt Options) (*Result, error) {
	cables := []float64{10, 20, 30, 40, 60, 80, 100}
	headers := []string{"Nodes", "Processors", "Stages", "Switches"}
	for _, c := range cables {
		headers = append(headers, fmt.Sprintf("%gm", c))
	}
	tab := metrics.NewTable("Asymptotic broadcast bandwidth (MB/s)", headers...)
	nodeAxis := []int{4, 16, 64, 256, 1024, 4096}
	rows := sweep.Run(nodeAxis, opt.Workers, func(_ int, nodes int) []interface{} {
		row := []interface{}{nodes, nodes * 4, netmodel.Stages(nodes), netmodel.Switches(nodes)}
		for _, c := range cables {
			row = append(row, netmodel.BroadcastBW(nodes, c))
		}
		return row
	})
	for _, row := range rows {
		tab.AddRow(row...)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Every cell reproduces the paper's vendor-provided Table 4 within",
			"~1.5% via the fitted ack-per-packet pipeline model.",
		},
	}, nil
}

func fig10(opt Options) (*Result, error) {
	measuredAxis := []int{1, 2, 4, 8, 16, 32, 64}
	if opt.Quick {
		measuredAxis = []int{1, 8, 64}
	}
	meas := metrics.NewTable("Measured 12 MB launch times (simulated cluster)",
		"Nodes", "Launch time (ms)")
	measured := sweep.Run(measuredAxis, opt.Workers, func(_ int, n int) launchResult {
		return meanLaunch(opt, n*4, 12_000_000, unloaded, nil)
	})
	for i, n := range measuredAxis {
		if measured[i].Failed {
			return nil, fmt.Errorf("launch failed at %d nodes", n)
		}
		meas.AddRow(n, measured[i].TotalSec*1000)
	}
	model := metrics.NewTable("Modeled 12 MB launch times (paper Eq. 3)",
		"Nodes", "ES40 (ms)", "Ideal I/O bus (ms)")
	for n := 1; n <= 16384; n *= 2 {
		model.AddRow(n, netmodel.LaunchTimeES40(n, 12)*1000, netmodel.LaunchTimeIdeal(n, 12)*1000)
	}
	return &Result{
		Tables: []*metrics.Table{meas, model},
		Notes: []string{
			"Paper reference: a 12 MB binary launches in ~135 ms even on",
			"16,384 nodes; the ES40 and ideal-I/O models converge beyond 4,096",
			"nodes where the network broadcast becomes the shared bottleneck.",
		},
	}, nil
}

func table5(opt Options) (*Result, error) {
	tab := metrics.NewTable("Measured/expected performance of the STORM mechanisms",
		"Network", "COMPARE-AND-WRITE (us)", "XFER-AND-SIGNAL (MB/s)", "Emulated")
	const n = 1024
	for _, alt := range netmodel.AltNetworks() {
		caw := fmt.Sprintf("%.0f", alt.CompareAndWriteUs(n))
		switch alt.Name {
		case "Gigabit Ethernet":
			caw = "46 log n = " + caw
		case "Myrinet", "Infiniband":
			caw = "20 log n = " + caw
		case "QsNET":
			caw = "< 10 (" + caw + ")"
		case "BlueGene/L":
			caw = "< 2"
		}
		bw := alt.XferBWMBs(n)
		bwStr := "not available"
		if bw == bw { // not NaN
			bwStr = fmt.Sprintf("%.0f (at n=%d)", bw, n)
		}
		tab.AddRow(alt.Name, caw, bwStr, fmt.Sprintf("%v", alt.Emulated))
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Values at n = 1024 nodes, from the literature models the paper",
			"cites; QsNET values come from this reproduction's Fig. 9 model.",
		},
	}, nil
}
