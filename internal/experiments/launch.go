package experiments

import (
	"fmt"

	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/storm"
)

func init() {
	register("fig2", "Send and execute times for 4/8/12 MB binaries on an unloaded system (paper Fig. 2)", fig2)
	register("fig3", "Send and execute times for a 12 MB binary under load (paper Fig. 3)", fig3)
	register("fig8", "Send time vs. fragment size and slot count (paper Fig. 8)", fig8)
}

// peAxis returns the processor counts of the paper's launch plots
// (1-256 processors on 4-way nodes).
func peAxis(quick bool) []int {
	if quick {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

func fig2(opt Options) (*Result, error) {
	sizes := []int64{4, 8, 12}
	if opt.Quick {
		sizes = []int64{4, 12}
	}
	type point struct {
		mb  int64
		pes int
	}
	var pts []point
	for _, mb := range sizes {
		for _, pes := range peAxis(opt.Quick) {
			pts = append(pts, point{mb, pes})
		}
	}
	outs := sweep.Run(pts, opt.Workers, func(_ int, pt point) launchResult {
		return meanLaunch(opt, pt.pes, pt.mb*1_000_000, unloaded, nil)
	})
	tab := metrics.NewTable("Launch time decomposition, unloaded system (ms)",
		"Processors", "Binary (MB)", "Send (ms)", "Execute (ms)", "Total (ms)")
	for i, pt := range pts {
		lr := outs[i]
		if lr.Failed {
			return nil, fmt.Errorf("launch failed at %d PEs", pt.pes)
		}
		tab.AddRow(pt.pes, pt.mb, lr.SendSec*1000, lr.ExecSec*1000, lr.TotalSec*1000)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference points: 12 MB on 256 PEs launches in ~110 ms total,",
			"~96 ms of it transfer (protocol bandwidth ~125-131 MB/s per node).",
			"Send time is proportional to binary size and nearly flat in node",
			"count; execute time is size-independent and grows with node count",
			"(OS-scheduling skew).",
		},
	}, nil
}

func fig3(opt Options) (*Result, error) {
	type point struct {
		load loadKind
		pes  int
	}
	var pts []point
	for _, load := range []loadKind{unloaded, cpuLoaded, netLoaded} {
		for _, pes := range peAxis(opt.Quick) {
			pts = append(pts, point{load, pes})
		}
	}
	outs := sweep.Run(pts, opt.Workers, func(_ int, pt point) launchResult {
		return meanLaunch(opt, pt.pes, 12_000_000, pt.load, nil)
	})
	tab := metrics.NewTable("12 MB launch under load (ms)",
		"Processors", "Load", "Send (ms)", "Execute (ms)", "Total (ms)")
	for i, pt := range pts {
		lr := outs[i]
		if lr.Failed {
			return nil, fmt.Errorf("launch failed at %d PEs under %v", pt.pes, pt.load)
		}
		tab.AddRow(pt.pes, pt.load.String(), lr.SendSec*1000, lr.ExecSec*1000, lr.TotalSec*1000)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: even in the worst case (network-loaded, 256 PEs)",
			"the 12 MB launch takes only ~1.5 s; CPU load is clearly milder.",
		},
	}, nil
}

func fig8(opt Options) (*Result, error) {
	chunksKB := []int64{32, 64, 128, 256, 512, 1024}
	slots := []int{2, 4, 8, 16}
	if opt.Quick {
		chunksKB = []int64{32, 512, 1024}
		slots = []int{4, 16}
	}
	pes := 256
	if opt.Quick {
		pes = 64
	}
	type point struct {
		ckb int64
		sl  int
	}
	var pts []point
	for _, ckb := range chunksKB {
		for _, sl := range slots {
			pts = append(pts, point{ckb, sl})
		}
	}
	outs := sweep.Run(pts, opt.Workers, func(_ int, pt point) launchResult {
		return meanLaunch(opt, pes, 12_000_000, unloaded, func(c *storm.Config) {
			c.ChunkBytes = pt.ckb << 10
			c.Slots = pt.sl
		})
	})
	tab := metrics.NewTable("12 MB send time by fragment size and slot count (ms), 64 nodes",
		append([]string{"Chunk (KB)"}, func() []string {
			var h []string
			for _, s := range slots {
				h = append(h, fmt.Sprintf("%d slots", s))
			}
			return h
		}()...)...)
	for ci, ckb := range chunksKB {
		row := make([]interface{}, 0, len(slots)+1)
		row = append(row, ckb)
		for si := range slots {
			lr := outs[ci*len(slots)+si]
			if lr.Failed {
				return nil, fmt.Errorf("launch failed at chunk %dKB, %d slots", ckb, slots[si])
			}
			row = append(row, lr.SendSec*1000)
		}
		tab.AddRow(row...)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: best performance with 4 slots of 512 KB; the",
			"protocol is almost insensitive to the slot count, and very large",
			"slot x chunk footprints lose bandwidth to NIC TLB misses.",
		},
	}, nil
}
