package experiments

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

func init() {
	register("interactive",
		"Interactive-job response time on a busy machine (paper Table 1 / §4 motivation)",
		interactive)
}

// interactive measures what the paper's usability table is about: a
// 5-second "interactive" job arrives while a long batch job occupies the
// whole machine. Under space-shared batch scheduling it waits for the
// machine; under STORM's fine-grain gang scheduling it starts within a
// couple of timeslices and timeshares.
func interactive(opt Options) (*Result, error) {
	nodes := 16
	longRun := 60 * sim.Second
	if opt.Quick {
		nodes = 8
		longRun = 10 * sim.Second
	}
	shortRun := longRun / 12

	type outcome struct {
		wait, resp float64
	}
	run := func(policy sched.Policy) (outcome, error) {
		env := sim.NewEnv()
		cfg := storm.DefaultConfig(nodes)
		cfg.Policy = policy
		cfg.Timeslice = 50 * sim.Millisecond
		cfg.Seed = opt.seed()
		s := storm.New(env, cfg)
		long := s.Submit(&job.Job{
			Name: "batch-hog", BinaryBytes: 12_000_000, NodesWanted: nodes, PEsPerNode: 2,
			Program:    workload.Synthetic{Total: longRun, BarrierEvery: sim.Second},
			EstRuntime: longRun + sim.Second,
		})
		var inter *job.Job
		env.Spawn("user", func(p *sim.Proc) {
			// The user shows up two seconds into the long job's run.
			p.WaitUntil(2 * sim.Second)
			inter = s.Submit(&job.Job{
				Name: "interactive", BinaryBytes: 2_000_000, NodesWanted: nodes, PEsPerNode: 2,
				Program:    workload.Synthetic{Total: shortRun, BarrierEvery: 100 * sim.Millisecond},
				EstRuntime: shortRun + sim.Second,
			})
		})
		for inter == nil {
			env.RunUntil(env.Now() + sim.Second)
		}
		s.RunUntilDone(long, inter)
		defer s.Shutdown()
		if long.State != job.Finished || inter.State != job.Finished {
			return outcome{}, fmt.Errorf("%s: jobs did not finish", policy.Name())
		}
		return outcome{
			wait: (inter.FirstRun - inter.SubmitTime).Seconds(),
			resp: (inter.EndTime - inter.SubmitTime).Seconds(),
		}, nil
	}

	tab := metrics.NewTable(
		fmt.Sprintf("A %.1fs interactive job arriving while a %.0fs job holds all %d nodes",
			shortRun.Seconds(), longRun.Seconds(), nodes),
		"Policy", "Start delay (s)", "Response time (s)")
	for _, p := range []sched.Policy{
		sched.BatchFCFS{},
		sched.GangFCFS{MPL: 2},
		sched.ImplicitCosched{MPL: 2},
	} {
		o, err := run(p)
		if err != nil {
			return nil, err
		}
		tab.AddRow(p.Name(), o.wait, o.resp)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper Table 1: batch queueing makes launch latency 'arbitrarily",
			"long'; STORM's millisecond-quanta gang scheduling gives the",
			"interactive job a timeshared slot within a couple of timeslices",
			"at ~2x its dedicated runtime.",
		},
	}, nil
}
