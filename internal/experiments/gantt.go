package experiments

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

func init() {
	register("gantt",
		"Job-lifecycle Gantt chart of a small gang-scheduled workload (monitoring demo, paper §4)",
		gantt)
}

// gantt runs a deterministic mixed workload under gang scheduling with
// the trace timeline enabled and renders the lifecycle Gantt: 'q'ueued,
// 'T'ransferring, 'R'unning spans per job.
func gantt(opt Options) (*Result, error) {
	nodes := 8
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Timeslice = 10 * sim.Millisecond
	cfg.Policy = sched.GangFCFS{MPL: 2}
	cfg.Seed = opt.seed()
	cfg.StartNoise = false
	s := storm.New(env, cfg)
	tl := s.EnableTimeline()

	specs := []struct {
		name  string
		nodes int
		secs  float64
		at    sim.Time
	}{
		{"wide-long", 8, 1.2, 0},
		{"half-a", 4, 0.6, 100 * sim.Millisecond},
		{"half-b", 4, 0.5, 150 * sim.Millisecond},
		{"narrow", 2, 0.3, 400 * sim.Millisecond},
		{"late-wide", 8, 0.4, 700 * sim.Millisecond},
	}
	jobs := make([]*job.Job, len(specs))
	env.Spawn("submitter", func(p *sim.Proc) {
		for i, sp := range specs {
			p.WaitUntil(sp.at)
			jobs[i] = s.Submit(&job.Job{
				Name: sp.name, BinaryBytes: 1_000_000,
				NodesWanted: sp.nodes, PEsPerNode: 2,
				Program: workload.Synthetic{Total: sim.FromSeconds(sp.secs), BarrierEvery: 100 * sim.Millisecond},
			})
		}
	})
	done := func() bool {
		for _, j := range jobs {
			if j == nil || j.State != job.Finished {
				return false
			}
		}
		return true
	}
	for guard := 0; !done(); guard++ {
		env.RunUntil(env.Now() + sim.Second)
		if guard > 1000 {
			s.Shutdown()
			return nil, fmt.Errorf("gantt workload never drained")
		}
	}
	defer s.Shutdown()

	tab := metrics.NewTable("Workload summary",
		"Job", "Nodes", "Submit (s)", "Start (s)", "End (s)", "Response (s)")
	for _, j := range jobs {
		tab.AddRow(j.Name, j.NodesWanted, j.SubmitTime.Seconds(), j.FirstRun.Seconds(),
			j.EndTime.Seconds(), (j.EndTime - j.SubmitTime).Seconds())
	}
	chart := tl.Render(tl.End(), 72)
	return &Result{
		Tables: []*metrics.Table{tab},
		Text:   []string{chart},
		Notes: []string{
			"Legend: q = queued, T = binary transfer, R = placed/running,",
			". = not yet submitted / finished. Utilization: " +
				fmt.Sprintf("%.0f%% of compute CPUs busy over the run.", s.Utilization()*100),
		},
	}, nil
}
