// Package experiments contains one driver per table and figure of the
// STORM paper's evaluation. Each driver builds the simulated systems it
// needs, runs the measurement, and returns text tables whose rows mirror
// what the paper plots; cmd/stormsim prints them and the repository's
// benchmarks time them.
package experiments

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/storm"
)

// Options control an experiment run.
type Options struct {
	// Quick shrinks configurations (fewer points, smaller machines,
	// scaled-down applications) so the full suite runs in seconds. The
	// full-size runs reproduce the paper's exact configurations.
	Quick bool
	// Seed drives all simulation randomness.
	Seed uint64
	// Repeats is the number of measurement repetitions (the paper used
	// 3-20); zero picks a per-experiment default.
	Repeats int
	// Workers bounds how many sweep points run concurrently (each on its
	// own sim.Env): 0 means GOMAXPROCS, 1 forces a serial run. Tables are
	// assembled in input order, so the output is identical at any value.
	Workers int
	// Events, when non-nil, accumulates the dispatched-event counts of
	// the simulations the drivers run — the suite's throughput metric.
	// It is atomic because sweep points retire from worker goroutines.
	Events *atomic.Uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// recordEvents adds a finished simulation's dispatched-event count to the
// Events sink, if one is attached. Safe from any worker goroutine.
func (o Options) recordEvents(env *sim.Env) {
	if o.Events != nil {
		o.Events.Add(env.EventsRun())
	}
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Text holds preformatted blocks (e.g. Gantt charts) printed verbatim.
	Text  []string
	Notes []string
}

// runner is a registered experiment driver.
type runner struct {
	title string
	fn    func(Options) (*Result, error)
}

var registry = map[string]runner{}

func register(id, title string, fn func(Options) (*Result, error)) {
	registry[id] = runner{title: title, fn: fn}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's display title ("" if unknown).
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, opt Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	res, err := r.fn(opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}

// launchResult is one measured job launch, decomposed as in paper Fig. 2.
type launchResult struct {
	SendSec  float64
	ExecSec  float64
	TotalSec float64
	Failed   bool
}

// loadKind selects the Fig. 3 system-load scenario.
type loadKind int

const (
	unloaded loadKind = iota
	cpuLoaded
	netLoaded
)

func (l loadKind) String() string {
	switch l {
	case cpuLoaded:
		return "CPU loaded"
	case netLoaded:
		return "network loaded"
	}
	return "unloaded"
}

// netLoadU is the background fabric utilization of the network loader
// (ping-pongs on every processor pair saturate the fat tree).
const netLoadU = 0.95

// measureLaunch runs the paper's launch benchmark: a do-nothing binary of
// binaryBytes on the given processor count (PEs fill nodes 4-at-a-time,
// as on the ES40s), with a 1 ms timeslice, under the given load.
// Configuration knobs beyond the defaults can be adjusted via mutate.
func measureLaunch(opt Options, pes int, binaryBytes int64, load loadKind,
	mutate func(*storm.Config)) launchResult {
	cpusPerNode := 4
	nodes := (pes + cpusPerNode - 1) / cpusPerNode
	pesPerNode := pes / nodes
	if pesPerNode == 0 {
		pesPerNode = 1
	}
	// For small PE counts, run all PEs on one node.
	if pes < cpusPerNode {
		nodes, pesPerNode = 1, pes
	}

	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Timeslice = sim.Millisecond
	cfg.Seed = opt.seed()
	if mutate != nil {
		mutate(&cfg)
	}
	s := storm.New(env, cfg)
	switch load {
	case cpuLoaded:
		s.LoadCPU()
	case netLoaded:
		s.LoadNetwork(netLoadU)
	}
	j := s.Submit(&job.Job{
		Name:        "do-nothing",
		BinaryBytes: binaryBytes,
		NodesWanted: nodes,
		PEsPerNode:  pesPerNode,
	})
	total := s.RunUntilDone(j)
	s.Shutdown()
	opt.recordEvents(env)
	if j.State != job.Finished {
		return launchResult{Failed: true}
	}
	return launchResult{
		SendSec:  (j.TransferDone - j.SubmitTime).Seconds(),
		ExecSec:  (j.EndTime - j.TransferDone).Seconds(),
		TotalSec: total.Seconds(),
	}
}

// meanLaunch repeats measureLaunch and averages (the paper took the mean
// of 3-20 runs).
func meanLaunch(opt Options, pes int, binaryBytes int64, load loadKind,
	mutate func(*storm.Config)) launchResult {
	reps := opt.Repeats
	if reps == 0 {
		reps = 3
		if opt.Quick {
			reps = 1
		}
	}
	var acc launchResult
	for r := 0; r < reps; r++ {
		o := opt
		o.Seed = opt.seed() + uint64(r)*7919
		lr := measureLaunch(o, pes, binaryBytes, load, mutate)
		if lr.Failed {
			return lr
		}
		acc.SendSec += lr.SendSec
		acc.ExecSec += lr.ExecSec
		acc.TotalSec += lr.TotalSec
	}
	acc.SendSec /= float64(reps)
	acc.ExecSec /= float64(reps)
	acc.TotalSec /= float64(reps)
	return acc
}
