package experiments

import (
	"fmt"

	"repro/internal/experiments/sweep"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

func init() {
	register("policycmp",
		"Scheduling policies compared on one synthetic workload (paper §5.2's research use case)",
		policycmp)
}

// policyRun executes one job stream under one policy and returns the
// aggregate service metrics.
type policyMetrics struct {
	MeanRespS     float64
	P95RespS      float64
	MeanSlowdown  float64
	MakespanS     float64
	UtilizationPc float64
}

func runStream(opt Options, nodes int, policy sched.Policy, stream []workload.StreamJob) (policyMetrics, error) {
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Policy = policy
	cfg.Timeslice = 50 * sim.Millisecond
	cfg.Seed = opt.seed()
	s := storm.New(env, cfg)

	submitted := make([]*job.Job, len(stream))
	env.Spawn("submitter", func(p *sim.Proc) {
		for i, sj := range stream {
			p.WaitUntil(sj.Submit)
			submitted[i] = s.Submit(&job.Job{
				Name:        fmt.Sprintf("s%d", i),
				BinaryBytes: 2_000_000,
				NodesWanted: sj.Nodes,
				PEsPerNode:  1,
				Program:     workload.Synthetic{Total: sj.Runtime, BarrierEvery: 500 * sim.Millisecond},
				EstRuntime:  sj.Est,
			})
		}
	})

	allDone := func() bool {
		for _, j := range submitted {
			if j == nil || (j.State != job.Finished && j.State != job.Failed) {
				return false
			}
		}
		return true
	}
	guard := 0
	for !allDone() {
		env.RunUntil(env.Now() + 5*sim.Second)
		if guard++; guard > 10000 {
			s.Shutdown()
			opt.recordEvents(env)
			return policyMetrics{}, fmt.Errorf("stream under %s never drained", policy.Name())
		}
	}
	defer func() {
		s.Shutdown()
		opt.recordEvents(env)
	}()

	var resp metrics.Sample
	var slow metrics.Sample
	var makespan sim.Time
	work := 0.0
	for i, j := range submitted {
		if j.State != job.Finished {
			return policyMetrics{}, fmt.Errorf("job %d failed under %s", i, policy.Name())
		}
		r := (j.EndTime - j.SubmitTime).Seconds()
		resp.Add(r)
		base := stream[i].Runtime.Seconds()
		if base < 0.01 {
			base = 0.01 // bounded slowdown
		}
		slow.Add(r / base)
		if j.EndTime > makespan {
			makespan = j.EndTime
		}
		work += float64(j.NodesWanted) * stream[i].Runtime.Seconds()
	}
	return policyMetrics{
		MeanRespS:     resp.Mean(),
		P95RespS:      resp.Percentile(95),
		MeanSlowdown:  slow.Mean(),
		MakespanS:     makespan.Seconds(),
		UtilizationPc: work / (float64(nodes) * makespan.Seconds()) * 100,
	}, nil
}

func policycmp(opt Options) (*Result, error) {
	nodes := 16
	scfg := workload.DefaultStreamConfig(nodes)
	scfg.Seed = opt.seed()
	if opt.Quick {
		scfg.Jobs = 15
	}
	stream := workload.GenerateStream(scfg)
	st := workload.Summarize(stream)

	policies := []sched.Policy{
		sched.BatchFCFS{},
		sched.EASYBackfill{},
		sched.GangFCFS{MPL: 2},
		sched.GangFCFS{MPL: 4},
		sched.ImplicitCosched{MPL: 2},
		sched.BCS{MPL: 2},
	}
	tab := metrics.NewTable(
		fmt.Sprintf("Policies on one %d-job stream, %d nodes (%.0f node·s of demand)",
			st.Jobs, nodes, st.TotalWorkNode),
		"Policy", "Mean response (s)", "P95 response (s)", "Mean slowdown", "Makespan (s)", "Utilization (%)")
	// One sweep point per policy; every policy replays the same immutable
	// stream on its own simulated cluster.
	type out struct {
		m   policyMetrics
		err error
	}
	outs := sweep.Run(policies, opt.Workers, func(_ int, p sched.Policy) out {
		m, err := runStream(opt, nodes, p, stream)
		return out{m, err}
	})
	for i, p := range policies {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		m := outs[i].m
		tab.AddRow(p.Name(), m.MeanRespS, m.P95RespS, m.MeanSlowdown, m.MakespanS, m.UtilizationPc)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"This is the study the paper positions STORM for (§5.2): the same",
			"workload under interchangeable scheduling algorithms on one",
			"runtime system. Expect backfilling to beat plain FCFS on mean",
			"response, and timesharing (gang/ICS/BCS) to cut short-job",
			"slowdown further at some cost in long-job response.",
		},
	}, nil
}
