package sweep

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestRunOrdersResults(t *testing.T) {
	points := []int{10, 20, 30, 40, 50, 60, 70}
	for _, workers := range []int{0, 1, 2, 3, 16} {
		got := Run(points, workers, func(i, pt int) int { return pt + i })
		for i, pt := range points {
			if got[i] != pt+i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], pt+i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil, 4, func(i, pt int) int { return pt }); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
}

func TestRunUsesMultipleWorkers(t *testing.T) {
	// With more points than workers, the pool must actually fan out:
	// track the peak number of in-flight points.
	var inFlight, peak atomic.Int64
	block := make(chan struct{})
	Run(Indices(8), 4, func(i, pt int) int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		if n >= 2 {
			select {
			case <-block:
			default:
				close(block)
			}
		}
		<-block // everyone holds until two points overlap
		inFlight.Add(-1)
		return pt
	})
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a point did not propagate")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic value %v does not carry the cause", r)
		}
	}()
	Run(Indices(16), 4, func(i, pt int) int {
		if i == 7 {
			panic("boom")
		}
		return pt
	})
}

func TestSeedDerivation(t *testing.T) {
	seen := map[uint64]int{}
	for _, base := range []uint64{0, 1, 42} {
		for i := 0; i < 100; i++ {
			s := Seed(base, i)
			if s == 0 {
				t.Fatalf("Seed(%d,%d) = 0", base, i)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: %d (point %d vs earlier %d)", s, i, prev)
			}
			seen[s] = i
			if s != Seed(base, i) {
				t.Fatalf("Seed(%d,%d) not stable", base, i)
			}
		}
	}
}

// simPoint runs one small but non-trivial simulation: a producer/consumer
// pair plus timers, exercising the kernel's event pool, at-now fast path,
// and waiter machinery inside a worker goroutine.
func simPoint(seed uint64) int64 {
	env := sim.NewEnv()
	q := sim.NewQueue(env)
	var sum int64
	env.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			q.Put(int64(seed%97) + int64(i))
			p.Wait(sim.Time(seed%13+1) * sim.Microsecond)
		}
	})
	env.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			v, ok := q.GetTimeout(p, sim.Second)
			if !ok {
				return
			}
			sum += v.(int64)
		}
	})
	env.Run()
	env.Shutdown()
	return sum + int64(env.EventsRun())
}

// TestRunConcurrentEnvs is the dedicated race-detector workout for the
// worker pool: many sweep points, each owning a private sim.Env, run
// concurrently; results must match a serial reference exactly. Each Env is
// confined to the one worker goroutine that created it — this test (under
// `go test -race`) is what enforces that contract.
func TestRunConcurrentEnvs(t *testing.T) {
	points := make([]uint64, 24)
	for i := range points {
		points[i] = Seed(7, i)
	}
	serial := Run(points, 1, func(i int, seed uint64) int64 { return simPoint(seed) })
	for _, workers := range []int{2, 8} {
		parallel := Run(points, workers, func(i int, seed uint64) int64 { return simPoint(seed) })
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: point %d = %d, serial reference %d",
					workers, i, parallel[i], serial[i])
			}
		}
	}
}
