package experiments

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]string{
		"batch":      "batch-fcfs",
		"easy":       "batch-easy-backfill",
		"gang":       "gang-fcfs(mpl=2)",
		"gang:4":     "gang-fcfs(mpl=4)",
		"ics:3":      "implicit-cosched(mpl=3)",
		"bcs":        "buffered-cosched(mpl=2)",
		"priority:2": "priority-gang(mpl=2)",
	}
	for in, want := range cases {
		p, err := ParsePolicy(in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", in, err)
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q) = %s, want %s", in, p.Name(), want)
		}
	}
	for _, bad := range []string{"", "nope", "gang:0", "gang:x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) did not error", bad)
		}
	}
	if _, ok := interface{}(sched.BatchFCFS{}).(sched.Policy); !ok {
		t.Fatal("policy interface broken")
	}
}

const specJSON = `{
  "jobs": [
    {"name": "hog", "submit_s": 0, "nodes": 4, "pes_per_node": 2,
     "binary_mb": 2, "program": {"kind": "synthetic", "seconds": 0.4}, "est_s": 1},
    {"name": "quick", "submit_s": 0.1, "nodes": 2,
     "program": {"kind": "sweep3d", "seconds": 0.2}, "est_s": 0.5, "priority": 2}
  ]
}`

func TestParseSpec(t *testing.T) {
	spec, err := workload.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(spec.Jobs))
	}
	// Defaults filled in.
	if spec.Jobs[1].PEsPerNode != 1 || spec.Jobs[1].BinaryMB != 12 {
		t.Fatalf("defaults not applied: %+v", spec.Jobs[1])
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, bad := range map[string]string{
		"empty":       `{"jobs": []}`,
		"no-nodes":    `{"jobs": [{"name": "x"}]}`,
		"neg-submit":  `{"jobs": [{"nodes": 2, "submit_s": -1}]}`,
		"bad-program": `{"jobs": [{"nodes": 2, "program": {"kind": "quantum"}}]}`,
		"not-json":    `]`,
	} {
		if _, err := workload.ParseSpec([]byte(bad)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReplayEndToEnd(t *testing.T) {
	spec, err := workload.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(spec, ReplayConfig{Policy: "gang:2", GanttCols: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	perJob := res.Tables[0]
	if len(perJob.Rows) != 2 {
		t.Fatalf("rows = %d", len(perJob.Rows))
	}
	for _, row := range perJob.Rows {
		if row[len(row)-1] != "finished" {
			t.Fatalf("job did not finish: %v", row)
		}
	}
	if len(res.Text) != 1 || !strings.Contains(res.Text[0], "R") {
		t.Fatal("Gantt missing")
	}
	// Cluster auto-sized to the widest job (4 nodes).
	if !strings.Contains(perJob.Title, "4 nodes") {
		t.Fatalf("title = %q", perJob.Title)
	}
}

func TestReplayRejectsOversizedJob(t *testing.T) {
	spec, _ := workload.ParseSpec([]byte(specJSON))
	if _, err := Replay(spec, ReplayConfig{Nodes: 2}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestReplayPriorityPolicy(t *testing.T) {
	spec, err := workload.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(spec, ReplayConfig{Policy: "priority:1"}); err != nil {
		t.Fatal(err)
	}
}
