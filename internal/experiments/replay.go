package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

// ParsePolicy turns a CLI policy string into a scheduling policy:
//
//	batch | easy | gang[:MPL] | ics[:MPL] | bcs[:MPL] | priority[:MPL]
func ParsePolicy(s string) (sched.Policy, error) {
	name, mplStr, hasMPL := strings.Cut(s, ":")
	mpl := 2
	if hasMPL {
		v, err := strconv.Atoi(mplStr)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("experiments: bad MPL in policy %q", s)
		}
		mpl = v
	}
	switch name {
	case "batch":
		return sched.BatchFCFS{}, nil
	case "easy":
		return sched.EASYBackfill{}, nil
	case "gang":
		return sched.GangFCFS{MPL: mpl}, nil
	case "ics":
		return sched.ImplicitCosched{MPL: mpl}, nil
	case "bcs":
		return sched.BCS{MPL: mpl}, nil
	case "priority":
		return sched.PriorityGang{MPL: mpl}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q (batch, easy, gang[:n], ics[:n], bcs[:n], priority[:n])", s)
	}
}

// ReplayConfig parameterizes a workload replay.
type ReplayConfig struct {
	// Nodes is the cluster width (default: smallest power of two fitting
	// the widest job).
	Nodes int
	// Policy string, as accepted by ParsePolicy (default "gang:2").
	Policy string
	// TimesliceMs is the gang quantum in milliseconds (default 50).
	TimesliceMs float64
	// Seed drives simulation randomness.
	Seed uint64
	// GanttCols renders a lifecycle Gantt when positive.
	GanttCols int
}

// Replay runs a parsed workload spec on a simulated cluster and reports
// per-job service metrics plus aggregates (and optionally a Gantt).
func Replay(spec *workload.Spec, rc ReplayConfig) (*Result, error) {
	policyStr := rc.Policy
	if policyStr == "" {
		policyStr = "gang:2"
	}
	policy, err := ParsePolicy(policyStr)
	if err != nil {
		return nil, err
	}
	nodes := rc.Nodes
	widest := 0
	for _, js := range spec.Jobs {
		if js.Nodes > widest {
			widest = js.Nodes
		}
	}
	if nodes == 0 {
		nodes = 1
		for nodes < widest {
			nodes *= 2
		}
	}
	if widest > nodes {
		return nil, fmt.Errorf("experiments: job wants %d nodes but the cluster has %d", widest, nodes)
	}

	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Policy = policy
	if rc.TimesliceMs > 0 {
		cfg.Timeslice = sim.FromMilliseconds(rc.TimesliceMs)
	}
	if rc.Seed != 0 {
		cfg.Seed = rc.Seed
	}
	s := storm.New(env, cfg)
	var tl = s.EnableTimeline()

	order := make([]int, len(spec.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spec.Jobs[order[a]].SubmitS < spec.Jobs[order[b]].SubmitS
	})

	jobs := make([]*job.Job, len(spec.Jobs))
	env.Spawn("submitter", func(p *sim.Proc) {
		for _, i := range order {
			js := spec.Jobs[i]
			p.WaitUntil(sim.FromSeconds(js.SubmitS))
			prog, _ := js.Program.Build()
			jobs[i] = s.Submit(&job.Job{
				Name:        js.Name,
				BinaryBytes: int64(js.BinaryMB * 1e6),
				NodesWanted: js.Nodes,
				PEsPerNode:  js.PEsPerNode,
				Program:     prog,
				EstRuntime:  sim.FromSeconds(js.EstS),
				Priority:    js.Priority,
			})
		}
	})
	done := func() bool {
		for _, j := range jobs {
			if j == nil || (j.State != job.Finished && j.State != job.Failed && j.State != job.Canceled) {
				return false
			}
		}
		return true
	}
	for guard := 0; !done(); guard++ {
		env.RunUntil(env.Now() + 5*sim.Second)
		if guard > 100000 {
			s.Shutdown()
			return nil, fmt.Errorf("experiments: replay never drained")
		}
	}
	defer s.Shutdown()

	tab := metrics.NewTable(
		fmt.Sprintf("Replay: %d jobs, %d nodes, %s", len(jobs), nodes, policy.Name()),
		"Job", "Nodes", "Submit (s)", "Start (s)", "End (s)", "Response (s)", "State")
	var resp metrics.Sample
	var makespan sim.Time
	for _, j := range jobs {
		tab.AddRow(j.Name, j.NodesWanted, j.SubmitTime.Seconds(), j.FirstRun.Seconds(),
			j.EndTime.Seconds(), (j.EndTime - j.SubmitTime).Seconds(), j.State.String())
		resp.Add((j.EndTime - j.SubmitTime).Seconds())
		if j.EndTime > makespan {
			makespan = j.EndTime
		}
	}
	agg := metrics.NewTable("Aggregates",
		"Mean response (s)", "P95 response (s)", "Makespan (s)", "Utilization (%)")
	agg.AddRow(resp.Mean(), resp.Percentile(95), makespan.Seconds(), s.Utilization()*100)

	res := &Result{Tables: []*metrics.Table{tab, agg}}
	if rc.GanttCols > 0 {
		res.Text = append(res.Text, tl.Render(tl.End(), rc.GanttCols))
		res.Notes = append(res.Notes,
			"Legend: q = queued, T = binary transfer, R = placed/running.")
	}
	return res, nil
}
