package experiments

import (
	"repro/internal/metrics"
	"repro/internal/nodeos"
	"repro/internal/storm"
)

func init() {
	register("info", "Cluster description and dæmon inventory (paper Tables 1-3)", info)
}

// info renders the paper's descriptive tables: the desktop-vs-cluster
// usability comparison (Table 1), the dæmon inventory (Table 2), and the
// evaluation cluster description (Table 3) as configured in this
// reproduction.
func info(opt Options) (*Result, error) {
	t1 := metrics.NewTable("Desktop vs. cluster usability (paper Table 1)",
		"Characteristic", "Desktop", "Cluster (2002 state of the art)")
	t1.AddRow("Mean time between user-visible failures", "Years",
		"Days (large cluster) down to hours (very large)")
	t1.AddRow("Scheduling", "Timeshared",
		"Batch queued, or gang scheduled with quanta of seconds to minutes")
	t1.AddRow("Job-launching speed", "< 1 second",
		"Arbitrarily long (batch) or many seconds (gang scheduled)")

	cfg := storm.DefaultConfig(64)
	mpl := cfg.Policy.MaxRows()
	t2 := metrics.NewTable("STORM dæmons (paper Table 2)",
		"Dæmon", "Distribution", "Location", "In this reproduction")
	t2.AddRow("MM (Machine Manager)", "One per cluster", "Management node",
		"internal/storm.MM on the extra management node")
	t2.AddRow("NM (Node Manager)", "One per compute node", "Compute nodes",
		"internal/storm.NM, 64 instances")
	t2.AddRow("PL (Program Launcher)",
		"One per potential process (nodes x CPUs x MPL)", "Compute nodes",
		metrics.FormatFloat(float64(64*cfg.OS.CPUs*mpl))+" instances at MPL "+
			metrics.FormatFloat(float64(mpl)))

	osCfg := nodeos.DefaultConfig()
	t3 := metrics.NewTable("Evaluation cluster (paper Table 3, as simulated)",
		"Component", "Feature", "Value")
	t3.AddRow("Node", "Number", 64)
	t3.AddRow("Node", "CPUs/node", osCfg.CPUs)
	t3.AddRow("Node", "Model", "AlphaServer ES40 (simulated)")
	t3.AddRow("CPU", "Type", "Alpha EV68 833 MHz (simulated)")
	t3.AddRow("Network", "Type", "QsNET, QM-400 Elan3 (simulated)")
	t3.AddRow("Network", "MTU", "320 bytes, ack-per-packet flow control")
	t3.AddRow("Network", "Hardware collectives", "multicast + network conditionals")
	t3.AddRow("Filesystem", "Management node", cfg.MgmtFS.Kind.String())
	t3.AddRow("Filesystem", "Compute nodes", cfg.NodeFS.Kind.String())
	t3.AddRow("Scheduler", "Default policy", cfg.Policy.Name())
	t3.AddRow("Scheduler", "Default timeslice", cfg.Timeslice.String())

	return &Result{
		Tables: []*metrics.Table{t1, t2, t3},
		Notes: []string{
			"Run `stormsim interactive` for the quantitative version of the",
			"Table 1 scheduling rows on this reproduction.",
		},
	}, nil
}
