package experiments

import (
	"strings"
	"sync/atomic"
	"testing"
)

// renderResult flattens everything stormsim would print for a result —
// aligned tables, CSV, verbatim text blocks, notes — into one string, so
// equality here is byte-identity of the CLI output.
func renderResult(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(res.ID + "\n" + res.Title + "\n")
	for _, tab := range res.Tables {
		b.WriteString(tab.String())
		b.WriteString(tab.CSV())
	}
	for _, txt := range res.Text {
		b.WriteString(txt + "\n")
	}
	for _, n := range res.Notes {
		b.WriteString(n + "\n")
	}
	return b.String()
}

// TestParallelRunsAreByteIdentical is the harness's determinism
// regression: the same experiment with the same seed must render the same
// bytes whether the sweep runs serially or on eight workers. Sweep points
// own private sim.Envs and results are collected in input order, so
// parallelism must be invisible in the output.
func TestParallelRunsAreByteIdentical(t *testing.T) {
	for _, id := range []string{"fig2", "table4", "placecmp"} {
		id := id
		t.Run(id, func(t *testing.T) {
			serialOpt := quickOpt
			serialOpt.Workers = 1
			parallelOpt := quickOpt
			parallelOpt.Workers = 8
			serial, err := Run(id, serialOpt)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := Run(id, parallelOpt)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			sTxt, pTxt := renderResult(t, serial), renderResult(t, parallel)
			if sTxt != pTxt {
				t.Errorf("workers=1 vs workers=8 output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", sTxt, pTxt)
			}
		})
	}
}

// TestEventAccounting checks the Events sink collects simulation effort
// from parallel workers without perturbing the result.
func TestEventAccounting(t *testing.T) {
	var events atomic.Uint64
	opt := quickOpt
	opt.Workers = 4
	opt.Events = &events
	if _, err := Run("fig2", opt); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("fig2 reported zero dispatched events")
	}
}
