package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpt is the fast configuration used throughout the tests.
var quickOpt = Options{Quick: true, Seed: 3}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered regenerator.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12",
		"table4", "table5", "table6", "table7", "table8",
		"ablation", "nfslaunch", "interactive", "policycmp", "gantt", "info",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", quickOpt); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in
// Quick mode and checks basic result hygiene.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, quickOpt)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if res.ID != id || res.Title == "" {
				t.Fatalf("result metadata incomplete: %+v", res)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Headers) {
						t.Fatalf("table %q: row width %d != header width %d",
							tab.Title, len(row), len(tab.Headers))
					}
				}
			}
		})
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab interface{ CSV() string }, row, col int) float64 {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tab.CSV()), "\n")
	fields := strings.Split(lines[row+1], ",")
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, fields[col], err)
	}
	return v
}

// TestFig2Shape re-derives the key Fig. 2 claims from the driver output.
func TestFig2Shape(t *testing.T) {
	res, err := Run("fig2", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Quick mode: sizes {4,12} x PEs {1,4,16,64}. Columns:
	// 0=PEs 1=MB 2=send 3=exec 4=total.
	send4at64 := cell(t, tab, 3, 2)
	send12at64 := cell(t, tab, 7, 2)
	if r := send12at64 / send4at64; r < 2.5 || r > 3.5 {
		t.Errorf("send 12MB/4MB ratio at 64 PEs = %.2f, want ~3", r)
	}
	exec12at1 := cell(t, tab, 4, 3)
	exec12at64 := cell(t, tab, 7, 3)
	if exec12at64 <= exec12at1 {
		t.Errorf("execute should grow with PEs: %.2f -> %.2f ms", exec12at1, exec12at64)
	}
}

// TestFig3Ordering: unloaded < CPU loaded < network loaded at the largest
// measured size.
func TestFig3Ordering(t *testing.T) {
	res, err := Run("fig3", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	rowsPerLoad := len(tab.Rows) / 3
	last := rowsPerLoad - 1
	unl := cell(t, tab, last, 4)
	cpu := cell(t, tab, rowsPerLoad+last, 4)
	net := cell(t, tab, 2*rowsPerLoad+last, 4)
	if !(unl < cpu && cpu < net) {
		t.Errorf("load ordering violated: unloaded %.0f, cpu %.0f, net %.0f ms", unl, cpu, net)
	}
	if net > 2500 {
		t.Errorf("network-loaded launch %.0f ms, paper's worst case ~1500 ms", net)
	}
}

// TestTable4MatchesPaper re-checks two corner cells through the driver.
func TestTable4MatchesPaper(t *testing.T) {
	res, err := Run("table4", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Row 0 = 4 nodes; column 4 = 10 m. Paper: 319.
	if v := cell(t, tab, 0, 4); v < 315 || v > 323 {
		t.Errorf("4 nodes @10m = %.0f, paper 319", v)
	}
	// Row 5 = 4096 nodes; last column = 100 m. Paper: 147.
	if v := cell(t, tab, 5, 10); v < 144 || v > 150 {
		t.Errorf("4096 nodes @100m = %.0f, paper 147", v)
	}
}

// TestFig12Factors: the relative-performance experiment must show the
// paper's ~200x (Cplant) and ~40x (BProc) factors at 4,096 nodes.
func TestFig12Factors(t *testing.T) {
	res, err := Run("fig12", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	lastRow := len(tab.Rows) - 1
	cplant := cell(t, tab, lastRow, 1)
	bproc := cell(t, tab, lastRow, 2)
	if cplant < 100 || cplant > 300 {
		t.Errorf("Cplant/STORM at 4096 = %.0f, paper ~200", cplant)
	}
	if bproc < 25 || bproc > 70 {
		t.Errorf("BProc/STORM at 4096 = %.0f, paper ~40", bproc)
	}
}

// TestAblationRatioGrows: the hardware advantage must grow with scale.
func TestAblationRatioGrows(t *testing.T) {
	res, err := Run("ablation", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	r0 := cell(t, tab, 0, 3)
	r1 := cell(t, tab, len(tab.Rows)-1, 3)
	if r0 < 1.5 {
		t.Errorf("hardware advantage at smallest scale = %.2fx, want > 1.5x", r0)
	}
	if r1 <= r0 {
		t.Errorf("hardware advantage should grow with nodes: %.2fx -> %.2fx", r0, r1)
	}
}

// TestInteractiveResponse: gang scheduling must start the interactive
// job orders of magnitude sooner than batch queueing (paper Table 1).
func TestInteractiveResponse(t *testing.T) {
	res, err := Run("interactive", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	batchWait := cell(t, tab, 0, 1)
	gangWait := cell(t, tab, 1, 1)
	if gangWait > 0.5 {
		t.Errorf("gang start delay = %.2fs, want sub-second", gangWait)
	}
	if batchWait < gangWait*10 {
		t.Errorf("batch wait %.2fs not >> gang wait %.3fs", batchWait, gangWait)
	}
	batchResp := cell(t, tab, 0, 2)
	gangResp := cell(t, tab, 1, 2)
	if gangResp >= batchResp {
		t.Errorf("gang response %.2fs should beat batch %.2fs", gangResp, batchResp)
	}
}

// TestPolicyComparison: EASY backfilling must beat plain batch FCFS on
// mean response time and utilization for the default stream, and every
// policy must drain the workload.
func TestPolicyComparison(t *testing.T) {
	res, err := Run("policycmp", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 6 policies, got %d", len(tab.Rows))
	}
	fcfsResp := cell(t, tab, 0, 1)
	easyResp := cell(t, tab, 1, 1)
	if easyResp > fcfsResp {
		t.Errorf("EASY mean response %.2fs worse than FCFS %.2fs", easyResp, fcfsResp)
	}
	fcfsUtil := cell(t, tab, 0, 5)
	easyUtil := cell(t, tab, 1, 5)
	if easyUtil < fcfsUtil {
		t.Errorf("EASY utilization %.1f%% below FCFS %.1f%%", easyUtil, fcfsUtil)
	}
}

// TestNFSLaunchLinear: shared-filesystem launch time roughly doubles per
// node doubling step in the driver output.
func TestNFSLaunchLinear(t *testing.T) {
	res, err := Run("nfslaunch", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0] // rows: 4, 16, 64 nodes
	t4 := cell(t, tab, 0, 1)
	t16 := cell(t, tab, 1, 1)
	if r := t16 / t4; r < 3 || r > 5 {
		t.Errorf("NFS launch 4->16 nodes grew %.1fx, want ~4x (linear)", r)
	}
	// At 64 nodes the 30s RPC timeout starts killing clients — the
	// launch-failure mode the paper describes.
	if fails := cell(t, tab, 2, 2); fails == 0 {
		t.Error("no NFS timeouts at 64 nodes; expected the server to saturate")
	}
}

// TestGanttDeterministic: the gantt experiment renders identically for a
// given seed — the reproducibility guarantee applied end to end.
func TestGanttDeterministic(t *testing.T) {
	render := func() string {
		res, err := Run("gantt", quickOpt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Text[0]
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("gantt output differs between identical runs:\n%s\n---\n%s", a, b)
	}
	for _, label := range []string{"R", "T", "q"} {
		if !strings.Contains(a, label) {
			t.Errorf("gantt missing %q spans", label)
		}
	}
}

// TestInfoTables: the descriptive tables render with the configured
// values.
func TestInfoTables(t *testing.T) {
	res, err := Run("info", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d, want 3 (paper Tables 1-3)", len(res.Tables))
	}
	out := res.Tables[2].String()
	for _, want := range []string{"QsNET", "320 bytes", "RAM (ext2)", "gang-fcfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("info table missing %q", want)
		}
	}
}
