package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/experiments/sweep"
	"repro/internal/job"
	"repro/internal/mech"
	"repro/internal/metrics"
	"repro/internal/netmodel"
	"repro/internal/qsnet"
	"repro/internal/sim"
	"repro/internal/storm"
)

func init() {
	register("table6", "Job-launch times found in the literature vs. STORM (paper Table 6)", table6)
	register("table7", "Extrapolated job-launch times to 4,096 nodes (paper Table 7)", table7)
	register("fig11", "Measured and predicted performance of job launchers (paper Fig. 11)", fig11)
	register("fig12", "Cplant and BProc launch times relative to STORM (paper Fig. 12)", fig12)
	register("ablation", "Hardware collectives vs. software-tree emulation (design ablation)", ablation)
	register("nfslaunch", "Shared-NFS demand-paged launching collapse (paper §5.1)", nfsLaunch)
}

// launcherRow names a literature baseline by constructor so each sweep
// point builds a private Launcher (their executable simulations are not
// goroutine-safe to share).
type launcherRow struct {
	make  func() baseline.Launcher
	nodes int
	paper float64
}

// stormMeasured64 measures this reproduction's own 12 MB / 64-node launch
// (the paper's Table 6 row for STORM).
func stormMeasured64(opt Options) float64 {
	pes := 256
	if opt.Quick {
		pes = 64
	}
	return meanLaunch(opt, pes, 12_000_000, unloaded, nil).TotalSec
}

func table6(opt Options) (*Result, error) {
	rows := []launcherRow{
		{baseline.Rsh, 95, 90},
		{baseline.RMS, 64, 5.9},
		{baseline.GLUnix, 95, 1.3},
		{baseline.Cplant, 1010, 20},
		{baseline.BProc, 100, 2.7},
	}
	type out struct {
		name     string
		binaryMB float64
		launchS  float64
	}
	// The last point is STORM's own measured launch, riding in the same
	// sweep so every simulation in the table runs concurrently.
	outs := sweep.Run(sweep.Indices(len(rows)+1), opt.Workers, func(i, _ int) out {
		if i == len(rows) {
			return out{launchS: stormMeasured64(opt)}
		}
		l := rows[i].make()
		return out{name: l.Name(), binaryMB: l.BinaryMB(), launchS: l.Launch(rows[i].nodes).Seconds()}
	})
	tab := metrics.NewTable("A selection of job-launch times",
		"Resource manager", "Configuration", "Paper (s)", "This reproduction (s)")
	for i, r := range rows {
		cfgStr := fmt.Sprintf("%.0f MB on %d nodes", outs[i].binaryMB, r.nodes)
		tab.AddRow(outs[i].name, cfgStr, r.paper, outs[i].launchS)
	}
	tab.AddRow("STORM", "12 MB on 64 nodes", 0.11, outs[len(rows)].launchS)
	return &Result{Tables: []*metrics.Table{tab}}, nil
}

func table7(opt Options) (*Result, error) {
	rows := []struct {
		make    func() baseline.Launcher
		formula string
		paper   float64
	}{
		{baseline.Rsh, "t = 0.934n + 1.266", 3827.10},
		{baseline.RMS, "t = 0.077n + 1.092", 317.67},
		{baseline.GLUnix, "t = 0.012n + 0.228", 49.38},
		{baseline.Cplant, "t = 1.379 lg n + 6.177", 22.73},
		{baseline.BProc, "t = 0.413 lg n - 0.084", 4.88},
	}
	const n = 4096
	type out struct {
		name   string
		model  float64
		simSec float64
	}
	outs := sweep.Run(sweep.Indices(len(rows)), opt.Workers, func(i, _ int) out {
		l := rows[i].make()
		return out{name: l.Name(), model: l.Model(n), simSec: l.Launch(n).Seconds()}
	})
	tab := metrics.NewTable("Extrapolated job-launch times at 4,096 nodes",
		"Resource manager", "Formula", "Paper (s)", "Model here (s)", "Simulated here (s)")
	for i, r := range rows {
		tab.AddRow(outs[i].name, r.formula, r.paper, outs[i].model, outs[i].simSec)
	}
	tab.AddRow("STORM", "Eq. 3 (see fig10)", 0.11, netmodel.LaunchSTORM(n), "-")
	return &Result{Tables: []*metrics.Table{tab}}, nil
}

// fig11Axis is the node axis of the paper's Fig. 11 (1 to 16K).
func fig11Axis(quick bool) []int {
	if quick {
		return []int{1, 64, 1024, 16384}
	}
	var axis []int
	for n := 1; n <= 16384; n *= 2 {
		axis = append(axis, n)
	}
	return axis
}

func fig11(opt Options) (*Result, error) {
	axis := fig11Axis(opt.Quick)
	// One sweep point per node count; each runs every launcher's
	// executable simulation (or its closed-form model beyond 4,096 nodes)
	// on a private Launcher set.
	lineRows := sweep.Run(axis, opt.Workers, func(_ int, n int) []float64 {
		var vals []float64
		for _, l := range baseline.All() {
			if n <= 4096 {
				vals = append(vals, l.Launch(n).Seconds())
			} else {
				vals = append(vals, l.Model(n))
			}
		}
		return vals
	})
	tab := metrics.NewTable("Launch time by system (s)",
		"Nodes", "rsh", "RMS", "GLUnix", "Cplant", "BProc", "STORM (model)")
	for i, n := range axis {
		row := []interface{}{n}
		for _, v := range lineRows[i] {
			row = append(row, v)
		}
		row = append(row, netmodel.LaunchSTORM(n))
		tab.AddRow(row...)
	}
	measAxis := []int{1, 4, 16, 64}
	if opt.Quick {
		measAxis = []int{4, 16}
	}
	measured := sweep.Run(measAxis, opt.Workers, func(_ int, n int) launchResult {
		return meanLaunch(opt, n*4, 12_000_000, unloaded, nil)
	})
	meas := metrics.NewTable("STORM measured points (simulated cluster)",
		"Nodes", "Launch time (s)")
	for i, n := range measAxis {
		if measured[i].Failed {
			return nil, fmt.Errorf("launch failed at %d nodes", n)
		}
		meas.AddRow(n, measured[i].TotalSec)
	}
	return &Result{
		Tables: []*metrics.Table{tab, meas},
		Notes: []string{
			"Baselines up to 4,096 nodes come from the executable simulations",
			"of each launcher's algorithm; beyond that (and for STORM) the",
			"closed-form models are used, as in the paper.",
		},
	}, nil
}

func fig12(opt Options) (*Result, error) {
	axis := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if opt.Quick {
		axis = []int{4, 64, 1024, 4096}
	}
	tab := metrics.NewTable("Launch time as a factor of STORM's",
		"Nodes", "Cplant / STORM", "BProc / STORM")
	cp, bp := baseline.Cplant(), baseline.BProc()
	for _, n := range axis {
		st := netmodel.LaunchSTORM(n)
		tab.AddRow(n, cp.Model(n)/st, bp.Model(n)/st)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: at 4,096 nodes Cplant is ~200x and BProc ~40x",
			"slower than STORM; both scale logarithmically like STORM's",
			"transfer, so the gap is a constant-factor one.",
		},
	}, nil
}

// ablation swaps the QsNET hardware collectives for the logarithmic
// software-tree emulation (what Ethernet/Myrinet-class networks would
// need) and re-measures the launch — quantifying what the paper's
// "exploit low-level network features" design buys.
func ablation(opt Options) (*Result, error) {
	axis := []int{4, 16, 64}
	if opt.Quick {
		axis = []int{4, 16}
	}
	// Two sweep points per node count: hardware collectives and the
	// software-tree emulation.
	type point struct {
		n  int
		hw bool
	}
	var pts []point
	for _, n := range axis {
		pts = append(pts, point{n, true}, point{n, false})
	}
	outs := sweep.Run(pts, opt.Workers, func(_ int, pt point) launchResult {
		if pt.hw {
			return meanLaunch(opt, pt.n*4, 12_000_000, unloaded, nil)
		}
		return meanLaunchDomain(opt, pt.n, 12_000_000,
			func(net *qsnet.Network) mech.Domain { return mech.NewTree(net) })
	})
	tab := metrics.NewTable("12 MB launch: hardware mechanisms vs. software-tree emulation",
		"Nodes", "Hardware (ms)", "Software tree (ms)", "Ratio")
	for i, n := range axis {
		hw, treeRes := outs[2*i], outs[2*i+1]
		if hw.Failed || treeRes.Failed {
			return nil, fmt.Errorf("ablation launch failed at %d nodes", n)
		}
		tab.AddRow(n, hw.TotalSec*1000, treeRes.TotalSec*1000, treeRes.TotalSec/hw.TotalSec)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"The same MM/NM/PL dæmons run in both configurations; only the",
			"mechanism layer changes. The growing gap is the paper's central",
			"architectural argument.",
		},
	}, nil
}

// meanLaunchDomain measures a launch with a custom mechanism layer.
func meanLaunchDomain(opt Options, nodes int, binaryBytes int64, build storm.DomainBuilder) launchResult {
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Timeslice = sim.Millisecond
	cfg.Seed = opt.seed()
	s := storm.NewWithDomain(env, cfg, build)
	j := s.Submit(&job.Job{
		Name: "do-nothing", BinaryBytes: binaryBytes,
		NodesWanted: nodes, PEsPerNode: 4,
	})
	total := s.RunUntilDone(j)
	s.Shutdown()
	opt.recordEvents(env)
	if j.State != job.Finished {
		return launchResult{Failed: true}
	}
	return launchResult{
		SendSec:  (j.TransferDone - j.SubmitTime).Seconds(),
		ExecSec:  (j.EndTime - j.TransferDone).Seconds(),
		TotalSec: total.Seconds(),
	}
}

func nfsLaunch(opt Options) (*Result, error) {
	axis := []int{1, 4, 16, 64, 256}
	if opt.Quick {
		axis = []int{4, 16, 64}
	}
	type out struct {
		totalS float64
		fails  int
	}
	outs := sweep.Run(axis, opt.Workers, func(_ int, n int) out {
		total, fails := baseline.NFSLaunch(n, 12_000_000, 30e9)
		return out{total.Seconds(), fails}
	})
	tab := metrics.NewTable("Demand-paging a 12 MB binary from one NFS server",
		"Nodes", "Completion (s)", "Timeout failures", "STORM (s, model)")
	for i, n := range axis {
		tab.AddRow(n, outs[i].totalS, outs[i].fails, netmodel.LaunchSTORM(n))
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"The PBS-style shared-filesystem launch serializes at the server",
			"(linear in nodes) and collapses with RPC timeouts at scale —",
			"the paper's §5.1 motivation for multicast-based distribution.",
		},
	}, nil
}
