package experiments

import (
	"fmt"

	"repro/internal/experiments/sweep"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

func init() {
	register("fig4", "Effect of the timeslice quantum on gang-scheduled applications (paper Fig. 4)", fig4)
	register("fig5", "Node scalability of gang-scheduled applications (paper Fig. 5)", fig5)
	register("table8", "Minimal feasible scheduling quantum (paper Table 8)", table8)
}

// gangMeasurement runs `mpl` copies of a program on a gang-scheduled
// cluster and returns the normalized application runtime
// (lastExit − firstRun) / MPL in seconds, plus the NM-overload flag.
func gangMeasurement(opt Options, nodes, pesPerNode int, quantum sim.Time, mpl int,
	prog job.Program) (float64, bool) {
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Timeslice = quantum
	cfg.Policy = sched.GangFCFS{MPL: mpl}
	cfg.Seed = opt.seed()
	s := storm.New(env, cfg)
	var jobs []*job.Job
	for i := 0; i < mpl; i++ {
		jobs = append(jobs, s.Submit(&job.Job{
			Name:        fmt.Sprintf("app%d", i),
			BinaryBytes: 1_000_000,
			NodesWanted: nodes,
			PEsPerNode:  pesPerNode,
			Program:     prog,
		}))
	}
	s.RunUntilDone(jobs...)
	defer func() {
		s.Shutdown()
		opt.recordEvents(env)
	}()
	first, last := jobs[0].FirstRun, sim.Time(0)
	for _, j := range jobs {
		if j.FirstRun < first {
			first = j.FirstRun
		}
		if j.LastExit > last {
			last = j.LastExit
		}
	}
	return (last - first).Seconds() / float64(mpl), s.Overloaded
}

// gangPoint is one (quantum or node axis) × (program, MPL) measurement in
// a gang-scheduling sweep.
type gangPoint struct {
	nodes   int
	quantum sim.Time
	mpl     int
	prog    job.Program
}

// gangOut pairs the normalized runtime with the NM-overload flag.
type gangOut struct {
	runtime    float64
	overloaded bool
}

// runGangPoints fans the measurements out across the sweep harness.
func runGangPoints(opt Options, pts []gangPoint) []gangOut {
	return sweep.Run(pts, opt.Workers, func(_ int, pt gangPoint) gangOut {
		rt, over := gangMeasurement(opt, pt.nodes, 2, pt.quantum, pt.mpl, pt.prog)
		return gangOut{rt, over}
	})
}

// fig4Config returns the machine and application scale. The paper uses
// 32 nodes/64 PEs with the ~49 s SWEEP3D; the full mode here keeps the
// paper's machine and quantum axis but scales the applications to ~12 s:
// the measured quantity — slowdown as a function of the quantum — is
// invariant to total application length (it is per-quantum overhead
// divided by quantum), and the shorter run keeps regeneration tractable.
// Quick shrinks the machine as well.
func fig4Config(quick bool) (nodes int, sweep workload.Sweep3D, synth workload.Synthetic, quantaMs []float64) {
	if quick {
		return 8,
			workload.ScaledSweep3D(4),
			workload.Synthetic{Total: 2 * sim.Second, BarrierEvery: 250 * sim.Millisecond},
			[]float64{0.3, 1, 2, 10, 50, 500, 2000}
	}
	return 32,
		workload.ScaledSweep3D(12),
		workload.Synthetic{Total: 8 * sim.Second, BarrierEvery: sim.Second},
		[]float64{0.3, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000, 8000}
}

func fig4(opt Options) (*Result, error) {
	nodes, sw, synth, quantaMs := fig4Config(opt.Quick)
	// Three measurements per quantum, each an independent sweep point.
	var pts []gangPoint
	for _, qms := range quantaMs {
		q := sim.FromMilliseconds(qms)
		pts = append(pts,
			gangPoint{nodes, q, 1, sw},
			gangPoint{nodes, q, 2, sw},
			gangPoint{nodes, q, 2, synth})
	}
	outs := runGangPoints(opt, pts)
	tab := metrics.NewTable(
		fmt.Sprintf("Normalized runtime vs. time quantum, %d nodes/%d PEs (s)", nodes, nodes*2),
		"Quantum (ms)", "SWEEP3D MPL=1", "SWEEP3D MPL=2", "Synthetic MPL=2", "NM overloaded")
	for i, qms := range quantaMs {
		s1, s2, sy2 := outs[3*i], outs[3*i+1], outs[3*i+2]
		tab.AddRow(qms, s1.runtime, s2.runtime, sy2.runtime,
			fmt.Sprintf("%v", s2.overloaded || sy2.overloaded))
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: runtime is flat from 2 ms upward (annotated point",
			"(2 ms, 49 s)); it rises below 2 ms; below ~300 us the NM cannot",
			"process the strobe stream.",
		},
	}, nil
}

func fig5(opt Options) (*Result, error) {
	var nodeAxis []int
	var sw workload.Sweep3D
	var synth workload.Synthetic
	if opt.Quick {
		nodeAxis = []int{1, 4, 8}
		sw = workload.ScaledSweep3D(4)
		synth = workload.Synthetic{Total: 2 * sim.Second, BarrierEvery: 250 * sim.Millisecond}
	} else {
		nodeAxis = []int{1, 2, 4, 8, 16, 32, 64}
		sw = workload.ScaledSweep3D(12) // see fig4Config on app scaling
		synth = workload.Synthetic{Total: 8 * sim.Second, BarrierEvery: sim.Second}
	}
	q := 50 * sim.Millisecond // the paper's choice after Fig. 4
	var pts []gangPoint
	for _, n := range nodeAxis {
		pts = append(pts,
			gangPoint{n, q, 1, sw},
			gangPoint{n, q, 2, sw},
			gangPoint{n, q, 1, synth},
			gangPoint{n, q, 2, synth})
	}
	outs := runGangPoints(opt, pts)
	tab := metrics.NewTable("Normalized runtime vs. nodes, 50 ms quantum (s)",
		"Nodes", "SWEEP3D MPL=1", "SWEEP3D MPL=2", "Synthetic MPL=1", "Synthetic MPL=2")
	for i, n := range nodeAxis {
		tab.AddRow(n, outs[4*i].runtime, outs[4*i+1].runtime,
			outs[4*i+2].runtime, outs[4*i+3].runtime)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: no increase in runtime or overhead with node",
			"count beyond that caused by the job launch (weak scaling).",
		},
	}, nil
}

func table8(opt Options) (*Result, error) {
	nodes := 64
	sw := workload.ScaledSweep3D(12) // see fig4Config on app scaling
	quantaMs := []float64{0.3, 0.5, 1, 2, 5, 10}
	if opt.Quick {
		nodes = 8
		sw = workload.ScaledSweep3D(3)
		quantaMs = []float64{0.5, 2, 10}
	}
	// Point 0 is the baseline (a quantum far up the plateau); the rest are
	// the quantum axis. All are independent, so they sweep together.
	pts := []gangPoint{{nodes, 100 * sim.Millisecond, 2, sw}}
	for _, qms := range quantaMs {
		pts = append(pts, gangPoint{nodes, sim.FromMilliseconds(qms), 2, sw})
	}
	outs := runGangPoints(opt, pts)
	base := outs[0].runtime
	minFeasible := -1.0
	detail := metrics.NewTable("STORM slowdown by quantum (measured)",
		"Quantum (ms)", "Normalized runtime (s)", "Slowdown (%)", "Feasible (<=2%)")
	for i, qms := range quantaMs {
		out := outs[i+1]
		slow := (out.runtime/base - 1) * 100
		ok := !out.overloaded && slow <= 2.0
		if ok && minFeasible < 0 {
			minFeasible = qms
		}
		detail.AddRow(qms, out.runtime, slow, fmt.Sprintf("%v", ok))
	}
	lit := metrics.NewTable("Minimal feasible scheduling quantum (paper Table 8)",
		"Resource manager", "Minimal feasible quantum", "Context")
	lit.AddRow("RMS", "30,000 ms", "15 nodes, 1.8% slowdown [literature]")
	lit.AddRow("SCore-D", "100 ms", "64 nodes, 2% slowdown [literature]")
	lit.AddRow("STORM (this reproduction)", fmt.Sprintf("%.1f ms", minFeasible),
		fmt.Sprintf("%d nodes, <=2%% slowdown (measured)", nodes))
	return &Result{
		Tables: []*metrics.Table{detail, lit},
		Notes: []string{
			"Paper reference: STORM sustains 2 ms quanta with no observable",
			"slowdown - two orders of magnitude below SCore-D's 100 ms.",
		},
	}, nil
}
