package experiments

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storm"
	"repro/internal/workload"
)

func init() {
	register("fig4", "Effect of the timeslice quantum on gang-scheduled applications (paper Fig. 4)", fig4)
	register("fig5", "Node scalability of gang-scheduled applications (paper Fig. 5)", fig5)
	register("table8", "Minimal feasible scheduling quantum (paper Table 8)", table8)
}

// gangMeasurement runs `mpl` copies of a program on a gang-scheduled
// cluster and returns the normalized application runtime
// (lastExit − firstRun) / MPL in seconds, plus the NM-overload flag.
func gangMeasurement(opt Options, nodes, pesPerNode int, quantum sim.Time, mpl int,
	prog job.Program) (float64, bool) {
	env := sim.NewEnv()
	cfg := storm.DefaultConfig(nodes)
	cfg.Timeslice = quantum
	cfg.Policy = sched.GangFCFS{MPL: mpl}
	cfg.Seed = opt.seed()
	s := storm.New(env, cfg)
	var jobs []*job.Job
	for i := 0; i < mpl; i++ {
		jobs = append(jobs, s.Submit(&job.Job{
			Name:        fmt.Sprintf("app%d", i),
			BinaryBytes: 1_000_000,
			NodesWanted: nodes,
			PEsPerNode:  pesPerNode,
			Program:     prog,
		}))
	}
	s.RunUntilDone(jobs...)
	defer s.Shutdown()
	first, last := jobs[0].FirstRun, sim.Time(0)
	for _, j := range jobs {
		if j.FirstRun < first {
			first = j.FirstRun
		}
		if j.LastExit > last {
			last = j.LastExit
		}
	}
	return (last - first).Seconds() / float64(mpl), s.Overloaded
}

// fig4Config returns the machine and application scale. The paper uses
// 32 nodes/64 PEs with the ~49 s SWEEP3D; the full mode here keeps the
// paper's machine and quantum axis but scales the applications to ~12 s:
// the measured quantity — slowdown as a function of the quantum — is
// invariant to total application length (it is per-quantum overhead
// divided by quantum), and the shorter run keeps regeneration tractable.
// Quick shrinks the machine as well.
func fig4Config(quick bool) (nodes int, sweep workload.Sweep3D, synth workload.Synthetic, quantaMs []float64) {
	if quick {
		return 8,
			workload.ScaledSweep3D(4),
			workload.Synthetic{Total: 2 * sim.Second, BarrierEvery: 250 * sim.Millisecond},
			[]float64{0.3, 1, 2, 10, 50, 500, 2000}
	}
	return 32,
		workload.ScaledSweep3D(12),
		workload.Synthetic{Total: 8 * sim.Second, BarrierEvery: sim.Second},
		[]float64{0.3, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000, 8000}
}

func fig4(opt Options) (*Result, error) {
	nodes, sweep, synth, quantaMs := fig4Config(opt.Quick)
	tab := metrics.NewTable(
		fmt.Sprintf("Normalized runtime vs. time quantum, %d nodes/%d PEs (s)", nodes, nodes*2),
		"Quantum (ms)", "SWEEP3D MPL=1", "SWEEP3D MPL=2", "Synthetic MPL=2", "NM overloaded")
	for _, qms := range quantaMs {
		q := sim.FromMilliseconds(qms)
		s1, _ := gangMeasurement(opt, nodes, 2, q, 1, sweep)
		s2, over2 := gangMeasurement(opt, nodes, 2, q, 2, sweep)
		sy2, overS := gangMeasurement(opt, nodes, 2, q, 2, synth)
		tab.AddRow(qms, s1, s2, sy2, fmt.Sprintf("%v", over2 || overS))
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: runtime is flat from 2 ms upward (annotated point",
			"(2 ms, 49 s)); it rises below 2 ms; below ~300 us the NM cannot",
			"process the strobe stream.",
		},
	}, nil
}

func fig5(opt Options) (*Result, error) {
	var nodeAxis []int
	var sweep workload.Sweep3D
	var synth workload.Synthetic
	if opt.Quick {
		nodeAxis = []int{1, 4, 8}
		sweep = workload.ScaledSweep3D(4)
		synth = workload.Synthetic{Total: 2 * sim.Second, BarrierEvery: 250 * sim.Millisecond}
	} else {
		nodeAxis = []int{1, 2, 4, 8, 16, 32, 64}
		sweep = workload.ScaledSweep3D(12) // see fig4Config on app scaling
		synth = workload.Synthetic{Total: 8 * sim.Second, BarrierEvery: sim.Second}
	}
	q := 50 * sim.Millisecond // the paper's choice after Fig. 4
	tab := metrics.NewTable("Normalized runtime vs. nodes, 50 ms quantum (s)",
		"Nodes", "SWEEP3D MPL=1", "SWEEP3D MPL=2", "Synthetic MPL=1", "Synthetic MPL=2")
	for _, n := range nodeAxis {
		s1, _ := gangMeasurement(opt, n, 2, q, 1, sweep)
		s2, _ := gangMeasurement(opt, n, 2, q, 2, sweep)
		y1, _ := gangMeasurement(opt, n, 2, q, 1, synth)
		y2, _ := gangMeasurement(opt, n, 2, q, 2, synth)
		tab.AddRow(n, s1, s2, y1, y2)
	}
	return &Result{
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"Paper reference: no increase in runtime or overhead with node",
			"count beyond that caused by the job launch (weak scaling).",
		},
	}, nil
}

func table8(opt Options) (*Result, error) {
	nodes := 64
	sweep := workload.ScaledSweep3D(12) // see fig4Config on app scaling
	quantaMs := []float64{0.3, 0.5, 1, 2, 5, 10}
	if opt.Quick {
		nodes = 8
		sweep = workload.ScaledSweep3D(3)
		quantaMs = []float64{0.5, 2, 10}
	}
	// Baseline: a quantum far up the plateau.
	base, _ := gangMeasurement(opt, nodes, 2, 100*sim.Millisecond, 2, sweep)
	minFeasible := -1.0
	detail := metrics.NewTable("STORM slowdown by quantum (measured)",
		"Quantum (ms)", "Normalized runtime (s)", "Slowdown (%)", "Feasible (<=2%)")
	for _, qms := range quantaMs {
		rt, over := gangMeasurement(opt, nodes, 2, sim.FromMilliseconds(qms), 2, sweep)
		slow := (rt/base - 1) * 100
		ok := !over && slow <= 2.0
		if ok && minFeasible < 0 {
			minFeasible = qms
		}
		detail.AddRow(qms, rt, slow, fmt.Sprintf("%v", ok))
	}
	lit := metrics.NewTable("Minimal feasible scheduling quantum (paper Table 8)",
		"Resource manager", "Minimal feasible quantum", "Context")
	lit.AddRow("RMS", "30,000 ms", "15 nodes, 1.8% slowdown [literature]")
	lit.AddRow("SCore-D", "100 ms", "64 nodes, 2% slowdown [literature]")
	lit.AddRow("STORM (this reproduction)", fmt.Sprintf("%.1f ms", minFeasible),
		fmt.Sprintf("%d nodes, <=2%% slowdown (measured)", nodes))
	return &Result{
		Tables: []*metrics.Table{detail, lit},
		Notes: []string{
			"Paper reference: STORM sustains 2 ms quanta with no observable",
			"slowdown - two orders of magnitude below SCore-D's 100 ms.",
		},
	}, nil
}
