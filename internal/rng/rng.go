// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the STORM simulator.
//
// Determinism is a hard requirement: a simulation run with a given seed must
// produce bit-identical results on every platform and Go release, so the
// simulator cannot use math/rand (whose stream is not guaranteed stable
// across releases for all methods). The generator here is xoshiro256**,
// seeded via splitmix64, following the reference implementations by
// Blackman and Vigna.
package rng

import "math"

// GoldenGamma is the splitmix64 state increment (the golden ratio in
// fixed point) shared by every splitmix64 user in the repository.
const GoldenGamma = 0x9e3779b97f4a7c15

// Mix64 is the splitmix64 output finalizer: a bijective avalanche over
// 64 bits. It is exported for seed-derivation schemes that compute the
// state themselves (e.g. per-point sweep seeds keyed by index).
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64 is the canonical splitmix64 generator: state steps by
// GoldenGamma and each output is Mix64 of the new state. It is the
// repository's single splitmix64 implementation — experiment sweeps,
// chaos-schedule RNGs, and backoff jitter all derive from it — so a
// seed reproduces the same stream everywhere, forever. The zero value
// is a valid generator seeded with 0.
type SplitMix64 uint64

// Next advances the state and returns the next 64 random bits.
func (s *SplitMix64) Next() uint64 {
	*s += GoldenGamma
	return Mix64(uint64(*s))
}

// Intn returns a deterministic value in [0, n); 0 when n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Next() % uint64(n))
}

// RNG is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64,
// which guarantees a well-distributed internal state even for small or
// sequential seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := SplitMix64(seed)
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	return r
}

// Split derives an independent generator from this one. The derived stream
// is decorrelated from the parent by reseeding through splitmix64.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed float64 whose underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
