package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(7)
	p2.Uint64() // consume the value used to seed the child
	diverged := false
	for i := 0; i < 64; i++ {
		if child.Uint64() != p2.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split stream replays parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exp mean = %v, want ~3.0", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

// TestSplitMix64Determinism pins the shared splitmix64 stream to the
// published reference outputs (Steele, Lea & Flood / Vigna, seed 0) so
// every consumer — sweep seed derivation, chaos schedules, backoff
// jitter — reproduces byte-identically forever. A change here silently
// reshuffles every seeded experiment in the repository.
func TestSplitMix64Determinism(t *testing.T) {
	var s SplitMix64 // seed 0
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
	// The seeded stream and the Mix64 finalizer must agree with the
	// state-stepping definition.
	s2 := SplitMix64(42)
	if got, want := s2.Next(), Mix64(42+GoldenGamma); got != want {
		t.Fatalf("SplitMix64(42) first output %#x, want Mix64 of stepped state %#x", got, want)
	}
	// Intn stays in range and is a pure function of the stream.
	s3, s4 := SplitMix64(7), SplitMix64(7)
	for i := 0; i < 100; i++ {
		a, b := s3.Intn(13), s4.Intn(13)
		if a != b || a < 0 || a >= 13 {
			t.Fatalf("Intn diverged or out of range at %d: %d vs %d", i, a, b)
		}
	}
	var z SplitMix64
	if z.Intn(0) != 0 {
		t.Fatal("Intn(0) must be 0")
	}
}
