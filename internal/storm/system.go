package storm

import (
	"fmt"

	"repro/internal/fsim"
	"repro/internal/job"
	"repro/internal/mech"
	"repro/internal/nodeos"
	"repro/internal/qsnet"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// System is one assembled STORM instance: the fabric, the node OS models,
// the filesystems, and the MM/NM/PL dæmons, ready to accept jobs.
type System struct {
	cfg  Config
	env  *sim.Env
	net  *qsnet.Network
	dom  mech.Domain
	os   []*nodeos.Node // compute nodes 0..Nodes-1
	mgmt *nodeos.Node   // management node (network ID Nodes)
	fs   []*fsim.FileSystem
	mgFS *fsim.FileSystem
	mm   *MM
	nms  []*NM
	rnd  *rng.RNG
	hd   *rng.RNG // host scheduling-delay stream

	// Overloaded latches true if any NM's control queue exceeded the
	// backlog limit (the sub-300µs-quantum wall of paper §3.2.1).
	Overloaded bool

	// timeline, when non-nil, records job lifecycle spans (see
	// EnableTimeline).
	timeline *trace.Timeline

	nextJobID job.ID
}

// EnableTimeline attaches a trace timeline: each job gets a lane with
// 'q' (queued), 'T' (binary transfer), and 'R' (placed/running) spans,
// closed when the MM records completion. Returns the timeline for
// rendering.
func (s *System) EnableTimeline() *trace.Timeline {
	if s.timeline == nil {
		s.timeline = trace.New()
	}
	return s.timeline
}

// traceMark records a span start for a job if tracing is enabled.
func (s *System) traceMark(j *job.Job, label rune) {
	if s.timeline != nil {
		s.timeline.Mark(fmt.Sprintf("job%d:%s", j.ID, j.Name), s.env.Now(), label)
	}
}

// traceClose ends a job's open span if tracing is enabled.
func (s *System) traceClose(j *job.Job) {
	if s.timeline != nil {
		s.timeline.Close(fmt.Sprintf("job%d:%s", j.ID, j.Name), s.env.Now())
	}
}

// DomainBuilder constructs the mechanism layer over a fabric; the default
// is the QsNET hardware mapping (mech.NewHW), and mech.NewTree gives the
// commodity-network emulation for the ablation experiments.
type DomainBuilder func(*qsnet.Network) mech.Domain

// New assembles a STORM system with the hardware mechanism mapping.
func New(env *sim.Env, cfg Config) *System {
	return NewWithDomain(env, cfg, func(n *qsnet.Network) mech.Domain { return mech.NewHW(n) })
}

// NewWithDomain assembles a STORM system with a custom mechanism layer.
func NewWithDomain(env *sim.Env, cfg Config, build DomainBuilder) *System {
	if cfg.Nodes <= 0 {
		panic("storm: need at least one compute node")
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.GangFCFS{MPL: 2}
	}
	netCfg := cfg.Net
	netCfg.Nodes = cfg.Nodes + 1
	s := &System{cfg: cfg, env: env, rnd: rng.New(cfg.Seed)}
	s.hd = s.rnd.Split()
	s.net = qsnet.New(env, netCfg)
	s.dom = build(s.net)

	s.os = make([]*nodeos.Node, cfg.Nodes)
	s.fs = make([]*fsim.FileSystem, cfg.Nodes)
	for i := range s.os {
		s.os[i] = nodeos.New(env, i, cfg.OS, s.rnd.Uint64())
		s.fs[i] = fsim.New(env, cfg.NodeFS, s.rnd.Uint64())
		if cfg.StartNoise {
			s.os[i].StartNoise()
		}
	}
	s.mgmt = nodeos.New(env, cfg.Nodes, cfg.OS, s.rnd.Uint64())
	s.mgFS = fsim.New(env, cfg.MgmtFS, s.rnd.Uint64())
	if cfg.StartNoise {
		s.mgmt.StartNoise()
	}

	s.mm = newMM(s)
	s.nms = make([]*NM, cfg.Nodes)
	for i := range s.nms {
		s.nms[i] = newNM(s, i)
	}
	return s
}

// Env returns the simulation environment.
func (s *System) Env() *sim.Env { return s.env }

// Network returns the fabric (for load and fault injection).
func (s *System) Network() *qsnet.Network { return s.net }

// Domain returns the mechanism layer.
func (s *System) Domain() mech.Domain { return s.dom }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// MM returns the Machine Manager.
func (s *System) MM() *MM { return s.mm }

// NM returns compute node i's Node Manager.
func (s *System) NM(i int) *NM { return s.nms[i] }

// OSNode returns compute node i's OS model.
func (s *System) OSNode(i int) *nodeos.Node { return s.os[i] }

// MgmtNode returns the management node's OS model.
func (s *System) MgmtNode() *nodeos.Node { return s.mgmt }

// NodeFS returns compute node i's local filesystem.
func (s *System) NodeFS(i int) *fsim.FileSystem { return s.fs[i] }

// MgmtFS returns the management node's filesystem.
func (s *System) MgmtFS() *fsim.FileSystem { return s.mgFS }

// Submit hands a job to the Machine Manager. The job starts at the next
// timeslice boundary at the earliest. Safe to call before Run or from
// simulation processes.
func (s *System) Submit(j *job.Job) *job.Job {
	if j.ID == 0 {
		s.nextJobID++
		j.ID = s.nextJobID
	}
	if j.PEsPerNode <= 0 {
		j.PEsPerNode = 1
	}
	if j.PEsPerNode > s.cfg.OS.CPUs {
		panic(fmt.Sprintf("storm: job wants %d PEs/node on %d-CPU nodes", j.PEsPerNode, s.cfg.OS.CPUs))
	}
	if j.NodesWanted <= 0 || j.NodesWanted > s.cfg.Nodes {
		panic(fmt.Sprintf("storm: job wants %d nodes of %d", j.NodesWanted, s.cfg.Nodes))
	}
	if j.Program == nil {
		j.Program = job.DoNothing{}
	}
	j.State = job.Queued
	j.Row = -1
	j.SubmitTime = s.env.Now()
	s.traceMark(j, 'q')
	s.mm.submit(j)
	return j
}

// Utilization returns the machine-wide compute-CPU utilization in [0, 1]
// since time zero: the mean busy fraction across all CPUs of all compute
// nodes (dæmon CPUs included — they are real processors).
func (s *System) Utilization() float64 {
	elapsed := s.env.Now().Seconds()
	if elapsed <= 0 {
		return 0
	}
	busy := 0.0
	cpus := 0
	for _, n := range s.os {
		for c := 0; c < n.NumCPUs(); c++ {
			busy += n.CPU(c).BusySeconds()
			cpus++
		}
	}
	return busy / (float64(cpus) * elapsed)
}

// Cancel requests a job's termination (enacted at the next timeslice
// boundary): queued jobs are dequeued, transferring jobs abort, and
// running jobs' processes are killed through their NMs.
func (s *System) Cancel(j *job.Job) { s.mm.Cancel(j) }

// DoneEvent returns the event broadcast when the MM records j's
// completion (after submission).
func (s *System) DoneEvent(j *job.Job) *sim.Event {
	return s.mm.doneEvent(j.ID)
}

// WaitJob blocks p until the MM records j's completion.
func (s *System) WaitJob(p *sim.Proc, j *job.Job) {
	s.DoneEvent(j).Wait(p)
}

// RunUntilDone submits nothing; it drives the simulation until all of the
// given jobs have completed, then returns the completion time. It must be
// called from outside the simulation (it calls env.RunUntil in a loop).
func (s *System) RunUntilDone(jobs ...*job.Job) sim.Time {
	var end sim.Time
	done := false
	s.env.Spawn("waiter", func(p *sim.Proc) {
		for _, j := range jobs {
			s.WaitJob(p, j)
		}
		end = p.Now()
		done = true
	})
	// The MM ticks forever, so the event queue never drains; advance in
	// horizons until the waiter finishes.
	horizon := sim.Second
	for !done {
		s.env.RunUntil(s.env.Now() + horizon)
	}
	return end
}

// Shutdown force-terminates all dæmons and releases simulation
// goroutines. The system is unusable afterwards.
func (s *System) Shutdown() { s.env.Shutdown() }

// LoadCPU starts spin-loop processes on every CPU of every node
// (including the management node), the CPU-contention loader of paper
// §3.1.2.
func (s *System) LoadCPU() {
	spin := func(n *nodeos.Node) {
		for c := 0; c < n.NumCPUs(); c++ {
			cpu := n.CPU(c)
			s.env.Spawn(fmt.Sprintf("spin:n%d.c%d", n.ID(), c), func(p *sim.Proc) {
				th := nodeos.NewThread(cpu, "spinload")
				th.SetActive(true)
				for {
					th.Consume(p, sim.Second)
				}
			})
		}
	}
	for _, n := range s.os {
		spin(n)
	}
	spin(s.mgmt)
}

// LoadNetwork saturates the fabric with point-to-point traffic between
// node pairs (the network loader of paper §3.1.2), modeled as background
// utilization u of every path.
func (s *System) LoadNetwork(u float64) {
	s.net.SetBackgroundLoad(u)
}

// hostDelay adds the OS scheduling delay a service thread suffers before
// getting the CPU when the processor is busy with other runnable work:
// under CPU load, dæmons and the NIC's host helper wake up and wait out
// part of somebody else's OS quantum (uniform over half a ~10 ms
// quantum).
func (s *System) hostDelay(p *sim.Proc, cpu *nodeos.CPU) {
	if cpu.Load() == 0 {
		return
	}
	p.Wait(sim.FromSeconds(s.hd.Uniform(0, 0.005)))
}
