package storm

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// Event channel names. Control traffic and data traffic use distinct
// events (the real system uses distinct remote hardware queues).
const (
	evNMCtrl  = "nm.ctrl"  // MM -> NM control commands (strobe, launch)
	evNMFrag  = "nm.frag"  // MM -> NM binary fragments
	evMMCtrl  = "mm.ctrl"  // NM -> MM notifications (termination)
	evNMHeart = "nm.hb"    // MM -> NM heartbeat pings
	evSent    = "mm.sent." // + job ID: MM-local transfer completion events
	// evStrobeSent self-clocks strobes: the MM sends the next strobe only
	// after the previous multicast completed.
	evStrobeSent = "mm.strobe.sent"
)

// gvar names (global memory, same virtual address on all nodes).
const (
	gvFrags = "frags." // + job ID: fragments written on this node
	gvHeart = "hb.seq" // last heartbeat sequence number seen
)

// strobeMsg is the coordinated context-switch command: run timeslot row
// Row now (paper §2.3 "coordinated multi-context-switch").
type strobeMsg struct {
	Row int
}

// launchMsg tells the NMs of a job's node set to fork its processes.
type launchMsg struct {
	Job *job.Job
	RT  *jobRuntime
}

// termMsg tells the MM that every process of Job on node Node has exited.
type termMsg struct {
	Job  job.ID
	Node int
}

// cancelMsg orders the NMs of a job's node set to kill its processes.
type cancelMsg struct {
	Job job.ID
}

// fragMsg accompanies one multicast binary fragment.
type fragMsg struct {
	Job   job.ID
	Index int
	Bytes int64
	Last  bool
	RT    *jobRuntime
}

// hbMsg is a heartbeat ping.
type hbMsg struct {
	Seq int64
}

// jobRuntime is the cross-node shared state of one launched job: the gang
// barrier and rank geometry. In the real system this state is replicated
// through the launch message; in the simulation the pointer stands in for
// that replica.
type jobRuntime struct {
	job     *job.Job
	barrier *job.Barrier
	// done is signaled (broadcast) when the MM records job completion.
	done *sim.Event
	// liveRanks tracks processes not yet exited, to shrink the barrier.
	liveRanks int
	// canceled marks a user-requested kill; completions then record the
	// Canceled state instead of Finished. failed upgrades that to Failed
	// (node death).
	canceled bool
	failed   bool
}

// nodeOfRank maps a rank to its cluster node ID.
func (rt *jobRuntime) nodeOfRank(rank int) int {
	return rt.job.Nodes.First + rank/rt.job.PEsPerNode
}

// cpuOfRank maps a rank to its processor index within the node.
func (rt *jobRuntime) cpuOfRank(rank int) int {
	return rank % rt.job.PEsPerNode
}
